// Ablation benchmarks for the design choices DESIGN.md calls out:
// cascade depth, sharing geometry, pack factor, LRSS source length,
// dispersal width, and commitment scheme. Each sweep isolates one knob so
// its cost is visible in the -bench output.
package securearchive_test

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"testing"

	"securearchive/internal/cascade"
	"securearchive/internal/commit"
	"securearchive/internal/group"
	"securearchive/internal/lrss"
	"securearchive/internal/packed"
	"securearchive/internal/rs"
	"securearchive/internal/shamir"
)

// Ablation: cascade depth. Each extra family costs one more pass over the
// data; the security gained is an extra independent hardness assumption.
func BenchmarkAblationCascadeDepth(b *testing.B) {
	msg := make([]byte, 1<<20)
	rand.Read(msg)
	stacks := [][]cascade.Scheme{
		{cascade.AES256CTR},
		{cascade.AES256CTR, cascade.ChaCha20},
		{cascade.AES256CTR, cascade.ChaCha20, cascade.SHA256CTR},
	}
	for _, stack := range stacks {
		stack := stack
		b.Run(fmt.Sprintf("layers=%d", len(stack)), func(b *testing.B) {
			keys, err := cascade.GenerateKeys(stack, rand.Reader)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(msg)))
			for i := 0; i < b.N; i++ {
				if _, err := cascade.Encrypt(msg, keys, rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: Shamir geometry. Split cost grows with n (outputs) and t
// (polynomial degree); the (t, n) choice is the paper's availability/
// corruption-threshold dial.
func BenchmarkAblationShamirGeometry(b *testing.B) {
	secret := make([]byte, 64<<10)
	rand.Read(secret)
	for _, g := range []struct{ n, t int }{
		{4, 2}, {8, 4}, {16, 8}, {32, 16}, {64, 32},
	} {
		g := g
		b.Run(fmt.Sprintf("n=%d,t=%d", g.n, g.t), func(b *testing.B) {
			b.SetBytes(int64(len(secret)))
			for i := 0; i < b.N; i++ {
				if _, err := shamir.Split(secret, g.n, g.t, rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: pack factor. Larger k cuts storage (x-overhead) and split
// cost but raises the reconstruction threshold t+k.
func BenchmarkAblationPackFactor(b *testing.B) {
	secret := make([]byte, 64<<10)
	rand.Read(secret)
	for _, k := range []int{1, 2, 3, 4, 5} {
		k := k
		p := packed.Params{N: 10, T: 4, K: k}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(len(secret)))
			for i := 0; i < b.N; i++ {
				if _, err := packed.Split(secret, p, rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(packed.StorageOverhead(p, len(secret)), "x-overhead")
			b.ReportMetric(float64(p.RecoverThreshold()), "x-recover-threshold")
		})
	}
}

// Ablation: LRSS source length. Longer extractor sources buy leakage
// budget (≈8·len − out bits) at linear encode cost.
func BenchmarkAblationLRSSSource(b *testing.B) {
	secret := make([]byte, 1024)
	rand.Read(secret)
	for _, src := range []int{16, 32, 64, 128} {
		src := src
		p := lrss.Params{N: 6, T: 3, SourceLen: src}
		b.Run(fmt.Sprintf("source=%d", src), func(b *testing.B) {
			b.SetBytes(int64(len(secret)))
			for i := 0; i < b.N; i++ {
				if _, err := lrss.Split(secret, p, rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(lrss.StorageOverhead(p, len(secret)), "x-overhead")
		})
	}
}

// Ablation: erasure-code rate at fixed redundancy fraction. Wider codes
// amortise parity but pay more matrix work per byte.
func BenchmarkAblationRSWidth(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.Read(data)
	for _, g := range []struct{ k, m int }{
		{2, 1}, {4, 2}, {8, 4}, {16, 8}, {32, 16},
	} {
		g := g
		b.Run(fmt.Sprintf("k=%d,m=%d", g.k, g.m), func(b *testing.B) {
			code, err := rs.New(g.k, g.m)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := code.Encode(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: commitment scheme. The §3.3 trade: hash commitments are
// orders of magnitude cheaper; Pedersen commitments are unconditionally
// hiding. Group size is the second dial.
func BenchmarkAblationCommitments(b *testing.B) {
	msg := make([]byte, 28)
	rand.Read(msg)
	b.Run("hash-sha256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := commit.CommitHash(msg, rand.Reader); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pedersen-256bit", func(b *testing.B) {
		p := commit.NewPedersen(group.Test())
		m := new(big.Int).SetBytes(msg)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := p.Commit(m, rand.Reader); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pedersen-2048bit", func(b *testing.B) {
		p := commit.NewPedersen(group.Default())
		m := new(big.Int).SetBytes(msg)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := p.Commit(m, rand.Reader); err != nil {
				b.Fatal(err)
			}
		}
	})
}
