// Benchmarks regenerating every evaluation artifact of "Secure Archival
// is Hard... Really Hard" (HotStorage '24). One benchmark family per
// experiment in DESIGN.md's index:
//
//	E1  BenchmarkFigure1       — storage cost vs security per encoding
//	E2  BenchmarkTable1        — per-system store path + measured cost
//	E3  BenchmarkSection32     — re-encryption campaign arithmetic
//	E4  BenchmarkHNDL          — harvest-now-decrypt-later campaign
//	E5  BenchmarkProactiveRenewal — renewal round vs mobile adversary
//	E6  BenchmarkRenewalComm   — Θ(n²) renewal traffic sweep
//	E7  BenchmarkTimestampChain — integrity chain renewal + verification
//	E8  BenchmarkLRSS          — leakage attack + resilient sharing
//	E9  BenchmarkBSM           — bounded-storage key agreement α-sweep
//	E10 BenchmarkQKD           — BB84 key rate and eavesdrop detection
//	E11 BenchmarkPASISSweep    — PASIS mode band (Low–High)
//
// Non-time results (overheads, months, probabilities) are attached as
// custom benchmark metrics so `go test -bench` output IS the reproduced
// table.
package securearchive_test

import (
	"crypto/rand"
	"fmt"
	"testing"

	"securearchive/internal/adversary"
	"securearchive/internal/bsm"
	"securearchive/internal/cascade"
	"securearchive/internal/cluster"
	"securearchive/internal/core"
	"securearchive/internal/costmodel"
	"securearchive/internal/group"
	"securearchive/internal/lrss"
	"securearchive/internal/pss"
	"securearchive/internal/qkd"
	"securearchive/internal/shamir"
	"securearchive/internal/sig"
	"securearchive/internal/systems"
	"securearchive/internal/tstamp"
)

// E1: Figure 1 — encode a 1 MiB object under every encoding; the
// x-security/overhead metrics reproduce the chart's coordinates.
func BenchmarkFigure1(b *testing.B) {
	cfg := core.DefaultFigure1Config()
	data := make([]byte, cfg.ObjectLen)
	rand.Read(data)
	for _, enc := range core.Figure1Encodings(cfg) {
		enc := enc
		b.Run(enc.Name(), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			var overhead float64
			for i := 0; i < b.N; i++ {
				e, err := enc.Encode(data, rand.Reader)
				if err != nil {
					b.Fatal(err)
				}
				overhead = e.Overhead()
			}
			b.ReportMetric(overhead, "x-overhead")
			b.ReportMetric(float64(enc.Class().SecurityLevel()), "x-seclevel")
		})
	}
}

// E2: Table 1 — store one object through each system; x-overhead is the
// measured cost column.
func BenchmarkTable1(b *testing.B) {
	type mk struct {
		name string
		make func(c *cluster.Cluster) (systems.Archive, []byte, error)
	}
	data := make([]byte, 256<<10)
	rand.Read(data)
	key := []byte("a 28-byte master key secret!")
	grp := group.Test()
	makers := []mk{
		{"ArchiveSafeLT", func(c *cluster.Cluster) (systems.Archive, []byte, error) {
			s, err := systems.NewArchiveSafeLT(c, nil, 4, 2)
			return s, data, err
		}},
		{"AONT-RS", func(c *cluster.Cluster) (systems.Archive, []byte, error) {
			s, err := systems.NewAONTRS(c, 4, 6)
			return s, data, err
		}},
		{"HasDPSS", func(c *cluster.Cluster) (systems.Archive, []byte, error) {
			s, err := systems.NewHasDPSS(c, 6, 3, grp)
			return s, key, err
		}},
		{"LINCOS", func(c *cluster.Cluster) (systems.Archive, []byte, error) {
			s, err := systems.NewLINCOS(c, 6, 3, grp, 1)
			return s, data, err
		}},
		{"PASIS", func(c *cluster.Cluster) (systems.Archive, []byte, error) {
			s, err := systems.NewPASIS(c, systems.PASISSecretShare, 6, 3)
			return s, data, err
		}},
		{"POTSHARDS", func(c *cluster.Cluster) (systems.Archive, []byte, error) {
			s, err := systems.NewPOTSHARDS(c, 6, 3)
			return s, data, err
		}},
		{"VSRArchive", func(c *cluster.Cluster) (systems.Archive, []byte, error) {
			s, err := systems.NewVSRArchive(c, 6, 3)
			return s, data, err
		}},
		{"CloudAES", func(c *cluster.Cluster) (systems.Archive, []byte, error) {
			s, err := systems.NewCloudAES(c, 4, 2)
			return s, data, err
		}},
	}
	for _, m := range makers {
		m := m
		b.Run(m.name, func(b *testing.B) {
			c := cluster.New(8, nil)
			sys, payload, err := m.make(c)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(payload)))
			var cost float64
			for i := 0; i < b.N; i++ {
				ref, err := sys.Store(fmt.Sprintf("o%d", i), payload, rand.Reader)
				if err != nil {
					b.Fatal(err)
				}
				cost = systems.StorageCost(c, ref)
			}
			b.ReportMetric(cost, "x-overhead")
		})
	}
}

// E3: §3.2 — the re-encryption table; x-months carries each archive's
// read-only campaign duration.
func BenchmarkSection32Reencrypt(b *testing.B) {
	for _, a := range costmodel.PaperArchives() {
		a := a
		b.Run(a.Name, func(b *testing.B) {
			var months float64
			for i := 0; i < b.N; i++ {
				m, err := costmodel.ReencryptMonths(a, costmodel.Scenario{})
				if err != nil {
					b.Fatal(err)
				}
				months = m
			}
			b.ReportMetric(months, "x-months")
		})
	}
}

// E4: HNDL — full harvest sweep then doomsday breach across the two
// poles of Table 1; x-breached is 1 when the system fell.
func BenchmarkHNDL(b *testing.B) {
	doomsday := adversary.Breaks{
		Ciphers: map[cascade.Scheme]int{
			cascade.AES256CTR: 100, cascade.ChaCha20: 100, cascade.SHA256CTR: 100,
		},
		HashBroken: 100,
	}
	data := make([]byte, 64<<10)
	rand.Read(data)
	b.Run("CloudAES", func(b *testing.B) {
		var breached float64
		for i := 0; i < b.N; i++ {
			c := cluster.New(8, nil)
			sys, err := systems.NewCloudAES(c, 4, 2)
			if err != nil {
				b.Fatal(err)
			}
			ref, err := sys.Store("o", data, rand.Reader)
			if err != nil {
				b.Fatal(err)
			}
			adv := adversary.NewMobile(2, int64(i))
			for e := 0; e < 8; e++ {
				adv.CorruptRandom(c)
				c.AdvanceEpoch()
			}
			if sys.Breach(adv, ref, doomsday, 100).Full {
				breached = 1
			}
		}
		b.ReportMetric(breached, "x-breached")
	})
	b.Run("LINCOS-renewing", func(b *testing.B) {
		var breached float64
		for i := 0; i < b.N; i++ {
			c := cluster.New(8, nil)
			sys, err := systems.NewLINCOS(c, 6, 3, group.Test(), int64(i))
			if err != nil {
				b.Fatal(err)
			}
			ref, err := sys.Store("o", data, rand.Reader)
			if err != nil {
				b.Fatal(err)
			}
			adv := adversary.NewMobile(1, int64(i))
			for e := 0; e < 8; e++ {
				adv.CorruptRandom(c)
				c.AdvanceEpoch()
				if err := sys.Renew(ref, rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
			if sys.Breach(adv, ref, doomsday, 100).Violated {
				breached = 1
			}
		}
		b.ReportMetric(breached, "x-breached")
	})
}

// E5: proactive renewal round throughput on a 64 KiB object.
func BenchmarkProactiveRenewal(b *testing.B) {
	secret := make([]byte, 64<<10)
	rand.Read(secret)
	cm, err := pss.NewDataCommittee(secret, 8, 4, rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(secret)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cm.Renew(rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

// E6: renewal traffic sweep — x-bytes shows Θ(n²) growth.
func BenchmarkRenewalComm(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32, 64} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var traffic float64
			for i := 0; i < b.N; i++ {
				traffic = float64(pss.RenewalTraffic(n, 1<<20))
			}
			b.ReportMetric(traffic, "x-bytes")
		})
	}
}

// E7: timestamp chain — renewal and verification across a 12-link
// rotation.
func BenchmarkTimestampChain(b *testing.B) {
	doc := make([]byte, 4096)
	rand.Read(doc)
	b.Run("renew", func(b *testing.B) {
		chain, err := tstamp.New(doc, tstamp.RefHash, sig.Ed25519, 0, nil, rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		schemes := []sig.Scheme{sig.ECDSAP256, sig.Ed25519}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := chain.Renew(schemes[i%2], i+1, rand.Reader); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("verify-12-links", func(b *testing.B) {
		chain, _ := tstamp.New(doc, tstamp.RefHash, sig.Ed25519, 0, nil, rand.Reader)
		schemes := []sig.Scheme{sig.ECDSAP256, sig.Ed25519}
		for k := 0; k < 11; k++ {
			chain.Renew(schemes[k%2], k+1, rand.Reader)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := chain.Verify(100, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E8: leakage — the bit-leakage attack on Shamir and the LRSS encode
// path with its storage metric.
func BenchmarkLRSS(b *testing.B) {
	b.Run("attack-24-shares", func(b *testing.B) {
		secret := []byte{0x5C}
		shares, _ := shamir.Split(secret, 24, 2, rand.Reader)
		leaks := make([]lrss.LeakBit, len(shares))
		for i, s := range shares {
			leaks[i] = lrss.LeakFromShare(s, 0, i%8)
		}
		var ok float64
		for i := 0; i < b.N; i++ {
			got, err := lrss.LeakAttackShamir(leaks)
			if err == nil && got == secret[0] {
				ok = 1
			}
		}
		b.ReportMetric(ok, "x-recovered")
	})
	b.Run("split-8of4-4KiB", func(b *testing.B) {
		p := lrss.Params{N: 8, T: 4, SourceLen: lrss.DefaultSourceLen}
		secret := make([]byte, 4096)
		rand.Read(secret)
		b.SetBytes(4096)
		for i := 0; i < b.N; i++ {
			if _, err := lrss.Split(secret, p, rand.Reader); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(lrss.StorageOverhead(p, 4096), "x-overhead")
	})
}

// E9: BSM α-sweep — x-fresh is the surviving entropy per run.
func BenchmarkBSM(b *testing.B) {
	for _, alpha := range []float64{0.25, 0.5, 0.75, 0.9} {
		alpha := alpha
		b.Run(fmt.Sprintf("alpha=%.2f", alpha), func(b *testing.B) {
			p := bsm.Params{
				StreamBytes: 1 << 20, SampleBytes: 1024,
				AdversaryFraction: alpha, KeyBytes: 32, EveStrategy: bsm.EveRandom,
			}
			b.SetBytes(1 << 20)
			var fresh float64
			for i := 0; i < b.N; i++ {
				res, err := bsm.Exchange(p, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				fresh = float64(res.FreshEntropyBytes)
			}
			b.ReportMetric(fresh, "x-fresh-bytes")
		})
	}
}

// E10: QKD — key production rate and eavesdropper detection probability.
func BenchmarkQKD(b *testing.B) {
	p := qkd.Params{Photons: 8192, NoiseRate: 0.01, SampleFraction: 0.25, AbortQBER: 0.11}
	b.Run("session", func(b *testing.B) {
		var keyBits float64
		for i := 0; i < b.N; i++ {
			res, err := qkd.Run(p, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			keyBits = float64(len(res.Key) * 8)
		}
		b.ReportMetric(keyBits, "x-key-bits")
	})
	b.Run("detection", func(b *testing.B) {
		var prob float64
		for i := 0; i < b.N; i++ {
			pr, err := qkd.DetectionProbability(p, 20, int64(i)*1000)
			if err != nil {
				b.Fatal(err)
			}
			prob = pr
		}
		b.ReportMetric(prob, "x-detect-prob")
	})
}

// E11: PASIS configurability sweep — the Low–High band of Table 1.
func BenchmarkPASISSweep(b *testing.B) {
	data := make([]byte, 256<<10)
	rand.Read(data)
	for _, mode := range []systems.PASISMode{
		systems.PASISReplication, systems.PASISErasure,
		systems.PASISEncryptEC, systems.PASISSecretShare,
	} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			c := cluster.New(8, nil)
			p, err := systems.NewPASIS(c, mode, 6, 3)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			var cost float64
			for i := 0; i < b.N; i++ {
				ref, err := p.Store(fmt.Sprintf("o%d", i), data, rand.Reader)
				if err != nil {
					b.Fatal(err)
				}
				cost = systems.StorageCost(c, ref)
			}
			b.ReportMetric(cost, "x-overhead")
		})
	}
}
