package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"text/tabwriter"

	"securearchive/internal/cluster"
	"securearchive/internal/core"
	"securearchive/internal/group"
	"securearchive/internal/obs"
	"securearchive/internal/store"
	"securearchive/internal/workload"
)

// cmdBench runs the closed-loop saturation driver against a cluster for
// one encoding: W workers issue a put/get/scrub mix, each firing its
// next op as soon as the previous returns, and the obs registry supplies
// per-op latency percentiles. -workers takes a comma-separated sweep
// (fresh cluster+vault per cell). With -offline / -transient / -corrupt
// the run measures degraded-mode throughput. -store disk runs against
// the WAL + segment backend (fresh directory per cell, fsync policy from
// -fsync) instead of in-memory maps.
func cmdBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	encName := fs.String("encoding", "shamir", "encoding scheme")
	storeKind := fs.String("store", "mem", "storage backend: mem or disk")
	storeDir := fs.String("store-dir", "", "root directory for -store disk cells (default: a temp dir, removed afterwards)")
	fsyncMode := fs.String("fsync", "", "disk fsync policy: commit (default), always, never")
	n := fs.Int("n", 8, "total shards / nodes")
	t := fs.Int("t", 4, "threshold (privacy or decode, per encoding)")
	k := fs.Int("k", 3, "pack factor (packed encoding only)")
	workersCSV := fs.String("workers", "1,4,16", "comma-separated closed-loop worker counts")
	ops := fs.Int("ops", 256, "total operations per worker-count cell")
	size := fs.Int("size", 32<<10, "bytes per object")
	preload := fs.Int("preload", 8, "objects stored before the measured window")
	putW := fs.Float64("put", 0.45, "put weight in the op mix")
	getW := fs.Float64("get", 0.45, "get weight in the op mix")
	scrubW := fs.Float64("scrub", 0.10, "scrub weight in the op mix")
	shared := fs.Bool("shared", false, "collide workers on a shared id set (contention-heavy variant)")
	batch := fs.Bool("batch", false, "route puts through a shared group-commit batcher (small-object path)")
	skew := fs.Float64("skew", 0, "zipfian read skew s (> 1) aiming gets at a hot set; 0 = uniform")
	cacheBytes := fs.Int64("cache-bytes", 0, "decoded-object read cache budget in bytes (0 = cache off)")
	offline := fs.Int("offline", 0, "nodes taken offline for the whole run")
	transient := fs.Float64("transient", 0, "per-op transient fault probability")
	corrupt := fs.Float64("corrupt", 0, "per-read shard corruption probability")
	seed := fs.Int64("seed", 1, "workload and fault seed")
	asJSON := fs.Bool("json", false, "emit results as JSON instead of a table")
	fs.Parse(args)

	enc, err := buildEncoding(*encName, *n, *t, *k)
	if err != nil {
		fatal(err)
	}
	var workers []int
	for _, f := range strings.Split(*workersCSV, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			fatal(fmt.Errorf("bench: bad -workers entry %q", f))
		}
		workers = append(workers, w)
	}
	cfg := workload.SaturationConfig{
		TotalOps:    *ops,
		ObjectBytes: *size,
		Preload:     *preload,
		Mix:         workload.OpMix{Put: *putW, Get: *getW, Scrub: *scrubW},
		Seed:        *seed,
		SharedIDs:   *shared,
		Batched:     *batch,
		ReadSkew:    *skew,
	}
	if *storeKind != store.BackendMem && *storeKind != store.BackendDisk {
		fatal(fmt.Errorf("bench: unknown -store backend %q", *storeKind))
	}
	root := *storeDir
	if *storeKind == store.BackendDisk && root == "" {
		tmp, err := os.MkdirTemp("", "archivectl-bench-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}
	mk := func() (*core.Vault, *obs.Registry, error) {
		reg := obs.NewRegistry()
		var c *cluster.Cluster
		if *storeKind == store.BackendDisk {
			// Every sweep cell starts from an empty archive: reopening a
			// previous cell's directory would replay its WAL into this one.
			dir, err := os.MkdirTemp(root, "cell-")
			if err != nil {
				return nil, nil, err
			}
			var cerr error
			c, cerr = cluster.Open(*n, nil, store.Config{
				Backend: store.BackendDisk, Dir: dir, Fsync: *fsyncMode,
			})
			if cerr != nil {
				return nil, nil, cerr
			}
		} else {
			c = cluster.New(*n, nil)
		}
		c.UseRegistry(reg)
		for i := 0; i < *offline; i++ {
			c.SetOnline(i, false)
		}
		if *transient > 0 || *corrupt > 0 {
			c.SetFaultPlan(&cluster.FaultPlan{Seed: *seed, Default: cluster.NodeFaults{
				TransientProb: *transient,
				CorruptProb:   *corrupt,
			}})
		}
		vopts := []core.VaultOption{core.WithGroup(group.Test()), core.WithRegistry(reg)}
		if *cacheBytes > 0 {
			vopts = append(vopts, core.WithReadCache(*cacheBytes))
		}
		v, err := core.NewVault(c, enc, vopts...)
		return v, reg, err
	}
	runs, err := workload.SweepWorkers(workers, cfg, mk)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		blob, err := json.MarshalIndent(struct {
			Encoding  string                       `json:"encoding"`
			Backend   string                       `json:"backend"`
			GoMaxProc int                          `json:"gomaxprocs"`
			Runs      []*workload.SaturationResult `json:"runs"`
		}{enc.Name(), *storeKind, runtime.GOMAXPROCS(0), runs}, "", "  ")
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(blob, '\n'))
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "W\tops\tops/s\tput MB/s\tget MB/s\tput p50/p99 (µs)\tget p50/p99 (µs)\tlock p99 (µs)\thit%%\terrs\n")
	for _, r := range runs {
		fmt.Fprintf(w, "%d\t%d\t%.0f\t%.1f\t%.1f\t%.0f/%.0f\t%.0f/%.0f\t%.0f\t%.0f\t%d\n",
			r.Workers, r.Ops, r.OpsPerSec, r.PutMBPerSec, r.GetMBPerSec,
			r.PutLatency.P50Ns/1e3, r.PutLatency.P99Ns/1e3,
			r.GetLatency.P50Ns/1e3, r.GetLatency.P99Ns/1e3,
			r.LockWaitP99Ns/1e3, 100*r.CacheHitRatio, r.Errors)
	}
	w.Flush()
	if len(workers) > 1 {
		fmt.Printf("scaling W=%d vs W=%d: %.2fx (GOMAXPROCS=%d)\n",
			workers[len(workers)-1], workers[0],
			workload.ScalingX(runs, workers[0], workers[len(workers)-1]),
			runtime.GOMAXPROCS(0))
	}
}
