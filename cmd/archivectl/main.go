// Command archivectl archives files with any of the framework's
// encodings, writing one shard per simulated storage node directory plus
// a manifest. It demonstrates the crypto-agile put/get path end to end on
// real files, including recovery from lost nodes.
//
// Usage:
//
//	archivectl put   -in secret.pdf -store ./store -encoding shamir -n 8 -t 4
//	archivectl get   -manifest ./store/secret.pdf.manifest.json -out recovered.pdf
//	archivectl info  -manifest ./store/secret.pdf.manifest.json
//	archivectl scrub -manifest ./store/secret.pdf.manifest.json [-repair]
//	archivectl stats -encoding erasure -n 8 -t 4 -objects 32 [-offline 2] [-transient 0.2]
//	archivectl serve -encoding erasure -n 8 -t 4 [-offline 2] [-transient 0.2] [-addr 127.0.0.1:8080] [-cache-bytes 67108864]
//	archivectl bench -encoding erasure -n 8 -t 4 -workers 1,4,16 -ops 256 [-batch] [-skew 1.1 -cache-bytes 1048576] [-offline 1] [-transient 0.1] [-store disk [-store-dir DIR] [-fsync commit|always|never]]
//
// Encodings: replication, erasure, aes, cascade, entropic, aont, shamir,
// packed, lrss. After put, delete up to n−min node directories and get
// still succeeds; at or below the privacy threshold, the shards reveal
// nothing (for the ITS encodings, unconditionally).
package main

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"securearchive/internal/core"
)

type manifest struct {
	Encoding     string `json:"encoding"`
	N            int    `json:"n"`
	Min          int    `json:"min"`
	T            int    `json:"t"`
	K            int    `json:"k"`
	PlainLen     int    `json:"plain_len"`
	Object       string `json:"object"`
	Store        string `json:"store"`
	PublicMeta   string `json:"public_meta,omitempty"`
	ClientSecret string `json:"client_secret,omitempty"` // kept by the owner, NOT on nodes
	// ShardDigests are SHA-256 digests of each shard, for scrubbing.
	ShardDigests []string `json:"shard_digests"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "put":
		cmdPut(os.Args[2:])
	case "get":
		cmdGet(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "scrub":
		cmdScrub(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	case "bench":
		cmdBench(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: archivectl put|get|info|scrub|stats|serve|bench [flags]")
	os.Exit(2)
}

func buildEncoding(name string, n, t, k int) (core.Encoding, error) {
	switch name {
	case "replication":
		return core.Replication{N: n}, nil
	case "erasure":
		return core.Erasure{K: t, N: n}, nil
	case "aes":
		return core.TraditionalEncryption{K: t, N: n}, nil
	case "cascade":
		return core.CascadeEncryption{K: t, N: n}, nil
	case "entropic":
		return core.EntropicEncryption{K: t, N: n, AssumedEntropyBits: 0}, nil
	case "aont":
		return core.AONTRS{K: t, N: n}, nil
	case "shamir":
		return core.SecretSharing{T: t, N: n}, nil
	case "packed":
		return core.PackedSharing{T: t, K: k, N: n}, nil
	case "lrss":
		return core.LRSS{T: t, N: n}, nil
	default:
		return nil, fmt.Errorf("unknown encoding %q", name)
	}
}

func cmdPut(args []string) {
	fs := flag.NewFlagSet("put", flag.ExitOnError)
	in := fs.String("in", "", "input file")
	store := fs.String("store", "./store", "store directory (one subdir per node)")
	encName := fs.String("encoding", "shamir", "encoding scheme")
	n := fs.Int("n", 8, "total shards / nodes")
	t := fs.Int("t", 4, "threshold (privacy or decode, per encoding)")
	k := fs.Int("k", 3, "pack factor (packed encoding only)")
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("put: -in required"))
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	enc, err := buildEncoding(*encName, *n, *t, *k)
	if err != nil {
		fatal(err)
	}
	e, err := enc.Encode(data, rand.Reader)
	if err != nil {
		fatal(err)
	}
	object := filepath.Base(*in)
	for i, sh := range e.Shards {
		dir := filepath.Join(*store, fmt.Sprintf("node-%02d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, object+".shard"), sh, 0o644); err != nil {
			fatal(err)
		}
	}
	total, min := enc.Shards()
	fresh := core.ShardDigests(e.Shards)
	digests := make([]string, len(fresh))
	for i, d := range fresh {
		digests[i] = base64.StdEncoding.EncodeToString(d[:])
	}
	m := manifest{
		Encoding:     *encName,
		N:            total,
		Min:          min,
		T:            *t,
		K:            *k,
		PlainLen:     e.PlainLen,
		Object:       object,
		Store:        *store,
		PublicMeta:   base64.StdEncoding.EncodeToString(e.PublicMeta),
		ClientSecret: base64.StdEncoding.EncodeToString(e.ClientSecret),
		ShardDigests: digests,
	}
	mb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		fatal(err)
	}
	mpath := filepath.Join(*store, object+".manifest.json")
	if err := os.WriteFile(mpath, mb, 0o600); err != nil {
		fatal(err)
	}
	fmt.Printf("archived %s: %d bytes → %d shards (%s), any %d reconstruct\n",
		object, len(data), total, *encName, min)
	fmt.Printf("stored bytes: %d (%.2fx)\nmanifest: %s\n", e.StoredBytes(), e.Overhead(), mpath)
	if len(e.ClientSecret) > 0 {
		fmt.Printf("NOTE: manifest contains %d bytes of client-side key material — guard it\n", len(e.ClientSecret))
	}
}

func loadManifest(path string) (*manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

func cmdGet(args []string) {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	mpath := fs.String("manifest", "", "manifest file")
	out := fs.String("out", "", "output file")
	fs.Parse(args)
	if *mpath == "" || *out == "" {
		fatal(fmt.Errorf("get: -manifest and -out required"))
	}
	m, err := loadManifest(*mpath)
	if err != nil {
		fatal(err)
	}
	enc, err := buildEncoding(m.Encoding, m.N, m.T, m.K)
	if err != nil {
		fatal(err)
	}
	shards := make([][]byte, m.N)
	available := 0
	for i := 0; i < m.N; i++ {
		p := filepath.Join(m.Store, fmt.Sprintf("node-%02d", i), m.Object+".shard")
		b, err := os.ReadFile(p)
		if err != nil {
			continue
		}
		shards[i] = b
		available++
	}
	meta, err := base64.StdEncoding.DecodeString(m.PublicMeta)
	if err != nil {
		fatal(err)
	}
	secret, err := base64.StdEncoding.DecodeString(m.ClientSecret)
	if err != nil {
		fatal(err)
	}
	e := &core.Encoded{
		Scheme:       m.Encoding,
		PlainLen:     m.PlainLen,
		Shards:       shards,
		PublicMeta:   meta,
		ClientSecret: secret,
	}
	data, err := enc.Decode(e)
	if err != nil {
		fatal(fmt.Errorf("decode with %d/%d shards: %w", available, m.N, err))
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("recovered %s: %d bytes from %d/%d shards → %s\n", m.Object, len(data), available, m.N, *out)
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	mpath := fs.String("manifest", "", "manifest file")
	fs.Parse(args)
	if *mpath == "" {
		fatal(fmt.Errorf("info: -manifest required"))
	}
	m, err := loadManifest(*mpath)
	if err != nil {
		fatal(err)
	}
	enc, err := buildEncoding(m.Encoding, m.N, m.T, m.K)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("object:     %s (%d bytes)\n", m.Object, m.PlainLen)
	fmt.Printf("encoding:   %s (%s, leakage-resilient: %v)\n", enc.Name(), enc.Class(), enc.LeakageResilient())
	fmt.Printf("dispersal:  %d shards, any %d reconstruct\n", m.N, m.Min)
	present := 0
	for i := 0; i < m.N; i++ {
		p := filepath.Join(m.Store, fmt.Sprintf("node-%02d", i), m.Object+".shard")
		if _, err := os.Stat(p); err == nil {
			present++
		}
	}
	fmt.Printf("shards:     %d/%d present — %s\n", present, m.N, healthWord(present, m.Min))
}

// cmdScrub verifies every shard against its manifest digest and, with
// -repair, rebuilds missing or corrupt shards by decoding from the
// healthy ones and re-encoding. The digest classification is the
// library's (core.CheckShards — the same logic Vault.Scrub runs against
// the cluster). Re-encoding draws fresh randomness, so for the
// sharing-based encodings a repair doubles as a share refresh; the
// manifest is rewritten to match.
func cmdScrub(args []string) {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	mpath := fs.String("manifest", "", "manifest file")
	repair := fs.Bool("repair", false, "rebuild bad/missing shards")
	fs.Parse(args)
	if *mpath == "" {
		fatal(fmt.Errorf("scrub: -manifest required"))
	}
	m, err := loadManifest(*mpath)
	if err != nil {
		fatal(err)
	}
	enc, err := buildEncoding(m.Encoding, m.N, m.T, m.K)
	if err != nil {
		fatal(err)
	}
	digests := make([][sha256.Size]byte, len(m.ShardDigests))
	for i, d := range m.ShardDigests {
		raw, err := base64.StdEncoding.DecodeString(d)
		if err != nil || len(raw) != sha256.Size {
			fatal(fmt.Errorf("scrub: manifest digest %d malformed", i))
		}
		copy(digests[i][:], raw)
	}
	shards := make([][]byte, m.N)
	for i := 0; i < m.N; i++ {
		p := filepath.Join(m.Store, fmt.Sprintf("node-%02d", i), m.Object+".shard")
		if b, err := os.ReadFile(p); err == nil {
			shards[i] = b
		}
	}
	healthyIdx, missing, corrupt := core.CheckShards(shards, digests)
	for _, i := range missing {
		fmt.Printf("node-%02d: MISSING\n", i)
	}
	for _, i := range corrupt {
		fmt.Printf("node-%02d: CORRUPT (digest mismatch)\n", i)
		shards[i] = nil // never decode from rotted bytes
	}
	healthy, bad := len(healthyIdx), len(missing)+len(corrupt)
	fmt.Printf("scrub: %d healthy, %d bad of %d shards — %s\n", healthy, bad, m.N, healthWord(healthy, m.Min))
	if bad == 0 || !*repair {
		if bad > 0 {
			fmt.Println("run with -repair to rebuild")
		}
		return
	}
	// Repair: decode from healthy shards, re-encode, rewrite everything.
	meta, _ := base64.StdEncoding.DecodeString(m.PublicMeta)
	secret, _ := base64.StdEncoding.DecodeString(m.ClientSecret)
	data, err := enc.Decode(&core.Encoded{
		Scheme: m.Encoding, PlainLen: m.PlainLen,
		Shards: shards, PublicMeta: meta, ClientSecret: secret,
	})
	if err != nil {
		fatal(fmt.Errorf("repair: cannot decode from %d healthy shards: %w", healthy, err))
	}
	e, err := enc.Encode(data, rand.Reader)
	if err != nil {
		fatal(err)
	}
	for i, sh := range e.Shards {
		dir := filepath.Join(m.Store, fmt.Sprintf("node-%02d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, m.Object+".shard"), sh, 0o644); err != nil {
			fatal(err)
		}
	}
	fresh := core.ShardDigests(e.Shards)
	b64 := make([]string, len(fresh))
	for i, d := range fresh {
		b64[i] = base64.StdEncoding.EncodeToString(d[:])
	}
	m.PublicMeta = base64.StdEncoding.EncodeToString(e.PublicMeta)
	m.ClientSecret = base64.StdEncoding.EncodeToString(e.ClientSecret)
	m.ShardDigests = b64
	mb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*mpath, mb, 0o600); err != nil {
		fatal(err)
	}
	fmt.Printf("repaired: %d shards rewritten (shares re-randomised), manifest updated\n", len(e.Shards))
}

func healthWord(present, min int) string {
	switch {
	case present >= min+1:
		return "healthy"
	case present >= min:
		return "DEGRADED: at minimum, repair now"
	default:
		return "LOST: below reconstruction threshold"
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "archivectl:", err)
	os.Exit(1)
}
