package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"time"

	"securearchive/internal/cluster"
	"securearchive/internal/core"
	"securearchive/internal/group"
	"securearchive/internal/monitor"
	"securearchive/internal/obs"
	"securearchive/internal/obs/trace"
)

// cmdServe runs a live monitoring endpoint over an in-memory vault under
// continuous load: it seeds the vault, installs the requested fault
// plan, enables hierarchical tracing, and keeps issuing reads in the
// background while serving /metrics (Prometheus), /snapshot (JSON),
// /traces (recent span timelines), /healthz (thresholded), and
// /debug/pprof. Point a browser or curl at it to watch degraded reads
// and retry backoff happen in real time.
func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
	encName := fs.String("encoding", "erasure", "encoding scheme")
	n := fs.Int("n", 8, "total shards / nodes")
	t := fs.Int("t", 4, "threshold (privacy or decode, per encoding)")
	k := fs.Int("k", 3, "pack factor (packed encoding only)")
	objects := fs.Int("objects", 16, "objects seeded into the vault")
	size := fs.Int("size", 64<<10, "bytes per object")
	seed := fs.Int64("seed", 1, "payload and fault seed")
	offline := fs.Int("offline", 0, "nodes taken offline after seeding")
	transient := fs.Float64("transient", 0, "per-op transient fault probability")
	corrupt := fs.Float64("corrupt", 0, "per-read bit-rot probability")
	interval := fs.Duration("interval", 250*time.Millisecond, "delay between background reads")
	journal := fs.String("journal", "", "append completed traces to this JSONL file")
	maxDegraded := fs.Float64("max-degraded-rate", monitor.DefaultMaxDegradedRate, "healthz: max degraded/failed read fraction")
	maxBacklog := fs.Int("max-scrub-backlog", monitor.DefaultMaxScrubBacklog, "healthz: max dirty objects awaiting scrub")
	duration := fs.Duration("duration", 0, "exit after this long (0 = serve until killed)")
	fs.Parse(args)

	enc, err := buildEncoding(*encName, *n, *t, *k)
	if err != nil {
		fatal(err)
	}
	c := cluster.New(*n, nil)
	tr := trace.Default()
	tr.SetEnabled(true)
	if *journal != "" {
		f, err := os.OpenFile(*journal, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr.AddExporter(trace.NewJSONL(f))
	}
	v, err := core.NewVault(c, enc, core.WithGroup(group.Test()))
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	payload := make([]byte, *size)
	for i := 0; i < *objects; i++ {
		rng.Read(payload)
		if err := v.Put(fmt.Sprintf("obj-%04d", i), payload); err != nil {
			fatal(fmt.Errorf("seed obj-%04d: %w", i, err))
		}
	}
	for i := 0; i < *offline; i++ {
		c.SetOnline(i, false)
	}
	if *transient > 0 || *corrupt > 0 {
		c.SetFaultPlan(&cluster.FaultPlan{Seed: *seed, Default: cluster.NodeFaults{
			TransientProb: *transient,
			CorruptProb:   *corrupt,
		}})
	}

	mon := &monitor.Server{
		Vault:    v,
		Cluster:  c,
		Registry: obs.Default(),
		Tracer:   tr,
		Thresholds: monitor.Thresholds{
			MaxScrubBacklog: *maxBacklog,
			MaxDegradedRate: *maxDegraded,
		},
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("archivectl: serving on http://%s\n", ln.Addr())
	fmt.Printf("archivectl: endpoints: /metrics /snapshot /traces /traces?format=text /healthz /debug/pprof/\n")

	// Background load: round-robin reads keep the metrics and traces
	// moving so the endpoints show a live system, not a frozen seed.
	stop := make(chan struct{})
	go func() {
		i := 0
		for {
			select {
			case <-stop:
				return
			case <-time.After(*interval):
			}
			id := fmt.Sprintf("obj-%04d", i%*objects)
			i++
			if _, err := v.Get(id); err != nil && !errors.Is(err, core.ErrDegraded) {
				fmt.Fprintf(os.Stderr, "archivectl: read %s: %v\n", id, err)
			}
		}
	}()

	srv := &http.Server{Handler: mon.Handler()}
	if *duration > 0 {
		go func() {
			time.Sleep(*duration)
			close(stop)
			srv.Close()
		}()
	}
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}
