package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"securearchive/internal/api"
	"securearchive/internal/cluster"
	"securearchive/internal/core"
	"securearchive/internal/group"
	"securearchive/internal/monitor"
	"securearchive/internal/obs"
	"securearchive/internal/obs/trace"
)

// shutdownGrace bounds how long a graceful shutdown waits for in-flight
// requests before the listener is torn down hard.
const shutdownGrace = 10 * time.Second

// cmdServe runs the archive service: the full /v1 object API (streaming
// put/get, delete, scrub, renew — see internal/api) plus the monitoring
// plane (/metrics, /snapshot, /traces, /healthz, /debug/pprof) on one
// listener, over an in-memory vault. Optionally it seeds objects,
// installs a fault plan, and keeps issuing background reads so the
// monitoring endpoints show a live system.
//
// The server is hardened for exposure beyond localhost: header-read and
// idle timeouts (a slowloris peer cannot pin a connection open for
// free), per-tenant rate limits and quotas, and graceful shutdown — on
// SIGINT/SIGTERM (or -duration) it stops accepting, lets in-flight
// requests finish within shutdownGrace, and only then exits. Request
// contexts are cancelled by client disconnects and by shutdown, which
// aborts staged writes and in-flight retry backoffs instead of leaking
// them.
func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
	encName := fs.String("encoding", "erasure", "encoding scheme")
	n := fs.Int("n", 8, "total shards / nodes")
	t := fs.Int("t", 4, "threshold (privacy or decode, per encoding)")
	k := fs.Int("k", 3, "pack factor (packed encoding only)")
	objects := fs.Int("objects", 16, "objects seeded into the vault (0 = start empty)")
	size := fs.Int("size", 64<<10, "bytes per seeded object")
	seed := fs.Int64("seed", 1, "payload and fault seed")
	offline := fs.Int("offline", 0, "nodes taken offline after seeding")
	transient := fs.Float64("transient", 0, "per-op transient fault probability")
	corrupt := fs.Float64("corrupt", 0, "per-read bit-rot probability")
	interval := fs.Duration("interval", 250*time.Millisecond, "delay between background reads (0 = no background load)")
	journal := fs.String("journal", "", "append completed traces to this JSONL file")
	maxDegraded := fs.Float64("max-degraded-rate", monitor.DefaultMaxDegradedRate, "healthz: max degraded/failed read fraction")
	maxBacklog := fs.Int("max-scrub-backlog", monitor.DefaultMaxScrubBacklog, "healthz: max dirty objects awaiting scrub")
	duration := fs.Duration("duration", 0, "exit after this long (0 = serve until killed)")
	rate := fs.Float64("rate", 0, "per-tenant request rate limit in ops/sec (0 = unlimited)")
	burst := fs.Float64("burst", 0, "rate limiter burst (default: max(1, rate))")
	quotaBytes := fs.Int64("quota-bytes", 0, "per-tenant byte quota (0 = unlimited)")
	quotaObjects := fs.Int64("quota-objects", 0, "per-tenant object quota (0 = unlimited)")
	cacheBytes := fs.Int64("cache-bytes", 0, "decoded-object read cache budget in bytes (0 = cache off)")
	cacheShare := fs.Float64("cache-share", core.DefaultCacheTenantShare, "max fraction of the read cache one tenant may occupy")
	fs.Parse(args)

	enc, err := buildEncoding(*encName, *n, *t, *k)
	if err != nil {
		fatal(err)
	}
	c := cluster.New(*n, nil)
	tr := trace.Default()
	tr.SetEnabled(true)
	if *journal != "" {
		f, err := os.OpenFile(*journal, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr.AddExporter(trace.NewJSONL(f))
	}
	vopts := []core.VaultOption{core.WithGroup(group.Test())}
	if *cacheBytes > 0 {
		vopts = append(vopts, core.WithReadCache(*cacheBytes), core.WithCacheTenantShare(*cacheShare))
	}
	v, err := core.NewVault(c, enc, vopts...)
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	payload := make([]byte, *size)
	for i := 0; i < *objects; i++ {
		rng.Read(payload)
		if err := v.Put(fmt.Sprintf("seed/obj-%04d", i), payload); err != nil {
			fatal(fmt.Errorf("seed obj-%04d: %w", i, err))
		}
	}
	for i := 0; i < *offline; i++ {
		c.SetOnline(i, false)
	}
	if *transient > 0 || *corrupt > 0 {
		c.SetFaultPlan(&cluster.FaultPlan{Seed: *seed, Default: cluster.NodeFaults{
			TransientProb: *transient,
			CorruptProb:   *corrupt,
		}})
	}

	mon := &monitor.Server{
		Vault:    v,
		Cluster:  c,
		Registry: obs.Default(),
		Tracer:   tr,
		Thresholds: monitor.Thresholds{
			MaxScrubBacklog: *maxBacklog,
			MaxDegradedRate: *maxDegraded,
		},
	}
	svc := api.NewServer(v, api.Config{
		DefaultQuota: api.Quota{MaxBytes: *quotaBytes, MaxObjects: *quotaObjects},
		Rate:         api.RateConfig{OpsPerSec: *rate, Burst: *burst},
		Monitor:      mon,
	})
	// The monitor serves the api server's per-tenant SLO table at /slo,
	// and /healthz judges the degraded-read rate over a sliding window
	// (sampled below) instead of lifetime counters, so health recovers
	// once an incident slides out of view.
	mon.SLO = svc.SLOTable()
	mon.EnableWindowedHealth(0, 0)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("archivectl: serving on http://%s\n", ln.Addr())
	fmt.Printf("archivectl: object API: PUT/GET/DELETE /v1/objects/{id}, POST /v1/scrub/{id}, POST /v1/renew/{id}\n")
	fmt.Printf("archivectl: monitoring: /metrics /snapshot /traces /traces?format=text /slo /healthz /debug/pprof/\n")

	// Background load: round-robin reads over the seeded objects keep
	// the metrics and traces moving so the endpoints show a live system,
	// not a frozen seed.
	stop := make(chan struct{})
	mon.StartHealthSampler(stop, 0)
	if *interval > 0 && *objects > 0 {
		go func() {
			i := 0
			for {
				select {
				case <-stop:
					return
				case <-time.After(*interval):
				}
				id := fmt.Sprintf("seed/obj-%04d", i%*objects)
				i++
				if _, err := v.Get(id); err != nil && !errors.Is(err, core.ErrDegraded) {
					fmt.Fprintf(os.Stderr, "archivectl: read %s: %v\n", id, err)
				}
			}
		}()
	}

	srv := &http.Server{
		Handler: svc.Handler(),
		// Slowloris guard: a peer gets 5s to finish its request headers.
		// No overall read/write deadline — streaming transfers of large
		// objects are legitimate long requests — but idle keep-alive
		// connections are reaped.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	// Graceful shutdown on SIGINT/SIGTERM or -duration: stop accepting,
	// drain in-flight requests up to shutdownGrace, then hard-close.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var why string
		if *duration > 0 {
			select {
			case <-time.After(*duration):
				why = "duration elapsed"
			case s := <-sigCh:
				why = s.String()
			}
		} else {
			s := <-sigCh
			why = s.String()
		}
		close(stop)
		fmt.Fprintf(os.Stderr, "archivectl: %s, draining (up to %v)\n", why, shutdownGrace)
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// Drain deadline blown: cut the stragglers loose.
			fmt.Fprintf(os.Stderr, "archivectl: shutdown: %v\n", err)
			srv.Close()
		}
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-done
}
