package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"securearchive/internal/cluster"
	"securearchive/internal/core"
	"securearchive/internal/group"
	"securearchive/internal/obs"
)

// cmdStats exercises the instrumented vault I/O path on an in-memory
// cluster and dumps the observability registry as JSON — the quickest
// way to see what the obs layer records, and a smoke test that the
// counters move. With -offline the reads run degraded; with -transient
// the retry counters light up too.
func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	encName := fs.String("encoding", "shamir", "encoding scheme")
	n := fs.Int("n", 8, "total shards / nodes")
	t := fs.Int("t", 4, "threshold (privacy or decode, per encoding)")
	k := fs.Int("k", 3, "pack factor (packed encoding only)")
	objects := fs.Int("objects", 16, "objects to write and read back")
	size := fs.Int("size", 64<<10, "bytes per object")
	offline := fs.Int("offline", 0, "nodes taken offline before the reads")
	transient := fs.Float64("transient", 0, "per-op transient fault probability during reads")
	seed := fs.Int64("seed", 1, "payload and fault seed")
	fs.Parse(args)

	enc, err := buildEncoding(*encName, *n, *t, *k)
	if err != nil {
		fatal(err)
	}
	_, min := enc.Shards()
	if *offline > *n-min {
		fmt.Fprintf(os.Stderr, "archivectl: warning: %d offline nodes exceeds the %d the code tolerates; reads will degrade below threshold\n", *offline, *n-min)
	}
	c := cluster.New(*n, nil)
	v, err := core.NewVault(c, enc, core.WithGroup(group.Test()))
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	payload := make([]byte, *size)
	for i := 0; i < *objects; i++ {
		rng.Read(payload)
		if err := v.Put(fmt.Sprintf("obj-%04d", i), payload); err != nil {
			fatal(fmt.Errorf("put obj-%04d: %w", i, err))
		}
	}
	for i := 0; i < *offline; i++ {
		c.SetOnline(i, false)
	}
	if *transient > 0 {
		c.SetFaultPlan(&cluster.FaultPlan{Seed: *seed, Default: cluster.NodeFaults{TransientProb: *transient}})
	}
	degraded := 0
	for i := 0; i < *objects; i++ {
		if _, err := v.Get(fmt.Sprintf("obj-%04d", i)); err != nil {
			if !errors.Is(err, core.ErrDegraded) {
				fatal(fmt.Errorf("get obj-%04d: %w", i, err))
			}
			degraded++
		}
	}
	if dirty := v.DirtyObjects(); len(dirty) > 0 {
		fmt.Fprintf(os.Stderr, "archivectl: %d objects queued for scrub after discards\n", len(dirty))
	}
	if degraded > 0 {
		fmt.Fprintf(os.Stderr, "archivectl: %d/%d reads failed below the decode threshold\n", degraded, *objects)
	}
	os.Stdout.Write(obs.Default().Snapshot().JSON())
}
