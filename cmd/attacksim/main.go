// Command attacksim runs the paper's threat model against every Table 1
// system: Harvest-Now-Decrypt-Later campaigns (E4), mobile-adversary vs
// proactive-renewal races (E5), the local-leakage attack on Shamir
// sharing with its LRSS counter (E8), and an availability campaign that
// reads every system through a continuously faulty cluster — rotating
// node outages, transient errors, bit rot — to measure how far the
// degraded k-of-n read paths carry each design.
//
// Usage:
//
//	attacksim -campaign hndl|mobile|leakage|faults|all [-epochs N] [-budget B] [-seed S]
//	          [-transient P] [-offline K] [-corrupt P]
package main

import (
	"crypto/rand"
	"errors"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"securearchive/internal/adversary"
	"securearchive/internal/cascade"
	"securearchive/internal/cluster"
	"securearchive/internal/group"
	"securearchive/internal/lrss"
	"securearchive/internal/obs"
	"securearchive/internal/shamir"
	"securearchive/internal/systems"
)

var payload = []byte("the archived secret: decades of confidentiality required")

func main() {
	campaign := flag.String("campaign", "all", "hndl | mobile | leakage | faults | all")
	epochs := flag.Int("epochs", 16, "epochs the adversary operates")
	budget := flag.Int("budget", 1, "node corruptions per epoch")
	seed := flag.Int64("seed", 42, "adversary randomness seed")
	transient := flag.Float64("transient", 0.2, "faults: per-op transient-error probability")
	offline := flag.Int("offline", 2, "faults: nodes offline at a time (rotating)")
	corrupt := flag.Float64("corrupt", 0.01, "faults: per-read bit-rot probability")
	flag.Parse()

	switch *campaign {
	case "hndl":
		runHNDL(*epochs, *budget, *seed)
	case "mobile":
		runMobile(*epochs, *budget, *seed)
	case "leakage":
		runLeakage()
	case "faults":
		runFaults(*epochs, *seed, *transient, *offline, *corrupt)
	case "all":
		runHNDL(*epochs, *budget, *seed)
		runMobile(*epochs, *budget, *seed)
		runLeakage()
		runFaults(*epochs, *seed, *transient, *offline, *corrupt)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// buildSystems constructs all eight systems on a fresh 8-node cluster.
func buildSystems() (map[string]systems.Archive, *cluster.Cluster, error) {
	c := cluster.New(8, nil)
	grp := group.Test()
	out := map[string]systems.Archive{}
	var err error
	add := func(name string, sys systems.Archive, e error) {
		if err == nil && e != nil {
			err = fmt.Errorf("%s: %w", name, e)
			return
		}
		if e == nil {
			out[name] = sys
		}
	}
	cloud, e := systems.NewCloudAES(c, 4, 2)
	add("cloud", cloud, e)
	asl, e := systems.NewArchiveSafeLT(c, nil, 4, 2)
	add("archivesafe", asl, e)
	ars, e := systems.NewAONTRS(c, 4, 6)
	add("aontrs", ars, e)
	pot, e := systems.NewPOTSHARDS(c, 6, 3)
	add("potshards", pot, e)
	vsr, e := systems.NewVSRArchive(c, 6, 3)
	add("vsr", vsr, e)
	lin, e := systems.NewLINCOS(c, 6, 3, grp, 7)
	add("lincos", lin, e)
	has, e := systems.NewHasDPSS(c, 6, 3, grp)
	add("hasdpss", has, e)
	return out, c, err
}

func dataFor(name string) []byte {
	if name == "hasdpss" {
		return []byte("a 28-byte master key secret!")
	}
	return payload
}

var doomsday = adversary.Breaks{
	Ciphers: map[cascade.Scheme]int{
		cascade.AES256CTR: 100, cascade.ChaCha20: 100, cascade.SHA256CTR: 100,
	},
	HashBroken: 100,
}

func runHNDL(epochs, budget int, seed int64) {
	fmt.Println("=== E4: Harvest Now, Decrypt Later (no renewals; all crypto breaks at epoch 100) ===")
	sys, c, err := buildSystems()
	if err != nil {
		fatal(err)
	}
	refs := map[string]*systems.Ref{}
	for name, s := range sys {
		ref, err := s.Store("obj-"+name, dataFor(name), rand.Reader)
		if err != nil {
			fatal(err)
		}
		refs[name] = ref
	}
	adv := adversary.NewMobile(budget, seed)
	for e := 0; e < epochs; e++ {
		adv.CorruptRandom(c)
		c.AdvanceEpoch()
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "system\tat harvest time\tat doomsday (epoch 100)\treason\n")
	for _, name := range []string{"cloud", "archivesafe", "aontrs", "potshards", "vsr", "lincos", "hasdpss"} {
		early := sys[name].Breach(adv, refs[name], doomsday, c.Epoch())
		late := sys[name].Breach(adv, refs[name], doomsday, 100)
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", sys[name].Name(), verdict(early), verdict(late), late.Reason)
	}
	w.Flush()
	fmt.Println()
}

func runMobile(epochs, budget int, seed int64) {
	fmt.Println("=== E5: mobile adversary vs proactive renewal ===")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "system\trenewing\tbreached\tdetail\n")
	for _, renew := range []bool{false, true} {
		sys, c, err := buildSystems()
		if err != nil {
			fatal(err)
		}
		refs := map[string]*systems.Ref{}
		for name, s := range sys {
			ref, err := s.Store("obj-"+name, dataFor(name), rand.Reader)
			if err != nil {
				fatal(err)
			}
			refs[name] = ref
		}
		adv := adversary.NewMobile(budget, seed)
		for e := 0; e < epochs; e++ {
			adv.CorruptRandom(c)
			c.AdvanceEpoch()
			if renew {
				for name, s := range sys {
					if err := s.Renew(refs[name], rand.Reader); err != nil &&
						!isUnsupported(err) {
						fatal(err)
					}
				}
			}
		}
		for _, name := range []string{"potshards", "vsr", "lincos", "hasdpss"} {
			res := sys[name].Breach(adv, refs[name], doomsday, 1000)
			fmt.Fprintf(w, "%s\t%v\t%v\t%s\n", sys[name].Name(), renew, res.Violated, res.Reason)
		}
	}
	w.Flush()
	fmt.Println()
}

func isUnsupported(err error) bool {
	return errors.Is(err, systems.ErrNotSupported)
}

func runLeakage() {
	fmt.Println("=== E8: single-bit local leakage vs Shamir (t=2, n=24) and LRSS ===")
	secret := []byte{0xC3}
	shares, err := shamir.Split(secret, 24, 2, rand.Reader)
	if err != nil {
		fatal(err)
	}
	leaks := make([]lrss.LeakBit, len(shares))
	for i, s := range shares {
		leaks[i] = lrss.LeakFromShare(s, 0, i%8)
	}
	got, err := lrss.LeakAttackShamir(leaks)
	if err != nil {
		fmt.Println("shamir attack failed:", err)
	} else {
		fmt.Printf("Shamir: adversary leaked 1 bit/share from 24 shares, recovered secret %#02x (true %#02x) — %v\n",
			got, secret[0], got == secret[0])
	}

	p := lrss.Params{N: 24, T: 2, SourceLen: 32}
	lshares, err := lrss.Split(secret, p, rand.Reader)
	if err != nil {
		fatal(err)
	}
	lleaks := make([]lrss.LeakBit, p.N)
	for i, s := range lshares {
		lleaks[i] = lrss.LeakBit{X: byte(i + 1), Bit: i % 8, Val: (s.Masked[0] >> (i % 8)) & 1}
	}
	lgot, err := lrss.LeakAttackShamir(lleaks)
	switch {
	case err != nil:
		fmt.Println("LRSS: same attack yields no solvable system —", err)
	case lgot == secret[0]:
		fmt.Println("LRSS: attack recovered the secret (fluke — rerun)")
	default:
		fmt.Printf("LRSS: attack 'recovered' %#02x ≠ true %#02x — masked shares carry no signal\n", lgot, secret[0])
	}
	fmt.Printf("LRSS storage price: %.0fx (vs 24x for plain sharing at n=24)\n",
		lrss.StorageOverhead(p, 4096))
	fmt.Println()
}

// runFaults measures availability: every system stores one object on a
// healthy cluster, then a FaultPlan turns the substrate hostile —
// `offline` nodes down at a time in a rotating schedule, every operation
// failing transiently with probability `transient`, and bit rot striking
// reads with probability `corrupt`. Each epoch every system retrieves
// its object; a read counts only if it returns the original bytes.
// Systems that verify what they fetch (VSR's commitments) route around
// rot; systems that combine blindly surface it as corrupted reads.
func runFaults(epochs int, seed int64, transient float64, offline int, corrupt float64) {
	fmt.Printf("=== availability: degraded reads under faults (transient=%.2f, offline=%d/8 rotating, bit-rot=%.2f) ===\n",
		transient, offline, corrupt)
	sys, c, err := buildSystems()
	if err != nil {
		fatal(err)
	}
	refs := map[string]*systems.Ref{}
	for name, s := range sys {
		ref, err := s.Store("obj-"+name, dataFor(name), rand.Reader)
		if err != nil {
			fatal(err)
		}
		refs[name] = ref
	}
	plan := &cluster.FaultPlan{
		Seed:    seed,
		Default: cluster.NodeFaults{TransientProb: transient, CorruptProb: corrupt},
		Nodes:   map[int]cluster.NodeFaults{},
	}
	nodes := c.Size()
	for i := 0; i < nodes; i++ {
		f := plan.Default
		// Rotating outage: at epoch e, nodes (e+j)%nodes for j<offline
		// are down; expressed per node as its own window list.
		for e := 0; e < epochs; e++ {
			down := false
			for j := 0; j < offline; j++ {
				if (e+j)%nodes == i {
					down = true
				}
			}
			if down {
				f.Offline = append(f.Offline, cluster.Window{From: e, To: e + 1})
			}
		}
		plan.Nodes[i] = f
	}
	c.SetFaultPlan(plan)
	names := []string{"cloud", "archivesafe", "aontrs", "potshards", "vsr", "lincos", "hasdpss"}
	// The availability table is backed by the obs registry rather than
	// ad-hoc tallies: the campaign increments faults.<name>.read.* and the
	// table reads the counters back, so `archivectl stats`-style snapshots
	// of the same run agree with what is printed here.
	reg := obs.Default()
	retryBase := reg.Counter("cluster.retry.attempts").Load()
	discardBase := reg.Counter("cluster.fetch.discarded").Load()
	degradedBase := reg.Counter("cluster.fetch.degraded").Load()
	shortBase := reg.Counter("cluster.fetch.short").Load()
	outcome := func(name, kind string) *obs.Counter {
		return reg.Counter("faults." + name + ".read." + kind)
	}
	for e := 0; e < epochs; e++ {
		for _, name := range names {
			got, err := sys[name].Retrieve(refs[name])
			switch {
			case err == nil && string(got) == string(dataFor(name)):
				outcome(name, "ok").Inc()
			case err == nil:
				outcome(name, "corrupt").Inc() // rotted bytes returned
			default:
				outcome(name, "failed").Inc()
			}
		}
		c.AdvanceEpoch()
	}
	c.SetFaultPlan(nil)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "system\tgood reads\tcorrupted reads\tfailed reads\tavailability\n")
	for _, name := range names {
		ok := outcome(name, "ok").Load()
		bad := outcome(name, "corrupt").Load()
		failed := outcome(name, "failed").Load()
		fmt.Fprintf(w, "%s\t%d/%d\t%d\t%d\t%.0f%%\n",
			sys[name].Name(), ok, epochs, bad, failed, 100*float64(ok)/float64(epochs))
	}
	w.Flush()
	fmt.Printf("read-path telemetry: %d transient retries, %d shards discarded by validation, %d degraded stripe reads, %d short of threshold\n",
		reg.Counter("cluster.retry.attempts").Load()-retryBase,
		reg.Counter("cluster.fetch.discarded").Load()-discardBase,
		reg.Counter("cluster.fetch.degraded").Load()-degradedBase,
		reg.Counter("cluster.fetch.short").Load()-shortBase)
	fmt.Println()
}

func verdict(r systems.BreachResult) string {
	switch {
	case r.Full:
		return "FULL BREACH"
	case r.Violated:
		return "partial leak"
	default:
		return "holds"
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "attacksim:", err)
	os.Exit(1)
}
