package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"securearchive/internal/costmodel"
	"securearchive/internal/gf256"
	"securearchive/internal/matrix"
	"securearchive/internal/rs"
)

// kernelsReport is the JSON schema written by -kernels.
type kernelsReport struct {
	Schema    string            `json:"schema"`
	GoMaxProc int               `json:"gomaxprocs"`
	Kernels   map[string]mbs    `json:"kernels"`
	RSEncode  []rsEncodeRow     `json:"rs_encode"`
	Section32 []section32Row    `json:"section32"`
	Notes     map[string]string `json:"notes,omitempty"`
}

type mbs struct {
	MBPerSec float64 `json:"mb_per_sec"`
}

type rsEncodeRow struct {
	PayloadBytes int     `json:"payload_bytes"`
	Path         string  `json:"path"` // scalar | p1 | pN
	MBPerSec     float64 `json:"mb_per_sec"`
}

type section32Row struct {
	Archive        string  `json:"archive"`
	PaperMonths    float64 `json:"paper_months"`
	MeasuredMonths float64 `json:"measured_months"`
	// MeasuredMonths re-derives the §3.2 campaign length with the local
	// measured re-encode throughput substituted for the archive's
	// aggregate read rate: what a single node of this machine would take.
}

// measure runs fn repeatedly until ~minDur has elapsed and returns MB/s
// for bytesPerOp per call.
func measure(bytesPerOp int, minDur time.Duration, fn func()) float64 {
	// Warm up (build tables, fault pages).
	fn()
	var elapsed time.Duration
	ops := 0
	for elapsed < minDur {
		start := time.Now()
		fn()
		elapsed += time.Since(start)
		ops++
	}
	return float64(bytesPerOp) * float64(ops) / elapsed.Seconds() / 1e6
}

// runKernels measures the GF(256) kernels and the RS encode pipeline on
// this machine and writes BENCH_kernels.json, including the §3.2
// re-derivation with the measured throughput.
func runKernels(outPath string) {
	fmt.Println("=== GF(256) kernel + RS pipeline throughput (measured) ===")
	rep := kernelsReport{
		Schema:    "securearchive/bench-kernels/v1",
		GoMaxProc: runtime.GOMAXPROCS(0),
		Kernels:   map[string]mbs{},
		Notes: map[string]string{
			"mul_coefficient": "0x8e",
			"buffer_bytes":    "4194304",
			"parallel":        "pN uses GOMAXPROCS workers; on a single-core host pN ≈ p1 and the speedup over scalar comes from the table kernels alone",
		},
	}

	const bufLen = 4 << 20
	rng := rand.New(rand.NewSource(42))
	src := make([]byte, bufLen)
	dst := make([]byte, bufLen)
	rng.Read(src)
	rng.Read(dst)
	const c = 0x8e
	const minDur = 300 * time.Millisecond

	rep.Kernels["mul_scalar"] = mbs{measure(bufLen, minDur, func() { gf256.MulSlice(c, src, dst) })}
	rep.Kernels["mul_table"] = mbs{measure(bufLen, minDur, func() { gf256.MulSliceTable(c, src, dst) })}
	rep.Kernels["mul_assign_scalar"] = mbs{measure(bufLen, minDur, func() { gf256.MulSliceAssign(c, src, dst) })}
	rep.Kernels["mul_assign_table"] = mbs{measure(bufLen, minDur, func() { gf256.MulSliceAssignTable(c, src, dst) })}
	rep.Kernels["xor_scalar"] = mbs{measure(bufLen, minDur, func() { gf256.MulSlice(1, src, dst) })}
	rep.Kernels["xor_word"] = mbs{measure(bufLen, minDur, func() { gf256.AddSlice(src, dst) })}

	w := os.Stdout
	fmt.Fprintf(w, "%-20s %10s\n", "kernel", "MB/s")
	for _, k := range []string{"mul_scalar", "mul_table", "mul_assign_scalar", "mul_assign_table", "xor_scalar", "xor_word"} {
		fmt.Fprintf(w, "%-20s %10.0f\n", k, rep.Kernels[k].MBPerSec)
	}

	// RS encode: 10+4, the scalar path reimplements the seed per-byte
	// MulSlice encode from the public generator pieces.
	const kData, mParity = 10, 4
	cauchy := parityMatrix(kData, mParity)
	fmt.Fprintf(w, "\n%-10s %-8s %10s\n", "payload", "path", "MB/s")
	var bestMBs float64
	for _, payload := range []int{1 << 20, 16 << 20} {
		size := (payload + kData - 1) / kData
		shards := make([][]byte, kData+mParity)
		for i := range shards {
			shards[i] = make([]byte, size)
			if i < kData {
				rng.Read(shards[i])
			}
		}
		scalarEncode := func() {
			for r := 0; r < mParity; r++ {
				row := cauchy.Row(r)
				out := shards[kData+r]
				clear(out)
				for col := 0; col < kData; col++ {
					gf256.MulSlice(row[col], shards[col], out)
				}
			}
		}
		p1, err := rs.New(kData, mParity, rs.WithParallelism(1))
		if err != nil {
			fatal(err)
		}
		pN, err := rs.New(kData, mParity)
		if err != nil {
			fatal(err)
		}
		paths := []struct {
			key, name string
			fn        func()
		}{
			{"scalar", "scalar", scalarEncode},
			{"p1", "p1", func() {
				if err := p1.EncodeShards(shards); err != nil {
					fatal(err)
				}
			}},
			{"pN", fmt.Sprintf("p%d", rep.GoMaxProc), func() {
				if err := pN.EncodeShards(shards); err != nil {
					fatal(err)
				}
			}},
		}
		for _, p := range paths {
			rate := measure(payload, minDur, p.fn)
			rep.RSEncode = append(rep.RSEncode, rsEncodeRow{PayloadBytes: payload, Path: p.key, MBPerSec: rate})
			fmt.Fprintf(w, "%-10s %-8s %10.0f\n", sizeLabel(payload), p.name, rate)
			if p.key == "pN" && payload >= 1<<20 && rate > bestMBs {
				bestMBs = rate
			}
		}
	}

	// §3.2 re-derivation: what would a re-encryption campaign take if the
	// archive's read-out ran at this machine's measured re-encode rate?
	fmt.Fprintf(w, "\n§3.2 campaign months at measured local throughput (%.0f MB/s, write+reserve):\n", bestMBs)
	paper := map[string]float64{
		"Oak Ridge HPSS":       6.75,
		"ECMWF MARS":           10.35,
		"CERN EOS":             8.3,
		"Pergamum (10PB tape)": 0.76,
	}
	scen := costmodel.Scenario{WriteBack: true, ForegroundReserve: true}
	for _, a := range costmodel.PaperArchives() {
		local := costmodel.Archive{
			Name:            a.Name,
			TotalBytes:      a.TotalBytes,
			ReadBytesPerDay: bestMBs * 1e6 * costmodel.SecondsPerDay,
		}
		mo, err := costmodel.ReencryptMonths(local, scen)
		if err != nil {
			fatal(err)
		}
		rep.Section32 = append(rep.Section32, section32Row{
			Archive:        a.Name,
			PaperMonths:    paper[a.Name],
			MeasuredMonths: mo,
		})
		fmt.Fprintf(w, "  %-22s paper %6.2f mo   single-node measured %10.0f mo\n", a.Name, paper[a.Name], mo)
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s\n\n", outPath)
}

// parityMatrix rebuilds the seed's Cauchy parity rows (points 0..k-1 for
// data columns, k..k+m-1 for parity rows) for the scalar reference path.
func parityMatrix(k, m int) *matrix.Matrix {
	xs := make([]byte, m)
	ys := make([]byte, k)
	for i := range xs {
		xs[i] = byte(k + i)
	}
	for j := range ys {
		ys[j] = byte(j)
	}
	return matrix.Cauchy(xs, ys)
}

func sizeLabel(n int) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%dMiB", n>>20)
	}
	return fmt.Sprintf("%dKiB", n>>10)
}
