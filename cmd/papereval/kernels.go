package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"securearchive/internal/cluster"
	"securearchive/internal/core"
	"securearchive/internal/costmodel"
	"securearchive/internal/gf256"
	"securearchive/internal/group"
	"securearchive/internal/matrix"
	"securearchive/internal/obs"
	"securearchive/internal/rs"
)

// kernelsReport is the JSON schema written by -kernels.
type kernelsReport struct {
	Schema    string         `json:"schema"`
	GoMaxProc int            `json:"gomaxprocs"`
	Kernels   map[string]mbs `json:"kernels"`
	RSEncode  []rsEncodeRow  `json:"rs_encode"`
	// Pipeline compares the vault's monolithic write path against the
	// chunked encode→stage pipeline (16 MiB objects, RS 10+4 over a
	// 14-node cluster, Put+Delete per op); SpeedupX is pipelined over
	// monolithic.
	Pipeline         []pipelineRow     `json:"vault_pipeline"`
	PipelineSpeedupX float64           `json:"vault_pipeline_speedup_x"`
	Section32        []section32Row    `json:"section32"`
	Notes            map[string]string `json:"notes,omitempty"`
}

type mbs struct {
	MBPerSec float64 `json:"mb_per_sec"`
}

type rsEncodeRow struct {
	PayloadBytes int    `json:"payload_bytes"`
	Path         string `json:"path"` // scalar | p1 | pN | pooled
	MBPerSec     float64 `json:"mb_per_sec"`
	// AllocsPerOp is the steady-state heap allocation count per encode
	// (testing.AllocsPerRun); the pooled path is gated at zero.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type pipelineRow struct {
	Mode         string  `json:"mode"` // monolithic | pipelined
	PayloadBytes int     `json:"payload_bytes"`
	ChunkBytes   int     `json:"chunk_bytes"`
	MBPerSec     float64 `json:"mb_per_sec"`
}

type section32Row struct {
	Archive        string  `json:"archive"`
	PaperMonths    float64 `json:"paper_months"`
	MeasuredMonths float64 `json:"measured_months"`
	// MeasuredMonths re-derives the §3.2 campaign length with the local
	// measured re-encode throughput substituted for the archive's
	// aggregate read rate: what a single node of this machine would take.
}

// measure runs fn repeatedly until ~minDur has elapsed and returns MB/s
// for bytesPerOp per call.
func measure(bytesPerOp int, minDur time.Duration, fn func()) float64 {
	// Warm up (build tables, fault pages).
	fn()
	var elapsed time.Duration
	ops := 0
	for elapsed < minDur {
		start := time.Now()
		fn()
		elapsed += time.Since(start)
		ops++
	}
	return float64(bytesPerOp) * float64(ops) / elapsed.Seconds() / 1e6
}

// runKernels measures the GF(256) kernels and the RS encode pipeline on
// this machine and writes BENCH_kernels.json, including the §3.2
// re-derivation with the measured throughput.
func runKernels(outPath string) {
	fmt.Println("=== GF(256) kernel + RS pipeline throughput (measured) ===")
	rep := kernelsReport{
		Schema:    "securearchive/bench-kernels/v1",
		GoMaxProc: runtime.GOMAXPROCS(0),
		Kernels:   map[string]mbs{},
		Notes: map[string]string{
			"mul_coefficient": "0x8e",
			"buffer_bytes":    "4194304",
			"parallel":        "pN uses GOMAXPROCS workers; on a single-core host pN ≈ p1 and the speedup over scalar comes from the table kernels alone",
		},
	}

	const bufLen = 4 << 20
	rng := rand.New(rand.NewSource(42))
	src := make([]byte, bufLen)
	dst := make([]byte, bufLen)
	rng.Read(src)
	rng.Read(dst)
	const c = 0x8e
	const minDur = 300 * time.Millisecond

	rep.Kernels["mul_scalar"] = mbs{measure(bufLen, minDur, func() { gf256.MulSlice(c, src, dst) })}
	rep.Kernels["mul_table"] = mbs{measure(bufLen, minDur, func() { gf256.MulSliceTable(c, src, dst) })}
	rep.Kernels["mul_assign_scalar"] = mbs{measure(bufLen, minDur, func() { gf256.MulSliceAssign(c, src, dst) })}
	rep.Kernels["mul_assign_table"] = mbs{measure(bufLen, minDur, func() { gf256.MulSliceAssignTable(c, src, dst) })}
	rep.Kernels["xor_scalar"] = mbs{measure(bufLen, minDur, func() { gf256.MulSlice(1, src, dst) })}
	rep.Kernels["xor_word"] = mbs{measure(bufLen, minDur, func() { gf256.AddSlice(src, dst) })}

	w := os.Stdout
	fmt.Fprintf(w, "%-20s %10s\n", "kernel", "MB/s")
	for _, k := range []string{"mul_scalar", "mul_table", "mul_assign_scalar", "mul_assign_table", "xor_scalar", "xor_word"} {
		fmt.Fprintf(w, "%-20s %10.0f\n", k, rep.Kernels[k].MBPerSec)
	}

	// RS encode: 10+4, the scalar path reimplements the seed per-byte
	// MulSlice encode from the public generator pieces; the pooled path is
	// the zero-alloc Cached/AcquireShards/EncodeInto hot loop the vault's
	// batched writes ride.
	const kData, mParity = 10, 4
	cauchy := parityMatrix(kData, mParity)
	fmt.Fprintf(w, "\n%-10s %-8s %10s %12s\n", "payload", "path", "MB/s", "allocs/op")
	var bestMBs float64
	for _, payload := range []int{1 << 20, 16 << 20} {
		size := (payload + kData - 1) / kData
		shards := make([][]byte, kData+mParity)
		for i := range shards {
			shards[i] = make([]byte, size)
			if i < kData {
				rng.Read(shards[i])
			}
		}
		scalarEncode := func() {
			for r := 0; r < mParity; r++ {
				row := cauchy.Row(r)
				out := shards[kData+r]
				clear(out)
				for col := 0; col < kData; col++ {
					gf256.MulSlice(row[col], shards[col], out)
				}
			}
		}
		p1, err := rs.New(kData, mParity, rs.WithParallelism(1))
		if err != nil {
			fatal(err)
		}
		pN, err := rs.New(kData, mParity)
		if err != nil {
			fatal(err)
		}
		pooled, err := rs.Cached(kData, mParity, 1)
		if err != nil {
			fatal(err)
		}
		data := make([]byte, payload)
		rng.Read(data)
		paths := []struct {
			key, name string
			fn        func()
		}{
			{"scalar", "scalar", scalarEncode},
			{"p1", "p1", func() {
				if err := p1.EncodeShards(shards); err != nil {
					fatal(err)
				}
			}},
			{"pN", fmt.Sprintf("p%d", rep.GoMaxProc), func() {
				if err := pN.EncodeShards(shards); err != nil {
					fatal(err)
				}
			}},
		}
		// The pooled zero-alloc path is measured only at chunk-size
		// payloads: the chunked write pipeline keeps steady-state encodes
		// at chunk granularity, and the buffer pool deliberately declines
		// to retain oversize one-off buffers.
		if payload <= core.DefaultChunkSize {
			paths = append(paths, struct {
				key, name string
				fn        func()
			}{"pooled", "pooled", func() {
				s, err := pooled.AcquireShards(len(data))
				if err != nil {
					fatal(err)
				}
				if err := pooled.EncodeInto(data, s); err != nil {
					fatal(err)
				}
				s.Release()
			}})
		}
		for _, p := range paths {
			rate := measure(payload, minDur, p.fn)
			allocs := testing.AllocsPerRun(5, p.fn)
			rep.RSEncode = append(rep.RSEncode, rsEncodeRow{
				PayloadBytes: payload, Path: p.key, MBPerSec: rate, AllocsPerOp: allocs})
			fmt.Fprintf(w, "%-10s %-8s %10.0f %12.1f\n", sizeLabel(payload), p.name, rate, allocs)
			if p.key == "pN" && payload >= 1<<20 && rate > bestMBs {
				bestMBs = rate
			}
		}
	}

	// Pipelined vs monolithic encode+stage: the full vault write path
	// (chain, encode, staged dispersal, commit) over a 14-node cluster at
	// RS 10+4, 16 MiB objects. The pipelined mode overlaps chunk encodes
	// with staging; on a single-core host the two converge.
	const pipePayload = 16 << 20
	pipeData := make([]byte, pipePayload)
	rng.Read(pipeData)
	fmt.Fprintf(w, "\n%-12s %-10s %10s\n", "write path", "chunk", "MB/s")
	var monoMBs, pipeMBs float64
	for _, mode := range []struct {
		name  string
		chunk int
	}{
		{"monolithic", 0},
		{"pipelined", core.DefaultChunkSize},
	} {
		reg := obs.NewRegistry()
		cl := cluster.New(14, nil)
		cl.UseRegistry(reg)
		v, err := core.NewVault(cl, core.Erasure{K: kData, N: kData + mParity},
			core.WithGroup(group.Test()), core.WithRegistry(reg),
			core.WithChunkSize(mode.chunk))
		if err != nil {
			fatal(err)
		}
		seq := 0
		rate := measure(pipePayload, minDur, func() {
			id := fmt.Sprintf("pipe-%d", seq)
			seq++
			if err := v.Put(id, pipeData); err != nil {
				fatal(err)
			}
			if err := v.Delete(id); err != nil {
				fatal(err)
			}
		})
		rep.Pipeline = append(rep.Pipeline, pipelineRow{
			Mode: mode.name, PayloadBytes: pipePayload, ChunkBytes: mode.chunk, MBPerSec: rate})
		chunkLbl := "-"
		if mode.chunk > 0 {
			chunkLbl = sizeLabel(mode.chunk)
		}
		fmt.Fprintf(w, "%-12s %-10s %10.0f\n", mode.name, chunkLbl, rate)
		if mode.chunk == 0 {
			monoMBs = rate
		} else {
			pipeMBs = rate
		}
	}
	if monoMBs > 0 {
		rep.PipelineSpeedupX = pipeMBs / monoMBs
		fmt.Fprintf(w, "pipelined/monolithic: %.2fx (≥1.5x expected on ≥4-core boxes)\n", rep.PipelineSpeedupX)
	}

	// §3.2 re-derivation: what would a re-encryption campaign take if the
	// archive's read-out ran at this machine's measured re-encode rate?
	fmt.Fprintf(w, "\n§3.2 campaign months at measured local throughput (%.0f MB/s, write+reserve):\n", bestMBs)
	paper := map[string]float64{
		"Oak Ridge HPSS":       6.75,
		"ECMWF MARS":           10.35,
		"CERN EOS":             8.3,
		"Pergamum (10PB tape)": 0.76,
	}
	scen := costmodel.Scenario{WriteBack: true, ForegroundReserve: true}
	for _, a := range costmodel.PaperArchives() {
		local := costmodel.Archive{
			Name:            a.Name,
			TotalBytes:      a.TotalBytes,
			ReadBytesPerDay: bestMBs * 1e6 * costmodel.SecondsPerDay,
		}
		mo, err := costmodel.ReencryptMonths(local, scen)
		if err != nil {
			fatal(err)
		}
		rep.Section32 = append(rep.Section32, section32Row{
			Archive:        a.Name,
			PaperMonths:    paper[a.Name],
			MeasuredMonths: mo,
		})
		fmt.Fprintf(w, "  %-22s paper %6.2f mo   single-node measured %10.0f mo\n", a.Name, paper[a.Name], mo)
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s\n\n", outPath)
}

// parityMatrix rebuilds the seed's Cauchy parity rows (points 0..k-1 for
// data columns, k..k+m-1 for parity rows) for the scalar reference path.
func parityMatrix(k, m int) *matrix.Matrix {
	xs := make([]byte, m)
	ys := make([]byte, k)
	for i := range xs {
		xs[i] = byte(k + i)
	}
	for j := range ys {
		ys[j] = byte(j)
	}
	return matrix.Cauchy(xs, ys)
}

func sizeLabel(n int) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%dMiB", n>>20)
	}
	return fmt.Sprintf("%dKiB", n>>10)
}
