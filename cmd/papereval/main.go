// Command papereval regenerates every evaluation artifact of "Secure
// Archival is Hard... Really Hard" (HotStorage '24) from the running
// implementation: Figure 1 (storage cost vs security level, measured),
// Table 1 (system classifications with measured costs), and the §3.2
// re-encryption arithmetic — printing paper-stated values next to
// measured ones.
//
// Usage:
//
//	papereval [-figure1] [-table1] [-reencrypt] [-renewal] [-advantage] [-kernels] [-obs] [-saturate] [-saturate-read] [-all]
//
// -kernels measures the GF(256) kernel and Reed-Solomon pipeline
// throughput on the local machine and re-derives the §3.2 campaign
// arithmetic from it, writing the results to -bench-out.
//
// -obs drives an instrumented vault workload, derives the vault's read
// bandwidth purely from the obs metrics registry, and re-derives the
// §3.2 campaign arithmetic from that measured bandwidth, writing the
// results (including the full metrics snapshot) to -obs-out.
//
// -saturate runs the closed-loop saturation sweep: every encoding under
// W = 1, 4, 16, 64 concurrent workers issuing a put/get/scrub mix,
// reporting throughput and obs-derived latency percentiles to
// -saturate-out. With -saturate-faults each encoding is additionally
// measured with a fault plan active (degraded-mode curves). With
// -saturate-small the report also gains a small_object section: the
// 4 KiB batched-vs-unbatched sweep that measures the group-commit
// write batcher's amortisation win.
//
// -saturate-store selects the storage backend the sweeps run against:
// mem (default, map-backed) or disk (WAL + segment files, every commit
// fsynced). With -saturate-disk the report additionally gains a disk
// section — the same encoding swept against both backends so the fsync
// penalty is measured honestly rather than inferred.
//
// -saturate-net adds a network section: the same closed-loop driver
// pointed at a live archive service (internal/api) over loopback HTTP,
// with streaming uploads and downloads crossing the wire — the full
// service-stack tax measured against the in-process curves.
//
// -saturate-read adds a read_cache section: a pure-Get zipfian sweep
// (skews 1.1/1.5/2.0) run twice — with and without the decoded-object
// read cache — so the hot-set hit ratio and the cached/uncached
// throughput multiple are measured rather than asserted.
package main

import (
	"bytes"
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"securearchive/internal/advantage"
	"securearchive/internal/core"
	"securearchive/internal/costmodel"
	"securearchive/internal/otp"
	"securearchive/internal/pss"
	"securearchive/internal/shamir"
)

func main() {
	figure1 := flag.Bool("figure1", false, "regenerate Figure 1 (cost vs security)")
	table1 := flag.Bool("table1", false, "regenerate Table 1 (system summary)")
	reencrypt := flag.Bool("reencrypt", false, "regenerate the §3.2 re-encryption table")
	renewal := flag.Bool("renewal", false, "price proactive renewal campaigns (§3.2)")
	adv := flag.Bool("advantage", false, "measure Definition 2.1/2.2 distinguishing advantages")
	kernels := flag.Bool("kernels", false, "measure GF(256)/RS kernel throughput and re-derive §3.2 from it")
	benchOut := flag.String("bench-out", "BENCH_kernels.json", "output path for -kernels results")
	obsBench := flag.Bool("obs", false, "measure vault read bandwidth via the obs registry and re-derive §3.2 from it")
	obsOut := flag.String("obs-out", "BENCH_obs.json", "output path for -obs results")
	saturate := flag.Bool("saturate", false, "run the closed-loop saturation sweep (every encoding x W=1,4,16,64)")
	satOut := flag.String("saturate-out", "BENCH_saturate.json", "output path for -saturate results")
	satEnc := flag.String("saturate-enc", "", "comma-separated encoding-name filter for -saturate (substring match)")
	satFaults := flag.Bool("saturate-faults", false, "also run each -saturate encoding with a fault plan active (degraded-mode curves)")
	satOps := flag.Int("saturate-ops", 192, "total operations per -saturate cell")
	satObjKiB := flag.Int("saturate-obj", 16, "object size in KiB for -saturate")
	satSmall := flag.Bool("saturate-small", false, "run the 4 KiB batched-vs-unbatched small-object sweep (small_object section of -saturate-out)")
	satStore := flag.String("saturate-store", "mem", "storage backend for the -saturate sweeps (mem|disk)")
	satDisk := flag.Bool("saturate-disk", false, "run the fsync-backed mem-vs-disk sweep (disk section of -saturate-out)")
	satNet := flag.Bool("saturate-net", false, "run the loopback HTTP service sweep (network section of -saturate-out)")
	satRead := flag.Bool("saturate-read", false, "run the zipfian cached-vs-uncached read sweep (read_cache section of -saturate-out)")
	all := flag.Bool("all", false, "run everything")
	objKiB := flag.Int("obj", 256, "object size in KiB for measurements")
	flag.Parse()

	if !*figure1 && !*table1 && !*reencrypt && !*renewal && !*adv && !*kernels && !*obsBench && !*saturate && !*satSmall && !*satDisk && !*satNet && !*satRead {
		*all = true
	}
	ran := false
	if *all || *figure1 {
		runFigure1(*objKiB)
		ran = true
	}
	if *all || *table1 {
		runTable1(*objKiB)
		ran = true
	}
	if *all || *reencrypt {
		runReencrypt()
		ran = true
	}
	if *all || *renewal {
		runRenewal()
		ran = true
	}
	if *all || *adv {
		runAdvantage()
		ran = true
	}
	if *kernels {
		runKernels(*benchOut)
		ran = true
	}
	if *obsBench {
		runObs(*obsOut, *objKiB)
		ran = true
	}
	if *saturate || *satSmall || *satDisk || *satNet || *satRead {
		runSaturate(*satOut, *satEnc, *satStore, *satFaults, *satOps, *satObjKiB, *saturate, *satSmall, *satDisk, *satNet, *satRead)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func runFigure1(objKiB int) {
	fmt.Println("=== Figure 1: storage cost vs security level (measured) ===")
	cfg := core.DefaultFigure1Config()
	cfg.ObjectLen = objKiB << 10
	pts, err := core.Figure1(cfg, rand.Reader)
	if err != nil {
		fatal(err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "encoding\tsecurity\tlevel\tleak-resilient\toverhead (x)\n")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%s\t%d\t%v\t%.2f\n",
			p.Encoding, p.SecurityClass, p.SecurityLevel, p.LeakageResilient, p.Overhead)
	}
	w.Flush()
	if bad := core.Figure1Shape(pts); len(bad) > 0 {
		fmt.Println("SHAPE VIOLATIONS:", bad)
	} else {
		fmt.Println("shape check: all of the paper's qualitative orderings hold")
	}
	fmt.Println()
}

func runTable1(objKiB int) {
	fmt.Println("=== Table 1: system summary (classifications + measured cost) ===")
	cfg := core.DefaultTable1Config()
	cfg.ObjectLen = objKiB << 10
	rows, err := core.Table1(cfg, rand.Reader)
	if err != nil {
		fatal(err)
	}
	want := core.Table1Expected()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "system\ttransit\trest\tcost band\tmeasured (x)\tpaper row matches\n")
	for _, r := range rows {
		exp, ok := want[r.System]
		match := ok && exp.Transit == r.TransitClass && exp.Rest == r.RestClass && exp.Cost == r.CostBand
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.2f\t%v\n",
			r.System, r.TransitClass, r.RestClass, r.CostBand, r.MeasuredCost, match)
	}
	w.Flush()
	fmt.Println()
}

func runReencrypt() {
	fmt.Println("=== §3.2: archive re-encryption campaign durations ===")
	paper := map[string]float64{
		"Oak Ridge HPSS":       6.75,
		"ECMWF MARS":           10.35,
		"CERN EOS":             8.3,
		"Pergamum (10PB tape)": 0.76,
	}
	rows, err := costmodel.Report()
	if err != nil {
		fatal(err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "archive\tpaper (mo)\tread-only (mo)\t+write x2 (mo)\t+reserve x4 (mo)\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r.Archive, paper[r.Archive], r.ReadOnlyMo, r.WithWriteMo, r.WithReserveMo)
	}
	w.Flush()

	fmt.Println("\nextrapolation at CERN-EOS throughput (909 TB/day), write+reserve:")
	sizes := []float64{1e18, 1e19, 1e20, 1e21}
	labels := []string{"1 EB", "10 EB", "100 EB", "1 ZB"}
	months, err := costmodel.Sweep(sizes, 909e12, costmodel.Scenario{WriteBack: true, ForegroundReserve: true})
	if err != nil {
		fatal(err)
	}
	for i := range sizes {
		fmt.Printf("  %-7s %8.0f months (%.0f years)\n", labels[i], months[i], months[i]/12)
	}
	fmt.Println()
}

func runRenewal() {
	fmt.Println("=== §3.2: proactive share-renewal campaign pricing ===")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "committee n\ttraffic per 1MB object\tcampaign for 1PB @ 400TB/day (mo)\n")
	for _, n := range []int{4, 8, 16, 32, 64} {
		per := pss.RenewalTraffic(n, 1<<20)
		mo, err := costmodel.RenewalCampaign(1e15, 1<<20, n, 400e12)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "%d\t%.1f MB\t%.2f\n", n, float64(per)/1e6, mo)
	}
	w.Flush()
	fmt.Println()
}

// runAdvantage measures the paper's Definitions 2.1/2.2 empirically:
// the distinguishing advantage of a concrete test family against each
// encoding's adversary view.
func runAdvantage() {
	fmt.Println("=== Definitions 2.1/2.2: measured distinguishing advantage ===")
	m0 := make([]byte, 64)
	m1 := bytes.Repeat([]byte{0xFF}, 64)

	otpSampler := func(m []byte) advantage.Sampler {
		return func() ([]byte, error) {
			pad, err := otp.NewRandomPad(len(m), rand.Reader)
			if err != nil {
				return nil, err
			}
			ct, err := pad.Encrypt(m)
			if err != nil {
				return nil, err
			}
			return ct.Body, nil
		}
	}
	shamirSampler := func(m []byte) advantage.Sampler {
		return func() ([]byte, error) {
			shares, err := shamir.Split(m, 3, 2, rand.Reader)
			if err != nil {
				return nil, err
			}
			return shares[0].Payload, nil
		}
	}
	plainSampler := func(m []byte) advantage.Sampler {
		return func() ([]byte, error) { return m[:16], nil }
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "adversary view\tmax advantage\tbest distinguisher\tverdict\n")
	for _, row := range []struct {
		name string
		s0   advantage.Sampler
		s1   advantage.Sampler
	}{
		{"one-time pad ciphertext", otpSampler(m0), otpSampler(m1)},
		{"1 Shamir share (t=2)", shamirSampler(m0), shamirSampler(m1)},
		{"systematic erasure shard", plainSampler(m0), plainSampler(m1)},
	} {
		res, err := advantage.Estimate(row.s0, row.s1, 2000, 8)
		if err != nil {
			fatal(err)
		}
		verdict := "indistinguishable (ε ≈ 0)"
		if res.MaxAdvantage > 0.5 {
			verdict = "fully distinguishable"
		}
		fmt.Fprintf(w, "%s\t%.3f\t%s\t%s\n", row.name, res.MaxAdvantage, res.Distinguisher, verdict)
	}
	w.Flush()
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "papereval:", err)
	os.Exit(1)
}
