package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"securearchive/internal/cluster"
	"securearchive/internal/core"
	"securearchive/internal/costmodel"
	"securearchive/internal/group"
	"securearchive/internal/obs"
	"securearchive/internal/obs/trace"
)

// obsReport is the JSON schema written by -obs: the §3.2 read-out table
// re-derived from the vault read bandwidth the obs layer measured, plus
// the full metrics snapshot the numbers came from — every figure in the
// table is auditable against a counter or histogram in the snapshot.
type obsReport struct {
	Schema    string `json:"schema"`
	GoMaxProc int    `json:"gomaxprocs"`
	// Workload parameters.
	Objects     int `json:"objects"`
	ObjectBytes int `json:"object_bytes"`
	ReadPasses  int `json:"read_passes"`
	// VaultReadMBPerSec is bytes delivered by Vault.Get divided by time
	// inside Vault.Get: vault.get.bytes.sum / vault.get.ok.sum.
	VaultReadMBPerSec float64               `json:"vault_read_mb_per_sec"`
	GetLatency        obs.HistogramSnapshot `json:"get_latency_ns"`
	// Stages attributes the read path's time to its pipeline stages
	// (probe/fetch, decode, verify), summed from the span-bridge
	// histograms the tracer fills — the hierarchical answer to where
	// vault.get's nanoseconds actually went.
	Stages    []stageRow     `json:"stages"`
	Section32 []section32Row `json:"section32"`
	Snapshot  *obs.Snapshot  `json:"snapshot"`
}

// stageRow is one pipeline stage's share of the read window.
type stageRow struct {
	Stage string `json:"stage"`
	// TotalNs is the stage's summed span duration over every read.
	TotalNs float64 `json:"total_ns"`
	// Fraction is TotalNs over vault.get's own summed duration.
	Fraction float64 `json:"fraction"`
}

// runObs drives an instrumented put/read workload through a 14-node
// cluster with a 10-of-14 erasure vault (the dispersal §3.2's archives
// would use), derives the vault's read bandwidth from the obs histograms
// alone, and re-prices the four paper archives' re-encryption campaigns
// at that bandwidth. Results land in BENCH_obs.json.
func runObs(outPath string, objKiB int) {
	fmt.Println("=== §3.2 re-derivation from measured vault read bandwidth (obs counters) ===")
	const n, k = 14, 10
	const objects = 16
	const readPasses = 8

	reg := obs.NewRegistry()
	c := cluster.New(n, nil)
	c.UseRegistry(reg)
	// Tracing on: each Get's fetch/decode/verify children bridge their
	// durations into cluster.fetch.ok / vault.decode.ok / vault.verify.ok,
	// which is where the per-stage attribution below comes from. The span
	// bookkeeping is part of the measured path — the report prices the
	// instrumented read, the same read the monitor watches.
	tr := trace.New(reg, trace.WithRingSize(8))
	tr.SetEnabled(true)
	v, err := core.NewVault(c, core.Erasure{K: k, N: n},
		core.WithGroup(group.Test()), core.WithRegistry(reg), core.WithTracer(tr))
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, objKiB<<10)
	for i := 0; i < objects; i++ {
		rng.Read(buf)
		if err := v.Put(fmt.Sprintf("obj-%04d", i), buf); err != nil {
			fatal(err)
		}
	}
	// The read loop is the measurement window: reset so put traffic does
	// not pollute the read-side histograms.
	reg.Reset()
	for pass := 0; pass < readPasses; pass++ {
		for i := 0; i < objects; i++ {
			if _, err := v.Get(fmt.Sprintf("obj-%04d", i)); err != nil {
				fatal(err)
			}
		}
	}

	snap := reg.Snapshot()
	bytesRead := snap.Histograms["vault.get.bytes"].Sum
	readNs := snap.Histograms["vault.get.ok"].Sum
	if bytesRead <= 0 || readNs <= 0 {
		fatal(fmt.Errorf("obs: read window recorded nothing (bytes=%v ns=%v)", bytesRead, readNs))
	}
	mbps := bytesRead / (readNs / 1e9) / 1e6

	rep := obsReport{
		Schema:            "securearchive/bench-obs/v1",
		GoMaxProc:         runtime.GOMAXPROCS(0),
		Objects:           objects,
		ObjectBytes:       objKiB << 10,
		ReadPasses:        readPasses,
		VaultReadMBPerSec: mbps,
		GetLatency:        snap.Histograms["vault.get.ok"],
		Snapshot:          snap,
	}
	fmt.Printf("vault read bandwidth: %.0f MB/s over %d reads (p50 %.0f µs, p99 %.0f µs per get)\n",
		mbps, int(rep.GetLatency.Count), rep.GetLatency.P50/1e3, rep.GetLatency.P99/1e3)

	fmt.Println("\nread-path stage attribution (from span-bridge histograms):")
	for _, st := range []struct{ label, hist string }{
		{"probe/fetch", "cluster.fetch.ok"},
		{"decode", "vault.decode.ok"},
		{"verify", "vault.verify.ok"},
	} {
		ns := snap.Histograms[st.hist].Sum
		rep.Stages = append(rep.Stages, stageRow{Stage: st.label, TotalNs: ns, Fraction: ns / readNs})
		fmt.Printf("  %-12s %6.1f%% of vault.get time (%s)\n", st.label, 100*ns/readNs, st.hist)
	}

	paper := map[string]float64{
		"Oak Ridge HPSS":       6.75,
		"ECMWF MARS":           10.35,
		"CERN EOS":             8.3,
		"Pergamum (10PB tape)": 0.76,
	}
	scen := costmodel.Scenario{WriteBack: true, ForegroundReserve: true}
	fmt.Printf("\n§3.2 campaign months at measured vault bandwidth (%.0f MB/s, write+reserve):\n", mbps)
	for _, a := range costmodel.PaperArchives() {
		local := costmodel.Archive{
			Name:            a.Name,
			TotalBytes:      a.TotalBytes,
			ReadBytesPerDay: mbps * 1e6 * costmodel.SecondsPerDay,
		}
		mo, err := costmodel.ReencryptMonths(local, scen)
		if err != nil {
			fatal(err)
		}
		rep.Section32 = append(rep.Section32, section32Row{
			Archive:        a.Name,
			PaperMonths:    paper[a.Name],
			MeasuredMonths: mo,
		})
		fmt.Printf("  %-22s paper %6.2f mo   at vault bandwidth %10.0f mo\n", a.Name, paper[a.Name], mo)
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s\n\n", outPath)
}
