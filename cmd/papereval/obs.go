package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"

	"securearchive/internal/api"
	"securearchive/internal/api/client"
	"securearchive/internal/cluster"
	"securearchive/internal/core"
	"securearchive/internal/costmodel"
	"securearchive/internal/group"
	"securearchive/internal/obs"
	"securearchive/internal/obs/trace"
)

// obsReport is the JSON schema written by -obs: the §3.2 read-out table
// re-derived from the vault read bandwidth the obs layer measured, plus
// the full metrics snapshot the numbers came from — every figure in the
// table is auditable against a counter or histogram in the snapshot.
type obsReport struct {
	Schema    string `json:"schema"`
	GoMaxProc int    `json:"gomaxprocs"`
	// Workload parameters.
	Objects     int `json:"objects"`
	ObjectBytes int `json:"object_bytes"`
	ReadPasses  int `json:"read_passes"`
	// VaultReadMBPerSec is bytes delivered by Vault.Get divided by time
	// inside Vault.Get: vault.get.bytes.sum / vault.get.ok.sum.
	VaultReadMBPerSec float64               `json:"vault_read_mb_per_sec"`
	GetLatency        obs.HistogramSnapshot `json:"get_latency_ns"`
	// Stages attributes the read path's time to its pipeline stages
	// (probe/fetch, decode, verify), summed from the span-bridge
	// histograms the tracer fills — the hierarchical answer to where
	// vault.get's nanoseconds actually went.
	Stages    []stageRow     `json:"stages"`
	Section32 []section32Row `json:"section32"`
	// PerNode breaks the read fan-out down by cluster node from the
	// cluster.probe{node} / cluster.discard{node} / cluster.retry{node}
	// labeled families — the dimensional view of where probes landed.
	PerNode []nodeRow `json:"per_node"`
	// PerTenant summarises an HTTP phase driven through the api layer by
	// three tenants, from the api.requests{tenant} / api.errors{tenant} /
	// api.ns{tenant} labeled families, plus each tenant's sliding-window
	// SLO error-budget burn.
	PerTenant []tenantRow    `json:"per_tenant"`
	SLOReport *obs.SLOReport `json:"slo_report"`
	Snapshot  *obs.Snapshot  `json:"snapshot"`
}

// nodeRow is one node's share of the stripe-read fan-out.
type nodeRow struct {
	Node     string `json:"node"`
	Probes   int64  `json:"probes"`
	Discards int64  `json:"discards"`
	Retries  int64  `json:"retries"`
}

// tenantRow is one tenant's API-phase summary.
type tenantRow struct {
	Tenant   string  `json:"tenant"`
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	P50Ns    float64 `json:"p50_ns"`
	P99Ns    float64 `json:"p99_ns"`
	// AvailabilityBurn is the tenant's error-budget burn on the
	// availability SLO (1.0 = spending exactly the budget).
	AvailabilityBurn float64 `json:"availability_burn"`
}

// stageRow is one pipeline stage's share of the read window.
type stageRow struct {
	Stage string `json:"stage"`
	// TotalNs is the stage's summed span duration over every read.
	TotalNs float64 `json:"total_ns"`
	// Fraction is TotalNs over vault.get's own summed duration.
	Fraction float64 `json:"fraction"`
}

// runObs drives an instrumented put/read workload through a 14-node
// cluster with a 10-of-14 erasure vault (the dispersal §3.2's archives
// would use), derives the vault's read bandwidth from the obs histograms
// alone, and re-prices the four paper archives' re-encryption campaigns
// at that bandwidth. Results land in BENCH_obs.json.
func runObs(outPath string, objKiB int) {
	fmt.Println("=== §3.2 re-derivation from measured vault read bandwidth (obs counters) ===")
	const n, k = 14, 10
	const objects = 16
	const readPasses = 8

	reg := obs.NewRegistry()
	c := cluster.New(n, nil)
	c.UseRegistry(reg)
	// Tracing on: each Get's fetch/decode/verify children bridge their
	// durations into cluster.fetch.ok / vault.decode.ok / vault.verify.ok,
	// which is where the per-stage attribution below comes from. The span
	// bookkeeping is part of the measured path — the report prices the
	// instrumented read, the same read the monitor watches.
	tr := trace.New(reg, trace.WithRingSize(8))
	tr.SetEnabled(true)
	v, err := core.NewVault(c, core.Erasure{K: k, N: n},
		core.WithGroup(group.Test()), core.WithRegistry(reg), core.WithTracer(tr))
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, objKiB<<10)
	for i := 0; i < objects; i++ {
		rng.Read(buf)
		if err := v.Put(fmt.Sprintf("obj-%04d", i), buf); err != nil {
			fatal(err)
		}
	}
	// The read loop is the measurement window: reset so put traffic does
	// not pollute the read-side histograms.
	reg.Reset()
	for pass := 0; pass < readPasses; pass++ {
		for i := 0; i < objects; i++ {
			if _, err := v.Get(fmt.Sprintf("obj-%04d", i)); err != nil {
				fatal(err)
			}
		}
	}

	snap := reg.Snapshot()
	bytesRead := snap.Histograms["vault.get.bytes"].Sum
	readNs := snap.Histograms["vault.get.ok"].Sum
	if bytesRead <= 0 || readNs <= 0 {
		fatal(fmt.Errorf("obs: read window recorded nothing (bytes=%v ns=%v)", bytesRead, readNs))
	}
	mbps := bytesRead / (readNs / 1e9) / 1e6

	rep := obsReport{
		Schema:            "securearchive/bench-obs/v2",
		GoMaxProc:         runtime.GOMAXPROCS(0),
		Objects:           objects,
		ObjectBytes:       objKiB << 10,
		ReadPasses:        readPasses,
		VaultReadMBPerSec: mbps,
		GetLatency:        snap.Histograms["vault.get.ok"],
		Snapshot:          snap,
	}
	fmt.Printf("vault read bandwidth: %.0f MB/s over %d reads (p50 %.0f µs, p99 %.0f µs per get)\n",
		mbps, int(rep.GetLatency.Count), rep.GetLatency.P50/1e3, rep.GetLatency.P99/1e3)

	fmt.Println("\nread-path stage attribution (from span-bridge histograms):")
	for _, st := range []struct{ label, hist string }{
		{"probe/fetch", "cluster.fetch.ok"},
		{"decode", "vault.decode.ok"},
		{"verify", "vault.verify.ok"},
	} {
		ns := snap.Histograms[st.hist].Sum
		rep.Stages = append(rep.Stages, stageRow{Stage: st.label, TotalNs: ns, Fraction: ns / readNs})
		fmt.Printf("  %-12s %6.1f%% of vault.get time (%s)\n", st.label, 100*ns/readNs, st.hist)
	}

	paper := map[string]float64{
		"Oak Ridge HPSS":       6.75,
		"ECMWF MARS":           10.35,
		"CERN EOS":             8.3,
		"Pergamum (10PB tape)": 0.76,
	}
	scen := costmodel.Scenario{WriteBack: true, ForegroundReserve: true}
	fmt.Printf("\n§3.2 campaign months at measured vault bandwidth (%.0f MB/s, write+reserve):\n", mbps)
	for _, a := range costmodel.PaperArchives() {
		local := costmodel.Archive{
			Name:            a.Name,
			TotalBytes:      a.TotalBytes,
			ReadBytesPerDay: mbps * 1e6 * costmodel.SecondsPerDay,
		}
		mo, err := costmodel.ReencryptMonths(local, scen)
		if err != nil {
			fatal(err)
		}
		rep.Section32 = append(rep.Section32, section32Row{
			Archive:        a.Name,
			PaperMonths:    paper[a.Name],
			MeasuredMonths: mo,
		})
		fmt.Printf("  %-22s paper %6.2f mo   at vault bandwidth %10.0f mo\n", a.Name, paper[a.Name], mo)
	}

	// Dimensional read-out, phase 1: per-node probe attribution from the
	// labeled families the read loop just filled.
	fmt.Println("\nper-node probe fan-out (cluster.probe{node} labeled series):")
	if lc, ok := snap.LabeledCounters["cluster.probe"]; ok {
		for _, s := range lc.Series {
			node := s.Labels[0]
			row := nodeRow{Node: node, Probes: s.Value}
			row.Discards, _ = snap.Series("cluster.discard", node)
			row.Retries, _ = snap.Series("cluster.retry", node)
			rep.PerNode = append(rep.PerNode, row)
			fmt.Printf("  node %-4s probes %6d  discards %4d  retries %4d\n",
				node, row.Probes, row.Discards, row.Retries)
		}
	}

	// Phase 2: three tenants drive the same vault through the HTTP api
	// layer, so the per-tenant families and the SLO table fill from real
	// requests — the /slo view an operator of this vault would see.
	fmt.Println("\nper-tenant API phase (HTTP layer, 3 tenants):")
	svc := api.NewServer(v, api.Config{Registry: reg, Tracer: tr})
	hs := httptest.NewServer(svc.Handler())
	defer hs.Close()
	ctx := context.Background()
	apiObj := len(buf)
	if apiObj > 32<<10 {
		apiObj = 32 << 10
	}
	for ti, tenant := range []string{"acme", "umbrella", "initech"} {
		cl := client.New(hs.URL)
		cl.Tenant = tenant
		for i := 0; i < 2+2*ti; i++ { // staggered load so the rows differ
			id := fmt.Sprintf("api-%02d", i)
			if _, err := cl.Put(ctx, id, bytes.NewReader(buf[:apiObj])); err != nil {
				fatal(err)
			}
			if _, err := cl.GetBytes(ctx, id); err != nil {
				fatal(err)
			}
		}
		// One miss per tenant: a 404 keeps availability green (client
		// fault) but shows up in the per-tenant error counter.
		if _, err := cl.GetBytes(ctx, "no-such-object"); err == nil {
			fatal(fmt.Errorf("obs: expected miss for %s", tenant))
		}
	}
	finalSnap := reg.Snapshot()
	sloRep := svc.SLOTable().Report()
	burnOf := func(tenant string) float64 {
		for _, sub := range sloRep.Subjects {
			if sub.Subject != tenant {
				continue
			}
			for _, st := range sub.SLOs {
				if st.Name == "availability" {
					return st.BudgetBurn
				}
			}
		}
		return 0
	}
	if lc, ok := finalSnap.LabeledCounters["api.requests"]; ok {
		for _, s := range lc.Series {
			tenant := s.Labels[0]
			row := tenantRow{Tenant: tenant, Requests: s.Value, AvailabilityBurn: burnOf(tenant)}
			row.Errors, _ = finalSnap.Series("api.errors", tenant)
			if lh, ok := finalSnap.LabeledHistograms["api.ns"]; ok {
				for _, series := range lh.Series {
					if series.Labels[0] == tenant {
						row.P50Ns, row.P99Ns = series.P50, series.P99
					}
				}
			}
			rep.PerTenant = append(rep.PerTenant, row)
			fmt.Printf("  %-10s requests %4d  errors %3d  p50 %7.0f µs  p99 %7.0f µs  avail-burn %.2f\n",
				tenant, row.Requests, row.Errors, row.P50Ns/1e3, row.P99Ns/1e3, row.AvailabilityBurn)
		}
	}
	rep.SLOReport = sloRep
	rep.Snapshot = finalSnap

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s\n\n", outPath)
}
