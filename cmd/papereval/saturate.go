package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"text/tabwriter"
	"time"

	"securearchive/internal/api"
	"securearchive/internal/cluster"
	"securearchive/internal/core"
	"securearchive/internal/group"
	"securearchive/internal/obs"
	"securearchive/internal/store"
	"securearchive/internal/store/diskstore"
	"securearchive/internal/workload"
)

// saturateWorkers are the closed-loop concurrency levels the sweep
// measures. The acceptance gate compares 16 against 1.
var saturateWorkers = []int{1, 4, 16, 64}

// saturateReport is the JSON schema written by -saturate: one throughput/
// latency curve per encoding (and, with -saturate-faults, a second
// degraded-mode curve per encoding), measured by the closed-loop
// internal/workload driver.
type saturateReport struct {
	Schema    string `json:"schema"`
	GoMaxProc int    `json:"gomaxprocs"`
	// Backend is the storage backend the main and small-object sweeps ran
	// against: "mem" (map-backed) or "disk" (WAL + segments, fsync on
	// commit). The disk section below always compares both.
	Backend string `json:"backend"`
	// Workload parameters (shared by every cell).
	ObjectBytes int            `json:"object_bytes"`
	TotalOps    int            `json:"total_ops"`
	Preload     int            `json:"preload"`
	Mix         workload.OpMix `json:"mix"`
	Seed        int64          `json:"seed"`
	Encodings   []saturateRuns `json:"encodings"`
	// SmallObject is the batched-vs-unbatched 4 KiB sweep written by
	// -saturate-small.
	SmallObject *smallObjectSection `json:"small_object,omitempty"`
	// Disk is the fsync-backed mem-vs-disk sweep written by
	// -saturate-disk.
	Disk *diskSection `json:"disk,omitempty"`
	// Network is the loopback HTTP service sweep written by
	// -saturate-net.
	Network *networkSection `json:"network,omitempty"`
	// ReadCache is the skewed-read cached-vs-uncached sweep written by
	// -saturate-read.
	ReadCache *readCacheSection `json:"read_cache,omitempty"`
}

// readCacheSection is the -saturate-read result: a read-only zipfian
// workload over a preloaded set, swept at several skews with the
// decoded-object read cache off and on (cache sized to half the working
// set, so residency is earned by the admission policy, not given). The
// acceptance gate reads CachedX16 at skew 1.1: cached read ops/s over
// uncached at W=16 (≥ 2 expected — a hit skips the stripe fetch, the
// decode and the chain verify entirely).
type readCacheSection struct {
	Encoding    string          `json:"encoding"`
	ObjectBytes int             `json:"object_bytes"`
	TotalOps    int             `json:"total_ops"`
	Preload     int             `json:"preload"`
	CacheBytes  int64           `json:"cache_bytes"`
	Skews       []readCacheSkew `json:"skews"`
}

// readCacheSkew is one skew level's cached-vs-uncached worker sweep.
type readCacheSkew struct {
	Skew     float64                      `json:"skew"`
	Uncached []*workload.SaturationResult `json:"uncached"`
	Cached   []*workload.SaturationResult `json:"cached"`
	// CachedX16 is cached read ops/s over uncached read ops/s at W=16;
	// HitRatio16 is the cached run's hit ratio there.
	CachedX16  float64 `json:"cached_x_at_w16"`
	HitRatio16 float64 `json:"hit_ratio_at_w16"`
}

// networkSection is the -saturate-net result: the closed-loop driver
// pointed at a live archive service (internal/api) over loopback HTTP
// instead of at the vault directly, one fresh server per cell. The
// runs price the full service stack — routing, tenant admission,
// streaming body transfer, JSON envelopes — against the in-process
// curves in Encodings, and StreamPeakBytes in each run is the server's
// high-water streaming buffer: it must stay O(workers × chunk) no
// matter how many bytes crossed the wire.
type networkSection struct {
	Encoding    string                    `json:"encoding"`
	ObjectBytes int                       `json:"object_bytes"`
	TotalOps    int                       `json:"total_ops"`
	Transport   string                    `json:"transport"`
	ChunkBytes  int                       `json:"chunk_bytes"`
	Mix         workload.OpMix            `json:"mix"`
	Runs        []*workload.NetworkResult `json:"runs"`
	// ScalingX16v1 is ops/s at W=16 over W=1 through the service.
	ScalingX16v1 float64 `json:"scaling_x_16_vs_1"`
}

// diskSection is the -saturate-disk result: one representative encoding
// swept through the same closed-loop driver twice — once on the
// in-memory backend and once on the disk backend with its default
// fsync-on-commit policy, each disk cell in a fresh directory. DiskX16
// is disk ops/s over mem ops/s at W=16: the honest price of making every
// stripe commit a durable WAL record, measured rather than hand-waved.
type diskSection struct {
	Encoding    string                       `json:"encoding"`
	ObjectBytes int                          `json:"object_bytes"`
	TotalOps    int                          `json:"total_ops"`
	Fsync       string                       `json:"fsync"`
	Mem         []*workload.SaturationResult `json:"mem"`
	Disk        []*workload.SaturationResult `json:"disk"`
	DiskX16     float64                      `json:"disk_x_at_w16"`
}

// smallObjectSection is the -saturate-small result: the same closed-loop
// driver over 4 KiB objects with a put-heavy mix, once with every put
// going through Vault.Put and once through a shared core.Batcher. The
// acceptance gate reads BatchedX16: batched ops/s over unbatched ops/s
// at W=16 (≥ 2 expected — group commit amortises the per-put signature,
// commitment chain, and staged dispersal across the whole batch).
type smallObjectSection struct {
	Encoding    string                       `json:"encoding"`
	ObjectBytes int                          `json:"object_bytes"`
	TotalOps    int                          `json:"total_ops"`
	Mix         workload.OpMix               `json:"mix"`
	Unbatched   []*workload.SaturationResult `json:"unbatched"`
	Batched     []*workload.SaturationResult `json:"batched"`
	BatchedX16  float64                      `json:"batched_x_at_w16"`
}

// saturateRuns is one encoding's worker sweep.
type saturateRuns struct {
	Encoding string `json:"encoding"`
	// Faulted marks the degraded-mode run (fault plan active).
	Faulted bool                         `json:"faulted"`
	Runs    []*workload.SaturationResult `json:"runs"`
	// ScalingX16v1 is ops/s at W=16 over ops/s at W=1 — the number the
	// stripe-scaling gate checks (≥ 2 expected on a ≥ 4-core box; on a
	// single-core box it only measures lock overhead, not parallelism).
	ScalingX16v1 float64 `json:"scaling_x_16_vs_1"`
}

// saturateFaultPlan is the degraded-mode pressure for -saturate-faults:
// background transients (retried), read-path bit rot (digest-discarded,
// feeding the dirty queue and scrub repairs), and two slow nodes. No
// hard-down node — Put stages all n shards, so a permanently offline
// node would fail every write rather than degrade reads.
func saturateFaultPlan() *cluster.FaultPlan {
	return &cluster.FaultPlan{
		Seed:    7,
		Default: cluster.NodeFaults{TransientProb: 0.05, CorruptProb: 0.02},
		Nodes: map[int]cluster.NodeFaults{
			5: {TransientProb: 0.05, CorruptProb: 0.02, Latency: 200 * time.Microsecond},
			6: {TransientProb: 0.05, CorruptProb: 0.02, Latency: 500 * time.Microsecond},
		},
	}
}

// openBenchCluster builds one sweep cell's cluster on the requested
// backend. Disk cells each get a fresh directory under root (a cell must
// start empty — reopening a previous cell's archive would replay its WAL
// and preload leftovers); SweepWorkers closes the cluster when the cell
// finishes.
func openBenchCluster(backend, root string, n int) (*cluster.Cluster, error) {
	if backend != store.BackendDisk {
		return cluster.New(n, nil), nil
	}
	dir, err := os.MkdirTemp(root, "cell-")
	if err != nil {
		return nil, err
	}
	return cluster.Open(n, nil, store.Config{Backend: store.BackendDisk, Dir: dir})
}

// runSaturate sweeps every Figure 1 encoding through the closed-loop
// driver at saturateWorkers concurrency levels, writing the curves to
// outPath. encFilter, when non-empty, is a comma-separated substring
// filter over encoding names (case-insensitive). storeBackend selects
// the backend the main and small-object sweeps run on. withMain runs the
// main per-encoding sweep; withSmall appends the batched-vs-unbatched
// 4 KiB small-object sweep; withDisk appends the fsync-backed
// mem-vs-disk comparison.
func runSaturate(outPath, encFilter, storeBackend string, withFaults bool, totalOps, objKiB int, withMain, withSmall, withDisk, withNet, withRead bool) {
	if storeBackend == "" {
		storeBackend = store.BackendMem
	}
	if storeBackend != store.BackendMem && storeBackend != store.BackendDisk {
		fatal(fmt.Errorf("unknown -saturate-store backend %q", storeBackend))
	}
	root, err := os.MkdirTemp("", "papereval-saturate-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(root)

	fmt.Printf("=== closed-loop saturation sweep (striped-vault scaling, %s backend) ===\n", storeBackend)
	objBytes := objKiB << 10
	cfg := workload.SaturationConfig{
		TotalOps:    totalOps,
		ObjectBytes: objBytes,
		Preload:     6,
		Mix:         workload.DefaultMix(),
		Seed:        1,
	}
	rep := saturateReport{
		Schema:      "securearchive/bench-saturate/v1",
		GoMaxProc:   runtime.GOMAXPROCS(0),
		Backend:     storeBackend,
		ObjectBytes: objBytes,
		TotalOps:    cfg.TotalOps,
		Preload:     cfg.Preload,
		Mix:         cfg.Mix,
		Seed:        cfg.Seed,
	}

	if withMain {
		fcfg := core.Figure1Config{N: 8, K: 4, T: 4, PackCount: 3, ObjectLen: objBytes}
		var filters []string
		for _, f := range strings.Split(encFilter, ",") {
			if f = strings.TrimSpace(strings.ToLower(f)); f != "" {
				filters = append(filters, f)
			}
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintf(w, "encoding\tfaults\tW\tops/s\tput p99 (µs)\tget p99 (µs)\terrs\n")
		for _, enc := range core.Figure1Encodings(fcfg) {
			if len(filters) > 0 {
				name := strings.ToLower(enc.Name())
				keep := false
				for _, f := range filters {
					if strings.Contains(name, f) {
						keep = true
					}
				}
				if !keep {
					continue
				}
			}
			modes := []bool{false}
			if withFaults {
				modes = append(modes, true)
			}
			for _, faulted := range modes {
				enc, faulted := enc, faulted
				mk := func() (*core.Vault, *obs.Registry, error) {
					reg := obs.NewRegistry()
					c, err := openBenchCluster(storeBackend, root, 8)
					if err != nil {
						return nil, nil, err
					}
					c.UseRegistry(reg)
					if faulted {
						c.SetFaultPlan(saturateFaultPlan())
					}
					v, err := core.NewVault(c, enc,
						core.WithGroup(group.Test()), core.WithRegistry(reg))
					return v, reg, err
				}
				runs, err := workload.SweepWorkers(saturateWorkers, cfg, mk)
				if err != nil {
					fatal(err)
				}
				sr := saturateRuns{
					Encoding:     enc.Name(),
					Faulted:      faulted,
					Runs:         runs,
					ScalingX16v1: workload.ScalingX(runs, 1, 16),
				}
				rep.Encodings = append(rep.Encodings, sr)
				for _, r := range runs {
					fmt.Fprintf(w, "%s\t%v\t%d\t%.0f\t%.0f\t%.0f\t%d\n",
						enc.Name(), faulted, r.Workers, r.OpsPerSec,
						r.PutLatency.P99Ns/1e3, r.GetLatency.P99Ns/1e3, r.Errors)
				}
			}
		}
		w.Flush()

		fmt.Println("\nscaling (ops/s at W=16 over W=1):")
		for _, sr := range rep.Encodings {
			tag := ""
			if sr.Faulted {
				tag = " [faults]"
			}
			fmt.Printf("  %-34s%s %.2fx\n", sr.Encoding, tag, sr.ScalingX16v1)
		}
		if rep.GoMaxProc < 4 {
			fmt.Printf("note: GOMAXPROCS=%d — the ≥2x stripe-scaling gate applies only on ≥4-core boxes\n", rep.GoMaxProc)
		}
	}

	if withSmall {
		rep.SmallObject = runSmallObjectSweep(storeBackend, root, totalOps)
	}

	if withDisk {
		rep.Disk = runDiskSweep(root, totalOps, objBytes)
	}

	if withNet {
		rep.Network = runNetSweep(totalOps, objBytes)
	}

	if withRead {
		rep.ReadCache = runReadCacheSweep(storeBackend, root, totalOps, objBytes)
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n\n", outPath)
}

// runSmallObjectSweep measures the batched-write win on 4 KiB objects:
// the same closed-loop sweep twice over RS 4-of-8, first with every put
// a full Vault.Put (signature + commitment chain + 8 staged shards per
// object), then with all puts funnelled through one shared core.Batcher
// (group commit: one chain and one stripe per batch).
func runSmallObjectSweep(storeBackend, root string, totalOps int) *smallObjectSection {
	fmt.Println("=== small-object sweep (4 KiB, batched vs unbatched) ===")
	enc := core.Erasure{K: 4, N: 8}
	sec := &smallObjectSection{
		Encoding:    enc.Name(),
		ObjectBytes: workload.SmallObjectBytes,
		TotalOps:    totalOps,
		Mix:         workload.SmallObjectMix(),
	}
	mk := func() (*core.Vault, *obs.Registry, error) {
		reg := obs.NewRegistry()
		c, err := openBenchCluster(storeBackend, root, 8)
		if err != nil {
			return nil, nil, err
		}
		c.UseRegistry(reg)
		v, err := core.NewVault(c, enc,
			core.WithGroup(group.Test()), core.WithRegistry(reg))
		return v, reg, err
	}
	cfg := workload.SaturationConfig{
		TotalOps:    totalOps,
		ObjectBytes: workload.SmallObjectBytes,
		Preload:     6,
		Mix:         sec.Mix,
		Seed:        1,
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "mode\tW\tops/s\tput p99 (µs)\terrs\n")
	for _, batched := range []bool{false, true} {
		c := cfg
		c.Batched = batched
		runs, err := workload.SweepWorkers(saturateWorkers, c, mk)
		if err != nil {
			fatal(err)
		}
		mode := "unbatched"
		if batched {
			mode = "batched"
			sec.Batched = runs
		} else {
			sec.Unbatched = runs
		}
		for _, r := range runs {
			fmt.Fprintf(w, "%s\t%d\t%.0f\t%.0f\t%d\n",
				mode, r.Workers, r.OpsPerSec, r.PutLatency.P99Ns/1e3, r.Errors)
		}
	}
	w.Flush()
	var un, ba float64
	for _, r := range sec.Unbatched {
		if r.Workers == 16 {
			un = r.OpsPerSec
		}
	}
	for _, r := range sec.Batched {
		if r.Workers == 16 {
			ba = r.OpsPerSec
		}
	}
	if un > 0 {
		sec.BatchedX16 = ba / un
	}
	fmt.Printf("batched/unbatched at W=16: %.2fx (gate: ≥2x)\n", sec.BatchedX16)
	return sec
}

// runDiskSweep measures the durability tax: the same encoding, workload
// and worker sweep against the in-memory backend and against the disk
// backend (WAL + append-only segments, fsync on every stripe commit).
// The ratio at W=16 is the honest cost of crash-consistent archival —
// closed-loop workers overlap their commits, so group pressure on the
// shared WAL partially amortises the fsyncs and the sweep shows how much.
func runDiskSweep(root string, totalOps, objBytes int) *diskSection {
	fmt.Println("=== durability sweep (mem vs fsync-backed disk) ===")
	enc := core.Erasure{K: 4, N: 8}
	sec := &diskSection{
		Encoding:    enc.Name(),
		ObjectBytes: objBytes,
		TotalOps:    totalOps,
		Fsync:       diskstore.FsyncCommit,
	}
	cfg := workload.SaturationConfig{
		TotalOps:    totalOps,
		ObjectBytes: objBytes,
		Preload:     6,
		Mix:         workload.DefaultMix(),
		Seed:        1,
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "backend\tW\tops/s\tput p99 (µs)\tget p99 (µs)\terrs\n")
	for _, backend := range []string{store.BackendMem, store.BackendDisk} {
		backend := backend
		mk := func() (*core.Vault, *obs.Registry, error) {
			reg := obs.NewRegistry()
			c, err := openBenchCluster(backend, root, 8)
			if err != nil {
				return nil, nil, err
			}
			c.UseRegistry(reg)
			v, err := core.NewVault(c, enc,
				core.WithGroup(group.Test()), core.WithRegistry(reg))
			return v, reg, err
		}
		runs, err := workload.SweepWorkers(saturateWorkers, cfg, mk)
		if err != nil {
			fatal(err)
		}
		if backend == store.BackendDisk {
			sec.Disk = runs
		} else {
			sec.Mem = runs
		}
		for _, r := range runs {
			fmt.Fprintf(w, "%s\t%d\t%.0f\t%.0f\t%.0f\t%d\n",
				backend, r.Workers, r.OpsPerSec,
				r.PutLatency.P99Ns/1e3, r.GetLatency.P99Ns/1e3, r.Errors)
		}
	}
	w.Flush()
	var mem, disk float64
	for _, r := range sec.Mem {
		if r.Workers == 16 {
			mem = r.OpsPerSec
		}
	}
	for _, r := range sec.Disk {
		if r.Workers == 16 {
			disk = r.OpsPerSec
		}
	}
	if mem > 0 {
		sec.DiskX16 = disk / mem
	}
	fmt.Printf("disk/mem at W=16: %.2fx (fsync=%s)\n", sec.DiskX16, sec.Fsync)
	return sec
}

// netChunkBytes is the vault chunk size the networked sweep runs with:
// small enough that every 16 KiB object streams through the chunked
// pipeline as several chunks, so the sweep exercises (and its
// stream_peak_bytes evidences) the memory-bounded transfer path rather
// than the monolithic fallback.
const netChunkBytes = 4 << 10

// runNetSweep measures the service tax: the closed-loop driver issuing
// every operation through the archive service's HTTP API over loopback
// — streaming uploads into the chunked pipeline, streaming downloads
// out of it, JSON control responses — with one fresh in-memory server
// per cell. Reads the same deterministic payloads the in-process
// sweeps use, so wire corruption would surface as errors.
func runNetSweep(totalOps, objBytes int) *networkSection {
	fmt.Println("=== networked sweep (loopback HTTP service) ===")
	enc := core.Erasure{K: 4, N: 8}
	sec := &networkSection{
		Encoding:    enc.Name(),
		ObjectBytes: objBytes,
		TotalOps:    totalOps,
		Transport:   "http/loopback",
		ChunkBytes:  netChunkBytes,
		Mix:         workload.DefaultMix(),
	}
	mk := func() (*workload.NetworkCell, error) {
		reg := obs.NewRegistry()
		c := cluster.New(8, nil)
		c.UseRegistry(reg)
		v, err := core.NewVault(c, enc,
			core.WithGroup(group.Test()), core.WithRegistry(reg),
			core.WithChunkSize(netChunkBytes))
		if err != nil {
			return nil, err
		}
		svc := api.NewServer(v, api.Config{Registry: reg})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 5 * time.Second}
		go srv.Serve(ln)
		return &workload.NetworkCell{
			BaseURL:    "http://" + ln.Addr().String(),
			Registry:   reg,
			StreamPeak: v.StreamPeakBuffered,
			Shutdown: func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				srv.Shutdown(ctx)
				c.Close()
			},
		}, nil
	}
	cfg := workload.NetworkConfig{
		TotalOps:    totalOps,
		ObjectBytes: objBytes,
		Preload:     6,
		Mix:         sec.Mix,
		Seed:        1,
	}
	runs, err := workload.SweepNetworkWorkers(saturateWorkers, cfg, mk)
	if err != nil {
		fatal(err)
	}
	sec.Runs = runs
	sec.ScalingX16v1 = workload.NetScalingX(runs, 1, 16)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "W\tops/s\tput p99 (µs)\tget p99 (µs)\tstream peak (KiB)\terrs\n")
	for _, r := range runs {
		fmt.Fprintf(w, "%d\t%.0f\t%.0f\t%.0f\t%d\t%d\n",
			r.Workers, r.OpsPerSec, r.PutLatency.P99Ns/1e3, r.GetLatency.P99Ns/1e3,
			r.StreamPeakBytes>>10, r.Errors)
	}
	w.Flush()
	fmt.Printf("network scaling at W=16 over W=1: %.2fx\n", sec.ScalingX16v1)
	return sec
}

// readCacheSkews are the zipfian skew levels the -saturate-read sweep
// measures: barely-skewed (the gate's level), moderately hot, and
// pathologically hot.
var readCacheSkews = []float64{1.1, 1.5, 2.0}

// readCacheWorkers are the concurrency levels for -saturate-read; the
// gate compares cached vs uncached at 16.
var readCacheWorkers = []int{1, 16}

// runReadCacheSweep measures the hot-object read cache: a pure-Get
// zipfian workload over 64 preloaded objects, with the cache budgeted at
// HALF the working set so the admission filter and SLRU eviction decide
// who stays resident. Each skew level runs the same sweep uncached and
// cached; every Get verifies its payload, so a cache serving stale or
// cross-wired bytes shows up as errors, not just as a soft number.
func runReadCacheSweep(storeBackend, root string, totalOps, objBytes int) *readCacheSection {
	fmt.Println("=== read-cache sweep (zipfian gets, cached vs uncached) ===")
	enc := core.Erasure{K: 4, N: 8}
	const preload = 64
	// Enough ops that the preload's compulsory misses don't drown the
	// steady state at the default -saturate-ops.
	readOps := totalOps
	if readOps < 960 {
		readOps = 960
	}
	cacheBytes := int64(objBytes) * preload / 2
	sec := &readCacheSection{
		Encoding:    enc.Name(),
		ObjectBytes: objBytes,
		TotalOps:    readOps,
		Preload:     preload,
		CacheBytes:  cacheBytes,
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "skew\tcache\tW\tread ops/s\tget p99 (µs)\thit%%\terrs\n")
	for _, skew := range readCacheSkews {
		cfg := workload.SaturationConfig{
			TotalOps:    readOps,
			ObjectBytes: objBytes,
			Preload:     preload,
			Mix:         workload.OpMix{Get: 1},
			Seed:        1,
			ReadSkew:    skew,
		}
		rs := readCacheSkew{Skew: skew}
		for _, cached := range []bool{false, true} {
			cached := cached
			mk := func() (*core.Vault, *obs.Registry, error) {
				reg := obs.NewRegistry()
				c, err := openBenchCluster(storeBackend, root, 8)
				if err != nil {
					return nil, nil, err
				}
				c.UseRegistry(reg)
				opts := []core.VaultOption{core.WithGroup(group.Test()), core.WithRegistry(reg)}
				if cached {
					opts = append(opts, core.WithReadCache(cacheBytes))
				}
				v, err := core.NewVault(c, enc, opts...)
				return v, reg, err
			}
			runs, err := workload.SweepWorkers(readCacheWorkers, cfg, mk)
			if err != nil {
				fatal(err)
			}
			mode := "off"
			if cached {
				mode = "on"
				rs.Cached = runs
			} else {
				rs.Uncached = runs
			}
			for _, r := range runs {
				fmt.Fprintf(w, "%.1f\t%s\t%d\t%.0f\t%.0f\t%.0f\t%d\n",
					skew, mode, r.Workers, r.OpsPerSec,
					r.GetLatency.P99Ns/1e3, 100*r.CacheHitRatio, r.Errors)
			}
		}
		var un, ca float64
		for _, r := range rs.Uncached {
			if r.Workers == 16 {
				un = r.OpsPerSec
			}
		}
		for _, r := range rs.Cached {
			if r.Workers == 16 {
				ca = r.OpsPerSec
				rs.HitRatio16 = r.CacheHitRatio
			}
		}
		if un > 0 {
			rs.CachedX16 = ca / un
		}
		sec.Skews = append(sec.Skews, rs)
	}
	w.Flush()
	for _, rs := range sec.Skews {
		fmt.Printf("skew %.1f: cached/uncached at W=16: %.2fx (hit ratio %.2f)\n",
			rs.Skew, rs.CachedX16, rs.HitRatio16)
	}
	fmt.Println("gate: ≥2x at skew 1.1")
	return sec
}
