// Package securearchive is a crypto-agile secure archival framework: a
// from-scratch Go reproduction of the design space charted by "Secure
// Archival is Hard... Really Hard" (HotStorage '24).
//
// The library lives under internal/ (core is the framework; the other
// packages are its substrates), runnable examples under examples/, and
// the paper-evaluation binaries under cmd/. The root bench_test.go
// regenerates every table and figure of the paper; see DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-vs-measured results.
package securearchive
