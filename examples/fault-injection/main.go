// fault-injection walks the vault's fault-tolerance layer end to end:
// a deterministic FaultPlan turns the 8-node cluster hostile (outages,
// transient errors, bit rot), and the vault answers with degraded
// k-of-n reads, atomic stage-then-commit writes that roll back cleanly
// when a node dies mid-renewal, and a Scrub pass that finds and repairs
// the damage once the nodes return. This is §3.3's availability story:
// an archive must outlive its own substrate.
//
//	go run ./examples/fault-injection
package main

import (
	"bytes"
	"fmt"
	"log"

	"securearchive/internal/cluster"
	"securearchive/internal/core"
	"securearchive/internal/obs"
	"securearchive/internal/obs/trace"
)

func main() {
	const n, t = 8, 4
	c := cluster.New(n, nil)
	// Hierarchical tracing on: every vault op below records a span tree
	// (probes, retries, decode, verify), and the epilogue prints the
	// slowest one — the request that ate the most backoff.
	tracer := trace.Default()
	tracer.SetEnabled(true)
	v, err := core.NewVault(c, core.SecretSharing{T: t, N: n})
	if err != nil {
		log.Fatal(err)
	}
	data := []byte("census microdata, embargoed 72 years — readable in 2096")
	if err := v.Put("census", data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %d bytes as %d Shamir shares (any %d reconstruct)\n\n", len(data), n, t)

	// Act 1: degraded reads. n−t nodes go dark — three lose their disks
	// outright, one keeps its share through the blackout — and the
	// survivors fail 30% of operations transiently. The vault fans out
	// probes, retries transients with backoff, and stops at t shares.
	fmt.Printf("--- act 1: %d/%d nodes offline (3 disks lost), survivors 30%% flaky ---\n", n-t, n)
	plan := &cluster.FaultPlan{
		Seed:    2026,
		Default: cluster.NodeFaults{TransientProb: 0.3},
		Nodes:   map[int]cluster.NodeFaults{},
	}
	for i := 0; i < n-t; i++ {
		plan.Nodes[i] = cluster.NodeFaults{Offline: []cluster.Window{{From: 0, To: 100}}}
		if i < 3 {
			c.Delete(i, cluster.ShardKey{Object: "census", Index: i})
		}
	}
	c.SetFaultPlan(plan)
	got, err := v.Get("census")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degraded Get: %d bytes, intact=%v\n\n", len(got), bytes.Equal(got, data))

	// Act 2: atomic renewal. Proactive share renewal must replace all n
	// shares or none — a renewal that stops halfway leaves a mixed-epoch
	// stripe that can never reconstruct. With nodes still down, the
	// staged writes cannot all land, so the whole renewal rolls back.
	fmt.Println("--- act 2: share renewal attempted while nodes are down ---")
	before := c.ObjectBytes("census")
	if err := v.RenewShares("census"); err != nil {
		fmt.Printf("renewal refused: %v\n", err)
	}
	fmt.Printf("rolled back: stored bytes %d → %d, staged leftovers: %d\n", before, c.ObjectBytes("census"), c.StagedCount())
	if got, err := v.Get("census"); err != nil || !bytes.Equal(got, data) {
		log.Fatalf("old stripe damaged by failed renewal: %v", err)
	}
	fmt.Print("old shares untouched — Get still returns the original\n\n")

	// Act 3: scrub and repair. The nodes come back (empty) and one
	// survivor develops bit rot. Scrub localises both kinds of damage
	// with per-shard digests and rebuilds the stripe through the same
	// atomic write path; the rebuild re-randomises every share.
	fmt.Println("--- act 3: nodes return empty, node 5 serves rotted bytes; Scrub repairs ---")
	c.SetFaultPlan(&cluster.FaultPlan{Seed: 7, Nodes: map[int]cluster.NodeFaults{
		5: {CorruptProb: 1.0},
	}})
	_, _ = c.Get(5, cluster.ShardKey{Object: "census", Index: 5}) // one rotted read makes the rot persistent
	c.SetFaultPlan(nil)
	rep, err := v.Scrub("census")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scrub: healthy=%v missing=%v corrupt=%v repaired=%v\n", rep.Healthy, rep.Missing, rep.Corrupt, rep.Repaired)
	rep, err = v.Scrub("census")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-scrub: clean=%v — ", rep.Clean())
	if got, err := v.Get("census"); err == nil && bytes.Equal(got, data) {
		fmt.Println("full health restored")
	} else {
		log.Fatalf("repair failed: %v", err)
	}

	// Renewal works again now that every node is back.
	if err := v.RenewShares("census"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("renewal succeeds on the healed cluster")

	// Epilogue: the whole story is visible in the metrics registry the
	// vault and cluster recorded into along the way — retries, discarded
	// shards with per-node attribution, degraded reads, scrub repairs.
	snap := obs.Default().Snapshot()
	fmt.Println("\n--- telemetry of the run (obs.Default().Snapshot()) ---")
	for _, name := range []string{
		"cluster.retry.attempts",
		"cluster.fetch.probes",
		"cluster.fetch.degraded",
		"cluster.fetch.discarded",
		"cluster.fetch.discarded.node05",
		"cluster.stage.abort",
		"cluster.stage.commit",
		"vault.read.discarded",
		"vault.scrub.repairs",
	} {
		fmt.Printf("%-32s %d\n", name, snap.Counters[name])
	}
	if h, ok := snap.Histograms["vault.get.ok"]; ok {
		fmt.Printf("%-32s p50=%.0fµs p99=%.0fµs over %d reads\n", "vault.get.ok", h.P50/1e3, h.P99/1e3, h.Count)
	}

	// The aggregate says HOW MUCH was retried; the trace says WHERE. The
	// slowest read of the run is act 1's degraded Get — offline probes
	// failing fast, flaky survivors sleeping through backoff (the
	// backoff.slept events below) — rendered as a span timeline.
	var slowest *trace.Trace
	for _, tc := range tracer.Recent(0) {
		if tc.Root != "vault.get" {
			continue
		}
		if slowest == nil || tc.DurNs > slowest.DurNs {
			slowest = tc
		}
	}
	if slowest != nil {
		fmt.Printf("\n--- slowest read of the run (%d traces completed; trace.Timeline) ---\n", tracer.Completed())
		fmt.Print(trace.Timeline(slowest))
	}
}
