// hndl-demo plays out the paper's headline attack — Harvest Now, Decrypt
// Later — against two archives side by side: a commodity AES cloud and a
// POTSHARDS-style secret-shared store. The adversary exfiltrates
// ciphertext today; AES "falls" decades later; only the computational
// archive bleeds retroactively.
//
//	go run ./examples/hndl-demo
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	"securearchive/internal/adversary"
	"securearchive/internal/cascade"
	"securearchive/internal/cluster"
	"securearchive/internal/systems"
)

func main() {
	record := []byte("patient genome — sensitive for the subject's grandchildren too")

	c := cluster.New(8, nil)
	// RS(2,4): any 2 of 6 shards rebuild the (public) ciphertext.
	cloud, err := systems.NewCloudAES(c, 2, 4)
	if err != nil {
		log.Fatal(err)
	}
	pots, err := systems.NewPOTSHARDS(c, 6, 3)
	if err != nil {
		log.Fatal(err)
	}

	cloudRef, err := cloud.Store("genome-cloud", record, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	potsRef, err := pots.Store("genome-pots", record, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}

	// Year 0: a patient nation-state harvests TWO nodes — enough RS
	// shards to rebuild the cloud ciphertext, but below the secret-
	// sharing threshold of 3.
	adv := adversary.NewMobile(2, 2024)
	adv.Corrupt(c, 0)
	adv.Corrupt(c, 1)
	fmt.Println("year 0: adversary exfiltrated nodes 0 and 1")

	noBreaks := adversary.Breaks{}
	fmt.Printf("  cloud archive:   %s\n", verdict(cloud.Breach(adv, cloudRef, noBreaks, 0)))
	fmt.Printf("  shared archive:  %s\n", verdict(pots.Breach(adv, potsRef, noBreaks, 0)))

	// Year 30: cryptanalysis (or a quantum computer) fells AES.
	breaks := adversary.Breaks{Ciphers: map[cascade.Scheme]int{cascade.AES256CTR: 30}}
	fmt.Println("year 30: AES broken")
	cres := cloud.Breach(adv, cloudRef, breaks, 30)
	fmt.Printf("  cloud archive:   %s — %s\n", verdict(cres), cres.Reason)
	if cres.Full {
		fmt.Printf("    recovered: %q\n", cres.Recovered)
	}
	pres := pots.Breach(adv, potsRef, breaks, 30)
	fmt.Printf("  shared archive:  %s — %s\n", verdict(pres), pres.Reason)

	fmt.Println()
	fmt.Println("lesson (§3.2): re-encrypting after the break cannot help the cloud —")
	fmt.Println("the 30-year-old stolen ciphertext already contains the plaintext.")
	fmt.Println("information-theoretic sharing never handed the adversary anything:")
	fmt.Println("2 of 3 required shares are statistically independent of the genome.")
}

func verdict(r systems.BreachResult) string {
	switch {
	case r.Full:
		return "FULL BREACH"
	case r.Violated:
		return "partial leak"
	default:
		return "holds"
	}
}
