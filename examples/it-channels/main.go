// it-channels compares the two information-theoretic channel options the
// paper discusses for protecting data in transit (§3.2, §4): BB84 quantum
// key distribution and the Bounded Storage Model. Both feed one-time-pad
// key material; the demo shows QKD's eavesdropper detection, the BSM's
// storage-gap security sweep, and ends with an OTP transfer keyed by each.
//
//	go run ./examples/it-channels
package main

import (
	"fmt"
	"log"

	"securearchive/internal/bsm"
	"securearchive/internal/otp"
	"securearchive/internal/qkd"
)

func main() {
	fmt.Println("== QKD (BB84): detection-based security ==")
	p := qkd.Params{Photons: 8192, NoiseRate: 0.01, SampleFraction: 0.25, AbortQBER: 0.11}

	clean, err := qkd.Run(p, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean channel: %d photons → %d sifted bits, QBER %.1f%%, %d key bytes\n",
		p.Photons, clean.SiftedBits, clean.EstimatedQBER*100, len(clean.Key))

	tapped := p
	tapped.Eavesdrop = true
	res, err := qkd.Run(tapped, 2)
	if res != nil && res.Detected {
		fmt.Printf("tapped channel: QBER %.1f%% (theory: 25%%) → ABORTED before any secret moved\n",
			res.EstimatedQBER*100)
	} else {
		fmt.Println("tapped channel: NOT detected (err:", err, ") — rerun with more photons")
	}
	prob, _ := qkd.DetectionProbability(p, 100, 10)
	fmt.Printf("intercept-resend detection probability over 100 sessions: %.2f\n", prob)

	fmt.Println("\n== Bounded Storage Model: storage-gap security ==")
	fmt.Println("1 MiB public stream, parties sample 1024 bytes; adversary stores a fraction α:")
	for _, alpha := range []float64{0.1, 0.5, 0.9, 0.99} {
		r, err := bsm.Exchange(bsm.Params{
			StreamBytes: 1 << 20, SampleBytes: 1024,
			AdversaryFraction: alpha, KeyBytes: 64, EveStrategy: bsm.EveRandom,
		}, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  α=%.2f: adversary knows %4d/1024 sampled bytes, fresh entropy %4d B, 64-byte key secure: %v\n",
			alpha, r.EveKnownSamples, r.FreshEntropyBytes, r.Secure)
	}

	fmt.Println("\n== both feed the same OTP transport ==")
	q, err := qkd.Run(p, 3)
	if err != nil {
		log.Fatal(err)
	}
	b, err := bsm.Exchange(bsm.Params{
		StreamBytes: 1 << 20, SampleBytes: 1024,
		AdversaryFraction: 0.5, KeyBytes: 128, EveStrategy: bsm.EveRandom,
	}, 43)
	if err != nil {
		log.Fatal(err)
	}
	for name, key := range map[string][]byte{"QKD": q.Key, "BSM": b.Key} {
		sender := otp.NewPad(append([]byte(nil), key...))
		receiver := otp.NewPad(append([]byte(nil), key...))
		msg := []byte("share #5 in transit")
		ct, err := sender.Encrypt(msg)
		if err != nil {
			log.Fatal(err)
		}
		got, err := receiver.Decrypt(ct)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s-keyed OTP transfer: %q delivered, %d pad bytes left\n",
			name, got, sender.Remaining())
	}

	fmt.Println("\ntrade-off (§4): QKD detects taps but needs quantum hardware; the BSM")
	fmt.Println("needs only bandwidth, but its guarantee rests on the adversary's")
	fmt.Println("storage staying bounded while the stream flows.")
}
