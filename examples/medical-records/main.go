// medical-records archives a hospital's long-lived records the POTSHARDS
// way — shares across administratively independent providers — but
// upgraded with everything §3–§4 of the paper asks for: verifiable
// renewal, commitment-based integrity chains, and a key-management
// committee (HasDPSS-style) for the index encryption key.
//
//	go run ./examples/medical-records
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	"securearchive/internal/cluster"
	"securearchive/internal/group"
	"securearchive/internal/sig"
	"securearchive/internal/systems"
)

func main() {
	// Six independent providers in six regions: no single subpoena,
	// breach, or bankruptcy exposes anything.
	providers := cluster.New(6, []string{
		"hospital-dc", "university-archive", "national-library",
		"cloud-a", "cloud-b", "overseas-trustee",
	})
	grp := group.Test()

	archive, err := systems.NewVSRArchive(providers, 6, 3)
	if err != nil {
		log.Fatal(err)
	}
	keyMgmt, err := systems.NewHasDPSS(providers, 6, 3, grp)
	if err != nil {
		log.Fatal(err)
	}
	lincos, err := systems.NewLINCOS(providers, 6, 3, grp, 99)
	if err != nil {
		log.Fatal(err)
	}

	// Patient records: bulk data through the secret-shared archive.
	records := map[string][]byte{
		"patient-0001": []byte("1961-03-02 | blood type O- | oncology history ..."),
		"patient-0002": []byte("1975-11-30 | allergies: penicillin | cardiology ..."),
		"patient-0003": []byte("2003-07-14 | genome ref GRCh38 chr7:117559590 ..."),
	}
	refs := map[string]*systems.Ref{}
	for id, rec := range records {
		ref, err := archive.Store(id, rec, rand.Reader)
		if err != nil {
			log.Fatal(err)
		}
		refs[id] = ref
	}
	fmt.Printf("archived %d records across %d providers (any 3 reconstruct, 2 reveal nothing — ever)\n",
		len(records), providers.Size())

	// The index encryption key lives with the key-management committee.
	indexKey := []byte("index-key-0123456789abcdef!!")
	keyRef, err := keyMgmt.Store("index-key", indexKey, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("index key escrowed with the verifiable key-management committee")

	// One record needs decade-grade integrity evidence: LINCOS-style
	// commitment timestamping (reveals no digest of the record).
	linRef, err := lincos.Store("patient-0003-sealed", records["patient-0003"], rand.Reader)
	if err != nil {
		log.Fatal(err)
	}

	// Quarterly operations: advance the epoch, refresh everything.
	for quarter := 1; quarter <= 4; quarter++ {
		providers.AdvanceEpoch()
		for _, ref := range refs {
			if err := archive.Renew(ref, rand.Reader); err != nil {
				log.Fatal(err)
			}
		}
		if err := keyMgmt.Renew(keyRef, rand.Reader); err != nil {
			log.Fatal(err)
		}
		if err := lincos.Renew(linRef, rand.Reader); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("4 quarterly renewals done; VSR renewal traffic so far: %.1f KB\n",
		float64(archive.RenewTraffic)/1e3)
	fmt.Printf("key committee audit ledger: %d blocks, replay ok: %v\n",
		len(keyMgmt.Ledger), keyMgmt.VerifyLedger() == nil)

	// A provider goes bankrupt and its disks are auctioned; another
	// suffers a ransomware wipe.
	providers.SetOnline(1, false)
	providers.SetOnline(4, false)

	rec, err := archive.Retrieve(refs["patient-0001"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("patient-0001 retrieved with 2 providers gone: %q...\n", rec[:24])

	key, err := keyMgmt.Retrieve(keyRef)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index key recovered and verified share-by-share: %v\n", string(key) == string(indexKey))

	// Integrity evidence survives a signature-scheme break that happened
	// AFTER the chain rotated past it.
	chain := lincos.Chain("patient-0003-sealed")
	breaks := sig.BreakSchedule{sig.Ed25519: 2}
	fmt.Printf("sealed record chain: %d links, valid under a year-2 Ed25519 break: %v\n",
		chain.Len(), chain.Verify(providers.Epoch(), breaks) == nil)
}
