// proactive-renewal demonstrates the Ostrovsky–Yung mobile adversary and
// the Herzberg share-renewal defence: the same 20-epoch corruption
// campaign is run against a renewing and a non-renewing committee, and
// only the renewing one survives. The renewal's Θ(n²) traffic — the
// paper's §3.2 cost warning — is metered and printed.
//
//	go run ./examples/proactive-renewal
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	mrand "math/rand"

	"securearchive/internal/pss"
	"securearchive/internal/shamir"
)

func main() {
	secret := []byte("launch codes from 1986 — still classified")
	const n, t, epochs = 6, 3, 20

	for _, renewing := range []bool{false, true} {
		committee, err := pss.NewDataCommittee(secret, n, t, rand.Reader)
		if err != nil {
			log.Fatal(err)
		}
		rng := mrand.New(mrand.NewSource(7))

		// The adversary steals ONE holder's share each epoch; the holder
		// set rotates (mobile). It remembers everything.
		type stolen struct {
			epoch int
			share shamir.Share
		}
		var vault []stolen
		for e := 0; e < epochs; e++ {
			victim := rng.Intn(n)
			vault = append(vault, stolen{epoch: committee.Epoch, share: committee.Shares[victim].Clone()})
			if renewing {
				if err := committee.Renew(rand.Reader); err != nil {
					log.Fatal(err)
				}
			}
		}

		// Attack: combine the best same-epoch set of distinct shares.
		byEpoch := map[int]map[byte]shamir.Share{}
		for _, s := range vault {
			if byEpoch[s.epoch] == nil {
				byEpoch[s.epoch] = map[byte]shamir.Share{}
			}
			byEpoch[s.epoch][s.share.X] = s.share
		}
		breached := false
		for _, shares := range byEpoch {
			if len(shares) < t {
				continue
			}
			var set []shamir.Share
			for _, sh := range shares {
				set = append(set, sh)
			}
			if got, err := shamir.Combine(set[:t]); err == nil && string(got) == string(secret) {
				breached = true
				break
			}
		}

		mode := "static shares (POTSHARDS-style)"
		if renewing {
			mode = "per-epoch renewal (VSR/Herzberg)"
		}
		fmt.Printf("%-36s stolen=%d epochs=%d breached=%v\n", mode, len(vault), epochs, breached)
		if renewing {
			fmt.Printf("    renewal bill: %d rounds, %d messages, %.1f KB share traffic, %.1f KB broadcast\n",
				committee.Stats.Rounds, committee.Stats.Messages,
				float64(committee.Stats.Bytes)/1e3, float64(committee.Stats.Broadcast)/1e3)
		}
	}

	fmt.Println()
	fmt.Println("the committee can also change shape without exposing the secret:")
	committee, _ := pss.NewDataCommittee(secret, 6, 3, rand.Reader)
	bigger, err := committee.Redistribute(9, 5, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	got, err := bigger.Reconstruct(0, 2, 4, 6, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("redistributed (3,6) → (5,9); secret intact: %v\n", string(got) == string(secret))
}
