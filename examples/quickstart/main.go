// Quickstart: archive a document into a simulated geo-dispersed cluster
// with information-theoretic confidentiality, lose nodes, renew integrity
// across a signature-scheme rotation, and read it back.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"securearchive/internal/cluster"
	"securearchive/internal/core"
	"securearchive/internal/group"
	"securearchive/internal/sig"
)

func main() {
	// An 8-node cluster spread across six regions.
	c := cluster.New(8, nil)
	fmt.Println("cluster regions:", c.Regions())

	// Ask the policy engine what a century-long horizon demands.
	rec, err := core.Recommend(core.Requirements{
		HorizonYears: 100,
		MaxOverhead:  10,
		Nodes:        8,
		Threshold:    4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy: %s — %s\n", rec.Encoding.Name(), rec.Rationale)
	for _, cv := range rec.Caveats {
		fmt.Println("  caveat:", cv)
	}

	// Build a vault with the recommended encoding. (group.Test keeps the
	// Pedersen commitments fast for a demo; production uses the default
	// 2048-bit group.)
	vault, err := core.NewVault(c, rec.Encoding, core.WithGroup(group.Test()))
	if err != nil {
		log.Fatal(err)
	}

	document := []byte("CENSUS 2026 — individual records, sealed for 100 years")
	if err := vault.Put("census-2026", document); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archived %q: %.1fx storage cost\n", "census-2026", vault.StorageCost("census-2026"))

	// Decades pass: Ed25519 is looking shaky. Rotate the integrity chain
	// BEFORE it breaks.
	c.AdvanceEpoch()
	if err := vault.RenewIntegrity("census-2026", sig.ECDSAP256); err != nil {
		log.Fatal(err)
	}
	fmt.Println("integrity chain renewed with", sig.ECDSAP256)

	// The mobile adversary forces periodic share refresh too.
	if rec.NeedsProactiveRenewal {
		if err := vault.RenewShares("census-2026"); err != nil {
			log.Fatal(err)
		}
		fmt.Println("shares proactively re-randomised")
	}

	// Two regions burn down.
	c.SetOnline(2, false)
	c.SetOnline(5, false)

	got, err := vault.Get("census-2026")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d bytes with 2 nodes offline: %q...\n", len(got), got[:22])

	// The chain still proves integrity even if Ed25519 broke after the
	// rotation.
	breaks := sig.BreakSchedule{sig.Ed25519: 2}
	if err := vault.Chain("census-2026").Verify(10, breaks); err != nil {
		log.Fatal(err)
	}
	fmt.Println("timestamp chain valid despite a (post-rotation) Ed25519 break")
}
