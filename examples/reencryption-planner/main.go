// reencryption-planner turns §3.2's arithmetic into an operations tool:
// given an archive's size, media, and throughput, it reports how long an
// emergency re-encryption campaign would run, how long the exposure
// window stays open, what a proactive-renewal sweep costs instead, and
// what drive fleet would be needed to hit a deadline.
//
//	go run ./examples/reencryption-planner
package main

import (
	"fmt"
	"log"

	"securearchive/internal/costmodel"
	"securearchive/internal/media"
)

func main() {
	// Plan for a national-archive-scale system.
	const archiveBytes = 5e17 // 500 PB
	tape, err := media.Get("tape")
	if err != nil {
		log.Fatal(err)
	}

	// A 40-drive tape library's aggregate throughput.
	const drives = 40
	readPerDay := tape.ReadBandwidth * 86400 * drives

	fmt.Printf("archive: 500 PB on %s, %d drives (%.0f TB/day aggregate)\n",
		tape.Name, drives, readPerDay/1e12)

	a := costmodel.Archive{Name: "plan", TotalBytes: archiveBytes, ReadBytesPerDay: readPerDay}
	for _, sc := range []struct {
		label string
		s     costmodel.Scenario
	}{
		{"read-only floor", costmodel.Scenario{}},
		{"with write-back", costmodel.Scenario{WriteBack: true}},
		{"with foreground reserve", costmodel.Scenario{WriteBack: true, ForegroundReserve: true}},
	} {
		mo, err := costmodel.ReencryptMonths(a, sc.s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-26s %6.1f months (%.1f years)\n", sc.label, mo, mo/12)
	}

	exp, _ := costmodel.ExposureWindow(a, costmodel.Scenario{WriteBack: true, ForegroundReserve: true})
	fmt.Printf("\nif the cipher breaks TODAY, the last object stays exposed for %.1f years.\n", exp/12)

	// What would meeting a 3-month deadline take?
	needed := tape.DrivesForReadDeadline(archiveBytes*2 /* read+write */, 90)
	fmt.Printf("to finish in 3 months you would need ≈%d drives (%.0fx the fleet).\n",
		needed, float64(needed)/drives)

	// The secret-sharing alternative: proactive renewal instead of
	// re-encryption, priced on the same network budget.
	fmt.Println("\nproactive-renewal alternative (1 MB objects):")
	for _, n := range []int{4, 8, 16} {
		mo, err := costmodel.RenewalCampaign(archiveBytes, 1e6, n, readPerDay)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  committee n=%-2d  one full renewal sweep: %7.1f months\n", n, mo)
	}
	fmt.Println("\nneither path escapes the I/O wall — the paper's point. Plan renewal")
	fmt.Println("cadence and media fleet BEFORE choosing the committee size.")

	// Media comparison for the next build-out.
	fmt.Println("\nmedia options for the next 500 PB:")
	for _, name := range media.Names() {
		m, _ := media.Get(name)
		fmt.Printf("  %-6s %8.2f m³ volume, $%11.0f media cost, %6.0fy life, offline=%v\n",
			m.Name,
			m.VolumeForBytes(archiveBytes)/1e9, // mm³ → m³
			m.CostForBytes(archiveBytes),
			m.LifetimeYears, !m.Online)
	}
}
