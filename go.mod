module securearchive

go 1.22
