// Integration tests exercising whole-archive lifecycles across modules:
// the "century simulation" that strings together epochs, renewals,
// signature rotation, node failures and repairs, cryptanalytic breaks,
// and the adversary — the scenario the paper's abstract describes.
package securearchive_test

import (
	"bytes"
	"crypto/rand"
	"fmt"
	mrand "math/rand"
	"testing"

	"securearchive/internal/adversary"
	"securearchive/internal/bsm"
	"securearchive/internal/cascade"
	"securearchive/internal/cluster"
	"securearchive/internal/core"
	"securearchive/internal/group"
	"securearchive/internal/otp"
	"securearchive/internal/qkd"
	"securearchive/internal/sig"
	"securearchive/internal/systems"
)

// TestCenturySimulation runs a VSR-style archive through 100 simulated
// years (1 epoch = 1 year): yearly share renewal, signature rotation
// every 20 years, a node failure + repair every decade, a mobile
// adversary stealing one node per year, and a total cryptanalytic
// collapse at year 40. At year 100 the data must still be retrievable,
// its integrity chain valid, and the adversary empty-handed.
func TestCenturySimulation(t *testing.T) {
	c := cluster.New(8, nil)
	grp := group.Test()
	archive, err := systems.NewVSRArchive(c, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	lincos, err := systems.NewLINCOS(c, 6, 3, grp, 11)
	if err != nil {
		t.Fatal(err)
	}

	record := []byte("born 2026: sealed until 2126 — the paper's opening premise")
	ref, err := archive.Store("century", record, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	sealedRef, err := lincos.Store("century-sealed", record, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	adv := adversary.NewMobile(1, 2126)
	breaks := adversary.Breaks{
		Ciphers: map[cascade.Scheme]int{
			cascade.AES256CTR: 40, cascade.ChaCha20: 40, cascade.SHA256CTR: 40,
		},
		// Ed25519 (the launch scheme, rotated away at year 1) breaks at
		// year 40. The schemes still in the yearly rotation must outlive
		// the simulation: the tstamp semantics are strict — a break at
		// epoch e voids any link whose renewal horizon is e — so an
		// archive must stop USING a scheme before it breaks, not merely
		// keep renewing past it (tested separately in internal/tstamp).
		Signatures: sig.BreakSchedule{sig.Ed25519: 40},
		HashBroken: 40,
	}
	rng := mrand.New(mrand.NewSource(1))

	for year := 1; year <= 100; year++ {
		c.AdvanceEpoch()
		adv.CorruptRandom(c)

		// Yearly share refresh.
		if err := archive.Renew(ref, rand.Reader); err != nil {
			t.Fatalf("year %d renew: %v", year, err)
		}
		if err := lincos.Renew(sealedRef, rand.Reader); err != nil {
			t.Fatalf("year %d lincos renew: %v", year, err)
		}

		// Decennial disaster: one node wiped, then repaired.
		if year%10 == 0 {
			victim := rng.Intn(6)
			if err := c.Delete(victim, cluster.ShardKey{Object: "century", Index: victim}); err != nil {
				t.Fatal(err)
			}
			if err := archive.Repair(ref, victim, rand.Reader); err != nil {
				t.Fatalf("year %d repair node %d: %v", year, victim, err)
			}
		}

		// Spot-check the adversary is making no progress.
		if year%25 == 0 {
			if res := archive.Breach(adv, ref, breaks, year); res.Violated {
				t.Fatalf("year %d: archive breached: %s", year, res.Reason)
			}
		}
	}

	// Year 100: the record is intact and retrievable.
	got, err := archive.Retrieve(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, record) {
		t.Fatal("record corrupted over the century")
	}
	// The sealed copy's 101-link chain verifies despite the year-40
	// Ed25519 break (its successor link predates the break) and the
	// year-80 ECDSA break (rotation alternates ECDSA/RSA yearly, so every
	// ECDSA link has an RSA successor within a year).
	chain := lincos.Chain("century-sealed")
	if chain.Len() != 101 {
		t.Fatalf("chain has %d links, want 101", chain.Len())
	}
	if err := chain.Verify(100, breaks.Signatures); err != nil {
		t.Fatalf("century chain invalid: %v", err)
	}
	// The adversary visited every node many times over, and holds
	// nothing usable.
	if adv.NodesVisited() != 8 {
		t.Fatalf("adversary visited %d/8 nodes", adv.NodesVisited())
	}
	if res := archive.Breach(adv, ref, breaks, 100); res.Violated {
		t.Fatalf("archive breached at year 100: %s", res.Reason)
	}
	if best := adv.MaxSameEpochShards("century"); best >= 3 {
		t.Fatalf("adversary accumulated %d same-epoch shares", best)
	}
}

// TestVaultLifecycleAllEncodings runs the full vault path (put, failure,
// integrity rotation, share refresh, get) under every Figure 1 encoding.
func TestVaultLifecycleAllEncodings(t *testing.T) {
	cfg := core.Figure1Config{N: 8, K: 4, T: 4, PackCount: 3, ObjectLen: 4096}
	data := make([]byte, cfg.ObjectLen)
	rand.Read(data)
	for _, enc := range core.Figure1Encodings(cfg) {
		enc := enc
		t.Run(enc.Name(), func(t *testing.T) {
			c := cluster.New(8, nil)
			v, err := core.NewVault(c, enc, core.WithGroup(group.Test()))
			if err != nil {
				t.Fatal(err)
			}
			if err := v.Put("obj", data); err != nil {
				t.Fatal(err)
			}
			c.AdvanceEpoch()
			if err := v.RenewIntegrity("obj", sig.ECDSAP256); err != nil {
				t.Fatal(err)
			}
			if err := v.RenewShares("obj"); err != nil {
				t.Fatal(err)
			}
			// Knock out exactly the tolerated number of nodes.
			n, min := enc.Shards()
			for i := min; i < n; i++ {
				c.SetOnline(i, false)
			}
			got, err := v.Get("obj")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("mismatch")
			}
		})
	}
}

// TestQKDFedOTPTransfer wires two substrates end to end: a BB84 session
// produces key material that an OTP pad consumes to move a message with
// information-theoretic transit secrecy — LINCOS's transport, standalone.
func TestQKDFedOTPTransfer(t *testing.T) {
	res, err := qkd.Run(qkd.Params{
		Photons: 16384, NoiseRate: 0.01, SampleFraction: 0.25, AbortQBER: 0.11,
	}, 77)
	if err != nil {
		t.Fatal(err)
	}
	sender := otp.NewPad(append([]byte(nil), res.Key...))
	receiver := otp.NewPad(append([]byte(nil), res.Key...))
	msg := []byte("share 3 of object 9")
	if len(msg) > sender.Remaining() {
		t.Fatalf("QKD session yielded %d bytes, need %d", sender.Remaining(), len(msg))
	}
	ct, err := sender.Encrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := receiver.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("QKD-keyed OTP transfer failed")
	}
}

// TestBSMFedOTPTransfer does the same with the Bounded Storage Model —
// the paper's §4 alternative channel.
func TestBSMFedOTPTransfer(t *testing.T) {
	res, err := bsm.Exchange(bsm.Params{
		StreamBytes: 1 << 18, SampleBytes: 512,
		AdversaryFraction: 0.5, KeyBytes: 64, EveStrategy: bsm.EveRandom,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Secure {
		t.Fatalf("BSM exchange insecure: fresh=%d", res.FreshEntropyBytes)
	}
	a := otp.NewPad(append([]byte(nil), res.Key...))
	b := otp.NewPad(append([]byte(nil), res.Key...))
	msg := []byte("bounded storage beats unbounded computation, sometimes")
	ct, err := a.Encrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Decrypt(ct)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("BSM-keyed OTP transfer failed: %v", err)
	}
}

// TestMultiObjectArchiveUnderChurn stores many objects, churns nodes and
// epochs with randomized failures, and verifies every object at the end —
// a property-style soak of the whole stack.
func TestMultiObjectArchiveUnderChurn(t *testing.T) {
	c := cluster.New(8, nil)
	archive, err := systems.NewVSRArchive(c, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(9))
	type obj struct {
		ref  *systems.Ref
		data []byte
	}
	var objs []obj
	for i := 0; i < 20; i++ {
		data := make([]byte, 100+rng.Intn(2000))
		rand.Read(data)
		ref, err := archive.Store(fmt.Sprintf("obj-%02d", i), data, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj{ref, data})
	}
	for round := 0; round < 10; round++ {
		c.AdvanceEpoch()
		// Random transient failures.
		down := rng.Perm(8)[:rng.Intn(3)]
		for _, d := range down {
			c.SetOnline(d, false)
		}
		// Renew a random half of the objects (skip if a member is down —
		// renewal needs all holders; restore first in that case).
		for _, d := range down {
			c.SetOnline(d, true)
		}
		for _, o := range objs {
			if rng.Intn(2) == 0 {
				if err := archive.Renew(o.ref, rand.Reader); err != nil {
					t.Fatalf("round %d renew %s: %v", round, o.ref.Object, err)
				}
			}
		}
	}
	for _, o := range objs {
		got, err := archive.Retrieve(o.ref)
		if err != nil {
			t.Fatalf("%s: %v", o.ref.Object, err)
		}
		if !bytes.Equal(got, o.data) {
			t.Fatalf("%s: corrupted", o.ref.Object)
		}
	}
}
