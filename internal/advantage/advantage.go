// Package advantage operationalises the paper's security definitions
// (§2, Definitions 2.1 and 2.2): the distinguishing advantage
//
//	| Pr[A(Enc_k(m0)) = 1] − Pr[A(Enc_k(m1)) = 1] |
//
// estimated empirically over a family of concrete distinguishers. An
// information-theoretically secure encoding drives the estimate to ≈0 for
// EVERY distinguisher; a leaky encoding gives some distinguisher a large
// advantage. The estimator is used by tests to pin the Figure 1 security
// axis to the formal definition it abbreviates: the levels are not
// labels, they are measurable.
//
// The distinguisher family here is deliberately simple — single-position
// byte-threshold tests and byte-equality tests — because against perfect
// secrecy even unbounded adversaries gain nothing, while against
// plaintext-exposing encodings these trivial tests already win. The
// estimator reports the best advantage across the family with the usual
// Monte-Carlo error of O(1/√trials).
package advantage

import (
	"errors"
	"fmt"
)

// ErrBadParams reports invalid estimator inputs.
var ErrBadParams = errors.New("advantage: invalid parameters")

// Sampler produces the adversary's view of an encryption of the fixed
// message it represents (fresh randomness per call).
type Sampler func() ([]byte, error)

// Result is the estimated maximum advantage over the family.
type Result struct {
	// MaxAdvantage is the best |p0 − p1| found.
	MaxAdvantage float64
	// Distinguisher describes which test achieved it.
	Distinguisher string
}

// Estimate runs `trials` samples of each message through every
// distinguisher in the built-in family and returns the best advantage.
// Views shorter than the probed positions are handled by skipping those
// tests. positions limits how many byte offsets are probed (spread evenly
// across the view).
func Estimate(enc0, enc1 Sampler, trials, positions int) (*Result, error) {
	if trials < 10 || positions < 1 {
		return nil, fmt.Errorf("%w: trials=%d positions=%d", ErrBadParams, trials, positions)
	}
	v0 := make([][]byte, trials)
	v1 := make([][]byte, trials)
	minLen := -1
	for i := 0; i < trials; i++ {
		a, err := enc0()
		if err != nil {
			return nil, err
		}
		b, err := enc1()
		if err != nil {
			return nil, err
		}
		v0[i], v1[i] = a, b
		if minLen == -1 || len(a) < minLen {
			minLen = len(a)
		}
		if len(b) < minLen {
			minLen = len(b)
		}
	}
	if minLen == 0 {
		return nil, fmt.Errorf("%w: empty views", ErrBadParams)
	}
	if positions > minLen {
		positions = minLen
	}

	best := Result{}
	consider := func(adv float64, desc string) {
		if adv > best.MaxAdvantage {
			best.MaxAdvantage = adv
			best.Distinguisher = desc
		}
	}
	stride := minLen / positions
	if stride == 0 {
		stride = 1
	}
	for p := 0; p < minLen; p += stride {
		// Threshold tests: A(view) = 1 iff view[p] < θ, for θ over a
		// coarse grid.
		for _, theta := range []byte{32, 64, 96, 128, 160, 192, 224} {
			c0, c1 := 0, 0
			for i := 0; i < trials; i++ {
				if v0[i][p] < theta {
					c0++
				}
				if v1[i][p] < theta {
					c1++
				}
			}
			consider(absDiff(c0, c1, trials),
				fmt.Sprintf("byte[%d] < %d", p, theta))
		}
		// Equality-to-constant tests over the observed values of view0:
		// catches deterministic/plaintext encodings outright.
		ref := v0[0][p]
		c0, c1 := 0, 0
		for i := 0; i < trials; i++ {
			if v0[i][p] == ref {
				c0++
			}
			if v1[i][p] == ref {
				c1++
			}
		}
		consider(absDiff(c0, c1, trials),
			fmt.Sprintf("byte[%d] == %#02x", p, ref))
	}
	return &best, nil
}

func absDiff(c0, c1, n int) float64 {
	d := float64(c0-c1) / float64(n)
	if d < 0 {
		d = -d
	}
	return d
}
