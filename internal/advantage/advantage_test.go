package advantage

import (
	"crypto/rand"
	"errors"
	"testing"

	"securearchive/internal/otp"
	"securearchive/internal/shamir"
)

// Two maximally distinguishable messages.
var (
	m0 = make([]byte, 64) // all zero
	m1 = func() []byte {
		b := make([]byte, 64)
		for i := range b {
			b[i] = 0xFF
		}
		return b
	}()
)

// TestOTPAdvantageNearZero: Definition 2.1 with ε≈0 — no distinguisher in
// the family gains more than Monte-Carlo noise against the one-time pad.
func TestOTPAdvantageNearZero(t *testing.T) {
	sampler := func(m []byte) Sampler {
		return func() ([]byte, error) {
			pad, err := otp.NewRandomPad(len(m), rand.Reader)
			if err != nil {
				return nil, err
			}
			ct, err := pad.Encrypt(m)
			if err != nil {
				return nil, err
			}
			return ct.Body, nil
		}
	}
	res, err := Estimate(sampler(m0), sampler(m1), 2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	// 2000 trials → noise ≈ 1/√2000 ≈ 0.022 per test; the family probes
	// ~64 tests, so allow a generous union bound.
	if res.MaxAdvantage > 0.12 {
		t.Fatalf("OTP advantage %.3f via %s — should be noise", res.MaxAdvantage, res.Distinguisher)
	}
}

// TestShamirBelowThresholdAdvantageNearZero: a single share of a (2, n)
// sharing is uniform regardless of the secret.
func TestShamirBelowThresholdAdvantageNearZero(t *testing.T) {
	sampler := func(m []byte) Sampler {
		return func() ([]byte, error) {
			shares, err := shamir.Split(m, 3, 2, rand.Reader)
			if err != nil {
				return nil, err
			}
			return shares[0].Payload, nil
		}
	}
	res, err := Estimate(sampler(m0), sampler(m1), 2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxAdvantage > 0.12 {
		t.Fatalf("below-threshold share advantage %.3f via %s", res.MaxAdvantage, res.Distinguisher)
	}
}

// TestPlaintextEncodingAdvantageMaximal: an erasure-coded (systematic)
// shard IS plaintext; the family should find advantage ≈1 instantly.
func TestPlaintextEncodingAdvantageMaximal(t *testing.T) {
	sampler := func(m []byte) Sampler {
		return func() ([]byte, error) {
			// Systematic shard 0 is the first chunk of the data itself.
			return m[:16], nil
		}
	}
	res, err := Estimate(sampler(m0), sampler(m1), 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxAdvantage < 0.95 {
		t.Fatalf("plaintext advantage %.3f, want ≈1", res.MaxAdvantage)
	}
}

// TestDeterministicEncryptionLeaks: a toy deterministic cipher (fixed
// pad) is computationally fine per-message but its ciphertexts for m0
// and m1 are distinguishable with advantage 1 — the equality test finds
// it even though every byte looks random in isolation.
func TestDeterministicEncryptionLeaks(t *testing.T) {
	fixed := make([]byte, 64)
	rand.Read(fixed)
	sampler := func(m []byte) Sampler {
		return func() ([]byte, error) {
			out := make([]byte, len(m))
			for i := range m {
				out[i] = m[i] ^ fixed[i]
			}
			return out, nil
		}
	}
	res, err := Estimate(sampler(m0), sampler(m1), 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxAdvantage < 0.95 {
		t.Fatalf("deterministic-cipher advantage %.3f, want ≈1 (found by %s)",
			res.MaxAdvantage, res.Distinguisher)
	}
}

func TestEstimateValidation(t *testing.T) {
	ok := func() ([]byte, error) { return []byte{1}, nil }
	if _, err := Estimate(ok, ok, 5, 1); !errors.Is(err, ErrBadParams) {
		t.Fatalf("tiny trials: %v", err)
	}
	if _, err := Estimate(ok, ok, 100, 0); !errors.Is(err, ErrBadParams) {
		t.Fatalf("no positions: %v", err)
	}
	empty := func() ([]byte, error) { return nil, nil }
	if _, err := Estimate(empty, empty, 100, 1); !errors.Is(err, ErrBadParams) {
		t.Fatalf("empty views: %v", err)
	}
}
