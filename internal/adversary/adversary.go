// Package adversary implements the paper's threat model as an executable
// simulator: the Ostrovsky–Yung mobile adversary (§2) plus the
// Harvest-Now-Decrypt-Later collector and the break-event clock (§3.1).
//
// A Mobile adversary corrupts at most Budget nodes per epoch. Corruption
// is modelled as exfiltration: the adversary snapshots everything the node
// stores and remembers WHICH EPOCH each shard came from — the detail that
// decides whether proactive renewal saves the day. Between epochs the
// corruption set moves (hence "mobile"); over enough epochs every node is
// visited, so any defence that relies on some node never being touched
// eventually fails, exactly as the paper argues.
//
// Breaks is the cryptanalytic clock: each computational primitive is
// assigned the epoch at which it falls. A break is modelled as key/
// preimage recovery — from its break epoch onward, the adversary can
// strip that primitive from anything in its harvest, including material
// harvested long before. That retroactivity IS Harvest Now, Decrypt
// Later; experiment E4 runs it against every system in Table 1.
package adversary

import (
	"math/rand"
	"sort"
	"sync"

	"securearchive/internal/cascade"
	"securearchive/internal/cluster"
	"securearchive/internal/sig"
)

// Breaks schedules the fall of each computational primitive, in epochs.
// Primitives absent from the maps never break. The zero value breaks
// nothing.
type Breaks struct {
	// Ciphers maps cascade cipher schemes to their break epoch.
	Ciphers map[cascade.Scheme]int
	// Signatures maps signature schemes to their break epoch.
	Signatures sig.BreakSchedule
	// HashBroken is the epoch SHA-256 preimage resistance falls
	// (0 = never). A hash break voids AONT-RS's "knows the key" defence
	// and hash-commitment hiding.
	HashBroken int
}

// CipherBrokenAt reports whether scheme s is broken at epoch e.
func (b Breaks) CipherBrokenAt(s cascade.Scheme, e int) bool {
	be, ok := b.Ciphers[s]
	return ok && e >= be
}

// HashBrokenAt reports whether the hash family is broken at epoch e.
func (b Breaks) HashBrokenAt(e int) bool {
	return b.HashBroken > 0 && e >= b.HashBroken
}

// AllCiphersBrokenAt reports whether every registered cascade cipher has
// fallen by epoch e — the "all computational confidentiality is gone"
// doomsday the paper's long-term analysis must survive.
func (b Breaks) AllCiphersBrokenAt(e int) bool {
	for _, s := range cascade.Schemes() {
		if !b.CipherBrokenAt(s, e) {
			return false
		}
	}
	return true
}

// HarvestedShard is a shard in the adversary's vault, tagged with the
// epoch it was exfiltrated and the epoch the shard version was written.
type HarvestedShard struct {
	Shard        cluster.Shard
	HarvestEpoch int
}

// Mobile is the mobile adversary. It is safe for concurrent use: the
// rng is a locally seeded *rand.Rand (never the shared math/rand global
// source, which would let unrelated goroutines perturb the draw sequence
// and break the run-to-run determinism that seeded campaigns rely on),
// and mu guards it together with the harvest state. Determinism holds
// for a fixed sequence of calls; concurrent callers interleave at the
// granularity of whole operations.
type Mobile struct {
	Budget int // max corruptions per epoch

	mu  sync.Mutex
	rng *rand.Rand

	// vault holds everything ever harvested, keyed by object.
	vault map[string][]HarvestedShard
	// visited counts node corruptions, for coverage stats.
	visited map[int]int
	// lastEpoch guards the per-epoch budget.
	lastEpoch  int
	usedBudget int
}

// NewMobile creates a mobile adversary with the given per-epoch corruption
// budget and deterministic randomness seed.
func NewMobile(budget int, seed int64) *Mobile {
	return &Mobile{
		Budget:  budget,
		rng:     rand.New(rand.NewSource(seed)),
		vault:   make(map[string][]HarvestedShard),
		visited: make(map[int]int),
	}
}

// Corrupt exfiltrates the full contents of the given node at the cluster's
// current epoch. It enforces the per-epoch budget: corruptions beyond
// Budget in one epoch are refused (return false).
func (m *Mobile) Corrupt(c *cluster.Cluster, nodeID int) bool {
	epoch := c.Epoch()
	m.mu.Lock()
	defer m.mu.Unlock()
	if epoch != m.lastEpoch {
		m.lastEpoch = epoch
		m.usedBudget = 0
	}
	if m.usedBudget >= m.Budget {
		return false
	}
	shards, err := c.Snapshot(nodeID)
	if err != nil {
		return false
	}
	m.usedBudget++
	m.visited[nodeID]++
	for _, sh := range shards {
		m.vault[sh.Key.Object] = append(m.vault[sh.Key.Object], HarvestedShard{Shard: sh, HarvestEpoch: epoch})
	}
	return true
}

// CorruptRandom corrupts up to Budget distinct random nodes this epoch and
// returns how many succeeded.
func (m *Mobile) CorruptRandom(c *cluster.Cluster) int {
	m.mu.Lock()
	perm := m.rng.Perm(c.Size())
	m.mu.Unlock()
	count := 0
	for _, id := range perm {
		if m.usedBudgetFor(c) >= m.Budget {
			break
		}
		if m.Corrupt(c, id) {
			count++
		}
	}
	return count
}

func (m *Mobile) usedBudgetFor(c *cluster.Cluster) int {
	epoch := c.Epoch()
	m.mu.Lock()
	defer m.mu.Unlock()
	if epoch != m.lastEpoch {
		return 0
	}
	return m.usedBudget
}

// Harvest returns every harvested shard of the object, oldest first.
func (m *Mobile) Harvest(object string) []HarvestedShard {
	m.mu.Lock()
	out := append([]HarvestedShard(nil), m.vault[object]...)
	m.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].HarvestEpoch != out[j].HarvestEpoch {
			return out[i].HarvestEpoch < out[j].HarvestEpoch
		}
		return out[i].Shard.Key.Index < out[j].Shard.Key.Index
	})
	return out
}

// DistinctShards returns, for the object, the maximum set of distinct
// shard indices whose harvested versions were all WRITTEN in the same
// epoch — the only combination useful against a properly renewing
// secret-shared store. The map is write-epoch → distinct indices held.
func (m *Mobile) DistinctShards(object string) map[int]map[int][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int]map[int][]byte)
	for _, h := range m.vault[object] {
		we := h.Shard.Epoch
		if out[we] == nil {
			out[we] = make(map[int][]byte)
		}
		if _, dup := out[we][h.Shard.Key.Index]; !dup {
			out[we][h.Shard.Key.Index] = h.Shard.Data
		}
	}
	return out
}

// MaxSameEpochShards returns the largest number of distinct shard indices
// the adversary holds from any single write epoch of the object.
func (m *Mobile) MaxSameEpochShards(object string) int {
	best := 0
	for _, byIdx := range m.DistinctShards(object) {
		if len(byIdx) > best {
			best = len(byIdx)
		}
	}
	return best
}

// MaxAnyEpochShards returns the number of distinct shard indices held
// across ALL epochs — what the adversary can combine when the victim
// never renews.
func (m *Mobile) MaxAnyEpochShards(object string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := make(map[int]bool)
	for _, h := range m.vault[object] {
		seen[h.Shard.Key.Index] = true
	}
	return len(seen)
}

// NodesVisited returns how many distinct nodes have ever been corrupted.
func (m *Mobile) NodesVisited() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.visited)
}

// VaultObjects lists the objects with at least one harvested shard.
func (m *Mobile) VaultObjects() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.vault))
	for o := range m.vault {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}
