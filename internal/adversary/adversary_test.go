package adversary

import (
	"fmt"
	"testing"

	"securearchive/internal/cascade"
	"securearchive/internal/cluster"
	"securearchive/internal/sig"
)

// seedCluster stores one object's shards, one per node.
func seedCluster(n int) *cluster.Cluster {
	c := cluster.New(n, nil)
	for i := 0; i < n; i++ {
		key := cluster.ShardKey{Object: "obj", Index: i}
		_ = c.Put(i, key, []byte(fmt.Sprintf("shard-%d", i)))
	}
	return c
}

func TestBudgetEnforcedPerEpoch(t *testing.T) {
	c := seedCluster(6)
	m := NewMobile(2, 1)
	if !m.Corrupt(c, 0) || !m.Corrupt(c, 1) {
		t.Fatal("within-budget corruptions refused")
	}
	if m.Corrupt(c, 2) {
		t.Fatal("third corruption in one epoch allowed with budget 2")
	}
	c.AdvanceEpoch()
	if !m.Corrupt(c, 2) {
		t.Fatal("budget did not reset on epoch advance")
	}
}

func TestCorruptRandomRespectsBudget(t *testing.T) {
	c := seedCluster(10)
	m := NewMobile(3, 42)
	if got := m.CorruptRandom(c); got != 3 {
		t.Fatalf("corrupted %d, want 3", got)
	}
	if got := m.CorruptRandom(c); got != 0 {
		t.Fatalf("second sweep in same epoch corrupted %d, want 0", got)
	}
}

func TestMobileEventuallyVisitsAllNodes(t *testing.T) {
	c := seedCluster(8)
	m := NewMobile(2, 7)
	for epoch := 0; epoch < 50 && m.NodesVisited() < 8; epoch++ {
		m.CorruptRandom(c)
		c.AdvanceEpoch()
	}
	if m.NodesVisited() != 8 {
		t.Fatalf("visited %d/8 nodes after 50 epochs", m.NodesVisited())
	}
}

func TestHarvestRecordsEpochs(t *testing.T) {
	c := seedCluster(4)
	m := NewMobile(1, 3)
	m.Corrupt(c, 0)
	c.AdvanceEpoch()
	m.Corrupt(c, 1)
	h := m.Harvest("obj")
	if len(h) != 2 {
		t.Fatalf("harvest size %d, want 2", len(h))
	}
	if h[0].HarvestEpoch != 0 || h[1].HarvestEpoch != 1 {
		t.Fatalf("harvest epochs %d,%d", h[0].HarvestEpoch, h[1].HarvestEpoch)
	}
	if len(m.VaultObjects()) != 1 || m.VaultObjects()[0] != "obj" {
		t.Fatalf("vault objects %v", m.VaultObjects())
	}
}

// TestSameEpochVsAnyEpochAccounting models the renewal distinction: if the
// object's shards are rewritten (new epoch) between corruptions, the
// same-epoch count stays below the any-epoch count.
func TestSameEpochVsAnyEpochAccounting(t *testing.T) {
	c := cluster.New(4, nil)
	put := func(idx int, v string) {
		_ = c.Put(idx, cluster.ShardKey{Object: "obj", Index: idx}, []byte(v))
	}
	for i := 0; i < 4; i++ {
		put(i, "v0")
	}
	m := NewMobile(1, 9)
	m.Corrupt(c, 0) // harvest shard 0 (write epoch 0)
	c.AdvanceEpoch()
	// Victim renews: rewrites all shards at epoch 1.
	for i := 0; i < 4; i++ {
		put(i, "v1")
	}
	m.Corrupt(c, 1) // harvest shard 1 (write epoch 1)
	c.AdvanceEpoch()
	m.Corrupt(c, 2) // harvest shard 2 (write epoch 1)

	if got := m.MaxAnyEpochShards("obj"); got != 3 {
		t.Fatalf("any-epoch shards %d, want 3", got)
	}
	if got := m.MaxSameEpochShards("obj"); got != 2 {
		t.Fatalf("same-epoch shards %d, want 2 (shards 1,2 at write epoch 1)", got)
	}
	d := m.DistinctShards("obj")
	if len(d[0]) != 1 || len(d[1]) != 2 {
		t.Fatalf("distinct shard map wrong: %v", d)
	}
}

func TestCorruptInvalidNode(t *testing.T) {
	c := seedCluster(2)
	m := NewMobile(5, 1)
	if m.Corrupt(c, 99) {
		t.Fatal("corrupting a nonexistent node succeeded")
	}
}

func TestBreaksSchedule(t *testing.T) {
	b := Breaks{
		Ciphers:    map[cascade.Scheme]int{cascade.AES256CTR: 10},
		Signatures: sig.BreakSchedule{sig.Ed25519: 20},
		HashBroken: 30,
	}
	if b.CipherBrokenAt(cascade.AES256CTR, 9) {
		t.Fatal("broken early")
	}
	if !b.CipherBrokenAt(cascade.AES256CTR, 10) {
		t.Fatal("not broken at epoch")
	}
	if b.CipherBrokenAt(cascade.ChaCha20, 1000) {
		t.Fatal("unscheduled cipher broken")
	}
	if b.HashBrokenAt(29) || !b.HashBrokenAt(30) {
		t.Fatal("hash break epoch wrong")
	}
	if b.AllCiphersBrokenAt(1000) {
		t.Fatal("all ciphers reported broken with only one scheduled")
	}
	all := Breaks{Ciphers: map[cascade.Scheme]int{
		cascade.AES256CTR: 1, cascade.ChaCha20: 2, cascade.SHA256CTR: 3,
	}}
	if !all.AllCiphersBrokenAt(3) {
		t.Fatal("all ciphers broken not detected")
	}
	if all.AllCiphersBrokenAt(2) {
		t.Fatal("all-broken claimed too early")
	}
}

func TestZeroBreaksBreakNothing(t *testing.T) {
	var b Breaks
	if b.CipherBrokenAt(cascade.AES256CTR, 1<<30) || b.HashBrokenAt(1<<30) || b.AllCiphersBrokenAt(1<<30) {
		t.Fatal("zero Breaks broke something")
	}
}
