// Package aont implements AONT-RS (Resch & Plank, FAST '11): an
// all-or-nothing transform composed with systematic Reed-Solomon
// dispersal, as deployed in the Cleversafe / IBM Cloud Object Storage
// system the paper discusses in §3.2.
//
// The transform splits the data into s blocks m_1..m_s, picks a random key
// k, and computes
//
//	c_i     = m_i ⊕ E_k(i+1)          for i = 1..s
//	c_{s+1} = k ⊕ h(c_1, ..., c_s)
//
// The s+1 blocks are then erasure-coded into n codewords and dispersed,
// one per storage node. A computationally bounded adversary who holds
// fewer than the reconstruction threshold of codewords provably learns
// nothing, *and no key needs to be stored anywhere* — the key is blended
// into the package. But the guarantee is only as strong as E and h: once
// either is broken, a single share plus cryptanalysis "knows the key",
// which is why Table 1 classifies AONT-RS as computationally secure at
// rest despite its dispersal. That failure mode is exercised by the HNDL
// experiment (E4).
package aont

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"securearchive/internal/rs"
)

// BlockSize is the AONT block granularity (the AES block size).
const BlockSize = aes.BlockSize

// KeySize is the size of the blended random key (AES-256).
const KeySize = 32

// Errors returned by this package.
var (
	ErrEmptyData   = errors.New("aont: empty data")
	ErrCorrupt     = errors.New("aont: package integrity check failed")
	ErrTooShort    = errors.New("aont: package too short")
	ErrInvalidCode = errors.New("aont: invalid dispersal parameters")
)

// Package is an AONT-encoded byte package before/after dispersal.
// Layout: [ canary-prefixed payload blocks ][ final key block (KeySize) ].
type Package struct {
	// Blocks is the c_1..c_s payload followed by the difference block
	// c_{s+1}, as one contiguous byte string.
	Data []byte
	// PlainLen is the original payload length (the transform pads to the
	// block size internally).
	PlainLen int
}

// Transform applies the all-or-nothing transform to data using randomness
// from rnd for the blended key.
func Transform(data []byte, rnd io.Reader) (*Package, error) {
	if len(data) == 0 {
		return nil, ErrEmptyData
	}
	key := make([]byte, KeySize)
	if _, err := io.ReadFull(rnd, key); err != nil {
		return nil, fmt.Errorf("aont: reading randomness: %w", err)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("aont: %w", err)
	}

	padded := pad(data)
	out := make([]byte, len(padded)+KeySize)
	// c_i = m_i XOR E_k(i+1), computed as AES-CTR with a fixed zero nonce:
	// the key is single-use by construction, so the fixed nonce is safe.
	var iv [aes.BlockSize]byte
	ctr := cipher.NewCTR(block, iv[:])
	ctr.XORKeyStream(out[:len(padded)], padded)

	// c_{s+1} = k XOR h(c_1..c_s). The hash also covers the plaintext
	// length so truncation is detected at inverse time.
	digest := packageDigest(out[:len(padded)], len(data))
	for i := 0; i < KeySize; i++ {
		out[len(padded)+i] = key[i] ^ digest[i]
	}
	return &Package{Data: out, PlainLen: len(data)}, nil
}

// Inverse recovers the original data from a complete package. Any
// mutation of any package byte yields ErrCorrupt (wrong key → canary
// mismatch) or garbled output detected by the embedded digest.
func Inverse(p *Package) ([]byte, error) {
	if p == nil || len(p.Data) < KeySize+BlockSize {
		return nil, ErrTooShort
	}
	body := p.Data[:len(p.Data)-KeySize]
	keyBlock := p.Data[len(p.Data)-KeySize:]
	digest := packageDigest(body, p.PlainLen)
	key := make([]byte, KeySize)
	for i := range key {
		key[i] = keyBlock[i] ^ digest[i]
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("aont: %w", err)
	}
	var iv [aes.BlockSize]byte
	plain := make([]byte, len(body))
	cipher.NewCTR(block, iv[:]).XORKeyStream(plain, body)
	out, err := unpad(plain, p.PlainLen)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// packageDigest hashes the ciphertext body plus the plaintext length.
func packageDigest(body []byte, plainLen int) [sha256.Size]byte {
	h := sha256.New()
	var lb [8]byte
	binary.BigEndian.PutUint64(lb[:], uint64(plainLen))
	h.Write(lb[:])
	h.Write(body)
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// pad appends a length-embedding pad: data ‖ canary. The canary is a
// fixed block whose corruption after inverse signals a damaged package.
func pad(data []byte) []byte {
	padLen := BlockSize - len(data)%BlockSize
	out := make([]byte, len(data)+padLen+BlockSize)
	copy(out, data)
	for i := len(data); i < len(data)+padLen; i++ {
		out[i] = byte(padLen)
	}
	copy(out[len(data)+padLen:], canary[:])
	return out
}

var canary = [BlockSize]byte{'A', 'O', 'N', 'T', '-', 'R', 'S', ':', 'c', 'a', 'n', 'a', 'r', 'y', '0', '1'}

func unpad(plain []byte, plainLen int) ([]byte, error) {
	if len(plain) < BlockSize || plainLen < 0 || plainLen > len(plain)-BlockSize {
		return nil, ErrCorrupt
	}
	// Verify the canary block.
	for i := 0; i < BlockSize; i++ {
		if plain[len(plain)-BlockSize+i] != canary[i] {
			return nil, ErrCorrupt
		}
	}
	return plain[:plainLen], nil
}

// Scheme couples the transform with Reed-Solomon dispersal: Encode
// produces n shards of which any k reconstruct, with AONT security below
// the threshold.
type Scheme struct {
	Code *rs.Code
}

// NewScheme builds an AONT-RS scheme with k-of-n dispersal. Options
// (e.g. rs.WithParallelism) are forwarded to the underlying code.
func NewScheme(k, n int, opts ...rs.Option) (*Scheme, error) {
	if k < 1 || n < k {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrInvalidCode, k, n)
	}
	code, err := rs.New(k, n-k, opts...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidCode, err)
	}
	return &Scheme{Code: code}, nil
}

// Encode transforms data and disperses the package into n shards.
// It returns the shards and the package length needed for decode.
func (s *Scheme) Encode(data []byte) (shards [][]byte, pkgLen int, err error) {
	p, err := Transform(data, rand.Reader)
	if err != nil {
		return nil, 0, err
	}
	shards, err = s.Code.Encode(p.Data)
	if err != nil {
		return nil, 0, err
	}
	return shards, len(p.Data), nil
}

// Decode reconstructs from shards (nil = missing) and inverts the
// transform. plainLen is the original data length; pkgLen the value
// returned by Encode.
func (s *Scheme) Decode(shards [][]byte, pkgLen, plainLen int) ([]byte, error) {
	if err := s.Code.Reconstruct(shards); err != nil {
		return nil, err
	}
	pkg, err := s.Code.Join(shards, pkgLen)
	if err != nil {
		return nil, err
	}
	return Inverse(&Package{Data: pkg, PlainLen: plainLen})
}

// StorageOverhead returns stored bytes per data byte: n/k plus the
// amortised key/canary constant. For archive-sized objects this tends to
// n/k — the same as plain erasure coding, which is AONT-RS's selling
// point in Figure 1.
func (s *Scheme) StorageOverhead(dataLen int) float64 {
	if dataLen <= 0 {
		return 0
	}
	padded := ((dataLen/BlockSize)+2)*BlockSize + KeySize
	shard := s.Code.ShardSize(padded)
	return float64(shard*s.Code.TotalShards()) / float64(dataLen)
}
