package aont

import (
	"bytes"
	"crypto/rand"
	"errors"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

func TestTransformInverseRoundTrip(t *testing.T) {
	for _, size := range []int{1, 15, 16, 17, 1000, 4096} {
		data := make([]byte, size)
		rand.Read(data)
		p, err := Transform(data, rand.Reader)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		got, err := Inverse(p)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: round trip failed", size)
		}
	}
}

func TestTransformIsRandomised(t *testing.T) {
	data := []byte("same input twice")
	p1, _ := Transform(data, rand.Reader)
	p2, _ := Transform(data, rand.Reader)
	if bytes.Equal(p1.Data, p2.Data) {
		t.Fatal("transform deterministic: blended key not random")
	}
}

// TestAllOrNothing: flipping ANY single byte of the package makes the
// inverse fail (the digest shift garbles the recovered key, and the
// canary catches it).
func TestAllOrNothing(t *testing.T) {
	data := []byte("all or nothing at all")
	p, _ := Transform(data, rand.Reader)
	rng := mrand.New(mrand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		i := rng.Intn(len(p.Data))
		corrupted := &Package{Data: append([]byte(nil), p.Data...), PlainLen: p.PlainLen}
		corrupted.Data[i] ^= byte(1 + rng.Intn(255))
		got, err := Inverse(corrupted)
		if err == nil && bytes.Equal(got, data) {
			t.Fatalf("byte %d flip survived inverse", i)
		}
	}
}

// TestMissingBlockRevealsNothing: with the final key block withheld, the
// adversary cannot invert (models holding < all s+1 blocks).
func TestMissingBlockRevealsNothing(t *testing.T) {
	data := bytes.Repeat([]byte("secret"), 100)
	p, _ := Transform(data, rand.Reader)
	truncated := &Package{Data: p.Data[:len(p.Data)-KeySize], PlainLen: p.PlainLen}
	if _, err := Inverse(truncated); err == nil {
		t.Fatal("truncated package inverted successfully")
	}
}

func TestEmptyDataRejected(t *testing.T) {
	if _, err := Transform(nil, rand.Reader); !errors.Is(err, ErrEmptyData) {
		t.Fatalf("empty data: %v", err)
	}
	if _, err := Inverse(&Package{Data: []byte{1, 2}}); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short package: %v", err)
	}
}

func TestSchemeEncodeDecode(t *testing.T) {
	s, err := NewScheme(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 10000)
	rand.Read(data)
	shards, pkgLen, err := s.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 7 {
		t.Fatalf("%d shards, want 7", len(shards))
	}
	// Lose 3 shards (any n-k).
	shards[0], shards[3], shards[6] = nil, nil, nil
	got, err := s.Decode(shards, pkgLen, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("dispersed round trip failed")
	}
}

func TestSchemeTooManyLost(t *testing.T) {
	s, _ := NewScheme(4, 6)
	data := make([]byte, 100)
	shards, pkgLen, _ := s.Encode(data)
	shards[0], shards[1], shards[2] = nil, nil, nil // 3 lost > n-k = 2
	if _, err := s.Decode(shards, pkgLen, len(data)); err == nil {
		t.Fatal("decode succeeded with too many erasures")
	}
}

func TestSchemeParamValidation(t *testing.T) {
	if _, err := NewScheme(0, 4); !errors.Is(err, ErrInvalidCode) {
		t.Fatalf("k=0: %v", err)
	}
	if _, err := NewScheme(5, 4); !errors.Is(err, ErrInvalidCode) {
		t.Fatalf("n<k: %v", err)
	}
}

func TestStorageOverheadApproachesNOverK(t *testing.T) {
	s, _ := NewScheme(4, 7)
	oh := s.StorageOverhead(1 << 20)
	if oh < 1.74 || oh > 1.80 {
		t.Fatalf("1MiB overhead %.3f, want ≈ 7/4 = 1.75", oh)
	}
	if s.StorageOverhead(0) != 0 {
		t.Fatal("zero-length overhead should be 0")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		p, err := Transform(data, rand.Reader)
		if err != nil {
			return false
		}
		got, err := Inverse(p)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTransform1MiB(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.Read(data)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Transform(data, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode4of7_1MiB(b *testing.B) {
	s, _ := NewScheme(4, 7)
	data := make([]byte, 1<<20)
	rand.Read(data)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}
