package api_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"securearchive/internal/api"
	"securearchive/internal/api/client"
	"securearchive/internal/cluster"
	"securearchive/internal/core"
	"securearchive/internal/group"
	"securearchive/internal/obs"
)

const testChunk = 4096

// newService stands up a vault (8 nodes, RS 4-of-8, small chunks so
// modest payloads stream multi-chunk) behind an httptest server and
// returns a client bound to it.
func newService(t *testing.T, cfg api.Config) (*core.Vault, *cluster.Cluster, *client.Client) {
	t.Helper()
	c := cluster.New(8, nil)
	t.Cleanup(func() { c.Close() })
	v, err := core.NewVault(c, core.Erasure{K: 4, N: 8},
		core.WithGroup(group.Test()), core.WithChunkSize(testChunk))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	srv := httptest.NewServer(api.NewServer(v, cfg).Handler())
	t.Cleanup(srv.Close)
	return v, c, client.New(srv.URL)
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + i>>9)
	}
	return b
}

// TestClientRoundTrip pushes a multi-chunk object through the full
// stack — Go client, HTTP, streaming ingest, erasure pipeline — and
// reads it back byte-identical, then exercises stat/list/scrub/usage/
// delete over the same wire.
func TestClientRoundTrip(t *testing.T) {
	_, _, cl := newService(t, api.Config{})
	ctx := context.Background()
	want := pattern(3*testChunk + 257) // >2x chunk, with a tail
	n, err := cl.Put(ctx, "docs/report.bin", bytes.NewReader(want))
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	if n != int64(len(want)) {
		t.Fatalf("put reported %d bytes; want %d", n, len(want))
	}
	got, err := cl.GetBytes(ctx, "docs/report.bin")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload mismatch after HTTP round trip")
	}
	st, err := cl.Stat(ctx, "docs/report.bin")
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if st.Bytes != int64(len(want)) || st.Chunks < 2 {
		t.Fatalf("stat = %+v; want Bytes=%d Chunks>=2", st, len(want))
	}
	ids, err := cl.List(ctx)
	if err != nil || len(ids) != 1 || ids[0] != "docs/report.bin" {
		t.Fatalf("list = %v, %v", ids, err)
	}
	rep, err := cl.Scrub(ctx, "docs/report.bin")
	if err != nil || len(rep.Missing) != 0 || len(rep.Corrupt) != 0 {
		t.Fatalf("scrub = %+v, %v", rep, err)
	}
	u, err := cl.Usage(ctx)
	if err != nil || u.Bytes != int64(len(want)) || u.Objects != 1 {
		t.Fatalf("usage = %+v, %v", u, err)
	}
	if err := cl.Delete(ctx, "docs/report.bin"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := cl.GetBytes(ctx, "docs/report.bin"); !isStatus(err, http.StatusNotFound) {
		t.Fatalf("get after delete = %v; want 404", err)
	}
	u, err = cl.Usage(ctx)
	if err != nil || u.Bytes != 0 || u.Objects != 0 {
		t.Fatalf("usage after delete = %+v, %v; want zero", u, err)
	}
}

func isStatus(err error, status int) bool {
	var ae *api.Error
	return errors.As(err, &ae) && ae.Status == status
}

// TestTenantIsolation: two tenants use the same object id without
// seeing each other's bytes or list entries.
func TestTenantIsolation(t *testing.T) {
	_, _, cl := newService(t, api.Config{})
	ctx := context.Background()
	alice, bob := *cl, *cl
	alice.Tenant = "alice"
	bob.Tenant = "bob"
	wantA, wantB := pattern(600), bytes.Repeat([]byte{0xEE}, 600)
	if _, err := alice.PutBytes(ctx, "obj", wantA); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.PutBytes(ctx, "obj", wantB); err != nil {
		t.Fatalf("bob's put collided with alice's: %v", err)
	}
	gotA, _ := alice.GetBytes(ctx, "obj")
	gotB, _ := bob.GetBytes(ctx, "obj")
	if !bytes.Equal(gotA, wantA) || !bytes.Equal(gotB, wantB) {
		t.Fatal("tenants read each other's bytes")
	}
	idsA, err := alice.List(ctx)
	if err != nil || len(idsA) != 1 || idsA[0] != "obj" {
		t.Fatalf("alice list = %v, %v", idsA, err)
	}
	if err := bob.Delete(ctx, "obj"); err != nil {
		t.Fatal(err)
	}
	if gotA, err := alice.GetBytes(ctx, "obj"); err != nil || !bytes.Equal(gotA, wantA) {
		t.Fatalf("bob's delete destroyed alice's object: %v", err)
	}
}

// TestByteQuotaMidStream: a PUT that blows the tenant byte budget
// partway through the body must fail without committing a partial
// object, and the failed upload must not consume quota.
func TestByteQuotaMidStream(t *testing.T) {
	_, c, cl := newService(t, api.Config{
		DefaultQuota: api.Quota{MaxBytes: 2 * testChunk},
	})
	ctx := context.Background()
	// No Content-Length (chunked transfer) so the fail-fast header check
	// cannot catch it — the quotaReader must, mid-stream.
	body := io.MultiReader(bytes.NewReader(pattern(8 * testChunk)))
	_, err := cl.Put(ctx, "huge", io.NopCloser(body))
	if !isStatus(err, http.StatusRequestEntityTooLarge) {
		t.Fatalf("over-quota put err = %v; want 413", err)
	}
	if got := c.StoredBytes(); got != 0 {
		t.Fatalf("StoredBytes = %d after rejected put; want 0 (partial object committed)", got)
	}
	// The inflight reservation must have been released: a within-budget
	// put still fits.
	if _, err := cl.PutBytes(ctx, "ok", pattern(testChunk)); err != nil {
		t.Fatalf("within-quota put after rejection: %v", err)
	}
}

// TestObjectQuota: the object-count budget returns 507 once exhausted.
func TestObjectQuota(t *testing.T) {
	_, _, cl := newService(t, api.Config{
		DefaultQuota: api.Quota{MaxObjects: 2},
	})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := cl.PutBytes(ctx, "obj-"+strconv.Itoa(i), pattern(256)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := cl.PutBytes(ctx, "obj-2", pattern(256))
	if !isStatus(err, http.StatusInsufficientStorage) {
		t.Fatalf("over-count put err = %v; want 507", err)
	}
	// Deleting frees a slot.
	if err := cl.Delete(ctx, "obj-0"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.PutBytes(ctx, "obj-2", pattern(256)); err != nil {
		t.Fatalf("put after delete freed a slot: %v", err)
	}
}

// TestRateLimit429: with a tiny bucket, back-to-back requests draw 429
// with a Retry-After hint; the client's replayable-body retry waits it
// out and succeeds, while a raw request sees the 429 directly.
func TestRateLimit429(t *testing.T) {
	reg := obs.NewRegistry()
	_, _, cl := newService(t, api.Config{
		Rate:     api.RateConfig{OpsPerSec: 5, Burst: 1},
		Registry: reg,
	})
	ctx := context.Background()
	if _, err := cl.PutBytes(ctx, "a", pattern(128)); err != nil {
		t.Fatal(err) // burst token
	}
	// Raw second request: bucket is empty, must see 429 + Retry-After.
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, cl.BaseURL+"/v1/usage", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("immediate second request status = %d; want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 carried no Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q; want integer seconds >= 1", ra)
	}
	// Client with retries: PutBytes is replayable, so it should absorb
	// the 429s and land.
	cl.Retry429 = 5
	if _, err := cl.PutBytes(ctx, "b", pattern(128)); err != nil {
		t.Fatalf("replayable put did not survive rate limiting: %v", err)
	}
	if got := reg.Snapshot().Counters["api.rate_limited"]; got == 0 {
		t.Fatal("api.rate_limited counter never incremented")
	}
}

// TestStreamingMemoryBounded is the PR's acceptance check at the API
// layer: PUT an object 8x the vault chunk size through the HTTP stack
// and assert the vault's peak buffered plaintext stayed O(chunk) — the
// upload was streamed, never assembled in RAM.
func TestStreamingMemoryBounded(t *testing.T) {
	v, _, cl := newService(t, api.Config{})
	size := 8 * testChunk
	n, err := cl.Put(context.Background(), "big", bytes.NewReader(pattern(size)))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(size) {
		t.Fatalf("put reported %d; want %d", n, size)
	}
	peak := v.StreamPeakBuffered()
	if peak == 0 {
		t.Fatal("StreamPeakBuffered = 0; PUT did not go through the streaming path")
	}
	if limit := int64(6 * testChunk); peak > limit {
		t.Fatalf("peak buffered %d bytes for a %d-byte upload; want <= %d (O(chunk))",
			peak, size, limit)
	}
	got, err := cl.GetBytes(context.Background(), "big")
	if err != nil || !bytes.Equal(got, pattern(size)) {
		t.Fatalf("round-trip: err=%v", err)
	}
}

// TestClientDisconnectAbortsPut: a client that vanishes mid-upload must
// leave no committed or staged shards — the request context propagates
// into the vault and aborts the stage.
func TestClientDisconnectAbortsPut(t *testing.T) {
	_, c, cl := newService(t, api.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := cl.Put(ctx, "victim", pr)
		done <- err
	}()
	// Feed a few chunks so shards are staged, then hang up.
	pw.Write(pattern(3 * testChunk))
	time.Sleep(20 * time.Millisecond)
	cancel()
	pw.CloseWithError(context.Canceled)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("aborted put reported success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("put still running 10s after disconnect")
	}
	// The server side finishes asynchronously; give the abort a moment.
	deadline := time.Now().Add(5 * time.Second)
	for c.StoredBytes() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("StoredBytes = %d 5s after disconnect; staged shards orphaned", c.StoredBytes())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGracefulShutdown: a live server drains in-flight requests and
// Shutdown returns within the grace window.
func TestGracefulShutdown(t *testing.T) {
	c := cluster.New(8, nil)
	defer c.Close()
	v, err := core.NewVault(c, core.Erasure{K: 4, N: 8},
		core.WithGroup(group.Test()), core.WithChunkSize(testChunk))
	if err != nil {
		t.Fatal(err)
	}
	svc := api.NewServer(v, api.Config{Registry: obs.NewRegistry()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	cl := client.New("http://" + ln.Addr().String())
	if _, err := cl.PutBytes(context.Background(), "obj", pattern(2*testChunk)); err != nil {
		t.Fatal(err)
	}
	// Start a slow download, then shut down while it drains.
	body, _, err := cl.Get(context.Background(), "obj")
	if err != nil {
		t.Fatal(err)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	shutDone := make(chan error, 1)
	go func() { shutDone <- srv.Shutdown(shutCtx) }()
	// The in-flight GET must still complete.
	got, err := io.ReadAll(body)
	body.Close()
	if err != nil {
		t.Fatalf("in-flight read during shutdown: %v", err)
	}
	if !bytes.Equal(got, pattern(2*testChunk)) {
		t.Fatal("in-flight read corrupted during shutdown")
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("shutdown took %v; want within grace window", elapsed)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v; want ErrServerClosed", err)
	}
	// New connections are refused after shutdown.
	if _, err := cl.Usage(context.Background()); err == nil {
		t.Fatal("request succeeded after shutdown")
	}
}
