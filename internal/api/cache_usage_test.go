package api_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"securearchive/internal/api"
	"securearchive/internal/api/client"
	"securearchive/internal/cluster"
	"securearchive/internal/core"
	"securearchive/internal/group"
	"securearchive/internal/obs"
)

// TestUsageReportsTenantCacheBytes runs the service over a cache-enabled
// vault and checks the per-tenant accounting surfaced at /v1/usage: a
// tenant's CacheBytes reflects exactly its own resident objects — filled
// by its reads, untouched by other tenants' traffic, and drained by its
// deletes.
func TestUsageReportsTenantCacheBytes(t *testing.T) {
	reg := obs.NewRegistry()
	c := cluster.New(8, nil)
	t.Cleanup(func() { c.Close() })
	v, err := core.NewVault(c, core.Erasure{K: 4, N: 8},
		core.WithGroup(group.Test()),
		core.WithChunkSize(testChunk),
		core.WithReadCache(1<<20),
		core.WithCacheTenantShare(0.5),
		core.WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(api.NewServer(v, api.Config{Registry: reg}).Handler())
	t.Cleanup(srv.Close)

	alice := client.New(srv.URL)
	alice.Tenant = "alice"
	bob := client.New(srv.URL)
	bob.Tenant = "bob"
	ctx := context.Background()

	aliceData := pattern(2 * testChunk) // chunked path
	bobData := pattern(testChunk / 2)   // monolithic path
	if _, err := alice.Put(ctx, "doc", bytes.NewReader(aliceData)); err != nil {
		t.Fatalf("alice put: %v", err)
	}
	if _, err := bob.Put(ctx, "doc", bytes.NewReader(bobData)); err != nil {
		t.Fatalf("bob put: %v", err)
	}

	// Nothing read yet — the cache fills on reads, not writes.
	u, err := alice.Usage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if u.CacheBytes != 0 {
		t.Fatalf("alice cache bytes %d before any read, want 0", u.CacheBytes)
	}

	// Reads populate each tenant's residency with exactly its own
	// object's plaintext size.
	if _, err := alice.GetBytes(ctx, "doc"); err != nil {
		t.Fatalf("alice get: %v", err)
	}
	if _, err := bob.GetBytes(ctx, "doc"); err != nil {
		t.Fatalf("bob get: %v", err)
	}
	u, _ = alice.Usage(ctx)
	if u.CacheBytes != int64(len(aliceData)) {
		t.Fatalf("alice cache bytes = %d, want %d", u.CacheBytes, len(aliceData))
	}
	ub, _ := bob.Usage(ctx)
	if ub.CacheBytes != int64(len(bobData)) {
		t.Fatalf("bob cache bytes = %d, want %d", ub.CacheBytes, len(bobData))
	}

	// Delete invalidates: alice's residency drains without touching
	// bob's.
	if err := alice.Delete(ctx, "doc"); err != nil {
		t.Fatalf("alice delete: %v", err)
	}
	u, _ = alice.Usage(ctx)
	if u.CacheBytes != 0 {
		t.Fatalf("alice cache bytes = %d after delete, want 0", u.CacheBytes)
	}
	ub, _ = bob.Usage(ctx)
	if ub.CacheBytes != int64(len(bobData)) {
		t.Fatalf("bob cache bytes = %d after alice's delete, want %d", ub.CacheBytes, len(bobData))
	}
}
