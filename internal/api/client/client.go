// Package client is the Go client for the archive service
// (securearchive/internal/api): streaming uploads and downloads,
// tenant header plumbing, typed *api.Error results, and bounded
// retries that honour 429 Retry-After backpressure.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"securearchive/internal/api"
	"securearchive/internal/obs/trace"
)

// Client talks to one archive service endpoint on behalf of one
// tenant. The zero value is not usable; construct with New.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Tenant is sent as the X-Archive-Tenant header ("" uses the
	// server default).
	Tenant string
	// HTTPClient performs the requests (http.DefaultClient when nil).
	HTTPClient *http.Client
	// Retry429 is how many times a rate-limited request is retried
	// after honouring Retry-After. Only requests whose body can be
	// replayed (none, or seekable) retry; a one-shot streaming PUT
	// surfaces the 429 instead.
	Retry429 int
	// MaxRetryAfter caps a single Retry-After wait (default 5s) so a
	// hostile or confused server cannot park the client forever.
	MaxRetryAfter time.Duration
	// Tracer roots a client span per call (trace.Default() when nil).
	// Requests carry a W3C traceparent header whenever the call is
	// traced, so client retries, rate-limit waits, and the server's
	// vault spans land in one tree.
	Tracer *trace.Tracer
}

// New builds a client for the service at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), Retry429: 3}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) objectURL(id string) string {
	return c.BaseURL + "/v1/objects/" + url.PathEscape(id)
}

func (c *Client) tracer() *trace.Tracer {
	if c.Tracer != nil {
		return c.Tracer
	}
	return trace.Default()
}

// startSpan roots (or joins, when the context already carries a span)
// the client-side span for one call.
func (c *Client) startSpan(ctx context.Context, op, id string) (context.Context, trace.Span) {
	attrs := []trace.Attr{trace.Str("url", c.BaseURL)}
	if id != "" {
		attrs = append(attrs, trace.Str("object", id))
	}
	return c.tracer().Start(ctx, "client."+op, attrs...)
}

// do issues the request, retrying 429s (when the body is replayable)
// after the server's Retry-After, and converts any non-2xx response
// into *api.Error carrying the server's trace ID. When the request
// context holds a recording span, the request is sent with a W3C
// traceparent header so the server's half of the work joins the
// client's trace, and each rate-limit wait lands on the span as a
// ratelimit.waited event. Callers own the returned body.
func (c *Client) do(req *http.Request) (*http.Response, error) {
	if c.Tenant != "" {
		req.Header.Set(api.TenantHeader, c.Tenant)
	}
	sp := trace.FromContext(req.Context())
	if sp.Recording() {
		req.Header.Set(trace.TraceparentHeader, trace.FormatTraceparent(sp.TraceID(), sp.SpanID()))
	}
	attempt := 0
	attempts := c.Retry429
	for {
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode < 300 {
			return resp, nil
		}
		apiErr := decodeError(resp)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests || attempts <= 0 || req.GetBody == nil && req.Body != nil {
			return nil, apiErr
		}
		attempts--
		attempt++
		wait := retryAfter(resp)
		if max := c.maxRetryAfter(); wait > max {
			wait = max
		}
		sp.Event("ratelimit.waited",
			trace.Int("attempt", attempt), trace.Int64("wait_ms", wait.Milliseconds()))
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-req.Context().Done():
			t.Stop()
			return nil, fmt.Errorf("client: retry aborted: %w", context.Cause(req.Context()))
		}
		if req.GetBody != nil {
			body, err := req.GetBody()
			if err != nil {
				return nil, fmt.Errorf("client: replay body: %w", err)
			}
			req.Body = body
		}
	}
}

func (c *Client) maxRetryAfter() time.Duration {
	if c.MaxRetryAfter > 0 {
		return c.MaxRetryAfter
	}
	return 5 * time.Second
}

func retryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 250 * time.Millisecond
}

// decodeError turns a non-2xx response into *api.Error, falling back
// to the status text when the body is not the service's envelope. The
// server's trace ID rides along so the failure is greppable in /traces.
func decodeError(resp *http.Response) error {
	e := &api.Error{
		Status:  resp.StatusCode,
		Code:    "http_error",
		Message: resp.Status,
		TraceID: resp.Header.Get(api.TraceHeader),
	}
	var body struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&body); err == nil && body.Code != "" {
		e.Code, e.Message = body.Code, body.Message
	}
	return e
}

func drainJSON(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// Put streams body into the archive under id and returns the byte
// count the server ingested. The body is read exactly once, so a 429
// is returned rather than retried; use PutBytes for automatic retry.
func (c *Client) Put(ctx context.Context, id string, body io.Reader) (n int64, err error) {
	ctx, sp := c.startSpan(ctx, "put", id)
	defer func() { sp.End(err) }()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.objectURL(id), body)
	if err != nil {
		return 0, err
	}
	resp, err := c.do(req)
	if err != nil {
		return 0, err
	}
	var pr api.PutResult
	if err := drainJSON(resp, &pr); err != nil {
		return 0, fmt.Errorf("client: decode put result: %w", err)
	}
	sp.SetAttrs(trace.Int64("bytes", pr.Bytes))
	return pr.Bytes, nil
}

// PutBytes is Put from a byte slice; the replayable body makes 429
// retries safe.
func (c *Client) PutBytes(ctx context.Context, id string, data []byte) (int64, error) {
	return c.Put(ctx, id, bytes.NewReader(data))
}

// Get opens a streaming download. The caller must Close the returned
// body; Length is the object's plaintext size from the stat headers. A
// body that ends short of Length means the server's integrity pipeline
// failed mid-stream — treat the bytes as invalid.
func (c *Client) Get(ctx context.Context, id string) (body io.ReadCloser, length int64, err error) {
	// The span covers request dispatch through response headers; body
	// streaming happens on the caller's schedule and is not timed here.
	ctx, sp := c.startSpan(ctx, "get", id)
	defer func() { sp.End(err) }()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.objectURL(id), nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, 0, err
	}
	return resp.Body, resp.ContentLength, nil
}

// GetBytes downloads the whole object, verifying the received length
// against the announced one.
func (c *Client) GetBytes(ctx context.Context, id string) ([]byte, error) {
	body, length, err := c.Get(ctx, id)
	if err != nil {
		return nil, err
	}
	defer body.Close()
	data, err := io.ReadAll(body)
	if err != nil {
		return nil, err
	}
	if length >= 0 && int64(len(data)) != length {
		return nil, fmt.Errorf("client: get %s: short body: %d of %d bytes (server-side failure mid-stream)",
			id, len(data), length)
	}
	return data, nil
}

// GetTo streams the object into w and returns the bytes written.
func (c *Client) GetTo(ctx context.Context, id string, w io.Writer) (int64, error) {
	body, length, err := c.Get(ctx, id)
	if err != nil {
		return 0, err
	}
	defer body.Close()
	n, err := io.Copy(w, body)
	if err != nil {
		return n, err
	}
	if length >= 0 && n != length {
		return n, fmt.Errorf("client: get %s: short body: %d of %d bytes", id, n, length)
	}
	return n, nil
}

// Stat fetches object metadata without the body.
func (c *Client) Stat(ctx context.Context, id string) (sr *api.StatResult, err error) {
	ctx, sp := c.startSpan(ctx, "stat", id)
	defer func() { sp.End(err) }()
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, c.objectURL(id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	resp.Body.Close()
	atoi := func(s string) int { n, _ := strconv.Atoi(s); return n }
	return &api.StatResult{
		ID:       id,
		Bytes:    resp.ContentLength,
		Scheme:   resp.Header.Get("X-Archive-Scheme"),
		Chunks:   atoi(resp.Header.Get("X-Archive-Chunks")),
		Width:    atoi(resp.Header.Get("X-Archive-Width")),
		ChainLen: atoi(resp.Header.Get("X-Archive-Chain-Len")),
	}, nil
}

// Delete removes the object.
func (c *Client) Delete(ctx context.Context, id string) (err error) {
	ctx, sp := c.startSpan(ctx, "delete", id)
	defer func() { sp.End(err) }()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.objectURL(id), nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Scrub audits (and repairs if needed) the object's stripes.
func (c *Client) Scrub(ctx context.Context, id string) (sr *api.ScrubResult, err error) {
	ctx, sp := c.startSpan(ctx, "scrub", id)
	defer func() { sp.End(err) }()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/scrub/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	var res api.ScrubResult
	if err := drainJSON(resp, &res); err != nil {
		return nil, fmt.Errorf("client: decode scrub result: %w", err)
	}
	return &res, nil
}

// Renew refreshes the object: mode "shares" re-encodes and rewrites
// the stripes, mode "integrity" appends a chain link under scheme
// (server default when empty).
func (c *Client) Renew(ctx context.Context, id, mode, scheme string) (rr *api.RenewResult, err error) {
	ctx, sp := c.startSpan(ctx, "renew", id)
	defer func() { sp.End(err) }()
	u := c.BaseURL + "/v1/renew/" + url.PathEscape(id) + "?mode=" + url.QueryEscape(mode)
	if scheme != "" {
		u += "&scheme=" + url.QueryEscape(scheme)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	var res api.RenewResult
	if err := drainJSON(resp, &res); err != nil {
		return nil, fmt.Errorf("client: decode renew result: %w", err)
	}
	return &res, nil
}

// List returns the tenant's object ids (sorted).
func (c *Client) List(ctx context.Context) (ids []string, err error) {
	ctx, sp := c.startSpan(ctx, "list", "")
	defer func() { sp.End(err) }()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/objects", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	var lr api.ListResult
	if err := drainJSON(resp, &lr); err != nil {
		return nil, fmt.Errorf("client: decode list result: %w", err)
	}
	return lr.Objects, nil
}

// Usage reports the tenant's quota consumption.
func (c *Client) Usage(ctx context.Context) (ur *api.UsageResult, err error) {
	ctx, sp := c.startSpan(ctx, "usage", "")
	defer func() { sp.End(err) }()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/usage", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	var res api.UsageResult
	if err := drainJSON(resp, &res); err != nil {
		return nil, fmt.Errorf("client: decode usage result: %w", err)
	}
	return &res, nil
}
