package api

import (
	"securearchive/internal/obs"
)

// apiOps enumerates the instrumented endpoints; metrics are
// pre-resolved per op so the request path pays only atomic updates.
var apiOps = []string{"put", "get", "stat", "delete", "scrub", "renew", "list", "usage"}

// opMetrics is one endpoint's instrument set: request and error
// counters plus a latency histogram (api.<op>.ns).
type opMetrics struct {
	reqs  *obs.Counter
	errs  *obs.Counter
	latNs *obs.Histogram
}

// metrics is the service-wide instrument set.
type metrics struct {
	ops map[string]*opMetrics
	// inFlight counts requests currently being served (all endpoints).
	inFlight *obs.Gauge
	// rateLimited counts 429s; quotaDenied counts 413/507s.
	rateLimited *obs.Counter
	quotaDenied *obs.Counter
	// bytesIn/bytesOut are plaintext payload bytes streamed through
	// PUT and GET bodies.
	bytesIn  *obs.Counter
	bytesOut *obs.Counter
	// Per-tenant dimension (the flat api.<op>.* instruments above stay,
	// so pre-existing dashboards keep working): requests, errors, and
	// latency keyed by tenant across all ops.
	reqsByTenant *obs.LabeledCounter
	errsByTenant *obs.LabeledCounter
	latByTenant  *obs.LabeledHistogram
}

func newMetrics(reg *obs.Registry) *metrics {
	m := &metrics{
		ops:          make(map[string]*opMetrics, len(apiOps)),
		inFlight:     reg.Gauge("api.inflight"),
		rateLimited:  reg.Counter("api.rate_limited"),
		quotaDenied:  reg.Counter("api.quota_denied"),
		bytesIn:      reg.Counter("api.bytes_in"),
		bytesOut:     reg.Counter("api.bytes_out"),
		reqsByTenant: reg.LabeledCounter("api.requests", "tenant"),
		errsByTenant: reg.LabeledCounter("api.errors", "tenant"),
		latByTenant:  reg.LabeledHistogram("api.ns", obs.LatencyBuckets(), "tenant"),
	}
	for _, op := range apiOps {
		m.ops[op] = &opMetrics{
			reqs:  reg.Counter("api." + op + ".requests"),
			errs:  reg.Counter("api." + op + ".errors"),
			latNs: reg.Histogram("api."+op+".ns", obs.LatencyBuckets()),
		}
	}
	return m
}
