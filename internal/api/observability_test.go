package api_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"securearchive/internal/api"
	"securearchive/internal/api/client"
	"securearchive/internal/cluster"
	"securearchive/internal/core"
	"securearchive/internal/group"
	"securearchive/internal/monitor"
	"securearchive/internal/obs"
	"securearchive/internal/obs/trace"
)

// newObsService wires every layer to ONE registry and ONE tracer — the
// production shape archivectl serve uses — so the tests below can watch
// a request cross client → HTTP → api → vault → cluster and come out as
// a single joined trace with labeled metrics on every level.
func newObsService(t *testing.T, cfg api.Config) (*client.Client, *api.Server, *obs.Registry, *trace.Tracer) {
	t.Helper()
	reg := obs.NewRegistry()
	tr := trace.New(reg)
	tr.SetEnabled(true)
	c := cluster.New(8, nil)
	c.UseRegistry(reg)
	t.Cleanup(func() { c.Close() })
	v, err := core.NewVault(c, core.Erasure{K: 4, N: 8},
		core.WithGroup(group.Test()), core.WithChunkSize(testChunk),
		core.WithRegistry(reg), core.WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Registry = reg
	cfg.Tracer = tr
	as := api.NewServer(v, cfg)
	srv := httptest.NewServer(as.Handler())
	t.Cleanup(srv.Close)
	cl := client.New(srv.URL)
	cl.Tracer = tr
	return cl, as, reg, tr
}

// monitorGet serves a monitor bound to the same registry/tracer/SLO
// table and fetches one path from it.
func monitorGet(t *testing.T, reg *obs.Registry, tr *trace.Tracer, slo *obs.SLOTable, path string) (int, string) {
	t.Helper()
	ms := &monitor.Server{Registry: reg, Tracer: tr, SLO: slo}
	srv := httptest.NewServer(ms.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// Acceptance: a traced client PUT produces ONE joined trace — the
// client span, the api span it became on the far side of the HTTP
// boundary, and the vault/cluster work under it — visible in the
// /traces?format=text timeline.
func TestCrossBoundaryTraceJoins(t *testing.T) {
	cl, _, reg, tr := newObsService(t, api.Config{})
	cl.Tenant = "acme"
	if _, err := cl.Put(context.Background(), "obj", bytes.NewReader(pattern(testChunk/2))); err != nil {
		t.Fatal(err)
	}

	// The client half sealed last, merging with the server half already
	// in the ring: one trace rooted at the client span.
	recent := tr.Recent(4)
	var joined *trace.Trace
	for _, tc := range recent {
		if tc.Root == "client.put" {
			joined = tc
		}
	}
	if joined == nil {
		t.Fatalf("no client.put trace in ring: %+v", recent)
	}
	var names []string
	byID := map[uint64]*trace.SpanRecord{}
	for _, sp := range joined.Spans {
		names = append(names, sp.Name)
		byID[sp.SpanID] = sp
	}
	find := func(name string) *trace.SpanRecord {
		for _, sp := range joined.Spans {
			if sp.Name == name {
				return sp
			}
		}
		t.Fatalf("span %q missing from joined trace: %v", name, names)
		return nil
	}
	clientSpan := find("client.put")
	apiSpan := find("api.put")
	vaultSpan := find("vault.put")
	stageSpan := find("cluster.stage")
	if !apiSpan.Remote {
		t.Fatal("api span not marked remote")
	}
	if apiSpan.Parent != clientSpan.SpanID {
		t.Fatalf("api.put parent = %d, want client span %d", apiSpan.Parent, clientSpan.SpanID)
	}
	if vaultSpan.Parent != apiSpan.SpanID {
		t.Fatalf("vault.put parent = %d, want api span %d", vaultSpan.Parent, apiSpan.SpanID)
	}
	// cluster.stage hangs somewhere under vault.put (pipeline spans may
	// sit between); walk up to prove connectivity.
	for id := stageSpan.Parent; ; {
		sp, ok := byID[id]
		if !ok {
			t.Fatalf("cluster.stage not connected to vault.put: %v", names)
		}
		if sp.SpanID == vaultSpan.SpanID {
			break
		}
		id = sp.Parent
	}

	// And the monitor's text timeline shows the whole joined tree.
	code, text := monitorGet(t, reg, tr, nil, "/traces?n=8&format=text")
	if code != 200 {
		t.Fatalf("/traces = %d", code)
	}
	for _, want := range []string{"client.put", "api.put", "vault.put", "cluster.stage"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/traces timeline missing %q:\n%s", want, text)
		}
	}
}

// Acceptance: an un-traced caller sending a W3C traceparent header by
// hand still gets a server-rooted trace joined to its IDs, and the
// response echoes the server's trace identity.
func TestTraceparentHeaderJoins(t *testing.T) {
	cl, _, _, tr := newObsService(t, api.Config{})

	req, err := http.NewRequest("GET", cl.BaseURL+"/v1/usage", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-0123456789abcdeffedcba9876543210-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(api.TraceHeader); got == "" {
		t.Fatal("response missing X-Archive-Trace")
	}
	if got := resp.Header.Get("traceparent"); !strings.HasPrefix(got, "00-") {
		t.Fatalf("response traceparent = %q", got)
	}
	tc := tr.Recent(1)
	if len(tc) != 1 {
		t.Fatal("no server trace recorded")
	}
	// fedcba9876543210 is the incoming ID's low 64 bits.
	if tc[0].ID.String() != "fedcba9876543210" {
		t.Fatalf("server trace ID = %s, want fedcba9876543210", tc[0].ID)
	}
	root := tc[0].Spans[0]
	for _, sp := range tc[0].Spans {
		if sp.Parent == 0 || sp.Remote {
			root = sp
		}
	}
	if root.Parent != 0x00f067aa0ba902b7 {
		t.Fatalf("server root parent = %x, want f067aa0ba902b7", root.Parent)
	}
}

// Acceptance: errors surfaced to the client carry the server's trace ID
// so a support ticket can quote one string and an operator can pull the
// exact trace.
func TestClientErrorCarriesTraceID(t *testing.T) {
	cl, _, _, tr := newObsService(t, api.Config{})
	_, err := cl.GetBytes(context.Background(), "does/not/exist")
	if err == nil {
		t.Fatal("expected 404")
	}
	var ae *api.Error
	if !errors.As(err, &ae) {
		t.Fatalf("error type = %T", err)
	}
	if ae.Status != 404 || ae.TraceID == "" {
		t.Fatalf("error = %+v, want 404 with trace ID", ae)
	}
	if !strings.Contains(ae.Error(), "(trace "+ae.TraceID+")") {
		t.Fatalf("message lacks trace ID: %s", ae.Error())
	}
	// The quoted ID resolves to a real trace in the ring.
	found := false
	for _, tc := range tr.Recent(8) {
		if tc.ID.String() == ae.TraceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace %s not in ring", ae.TraceID)
	}
}

// Acceptance: /metrics exposes the three labeled families — per-tenant
// api requests, per-node cluster probes, per-encoding vault latency.
func TestMetricsLabeledFamilies(t *testing.T) {
	cl, _, reg, tr := newObsService(t, api.Config{})
	ctx := context.Background()
	for _, tenant := range []string{"acme", "umbrella"} {
		cl.Tenant = tenant
		if _, err := cl.Put(ctx, "obj", bytes.NewReader(pattern(512))); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.GetBytes(ctx, "obj"); err != nil {
			t.Fatal(err)
		}
	}
	code, body := monitorGet(t, reg, tr, nil, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`api_requests_total{tenant="acme"} 2`,
		`api_requests_total{tenant="umbrella"} 2`,
		`cluster_probe_total{node="00"}`,
		`vault_put_ns{encoding="erasure_coding",quantile=`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// Snapshot view: per-tenant series are addressable.
	snap := reg.Snapshot()
	if v, ok := snap.Series("api.requests", "acme"); !ok || v != 2 {
		t.Fatalf("api.requests{acme} = %d ok=%v", v, ok)
	}
}

// Acceptance: /slo reports per-tenant compliance and error-budget burn
// fed by real traffic through the api server.
func TestSLOEndToEnd(t *testing.T) {
	cl, as, reg, tr := newObsService(t, api.Config{})
	ctx := context.Background()
	cl.Tenant = "acme"
	if _, err := cl.Put(ctx, "obj", bytes.NewReader(pattern(256))); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.GetBytes(ctx, "obj"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.GetBytes(ctx, "missing"); err == nil {
		t.Fatal("expected 404")
	}

	code, body := monitorGet(t, reg, tr, as.SLOTable(), "/slo")
	if code != 200 {
		t.Fatalf("/slo = %d:\n%s", code, body)
	}
	var rep obs.SLOReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/slo not JSON: %v\n%s", err, body)
	}
	if rep.Schema != obs.SLOReportSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	var acme *obs.SLOSubjectReport
	for i := range rep.Subjects {
		if rep.Subjects[i].Subject == "acme" {
			acme = &rep.Subjects[i]
		}
	}
	if acme == nil {
		t.Fatalf("no acme row in report: %+v", rep.Subjects)
	}
	status := map[string]obs.SLOStatus{}
	for _, st := range acme.SLOs {
		status[st.Name] = st
	}
	// A 404 is a client fault, not an availability miss: all requests
	// good, budget burn 0.
	if av := status["availability"]; av.Good != 3 || av.Bad != 0 || av.BudgetBurn != 0 {
		t.Fatalf("availability = %+v", av)
	}
	// Only the successful get observes latency.
	if lat := status["get.latency"]; lat.Good+lat.Bad != 1 {
		t.Fatalf("get.latency = %+v", lat)
	}
	// Both gets feed degraded.reads (a 404 is not a degraded read).
	if dr := status["degraded.reads"]; dr.Good != 2 || dr.Bad != 0 {
		t.Fatalf("degraded.reads = %+v", dr)
	}
}
