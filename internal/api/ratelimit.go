package api

import (
	"sync"
	"time"
)

// Token-bucket rate limiting, hand-rolled on the stdlib (the module
// deliberately has no external dependencies). One bucket per tenant:
// requests each take one token, tokens refill continuously at
// OpsPerSec up to Burst. An empty bucket answers with how long until
// the next token — the handler turns that into 429 + Retry-After, the
// backpressure signal the client's retry loop honours.

// RateConfig shapes the per-tenant token bucket. Zero OpsPerSec
// disables limiting.
type RateConfig struct {
	// OpsPerSec is the sustained refill rate.
	OpsPerSec float64
	// Burst is the bucket capacity (defaults to max(1, OpsPerSec)).
	Burst float64
}

type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// take attempts to spend one token, refilling first. On refusal it
// returns the wait until a full token accrues.
func (b *bucket) take(rate, burst float64, now time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.tokens = burst
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * rate
		if b.tokens > burst {
			b.tokens = burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// limiterTable holds one bucket per tenant.
type limiterTable struct {
	cfg     RateConfig
	mu      sync.Mutex
	buckets map[string]*bucket
}

func newLimiterTable(cfg RateConfig) *limiterTable {
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.OpsPerSec
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	return &limiterTable{cfg: cfg, buckets: make(map[string]*bucket)}
}

// allow spends a token for tenant, or reports the Retry-After wait.
func (l *limiterTable) allow(tenant string, now time.Time) (bool, time.Duration) {
	if l == nil || l.cfg.OpsPerSec <= 0 {
		return true, 0
	}
	l.mu.Lock()
	b := l.buckets[tenant]
	if b == nil {
		b = &bucket{}
		l.buckets[tenant] = b
	}
	l.mu.Unlock()
	return b.take(l.cfg.OpsPerSec, l.cfg.Burst, now)
}
