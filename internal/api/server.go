package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"securearchive/internal/cluster"
	"securearchive/internal/core"
	"securearchive/internal/monitor"
	"securearchive/internal/obs"
	"securearchive/internal/obs/trace"
	"securearchive/internal/sig"
)

// Config shapes a Server.
type Config struct {
	// DefaultQuota applies to tenants without an entry in Quotas.
	// The zero Quota is unlimited.
	DefaultQuota Quota
	// Quotas overrides budgets per tenant name.
	Quotas map[string]Quota
	// Rate is the per-tenant token bucket; zero disables limiting.
	Rate RateConfig
	// Registry receives the api.* instruments (obs.Default() when nil).
	Registry *obs.Registry
	// Tracer roots a span per request — joining the caller's trace when
	// the request carries a W3C traceparent header — and stamps the
	// trace ID onto every response (trace.Default() when nil).
	Tracer *trace.Tracer
	// SLOs is the per-tenant SLO table the request path feeds; when nil
	// the server builds one from obs.DefaultSLOSpecs. Serve it at /slo
	// via monitor.Server.SLO.
	SLOs *obs.SLOTable
	// Monitor, when set, is mounted on the same handler: /metrics,
	// /snapshot, /traces, /slo, /healthz and /debug/pprof ride alongside
	// the /v1 archive routes so one listener serves both planes.
	Monitor *monitor.Server
}

// Server serves a Vault over HTTP. Routes:
//
//	PUT    /v1/objects/{id...}         streaming upload
//	GET    /v1/objects/{id...}         streaming download
//	HEAD   /v1/objects/{id...}         metadata only
//	DELETE /v1/objects/{id...}
//	POST   /v1/scrub/{id...}           audit + repair one object
//	POST   /v1/renew/{id...}?mode=shares|integrity[&scheme=...]
//	GET    /v1/objects                 list tenant's objects
//	GET    /v1/usage                   tenant quota consumption
//
// Every request is namespaced by the X-Archive-Tenant header (default
// "default"): object ids are stored as "<tenant>/<id>", so tenants
// cannot see or collide with each other's objects. Handlers run on the
// request context — a client that disconnects mid-transfer cancels the
// vault operation, which aborts staged writes and in-flight retry
// backoffs (see internal/cluster's RetryTransientCtx).
type Server struct {
	vault   *core.Vault
	quotas  *quotaTable
	limiter *limiterTable
	mon     *monitor.Server
	m       *metrics
	tracer  *trace.Tracer
	slos    *obs.SLOTable
}

// NewServer builds a Server over v.
func NewServer(v *core.Vault, cfg Config) *Server {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}
	tr := cfg.Tracer
	if tr == nil {
		tr = trace.Default()
	}
	slos := cfg.SLOs
	if slos == nil {
		slos = obs.NewSLOTable(obs.DefaultSLOSpecs()...)
	}
	return &Server{
		vault:   v,
		quotas:  newQuotaTable(cfg.DefaultQuota, cfg.Quotas),
		limiter: newLimiterTable(cfg.Rate),
		mon:     cfg.Monitor,
		m:       newMetrics(reg),
		tracer:  tr,
		slos:    slos,
	}
}

// SLOTable returns the per-tenant SLO table the request path feeds —
// hand it to monitor.Server.SLO to serve /slo.
func (s *Server) SLOTable() *obs.SLOTable { return s.slos }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/objects/{id...}", s.route("put", s.handlePut))
	mux.HandleFunc("GET /v1/objects/{id...}", s.route("get", s.handleGet))
	mux.HandleFunc("HEAD /v1/objects/{id...}", s.route("stat", s.handleStat))
	mux.HandleFunc("DELETE /v1/objects/{id...}", s.route("delete", s.handleDelete))
	mux.HandleFunc("POST /v1/scrub/{id...}", s.route("scrub", s.handleScrub))
	mux.HandleFunc("POST /v1/renew/{id...}", s.route("renew", s.handleRenew))
	mux.HandleFunc("GET /v1/objects", s.route("list", s.handleList))
	mux.HandleFunc("GET /v1/usage", s.route("usage", s.handleUsage))
	if s.mon != nil {
		mux.Handle("/", s.mon.Handler())
	}
	return mux
}

// statusWriter tracks whether the handler already committed a status
// (or streamed body bytes), after which the error path can only drop
// the connection — it must not write a second status line.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

// route wraps a handler with the service plumbing: tenant resolution,
// per-request span (joining the caller's trace when the request carries
// a traceparent header, and stamping the trace ID onto the response),
// token-bucket admission (429 + Retry-After on refusal), flat and
// per-tenant instrumentation, SLO accounting, and error-to-status
// mapping.
func (s *Server) route(op string, h func(w *statusWriter, r *http.Request, tenant string) error) http.HandlerFunc {
	om := s.m.ops[op]
	spanName := "api." + op
	return func(w http.ResponseWriter, r *http.Request) {
		om.reqs.Inc()
		tenant := r.Header.Get(TenantHeader)
		if tenant == "" {
			tenant = DefaultTenant
		}
		if !validTenant(tenant) {
			om.errs.Inc()
			writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("invalid tenant %q", tenant))
			return
		}
		s.m.reqsByTenant.With(tenant).Inc()

		// Root the request span — joined to the caller's trace when a
		// well-formed traceparent arrived — and announce the trace ID on
		// the response before any body bytes commit the headers.
		ctx := r.Context()
		var sp trace.Span
		if id, pspan, ok := trace.ParseTraceparent(r.Header.Get(trace.TraceparentHeader)); ok {
			ctx, sp = s.tracer.StartRemote(ctx, spanName, id, pspan,
				trace.Str("tenant", tenant), trace.Str("method", r.Method))
		} else {
			ctx, sp = s.tracer.Start(ctx, spanName,
				trace.Str("tenant", tenant), trace.Str("method", r.Method))
		}
		if tid := sp.TraceID(); tid != 0 {
			w.Header().Set(TraceHeader, tid.String())
			w.Header().Set(trace.TraceparentHeader, trace.FormatTraceparent(tid, sp.SpanID()))
		}
		r = r.WithContext(ctx)

		if ok, wait := s.limiter.allow(tenant, time.Now()); !ok {
			s.m.rateLimited.Inc()
			om.errs.Inc()
			s.m.errsByTenant.With(tenant).Inc()
			s.feedSLO(tenant, op, http.StatusTooManyRequests, 0, nil)
			secs := int(wait/time.Second) + 1
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			err := fmt.Errorf("api: tenant %q rate limited, retry in %v", tenant, wait.Round(time.Millisecond))
			sp.Event("ratelimit.rejected", trace.Int64("retry_after_s", int64(secs)))
			sp.End(err)
			writeError(w, http.StatusTooManyRequests, CodeRateLimited,
				fmt.Sprintf("tenant %q rate limited, retry in %v", tenant, wait.Round(time.Millisecond)))
			return
		}
		s.m.inFlight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		err := h(sw, r, tenant)
		lat := time.Since(start)
		om.latNs.Observe(float64(lat.Nanoseconds()))
		s.m.latByTenant.With(tenant).Observe(float64(lat.Nanoseconds()))
		s.m.inFlight.Add(-1)
		status := http.StatusOK
		if err != nil {
			status, _ = errorStatus(err)
		}
		s.feedSLO(tenant, op, status, lat, err)
		sp.End(err)
		if err != nil {
			om.errs.Inc()
			s.m.errsByTenant.With(tenant).Inc()
			code, machine := errorStatus(err)
			if code == http.StatusRequestEntityTooLarge || code == http.StatusInsufficientStorage {
				s.m.quotaDenied.Inc()
			}
			if !sw.wrote {
				writeError(w, code, machine, err.Error())
			}
			// Headers already sent (streaming GET failed mid-body): the
			// short body against the announced Content-Length is the
			// client's corruption signal; nothing more we can say here.
		}
	}
}

// feedSLO records one finished request into the tenant's sliding-window
// SLOs: availability counts any server-fault (5xx) as bad, the get
// latency SLO observes successful read latency against its target, and
// degraded.reads counts a read the cluster could not satisfy
// (core.ErrDegraded) as bad.
func (s *Server) feedSLO(tenant, op string, status int, lat time.Duration, err error) {
	row := s.slos.Row(tenant)
	if row == nil {
		return
	}
	if slo := row["availability"]; slo != nil {
		slo.Record(status < 500)
	}
	if op != "get" {
		return
	}
	if slo := row["get.latency"]; slo != nil && err == nil {
		slo.Observe(float64(lat.Nanoseconds()))
	}
	if slo := row["degraded.reads"]; slo != nil {
		slo.Record(!errors.Is(err, core.ErrDegraded))
	}
}

// errorStatus maps service/vault errors onto HTTP statuses and stable
// machine codes.
func errorStatus(err error) (int, string) {
	switch {
	case errors.Is(err, core.ErrNotFound):
		return http.StatusNotFound, CodeNotFound
	case errors.Is(err, core.ErrExists):
		return http.StatusConflict, CodeExists
	case errors.Is(err, ErrQuotaBytes):
		return http.StatusRequestEntityTooLarge, CodeQuotaBytes
	case errors.Is(err, ErrQuotaObjects):
		return http.StatusInsufficientStorage, CodeQuotaObjects
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, cluster.ErrRetryAborted):
		// The client went away; 499-style. The status rarely reaches
		// anyone, but the access log distinction matters.
		return http.StatusRequestTimeout, CodeCanceled
	case errors.Is(err, core.ErrDegraded):
		return http.StatusServiceUnavailable, CodeDegraded
	case errors.Is(err, errBadRequest):
		return http.StatusBadRequest, CodeBadRequest
	default:
		return http.StatusInternalServerError, CodeInternal
	}
}

// errBadRequest marks caller mistakes (bad id, unknown mode/scheme).
var errBadRequest = errors.New("api: bad request")

func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errBadRequest, fmt.Sprintf(format, args...))
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Code: code, Message: msg})
}

func writeJSON(w *statusWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(v)
}

// objectID validates the path id and returns the tenant-namespaced
// storage key.
func objectID(r *http.Request, tenant string) (string, error) {
	id := r.PathValue("id")
	if id == "" {
		return "", badRequestf("empty object id")
	}
	if strings.Contains(id, "//") || strings.HasPrefix(id, "/") || strings.HasSuffix(id, "/") {
		return "", badRequestf("malformed object id %q", id)
	}
	for _, seg := range strings.Split(id, "/") {
		if seg == "." || seg == ".." {
			return "", badRequestf("malformed object id %q", id)
		}
	}
	return tenant + "/" + id, nil
}

func (s *Server) handlePut(w *statusWriter, r *http.Request, tenant string) error {
	key, err := objectID(r, tenant)
	if err != nil {
		return err
	}
	if err := s.quotas.admitObject(tenant); err != nil {
		return err
	}
	q := s.quotas.quota(tenant)
	u := s.quotas.usage(tenant)
	if q.MaxBytes > 0 && r.ContentLength > 0 &&
		u.bytes.Load()+u.inflight.Load()+r.ContentLength > q.MaxBytes {
		// Fail before ingesting anything when the announced length
		// already breaks the budget; chunked uploads are caught by the
		// streaming reader below instead.
		return fmt.Errorf("%w: tenant %q over %d bytes", ErrQuotaBytes, tenant, q.MaxBytes)
	}
	qr := &quotaReader{r: r.Body, u: u, max: q.MaxBytes, tenant: tenant}
	n, err := s.vault.PutReader(r.Context(), key, qr)
	qr.settle(err == nil)
	if err != nil {
		return err
	}
	s.m.bytesIn.Add(n)
	return writeJSON(w, http.StatusCreated, PutResult{ID: strings.TrimPrefix(key, tenant+"/"), Bytes: n})
}

func (s *Server) handleGet(w *statusWriter, r *http.Request, tenant string) error {
	key, err := objectID(r, tenant)
	if err != nil {
		return err
	}
	info, err := s.vault.Stat(key)
	if err != nil {
		return err
	}
	setStatHeaders(w, info)
	w.WriteHeader(http.StatusOK)
	n, err := s.vault.ReadTo(r.Context(), key, w)
	s.m.bytesOut.Add(n)
	if err != nil {
		return fmt.Errorf("api: stream %s: %w", key, err)
	}
	return nil
}

func (s *Server) handleStat(w *statusWriter, r *http.Request, tenant string) error {
	key, err := objectID(r, tenant)
	if err != nil {
		return err
	}
	info, err := s.vault.Stat(key)
	if err != nil {
		return err
	}
	setStatHeaders(w, info)
	w.WriteHeader(http.StatusOK)
	return nil
}

// setStatHeaders carries object metadata on GET/HEAD responses; the
// client's Stat reads these without a body.
func setStatHeaders(w *statusWriter, info *core.ObjectInfo) {
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", strconv.FormatInt(info.PlainLen, 10))
	h.Set("X-Archive-Scheme", info.Scheme)
	h.Set("X-Archive-Chunks", strconv.Itoa(info.Chunks))
	h.Set("X-Archive-Width", strconv.Itoa(info.Width))
	h.Set("X-Archive-Chain-Len", strconv.Itoa(info.ChainLen))
}

func (s *Server) handleDelete(w *statusWriter, r *http.Request, tenant string) error {
	key, err := objectID(r, tenant)
	if err != nil {
		return err
	}
	info, err := s.vault.Stat(key)
	if err != nil {
		return err
	}
	if err := s.vault.DeleteContext(r.Context(), key); err != nil {
		return err
	}
	s.quotas.usage(tenant).release(info.PlainLen)
	w.WriteHeader(http.StatusNoContent)
	return nil
}

func (s *Server) handleScrub(w *statusWriter, r *http.Request, tenant string) error {
	key, err := objectID(r, tenant)
	if err != nil {
		return err
	}
	rep, err := s.vault.ScrubContext(r.Context(), key)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, ScrubResult{
		Object:   strings.TrimPrefix(rep.Object, tenant+"/"),
		Healthy:  rep.Healthy,
		Missing:  rep.Missing,
		Corrupt:  rep.Corrupt,
		Repaired: rep.Repaired,
	})
}

func (s *Server) handleRenew(w *statusWriter, r *http.Request, tenant string) error {
	key, err := objectID(r, tenant)
	if err != nil {
		return err
	}
	mode := r.URL.Query().Get("mode")
	res := RenewResult{Object: strings.TrimPrefix(key, tenant+"/"), Mode: mode}
	switch mode {
	case "shares", "":
		res.Mode = "shares"
		if err := s.vault.RenewSharesContext(r.Context(), key); err != nil {
			return err
		}
	case "integrity":
		scheme := sig.Scheme(r.URL.Query().Get("scheme"))
		if scheme == "" {
			scheme = sig.Ed25519
		}
		if _, err := sig.Get(scheme); err != nil {
			return badRequestf("unknown signature scheme %q", scheme)
		}
		if err := s.vault.RenewIntegrity(key, scheme); err != nil {
			return err
		}
		if info, err := s.vault.Stat(key); err == nil {
			res.ChainLen = info.ChainLen
		}
	default:
		return badRequestf("unknown renew mode %q (want shares or integrity)", mode)
	}
	return writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleList(w *statusWriter, r *http.Request, tenant string) error {
	prefix := tenant + "/"
	var ids []string
	for _, id := range s.vault.Objects() {
		if strings.HasPrefix(id, prefix) {
			ids = append(ids, strings.TrimPrefix(id, prefix))
		}
	}
	sort.Strings(ids)
	return writeJSON(w, http.StatusOK, ListResult{Objects: ids})
}

func (s *Server) handleUsage(w *statusWriter, r *http.Request, tenant string) error {
	q := s.quotas.quota(tenant)
	u := s.quotas.usage(tenant)
	res := UsageResult{
		Tenant:     tenant,
		Bytes:      u.bytes.Load() + u.inflight.Load(),
		Objects:    u.objects.Load(),
		MaxBytes:   q.MaxBytes,
		MaxObjects: q.MaxObjects,
	}
	// Read-cache residency: objects are keyed "<tenant>/<id>", which is
	// exactly the owner prefix the cache accounts by.
	if st := s.vault.CacheStats(); st != nil {
		res.CacheBytes = st.OwnerBytes[tenant]
	}
	return writeJSON(w, http.StatusOK, res)
}
