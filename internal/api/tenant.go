package api

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Per-tenant namespacing and quotas. Tenants share one vault; the
// server prefixes every object id with "<tenant>/" so namespaces
// cannot collide, and admission-controls writes against the tenant's
// byte and object budgets. Byte quotas are enforced *while the body
// streams* — a counting reader charges the tenant's in-flight tally as
// bytes arrive and fails the upload the moment it crosses the budget —
// so an over-quota client cannot make the server ingest (or stage) an
// unbounded body first and account for it later.

// Quota bounds one tenant's footprint; zero fields mean unlimited.
type Quota struct {
	// MaxBytes caps the sum of plaintext bytes stored (committed plus
	// in-flight uploads).
	MaxBytes int64
	// MaxObjects caps the number of live objects.
	MaxObjects int64
}

// Quota errors, surfaced through the streaming reader and mapped to
// 413/507 by the handler layer.
var (
	ErrQuotaBytes   = errors.New("api: tenant byte quota exceeded")
	ErrQuotaObjects = errors.New("api: tenant object quota exceeded")
)

// tenantUsage is one tenant's running consumption. bytes/objects are
// committed state; inflight is the plaintext read off in-progress
// uploads, charged against the byte budget so concurrent uploads
// cannot jointly overshoot.
type tenantUsage struct {
	bytes    atomic.Int64
	inflight atomic.Int64
	objects  atomic.Int64
}

// quotaTable tracks usage per tenant against configured budgets.
type quotaTable struct {
	def     Quota
	byName  map[string]Quota
	mu      sync.Mutex
	tenants map[string]*tenantUsage
}

func newQuotaTable(def Quota, byName map[string]Quota) *quotaTable {
	return &quotaTable{def: def, byName: byName, tenants: make(map[string]*tenantUsage)}
}

func (q *quotaTable) quota(tenant string) Quota {
	if qt, ok := q.byName[tenant]; ok {
		return qt
	}
	return q.def
}

func (q *quotaTable) usage(tenant string) *tenantUsage {
	q.mu.Lock()
	defer q.mu.Unlock()
	u := q.tenants[tenant]
	if u == nil {
		u = &tenantUsage{}
		q.tenants[tenant] = u
	}
	return u
}

// admitObject checks the object-count budget for one incoming put.
func (q *quotaTable) admitObject(tenant string) error {
	qt := q.quota(tenant)
	if qt.MaxObjects > 0 && q.usage(tenant).objects.Load() >= qt.MaxObjects {
		return fmt.Errorf("%w: tenant %q at %d objects", ErrQuotaObjects, tenant, qt.MaxObjects)
	}
	return nil
}

// quotaReader charges every byte read from an upload body against the
// tenant's byte budget. It reports ErrQuotaBytes as soon as committed
// plus in-flight bytes cross the budget; the vault's streaming writer
// surfaces that as the put's failure and aborts its stage. settle()
// must run exactly once when the request ends: it returns the
// in-flight charge and, on success, commits the actual byte count.
type quotaReader struct {
	r       io.Reader
	u       *tenantUsage
	max     int64 // 0 = unlimited
	tenant  string
	counted int64
	err     error // sticky once the budget is breached
}

func (qr *quotaReader) Read(p []byte) (int, error) {
	// The breach must be sticky: io.ReadFull swallows an error returned
	// alongside a buffer-filling read, so without it a chunk-aligned
	// upload would sail past the budget one swallowed error at a time.
	if qr.err != nil {
		return 0, qr.err
	}
	n, err := qr.r.Read(p)
	if n > 0 {
		qr.counted += int64(n)
		qr.u.inflight.Add(int64(n))
		if qr.max > 0 && qr.u.bytes.Load()+qr.u.inflight.Load() > qr.max {
			qr.err = fmt.Errorf("%w: tenant %q over %d bytes", ErrQuotaBytes, qr.tenant, qr.max)
			return n, qr.err
		}
	}
	return n, err
}

// settle releases the in-flight charge; committed says whether the put
// succeeded, in which case the bytes move to the committed tally.
func (qr *quotaReader) settle(committed bool) {
	qr.u.inflight.Add(-qr.counted)
	if committed {
		qr.u.bytes.Add(qr.counted)
		qr.u.objects.Add(1)
	}
}

// release returns a deleted object's footprint to the tenant's budget.
func (u *tenantUsage) release(bytes int64) {
	u.bytes.Add(-bytes)
	u.objects.Add(-1)
}

// validTenant accepts DNS-label-ish tenant names; the "/" namespace
// separator and path metacharacters are rejected outright.
func validTenant(t string) bool {
	if t == "" || len(t) > 64 {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return t != "." && t != ".."
}
