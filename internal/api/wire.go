// Package api exposes a Vault as a network archive service: HTTP/JSON
// control operations with *streaming* object bodies — a PUT feeds the
// vault's chunked encode→stage pipeline straight from the request body
// and a GET streams decoded chunks into the response, so object size
// never dictates server memory. Requests are namespaced per tenant
// (X-Archive-Tenant), admission-controlled by per-tenant byte/object
// quotas, and backpressured by a token-bucket rate limiter that answers
// 429 with Retry-After. The package's sibling client
// (securearchive/internal/api/client) speaks this wire format.
package api

import "fmt"

// TenantHeader carries the caller's tenant id; absent means
// DefaultTenant.
const TenantHeader = "X-Archive-Tenant"

// DefaultTenant is the namespace used when no tenant header is sent.
const DefaultTenant = "default"

// TraceHeader carries the server-side trace ID on every traced
// response, so a failed request is greppable in the monitor's /traces
// output. The server also echoes a standard W3C traceparent header.
const TraceHeader = "X-Archive-Trace"

// PutResult is the body of a successful PUT response.
type PutResult struct {
	ID    string `json:"id"`
	Bytes int64  `json:"bytes"`
}

// StatResult mirrors core.ObjectInfo on the wire.
type StatResult struct {
	ID       string `json:"id"`
	Bytes    int64  `json:"bytes"`
	Scheme   string `json:"scheme"`
	Chunks   int    `json:"chunks"`
	Width    int    `json:"width"`
	ChainLen int    `json:"chain_len"`
}

// ScrubResult reports one object's stripe health after a scrub.
type ScrubResult struct {
	Object   string `json:"object"`
	Healthy  []int  `json:"healthy,omitempty"`
	Missing  []int  `json:"missing,omitempty"`
	Corrupt  []int  `json:"corrupt,omitempty"`
	Repaired bool   `json:"repaired"`
}

// RenewResult confirms a renewal.
type RenewResult struct {
	Object string `json:"object"`
	Mode   string `json:"mode"`
	// ChainLen is the integrity chain length after the renewal (only
	// meaningful for mode=integrity).
	ChainLen int `json:"chain_len,omitempty"`
}

// ListResult is the body of a tenant object listing.
type ListResult struct {
	Objects []string `json:"objects"`
}

// UsageResult reports a tenant's quota consumption.
type UsageResult struct {
	Tenant     string `json:"tenant"`
	Bytes      int64  `json:"bytes"`
	Objects    int64  `json:"objects"`
	MaxBytes   int64  `json:"max_bytes,omitempty"`
	MaxObjects int64  `json:"max_objects,omitempty"`
	// CacheBytes is the tenant's current residency in the vault's
	// decoded-object read cache (0 when the server runs without one).
	// Informational, not quota-charged: cached bytes are a transient
	// copy the vault may evict at any time.
	CacheBytes int64 `json:"cache_bytes,omitempty"`
}

// errorBody is the JSON envelope every non-2xx response carries.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error is the typed failure the client surfaces for any non-2xx
// response: the HTTP status, a stable machine code ("not_found",
// "exists", "quota_bytes", "quota_objects", "rate_limited", ...) and
// the human message.
type Error struct {
	Status  int
	Code    string
	Message string
	// TraceID is the server-side trace ID from the response's
	// X-Archive-Trace header ("" when the server was not tracing); it
	// makes a failed request greppable in the monitor's /traces output.
	TraceID string
}

// Error renders e.g. `api: 404 not_found: object "t/x" not found
// (trace 4fa1b2c3d4e5f607)`.
func (e *Error) Error() string {
	if e.TraceID != "" {
		return fmt.Sprintf("api: %d %s: %s (trace %s)", e.Status, e.Code, e.Message, e.TraceID)
	}
	return fmt.Sprintf("api: %d %s: %s", e.Status, e.Code, e.Message)
}

// Stable machine codes.
const (
	CodeNotFound     = "not_found"
	CodeExists       = "exists"
	CodeQuotaBytes   = "quota_bytes"
	CodeQuotaObjects = "quota_objects"
	CodeRateLimited  = "rate_limited"
	CodeDegraded     = "degraded"
	CodeBadRequest   = "bad_request"
	CodeCanceled     = "canceled"
	CodeInternal     = "internal"
)
