// Package bsm simulates key agreement in Maurer's Bounded Storage Model
// (BSM), the alternative to QKD that §4 of the paper says is "overdue for
// a practical evaluation" (experiment E9).
//
// The model: a public source broadcasts a stream of R random bytes. The
// honest parties share a small prior secret — the positions they will
// sample — and each stores only those k bytes. The adversary may store ANY
// α·R bytes of the stream (α < 1) but not all of it; once the stream has
// passed, unstored bytes are gone forever, no matter the adversary's
// computing power. The honest parties' sampled positions that the
// adversary missed carry true secrecy; privacy amplification with a
// universal hash compresses the sample into a final key that is close to
// uniform from the adversary's view.
//
// The simulator plays all three roles deterministically (seeded) and
// reports exactly what the adversary learned, so the α-sweep in the bench
// harness can chart key rate against adversary storage — the trade-off
// the paper asks about.
package bsm

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
)

// Errors returned by this package.
var (
	ErrBadParams = errors.New("bsm: invalid parameters")
	ErrKeyTooBig = errors.New("bsm: requested key exceeds sampled entropy")
)

// Params configures one BSM key-agreement run.
type Params struct {
	// StreamBytes is R: the broadcast stream length.
	StreamBytes int
	// SampleBytes is k: how many positions the honest parties store.
	SampleBytes int
	// AdversaryFraction is α: the fraction of the stream the adversary
	// can store, in [0, 1).
	AdversaryFraction float64
	// KeyBytes is the final key length after privacy amplification.
	KeyBytes int
	// EveStrategy selects how the adversary chooses which bytes to store.
	EveStrategy EveStrategy
}

// EveStrategy is the adversary's storage policy.
type EveStrategy int

// Adversary storage strategies.
const (
	// EvePrefix stores the first α·R bytes (models a capture window).
	EvePrefix EveStrategy = iota
	// EveRandom stores a uniform α·R-subset (models sampling taps).
	EveRandom
)

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.StreamBytes <= 0 || p.SampleBytes <= 0 || p.KeyBytes <= 0 {
		return fmt.Errorf("%w: %+v", ErrBadParams, p)
	}
	if p.SampleBytes > p.StreamBytes {
		return fmt.Errorf("%w: sample exceeds stream", ErrBadParams)
	}
	if p.AdversaryFraction < 0 || p.AdversaryFraction >= 1 {
		return fmt.Errorf("%w: alpha=%v", ErrBadParams, p.AdversaryFraction)
	}
	return nil
}

// Result reports one key-agreement run.
type Result struct {
	// Key is the agreed key (identical for both honest parties).
	Key []byte
	// EveStoredBytes is how much of the stream the adversary kept.
	EveStoredBytes int
	// EveKnownSamples is how many of the honest sample positions the
	// adversary happened to store — the leaked entropy, in bytes.
	EveKnownSamples int
	// FreshEntropyBytes = SampleBytes − EveKnownSamples: the min-entropy
	// (in bytes) backing the final key.
	FreshEntropyBytes int
	// Secure reports whether privacy amplification had enough fresh
	// entropy for the requested key (with the leftover-hash margin).
	Secure bool
}

// amplificationMarginBytes is the leftover-hash-lemma safety margin: the
// final key must be at least this much shorter than the fresh entropy.
const amplificationMarginBytes = 8 // 64 bits → ε ≤ 2^-32

// Exchange runs one key agreement. Both honest parties compute the same
// key; the result records the adversary's knowledge.
// Each call owns a locally seeded *rand.Rand — never the shared
// math/rand global source — so concurrent exchanges cannot perturb each
// other's draw sequences and a given seed always replays the same run.
func Exchange(p Params, seed int64) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	// The honest parties' shared prior secret: sample positions and the
	// extractor seed. In a deployment this is the small long-term secret;
	// here it comes from the same seeded RNG for determinism.
	positions := rng.Perm(p.StreamBytes)[:p.SampleBytes]
	extractorSeed := make([]byte, 32)
	rng.Read(extractorSeed)

	// Adversary's storage set, chosen WITHOUT knowledge of positions.
	eveBytes := int(p.AdversaryFraction * float64(p.StreamBytes))
	eveStores := make(map[int]bool, eveBytes)
	switch p.EveStrategy {
	case EvePrefix:
		for i := 0; i < eveBytes; i++ {
			eveStores[i] = true
		}
	case EveRandom:
		for _, i := range rng.Perm(p.StreamBytes)[:eveBytes] {
			eveStores[i] = true
		}
	default:
		return nil, fmt.Errorf("%w: strategy %d", ErrBadParams, p.EveStrategy)
	}

	// Broadcast: stream bytes are generated on the fly; Alice/Bob keep
	// only their positions, Eve keeps only her set. Nobody stores R.
	wanted := make(map[int]int, p.SampleBytes) // position → sample index
	for i, pos := range positions {
		wanted[pos] = i
	}
	sample := make([]byte, p.SampleBytes)
	eveKnown := 0
	buf := make([]byte, 1)
	for pos := 0; pos < p.StreamBytes; pos++ {
		rng.Read(buf)
		if i, ok := wanted[pos]; ok {
			sample[i] = buf[0]
			if eveStores[pos] {
				eveKnown++
			}
		}
	}

	fresh := p.SampleBytes - eveKnown
	secure := fresh >= p.KeyBytes+amplificationMarginBytes

	// Privacy amplification: SHA-256 in counter mode over (seed ‖ sample),
	// a standard extractor instantiation.
	key := make([]byte, p.KeyBytes)
	var ctr [8]byte
	for off := 0; off < p.KeyBytes; off += sha256.Size {
		binary.BigEndian.PutUint64(ctr[:], uint64(off/sha256.Size))
		h := sha256.New()
		h.Write(extractorSeed)
		h.Write(ctr[:])
		h.Write(sample)
		copy(key[off:], h.Sum(nil))
	}

	return &Result{
		Key:               key,
		EveStoredBytes:    eveBytes,
		EveKnownSamples:   eveKnown,
		FreshEntropyBytes: fresh,
		Secure:            secure,
	}, nil
}

// MaxSecureKeyBytes returns the largest key the parameters support in
// expectation: (1−α)·k minus the amplification margin, floored at 0.
func MaxSecureKeyBytes(p Params) int {
	exp := int(float64(p.SampleBytes)*(1-p.AdversaryFraction)) - amplificationMarginBytes
	if exp < 0 {
		return 0
	}
	return exp
}
