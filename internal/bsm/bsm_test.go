package bsm

import (
	"bytes"
	"errors"
	"testing"
)

func TestExchangeProducesKey(t *testing.T) {
	p := Params{StreamBytes: 100000, SampleBytes: 256, AdversaryFraction: 0.5, KeyBytes: 32}
	res, err := Exchange(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Key) != 32 {
		t.Fatalf("key length %d", len(res.Key))
	}
	if !res.Secure {
		t.Fatalf("expected secure: fresh=%d", res.FreshEntropyBytes)
	}
	// α=0.5 over 256 samples: Eve should know about half, ±generous slack.
	if res.EveKnownSamples < 80 || res.EveKnownSamples > 176 {
		t.Fatalf("Eve knows %d/256 samples at α=0.5, want ≈128", res.EveKnownSamples)
	}
	if res.FreshEntropyBytes != 256-res.EveKnownSamples {
		t.Fatal("fresh entropy accounting wrong")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	p := Params{StreamBytes: 50000, SampleBytes: 128, AdversaryFraction: 0.3, KeyBytes: 16}
	a, _ := Exchange(p, 7)
	b, _ := Exchange(p, 7)
	if !bytes.Equal(a.Key, b.Key) {
		t.Fatal("same seed, different keys")
	}
	c, _ := Exchange(p, 8)
	if bytes.Equal(a.Key, c.Key) {
		t.Fatal("different seed, same key")
	}
}

// TestAlphaSweepMonotone: more adversary storage → more known samples,
// less fresh entropy (E9's x-axis).
func TestAlphaSweepMonotone(t *testing.T) {
	base := Params{StreamBytes: 200000, SampleBytes: 512, KeyBytes: 32, EveStrategy: EveRandom}
	prevKnown := -1
	for _, alpha := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		p := base
		p.AdversaryFraction = alpha
		res, err := Exchange(p, 99)
		if err != nil {
			t.Fatal(err)
		}
		if res.EveKnownSamples <= prevKnown {
			t.Fatalf("α=%v: Eve knowledge %d not increasing (prev %d)", alpha, res.EveKnownSamples, prevKnown)
		}
		prevKnown = res.EveKnownSamples
	}
}

// TestHighAlphaInsecure: at α=0.95-ish... capped below 1; with α close to
// 1 and a small sample, fresh entropy collapses below the key size.
func TestHighAlphaInsecure(t *testing.T) {
	p := Params{StreamBytes: 100000, SampleBytes: 40, AdversaryFraction: 0.99, KeyBytes: 32, EveStrategy: EveRandom}
	res, err := Exchange(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Secure {
		t.Fatalf("α=0.99 with 40 samples reported secure (fresh=%d)", res.FreshEntropyBytes)
	}
}

func TestEvePrefixStrategy(t *testing.T) {
	p := Params{StreamBytes: 100000, SampleBytes: 128, AdversaryFraction: 0.4, KeyBytes: 16, EveStrategy: EvePrefix}
	res, err := Exchange(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.EveStoredBytes != 40000 {
		t.Fatalf("Eve stored %d, want 40000", res.EveStoredBytes)
	}
	// Random positions land in the prefix w.p. 0.4: expect ≈51 of 128.
	if res.EveKnownSamples < 25 || res.EveKnownSamples > 80 {
		t.Fatalf("prefix Eve knows %d/128, want ≈51", res.EveKnownSamples)
	}
}

func TestParamValidation(t *testing.T) {
	bad := []Params{
		{StreamBytes: 0, SampleBytes: 1, KeyBytes: 1},
		{StreamBytes: 10, SampleBytes: 0, KeyBytes: 1},
		{StreamBytes: 10, SampleBytes: 11, KeyBytes: 1},
		{StreamBytes: 10, SampleBytes: 5, KeyBytes: 0},
		{StreamBytes: 10, SampleBytes: 5, KeyBytes: 1, AdversaryFraction: 1.0},
		{StreamBytes: 10, SampleBytes: 5, KeyBytes: 1, AdversaryFraction: -0.1},
	}
	for i, p := range bad {
		if _, err := Exchange(p, 1); !errors.Is(err, ErrBadParams) {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestMaxSecureKeyBytes(t *testing.T) {
	p := Params{StreamBytes: 1000, SampleBytes: 100, AdversaryFraction: 0.5, KeyBytes: 1}
	// (1-0.5)*100 - 8 = 42
	if got := MaxSecureKeyBytes(p); got != 42 {
		t.Fatalf("MaxSecureKeyBytes = %d, want 42", got)
	}
	p.AdversaryFraction = 0.99
	if got := MaxSecureKeyBytes(p); got != 0 {
		t.Fatalf("collapsed budget = %d, want 0", got)
	}
}

// TestZeroAlphaPerfect: with no adversary storage, all samples are fresh.
func TestZeroAlphaPerfect(t *testing.T) {
	p := Params{StreamBytes: 10000, SampleBytes: 64, AdversaryFraction: 0, KeyBytes: 32}
	res, err := Exchange(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.EveKnownSamples != 0 || res.FreshEntropyBytes != 64 || !res.Secure {
		t.Fatalf("α=0 run: %+v", res)
	}
}

func BenchmarkExchange1MBStream(b *testing.B) {
	p := Params{StreamBytes: 1 << 20, SampleBytes: 1024, AdversaryFraction: 0.5, KeyBytes: 32}
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		if _, err := Exchange(p, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
