// Package bufpool provides size-classed pooled byte buffers for the
// coding hot paths (rs, shamir, packed) and the vault's batched/chunked
// write pipeline.
//
// The paper's §3.2 argument prices archival crypto maintenance off raw
// encode throughput; at that scale the allocator is a real tax — every
// per-object shard buffer is garbage the moment the cluster has copied
// it. The pool turns that steady-state churn into reuse: buffers live in
// power-of-two size classes backed by sync.Pool, and a warm encode loop
// allocates nothing (see the AllocsPerRun gates in internal/rs).
//
// Handles are pooled alongside their buffers: Get returns a *Buf whose
// backing array AND header object both come from (and return to) the
// pool, so a Get/Release cycle is allocation-free once warm. Plain
// []byte round trips through a sync.Pool would box the slice header on
// every Put — exactly the alloc the pool exists to kill.
package bufpool

import "sync"

// minClassBits/maxClassBits bound the pooled size classes: 512 B .. 8 MiB.
// Requests above the largest class are served by plain make and dropped
// on Release (huge one-off buffers should not pin pool memory); requests
// below the smallest round up to it.
const (
	minClassBits = 9  // 512 B
	maxClassBits = 23 // 8 MiB
	numClasses   = maxClassBits - minClassBits + 1
)

// Buf is a pooled byte buffer. B is sized to the Get request; its
// capacity is the size class. Release returns both the buffer and the
// handle to the pool; B must not be used afterwards.
type Buf struct {
	B []byte
	// class indexes the owning pool; -1 marks an overflow buffer that
	// Release drops instead of pooling.
	class int
}

// classes[i] pools buffers of capacity 1<<(minClassBits+i).
var classes [numClasses]sync.Pool

// classFor returns the smallest class index whose capacity holds n, or
// -1 when n exceeds the largest class.
func classFor(n int) int {
	for i := 0; i < numClasses; i++ {
		if n <= 1<<(minClassBits+i) {
			return i
		}
	}
	return -1
}

// Get returns a pooled buffer with len(B) == n. The contents are NOT
// zeroed — callers overwrite or clear as needed (coding paths overwrite
// every byte; Zero is available otherwise).
func Get(n int) *Buf {
	ci := classFor(n)
	if ci < 0 {
		return &Buf{B: make([]byte, n), class: -1}
	}
	if v := classes[ci].Get(); v != nil {
		b := v.(*Buf)
		b.B = b.B[:n]
		return b
	}
	return &Buf{B: make([]byte, n, 1<<(minClassBits+ci)), class: ci}
}

// Release returns the buffer to its size-class pool. Nil-safe. Oversize
// buffers (beyond the largest class) are dropped for the GC.
func (b *Buf) Release() {
	if b == nil || b.class < 0 {
		return
	}
	b.B = b.B[:cap(b.B)]
	classes[b.class].Put(b)
}

// Zero clears the buffer contents (for callers handing pooled buffers to
// code that assumes fresh zeroed memory, e.g. parity accumulation that
// skips the assign pass).
func (b *Buf) Zero() {
	clear(b.B)
}
