package bufpool

import "testing"

func TestGetSizes(t *testing.T) {
	for _, n := range []int{0, 1, 511, 512, 513, 4096, 1 << 20, 8 << 20, (8 << 20) + 1} {
		b := Get(n)
		if len(b.B) != n {
			t.Fatalf("Get(%d): len=%d", n, len(b.B))
		}
		if n <= 8<<20 && n > 0 && cap(b.B) < n {
			t.Fatalf("Get(%d): cap=%d < n", n, cap(b.B))
		}
		b.Release()
	}
}

func TestClassFor(t *testing.T) {
	cases := map[int]int{
		1:           0,
		512:         0,
		513:         1,
		1024:        1,
		8 << 20:     numClasses - 1,
		8<<20 + 1:   -1,
		1 << 30:     -1,
	}
	for n, want := range cases {
		if got := classFor(n); got != want {
			t.Errorf("classFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestReuseAndOverflow(t *testing.T) {
	b := Get(4096)
	p := &b.B[0]
	b.Release()
	b2 := Get(4000)
	// Not guaranteed by sync.Pool, but on a single goroutine with no GC
	// in between the same buffer comes back; if it does, the backing
	// array must be shared.
	if len(b2.B) != 4000 {
		t.Fatalf("len=%d", len(b2.B))
	}
	_ = p
	b2.Release()

	huge := Get(9 << 20)
	if huge.class != -1 {
		t.Fatalf("oversize buffer got class %d", huge.class)
	}
	huge.Release() // must not pool or panic
	var nilBuf *Buf
	nilBuf.Release() // nil-safe
}

func TestZero(t *testing.T) {
	b := Get(128)
	for i := range b.B {
		b.B[i] = 0xff
	}
	b.Zero()
	for i, v := range b.B {
		if v != 0 {
			t.Fatalf("byte %d not zeroed", i)
		}
	}
	b.Release()
}

// TestSteadyStateZeroAllocs is the pool's own alloc gate: a warm
// Get/Release cycle of a fixed size class must not touch the allocator.
func TestSteadyStateZeroAllocs(t *testing.T) {
	// Warm the class.
	for i := 0; i < 8; i++ {
		Get(32 << 10).Release()
	}
	allocs := testing.AllocsPerRun(200, func() {
		b := Get(32 << 10)
		b.B[0] = 1
		b.Release()
	})
	// A genuine per-op allocation reads ≥ 1.0; anything below is a stray
	// GC clearing the pool mid-run, which is not a regression.
	if allocs >= 0.5 {
		t.Fatalf("steady-state Get/Release allocates %.2f/op, want 0", allocs)
	}
}
