package cascade

import (
	"errors"
	"fmt"
	"io"
)

// Errors returned by the envelope layer.
var (
	ErrNoLayers    = errors.New("cascade: envelope has no layers")
	ErrKeyCount    = errors.New("cascade: key count does not match layer count")
	ErrKeyMismatch = errors.New("cascade: key does not match layer scheme")
)

// Layer records one applied cipher layer: the scheme and the public nonce.
// Innermost layer first. Keys are never stored in the envelope.
type Layer struct {
	Scheme Scheme
	Nonce  []byte
}

// Envelope is a cascade-encrypted object: the layer stack (innermost
// first) and the resulting ciphertext. Envelopes are what archival nodes
// store; the matching keys live with the owner (or a key-management
// sharing, per §4's HasDPSS discussion).
type Envelope struct {
	Layers []Layer
	Body   []byte
}

// LayerKey pairs a scheme with its key material, in layer order.
type LayerKey struct {
	Scheme Scheme
	Key    []byte
}

// GenerateKeys samples fresh independent keys for the given scheme stack.
// Key independence is what makes the cascade's security the OR of its
// layers; deriving layer keys from one master secret would collapse that.
func GenerateKeys(schemes []Scheme, rnd io.Reader) ([]LayerKey, error) {
	keys := make([]LayerKey, len(schemes))
	for i, s := range schemes {
		c, err := Get(s)
		if err != nil {
			return nil, err
		}
		k := make([]byte, c.KeySize())
		if _, err := io.ReadFull(rnd, k); err != nil {
			return nil, fmt.Errorf("cascade: reading randomness: %w", err)
		}
		keys[i] = LayerKey{Scheme: s, Key: k}
	}
	return keys, nil
}

// Encrypt applies the key stack in order (keys[0] innermost) with fresh
// nonces and returns the envelope.
func Encrypt(plaintext []byte, keys []LayerKey, rnd io.Reader) (*Envelope, error) {
	if len(keys) == 0 {
		return nil, ErrNoLayers
	}
	body := append([]byte(nil), plaintext...)
	env := &Envelope{Body: body, Layers: make([]Layer, 0, len(keys))}
	for _, lk := range keys {
		if err := wrapInPlace(env, lk, rnd); err != nil {
			return nil, err
		}
	}
	return env, nil
}

// Wrap adds one outer layer to an existing envelope without decrypting —
// the ArchiveSafeLT response when inner layers are presumed weakened.
// The caller keeps the new key alongside the old ones; decryption now
// needs all of them.
func Wrap(env *Envelope, key LayerKey, rnd io.Reader) error {
	if len(env.Layers) == 0 {
		return ErrNoLayers
	}
	return wrapInPlace(env, key, rnd)
}

func wrapInPlace(env *Envelope, lk LayerKey, rnd io.Reader) error {
	c, err := Get(lk.Scheme)
	if err != nil {
		return err
	}
	if len(lk.Key) != c.KeySize() {
		return fmt.Errorf("%w: scheme %s", ErrKeyMismatch, lk.Scheme)
	}
	nonce := make([]byte, c.NonceSize())
	if _, err := io.ReadFull(rnd, nonce); err != nil {
		return fmt.Errorf("cascade: reading randomness: %w", err)
	}
	if err := c.XOR(env.Body, env.Body, lk.Key, nonce); err != nil {
		return err
	}
	env.Layers = append(env.Layers, Layer{Scheme: lk.Scheme, Nonce: nonce})
	return nil
}

// Decrypt strips all layers (outermost first) and returns the plaintext.
// keys must be in the same order as at encryption (innermost first) and
// match the envelope's layer schemes.
func Decrypt(env *Envelope, keys []LayerKey) ([]byte, error) {
	if len(env.Layers) == 0 {
		return nil, ErrNoLayers
	}
	if len(keys) != len(env.Layers) {
		return nil, fmt.Errorf("%w: %d keys for %d layers", ErrKeyCount, len(keys), len(env.Layers))
	}
	body := append([]byte(nil), env.Body...)
	for i := len(env.Layers) - 1; i >= 0; i-- {
		layer := env.Layers[i]
		lk := keys[i]
		if lk.Scheme != layer.Scheme {
			return nil, fmt.Errorf("%w: layer %d is %s, key is %s", ErrKeyMismatch, i, layer.Scheme, lk.Scheme)
		}
		c, err := Get(layer.Scheme)
		if err != nil {
			return nil, err
		}
		if err := c.XOR(body, body, lk.Key, layer.Nonce); err != nil {
			return nil, err
		}
	}
	return body, nil
}

// StripBroken models cryptanalysis for the adversary simulator: it removes
// every layer whose scheme appears in broken (a break is modelled as key
// recovery, so the adversary can undo those layers), using keyOracle to
// obtain the recovered keys. It returns the residual body and the schemes
// of the layers that still protect it. If no layers remain, the return is
// the plaintext — the envelope has fallen.
func StripBroken(env *Envelope, broken map[Scheme]bool, keyOracle func(layer int, s Scheme) []byte) ([]byte, []Scheme, error) {
	body := append([]byte(nil), env.Body...)
	remaining := make([]Scheme, 0, len(env.Layers))
	// Layers can only be stripped outermost-inward; an unbroken outer
	// layer shields the broken layers beneath it (keystream alignment is
	// lost). Walk from the outside and stop at the first survivor.
	stopAt := -1
	for i := len(env.Layers) - 1; i >= 0; i-- {
		if !broken[env.Layers[i].Scheme] {
			stopAt = i
			break
		}
	}
	for i := len(env.Layers) - 1; i > stopAt; i-- {
		layer := env.Layers[i]
		c, err := Get(layer.Scheme)
		if err != nil {
			return nil, nil, err
		}
		key := keyOracle(i, layer.Scheme)
		if err := c.XOR(body, body, key, layer.Nonce); err != nil {
			return nil, nil, err
		}
	}
	for i := 0; i <= stopAt; i++ {
		remaining = append(remaining, env.Layers[i].Scheme)
	}
	return body, remaining, nil
}

// SecureAgainst reports whether the envelope still hides its plaintext
// when the given schemes are broken: true iff at least one layer's scheme
// survives. This is the cascade combiner property in decision form.
func (e *Envelope) SecureAgainst(broken map[Scheme]bool) bool {
	for _, l := range e.Layers {
		if !broken[l.Scheme] {
			return true
		}
	}
	return false
}

// Overhead returns stored bytes per plaintext byte. Stream-cipher layers
// add only nonces, so the cascade stays in Figure 1's low-cost band.
func (e *Envelope) Overhead() float64 {
	if len(e.Body) == 0 {
		return 0
	}
	meta := 0
	for _, l := range e.Layers {
		meta += len(l.Nonce) + len(l.Scheme)
	}
	return float64(len(e.Body)+meta) / float64(len(e.Body))
}
