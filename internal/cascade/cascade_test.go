package cascade

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
)

var allSchemes = []Scheme{AES256CTR, ChaCha20, SHA256CTR}

func TestRegistry(t *testing.T) {
	for _, s := range allSchemes {
		c, err := Get(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if c.Scheme() != s {
			t.Fatalf("scheme mismatch: %s != %s", c.Scheme(), s)
		}
		if c.KeySize() < 32 {
			t.Fatalf("%s key size %d < 256 bits", s, c.KeySize())
		}
	}
	if _, err := Get("rot13"); !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("unknown scheme: %v", err)
	}
	if got := Schemes(); len(got) != 3 {
		t.Fatalf("Schemes() returned %d entries", len(got))
	}
}

func TestEachCipherRoundTrip(t *testing.T) {
	msg := []byte("every registered family must round-trip independently")
	for _, s := range allSchemes {
		c, _ := Get(s)
		key := make([]byte, c.KeySize())
		nonce := make([]byte, c.NonceSize())
		rand.Read(key)
		rand.Read(nonce)
		ct := make([]byte, len(msg))
		if err := c.XOR(ct, msg, key, nonce); err != nil {
			t.Fatalf("%s encrypt: %v", s, err)
		}
		if bytes.Equal(ct, msg) {
			t.Fatalf("%s: ciphertext equals plaintext", s)
		}
		pt := make([]byte, len(ct))
		if err := c.XOR(pt, ct, key, nonce); err != nil {
			t.Fatalf("%s decrypt: %v", s, err)
		}
		if !bytes.Equal(pt, msg) {
			t.Fatalf("%s: round trip failed", s)
		}
	}
}

func TestCipherKeySizeValidation(t *testing.T) {
	for _, s := range allSchemes {
		c, _ := Get(s)
		bad := make([]byte, c.KeySize()-1)
		nonce := make([]byte, c.NonceSize())
		if err := c.XOR(make([]byte, 4), make([]byte, 4), bad, nonce); err == nil {
			t.Fatalf("%s accepted short key", s)
		}
	}
}

func TestCascadeEncryptDecrypt(t *testing.T) {
	msg := []byte("three independent families stand between you and this text")
	keys, err := GenerateKeys(allSchemes, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Encrypt(msg, keys, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Layers) != 3 {
		t.Fatalf("%d layers, want 3", len(env.Layers))
	}
	if bytes.Equal(env.Body, msg) {
		t.Fatal("cascade body equals plaintext")
	}
	got, err := Decrypt(env, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("cascade round trip failed")
	}
}

func TestDecryptWrongOrderFails(t *testing.T) {
	msg := []byte("order matters")
	keys, _ := GenerateKeys(allSchemes, rand.Reader)
	env, _ := Encrypt(msg, keys, rand.Reader)
	swapped := []LayerKey{keys[1], keys[0], keys[2]}
	if _, err := Decrypt(env, swapped); !errors.Is(err, ErrKeyMismatch) {
		t.Fatalf("scheme-order mismatch not caught: %v", err)
	}
}

func TestDecryptWrongKeyGarbles(t *testing.T) {
	msg := []byte("wrong key wrong text")
	keys, _ := GenerateKeys(allSchemes, rand.Reader)
	env, _ := Encrypt(msg, keys, rand.Reader)
	bad := make([]LayerKey, len(keys))
	copy(bad, keys)
	wrong := make([]byte, len(keys[1].Key))
	rand.Read(wrong)
	bad[1] = LayerKey{Scheme: keys[1].Scheme, Key: wrong}
	got, err := Decrypt(env, bad)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("wrong key still decrypted (astronomically unlikely)")
	}
}

func TestWrapAddsLayerWithoutReencrypting(t *testing.T) {
	msg := []byte("wrap me when AES falls")
	keys, _ := GenerateKeys([]Scheme{AES256CTR}, rand.Reader)
	env, _ := Encrypt(msg, keys, rand.Reader)

	newKeys, _ := GenerateKeys([]Scheme{ChaCha20}, rand.Reader)
	if err := Wrap(env, newKeys[0], rand.Reader); err != nil {
		t.Fatal(err)
	}
	if len(env.Layers) != 2 {
		t.Fatalf("%d layers after wrap, want 2", len(env.Layers))
	}
	full := append(keys, newKeys[0])
	got, err := Decrypt(env, full)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("wrapped envelope round trip failed")
	}
}

func TestWrapEmptyEnvelopeRejected(t *testing.T) {
	keys, _ := GenerateKeys([]Scheme{AES256CTR}, rand.Reader)
	if err := Wrap(&Envelope{}, keys[0], rand.Reader); !errors.Is(err, ErrNoLayers) {
		t.Fatalf("wrap on empty envelope: %v", err)
	}
}

func TestSecureAgainst(t *testing.T) {
	msg := []byte("combiner property")
	keys, _ := GenerateKeys(allSchemes, rand.Reader)
	env, _ := Encrypt(msg, keys, rand.Reader)
	if !env.SecureAgainst(map[Scheme]bool{AES256CTR: true}) {
		t.Fatal("one broken layer should not break the cascade")
	}
	if !env.SecureAgainst(map[Scheme]bool{AES256CTR: true, ChaCha20: true}) {
		t.Fatal("two broken layers should not break the cascade")
	}
	if env.SecureAgainst(map[Scheme]bool{AES256CTR: true, ChaCha20: true, SHA256CTR: true}) {
		t.Fatal("all layers broken: cascade must report insecure")
	}
}

// TestStripBrokenFullBreak plays the HNDL adversary end-to-end: every
// scheme is eventually broken; stripping all layers recovers plaintext.
func TestStripBrokenFullBreak(t *testing.T) {
	msg := []byte("harvest now, decrypt later")
	keys, _ := GenerateKeys(allSchemes, rand.Reader)
	env, _ := Encrypt(msg, keys, rand.Reader)
	broken := map[Scheme]bool{AES256CTR: true, ChaCha20: true, SHA256CTR: true}
	oracle := func(layer int, s Scheme) []byte { return keys[layer].Key }
	got, remaining, err := StripBroken(env, broken, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if len(remaining) != 0 {
		t.Fatalf("remaining layers %v, want none", remaining)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("full break did not recover plaintext")
	}
}

// TestStripBrokenSurvivorShields: with the outermost layer unbroken, the
// adversary cannot strip anything, even if inner layers are broken.
func TestStripBrokenSurvivorShields(t *testing.T) {
	msg := []byte("the last unbroken layer holds the line")
	keys, _ := GenerateKeys(allSchemes, rand.Reader) // sha256-ctr outermost
	env, _ := Encrypt(msg, keys, rand.Reader)
	broken := map[Scheme]bool{AES256CTR: true, ChaCha20: true}
	oracle := func(layer int, s Scheme) []byte { return keys[layer].Key }
	got, remaining, err := StripBroken(env, broken, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if len(remaining) != 3 {
		t.Fatalf("remaining = %v, want all 3 (outer survivor shields inner)", remaining)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("plaintext leaked through an unbroken outer layer")
	}
}

// TestStripBrokenPartial: outermost broken, middle unbroken → exactly one
// layer stripped.
func TestStripBrokenPartial(t *testing.T) {
	msg := []byte("peel the onion one layer")
	keys, _ := GenerateKeys(allSchemes, rand.Reader)
	env, _ := Encrypt(msg, keys, rand.Reader)
	broken := map[Scheme]bool{SHA256CTR: true} // outermost only
	oracle := func(layer int, s Scheme) []byte { return keys[layer].Key }
	got, remaining, err := StripBroken(env, broken, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if len(remaining) != 2 {
		t.Fatalf("remaining = %v, want 2", remaining)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("partially stripped envelope revealed plaintext")
	}
}

func TestDecryptErrors(t *testing.T) {
	keys, _ := GenerateKeys(allSchemes, rand.Reader)
	env, _ := Encrypt([]byte("x"), keys, rand.Reader)
	if _, err := Decrypt(env, keys[:2]); !errors.Is(err, ErrKeyCount) {
		t.Fatalf("key count: %v", err)
	}
	if _, err := Decrypt(&Envelope{}, nil); !errors.Is(err, ErrNoLayers) {
		t.Fatalf("no layers: %v", err)
	}
	if _, err := Encrypt([]byte("x"), nil, rand.Reader); !errors.Is(err, ErrNoLayers) {
		t.Fatalf("encrypt no keys: %v", err)
	}
}

func TestOverheadNearOne(t *testing.T) {
	keys, _ := GenerateKeys(allSchemes, rand.Reader)
	env, _ := Encrypt(make([]byte, 1<<20), keys, rand.Reader)
	if oh := env.Overhead(); oh > 1.001 {
		t.Fatalf("cascade overhead %.4f, want ≈1.0", oh)
	}
}

func BenchmarkCascade3Layers1MiB(b *testing.B) {
	keys, _ := GenerateKeys(allSchemes, rand.Reader)
	msg := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encrypt(msg, keys, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSingleAES1MiB(b *testing.B) {
	keys, _ := GenerateKeys([]Scheme{AES256CTR}, rand.Reader)
	msg := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encrypt(msg, keys, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}
