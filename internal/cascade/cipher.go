// Package cascade implements cascade ciphers (robust combiners for
// encryption) in the style of ArchiveSafeLT (Sabry & Samavi, ACSAC '22).
//
// A cascade encrypts data under an ordered stack of ciphers with
// independent keys. Maurer & Massey showed a cascade is at least as
// secure as its FIRST cipher against known-plaintext attacks, and under
// independent keys the folklore result holds that breaking the cascade
// requires breaking every layer — hedging against the cryptanalytic
// obsolescence of any one design family (§3.1 of the paper). The layers
// here are deliberately drawn from unrelated families:
//
//   - aes256-ctr: an SPN block cipher in counter mode (stdlib AES)
//   - chacha20:   an ARX stream cipher (implemented in internal/chacha)
//   - sha256-ctr: a hash function in counter mode (random-oracle family)
//
// Wrapping — adding an outer layer to existing ciphertext without
// decrypting — is the ArchiveSafeLT response to a broken inner layer. It
// avoids the read-modify-write of full re-encryption but, as the paper
// notes, still pays the same archive-scale I/O bill, and none of this
// resists Harvest-Now-Decrypt-Later: a harvested ciphertext's layers decay
// one cryptanalytic advance at a time. Those two limits are exactly what
// experiments E3 and E4 measure.
package cascade

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"securearchive/internal/chacha"
)

// Scheme identifies a cipher family in the registry.
type Scheme string

// Registered schemes.
const (
	AES256CTR Scheme = "aes256-ctr"
	ChaCha20  Scheme = "chacha20"
	SHA256CTR Scheme = "sha256-ctr"
)

// Errors returned by this package.
var (
	ErrUnknownScheme = errors.New("cascade: unknown cipher scheme")
	ErrKeySize       = errors.New("cascade: wrong key size")
	ErrNonceSize     = errors.New("cascade: wrong nonce size")
)

// Cipher is a symmetric cipher usable as a cascade layer. Implementations
// are stream ciphers: ciphertext length equals plaintext length, so layers
// compose without padding and support the wrap operation.
type Cipher interface {
	// Scheme returns the registry name.
	Scheme() Scheme
	// KeySize returns the key length in bytes.
	KeySize() int
	// NonceSize returns the nonce length in bytes.
	NonceSize() int
	// XOR applies the keystream for (key, nonce) to src into dst;
	// encryption and decryption are the same operation.
	XOR(dst, src, key, nonce []byte) error
}

var registry = map[Scheme]Cipher{
	AES256CTR: aesCTR{},
	ChaCha20:  chaCha{},
	SHA256CTR: shaCTR{},
}

// Get returns the registered cipher for a scheme.
func Get(s Scheme) (Cipher, error) {
	c, ok := registry[s]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownScheme, s)
	}
	return c, nil
}

// Schemes lists all registered schemes in deterministic order.
func Schemes() []Scheme {
	out := make([]Scheme, 0, len(registry))
	for s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// aesCTR: AES-256 in counter mode via crypto/aes + crypto/cipher.
type aesCTR struct{}

func (aesCTR) Scheme() Scheme { return AES256CTR }
func (aesCTR) KeySize() int   { return 32 }
func (aesCTR) NonceSize() int { return aes.BlockSize }
func (a aesCTR) XOR(dst, src, key, nonce []byte) error {
	if len(key) != a.KeySize() {
		return fmt.Errorf("%w: %s wants %d, got %d", ErrKeySize, a.Scheme(), a.KeySize(), len(key))
	}
	if len(nonce) != a.NonceSize() {
		return fmt.Errorf("%w: %s wants %d, got %d", ErrNonceSize, a.Scheme(), a.NonceSize(), len(nonce))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return fmt.Errorf("cascade: %w", err)
	}
	cipher.NewCTR(block, nonce).XORKeyStream(dst, src)
	return nil
}

// chaCha: the from-scratch RFC 8439 implementation.
type chaCha struct{}

func (chaCha) Scheme() Scheme { return ChaCha20 }
func (chaCha) KeySize() int   { return chacha.KeySize }
func (chaCha) NonceSize() int { return chacha.NonceSize }
func (c chaCha) XOR(dst, src, key, nonce []byte) error {
	st, err := chacha.New(key, nonce)
	if err != nil {
		return fmt.Errorf("cascade: %w", err)
	}
	return st.XORKeyStream(dst, src)
}

// shaCTR: SHA-256 in counter mode — keystream block i is
// SHA-256(key ‖ nonce ‖ i). Secure if SHA-256 is a PRF under
// key-prefixing; included as a third, hash-based design family.
type shaCTR struct{}

func (shaCTR) Scheme() Scheme { return SHA256CTR }
func (shaCTR) KeySize() int   { return 32 }
func (shaCTR) NonceSize() int { return 16 }
func (s shaCTR) XOR(dst, src, key, nonce []byte) error {
	if len(key) != s.KeySize() {
		return fmt.Errorf("%w: %s wants %d, got %d", ErrKeySize, s.Scheme(), s.KeySize(), len(key))
	}
	if len(nonce) != s.NonceSize() {
		return fmt.Errorf("%w: %s wants %d, got %d", ErrNonceSize, s.Scheme(), s.NonceSize(), len(nonce))
	}
	if len(dst) < len(src) {
		return errors.New("cascade: dst shorter than src")
	}
	var ctr [8]byte
	var block [sha256.Size]byte
	h := sha256.New()
	for i := 0; i < len(src); i += sha256.Size {
		binary.BigEndian.PutUint64(ctr[:], uint64(i/sha256.Size))
		h.Reset()
		h.Write(key)
		h.Write(nonce)
		h.Write(ctr[:])
		copy(block[:], h.Sum(nil))
		n := len(src) - i
		if n > sha256.Size {
			n = sha256.Size
		}
		for j := 0; j < n; j++ {
			dst[i+j] = src[i+j] ^ block[j]
		}
	}
	return nil
}
