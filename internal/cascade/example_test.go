package cascade_test

import (
	"crypto/rand"
	"fmt"
	"log"

	"securearchive/internal/cascade"
)

// Example encrypts under all three independent cipher families and shows
// the combiner property: the envelope survives any proper subset of
// family breaks.
func Example() {
	msg := []byte("wrapped in three unrelated hardness assumptions")
	keys, err := cascade.GenerateKeys(cascade.Schemes(), rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	env, err := cascade.Encrypt(msg, keys, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("layers:", len(env.Layers))
	fmt.Println("secure if AES falls:", env.SecureAgainst(map[cascade.Scheme]bool{cascade.AES256CTR: true}))
	fmt.Println("secure if all fall:", env.SecureAgainst(map[cascade.Scheme]bool{
		cascade.AES256CTR: true, cascade.ChaCha20: true, cascade.SHA256CTR: true,
	}))
	got, err := cascade.Decrypt(env, keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round trip: %s\n", got)
	// Output:
	// layers: 3
	// secure if AES falls: true
	// secure if all fall: false
	// round trip: wrapped in three unrelated hardness assumptions
}

// ExampleWrap adds an outer layer to existing ciphertext — the
// ArchiveSafeLT response to a weakening inner cipher, with no decryption.
func ExampleWrap() {
	msg := []byte("layered like sediment")
	keys, _ := cascade.GenerateKeys([]cascade.Scheme{cascade.AES256CTR}, rand.Reader)
	env, _ := cascade.Encrypt(msg, keys, rand.Reader)

	extra, _ := cascade.GenerateKeys([]cascade.Scheme{cascade.ChaCha20}, rand.Reader)
	if err := cascade.Wrap(env, extra[0], rand.Reader); err != nil {
		log.Fatal(err)
	}
	got, err := cascade.Decrypt(env, append(keys, extra[0]))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("layers after wrap:", len(env.Layers))
	fmt.Printf("round trip: %s\n", got)
	// Output:
	// layers after wrap: 2
	// round trip: layered like sediment
}
