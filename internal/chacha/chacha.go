// Package chacha implements the ChaCha20 stream cipher (RFC 8439) from
// scratch.
//
// The cascade-cipher package needs ciphers from *independent design
// families*: a cascade of AES-CTR with AES-CBC would fall together under a
// single AES break, defeating the robust-combiner argument the paper
// attributes to ArchiveSafeLT. The Go standard library exposes only AES as
// a modern block cipher, so this package supplies an ARX-family stream
// cipher built from addition, rotation, and XOR — a structurally unrelated
// hardness assumption. The implementation follows RFC 8439 §2.3–2.4 and is
// validated against the RFC test vectors.
package chacha

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Sizes for ChaCha20 as specified by RFC 8439.
const (
	KeySize   = 32
	NonceSize = 12
	BlockSize = 64
)

// Errors returned by this package.
var (
	ErrKeySize   = errors.New("chacha: key must be 32 bytes")
	ErrNonceSize = errors.New("chacha: nonce must be 12 bytes")
	ErrCounter   = errors.New("chacha: counter overflow")
)

// Cipher is a ChaCha20 instance keyed with a key and nonce. It implements
// a seekable keystream: XORKeyStreamAt encrypts at any block offset, which
// the archival layers use for random-access reads. The zero value is not
// usable; construct with New.
type Cipher struct {
	state [16]uint32 // initial state with counter slot zeroed
}

// New returns a ChaCha20 cipher for the given 32-byte key and 12-byte
// nonce.
func New(key, nonce []byte) (*Cipher, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("%w (got %d)", ErrKeySize, len(key))
	}
	if len(nonce) != NonceSize {
		return nil, fmt.Errorf("%w (got %d)", ErrNonceSize, len(nonce))
	}
	var c Cipher
	// "expand 32-byte k"
	c.state[0] = 0x61707865
	c.state[1] = 0x3320646e
	c.state[2] = 0x79622d32
	c.state[3] = 0x6b206574
	for i := 0; i < 8; i++ {
		c.state[4+i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	// state[12] is the block counter, set per call.
	c.state[13] = binary.LittleEndian.Uint32(nonce[0:])
	c.state[14] = binary.LittleEndian.Uint32(nonce[4:])
	c.state[15] = binary.LittleEndian.Uint32(nonce[8:])
	return &c, nil
}

func quarterRound(a, b, c, d uint32) (uint32, uint32, uint32, uint32) {
	a += b
	d ^= a
	d = d<<16 | d>>16
	c += d
	b ^= c
	b = b<<12 | b>>20
	a += b
	d ^= a
	d = d<<8 | d>>24
	c += d
	b ^= c
	b = b<<7 | b>>25
	return a, b, c, d
}

// block computes the 64-byte keystream block for the given counter.
func (c *Cipher) block(counter uint32, out *[BlockSize]byte) {
	var x [16]uint32
	copy(x[:], c.state[:])
	x[12] = counter
	s := x
	for i := 0; i < 10; i++ {
		// Column rounds.
		x[0], x[4], x[8], x[12] = quarterRound(x[0], x[4], x[8], x[12])
		x[1], x[5], x[9], x[13] = quarterRound(x[1], x[5], x[9], x[13])
		x[2], x[6], x[10], x[14] = quarterRound(x[2], x[6], x[10], x[14])
		x[3], x[7], x[11], x[15] = quarterRound(x[3], x[7], x[11], x[15])
		// Diagonal rounds.
		x[0], x[5], x[10], x[15] = quarterRound(x[0], x[5], x[10], x[15])
		x[1], x[6], x[11], x[12] = quarterRound(x[1], x[6], x[11], x[12])
		x[2], x[7], x[8], x[13] = quarterRound(x[2], x[7], x[8], x[13])
		x[3], x[4], x[9], x[14] = quarterRound(x[3], x[4], x[9], x[14])
	}
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(out[4*i:], x[i]+s[i])
	}
}

// XORKeyStreamAt XORs src with the keystream starting at the given byte
// offset into the stream and writes the result to dst. len(dst) must be
// >= len(src). Offsets need not be block-aligned. The same (key, nonce,
// offset) always produces the same keystream, so callers must never reuse
// a (key, nonce) pair across distinct plaintexts at overlapping offsets.
func (c *Cipher) XORKeyStreamAt(dst, src []byte, offset uint64) error {
	if len(dst) < len(src) {
		return errors.New("chacha: dst shorter than src")
	}
	if len(src) == 0 {
		return nil
	}
	counter := offset / BlockSize
	within := int(offset % BlockSize)
	// RFC 8439 uses a 32-bit block counter; enforce it.
	lastBlock := (offset + uint64(len(src)) - 1) / BlockSize
	if lastBlock > 0xFFFFFFFF {
		return ErrCounter
	}
	var ks [BlockSize]byte
	i := 0
	for i < len(src) {
		c.block(uint32(counter), &ks)
		n := len(src) - i
		if avail := BlockSize - within; n > avail {
			n = avail
		}
		for j := 0; j < n; j++ {
			dst[i+j] = src[i+j] ^ ks[within+j]
		}
		i += n
		within = 0
		counter++
	}
	return nil
}

// XORKeyStream is XORKeyStreamAt with RFC 8439's conventional initial
// counter of 1 block (the zeroth block is reserved for Poly1305 key
// derivation in AEAD constructions; plain stream usage starts at block 1
// for vector compatibility).
func (c *Cipher) XORKeyStream(dst, src []byte) error {
	return c.XORKeyStreamAt(dst, src, BlockSize)
}
