package chacha

import (
	"bytes"
	"encoding/hex"
	"errors"
	"testing"
)

// RFC 8439 §2.3.2 test vector: key 00..1f, nonce 000000090000004a00000000,
// counter 1 — first keystream block.
func TestRFC8439BlockVector(t *testing.T) {
	key, _ := hex.DecodeString("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
	nonce, _ := hex.DecodeString("000000090000004a00000000")
	c, err := New(key, nonce)
	if err != nil {
		t.Fatal(err)
	}
	var out [BlockSize]byte
	c.block(1, &out)
	want, _ := hex.DecodeString(
		"10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e" +
			"d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e")
	if !bytes.Equal(out[:], want) {
		t.Fatalf("block mismatch:\n got %x\nwant %x", out[:], want)
	}
}

// RFC 8439 §2.4.2: full encryption test vector.
func TestRFC8439EncryptionVector(t *testing.T) {
	key, _ := hex.DecodeString("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
	nonce, _ := hex.DecodeString("000000000000004a00000000")
	plaintext := []byte("Ladies and Gentlemen of the class of '99: If I could offer you " +
		"only one tip for the future, sunscreen would be it.")
	c, err := New(key, nonce)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(plaintext))
	if err := c.XORKeyStream(dst, plaintext); err != nil {
		t.Fatal(err)
	}
	want, _ := hex.DecodeString(
		"6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b" +
			"f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8" +
			"07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736" +
			"5af90bbf74a35be6b40b8eedf2785e42874d")
	if !bytes.Equal(dst, want) {
		t.Fatalf("ciphertext mismatch:\n got %x\nwant %x", dst, want)
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	key := make([]byte, KeySize)
	nonce := make([]byte, NonceSize)
	for i := range key {
		key[i] = byte(i * 3)
	}
	msg := []byte("stream ciphers are involutions under XOR")
	c, _ := New(key, nonce)
	ct := make([]byte, len(msg))
	if err := c.XORKeyStream(ct, msg); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct, msg) {
		t.Fatal("ciphertext equals plaintext")
	}
	pt := make([]byte, len(ct))
	c2, _ := New(key, nonce)
	if err := c2.XORKeyStream(pt, ct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatal("round trip failed")
	}
}

func TestSeekableKeystream(t *testing.T) {
	key := make([]byte, KeySize)
	nonce := make([]byte, NonceSize)
	key[0] = 1
	c, _ := New(key, nonce)
	msg := make([]byte, 1000)
	for i := range msg {
		msg[i] = byte(i)
	}
	whole := make([]byte, len(msg))
	if err := c.XORKeyStreamAt(whole, msg, 0); err != nil {
		t.Fatal(err)
	}
	// Encrypt the tail separately, starting at an unaligned offset.
	const cut = 129
	tail := make([]byte, len(msg)-cut)
	if err := c.XORKeyStreamAt(tail, msg[cut:], cut); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tail, whole[cut:]) {
		t.Fatal("seek at unaligned offset diverges from streaming")
	}
}

func TestParameterValidation(t *testing.T) {
	if _, err := New(make([]byte, 16), make([]byte, NonceSize)); !errors.Is(err, ErrKeySize) {
		t.Fatalf("short key: %v", err)
	}
	if _, err := New(make([]byte, KeySize), make([]byte, 8)); !errors.Is(err, ErrNonceSize) {
		t.Fatalf("short nonce: %v", err)
	}
}

func TestDstTooShort(t *testing.T) {
	c, _ := New(make([]byte, KeySize), make([]byte, NonceSize))
	if err := c.XORKeyStreamAt(make([]byte, 3), make([]byte, 4), 0); err == nil {
		t.Fatal("short dst accepted")
	}
}

func TestCounterOverflow(t *testing.T) {
	c, _ := New(make([]byte, KeySize), make([]byte, NonceSize))
	// Offset such that the final block index exceeds 2^32-1.
	off := uint64(0xFFFFFFFF+1) * BlockSize
	if err := c.XORKeyStreamAt(make([]byte, 1), make([]byte, 1), off); !errors.Is(err, ErrCounter) {
		t.Fatalf("counter overflow not caught: %v", err)
	}
}

func TestEmptyInput(t *testing.T) {
	c, _ := New(make([]byte, KeySize), make([]byte, NonceSize))
	if err := c.XORKeyStreamAt(nil, nil, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctNoncesDistinctStreams(t *testing.T) {
	key := make([]byte, KeySize)
	n1 := make([]byte, NonceSize)
	n2 := make([]byte, NonceSize)
	n2[0] = 1
	c1, _ := New(key, n1)
	c2, _ := New(key, n2)
	zero := make([]byte, 64)
	s1 := make([]byte, 64)
	s2 := make([]byte, 64)
	c1.XORKeyStream(s1, zero)
	c2.XORKeyStream(s2, zero)
	if bytes.Equal(s1, s2) {
		t.Fatal("different nonces produced identical keystreams")
	}
}

func BenchmarkXORKeyStream64KiB(b *testing.B) {
	c, _ := New(make([]byte, KeySize), make([]byte, NonceSize))
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.XORKeyStreamAt(buf, buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}
