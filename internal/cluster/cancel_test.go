package cluster

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRetryTransientCtxAbortsBackoff is the regression test for the
// sleep-through-cancellation bug: RetryTransientCtx used to time.Sleep
// its backoff delay unconditionally, so an abandoned request kept the
// goroutine parked for the full schedule. The fixed loop selects on the
// context and must return promptly, wrapping the context error so both
// errors.Is(err, ErrRetryAborted) and errors.Is(err, context.Canceled)
// hold.
func TestRetryTransientCtxAbortsBackoff(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 10, BaseDelay: 30 * time.Second, MaxDelay: time.Minute}
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		done <- RetryTransientCtx(ctx, pol, func() error {
			attempts++
			return ErrTransient
		})
	}()
	time.Sleep(20 * time.Millisecond) // let the first attempt fail into backoff
	cancel()
	var err error
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("RetryTransientCtx still sleeping 5s after cancel (backoff ignores ctx)")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry returned after %v; want prompt abort", elapsed)
	}
	if !errors.Is(err, ErrRetryAborted) {
		t.Fatalf("err = %v; want errors.Is ErrRetryAborted", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want errors.Is context.Canceled", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d; want 1 (no retries after cancel)", attempts)
	}
}

// TestRetryTransientCtxPreCanceled: a context dead on arrival must not
// run the op at all.
func TestRetryTransientCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := RetryTransientCtx(ctx, DefaultRetry, func() error {
		ran = true
		return nil
	})
	if ran {
		t.Fatal("op ran under a pre-canceled context")
	}
	if !errors.Is(err, ErrRetryAborted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want ErrRetryAborted wrapping context.Canceled", err)
	}
}

// TestFaultLatencyAbortsOnCancel is the regression test for the second
// sleep-through-cancellation site: a fault plan's injected per-op
// latency used to be an unconditional sleep. A canceled caller must get
// out from under a slow node immediately.
func TestFaultLatencyAbortsOnCancel(t *testing.T) {
	c := New(4, nil)
	defer c.Close()
	c.SetFaultPlan(&FaultPlan{Seed: 1, Default: NodeFaults{Latency: 30 * time.Second}})
	key := ShardKey{Object: "x", Index: 0}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		done <- c.PutCtx(ctx, 0, key, []byte("shard"))
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	var err error
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("PutCtx still blocked in injected latency 5s after cancel")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("PutCtx returned after %v; want prompt abort", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want errors.Is context.Canceled", err)
	}
	if got := c.StoredBytes(); got != 0 {
		t.Fatalf("StoredBytes = %d after aborted put; want 0", got)
	}
}

// TestFetchStripeCtxCancelSetsCanceled: a stripe fetch abandoned by its
// caller must report Canceled (so vault reads surface the context
// error) rather than dressing the short stripe up as degradation.
func TestFetchStripeCtxCancelSetsCanceled(t *testing.T) {
	c := New(8, nil)
	defer c.Close()
	for i := 0; i < 8; i++ {
		if err := c.Put(i, ShardKey{Object: "obj", Index: i}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.SetFaultPlan(&FaultPlan{Seed: 1, Default: NodeFaults{Latency: 30 * time.Second}})
	ctx, cancel := context.WithCancel(context.Background())
	resCh := make(chan *StripeResult, 1)
	go func() {
		resCh <- c.FetchStripeCtx(ctx, "obj", 8, 4, DefaultRetry, nil)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	var res *StripeResult
	select {
	case res = <-resCh:
	case <-time.After(5 * time.Second):
		t.Fatal("FetchStripeCtx still probing 5s after cancel")
	}
	if res.Canceled == nil {
		t.Fatalf("res.Canceled = nil after canceled fetch (fetched %d)", res.Fetched)
	}
	if !errors.Is(res.Canceled, context.Canceled) {
		t.Fatalf("res.Canceled = %v; want errors.Is context.Canceled", res.Canceled)
	}
}
