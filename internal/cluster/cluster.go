// Package cluster simulates the geo-distributed storage substrate that
// every system in the paper's Table 1 assumes: administratively
// independent nodes holding shards of archival objects, advancing through
// epochs, and subject to corruption and failure injection.
//
// The simulation is information-centric rather than network-centric: the
// paper's arguments are about which node holds which bytes in which
// epoch, not about TCP behaviour. Every transfer is still metered (bytes
// in/out per node and cluster-wide), because §3.2's case against
// re-encryption and share renewal is an aggregate-throughput argument and
// the numbers must come from somewhere measurable.
//
// Where the bytes rest is pluggable: the cluster owns placement, epochs,
// fault injection and accounting, and delegates at-rest storage to a
// store.Store — in-memory maps (memstore, the default) or durable
// append-only segments with a write-ahead log whose stage/commit protocol
// survives kill -9 (diskstore). See internal/store and DESIGN.md
// "Durability".
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"securearchive/internal/obs"
	"securearchive/internal/store"
	"securearchive/internal/store/diskstore"
	"securearchive/internal/store/memstore"
)

// Errors returned by this package.
var (
	ErrNodeDown     = errors.New("cluster: node offline")
	ErrNoSuchNode   = errors.New("cluster: no such node")
	ErrNoSuchShard  = errors.New("cluster: shard not found")
	ErrDuplicateKey = errors.New("cluster: shard already present")
	// ErrTransient is a retryable fault (timeout, throttle) injected by
	// the cluster's FaultPlan; see RetryTransient.
	ErrTransient = errors.New("cluster: transient I/O error")
)

// ShardKey and Shard are defined in internal/store (the at-rest storage
// contract); the aliases keep every existing call site — and the
// conceptual home of "a shard in the cluster" — in this package.
type (
	ShardKey = store.ShardKey
	Shard    = store.Shard
)

// Node is one administratively independent storage provider.
type Node struct {
	ID     int
	Region string
	Online bool

	// st holds the node's bytes at rest; see internal/store.
	st store.NodeStore

	// mu serialises availability checks and fault draws on the node's
	// data path (the store has its own locking underneath).
	mu sync.Mutex
	// faults and faultState drive fault injection; see fault.go.
	faults     *NodeFaults
	faultState uint64
	// bytesIn/bytesOut meter all traffic through this node; atomics so
	// monitoring can read them lock-free while traffic flows.
	bytesIn  atomic.Int64
	bytesOut atomic.Int64
}

// BytesIn returns the bytes written to this node so far. Safe to call
// concurrently with traffic.
func (n *Node) BytesIn() int64 { return n.bytesIn.Load() }

// BytesOut returns the bytes read from this node so far. Safe to call
// concurrently with traffic.
func (n *Node) BytesOut() int64 { return n.bytesOut.Load() }

// Cluster is a set of nodes sharing an epoch clock. The epoch and the
// traffic counters are atomics: the data path touches only the node
// being addressed (plus lock-free accounting), so operations against
// distinct nodes never serialise on cluster-wide state — the property
// the vault's striped locking relies on for concurrent staging. (The
// disk backend serialises on its shared log underneath; the contract
// here is still per-node.)
type Cluster struct {
	nodes   []*Node
	backend store.Store
	name    string // backend name for reports: store.BackendMem/BackendDisk
	epoch   atomic.Int64

	// bytesMoved/puts/gets sum every shard transfer in either direction;
	// read them through TotalBytesMoved/Puts/Gets.
	bytesMoved atomic.Int64
	puts       atomic.Int64
	gets       atomic.Int64

	// metrics mirrors the accounting above into the obs registry; see
	// metrics.go and UseRegistry.
	metrics *clusterMetrics
}

// TotalBytesMoved returns the bytes transferred in either direction
// across all nodes so far. Safe to call concurrently with traffic.
func (c *Cluster) TotalBytesMoved() int64 { return c.bytesMoved.Load() }

// Puts returns the number of shard writes (committed and staged) so far.
func (c *Cluster) Puts() int { return int(c.puts.Load()) }

// Gets returns the number of shard reads so far.
func (c *Cluster) Gets() int { return int(c.gets.Load()) }

// DefaultRegions is a plausible geo-dispersal for examples and tests.
var DefaultRegions = []string{"us-east", "eu-west", "ap-south", "sa-east", "af-south", "au-sydney"}

// New creates a memory-backed cluster of n online nodes, assigning
// regions round-robin from the provided list (DefaultRegions when nil).
func New(n int, regions []string) *Cluster {
	return NewWithStore(memstore.New(n), regions)
}

// NewWithStore creates a cluster over an already-open backend, one node
// per backend node.
func NewWithStore(bk store.Store, regions []string) *Cluster {
	if len(regions) == 0 {
		regions = DefaultRegions
	}
	c := &Cluster{backend: bk, name: store.BackendMem}
	if _, ok := bk.(*diskstore.Store); ok {
		c.name = store.BackendDisk
	}
	for i := 0; i < bk.Nodes(); i++ {
		c.nodes = append(c.nodes, &Node{
			ID:     i,
			Region: regions[i%len(regions)],
			Online: true,
			st:     bk.Node(i),
		})
	}
	c.metrics = newClusterMetrics(obs.Default(), len(c.nodes))
	return c
}

// OpenStore is the backend factory: it turns the flag-friendly
// store.Config into a live store.Store for n nodes. It lives here — with
// the implementations' importer — so the store package itself stays free
// of disk machinery.
func OpenStore(cfg store.Config, n int) (store.Store, error) {
	switch cfg.Backend {
	case "", store.BackendMem:
		return memstore.New(n), nil
	case store.BackendDisk:
		if cfg.Dir == "" {
			return nil, errors.New("cluster: disk backend needs a directory")
		}
		return diskstore.Open(cfg.Dir, n,
			diskstore.WithFsync(cfg.Fsync),
			diskstore.WithMaxSegmentBytes(cfg.MaxSegmentBytes))
	default:
		return nil, fmt.Errorf("cluster: unknown store backend %q", cfg.Backend)
	}
}

// Open creates a cluster of n nodes over the backend cfg selects,
// replaying the disk backend's WAL if it points at an existing archive.
func Open(n int, regions []string, cfg store.Config) (*Cluster, error) {
	bk, err := OpenStore(cfg, n)
	if err != nil {
		return nil, err
	}
	return NewWithStore(bk, regions), nil
}

// Backend returns the backend name ("mem" or "disk") for reports.
func (c *Cluster) Backend() string { return c.name }

// Store exposes the underlying backend (tests reach crash injection and
// recovery reports through a type assertion on this).
func (c *Cluster) Store() store.Store { return c.backend }

// Close releases the backend (file handles for disk; no-op for memory).
func (c *Cluster) Close() error { return c.backend.Close() }

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Epoch returns the current epoch.
func (c *Cluster) Epoch() int { return int(c.epoch.Load()) }

// AdvanceEpoch increments the epoch clock and returns the new epoch.
func (c *Cluster) AdvanceEpoch() int { return int(c.epoch.Add(1)) }

// Node returns the node with the given ID.
func (c *Cluster) Node(id int) (*Node, error) {
	if id < 0 || id >= len(c.nodes) {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchNode, id)
	}
	return c.nodes[id], nil
}

// SetOnline flips a node's availability (failure injection).
func (c *Cluster) SetOnline(id int, online bool) error {
	n, err := c.Node(id)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.Online = online
	return nil
}

// Put stores a shard on a node at the current epoch, replacing any
// previous version of the same key.
func (c *Cluster) Put(nodeID int, key ShardKey, data []byte) error {
	return c.PutCtx(context.Background(), nodeID, key, data)
}

// PutCtx is Put with cancellation through the fault plan's injected
// latency: a cancelled caller stops waiting on a slow node immediately.
func (c *Cluster) PutCtx(ctx context.Context, nodeID int, key ShardKey, data []byte) error {
	start := time.Now()
	err := c.put(ctx, nodeID, key, data)
	m := c.metrics
	m.putNs.Observe(float64(time.Since(start).Nanoseconds()))
	if err != nil {
		m.putErr.Inc()
		return err
	}
	m.putOK.Inc()
	m.bytesIn.Add(int64(len(data)))
	return nil
}

func (c *Cluster) put(ctx context.Context, nodeID int, key ShardKey, data []byte) error {
	n, err := c.Node(nodeID)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.Online {
		return fmt.Errorf("%w: node %d", ErrNodeDown, nodeID)
	}
	if err := c.injectFault(ctx, n, false, key); err != nil {
		return err
	}
	if err := n.st.Put(Shard{Key: key, Epoch: c.Epoch(), Data: data}); err != nil {
		return err
	}
	c.bytesMoved.Add(int64(len(data)))
	c.puts.Add(1)
	n.bytesIn.Add(int64(len(data)))
	return nil
}

// Get fetches a shard from a node.
func (c *Cluster) Get(nodeID int, key ShardKey) (Shard, error) {
	return c.GetCtx(context.Background(), nodeID, key)
}

// GetCtx is Get with cancellation through the fault plan's injected
// latency: a cancelled caller stops waiting on a slow node immediately.
func (c *Cluster) GetCtx(ctx context.Context, nodeID int, key ShardKey) (Shard, error) {
	start := time.Now()
	sh, err := c.get(ctx, nodeID, key)
	m := c.metrics
	m.getNs.Observe(float64(time.Since(start).Nanoseconds()))
	if err != nil {
		m.getErr.Inc()
		return Shard{}, err
	}
	m.getOK.Inc()
	m.bytesOut.Add(int64(len(sh.Data)))
	return sh, nil
}

func (c *Cluster) get(ctx context.Context, nodeID int, key ShardKey) (Shard, error) {
	n, err := c.Node(nodeID)
	if err != nil {
		return Shard{}, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.Online {
		return Shard{}, fmt.Errorf("%w: node %d", ErrNodeDown, nodeID)
	}
	if err := c.injectFault(ctx, n, true, key); err != nil {
		return Shard{}, err
	}
	sh, ok, err := n.st.Get(key)
	if err != nil {
		return Shard{}, fmt.Errorf("cluster: node %d: %w", nodeID, err)
	}
	if !ok {
		return Shard{}, fmt.Errorf("%w: node %d %v", ErrNoSuchShard, nodeID, key)
	}
	n.bytesOut.Add(int64(len(sh.Data)))
	c.bytesMoved.Add(int64(len(sh.Data)))
	c.gets.Add(1)
	return sh, nil
}

// Delete removes a shard from a node — both the committed version and
// any entry still parked in the staging area, so a deleted object can
// never leak staged bytes or block a later re-Put of the same key with
// ErrDuplicateKey. Absence is not an error. Like CommitStage, delete is
// metadata-only with respect to the fault plan: no bytes move, so
// neither transient faults nor offline windows apply (the disk backend
// can still surface real I/O errors).
func (c *Cluster) Delete(nodeID int, key ShardKey) error {
	start := time.Now()
	err := c.deleteShard(nodeID, key)
	m := c.metrics
	m.deleteNs.Observe(float64(time.Since(start).Nanoseconds()))
	if err != nil {
		m.deleteErr.Inc()
		return err
	}
	m.deleteOK.Inc()
	return nil
}

func (c *Cluster) deleteShard(nodeID int, key ShardKey) error {
	n, err := c.Node(nodeID)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.st.Delete(key)
}

// Snapshot returns copies of all shards currently stored on a node —
// what a corrupting adversary exfiltrates.
func (c *Cluster) Snapshot(nodeID int) ([]Shard, error) {
	n, err := c.Node(nodeID)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	out, err := n.st.Snapshot()
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Object != out[j].Key.Object {
			return out[i].Key.Object < out[j].Key.Object
		}
		if out[i].Key.Chunk != out[j].Key.Chunk {
			return out[i].Key.Chunk < out[j].Key.Chunk
		}
		return out[i].Key.Index < out[j].Key.Index
	})
	return out, nil
}

// StoredBytes returns the total bytes physically occupying nodes:
// committed shards plus any still sitting in staging areas.
func (c *Cluster) StoredBytes() int64 {
	var total int64
	for _, n := range c.nodes {
		total += n.st.StoredBytes()
	}
	return total
}

// ObjectBytes returns the bytes at rest attributable to one object,
// committed and staged.
func (c *Cluster) ObjectBytes(object string) int64 {
	var total int64
	for _, n := range c.nodes {
		total += n.st.ObjectBytes(object)
	}
	return total
}

// Regions returns the distinct regions hosting at least one node.
func (c *Cluster) Regions() []string {
	seen := map[string]bool{}
	var out []string
	for _, n := range c.nodes {
		if !seen[n.Region] {
			seen[n.Region] = true
			out = append(out, n.Region)
		}
	}
	sort.Strings(out)
	return out
}
