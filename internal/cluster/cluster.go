// Package cluster simulates the geo-distributed storage substrate that
// every system in the paper's Table 1 assumes: administratively
// independent nodes holding shards of archival objects, advancing through
// epochs, and subject to corruption and failure injection.
//
// The simulation is deliberately information-centric rather than
// network-centric: the paper's arguments are about which node holds which
// bytes in which epoch, not about TCP behaviour. Every transfer is still
// metered (bytes in/out per node and cluster-wide), because §3.2's case
// against re-encryption and share renewal is an aggregate-throughput
// argument and the numbers must come from somewhere measurable.
//
// The substitution is documented in DESIGN.md: real archives (tape silos,
// cloud regions) are replaced by in-memory nodes exposing the same knobs —
// node count, placement, epoch, corruption — that the paper's threat
// model manipulates.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"securearchive/internal/obs"
)

// Errors returned by this package.
var (
	ErrNodeDown     = errors.New("cluster: node offline")
	ErrNoSuchNode   = errors.New("cluster: no such node")
	ErrNoSuchShard  = errors.New("cluster: shard not found")
	ErrDuplicateKey = errors.New("cluster: shard already present")
	// ErrTransient is a retryable fault (timeout, throttle) injected by
	// the cluster's FaultPlan; see RetryTransient.
	ErrTransient = errors.New("cluster: transient I/O error")
)

// ShardKey addresses one shard of one object version. Objects written
// monolithically occupy chunk 0; the vault's pipelined writer splits
// large objects into fixed-size chunks, each encoded as its own stripe,
// so a shard is addressed by (object, chunk, index). The zero Chunk
// keeps every pre-chunking key (and persisted test fixture) valid.
type ShardKey struct {
	Object string // object identifier
	Index  int    // shard index within the chunk's encoding
	Chunk  int    // chunk ordinal within the object; 0 for unchunked
}

// Shard is the unit of storage: opaque bytes plus placement metadata.
type Shard struct {
	Key   ShardKey
	Epoch int // the epoch this shard version was written
	Data  []byte
}

// Node is one administratively independent storage provider.
type Node struct {
	ID     int
	Region string
	Online bool

	mu     sync.Mutex
	shards map[ShardKey]Shard
	// staged holds shards written but not yet committed; see staging.go.
	staged map[ShardKey]stagedShard
	// faults and faultState drive fault injection; see fault.go.
	faults     *NodeFaults
	faultState uint64
	// bytesIn/bytesOut meter all traffic through this node; atomics so
	// monitoring can read them lock-free while traffic flows.
	bytesIn  atomic.Int64
	bytesOut atomic.Int64
}

// BytesIn returns the bytes written to this node so far. Safe to call
// concurrently with traffic.
func (n *Node) BytesIn() int64 { return n.bytesIn.Load() }

// BytesOut returns the bytes read from this node so far. Safe to call
// concurrently with traffic.
func (n *Node) BytesOut() int64 { return n.bytesOut.Load() }

// Cluster is a set of nodes sharing an epoch clock. The epoch and the
// traffic counters are atomics: the data path touches only the node
// being addressed (plus lock-free accounting), so operations against
// distinct nodes never serialise on cluster-wide state — the property
// the vault's striped locking relies on for concurrent staging.
type Cluster struct {
	nodes []*Node
	epoch atomic.Int64

	// bytesMoved/puts/gets sum every shard transfer in either direction;
	// read them through TotalBytesMoved/Puts/Gets.
	bytesMoved atomic.Int64
	puts       atomic.Int64
	gets       atomic.Int64

	// metrics mirrors the accounting above into the obs registry; see
	// metrics.go and UseRegistry.
	metrics *clusterMetrics
}

// TotalBytesMoved returns the bytes transferred in either direction
// across all nodes so far. Safe to call concurrently with traffic.
func (c *Cluster) TotalBytesMoved() int64 { return c.bytesMoved.Load() }

// Puts returns the number of shard writes (committed and staged) so far.
func (c *Cluster) Puts() int { return int(c.puts.Load()) }

// Gets returns the number of shard reads so far.
func (c *Cluster) Gets() int { return int(c.gets.Load()) }

// DefaultRegions is a plausible geo-dispersal for examples and tests.
var DefaultRegions = []string{"us-east", "eu-west", "ap-south", "sa-east", "af-south", "au-sydney"}

// New creates a cluster of n online nodes, assigning regions round-robin
// from the provided list (DefaultRegions when nil).
func New(n int, regions []string) *Cluster {
	if len(regions) == 0 {
		regions = DefaultRegions
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, &Node{
			ID:     i,
			Region: regions[i%len(regions)],
			Online: true,
			shards: make(map[ShardKey]Shard),
		})
	}
	c.metrics = newClusterMetrics(obs.Default(), n)
	return c
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Epoch returns the current epoch.
func (c *Cluster) Epoch() int { return int(c.epoch.Load()) }

// AdvanceEpoch increments the epoch clock and returns the new epoch.
func (c *Cluster) AdvanceEpoch() int { return int(c.epoch.Add(1)) }

// Node returns the node with the given ID.
func (c *Cluster) Node(id int) (*Node, error) {
	if id < 0 || id >= len(c.nodes) {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchNode, id)
	}
	return c.nodes[id], nil
}

// SetOnline flips a node's availability (failure injection).
func (c *Cluster) SetOnline(id int, online bool) error {
	n, err := c.Node(id)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.Online = online
	return nil
}

// Put stores a shard on a node at the current epoch, replacing any
// previous version of the same key.
func (c *Cluster) Put(nodeID int, key ShardKey, data []byte) error {
	start := time.Now()
	err := c.put(nodeID, key, data)
	m := c.metrics
	m.putNs.Observe(float64(time.Since(start).Nanoseconds()))
	if err != nil {
		m.putErr.Inc()
		return err
	}
	m.putOK.Inc()
	m.bytesIn.Add(int64(len(data)))
	return nil
}

func (c *Cluster) put(nodeID int, key ShardKey, data []byte) error {
	n, err := c.Node(nodeID)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.Online {
		return fmt.Errorf("%w: node %d", ErrNodeDown, nodeID)
	}
	if err := c.injectFault(n, false, key); err != nil {
		return err
	}
	cp := append([]byte(nil), data...)
	c.bytesMoved.Add(int64(len(data)))
	c.puts.Add(1)
	n.shards[key] = Shard{Key: key, Epoch: c.Epoch(), Data: cp}
	n.bytesIn.Add(int64(len(data)))
	return nil
}

// Get fetches a shard from a node.
func (c *Cluster) Get(nodeID int, key ShardKey) (Shard, error) {
	start := time.Now()
	sh, err := c.get(nodeID, key)
	m := c.metrics
	m.getNs.Observe(float64(time.Since(start).Nanoseconds()))
	if err != nil {
		m.getErr.Inc()
		return Shard{}, err
	}
	m.getOK.Inc()
	m.bytesOut.Add(int64(len(sh.Data)))
	return sh, nil
}

func (c *Cluster) get(nodeID int, key ShardKey) (Shard, error) {
	n, err := c.Node(nodeID)
	if err != nil {
		return Shard{}, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.Online {
		return Shard{}, fmt.Errorf("%w: node %d", ErrNodeDown, nodeID)
	}
	if err := c.injectFault(n, true, key); err != nil {
		return Shard{}, err
	}
	sh, ok := n.shards[key]
	if !ok {
		return Shard{}, fmt.Errorf("%w: node %d %v", ErrNoSuchShard, nodeID, key)
	}
	out := Shard{Key: sh.Key, Epoch: sh.Epoch, Data: append([]byte(nil), sh.Data...)}
	n.bytesOut.Add(int64(len(sh.Data)))
	c.bytesMoved.Add(int64(len(sh.Data)))
	c.gets.Add(1)
	return out, nil
}

// Delete removes a shard from a node (no error if absent).
func (c *Cluster) Delete(nodeID int, key ShardKey) error {
	n, err := c.Node(nodeID)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.shards, key)
	return nil
}

// Snapshot returns copies of all shards currently stored on a node —
// what a corrupting adversary exfiltrates.
func (c *Cluster) Snapshot(nodeID int) ([]Shard, error) {
	n, err := c.Node(nodeID)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Shard, 0, len(n.shards))
	for _, sh := range n.shards {
		out = append(out, Shard{Key: sh.Key, Epoch: sh.Epoch, Data: append([]byte(nil), sh.Data...)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Object != out[j].Key.Object {
			return out[i].Key.Object < out[j].Key.Object
		}
		if out[i].Key.Chunk != out[j].Key.Chunk {
			return out[i].Key.Chunk < out[j].Key.Chunk
		}
		return out[i].Key.Index < out[j].Key.Index
	})
	return out, nil
}

// StoredBytes returns the total bytes physically occupying nodes:
// committed shards plus any still sitting in staging areas.
func (c *Cluster) StoredBytes() int64 {
	var total int64
	for _, n := range c.nodes {
		n.mu.Lock()
		for _, sh := range n.shards {
			total += int64(len(sh.Data))
		}
		for _, st := range n.staged {
			total += int64(len(st.sh.Data))
		}
		n.mu.Unlock()
	}
	return total
}

// ObjectBytes returns the bytes at rest attributable to one object,
// committed and staged.
func (c *Cluster) ObjectBytes(object string) int64 {
	var total int64
	for _, n := range c.nodes {
		n.mu.Lock()
		for k, sh := range n.shards {
			if k.Object == object {
				total += int64(len(sh.Data))
			}
		}
		for k, st := range n.staged {
			if k.Object == object {
				total += int64(len(st.sh.Data))
			}
		}
		n.mu.Unlock()
	}
	return total
}

// Regions returns the distinct regions hosting at least one node.
func (c *Cluster) Regions() []string {
	seen := map[string]bool{}
	var out []string
	for _, n := range c.nodes {
		if !seen[n.Region] {
			seen[n.Region] = true
			out = append(out, n.Region)
		}
	}
	sort.Strings(out)
	return out
}
