package cluster

import (
	"bytes"
	"errors"
	"testing"

	"securearchive/internal/obs"
)

func TestPutGetRoundTrip(t *testing.T) {
	c := New(4, nil)
	key := ShardKey{Object: "obj1", Index: 2}
	data := []byte("shard payload")
	if err := c.Put(1, key, data); err != nil {
		t.Fatal(err)
	}
	sh, err := c.Get(1, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sh.Data, data) {
		t.Fatal("shard data mismatch")
	}
	if sh.Epoch != 0 {
		t.Fatalf("epoch %d, want 0", sh.Epoch)
	}
}

func TestGetMissingShard(t *testing.T) {
	c := New(2, nil)
	if _, err := c.Get(0, ShardKey{Object: "nope", Index: 0}); !errors.Is(err, ErrNoSuchShard) {
		t.Fatalf("missing shard: %v", err)
	}
}

func TestNodeBounds(t *testing.T) {
	c := New(2, nil)
	if err := c.Put(5, ShardKey{}, nil); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("bad node put: %v", err)
	}
	if _, err := c.Get(-1, ShardKey{}); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("bad node get: %v", err)
	}
}

func TestOfflineNode(t *testing.T) {
	c := New(3, nil)
	key := ShardKey{Object: "o", Index: 0}
	if err := c.Put(0, key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.SetOnline(0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(0, key); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("offline get: %v", err)
	}
	if err := c.Put(0, key, []byte("y")); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("offline put: %v", err)
	}
	if err := c.SetOnline(0, true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(0, key); err != nil {
		t.Fatalf("restored get: %v", err)
	}
}

func TestEpochStamping(t *testing.T) {
	c := New(2, nil)
	key := ShardKey{Object: "o", Index: 0}
	c.Put(0, key, []byte("v0"))
	c.AdvanceEpoch()
	c.AdvanceEpoch()
	c.Put(1, key, []byte("v2"))
	s0, _ := c.Get(0, key)
	s1, _ := c.Get(1, key)
	if s0.Epoch != 0 || s1.Epoch != 2 {
		t.Fatalf("epochs %d/%d, want 0/2", s0.Epoch, s1.Epoch)
	}
	if c.Epoch() != 2 {
		t.Fatalf("cluster epoch %d", c.Epoch())
	}
}

func TestPutReplacesAndRestamps(t *testing.T) {
	c := New(1, nil)
	key := ShardKey{Object: "o", Index: 0}
	c.Put(0, key, []byte("old"))
	c.AdvanceEpoch()
	c.Put(0, key, []byte("new"))
	sh, _ := c.Get(0, key)
	if string(sh.Data) != "new" || sh.Epoch != 1 {
		t.Fatalf("replace failed: %q at epoch %d", sh.Data, sh.Epoch)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	c := New(1, nil)
	c.Put(0, ShardKey{Object: "a", Index: 0}, []byte("aaa"))
	c.Put(0, ShardKey{Object: "b", Index: 1}, []byte("bbb"))
	snap, err := c.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d shards", len(snap))
	}
	// Sorted by object then index.
	if snap[0].Key.Object != "a" || snap[1].Key.Object != "b" {
		t.Fatal("snapshot not sorted")
	}
	snap[0].Data[0] = 'X'
	sh, _ := c.Get(0, ShardKey{Object: "a", Index: 0})
	if sh.Data[0] == 'X' {
		t.Fatal("snapshot aliases node storage")
	}
}

func TestAccounting(t *testing.T) {
	c := New(2, nil)
	c.Put(0, ShardKey{Object: "o", Index: 0}, make([]byte, 100))
	c.Put(1, ShardKey{Object: "o", Index: 1}, make([]byte, 100))
	c.Get(0, ShardKey{Object: "o", Index: 0})
	if c.StoredBytes() != 200 {
		t.Fatalf("stored %d, want 200", c.StoredBytes())
	}
	if c.ObjectBytes("o") != 200 {
		t.Fatalf("object bytes %d, want 200", c.ObjectBytes("o"))
	}
	if c.ObjectBytes("other") != 0 {
		t.Fatal("phantom object bytes")
	}
	if c.TotalBytesMoved() != 300 {
		t.Fatalf("moved %d, want 300", c.TotalBytesMoved())
	}
	if c.Puts() != 2 || c.Gets() != 1 {
		t.Fatalf("ops %d/%d, want 2/1", c.Puts(), c.Gets())
	}
	n, _ := c.Node(0)
	if n.BytesIn() != 100 || n.BytesOut() != 100 {
		t.Fatalf("node accounting %d/%d", n.BytesIn(), n.BytesOut())
	}
}

func TestDelete(t *testing.T) {
	c := New(1, nil)
	key := ShardKey{Object: "o", Index: 0}
	c.Put(0, key, []byte("x"))
	if err := c.Delete(0, key); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(0, key); !errors.Is(err, ErrNoSuchShard) {
		t.Fatalf("shard survived delete: %v", err)
	}
	if err := c.Delete(0, key); err != nil {
		t.Fatal("double delete errored")
	}
}

func TestRegions(t *testing.T) {
	c := New(8, []string{"x", "y"})
	regions := c.Regions()
	if len(regions) != 2 || regions[0] != "x" || regions[1] != "y" {
		t.Fatalf("regions = %v", regions)
	}
	d := New(3, nil)
	if len(d.Regions()) != 3 {
		t.Fatalf("default regions = %v", d.Regions())
	}
}

// TestDeleteClearsStaged is the regression test for the delete-path leak:
// Delete used to remove only the committed shard, so an entry still
// parked in the staging area survived — inflating StoredBytes and
// StagedCount forever and blocking a later re-Put of the same id with
// ErrDuplicateKey from the foreign stage.
func TestDeleteClearsStaged(t *testing.T) {
	c := New(1, nil)
	key := ShardKey{Object: "o", Index: 0}
	if err := c.Put(0, key, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	// A writer stages a rewrite, then the object is deleted mid-flight
	// (the writer never commits — its stage token dies with it).
	if err := c.PutStaged(0, "doomed-writer", key, []byte("staged")); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(0, key); err != nil {
		t.Fatal(err)
	}
	if n := c.StagedCount(); n != 0 {
		t.Fatalf("StagedCount after delete = %d, want 0", n)
	}
	if b := c.StoredBytes(); b != 0 {
		t.Fatalf("StoredBytes after delete = %d, want 0", b)
	}
	// Re-archiving the same id must not hit ErrDuplicateKey.
	if err := c.PutStaged(0, "fresh-writer", key, []byte("reborn")); err != nil {
		t.Fatalf("re-put after delete: %v", err)
	}
	if n, err := c.CommitStage("fresh-writer"); err != nil || n != 1 {
		t.Fatalf("commit after delete = %d, %v", n, err)
	}
	sh, err := c.Get(0, key)
	if err != nil || !bytes.Equal(sh.Data, []byte("reborn")) {
		t.Fatalf("re-put shard: %v %q", err, sh.Data)
	}
}

// TestDeleteObservability pins Delete into the metrics surface: it gets
// the same ok/err counters and latency histogram as every other
// data-path operation.
func TestDeleteObservability(t *testing.T) {
	c := New(2, nil)
	reg := obs.NewRegistry()
	c.UseRegistry(reg)
	key := ShardKey{Object: "o", Index: 0}
	c.Put(0, key, []byte("x"))
	if err := c.Delete(0, key); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(9, key); err == nil {
		t.Fatal("delete on bogus node succeeded")
	}
	if got := reg.Counter("cluster.delete.ok").Load(); got != 1 {
		t.Fatalf("cluster.delete.ok = %d, want 1", got)
	}
	if got := reg.Counter("cluster.delete.err").Load(); got != 1 {
		t.Fatalf("cluster.delete.err = %d, want 1", got)
	}
	if got := reg.Histogram("cluster.delete.ns", obs.LatencyBuckets()).Count(); got != 2 {
		t.Fatalf("cluster.delete.ns count = %d, want 2", got)
	}
}
