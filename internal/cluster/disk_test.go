package cluster

import (
	"bytes"
	"errors"
	"testing"

	"securearchive/internal/store"
)

// diskCluster opens a disk-backed cluster rooted in a test temp dir.
func diskCluster(t *testing.T, n int, dir string) *Cluster {
	t.Helper()
	c, err := Open(n, nil, store.Config{Backend: store.BackendDisk, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDiskBackendRoundTrip runs the cluster's basic contract — put, get,
// staging, delete, accounting — against the disk backend and proves the
// committed state survives a close-and-reopen.
func TestDiskBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := diskCluster(t, 3, dir)
	if c.Backend() != store.BackendDisk {
		t.Fatalf("Backend() = %q", c.Backend())
	}
	key := ShardKey{Object: "obj", Index: 1}
	if err := c.Put(1, key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	c.AdvanceEpoch()
	for i := 0; i < 3; i++ {
		k := ShardKey{Object: "striped", Index: i}
		if err := c.PutStaged(i, "w", k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := c.CommitStage("w"); err != nil || n != 3 {
		t.Fatalf("CommitStage = %d, %v", n, err)
	}
	if got := c.StoredBytes(); got != 7+3 {
		t.Fatalf("StoredBytes = %d, want 10", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := diskCluster(t, 3, dir)
	defer c2.Close()
	sh, err := c2.Get(1, key)
	if err != nil || !bytes.Equal(sh.Data, []byte("payload")) || sh.Epoch != 0 {
		t.Fatalf("reopened get = %+v, %v", sh, err)
	}
	for i := 0; i < 3; i++ {
		sh, err := c2.Get(i, ShardKey{Object: "striped", Index: i})
		if err != nil || sh.Epoch != 1 {
			t.Fatalf("striped[%d] after reopen = %+v, %v", i, sh, err)
		}
	}
	if got := c2.StagedCount(); got != 0 {
		t.Fatalf("StagedCount after reopen = %d", got)
	}
}

// TestDiskBackendBitRot proves injected rot lands in the segment bytes
// at rest: a CorruptProb=1 read damages the shard, and the damage is
// still there for the next read with faults cleared.
func TestDiskBackendBitRot(t *testing.T) {
	c := diskCluster(t, 1, t.TempDir())
	defer c.Close()
	key := ShardKey{Object: "r", Index: 0}
	orig := []byte("pristine")
	if err := c.Put(0, key, orig); err != nil {
		t.Fatal(err)
	}
	c.SetFaultPlan(&FaultPlan{Seed: 1, Default: NodeFaults{CorruptProb: 1}})
	sh, err := c.Get(0, key)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(sh.Data, orig) {
		t.Fatal("CorruptProb=1 read returned pristine data")
	}
	c.SetFaultPlan(nil)
	sh2, err := c.Get(0, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sh2.Data, sh.Data) {
		t.Fatal("rot did not persist at rest")
	}
}

func TestOpenStoreConfig(t *testing.T) {
	if _, err := OpenStore(store.Config{Backend: "tape"}, 2); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := OpenStore(store.Config{Backend: store.BackendDisk}, 2); err == nil {
		t.Fatal("disk backend without a directory accepted")
	}
	bk, err := OpenStore(store.Config{}, 2)
	if err != nil || bk.Nodes() != 2 {
		t.Fatalf("default backend: %v", err)
	}
	if c := NewWithStore(bk, nil); c.Backend() != store.BackendMem {
		t.Fatalf("Backend() = %q", c.Backend())
	}
}

// TestDiskDeleteClearsStaged re-runs the delete-path regression against
// the disk backend (the WAL's delete record must drop the staged entry
// too, including across reopen — see TestDeleteClearsStaged for the
// memory half).
func TestDiskDeleteClearsStaged(t *testing.T) {
	dir := t.TempDir()
	c := diskCluster(t, 1, dir)
	key := ShardKey{Object: "o", Index: 0}
	if err := c.Put(0, key, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := c.PutStaged(0, "doomed", key, []byte("staged")); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(0, key); err != nil {
		t.Fatal(err)
	}
	if n, b := c.StagedCount(), c.StoredBytes(); n != 0 || b != 0 {
		t.Fatalf("after delete: staged=%d bytes=%d", n, b)
	}
	if err := c.PutStaged(0, "fresh", key, []byte("reborn")); err != nil {
		t.Fatalf("re-put after delete: %v", err)
	}
	if _, err := c.CommitStage("fresh"); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c2 := diskCluster(t, 1, dir)
	defer c2.Close()
	sh, err := c2.Get(0, key)
	if err != nil || !bytes.Equal(sh.Data, []byte("reborn")) {
		t.Fatalf("after reopen: %v %q", err, sh.Data)
	}
}

// TestDiskCommitErrorSurfaces proves a failed commit reaches the caller
// as an error (the memory backend can never fail here, so the disk
// backend is where the (int, error) contract earns its keep).
func TestDiskCommitErrorSurfaces(t *testing.T) {
	c := diskCluster(t, 1, t.TempDir())
	if err := c.PutStaged(0, "w", ShardKey{Object: "x", Index: 0}, []byte("d")); err != nil {
		t.Fatal(err)
	}
	c.Close() // dead store: every subsequent backend op errors
	if _, err := c.CommitStage("w"); err == nil {
		t.Fatal("commit on closed store succeeded")
	}
	if _, err := c.AbortStage("w"); err == nil {
		t.Fatal("abort on closed store succeeded")
	}
}

// TestDiskSnapshotSorted pins Snapshot's ordering contract on disk.
func TestDiskSnapshotSorted(t *testing.T) {
	c := diskCluster(t, 1, t.TempDir())
	defer c.Close()
	keys := []ShardKey{
		{Object: "b", Index: 1, Chunk: 0},
		{Object: "a", Index: 0, Chunk: 1},
		{Object: "a", Index: 1, Chunk: 0},
		{Object: "a", Index: 0, Chunk: 0},
	}
	for _, k := range keys {
		if err := c.Put(0, k, []byte("d")); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := c.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []ShardKey{
		{Object: "a", Index: 0, Chunk: 0},
		{Object: "a", Index: 1, Chunk: 0},
		{Object: "a", Index: 0, Chunk: 1},
		{Object: "b", Index: 1, Chunk: 0},
	}
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d shards", len(snap))
	}
	for i := range want {
		if snap[i].Key != want[i] {
			t.Fatalf("snapshot[%d] = %+v, want %+v", i, snap[i].Key, want[i])
		}
	}
	if _, err := c.Snapshot(7); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("snapshot of bogus node: %v", err)
	}
}
