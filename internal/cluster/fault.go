package cluster

import (
	"context"
	"fmt"
	"time"
)

// Fault injection: a FaultPlan makes the cluster behave like the archives
// the paper argues about — nodes that throttle, drop requests, rot bits,
// and disappear for whole epochs. The plan is deterministic from its
// Seed: each node carries an independent splitmix64 stream advanced once
// per probability draw under the node lock, so a fixed sequence of
// operations against a fixed plan always observes the same faults
// (concurrent callers may interleave node sequences differently, but each
// node's own draw sequence depends only on the operations that reach it).
//
// Faults apply to the data path only (Put, PutStaged, Get). CommitStage,
// AbortStage and Delete are metadata operations the plan never touches:
// the bytes have already moved by the time they run (the disk backend
// can still surface its own real I/O errors from them).

// Window is a half-open epoch interval [From, To).
type Window struct {
	From, To int
}

// Contains reports whether the epoch falls inside the window.
func (w Window) Contains(epoch int) bool { return epoch >= w.From && epoch < w.To }

// NodeFaults configures one node's failure behaviour.
type NodeFaults struct {
	// TransientProb is the per-operation probability of ErrTransient —
	// a timeout or throttle the caller may retry.
	TransientProb float64
	// FlakyProb replaces TransientProb while the epoch is inside a
	// Flaky window.
	FlakyProb float64
	// CorruptProb is the per-Get probability that one random bit of the
	// stored shard flips before it is served — persistent bit rot, so a
	// later Scrub still sees the damage.
	CorruptProb float64
	// Latency is added to every data-path operation on the node. The
	// node services requests serially while it sleeps, modelling a
	// single-spindle provider.
	Latency time.Duration
	// Offline lists epoch windows during which the node is hard-down
	// (ErrNodeDown, not retryable).
	Offline []Window
	// Flaky lists epoch windows during which FlakyProb applies.
	Flaky []Window
}

// FaultPlan assigns fault behaviour across the cluster.
type FaultPlan struct {
	// Seed determinises every probability draw.
	Seed int64
	// Default applies to nodes without an entry in Nodes.
	Default NodeFaults
	// Nodes overrides Default per node ID.
	Nodes map[int]NodeFaults
}

// SetFaultPlan installs (or, with nil, clears) the fault plan. Each
// node's random stream is re-seeded from plan.Seed and the node ID, so
// re-installing the same plan replays the same faults.
func (c *Cluster) SetFaultPlan(p *FaultPlan) {
	for _, n := range c.nodes {
		n.mu.Lock()
		if p == nil {
			n.faults = nil
			n.faultState = 0
		} else {
			f := p.Default
			if nf, ok := p.Nodes[n.ID]; ok {
				f = nf
			}
			fc := f
			n.faults = &fc
			n.faultState = mix64(uint64(p.Seed) + 0x9E3779B97F4A7C15*uint64(n.ID+1))
		}
		n.mu.Unlock()
	}
}

// injectFault applies the node's fault plan to one data-path operation.
// Called with n.mu held (the epoch read is a lock-free atomic, so no
// cluster-level lock is taken under the node lock). For reads, key names
// the shard that bit rot would damage. The injected latency sleep
// selects on ctx.Done(): a cancelled caller stops paying for a slow
// node immediately (ErrRetryAborted wrapping the context error) instead
// of serving out the provider's simulated seek time.
func (c *Cluster) injectFault(ctx context.Context, n *Node, read bool, key ShardKey) error {
	f := n.faults
	if f == nil {
		return nil
	}
	if f.Latency > 0 {
		if ctx.Done() == nil {
			time.Sleep(f.Latency)
		} else {
			t := time.NewTimer(f.Latency)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return retryAbort(ctx)
			}
		}
	}
	epoch := c.Epoch()
	for _, w := range f.Offline {
		if w.Contains(epoch) {
			return fmt.Errorf("%w: node %d (offline window)", ErrNodeDown, n.ID)
		}
	}
	p := f.TransientProb
	for _, w := range f.Flaky {
		if w.Contains(epoch) {
			p = f.FlakyProb
		}
	}
	if p > 0 && n.roll() < p {
		return fmt.Errorf("%w: node %d", ErrTransient, n.ID)
	}
	if read && f.CorruptProb > 0 && n.roll() < f.CorruptProb {
		// The flip goes through the store's Corrupt so the damage lands in
		// the bytes *at rest* (a map entry or a segment file) — persistent
		// rot that a later read or scrub still sees, not a wire error.
		if ln, ok := n.st.ShardLen(key); ok && ln > 0 {
			n.st.Corrupt(key, n.rollN(ln*8))
		}
	}
	return nil
}

// roll advances the node's splitmix64 stream and returns a uniform
// float64 in [0, 1). Caller holds n.mu.
func (n *Node) roll() float64 {
	n.faultState += 0x9E3779B97F4A7C15
	return float64(mix64(n.faultState)>>11) / (1 << 53)
}

// rollN returns a uniform int in [0, bound). Caller holds n.mu.
func (n *Node) rollN(bound int) int {
	n.faultState += 0x9E3779B97F4A7C15
	return int(mix64(n.faultState) % uint64(bound))
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}
