package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestFaultPlanTransientDeterministic(t *testing.T) {
	run := func() []bool {
		c := New(1, nil)
		c.Put(0, ShardKey{Object: "o", Index: 0}, []byte("x"))
		c.SetFaultPlan(&FaultPlan{Seed: 7, Default: NodeFaults{TransientProb: 0.5}})
		outcomes := make([]bool, 64)
		for i := range outcomes {
			_, err := c.Get(0, ShardKey{Object: "o", Index: 0})
			outcomes[i] = err == nil
			if err != nil && !errors.Is(err, ErrTransient) {
				t.Fatalf("unexpected fault class: %v", err)
			}
		}
		return outcomes
	}
	a, b := run(), run()
	saw := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs across identically seeded runs", i)
		}
		if !a[i] {
			saw = true
		}
	}
	if !saw {
		t.Fatal("p=0.5 over 64 ops injected nothing")
	}
}

func TestFaultPlanOfflineWindow(t *testing.T) {
	c := New(2, nil)
	key := ShardKey{Object: "o", Index: 0}
	c.Put(0, key, []byte("x"))
	c.SetFaultPlan(&FaultPlan{
		Seed:  1,
		Nodes: map[int]NodeFaults{0: {Offline: []Window{{From: 1, To: 3}}}},
	})
	if _, err := c.Get(0, key); err != nil {
		t.Fatalf("epoch 0 outside window: %v", err)
	}
	c.AdvanceEpoch()
	if _, err := c.Get(0, key); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("epoch 1 inside window: %v", err)
	}
	if err := c.Put(0, key, []byte("y")); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("put inside window: %v", err)
	}
	// Node 1 has no entry and the Default is zero: unaffected.
	if err := c.Put(1, key, []byte("z")); err != nil {
		t.Fatalf("unplanned node faulted: %v", err)
	}
	c.AdvanceEpoch()
	c.AdvanceEpoch()
	if _, err := c.Get(0, key); err != nil {
		t.Fatalf("epoch 3 past window: %v", err)
	}
}

func TestFaultPlanFlakyWindow(t *testing.T) {
	c := New(1, nil)
	key := ShardKey{Object: "o", Index: 0}
	c.Put(0, key, []byte("x"))
	c.SetFaultPlan(&FaultPlan{Seed: 3, Default: NodeFaults{
		TransientProb: 0,
		FlakyProb:     1.0,
		Flaky:         []Window{{From: 1, To: 2}},
	}})
	if _, err := c.Get(0, key); err != nil {
		t.Fatalf("outside flaky window: %v", err)
	}
	c.AdvanceEpoch()
	if _, err := c.Get(0, key); !errors.Is(err, ErrTransient) {
		t.Fatalf("inside flaky window: %v", err)
	}
}

func TestFaultPlanCorruptionIsPersistent(t *testing.T) {
	c := New(1, nil)
	key := ShardKey{Object: "o", Index: 0}
	orig := []byte("pristine shard payload")
	c.Put(0, key, orig)
	c.SetFaultPlan(&FaultPlan{Seed: 9, Default: NodeFaults{CorruptProb: 1.0}})
	sh, err := c.Get(0, key)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(sh.Data, orig) {
		t.Fatal("p=1 corruption left shard intact")
	}
	// Bit rot is at-rest damage: clearing the plan still serves rot.
	c.SetFaultPlan(nil)
	sh2, err := c.Get(0, key)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(sh2.Data, orig) {
		t.Fatal("corruption did not persist at rest")
	}
}

func TestStagedCommitAndAbort(t *testing.T) {
	c := New(2, nil)
	key0 := ShardKey{Object: "o", Index: 0}
	key1 := ShardKey{Object: "o", Index: 1}
	base := c.StoredBytes()
	if err := c.PutStaged(0, "s1", key0, []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := c.PutStaged(1, "s1", key1, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	// Staged bytes occupy space but are invisible to Get.
	if c.StoredBytes() != base+8 {
		t.Fatalf("staged bytes not counted: %d", c.StoredBytes())
	}
	if _, err := c.Get(0, key0); !errors.Is(err, ErrNoSuchShard) {
		t.Fatalf("staged shard visible to Get: %v", err)
	}
	if n, _ := c.CommitStage("s1"); n != 2 {
		t.Fatalf("committed %d, want 2", n)
	}
	sh, err := c.Get(0, key0)
	if err != nil || string(sh.Data) != "aaaa" {
		t.Fatalf("committed shard: %q %v", sh.Data, err)
	}
	if c.StagedCount() != 0 {
		t.Fatal("stage leaked after commit")
	}

	// Abort path: bytes return to the committed baseline.
	base = c.StoredBytes()
	if err := c.PutStaged(0, "s2", key0, []byte("cccccccc")); err != nil {
		t.Fatal(err)
	}
	if n, _ := c.AbortStage("s2"); n != 1 {
		t.Fatalf("aborted %d, want 1", n)
	}
	if c.StoredBytes() != base {
		t.Fatalf("abort left %d bytes, want %d", c.StoredBytes(), base)
	}
	sh, _ = c.Get(0, key0)
	if string(sh.Data) != "aaaa" {
		t.Fatal("abort damaged the live shard")
	}
}

func TestStagedForeignStageRefused(t *testing.T) {
	c := New(1, nil)
	key := ShardKey{Object: "o", Index: 0}
	if err := c.PutStaged(0, "writer-a", key, []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Same stage re-staging is an idempotent retry.
	if err := c.PutStaged(0, "writer-a", key, []byte("a2")); err != nil {
		t.Fatalf("idempotent re-stage: %v", err)
	}
	// A different writer must not steal the key.
	if err := c.PutStaged(0, "writer-b", key, []byte("b")); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("foreign stage: %v", err)
	}
	c.AbortStage("writer-a")
	if err := c.PutStaged(0, "writer-b", key, []byte("b")); err != nil {
		t.Fatalf("stage free after abort: %v", err)
	}
}

func TestRetryTransientEventuallySucceeds(t *testing.T) {
	fails := 2
	err := RetryTransient(RetryPolicy{MaxAttempts: 4}, func() error {
		if fails > 0 {
			fails--
			return fmt.Errorf("wrapped: %w", ErrTransient)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retry gave up early: %v", err)
	}
	// Non-transient errors are final.
	calls := 0
	err = RetryTransient(RetryPolicy{MaxAttempts: 4}, func() error {
		calls++
		return ErrNodeDown
	})
	if !errors.Is(err, ErrNodeDown) || calls != 1 {
		t.Fatalf("hard error retried: %v after %d calls", err, calls)
	}
	// Exhaustion surfaces the transient error.
	err = RetryTransient(RetryPolicy{MaxAttempts: 2}, func() error { return ErrTransient })
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("exhausted retry: %v", err)
	}
}

func TestFetchStripeDegraded(t *testing.T) {
	c := New(8, nil)
	for i := 0; i < 8; i++ {
		c.Put(i, ShardKey{Object: "o", Index: i}, []byte{byte(i)})
	}
	// Half the stripe offline: a 4-of-8 read must still complete.
	for _, id := range []int{0, 2, 4, 6} {
		c.SetOnline(id, false)
	}
	res := c.FetchStripe("o", 8, 4, DefaultRetry, nil)
	if res.Fetched < 4 {
		t.Fatalf("degraded read got %d/4", res.Fetched)
	}
	if !res.Degraded() {
		t.Fatal("read through offline nodes not reported degraded")
	}
	for i, sh := range res.Shards {
		if sh != nil && sh[0] != byte(i) {
			t.Fatalf("shard %d misindexed", i)
		}
	}
	// Validator rejections fall back to other nodes and are attributed.
	for _, id := range []int{0, 2, 4, 6} {
		c.SetOnline(id, true)
	}
	rejected := map[int]bool{1: true, 3: true}
	res = c.FetchStripe("o", 8, 4, DefaultRetry, func(i int, _ []byte) bool { return !rejected[i] })
	if res.Fetched < 4 {
		t.Fatalf("validator fallback got %d/4", res.Fetched)
	}
	if res.Shards[1] != nil || res.Shards[3] != nil {
		t.Fatal("rejected shards returned")
	}
	if len(res.Discarded) != 2 || res.Discarded[0] != 1 || res.Discarded[1] != 3 {
		t.Fatalf("discarded = %v, want [1 3]", res.Discarded)
	}
}

func TestFetchStripeUnderTransients(t *testing.T) {
	c := New(6, nil)
	for i := 0; i < 6; i++ {
		c.Put(i, ShardKey{Object: "o", Index: i}, []byte{byte(i)})
	}
	c.SetFaultPlan(&FaultPlan{Seed: 11, Default: NodeFaults{TransientProb: 0.4}})
	res := c.FetchStripe("o", 6, 3, DefaultRetry, nil)
	if res.Fetched < 3 {
		t.Fatalf("retrying stripe read got %d/3 under 40%% transients", res.Fetched)
	}
}

// TestMeteringConcurrentWithTraffic is the -race regression for the
// BytesIn/BytesOut data race: metering reads race freely with traffic.
func TestMeteringConcurrentWithTraffic(t *testing.T) {
	c := New(4, nil)
	var writers sync.WaitGroup
	stop := make(chan struct{})
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < 4; i++ {
				n, _ := c.Node(i)
				_ = n.BytesIn()
				_ = n.BytesOut()
			}
			_ = c.StoredBytes()
		}
	}()
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			key := ShardKey{Object: "o", Index: w}
			for i := 0; i < 200; i++ {
				c.Put(w, key, []byte("payload"))
				c.Get(w, key)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	<-monitorDone
	for i := 0; i < 4; i++ {
		n, _ := c.Node(i)
		if n.BytesIn() != 200*7 || n.BytesOut() != 200*7 {
			t.Fatalf("node %d metering %d/%d", i, n.BytesIn(), n.BytesOut())
		}
	}
}
