package cluster

import (
	"fmt"

	"securearchive/internal/obs"
)

// Metrics: every data-path operation on the cluster is counted and
// timed through the obs registry — per-op outcomes, bytes moved, staged
// writes, stripe-read probes and the validation discards that the
// degraded read routes around. The metrics are resolved once (at New or
// UseRegistry) so the hot path pays only atomic adds.

type clusterMetrics struct {
	reg *obs.Registry

	putOK, putErr       *obs.Counter
	getOK, getErr       *obs.Counter
	stagedOK, stagedErr *obs.Counter
	deleteOK, deleteErr *obs.Counter
	commits, aborts     *obs.Counter
	bytesIn, bytesOut   *obs.Counter

	// Stripe-read telemetry (FetchStripe).
	probes    *obs.Counter // node fetches launched
	discards  *obs.Counter // shards dropped by the caller's validator
	degraded  *obs.Counter // stripe reads that routed around ≥1 failure
	full      *obs.Counter // stripe reads with no failures at all
	short     *obs.Counter // stripe reads that ended below want
	discardBy []*obs.Counter

	// Per-node dimension, pre-resolved into dense arrays so the stripe
	// fan-out pays one atomic add per touch: probes launched, shards
	// discarded, and transient-retry attempts keyed by {node}. The
	// legacy cluster.fetch.discarded.nodeNN suffix counters above stay —
	// the fault-injection example and older dashboards read them.
	probeAt   []*obs.Counter
	discardAt []*obs.Counter
	retryAt   []*obs.Counter

	putNs, getNs, deleteNs, fetchNs *obs.Histogram
}

func newClusterMetrics(reg *obs.Registry, nodes int) *clusterMetrics {
	m := &clusterMetrics{
		reg:       reg,
		putOK:     reg.Counter("cluster.put.ok"),
		putErr:    reg.Counter("cluster.put.err"),
		getOK:     reg.Counter("cluster.get.ok"),
		getErr:    reg.Counter("cluster.get.err"),
		stagedOK:  reg.Counter("cluster.staged.ok"),
		stagedErr: reg.Counter("cluster.staged.err"),
		deleteOK:  reg.Counter("cluster.delete.ok"),
		deleteErr: reg.Counter("cluster.delete.err"),
		commits:   reg.Counter("cluster.stage.commit"),
		aborts:    reg.Counter("cluster.stage.abort"),
		bytesIn:   reg.Counter("cluster.bytes.in"),
		bytesOut:  reg.Counter("cluster.bytes.out"),
		probes:    reg.Counter("cluster.fetch.probes"),
		discards:  reg.Counter("cluster.fetch.discarded"),
		degraded:  reg.Counter("cluster.fetch.degraded"),
		full:      reg.Counter("cluster.fetch.full"),
		short:     reg.Counter("cluster.fetch.short"),
		putNs:     reg.Histogram("cluster.put.ns", obs.LatencyBuckets()),
		getNs:     reg.Histogram("cluster.get.ns", obs.LatencyBuckets()),
		deleteNs:  reg.Histogram("cluster.delete.ns", obs.LatencyBuckets()),
		fetchNs:   reg.Histogram("cluster.fetch.ns", obs.LatencyBuckets()),
	}
	m.discardBy = make([]*obs.Counter, nodes)
	for i := range m.discardBy {
		m.discardBy[i] = reg.Counter(fmt.Sprintf("cluster.fetch.discarded.node%02d", i))
	}

	probeFam := reg.LabeledCounter("cluster.probe", "node")
	discardFam := reg.LabeledCounter("cluster.discard", "node")
	retryFam := reg.LabeledCounter("cluster.retry", "node")
	if nodes+1 > obs.DefaultMaxSeries {
		probeFam.SetMaxSeries(nodes + 1)
		discardFam.SetMaxSeries(nodes + 1)
		retryFam.SetMaxSeries(nodes + 1)
	}
	m.probeAt = make([]*obs.Counter, nodes)
	m.discardAt = make([]*obs.Counter, nodes)
	m.retryAt = make([]*obs.Counter, nodes)
	for i := 0; i < nodes; i++ {
		label := fmt.Sprintf("%02d", i)
		m.probeAt[i] = probeFam.With(label)
		m.discardAt[i] = discardFam.With(label)
		m.retryAt[i] = retryFam.With(label)
	}
	return m
}

// probedAt attributes one fetch probe to a node.
func (m *clusterMetrics) probedAt(node int) {
	m.probes.Inc()
	if node >= 0 && node < len(m.probeAt) {
		m.probeAt[node].Inc()
	}
}

// discardedAt attributes one validation discard to a node.
func (m *clusterMetrics) discardedAt(node int) {
	m.discards.Inc()
	if node >= 0 && node < len(m.discardBy) {
		m.discardBy[node].Inc()
	}
	if node >= 0 && node < len(m.discardAt) {
		m.discardAt[node].Inc()
	}
}

// retriedAt attributes one transient-retry attempt to a node.
func (m *clusterMetrics) retriedAt(node int) {
	if node >= 0 && node < len(m.retryAt) {
		m.retryAt[node].Inc()
	}
}

// UseRegistry re-resolves the cluster's metrics from the given registry
// (obs.Default() at New). Call it before traffic flows — typically right
// after New — so an isolated measurement run (papereval, tests) sees
// exactly its own numbers.
func (c *Cluster) UseRegistry(reg *obs.Registry) {
	c.metrics = newClusterMetrics(reg, len(c.nodes))
}
