package cluster

import (
	"errors"
	"sync"
	"time"
)

// Degraded reads: the survivable-storage read discipline (PASIS,
// POTSHARDS) on the cluster substrate. A stripe read fans out a first
// wave of probes, retries transient errors with bounded exponential
// backoff, falls back to the remaining nodes as probes fail, and stops
// as soon as the decoder's minimum is in hand — a k-of-n read instead of
// a full-stripe read.

// RetryPolicy bounds per-node retries on ErrTransient.
type RetryPolicy struct {
	// MaxAttempts counts the first try; values < 1 mean 1.
	MaxAttempts int
	// BaseDelay is the first backoff; it doubles per attempt.
	BaseDelay time.Duration
	// MaxDelay caps the backoff.
	MaxDelay time.Duration
}

// DefaultRetry suits the in-memory simulation: a few fast attempts.
var DefaultRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: 200 * time.Microsecond, MaxDelay: 5 * time.Millisecond}

func (p RetryPolicy) normalize() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetry.BaseDelay
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = p.BaseDelay
	}
	return p
}

// RetryTransient runs op, retrying with bounded exponential backoff for
// as long as it returns ErrTransient. Any other outcome — success,
// ErrNodeDown, ErrNoSuchShard — is final and returned immediately.
func RetryTransient(pol RetryPolicy, op func() error) error {
	pol = pol.normalize()
	delay := pol.BaseDelay
	var err error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if err = op(); !errors.Is(err, ErrTransient) {
			return err
		}
		if attempt < pol.MaxAttempts-1 {
			time.Sleep(delay)
			delay *= 2
			if delay > pol.MaxDelay {
				delay = pol.MaxDelay
			}
		}
	}
	return err
}

// GetRetry is Get with RetryTransient around it.
func (c *Cluster) GetRetry(nodeID int, key ShardKey, pol RetryPolicy) (Shard, error) {
	var sh Shard
	err := RetryTransient(pol, func() error {
		var e error
		sh, e = c.Get(nodeID, key)
		return e
	})
	return sh, err
}

// FetchStripe performs a degraded k-of-n stripe read of object across
// nodes [0, n): shard i is fetched from node i (the one-shard-per-
// provider placement). It fans out want plus up to two speculative
// probes, retries each per pol, and pulls from the remaining nodes as
// probes fail, stopping once want shards are in hand. valid, when
// non-nil, vets each fetched shard (digest or commitment check); a shard
// that fails vetting counts as unavailable and another node is tried.
// Returns the shard slice indexed by node (nil = not fetched) and the
// number fetched. want outside (0, n] means the full stripe.
func (c *Cluster) FetchStripe(object string, n, want int, pol RetryPolicy, valid func(index int, data []byte) bool) ([][]byte, int) {
	if n <= 0 {
		return nil, 0
	}
	if want <= 0 || want > n {
		want = n
	}
	probes := want + 2
	if probes > n {
		probes = n
	}
	out := make([][]byte, n)
	var (
		mu   sync.Mutex
		next int
		got  int
	)
	var wg sync.WaitGroup
	wg.Add(probes)
	for w := 0; w < probes; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if got >= want || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				sh, err := c.GetRetry(i, ShardKey{Object: object, Index: i}, pol)
				if err != nil || (valid != nil && !valid(i, sh.Data)) {
					continue
				}
				mu.Lock()
				if out[i] == nil {
					out[i] = sh.Data
					got++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return out, got
}
