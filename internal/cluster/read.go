package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"securearchive/internal/obs"
	"securearchive/internal/obs/trace"
)

// Degraded reads: the survivable-storage read discipline (PASIS,
// POTSHARDS) on the cluster substrate. A stripe read fans out a first
// wave of probes, retries transient errors with bounded exponential
// backoff, falls back to the remaining nodes as probes fail, and stops
// as soon as the decoder's minimum is in hand — a k-of-n read instead of
// a full-stripe read.

// ErrShardInvalid marks a fetched shard rejected by the caller's
// validator (digest or commitment mismatch — bit rot or tampering).
var ErrShardInvalid = errors.New("cluster: shard failed validation")

// RetryPolicy bounds per-node retries on ErrTransient.
type RetryPolicy struct {
	// MaxAttempts counts the first try; values < 1 mean 1.
	MaxAttempts int
	// BaseDelay is the first backoff; it doubles per attempt.
	BaseDelay time.Duration
	// MaxDelay caps the backoff.
	MaxDelay time.Duration
}

// DefaultRetry suits the in-memory simulation: a few fast attempts.
var DefaultRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: 200 * time.Microsecond, MaxDelay: 5 * time.Millisecond}

func (p RetryPolicy) normalize() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetry.BaseDelay
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = p.BaseDelay
	}
	return p
}

// Retry telemetry lands in the default registry regardless of which
// registry a cluster uses: RetryTransient is a package-level helper with
// no cluster in scope. Resolved lazily so merely importing the package
// creates no metrics.
var (
	retryOnce      sync.Once
	retryAttempts  *obs.Counter
	retryBackoffNs *obs.Counter
)

func retryMetrics() (*obs.Counter, *obs.Counter) {
	retryOnce.Do(func() {
		retryAttempts = obs.Default().Counter("cluster.retry.attempts")
		retryBackoffNs = obs.Default().Counter("cluster.retry.backoff_ns")
	})
	return retryAttempts, retryBackoffNs
}

// ErrRetryAborted wraps a context error that cut a retry loop short:
// errors.Is(err, ErrRetryAborted) distinguishes "the caller gave up"
// from "the retries ran out", while errors.Is(err, context.Canceled) /
// context.DeadlineExceeded still hold through the wrap.
var ErrRetryAborted = errors.New("cluster: retry aborted by context")

// retryAbort wraps ctx.Err() so callers can match both ErrRetryAborted
// and the underlying context error.
func retryAbort(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrRetryAborted, context.Cause(ctx))
}

// RetryTransient runs op, retrying with bounded exponential backoff for
// as long as it returns ErrTransient. Any other outcome — success,
// ErrNodeDown, ErrNoSuchShard — is final and returned immediately. Every
// re-attempt bumps cluster.retry.attempts and every sleep adds to
// cluster.retry.backoff_ns in the default registry.
func RetryTransient(pol RetryPolicy, op func() error) error {
	return RetryTransientCtx(context.Background(), pol, op)
}

// RetryTransientCtx is RetryTransient with cancellation and trace
// attribution: every backoff sleep selects on ctx.Done(), so a caller
// that disconnects mid-backoff gets ErrRetryAborted (wrapping ctx's
// error) promptly instead of sleeping out the whole schedule. When the
// context carries a recording span, each sleep is recorded on it as a
// "backoff.slept" event (attempt number and delay) — the retry loop's
// time becomes visible in the trace timeline instead of vanishing into
// the parent span's duration.
func RetryTransientCtx(ctx context.Context, pol RetryPolicy, op func() error) error {
	pol = pol.normalize()
	delay := pol.BaseDelay
	attempts, backoff := retryMetrics()
	sp := trace.FromContext(ctx)
	var err error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if ctx.Err() != nil {
			return retryAbort(ctx)
		}
		if err = op(); !errors.Is(err, ErrTransient) {
			return err
		}
		if attempt < pol.MaxAttempts-1 {
			attempts.Inc()
			backoff.Add(delay.Nanoseconds())
			sp.Event("backoff.slept",
				trace.Int("attempt", attempt+1), trace.Int64("delay_ns", delay.Nanoseconds()))
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return retryAbort(ctx)
			}
			delay *= 2
			if delay > pol.MaxDelay {
				delay = pol.MaxDelay
			}
		}
	}
	return err
}

// GetRetry is Get with RetryTransient around it.
func (c *Cluster) GetRetry(nodeID int, key ShardKey, pol RetryPolicy) (Shard, error) {
	return c.GetRetryCtx(context.Background(), nodeID, key, pol)
}

// GetRetryCtx is GetRetry with backoff sleeps attributed to the
// context's span and aborted by its cancellation; see RetryTransientCtx.
// The underlying fetch is GetCtx, so injected node latency is also cut
// short when the caller goes away.
func (c *Cluster) GetRetryCtx(ctx context.Context, nodeID int, key ShardKey, pol RetryPolicy) (Shard, error) {
	var sh Shard
	err := RetryTransientCtx(ctx, pol, func() error {
		var e error
		sh, e = c.GetCtx(ctx, nodeID, key)
		if errors.Is(e, ErrTransient) {
			// Per-node retry attribution: every transient result this
			// node produced, whether or not the policy has budget to try
			// again, lands on cluster.retry{node}.
			c.metrics.retriedAt(nodeID)
		}
		return e
	})
	return sh, err
}

// NodeFailure records why one node contributed nothing to a stripe read.
type NodeFailure struct {
	Node int
	Err  error
}

// cause compresses a fetch error into the one-word form used in
// failure summaries ("node 4: corrupt, node 5: down").
func (f NodeFailure) cause() string {
	switch {
	case errors.Is(f.Err, ErrShardInvalid):
		return "corrupt"
	case errors.Is(f.Err, ErrNodeDown):
		return "down"
	case errors.Is(f.Err, ErrNoSuchShard):
		return "missing"
	case errors.Is(f.Err, ErrTransient):
		return "transient"
	case f.Err == nil:
		return "ok"
	default:
		return f.Err.Error()
	}
}

// StripeResult is what a stripe read actually did — the record that
// makes degraded reads visible to callers instead of silently feeding
// an under-populated stripe to a decoder. Fetched below the requested
// minimum means the stripe is NOT decodable; callers must check it.
type StripeResult struct {
	// Shards is the stripe indexed by node; nil = not fetched.
	Shards [][]byte
	// Fetched is the number of validated shards in Shards.
	Fetched int
	// Discarded lists node indices whose shard arrived but failed the
	// caller's validator (bit rot, tampering) — prime scrub candidates.
	Discarded []int
	// Failures records, per node that was probed and yielded nothing,
	// the terminal error (including ErrShardInvalid for discards).
	Failures []NodeFailure
	// Canceled is non-nil when the read stopped early because the
	// caller's context was cancelled (wrapping the context error): the
	// probe waves quit instead of burning retries for a reader that has
	// gone away. A short Fetched count with Canceled set means "the
	// caller left", not "the stripe is unreadable" — callers must
	// surface the context error, not a degraded-read error.
	Canceled error
}

// Degraded reports whether the read had to route around any failure or
// discard (even if it still gathered enough shards).
func (r *StripeResult) Degraded() bool { return len(r.Failures) > 0 }

// FailureSummary renders the per-node causes, e.g.
// "node 4: corrupt, node 5: down". Empty when nothing failed.
func (r *StripeResult) FailureSummary() string {
	if len(r.Failures) == 0 {
		return ""
	}
	parts := make([]string, len(r.Failures))
	for i, f := range r.Failures {
		parts[i] = fmt.Sprintf("node %d: %s", f.Node, f.cause())
	}
	return strings.Join(parts, ", ")
}

// FetchStripe performs a degraded k-of-n stripe read of object across
// nodes [0, n): shard i is fetched from node i (the one-shard-per-
// provider placement). It fans out want plus up to two speculative
// probes, retries each per pol, and pulls from the remaining nodes as
// probes fail, stopping once want shards are in hand. valid, when
// non-nil, vets each fetched shard (digest or commitment check); a shard
// that fails vetting is discarded, attributed to its node, and another
// node is tried. want outside (0, n] means the full stripe.
//
// The result records exactly what happened: which shards arrived
// (indexed by node), how many, which were discarded by validation, and
// the per-node cause of every miss. Callers deciding whether to decode
// MUST compare result.Fetched against their threshold.
func (c *Cluster) FetchStripe(object string, n, want int, pol RetryPolicy, valid func(index int, data []byte) bool) *StripeResult {
	return c.FetchStripeCtx(context.Background(), object, n, want, pol, valid)
}

// FetchStripeCtx is FetchStripe joined into the context's trace (when
// one is ambient — the cluster never roots traces itself). The whole
// read becomes a "cluster.fetch" span; every probe attempt is a
// "cluster.probe" child carrying node/shard attributes, its terminal
// cause as a typed event (node.down, node.transient, shard.missing,
// shard.discarded), and — via RetryTransientCtx — each backoff sleep it
// paid. Probe spans are created on the fan-out goroutines; the tracer is
// built for exactly this (sibling spans on concurrent goroutines).
func (c *Cluster) FetchStripeCtx(ctx context.Context, object string, n, want int, pol RetryPolicy, valid func(index int, data []byte) bool) *StripeResult {
	return c.FetchChunkStripeCtx(ctx, object, 0, n, want, pol, valid)
}

// FetchChunkStripeCtx is FetchStripeCtx addressing one chunk of a
// pipeline-written object: shard i of the chunk's stripe is fetched from
// node i. Chunk 0 is the whole-object stripe for unchunked writes.
func (c *Cluster) FetchChunkStripeCtx(ctx context.Context, object string, chunk, n, want int, pol RetryPolicy, valid func(index int, data []byte) bool) *StripeResult {
	res := &StripeResult{}
	if n <= 0 {
		return res
	}
	if want <= 0 || want > n {
		want = n
	}
	fctx, fsp := trace.Child(ctx, "cluster.fetch",
		trace.Str("object", object), trace.Int("chunk", chunk), trace.Int("n", n), trace.Int("want", want))
	start := time.Now()
	m := c.metrics
	probes := want + 2
	if probes > n {
		probes = n
	}
	res.Shards = make([][]byte, n)
	var (
		mu   sync.Mutex
		next int
	)
	var wg sync.WaitGroup
	wg.Add(probes)
	for w := 0; w < probes; w++ {
		go func() {
			defer wg.Done()
			for {
				// Cancellation checkpoint between probe waves: a
				// disconnected caller must not keep burning probes,
				// retries, and injected latency across the remaining
				// nodes (GetRetryCtx below cuts the in-flight probe's
				// backoff short; this stops the next one from starting).
				if ctx.Err() != nil {
					return
				}
				mu.Lock()
				if res.Fetched >= want || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				m.probedAt(i)
				pctx, psp := trace.Child(fctx, "cluster.probe",
					trace.Int("node", i), trace.Int("shard", i))
				sh, err := c.GetRetryCtx(pctx, i, ShardKey{Object: object, Index: i, Chunk: chunk}, pol)
				if err == nil && valid != nil && !valid(i, sh.Data) {
					err = fmt.Errorf("%w: node %d %s[%d]", ErrShardInvalid, i, object, i)
					m.discardedAt(i)
				}
				switch {
				case err == nil:
					psp.SetAttrs(trace.Int("bytes", len(sh.Data)))
				case errors.Is(err, ErrShardInvalid):
					psp.Event("shard.discarded", trace.Int("node", i))
				case errors.Is(err, ErrNodeDown):
					psp.Event("node.down", trace.Int("node", i))
				case errors.Is(err, ErrTransient):
					psp.Event("node.transient", trace.Int("node", i))
				case errors.Is(err, ErrNoSuchShard):
					psp.Event("shard.missing", trace.Int("node", i))
				}
				psp.End(err)
				mu.Lock()
				switch {
				case err != nil:
					res.Failures = append(res.Failures, NodeFailure{Node: i, Err: err})
					if errors.Is(err, ErrShardInvalid) {
						res.Discarded = append(res.Discarded, i)
					}
				case res.Shards[i] == nil:
					res.Shards[i] = sh.Data
					res.Fetched++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil && res.Fetched < want {
		res.Canceled = retryAbort(ctx)
	}
	sort.Ints(res.Discarded)
	sort.Slice(res.Failures, func(a, b int) bool { return res.Failures[a].Node < res.Failures[b].Node })
	m.fetchNs.Observe(float64(time.Since(start).Nanoseconds()))
	fsp.SetAttrs(trace.Int("fetched", res.Fetched), trace.Int("discarded", len(res.Discarded)))
	switch {
	case res.Canceled != nil:
		fsp.Event("fetch.canceled", trace.Int("got", res.Fetched), trace.Int("want", want))
	case res.Fetched < want:
		m.short.Inc()
		fsp.Event("stripe.short", trace.Int("got", res.Fetched), trace.Int("want", want))
	case res.Degraded():
		m.degraded.Inc()
	default:
		m.full.Inc()
	}
	fsp.End(res.Canceled)
	return res
}
