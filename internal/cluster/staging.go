package cluster

import (
	"fmt"
	"time"
)

// Staged writes: the cluster-side half of the vault's stage-then-commit
// protocol. A writer stages every shard of an object version under a
// stage token, then either commits the whole set — an in-memory key swap
// that cannot fail partway — or aborts, dropping the staged bytes. A
// crashed or failed multi-shard write therefore never leaves committed
// shards behind: the live shard set always holds exactly one encoding of
// each object.

// stagedShard is one shard parked in a node's staging area.
type stagedShard struct {
	stage string
	sh    Shard
}

// PutStaged writes a shard into the node's staging area under the stage
// token. It moves real bytes — the same fault plan, availability check
// and traffic metering as Put apply — but the shard stays invisible to
// Get until CommitStage. Re-staging the same key under the same token
// overwrites (so transient-error retries are idempotent); staging a key
// already held by a different token returns ErrDuplicateKey, refusing to
// commit over a foreign stage.
func (c *Cluster) PutStaged(nodeID int, stage string, key ShardKey, data []byte) error {
	start := time.Now()
	err := c.putStaged(nodeID, stage, key, data)
	m := c.metrics
	m.putNs.Observe(float64(time.Since(start).Nanoseconds()))
	if err != nil {
		m.stagedErr.Inc()
		return err
	}
	m.stagedOK.Inc()
	m.bytesIn.Add(int64(len(data)))
	return nil
}

func (c *Cluster) putStaged(nodeID int, stage string, key ShardKey, data []byte) error {
	n, err := c.Node(nodeID)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.Online {
		return fmt.Errorf("%w: node %d", ErrNodeDown, nodeID)
	}
	if err := c.injectFault(n, false, key); err != nil {
		return err
	}
	if prev, ok := n.staged[key]; ok && prev.stage != stage {
		return fmt.Errorf("%w: node %d %v staged by %q", ErrDuplicateKey, nodeID, key, prev.stage)
	}
	cp := append([]byte(nil), data...)
	c.bytesMoved.Add(int64(len(data)))
	c.puts.Add(1)
	if n.staged == nil {
		n.staged = make(map[ShardKey]stagedShard)
	}
	n.staged[key] = stagedShard{stage: stage, sh: Shard{Key: key, Epoch: c.Epoch(), Data: cp}}
	n.bytesIn.Add(int64(len(data)))
	return nil
}

// CommitStage atomically promotes every shard staged under the token
// into the live shard set, across all nodes, replacing any previous
// version of each key. Commit is metadata-only — the bytes already moved
// at stage time — so it succeeds even for nodes that went offline after
// staging, and no fault plan applies. Every shard in the stage is
// stamped with the epoch current at commit time: a committed stripe is
// never mixed-epoch, even when AdvanceEpoch races the staging writes.
// Returns the number of shards committed.
func (c *Cluster) CommitStage(stage string) int {
	c.metrics.commits.Inc()
	epoch := c.Epoch()
	committed := 0
	for _, n := range c.nodes {
		n.mu.Lock()
		for key, st := range n.staged {
			if st.stage != stage {
				continue
			}
			st.sh.Epoch = epoch
			n.shards[key] = st.sh
			delete(n.staged, key)
			committed++
		}
		n.mu.Unlock()
	}
	return committed
}

// AbortStage drops every shard staged under the token, across all nodes.
// Like CommitStage it is metadata-only and always succeeds. Returns the
// number of shards dropped.
func (c *Cluster) AbortStage(stage string) int {
	c.metrics.aborts.Inc()
	dropped := 0
	for _, n := range c.nodes {
		n.mu.Lock()
		for key, st := range n.staged {
			if st.stage != stage {
				continue
			}
			delete(n.staged, key)
			dropped++
		}
		n.mu.Unlock()
	}
	return dropped
}

// StagedCount returns the number of shards currently parked in staging
// areas across the cluster (diagnostics: a nonzero steady-state value
// means a writer leaked a stage).
func (c *Cluster) StagedCount() int {
	total := 0
	for _, n := range c.nodes {
		n.mu.Lock()
		total += len(n.staged)
		n.mu.Unlock()
	}
	return total
}
