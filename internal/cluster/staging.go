package cluster

import (
	"context"
	"fmt"
	"time"
)

// Staged writes: the cluster-side half of the vault's stage-then-commit
// protocol. A writer stages every shard of an object version under a
// stage token, then either commits the whole set or aborts, dropping the
// staged bytes. Commit atomicity is the backend's contract (one key swap
// under locks in memory; one fsynced WAL record on disk — see
// internal/store), so a crashed or failed multi-shard write never leaves
// a partial stripe behind: the live shard set always holds exactly one
// encoding of each object.

// PutStaged writes a shard into the node's staging area under the stage
// token. It moves real bytes — the same fault plan, availability check
// and traffic metering as Put apply — but the shard stays invisible to
// Get until CommitStage. Re-staging the same key under the same token
// overwrites (so transient-error retries are idempotent); staging a key
// already held by a different token returns ErrDuplicateKey, refusing to
// commit over a foreign stage.
func (c *Cluster) PutStaged(nodeID int, stage string, key ShardKey, data []byte) error {
	return c.PutStagedCtx(context.Background(), nodeID, stage, key, data)
}

// PutStagedCtx is PutStaged with cancellation through the fault plan's
// injected latency — the variant the vault's staged dispersal uses so a
// cancelled writer stops paying per-node latency mid-stripe.
func (c *Cluster) PutStagedCtx(ctx context.Context, nodeID int, stage string, key ShardKey, data []byte) error {
	start := time.Now()
	err := c.putStaged(ctx, nodeID, stage, key, data)
	m := c.metrics
	m.putNs.Observe(float64(time.Since(start).Nanoseconds()))
	if err != nil {
		m.stagedErr.Inc()
		return err
	}
	m.stagedOK.Inc()
	m.bytesIn.Add(int64(len(data)))
	return nil
}

func (c *Cluster) putStaged(ctx context.Context, nodeID int, stage string, key ShardKey, data []byte) error {
	n, err := c.Node(nodeID)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.Online {
		return fmt.Errorf("%w: node %d", ErrNodeDown, nodeID)
	}
	if err := c.injectFault(ctx, n, false, key); err != nil {
		return err
	}
	if owner, ok := n.st.StagedOwner(key); ok && owner != stage {
		return fmt.Errorf("%w: node %d %v staged by %q", ErrDuplicateKey, nodeID, key, owner)
	}
	if err := n.st.Stage(stage, Shard{Key: key, Epoch: c.Epoch(), Data: data}); err != nil {
		return err
	}
	c.bytesMoved.Add(int64(len(data)))
	c.puts.Add(1)
	n.bytesIn.Add(int64(len(data)))
	return nil
}

// CommitStage atomically promotes every shard staged under the token
// into the live shard set, across all nodes, replacing any previous
// version of each key. Commit is metadata-only w.r.t. the fault plan —
// the bytes already moved at stage time — so it succeeds even for nodes
// that went offline after staging. Every shard in the stage is stamped
// with the epoch current at commit time: a committed stripe is never
// mixed-epoch, even when AdvanceEpoch races the staging writes. On the
// disk backend the commit record's fsync is the commit point, and an
// error (I/O failure, injected crash) means nothing was promoted —
// recovery at the next Open decides from the WAL. Returns the number of
// shards committed.
func (c *Cluster) CommitStage(stage string) (int, error) {
	c.metrics.commits.Inc()
	n, err := c.backend.CommitStage(stage, c.Epoch())
	if err != nil {
		return n, fmt.Errorf("cluster: commit stage %q: %w", stage, err)
	}
	return n, nil
}

// AbortStage drops every shard staged under the token, across all nodes.
// Metadata-only, like CommitStage. Returns the number of shards dropped.
func (c *Cluster) AbortStage(stage string) (int, error) {
	c.metrics.aborts.Inc()
	n, err := c.backend.AbortStage(stage)
	if err != nil {
		return n, fmt.Errorf("cluster: abort stage %q: %w", stage, err)
	}
	return n, nil
}

// StagedCount returns the number of shards currently parked in staging
// areas across the cluster (diagnostics: a nonzero steady-state value
// means a writer leaked a stage).
func (c *Cluster) StagedCount() int {
	total := 0
	for _, n := range c.nodes {
		total += n.st.StagedCount()
	}
	return total
}
