// Package commit implements the two commitment schemes the paper
// contrasts in §3.3.
//
// A hash commitment C = SHA-256(tag ‖ r ‖ m) is computationally hiding and
// computationally binding: cheap, but a future break of the hash function
// retroactively exposes the committed data — unacceptable inside a
// timestamp chain that must keep archival data confidential for decades.
//
// A Pedersen commitment C = g^m · h^r over a prime-order group is
// *information-theoretically* hiding (every C is consistent with every
// message, for exactly one r each) and computationally binding (opening
// two ways yields log_g h). LINCOS swaps hash commitments for Pedersen
// commitments inside its timestamp chains precisely so that long-term
// integrity evidence never weakens long-term confidentiality; the tstamp
// package in this repository does the same.
package commit

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"

	"securearchive/internal/group"
)

// Errors returned by this package.
var (
	ErrVerifyFailed = errors.New("commit: verification failed")
	ErrMessageSize  = errors.New("commit: message exceeds scalar capacity")
)

const hashTag = "securearchive/commit/sha256 v1"

// HashCommitment is a computationally hiding, computationally binding
// commitment: C = SHA-256(tag ‖ r ‖ m) with a 32-byte random opening r.
type HashCommitment struct {
	Digest [sha256.Size]byte
}

// HashOpening is the decommitment for a HashCommitment.
type HashOpening struct {
	R       [32]byte
	Message []byte
}

// CommitHash commits to message with fresh randomness from rnd.
func CommitHash(message []byte, rnd io.Reader) (HashCommitment, HashOpening, error) {
	var op HashOpening
	if _, err := io.ReadFull(rnd, op.R[:]); err != nil {
		return HashCommitment{}, HashOpening{}, fmt.Errorf("commit: reading randomness: %w", err)
	}
	op.Message = append([]byte(nil), message...)
	return HashCommitment{Digest: hashCommitDigest(op.R[:], op.Message)}, op, nil
}

// VerifyHash checks an opening against a commitment.
func VerifyHash(c HashCommitment, op HashOpening) error {
	want := hashCommitDigest(op.R[:], op.Message)
	if !hmac.Equal(want[:], c.Digest[:]) {
		return ErrVerifyFailed
	}
	return nil
}

func hashCommitDigest(r, m []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(hashTag))
	h.Write(r)
	var lenBuf [8]byte
	for i, n := 0, len(m); i < 8; i++ {
		lenBuf[i] = byte(n >> (8 * i))
	}
	h.Write(lenBuf[:])
	h.Write(m)
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Pedersen is a commitment scheme over a fixed group. The zero value is
// unusable; construct with NewPedersen.
type Pedersen struct {
	G *group.Group
}

// NewPedersen returns a Pedersen scheme over the given group.
func NewPedersen(g *group.Group) *Pedersen {
	return &Pedersen{G: g}
}

// PedersenCommitment is C = g^m · h^r mod p.
type PedersenCommitment struct {
	C *big.Int
}

// PedersenOpening is the decommitment (m, r), both scalars in Z_q.
type PedersenOpening struct {
	M *big.Int
	R *big.Int
}

// Commit commits to the scalar m with fresh randomness.
func (p *Pedersen) Commit(m *big.Int, rnd io.Reader) (PedersenCommitment, PedersenOpening, error) {
	r, err := p.G.RandScalar(rnd)
	if err != nil {
		return PedersenCommitment{}, PedersenOpening{}, err
	}
	return p.CommitWith(m, r), PedersenOpening{M: new(big.Int).Set(m), R: r}, nil
}

// CommitWith computes the commitment deterministically from (m, r).
func (p *Pedersen) CommitWith(m, r *big.Int) PedersenCommitment {
	mm := new(big.Int).Mod(m, p.G.Q)
	rr := new(big.Int).Mod(r, p.G.Q)
	c := p.G.Mul(p.G.ExpG(mm), p.G.ExpH(rr))
	return PedersenCommitment{C: c}
}

// CommitBytes commits to a byte message by embedding it as a scalar.
// The message must fit in the group's scalar capacity.
func (p *Pedersen) CommitBytes(message []byte, rnd io.Reader) (PedersenCommitment, PedersenOpening, error) {
	if len(message) > p.G.ScalarCapacity() {
		return PedersenCommitment{}, PedersenOpening{}, fmt.Errorf("%w: %d > %d", ErrMessageSize, len(message), p.G.ScalarCapacity())
	}
	return p.Commit(new(big.Int).SetBytes(message), rnd)
}

// Verify checks an opening against a commitment.
func (p *Pedersen) Verify(c PedersenCommitment, op PedersenOpening) error {
	if c.C == nil || op.M == nil || op.R == nil {
		return ErrVerifyFailed
	}
	want := p.CommitWith(op.M, op.R)
	if want.C.Cmp(c.C) != 0 {
		return ErrVerifyFailed
	}
	return nil
}

// VerifyBytes checks an opening whose message is the byte string message.
func (p *Pedersen) VerifyBytes(c PedersenCommitment, message []byte, op PedersenOpening) error {
	if op.M == nil || new(big.Int).SetBytes(message).Cmp(op.M) != 0 {
		return ErrVerifyFailed
	}
	return p.Verify(c, op)
}

// Add returns the homomorphic sum of two commitments:
// Commit(m1, r1) · Commit(m2, r2) = Commit(m1+m2, r1+r2). This additive
// homomorphism is what makes Pedersen commitments compose with linear
// secret sharing in Pedersen VSS.
func (p *Pedersen) Add(a, b PedersenCommitment) PedersenCommitment {
	return PedersenCommitment{C: p.G.Mul(a.C, b.C)}
}

// AddOpenings combines two openings to match Add of their commitments.
func (p *Pedersen) AddOpenings(a, b PedersenOpening) PedersenOpening {
	m := new(big.Int).Add(a.M, b.M)
	m.Mod(m, p.G.Q)
	r := new(big.Int).Add(a.R, b.R)
	r.Mod(r, p.G.Q)
	return PedersenOpening{M: m, R: r}
}

// Equal reports whether two commitments are identical.
func (c PedersenCommitment) Equal(o PedersenCommitment) bool {
	if c.C == nil || o.C == nil {
		return c.C == o.C
	}
	return c.C.Cmp(o.C) == 0
}

// Bytes serialises the commitment value.
func (c PedersenCommitment) Bytes() []byte {
	if c.C == nil {
		return nil
	}
	return c.C.Bytes()
}

// PedersenCommitmentFromBytes deserialises a commitment value.
func PedersenCommitmentFromBytes(b []byte) PedersenCommitment {
	return PedersenCommitment{C: new(big.Int).SetBytes(b)}
}

// EqualBytes is a constant-time comparison helper for hash commitments.
func (c HashCommitment) EqualBytes(b []byte) bool {
	return len(b) == sha256.Size && bytes.Equal(c.Digest[:], b)
}
