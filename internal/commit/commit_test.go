package commit

import (
	"crypto/rand"
	"errors"
	"math/big"
	"testing"

	"securearchive/internal/group"
)

func TestHashCommitRoundTrip(t *testing.T) {
	c, op, err := CommitHash([]byte("archive record"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyHash(c, op); err != nil {
		t.Fatal(err)
	}
}

func TestHashCommitBinding(t *testing.T) {
	c, op, _ := CommitHash([]byte("original"), rand.Reader)
	forged := op
	forged.Message = []byte("forged!!")
	if err := VerifyHash(c, forged); !errors.Is(err, ErrVerifyFailed) {
		t.Fatal("forged message accepted")
	}
	badR := op
	badR.R[0] ^= 1
	if err := VerifyHash(c, badR); !errors.Is(err, ErrVerifyFailed) {
		t.Fatal("wrong randomness accepted")
	}
}

func TestHashCommitHiding(t *testing.T) {
	// Same message, two commitments: digests must differ (randomised).
	c1, _, _ := CommitHash([]byte("same"), rand.Reader)
	c2, _, _ := CommitHash([]byte("same"), rand.Reader)
	if c1.Digest == c2.Digest {
		t.Fatal("hash commitment is deterministic; not hiding")
	}
}

func TestHashCommitLengthAmbiguity(t *testing.T) {
	// The length framing must prevent (r, m) boundary confusion: committing
	// to "ab" and "abc" with related openings must not collide. We can't
	// force a collision, but we can at least pin that the digest covers
	// the length by checking inequality with identical prefix bytes.
	var r [32]byte
	d1 := hashCommitDigest(r[:], []byte("ab"))
	d2 := hashCommitDigest(r[:], []byte("ab\x00"))
	if d1 == d2 {
		t.Fatal("length not bound into hash commitment")
	}
}

func TestPedersenRoundTrip(t *testing.T) {
	p := NewPedersen(group.Test())
	m := big.NewInt(123456789)
	c, op, err := p.Commit(m, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(c, op); err != nil {
		t.Fatal(err)
	}
}

func TestPedersenBytesRoundTrip(t *testing.T) {
	p := NewPedersen(group.Test())
	msg := []byte("a 28-byte archival secretXYZ")
	c, op, err := p.CommitBytes(msg, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.VerifyBytes(c, msg, op); err != nil {
		t.Fatal(err)
	}
	if err := p.VerifyBytes(c, []byte("a 28-byte archival secretXYY"), op); !errors.Is(err, ErrVerifyFailed) {
		t.Fatal("wrong message accepted")
	}
}

func TestPedersenMessageTooLarge(t *testing.T) {
	p := NewPedersen(group.Test())
	big := make([]byte, p.G.ScalarCapacity()+1)
	if _, _, err := p.CommitBytes(big, rand.Reader); !errors.Is(err, ErrMessageSize) {
		t.Fatalf("oversized message: %v", err)
	}
}

func TestPedersenBindingRejectsWrongOpening(t *testing.T) {
	p := NewPedersen(group.Test())
	c, op, _ := p.Commit(big.NewInt(42), rand.Reader)
	bad := PedersenOpening{M: big.NewInt(43), R: op.R}
	if err := p.Verify(c, bad); !errors.Is(err, ErrVerifyFailed) {
		t.Fatal("wrong message accepted")
	}
	bad2 := PedersenOpening{M: op.M, R: new(big.Int).Add(op.R, big.NewInt(1))}
	if err := p.Verify(c, bad2); !errors.Is(err, ErrVerifyFailed) {
		t.Fatal("wrong randomness accepted")
	}
}

// TestPedersenPerfectHiding demonstrates the information-theoretic hiding
// property constructively: for a commitment to m1 with randomness r1, and
// ANY other message m2, there exists r2 with Commit(m2, r2) == C. We
// compute r2 = r1 + (m1-m2)/log_g(h)... which we cannot do without the
// dlog; instead we verify the equivalent group identity: for the Test
// group we know h = b^2 for derivable b, so instead we check statistically
// that commitments to different messages are identically distributed by
// comparing them for a shared randomness shift. Concretely we use the
// homomorphism: C(m1,r) · C(δ,0) = C(m1+δ, r), so every commitment to m1
// is also a commitment to any m2 = m1+δ under a shifted opening — i.e.
// the commitment value alone cannot pin down m.
func TestPedersenPerfectHiding(t *testing.T) {
	p := NewPedersen(group.Test())
	m1 := big.NewInt(1000)
	delta := big.NewInt(77)
	c1, op1, _ := p.Commit(m1, rand.Reader)
	// Shift: commitment to m1+δ with the SAME randomness equals c1 · g^δ.
	m2 := new(big.Int).Add(m1, delta)
	c2 := p.CommitWith(m2, op1.R)
	want := PedersenCommitment{C: p.G.Mul(c1.C, p.G.ExpG(delta))}
	if !c2.Equal(want) {
		t.Fatal("commitment distribution is not translation-invariant")
	}
}

func TestPedersenHomomorphism(t *testing.T) {
	p := NewPedersen(group.Test())
	m1, m2 := big.NewInt(11), big.NewInt(31)
	c1, o1, _ := p.Commit(m1, rand.Reader)
	c2, o2, _ := p.Commit(m2, rand.Reader)
	sumC := p.Add(c1, c2)
	sumO := p.AddOpenings(o1, o2)
	if err := p.Verify(sumC, sumO); err != nil {
		t.Fatalf("homomorphic sum fails verification: %v", err)
	}
	if sumO.M.Cmp(big.NewInt(42)) != 0 {
		t.Fatalf("opening sum m = %v, want 42", sumO.M)
	}
}

func TestPedersenSerialisation(t *testing.T) {
	p := NewPedersen(group.Test())
	c, _, _ := p.Commit(big.NewInt(5), rand.Reader)
	rt := PedersenCommitmentFromBytes(c.Bytes())
	if !c.Equal(rt) {
		t.Fatal("serialisation round trip failed")
	}
	var nilC PedersenCommitment
	if nilC.Bytes() != nil {
		t.Fatal("nil commitment serialises to non-nil")
	}
}

func TestVerifyNilSafety(t *testing.T) {
	p := NewPedersen(group.Test())
	if err := p.Verify(PedersenCommitment{}, PedersenOpening{}); !errors.Is(err, ErrVerifyFailed) {
		t.Fatal("nil commitment/opening did not fail cleanly")
	}
}

func BenchmarkPedersenCommitTestGroup(b *testing.B) {
	p := NewPedersen(group.Test())
	m := big.NewInt(123456789)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Commit(m, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashCommit4KiB(b *testing.B) {
	msg := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		if _, _, err := CommitHash(msg, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}
