package core

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"securearchive/internal/cluster"
	"securearchive/internal/obs/trace"
	"securearchive/internal/sig"
	"securearchive/internal/tstamp"
)

// Batched small-object writes: many small Puts are packed into one blob,
// encoded once, and dispersed as a single stripe — amortising the fixed
// per-put costs (integrity chain construction, per-shard staging round
// trips, commit) that dominate when objects are a few KiB. Every member
// keeps its own registry entry, id, and Get/Delete/Scrub semantics; only
// the storage representation is shared.
//
// Concurrency: members of one batch share a batchState guarded by its own
// RWMutex. The lock order is object mutex → batch mutex → stripe mutex
// (a strict extension of the vault's object → stripe order), so member
// operations on the same batch serialise at the batch lock while members
// of different batches stay fully independent.

// Batch defaults; see the corresponding Batcher options.
const (
	// DefaultBatchMaxMembers caps how many members one flush packs into a
	// single blob stripe.
	DefaultBatchMaxMembers = 64
	// DefaultBatchMaxAge bounds how long an enqueued put may wait before a
	// flush starts. The batcher drains eagerly — a new flush begins the
	// moment the previous one finishes, and a lone put flushes immediately
	// rather than lingering for company — so observed waits (the
	// vault.batch.wait_ns histogram) stay far below this bound unless
	// staging itself stalls on retries.
	DefaultBatchMaxAge = 2 * time.Millisecond
	// DefaultBatchBypassBytes routes large puts around the batcher: above
	// this size the fixed per-put costs no longer dominate and batching
	// only adds blob-decode overhead to every member read.
	DefaultBatchBypassBytes = 64 << 10
)

// batchIDPrefix namespaces the cluster object ids batch blobs are stored
// under. The prefix is reserved: user object ids should not start with it
// (member registry entries never collide — only the node-side shard keys
// would).
const batchIDPrefix = "!batch:"

// ErrBatcherClosed is returned by Batcher.Put after Close.
var ErrBatcherClosed = errors.New("core: batcher closed")

// batchState is the shared client-side state of one committed batch: the
// blob stripe's encoding metadata, the single integrity chain covering
// the blob, and the member directory. Guarded by mu; see the lock-order
// note above.
type batchState struct {
	mu sync.RWMutex
	// id is the cluster object id the blob's shards are stored under.
	id string
	// enc is the blob's encoding metadata (shards stripped — those live
	// on nodes); blobLen is len(blob), kept for bounds checks after enc
	// is renewed.
	enc     *Encoded
	blobLen int
	// chain is the one integrity chain per batch, covering the whole
	// blob; every member's vaultObject aliases it.
	chain *tstamp.Chain
	// digests are the blob stripe's per-shard digests.
	digests [][sha256.Size]byte
	// members is the directory: offsets into the blob plus per-member
	// payload digests. Indexed by vaultObject.batchIndex.
	members []batchMember
	// live counts members not yet deleted. Deleting a member only marks
	// it released — the blob keeps its bytes (no compaction) — and the
	// stripe's shards are dropped when the last member goes.
	live int
}

// batchMember locates one member's payload inside the batch blob.
type batchMember struct {
	id       string
	off, n   int
	digest   [sha256.Size]byte
	released bool
}

// Batcher packs small Puts into shared blob stripes using group commit:
// the first put to arrive while no flush is running becomes the leader,
// takes everything pending (up to MaxMembers), and flushes it as one
// blob; puts arriving during that flush wait and are taken — all of them
// — by the next leader the moment the current flush finishes. The
// thresholds are upper bounds, not timers: nothing ever waits out a
// quiet period, so a lone put costs one flush of one member.
//
// A Batcher is safe for concurrent use; Put blocks until the member's
// batch has committed (or failed). Ids must still be unique vault-wide —
// a duplicate fails that member with ErrExists without failing its
// batchmates.
type Batcher struct {
	v *Vault

	maxMembers  int
	maxAge      time.Duration
	bypassBytes int

	mu       sync.Mutex
	cond     *sync.Cond
	pending  []*pendingPut
	flushing bool
	closed   bool
}

// pendingPut is one enqueued member awaiting its batch commit. done/err
// are written under Batcher.mu (or before the done publication for
// per-member failures assigned inside the flush).
type pendingPut struct {
	id   string
	data []byte
	enq  time.Time
	done bool
	err  error
}

// BatcherOption configures NewBatcher.
type BatcherOption func(*Batcher)

// WithBatchMaxMembers caps members per flushed blob
// (DefaultBatchMaxMembers otherwise).
func WithBatchMaxMembers(n int) BatcherOption {
	return func(b *Batcher) {
		if n > 0 {
			b.maxMembers = n
		}
	}
}

// WithBatchMaxAge sets the enqueue-to-flush-start bound
// (DefaultBatchMaxAge otherwise); see the constant's note on how the
// eager drain keeps actual waits far below it.
func WithBatchMaxAge(d time.Duration) BatcherOption {
	return func(b *Batcher) {
		if d > 0 {
			b.maxAge = d
		}
	}
}

// WithBatchBypassBytes sets the size above which Put routes directly to
// the vault's plain write path (DefaultBatchBypassBytes otherwise).
func WithBatchBypassBytes(n int) BatcherOption {
	return func(b *Batcher) {
		if n > 0 {
			b.bypassBytes = n
		}
	}
}

// NewBatcher builds a small-object write batcher over the vault.
func (v *Vault) NewBatcher(opts ...BatcherOption) *Batcher {
	b := &Batcher{
		v:           v,
		maxMembers:  DefaultBatchMaxMembers,
		maxAge:      DefaultBatchMaxAge,
		bypassBytes: DefaultBatchBypassBytes,
	}
	b.cond = sync.NewCond(&b.mu)
	for _, o := range opts {
		o(b)
	}
	return b
}

// Close rejects further puts. In-flight puts complete normally (every
// pending member's goroutine is inside Put and will flush or be flushed).
func (b *Batcher) Close() error {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	return nil
}

// Put archives data under id through the batcher, blocking until the
// member's batch commits. Data larger than the bypass threshold goes
// straight to Vault.Put.
func (b *Batcher) Put(id string, data []byte) error {
	return b.PutContext(context.Background(), id, data)
}

// PutContext is Put with the flush (if this goroutine ends up leading
// one) rooted in the caller's trace.
func (b *Batcher) PutContext(ctx context.Context, id string, data []byte) error {
	if len(data) > b.bypassBytes {
		return b.v.PutContext(ctx, id, data)
	}
	p := &pendingPut{id: id, data: append([]byte(nil), data...), enq: time.Now()}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrBatcherClosed
	}
	b.pending = append(b.pending, p)
	for {
		for !p.done && b.flushing {
			b.cond.Wait()
		}
		if p.done {
			err := p.err
			b.mu.Unlock()
			b.v.obsm.batchWaitNs.Observe(float64(time.Since(p.enq).Nanoseconds()))
			return err
		}
		// Leader: take up to maxMembers from the front of the queue and
		// flush them as one blob. Our own put is in the taken batch unless
		// the queue ran longer than one blob, in which case we flush the
		// older members first and loop to lead (or wait out) the next one.
		b.flushing = true
		if len(b.pending) < b.maxMembers {
			// Cooperative gather: drop the lock and yield once so writers
			// that are runnable right now get to enqueue before the batch
			// is taken. Without this, a single-threaded scheduler would
			// run the flush below to completion against a queue of one and
			// no put would ever find company. This is not a linger — no
			// timer, no waiting for future arrivals; goroutines that are
			// not already runnable miss this batch and seed the next.
			b.mu.Unlock()
			runtime.Gosched()
			b.mu.Lock()
		}
		take := b.pending
		if len(take) > b.maxMembers {
			take = take[:b.maxMembers:b.maxMembers]
			b.pending = b.pending[b.maxMembers:]
		} else {
			b.pending = nil
		}
		b.mu.Unlock()

		ferr := b.v.putBatch(ctx, take)

		b.mu.Lock()
		for _, t := range take {
			if t.err == nil {
				t.err = ferr
			}
			t.done = true
		}
		b.flushing = false
		b.cond.Broadcast()
	}
}

// putBatch flushes one taken batch as a single blob stripe. Members whose
// id already exists get ErrExists individually (set on their pendingPut)
// without failing the batch; the returned error applies to every admitted
// member and means the whole flush rolled back.
func (v *Vault) putBatch(ctx context.Context, batch []*pendingPut) error {
	var bytes int
	for _, p := range batch {
		bytes += len(p.data)
	}
	ctx, sp := v.tracer.Start(ctx, "vault.batch.flush",
		trace.Int("members", len(batch)), trace.Int("bytes", bytes))
	err := v.flushBatch(ctx, batch)
	sp.End(err)
	return err
}

func (v *Vault) flushBatch(ctx context.Context, batch []*pendingPut) error {
	// Reserve a registry entry per member, exactly as Put does, failing
	// duplicates individually. The entries stay non-live until the blob
	// commits, so concurrent Gets treat them as absent.
	var members []*pendingPut
	var objs []*vaultObject
	for _, p := range batch {
		st := v.stripe(p.id)
		obj := &vaultObject{}
		st.mu.Lock()
		if _, ok := st.objects[p.id]; ok {
			st.mu.Unlock()
			p.err = fmt.Errorf("%w: %s", ErrExists, p.id)
			continue
		}
		st.objects[p.id] = obj
		st.mu.Unlock()
		members = append(members, p)
		objs = append(objs, obj)
	}
	if len(members) == 0 {
		return nil
	}
	rollback := func() {
		for _, p := range members {
			st := v.stripe(p.id)
			st.mu.Lock()
			delete(st.objects, p.id)
			st.mu.Unlock()
		}
	}

	ids := make([]string, len(members))
	datas := make([][]byte, len(members))
	for i, p := range members {
		ids[i] = p.id
		datas[i] = p.data
	}
	blob, offs := encodeBatchBlob(ids, datas)

	// One integrity chain and one encode for the whole blob — the
	// amortisation that makes batching pay.
	chain, err := tstamp.New(blob, v.IntegrityMode, sig.Ed25519, v.Cluster.Epoch(), v.Group, v.rnd)
	if err != nil {
		rollback()
		return err
	}
	_, esp := trace.Child(ctx, "vault.encode", trace.Int("bytes", len(blob)))
	encStart := time.Now()
	enc, err := v.Encoding.Encode(blob, v.rnd)
	esp.End(err)
	if err != nil {
		rollback()
		return err
	}
	observeRate(v.obsm.encodeMBs, len(blob), time.Since(encStart))

	bid := fmt.Sprintf("%s%d", batchIDPrefix, v.batchSeq.Add(1))
	if err := v.disperse(ctx, bid, enc); err != nil {
		rollback()
		return err
	}

	bs := &batchState{
		id: bid,
		enc: &Encoded{
			Scheme:       enc.Scheme,
			PlainLen:     enc.PlainLen,
			ClientSecret: enc.ClientSecret,
			PublicMeta:   enc.PublicMeta,
		},
		blobLen: len(blob),
		chain:   chain,
		digests: ShardDigests(enc.Shards),
		members: make([]batchMember, len(members)),
		live:    len(members),
	}
	for i, p := range members {
		bs.members[i] = batchMember{
			id:     p.id,
			off:    offs[i],
			n:      len(p.data),
			digest: sha256.Sum256(p.data),
		}
		obj := objs[i]
		obj.enc = &Encoded{Scheme: enc.Scheme, PlainLen: len(p.data)}
		obj.chain = chain
		obj.batch = bs
		obj.batchIndex = i
		obj.live.Store(true)
		v.cacheInvalidate(p.id) // defensive, as in put
		v.obsm.putBytes.Observe(float64(len(p.data)))
	}
	v.obsm.batchPuts.Add(int64(len(members)))
	v.obsm.batchFlushes.Inc()
	v.obsm.batchMembers.Observe(float64(len(members)))
	return nil
}

// fetchBatchBlob performs the degraded k-of-n read of a batch's blob
// stripe, decodes it, and verifies it against the batch's integrity
// chain. Callers hold the batch lock (read or write); memberID is the
// member whose operation triggered the read, used for dirty marking.
func (v *Vault) fetchBatchBlob(ctx context.Context, memberID string, bs *batchState) ([]byte, error) {
	sp := trace.FromContext(ctx)
	n, min := v.Encoding.Shards()
	res := v.Cluster.FetchStripeCtx(ctx, bs.id, n, min, v.retry, func(i int, data []byte) bool {
		return i < len(bs.digests) && sha256.Sum256(data) == bs.digests[i]
	})
	if len(res.Discarded) > 0 {
		v.obsm.readDiscarded.Add(int64(len(res.Discarded)))
		v.markDirty(memberID)
		sp.Event("read.dirty", trace.Int("discarded", len(res.Discarded)))
	}
	if res.Canceled != nil {
		return nil, fmt.Errorf("core: get %s: %w", memberID, res.Canceled)
	}
	if res.Fetched < min {
		v.obsm.readInsufficient.Inc()
		sp.Event("read.insufficient", trace.Int("got", res.Fetched), trace.Int("want", min))
		return nil, &DegradedError{Object: memberID, Got: res.Fetched, Want: min, Failures: res.Failures}
	}
	if res.Degraded() {
		v.obsm.readDegraded.Inc()
	}
	_, dsp := trace.Child(ctx, "vault.decode", trace.Int("shards", res.Fetched))
	decStart := time.Now()
	blob, err := v.Encoding.Decode(&Encoded{
		Scheme:       bs.enc.Scheme,
		PlainLen:     bs.enc.PlainLen,
		Shards:       res.Shards,
		ClientSecret: bs.enc.ClientSecret,
		PublicMeta:   bs.enc.PublicMeta,
	})
	dsp.End(err)
	if err != nil {
		return nil, fmt.Errorf("core: decode batch %s: %w", bs.id, err)
	}
	observeRate(v.obsm.decodeMBs, len(blob), time.Since(decStart))
	_, vsp := trace.Child(ctx, "vault.verify")
	err = bs.chain.VerifyData(blob)
	vsp.End(err)
	if err != nil {
		return nil, fmt.Errorf("core: integrity chain rejects batch %s: %w", bs.id, err)
	}
	return blob, nil
}

// readBatchMember is the Get body for a batch member: fetch and verify
// the whole blob, then slice out and digest-check this member's payload.
// Callers hold obj.mu and have checked liveness.
func (v *Vault) readBatchMember(ctx context.Context, id string, obj *vaultObject) ([]byte, error) {
	bs := obj.batch
	bs.mu.RLock()
	defer bs.mu.RUnlock()
	blob, err := v.fetchBatchBlob(ctx, id, bs)
	if err != nil {
		return nil, err
	}
	m := &bs.members[obj.batchIndex]
	if m.off+m.n > len(blob) {
		return nil, fmt.Errorf("core: batch %s blob truncated for member %s", bs.id, id)
	}
	data := blob[m.off : m.off+m.n]
	if sha256.Sum256(data) != m.digest {
		return nil, fmt.Errorf("core: batch member %s digest mismatch", id)
	}
	v.obsm.getBytes.Observe(float64(len(data)))
	// Copy so the caller's slice doesn't pin the whole decoded blob.
	return append([]byte(nil), data...), nil
}

// releaseBatchMember is the Delete body for a batch member: the member is
// only marked released — its bytes stay in the blob (no compaction) — and
// the blob stripe's shards are dropped when the last member goes. Callers
// hold obj.mu in write mode and have already cleared liveness.
func (v *Vault) releaseBatchMember(id string, obj *vaultObject) {
	bs := obj.batch
	bs.mu.Lock()
	defer bs.mu.Unlock()
	m := &bs.members[obj.batchIndex]
	if m.released {
		return
	}
	m.released = true
	bs.live--
	if bs.live > 0 {
		return
	}
	// The blob's digests record the stripe width it was actually written
	// with; the vault's current encoding may have been reconfigured since.
	for i := 0; i < len(bs.digests); i++ {
		v.Cluster.Delete(i, cluster.ShardKey{Object: bs.id, Index: i})
	}
}

// renewBatchMember is the RenewShares body for a batch member: the whole
// blob re-encodes with fresh randomness and rewrites its stripe through
// stage-then-commit, renewing every batchmate in the same stroke. Callers
// hold obj.mu in write mode.
func (v *Vault) renewBatchMember(ctx context.Context, id string, obj *vaultObject) error {
	bs := obj.batch
	bs.mu.Lock()
	defer bs.mu.Unlock()
	blob, err := v.fetchBatchBlob(ctx, id, bs)
	if err != nil {
		return err
	}
	_, esp := trace.Child(ctx, "vault.encode", trace.Int("bytes", len(blob)))
	enc, err := v.Encoding.Encode(blob, v.rnd)
	esp.End(err)
	if err != nil {
		return err
	}
	if err := v.disperse(ctx, bs.id, enc); err != nil {
		return fmt.Errorf("core: renewal of %s rolled back: %w", bs.id, err)
	}
	// The blob rewrite leaves every member's plaintext unchanged, but the
	// mutator rule is unconditional: drop the renewing member's entry.
	// (Batchmates' entries stay — their bytes and their stripe's epoch
	// semantics are untouched by construction; only this member's write
	// lock is held.)
	v.cacheInvalidate(id)
	bs.enc.ClientSecret = enc.ClientSecret
	bs.enc.PublicMeta = enc.PublicMeta
	bs.enc.PlainLen = enc.PlainLen
	oldWidth := len(bs.digests)
	bs.digests = ShardDigests(enc.Shards)
	// A narrower re-encode leaves stale high-index shards behind; drop them.
	for i := len(enc.Shards); i < oldWidth; i++ {
		v.Cluster.Delete(i, cluster.ShardKey{Object: bs.id, Index: i})
	}
	return nil
}

// scrubBatchMember is the Scrub body for a batch member: the audit and
// any repair operate on the whole blob stripe (one member's damage IS the
// batch's damage). Callers hold obj.mu in write mode. The report carries
// the member's id; batchmates scrubbed afterwards find the stripe clean.
func (v *Vault) scrubBatchMember(ctx context.Context, id string, obj *vaultObject) (*ScrubReport, error) {
	bs := obj.batch
	bs.mu.Lock()
	defer bs.mu.Unlock()
	n, _ := v.Encoding.Shards()
	res := v.Cluster.FetchStripeCtx(ctx, bs.id, n, n, v.retry, nil)
	if res.Canceled != nil {
		return nil, fmt.Errorf("core: scrub %s: %w", id, res.Canceled)
	}
	shards := res.Shards
	healthy, missing, corrupt := CheckShards(shards, bs.digests)
	rep := &ScrubReport{Object: id, Healthy: healthy, Missing: missing, Corrupt: corrupt}
	if rep.Clean() {
		v.clearDirty(id)
		return rep, nil
	}
	for _, i := range corrupt {
		shards[i] = nil
	}
	_, dsp := trace.Child(ctx, "vault.decode", trace.Int("shards", len(healthy)))
	blob, err := v.Encoding.Decode(&Encoded{
		Scheme:       bs.enc.Scheme,
		PlainLen:     bs.enc.PlainLen,
		Shards:       shards,
		ClientSecret: bs.enc.ClientSecret,
		PublicMeta:   bs.enc.PublicMeta,
	})
	dsp.End(err)
	if err != nil {
		return rep, fmt.Errorf("core: scrub %s: decode batch %s from %d healthy shards: %w", id, bs.id, len(healthy), err)
	}
	_, vsp := trace.Child(ctx, "vault.verify")
	err = bs.chain.VerifyData(blob)
	vsp.End(err)
	if err != nil {
		return rep, fmt.Errorf("core: scrub %s: integrity chain rejects recovered batch %s: %w", id, bs.id, err)
	}
	_, esp := trace.Child(ctx, "vault.encode", trace.Int("bytes", len(blob)))
	enc, err := v.Encoding.Encode(blob, v.rnd)
	esp.End(err)
	if err != nil {
		return rep, fmt.Errorf("core: scrub %s: re-encode batch %s: %w", id, bs.id, err)
	}
	if err := v.disperse(ctx, bs.id, enc); err != nil {
		return rep, fmt.Errorf("core: scrub %s: rewrite rolled back: %w", id, err)
	}
	v.cacheInvalidate(id) // see the renewBatchMember note
	bs.enc.ClientSecret = enc.ClientSecret
	bs.enc.PublicMeta = enc.PublicMeta
	bs.enc.PlainLen = enc.PlainLen
	bs.digests = ShardDigests(enc.Shards)
	rep.Repaired = true
	v.obsm.scrubRepairs.Inc()
	trace.FromContext(ctx).Event("scrub.repaired",
		trace.Int("missing", len(rep.Missing)), trace.Int("corrupt", len(rep.Corrupt)))
	v.clearDirty(id)
	return rep, nil
}
