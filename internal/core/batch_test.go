package core

import (
	"bytes"
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	mrand "math/rand"
	"sync"
	"testing"
	"time"

	"securearchive/internal/cluster"
	"securearchive/internal/sig"
)

// flushMembers drives one deterministic multi-member flush through the
// vault-side batch path (the Batcher's leader election makes batch
// composition scheduling-dependent; tests of member semantics want a
// known batch). It returns the members' payloads keyed by id.
func flushMembers(t *testing.T, v *Vault, n int) map[string][]byte {
	t.Helper()
	batch := make([]*pendingPut, n)
	want := make(map[string][]byte, n)
	for i := range batch {
		data := make([]byte, 100+i*37)
		rand.Read(data)
		id := fmt.Sprintf("m%d", i)
		batch[i] = &pendingPut{id: id, data: data, enq: time.Now()}
		want[id] = data
	}
	if err := v.putBatch(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	for _, p := range batch {
		if p.err != nil {
			t.Fatalf("member %s: %v", p.id, p.err)
		}
	}
	return want
}

func TestBatchMembersRoundTrip(t *testing.T) {
	v, c := testVault(t, Erasure{K: 4, N: 8})
	want := flushMembers(t, v, 8)
	if got := len(v.Objects()); got != 8 {
		t.Fatalf("objects = %d, want 8", got)
	}
	for id, data := range want {
		got, err := v.Get(id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("get %s: payload mismatch", id)
		}
	}
	if got := c.StagedCount(); got != 0 {
		t.Fatalf("%d shards left in staging", got)
	}
}

func TestBatchDuplicateFailsOnlyThatMember(t *testing.T) {
	v, _ := testVault(t, Erasure{K: 4, N: 8})
	if err := v.Put("taken", []byte("already here")); err != nil {
		t.Fatal(err)
	}
	batch := []*pendingPut{
		{id: "fresh", data: []byte("new member")},
		{id: "taken", data: []byte("usurper")},
		{id: "taken", data: []byte("usurper 2")}, // duplicate within the batch too
	}
	if err := v.putBatch(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	if batch[0].err != nil {
		t.Fatalf("fresh member failed: %v", batch[0].err)
	}
	for _, p := range batch[1:] {
		if !errors.Is(p.err, ErrExists) {
			t.Fatalf("duplicate member: got %v, want ErrExists", p.err)
		}
	}
	got, err := v.Get("taken")
	if err != nil || !bytes.Equal(got, []byte("already here")) {
		t.Fatalf("original clobbered: %v", err)
	}
	if got, err := v.Get("fresh"); err != nil || !bytes.Equal(got, []byte("new member")) {
		t.Fatalf("fresh member: %v", err)
	}
}

// TestBatchDeleteFreesStripeWhenEmpty deletes members one by one: the
// blob stripe must survive (un-compacted) until the last member goes,
// then disappear from the nodes entirely.
func TestBatchDeleteFreesStripeWhenEmpty(t *testing.T) {
	v, c := testVault(t, Erasure{K: 4, N: 8})
	want := flushMembers(t, v, 4)
	if err := v.Delete("m0"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Get("m0"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted member still readable: %v", err)
	}
	// Surviving members read fine from the un-compacted blob.
	for _, id := range []string{"m1", "m2", "m3"} {
		got, err := v.Get(id)
		if err != nil || !bytes.Equal(got, want[id]) {
			t.Fatalf("survivor %s after delete: %v", id, err)
		}
	}
	if c.StoredBytes() == 0 {
		t.Fatal("blob stripe freed while members remain")
	}
	for _, id := range []string{"m1", "m2", "m3"} {
		if err := v.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.StoredBytes(); got != 0 {
		t.Fatalf("empty batch left %d bytes on nodes", got)
	}
}

// TestBatchScrubRepairsBlobStripe rots one blob shard: scrubbing any
// member must repair the shared stripe; a batchmate's scrub then finds
// it clean.
func TestBatchScrubRepairsBlobStripe(t *testing.T) {
	v, c := testVault(t, Erasure{K: 4, N: 8})
	want := flushMembers(t, v, 3)
	// The blob's cluster id is internal; reach it through member 0.
	bs := v.lookup("m0").batch
	c.Put(3, cluster.ShardKey{Object: bs.id, Index: 3}, []byte("rot"))
	rep, err := v.Scrub("m0")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Repaired || len(rep.Corrupt) != 1 || rep.Corrupt[0] != 3 {
		t.Fatalf("repair report: repaired=%v corrupt=%v", rep.Repaired, rep.Corrupt)
	}
	rep2, err := v.Scrub("m1")
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Clean() {
		t.Fatal("batchmate scrub found damage after repair")
	}
	for id, data := range want {
		got, err := v.Get(id)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("member %s after repair: %v", id, err)
		}
	}
}

// TestBatchRenewSharesRenewsWholeBlob renews through one member and
// expects the shared stripe rewritten with every batchmate intact. Uses
// a randomized encoding — plain erasure re-encodes deterministically, so
// its renewal legitimately reproduces identical shards.
func TestBatchRenewSharesRenewsWholeBlob(t *testing.T) {
	v, c := testVault(t, SecretSharing{T: 4, N: 8})
	want := flushMembers(t, v, 3)
	bs := v.lookup("m1").batch
	before, _ := c.Get(0, cluster.ShardKey{Object: bs.id, Index: 0})
	if err := v.RenewShares("m1"); err != nil {
		t.Fatal(err)
	}
	after, _ := c.Get(0, cluster.ShardKey{Object: bs.id, Index: 0})
	if bytes.Equal(before.Data, after.Data) {
		t.Fatal("blob shard unchanged after renewal")
	}
	for id, data := range want {
		got, err := v.Get(id)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("member %s after renewal: %v", id, err)
		}
	}
}

// TestBatchMemberIntegrityOps exercises the chain surface members share:
// renewal through one member is visible through its batchmates, and
// evidence exports work.
func TestBatchMemberIntegrityOps(t *testing.T) {
	v, _ := testVault(t, Erasure{K: 4, N: 8})
	flushMembers(t, v, 2)
	if err := v.RenewIntegrity("m0", sig.ECDSAP256); err != nil {
		t.Fatal(err)
	}
	if got := v.Chain("m1").Len(); got != 2 {
		t.Fatalf("batchmate chain length %d, want 2 (shared chain)", got)
	}
	if _, err := v.ExportEvidence("m1"); err != nil {
		t.Fatal(err)
	}
	if cost := v.StorageCost("m0"); cost < 1.9 || cost > 2.1 {
		t.Fatalf("member storage cost %.2f, want ~2 (8/4 erasure)", cost)
	}
}

// TestBatchDegradedMemberRead reads members with nodes down to the
// decode minimum, then past it.
func TestBatchDegradedMemberRead(t *testing.T) {
	v, c := testVault(t, Erasure{K: 4, N: 8})
	want := flushMembers(t, v, 3)
	for _, n := range []int{0, 2, 5, 7} {
		c.SetOnline(n, false)
	}
	for id, data := range want {
		got, err := v.Get(id)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("degraded get %s: %v", id, err)
		}
	}
	c.SetOnline(1, false)
	if _, err := v.Get("m0"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("starved member read: got %v, want ErrDegraded", err)
	}
}

func TestBatcherBasics(t *testing.T) {
	v, _ := testVault(t, Erasure{K: 4, N: 8})
	b := v.NewBatcher()
	data := []byte("small object through the batcher")
	if err := b.Put("one", data); err != nil {
		t.Fatal(err)
	}
	got, err := v.Get("one")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip: %v", err)
	}
	if err := b.Put("one", data); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate: got %v, want ErrExists", err)
	}
	// Above the bypass threshold the put routes around the batcher: the
	// object stores under its own id, not inside a blob.
	big := make([]byte, DefaultBatchBypassBytes+1)
	rand.Read(big)
	if err := b.Put("big", big); err != nil {
		t.Fatal(err)
	}
	if v.lookup("big").batch != nil {
		t.Fatal("oversized put went through the batch path")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("late", data); !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("post-close put: got %v, want ErrBatcherClosed", err)
	}
}

// TestBatcherConcurrentHammer is the batcher under the PR 5 concurrency
// discipline: many workers pushing distinct small objects through one
// Batcher while others read back and delete — run under -race this is
// the group-commit leader handoff's data-race check. Every put must land
// exactly once and read back exactly.
func TestBatcherConcurrentHammer(t *testing.T) {
	v, c := testVault(t, Erasure{K: 4, N: 8})
	b := v.NewBatcher(WithBatchMaxMembers(8))
	const workers, perWorker = 16, 6
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker*3)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := mrand.New(mrand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("w%d-o%d", w, i)
				data := make([]byte, 64+rng.Intn(2048))
				rng.Read(data)
				if err := b.Put(id, data); err != nil {
					errs <- fmt.Errorf("put %s: %w", id, err)
					return
				}
				got, err := v.Get(id)
				if err != nil {
					errs <- fmt.Errorf("get %s: %w", id, err)
					return
				}
				if !bytes.Equal(got, data) {
					errs <- fmt.Errorf("get %s: payload mismatch", id)
					return
				}
				if i%3 == 2 {
					if err := v.Delete(id); err != nil {
						errs <- fmt.Errorf("delete %s: %w", id, err)
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	deleted := workers * (perWorker / 3)
	if got := len(v.Objects()); got != workers*perWorker-deleted {
		t.Errorf("objects = %d, want %d", got, workers*perWorker-deleted)
	}
	if got := c.StagedCount(); got != 0 {
		t.Errorf("%d shards left in staging", got)
	}
}

// TestBatcherScrubAllUnderTraffic mixes ScrubAll sweeps with batched
// writes — the lock-order (member → batch → stripe) stress.
func TestBatcherScrubAllUnderTraffic(t *testing.T) {
	v, _ := testVault(t, Erasure{K: 4, N: 8})
	b := v.NewBatcher()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				id := fmt.Sprintf("s%d-%d", w, i)
				if err := b.Put(id, []byte(id)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := v.ScrubAll(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if _, err := v.ScrubAll(); err != nil {
		t.Fatal(err)
	}
}
