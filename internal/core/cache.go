package core

import (
	"strings"
	"sync"

	"securearchive/internal/obs"
)

// Hot-object read cache: a byte-bounded cache of decoded plaintexts in
// front of the vault's degraded k-of-n read path, so the hot subset of a
// write-once archive is served without re-probing k+2 nodes, re-fetching
// a stripe, and re-decoding on every Get (ROADMAP item 4).
//
// Coherence is the whole game here, and it rests on three rules:
//
//  1. Epoch keying. Every entry records the cluster epoch observed
//     before its stripe fetch began, and a lookup hits only when the
//     entry's epoch equals the current epoch — AdvanceEpoch therefore
//     makes every existing entry unreachable without touching the cache
//     at all (lazy, lock-free invalidation; stale entries age out of the
//     LRU like any other cold data).
//  2. Explicit invalidation under the object write lock. Every mutator
//     (Put, PutReader, RenewShares, Delete, Scrub, and their chunked and
//     batch-member variants) calls invalidate(id) while holding the
//     object's write lock. Reads insert while holding the read lock with
//     the epoch captured before the fetch, so an insert is serialised
//     strictly before any later mutation's invalidate — the classic
//     read-old / write-new / insert-stale interleaving cannot happen.
//  3. Immutable entries. A cached slice is never written again after
//     insert; put stores a private copy and Get hands the caller a copy,
//     so neither caller mutations nor eviction can corrupt a concurrent
//     reader.
//
// Within the byte budget the cache is a segmented LRU (probationary +
// protected) with a TinyLFU-style frequency sketch as admission filter:
// a new entry may evict the probation tail only when its access
// frequency exceeds the victim's, so a one-pass cold scan — every key
// seen once — cannot flush a hot set that has been touched repeatedly.
//
// Multi-tenant fairness rides on the id namespace the API layer already
// uses (object ids are "<tenant>/<object>"): bytes are accounted per id
// prefix, and an owner pushed past its configured share of the cache
// evicts its own coldest entries, never another tenant's.

// DefaultCacheTenantShare is the fraction of the cache one owner (id
// prefix before the first '/') may occupy before its inserts start
// evicting its own entries instead of others'. 1.0 disables the split.
const DefaultCacheTenantShare = 1.0

// cacheOwner derives the accounting owner from an object id: the prefix
// before the first '/', matching the api layer's "<tenant>/<object>"
// keying. Ids without a separator share the anonymous "" owner.
func cacheOwner(id string) string {
	if i := strings.IndexByte(id, '/'); i >= 0 {
		return id[:i]
	}
	return ""
}

// cacheEntry is one cached decoded object. Entries are immutable after
// insert (data is a private copy, never written again); list linkage and
// segment membership are guarded by readCache.mu.
type cacheEntry struct {
	id    string
	owner string
	epoch int
	data  []byte
	// protected marks the SLRU segment: false = probationary (seen once
	// since insert), true = protected (re-referenced while cached).
	protected  bool
	prev, next *cacheEntry
}

// lruList is an intrusive doubly-linked list (most-recent at front). The
// hit path must not allocate, which rules out container/list — its
// PushFront allocates an Element per move across lists.
type lruList struct {
	front, back *cacheEntry
}

func (l *lruList) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = l.front
	if l.front != nil {
		l.front.prev = e
	}
	l.front = e
	if l.back == nil {
		l.back = e
	}
}

func (l *lruList) remove(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.back = e.prev
	}
	e.prev, e.next = nil, nil
}

func (l *lruList) moveToFront(e *cacheEntry) {
	if l.front == e {
		return
	}
	l.remove(e)
	l.pushFront(e)
}

// readCache is the vault's decoded-object cache. All state is guarded by
// mu; the critical sections are map/list/sketch bookkeeping only — never
// I/O, decode, or copying of entry data.
type readCache struct {
	mu sync.Mutex

	maxBytes int64
	// maxEntry caps a single entry so one large object cannot monopolise
	// the budget (maxBytes/8, min 1); larger objects bypass the cache.
	maxEntry int64
	// protCap bounds the protected segment (80% of maxBytes); promotion
	// past it demotes the protected tail back to probation instead of
	// growing the hot segment without bound.
	protCap int64
	// shareBytes is the per-owner byte cap derived from the tenant-share
	// fraction; an insert that would push its owner past it evicts the
	// owner's own coldest entries first.
	shareBytes int64

	bytes     int64
	protBytes int64
	entries   map[string]*cacheEntry
	probation lruList
	protected lruList
	owners    map[string]int64
	sketch    freqSketch

	// Lifetime tallies; hits/misses are recorded by the vault at the
	// probe site (Vault.cacheGet owns the hit-latency clock), while
	// evictions and admission rejects happen inside put, so the vault
	// hands the cache its pre-resolved instruments instead. All four
	// instrument pointers may be nil (unit tests build bare caches).
	hits, misses, evictions, rejects int64
	evictC, rejectC                  *obs.Counter
	bytesG                           *obs.Gauge
}

// newReadCache sizes a cache. maxBytes must be > 0; share is clamped to
// (0, 1].
func newReadCache(maxBytes int64, share float64) *readCache {
	if share <= 0 || share > 1 {
		share = DefaultCacheTenantShare
	}
	maxEntry := maxBytes / 8
	if maxEntry < 1 {
		maxEntry = 1
	}
	rc := &readCache{
		maxBytes:   maxBytes,
		maxEntry:   maxEntry,
		protCap:    maxBytes * 8 / 10,
		shareBytes: int64(float64(maxBytes) * share),
		entries:    make(map[string]*cacheEntry),
		owners:     make(map[string]int64),
	}
	if rc.shareBytes < 1 {
		rc.shareBytes = 1
	}
	rc.sketch.init(cacheSketchCounters)
	return rc
}

// get returns the cached plaintext for id if an entry exists at exactly
// the given epoch. The returned slice is the cache's immutable copy —
// callers must not write to it (Vault.Get copies, ReadTo writes it
// straight out). Every lookup, hit or miss, feeds the frequency sketch:
// admission decisions are about access history, not residency. The fast
// path performs zero heap allocations.
func (rc *readCache) get(id string, epoch int) ([]byte, bool) {
	h := cacheHash(id)
	rc.mu.Lock()
	rc.sketch.touch(h)
	e := rc.entries[id]
	if e == nil || e.epoch != epoch {
		rc.misses++
		rc.mu.Unlock()
		return nil, false
	}
	// SLRU promotion: a probationary hit graduates to protected; a
	// protected hit refreshes recency. Demote protected tails while the
	// segment is over its cap so the hot set stays bounded.
	if e.protected {
		rc.protected.moveToFront(e)
	} else {
		rc.probation.remove(e)
		e.protected = true
		rc.protected.pushFront(e)
		rc.protBytes += int64(len(e.data))
		for rc.protBytes > rc.protCap {
			tail := rc.protected.back
			if tail == nil || tail == e {
				break
			}
			rc.protected.remove(tail)
			tail.protected = false
			rc.probation.pushFront(tail)
			rc.protBytes -= int64(len(tail.data))
		}
	}
	rc.hits++
	data := e.data
	rc.mu.Unlock()
	return data, true
}

// put inserts a private copy of data under id at the given epoch,
// applying the owner share, the admission filter, and segmented-LRU
// eviction. An existing entry for id (any epoch) is replaced — the
// caller just read this plaintext at this epoch, which is strictly
// fresher information.
func (rc *readCache) put(id string, epoch int, data []byte) {
	size := int64(len(data))
	if size == 0 || size > rc.maxEntry {
		return
	}
	h := cacheHash(id)
	owner := cacheOwner(id)
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if e := rc.entries[id]; e != nil {
		rc.removeLocked(e)
	}
	// Tenant share: an owner at its cap evicts its own coldest entries to
	// make room. If it still does not fit (single entry above the share),
	// the insert is refused — other tenants' residency is untouchable.
	for rc.owners[owner]+size > rc.shareBytes {
		victim := rc.ownerTail(owner)
		if victim == nil {
			rc.rejectLocked()
			return
		}
		rc.evictLocked(victim)
	}
	// Global budget with TinyLFU admission: the candidate must be seen
	// more often than the probation tail it wants to displace, else one
	// cold scan would flush the working set one insert at a time.
	for rc.bytes+size > rc.maxBytes {
		victim := rc.probation.back
		if victim == nil {
			victim = rc.protected.back
		}
		if victim == nil {
			rc.rejectLocked()
			return
		}
		if rc.sketch.estimate(h) <= rc.sketch.estimate(cacheHash(victim.id)) {
			rc.rejectLocked()
			return
		}
		rc.evictLocked(victim)
	}
	e := &cacheEntry{
		id:    id,
		owner: owner,
		epoch: epoch,
		data:  append([]byte(nil), data...),
	}
	rc.entries[id] = e
	rc.probation.pushFront(e)
	rc.bytes += size
	rc.owners[owner] += size
	if rc.bytesG != nil {
		rc.bytesG.Set(rc.bytes)
	}
}

// evictLocked removes a victim to make room, tallying the eviction.
func (rc *readCache) evictLocked(victim *cacheEntry) {
	rc.removeLocked(victim)
	rc.evictions++
	if rc.evictC != nil {
		rc.evictC.Inc()
	}
}

// rejectLocked tallies a refused admission.
func (rc *readCache) rejectLocked() {
	rc.rejects++
	if rc.rejectC != nil {
		rc.rejectC.Inc()
	}
	if rc.bytesG != nil {
		rc.bytesG.Set(rc.bytes)
	}
}

// invalidate removes id's entry (if any). Mutators call it under the
// object's write lock; see the coherence rules at the top of the file.
func (rc *readCache) invalidate(id string) {
	rc.mu.Lock()
	if e := rc.entries[id]; e != nil {
		rc.removeLocked(e)
		if rc.bytesG != nil {
			rc.bytesG.Set(rc.bytes)
		}
	}
	rc.mu.Unlock()
}

// ownerTail finds the owner's coldest entry: probation tail first, then
// protected tail.
func (rc *readCache) ownerTail(owner string) *cacheEntry {
	for e := rc.probation.back; e != nil; e = e.prev {
		if e.owner == owner {
			return e
		}
	}
	for e := rc.protected.back; e != nil; e = e.prev {
		if e.owner == owner {
			return e
		}
	}
	return nil
}

// removeLocked unlinks an entry from its segment, the map, and the byte
// accounting. Callers hold rc.mu.
func (rc *readCache) removeLocked(e *cacheEntry) {
	if e.protected {
		rc.protected.remove(e)
		rc.protBytes -= int64(len(e.data))
	} else {
		rc.probation.remove(e)
	}
	delete(rc.entries, e.id)
	size := int64(len(e.data))
	rc.bytes -= size
	if rem := rc.owners[e.owner] - size; rem > 0 {
		rc.owners[e.owner] = rem
	} else {
		delete(rc.owners, e.owner)
	}
}

// CacheStats is a point-in-time view of the read cache, surfaced by
// Vault.CacheStats for the API layer's per-tenant accounting and the
// saturation driver's hit-ratio reporting.
type CacheStats struct {
	// Bytes and MaxBytes are current residency vs the configured budget.
	Bytes, MaxBytes int64
	// Entries is the number of resident objects.
	Entries int
	// Hits, Misses, Evictions and AdmitRejects are lifetime tallies.
	Hits, Misses, Evictions, AdmitRejects int64
	// OwnerBytes breaks residency down by id prefix (tenant).
	OwnerBytes map[string]int64
}

// CacheStats reports the read cache's current state — residency,
// lifetime hit/miss/evict tallies, and the per-owner byte breakdown the
// API layer surfaces as tenant accounting. Nil when the vault was built
// without WithReadCache.
func (v *Vault) CacheStats() *CacheStats {
	if v.cache == nil {
		return nil
	}
	return v.cache.stats()
}

func (rc *readCache) stats() *CacheStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	s := &CacheStats{
		Bytes:        rc.bytes,
		MaxBytes:     rc.maxBytes,
		Entries:      len(rc.entries),
		Hits:         rc.hits,
		Misses:       rc.misses,
		Evictions:    rc.evictions,
		AdmitRejects: rc.rejects,
		OwnerBytes:   make(map[string]int64, len(rc.owners)),
	}
	for o, b := range rc.owners {
		s.OwnerBytes[o] = b
	}
	return s
}

// ---------------------------------------------------------------------
// Frequency sketch (TinyLFU admission filter)

// cacheSketchCounters sizes the sketch: 4-bit counters packed 16 per
// uint64. 32Ki counters ≈ 16 KiB — room for working sets far beyond the
// entry counts a byte-bounded cache can hold.
const cacheSketchCounters = 1 << 15

// sketchSampleFactor triggers aging: after counters*factor touches every
// counter is halved, so frequency estimates track the recent past
// instead of accumulating forever (a retired hot set must not outvote
// the current one indefinitely).
const sketchSampleFactor = 8

// freqSketch is a count-min sketch over 4-bit saturating counters: 4
// hash positions per key, estimate = min of the 4. All methods are
// called with the owning cache's mutex held and never allocate.
type freqSketch struct {
	words []uint64
	mask  uint64
	// additions counts touches since the last aging pass.
	additions int
	sample    int
}

func (s *freqSketch) init(counters int) {
	if counters < 16 {
		counters = 16
	}
	// Round up to a power of two so position selection is a mask.
	n := 16
	for n < counters {
		n <<= 1
	}
	s.words = make([]uint64, n/16)
	s.mask = uint64(n - 1)
	s.sample = n * sketchSampleFactor
}

// cacheHash hashes an id to a 64-bit value (FNV-1a, inlined so the hot
// path stays allocation-free) and scrambles it with a splitmix64 finaliser
// — FNV alone leaves short keys' low bits too regular for index derivation.
func cacheHash(id string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// pos derives the i-th counter index (Kirsch–Mitzenmacher double
// hashing: h1 + i·h2 over the table mask).
func (s *freqSketch) pos(h uint64, i int) uint64 {
	h2 := h>>32 | 1 // odd so the four probes stay distinct
	return (h + uint64(i)*h2) & s.mask
}

// touch increments the key's 4 counters (saturating at 15) and runs the
// aging pass when the sample budget is spent.
func (s *freqSketch) touch(h uint64) {
	for i := 0; i < 4; i++ {
		p := s.pos(h, i)
		shift := (p & 15) * 4
		w := &s.words[p>>4]
		if c := (*w >> shift) & 15; c < 15 {
			*w += 1 << shift
		}
	}
	s.additions++
	if s.additions >= s.sample {
		s.age()
	}
}

// estimate returns the key's frequency estimate (min over its counters).
func (s *freqSketch) estimate(h uint64) uint8 {
	min := uint8(15)
	for i := 0; i < 4; i++ {
		p := s.pos(h, i)
		c := uint8((s.words[p>>4] >> ((p & 15) * 4)) & 15)
		if c < min {
			min = c
		}
	}
	return min
}

// age halves every counter in place (each 4-bit lane shifts right one
// with the bit that would leak in from the neighbour masked off).
func (s *freqSketch) age() {
	for i := range s.words {
		s.words[i] = (s.words[i] >> 1) & 0x7777777777777777
	}
	s.additions = 0
}
