package core

// The cache-coherence battery. Three complementary attacks on the read
// cache's correctness claim ("a cached read is indistinguishable from an
// uncached one"):
//
//   - TestDifferentialCachedVsUncached drives an identical operation
//     sequence through a cache-enabled and a cache-disabled vault — same
//     encoding, same backend, same seeded randomness — and requires
//     byte-identical results from every read AND byte-identical final
//     cluster snapshots. Runs the full Figure 1 encoding roster against
//     both store backends, covering monolithic, chunked, streamed and
//     batched write shapes.
//
//   - TestCachePropertyInterleavings replays a long random interleaving
//     of Put / Get / ReadTo / Delete / RenewShares / AdvanceEpoch /
//     Scrub against an exact sequential model: after any prefix, a read
//     must return precisely the model's current content or ErrNotFound —
//     a cache serving a stale epoch or a deleted object's bytes fails
//     immediately.
//
//   - TestHammerCacheCoherence races Get-through-cache against Delete,
//     RenewShares, Scrub and AdvanceEpoch on overlapping ids under a
//     fault plan, with a monotonic-freshness oracle: payloads embed
//     their version, each id has a single writer (so the cluster's
//     version order is monotone), and a reader that observes version v
//     must never later be served v' < v. Freed or pre-renewal bytes
//     leaking out of the cache trip the oracle; the end-state audit
//     mirrors the PR-5 hammers (no staged orphans, StoredBytes back to
//     baseline, cache drained).

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	mrand "math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"securearchive/internal/cluster"
	"securearchive/internal/group"
	"securearchive/internal/obs"
	"securearchive/internal/store"
)

// diffPair drives the same operation into a cached and an uncached
// vault and fails the test on any observable divergence.
type diffPair struct {
	t      *testing.T
	cached *Vault
	plain  *Vault
	cc, pc *cluster.Cluster
}

func (d *diffPair) sameErr(op string, e1, e2 error) {
	d.t.Helper()
	if (e1 == nil) != (e2 == nil) {
		d.t.Fatalf("%s: cached err=%v, uncached err=%v", op, e1, e2)
	}
}

func (d *diffPair) put(id string, data []byte) {
	d.t.Helper()
	d.sameErr("put "+id, d.cached.Put(id, data), d.plain.Put(id, data))
}

func (d *diffPair) putReader(id string, data []byte) {
	d.t.Helper()
	_, e1 := d.cached.PutReader(context.Background(), id, bytes.NewReader(data))
	_, e2 := d.plain.PutReader(context.Background(), id, bytes.NewReader(data))
	d.sameErr("putReader "+id, e1, e2)
}

func (d *diffPair) putBatched(id string, data []byte) {
	d.t.Helper()
	b1 := d.cached.NewBatcher()
	b2 := d.plain.NewBatcher()
	d.sameErr("batch put "+id, b1.Put(id, data), b2.Put(id, data))
	b1.Close()
	b2.Close()
}

// get reads id from both vaults; when want is non-nil both reads must
// succeed with exactly those bytes, when nil both must fail alike.
func (d *diffPair) get(id string, want []byte) {
	d.t.Helper()
	g1, e1 := d.cached.Get(id)
	g2, e2 := d.plain.Get(id)
	d.sameErr("get "+id, e1, e2)
	if !bytes.Equal(g1, g2) {
		d.t.Fatalf("get %s: cached and uncached bytes diverge (%d vs %d bytes)", id, len(g1), len(g2))
	}
	if want != nil {
		if e1 != nil {
			d.t.Fatalf("get %s: %v", id, e1)
		}
		if !bytes.Equal(g1, want) {
			d.t.Fatalf("get %s: wrong content (%d bytes, want %d)", id, len(g1), len(want))
		}
	} else if e1 == nil {
		d.t.Fatalf("get %s: expected failure, both vaults succeeded", id)
	}
}

func (d *diffPair) readTo(id string, want []byte) {
	d.t.Helper()
	var b1, b2 bytes.Buffer
	_, e1 := d.cached.ReadTo(context.Background(), id, &b1)
	_, e2 := d.plain.ReadTo(context.Background(), id, &b2)
	d.sameErr("readTo "+id, e1, e2)
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		d.t.Fatalf("readTo %s: cached and uncached bytes diverge", id)
	}
	if want != nil && !bytes.Equal(b1.Bytes(), want) {
		d.t.Fatalf("readTo %s: wrong content", id)
	}
}

func (d *diffPair) renew(id string) {
	d.t.Helper()
	d.sameErr("renew "+id, d.cached.RenewShares(id), d.plain.RenewShares(id))
}

func (d *diffPair) scrub(id string) {
	d.t.Helper()
	_, e1 := d.cached.Scrub(id)
	_, e2 := d.plain.Scrub(id)
	d.sameErr("scrub "+id, e1, e2)
}

func (d *diffPair) del(id string) {
	d.t.Helper()
	d.sameErr("delete "+id, d.cached.Delete(id), d.plain.Delete(id))
}

func (d *diffPair) advanceEpoch() {
	d.cc.AdvanceEpoch()
	d.pc.AdvanceEpoch()
}

// snapshotsEqual requires the two clusters to hold byte-identical shard
// sets on every node — the strongest statement that the cache changed
// nothing about what reaches storage. When byteExact is false (the
// encoding draws randomness the vault cannot inject, so shard bytes
// differ run-to-run even without a cache) the check degrades to
// structure: same keys, same epochs, same shard lengths.
func (d *diffPair) snapshotsEqual(nodes int, byteExact bool) {
	d.t.Helper()
	for n := 0; n < nodes; n++ {
		sa, err := d.cc.Snapshot(n)
		if err != nil {
			d.t.Fatal(err)
		}
		sb, err := d.pc.Snapshot(n)
		if err != nil {
			d.t.Fatal(err)
		}
		if len(sa) != len(sb) {
			d.t.Fatalf("node %d: cached cluster holds %d shards, uncached %d", n, len(sa), len(sb))
		}
		for i := range sa {
			if sa[i].Key != sb[i].Key || sa[i].Epoch != sb[i].Epoch {
				d.t.Fatalf("node %d shard %d: key/epoch diverge: %+v/%d vs %+v/%d",
					n, i, sa[i].Key, sa[i].Epoch, sb[i].Key, sb[i].Epoch)
			}
			if len(sa[i].Data) != len(sb[i].Data) {
				d.t.Fatalf("node %d shard %+v: sizes diverge (%d vs %d)", n, sa[i].Key, len(sa[i].Data), len(sb[i].Data))
			}
			if byteExact && !bytes.Equal(sa[i].Data, sb[i].Data) {
				d.t.Fatalf("node %d shard %+v: bytes diverge", n, sa[i].Key)
			}
		}
	}
}

// encodingDeterministic probes whether enc produces identical shards for
// identical data under identically-seeded randomness. AONT-RS does not
// (its transform key comes from crypto/rand internally), so the
// differential snapshot check can only be structural for it.
func encodingDeterministic(enc Encoding) bool {
	data := fill("probe", 300)
	e1, err1 := enc.Encode(data, mrand.New(mrand.NewSource(9)))
	e2, err2 := enc.Encode(data, mrand.New(mrand.NewSource(9)))
	if err1 != nil || err2 != nil || len(e1.Shards) != len(e2.Shards) {
		return false
	}
	for i := range e1.Shards {
		if !bytes.Equal(e1.Shards[i], e2.Shards[i]) {
			return false
		}
	}
	return true
}

// diffClusters builds two same-backend clusters for a differential run.
func diffClusters(t *testing.T, backend string, nodes int) (a, b *cluster.Cluster) {
	t.Helper()
	if backend == "mem" {
		return cluster.New(nodes, nil), cluster.New(nodes, nil)
	}
	open := func() *cluster.Cluster {
		c, err := cluster.Open(nodes, nil, store.Config{Backend: store.BackendDisk, Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	return open(), open()
}

func TestDifferentialCachedVsUncached(t *testing.T) {
	// ObjectLen 256 keeps the entropic encoding's assumed min-entropy
	// below every payload used here (the smallest is 256 bytes).
	encs := Figure1Encodings(Figure1Config{N: 8, K: 4, T: 4, PackCount: 3, ObjectLen: 256})
	for _, backend := range []string{"mem", "disk"} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			for _, enc := range encs {
				enc := enc
				t.Run(enc.Name(), func(t *testing.T) {
					cc, pc := diffClusters(t, backend, 8)
					// Both vaults draw from identically-seeded private
					// randomness streams. Reads consume no randomness, so
					// the streams stay in lockstep whether or not reads hit
					// the cache — which is what makes snapshot equality a
					// meaningful check rather than a coincidence.
					const seed = 42
					mk := func(c *cluster.Cluster, cacheBytes int64) *Vault {
						opts := []VaultOption{
							WithGroup(group.Test()),
							WithRand(mrand.New(mrand.NewSource(seed))),
							WithChunkSize(512),
							WithRegistry(obs.NewRegistry()),
						}
						if cacheBytes > 0 {
							opts = append(opts, WithReadCache(cacheBytes))
						}
						v, err := NewVault(c, enc, opts...)
						if err != nil {
							t.Fatal(err)
						}
						return v
					}
					d := &diffPair{
						t:      t,
						cached: mk(cc, 1<<20),
						plain:  mk(pc, 0),
						cc:     cc,
						pc:     pc,
					}

					mono := fill("mono", 400)      // monolithic (< chunk size)
					chunk := fill("chunk", 2048)   // 4 chunks — exercises prefetch
					stream := fill("stream", 1300) // streamed, 3 chunks
					bat := fill("bat", 256)        // batched small object

					d.put("mono", mono)
					d.put("chunk", chunk)
					d.putReader("stream", stream)
					d.putBatched("bat/a", bat)

					// Double reads: the second Get/ReadTo of each id is the
					// cache-served one in the cached vault.
					for i := 0; i < 2; i++ {
						d.get("mono", mono)
						d.get("chunk", chunk)
						d.get("stream", stream)
						d.get("bat/a", bat)
						d.readTo("chunk", chunk)
						d.readTo("mono", mono)
					}

					// Mutators that must invalidate; reads after each stay
					// byte-identical.
					d.renew("mono")
					d.renew("chunk")
					d.get("mono", mono)
					d.get("chunk", chunk)

					d.advanceEpoch()
					d.get("mono", mono)
					d.readTo("chunk", chunk)

					d.scrub("mono")
					d.scrub("chunk")
					d.get("chunk", chunk)

					// Delete + re-put under the same id: a cache serving the
					// old generation diverges here.
					d.del("mono")
					d.get("mono", nil)
					mono2 := fill("mono-v2", 400)
					d.put("mono", mono2)
					d.get("mono", mono2)
					d.get("mono", mono2)

					d.del("bat/a")
					d.get("bat/a", nil)

					d.snapshotsEqual(8, encodingDeterministic(enc))
				})
			}
		})
	}
}

// TestCachePropertyInterleavings replays a pseudo-random op sequence
// against an exact model of the vault's visible state. Sequential
// execution makes every op's outcome fully determined: any read served
// from a stale cache entry — wrong epoch, pre-renewal generation,
// deleted object — is an immediate content mismatch.
func TestCachePropertyInterleavings(t *testing.T) {
	forEachBackend(t, 8, func(t *testing.T, c *cluster.Cluster) {
		v, err := NewVault(c, Erasure{K: 4, N: 8},
			WithGroup(group.Test()),
			WithReadCache(64<<10),
			WithChunkSize(512),
			WithRegistry(obs.NewRegistry()))
		if err != nil {
			t.Fatal(err)
		}
		rng := mrand.New(mrand.NewSource(7))
		ids := []string{"p/a", "p/b", "p/c", "p/d"}
		model := make(map[string][]byte)
		gen := make(map[string]int)

		for op := 0; op < 400; op++ {
			id := ids[rng.Intn(len(ids))]
			switch rng.Intn(8) {
			case 0, 1: // Put — fresh content every generation
				gen[id]++
				// Sizes straddle the 512-byte chunk threshold so both the
				// monolithic and the chunked read path flow through the
				// cache during the run.
				data := fill(fmt.Sprintf("%s#%d", id, gen[id]), 300+rng.Intn(1200))
				err := v.Put(id, data)
				if _, exists := model[id]; exists {
					if !errors.Is(err, ErrExists) {
						t.Fatalf("op %d: put existing %s: err=%v, want ErrExists", op, id, err)
					}
				} else {
					if err != nil {
						t.Fatalf("op %d: put %s: %v", op, id, err)
					}
					model[id] = data
				}
			case 2, 3: // Get
				got, err := v.Get(id)
				if want, ok := model[id]; ok {
					if err != nil {
						t.Fatalf("op %d: get %s: %v", op, id, err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("op %d: get %s: stale or torn content (%d bytes, want %d)", op, id, len(got), len(want))
					}
				} else if !errors.Is(err, ErrNotFound) {
					t.Fatalf("op %d: get deleted %s: err=%v, want ErrNotFound", op, id, err)
				}
			case 4: // ReadTo
				var buf bytes.Buffer
				_, err := v.ReadTo(context.Background(), id, &buf)
				if want, ok := model[id]; ok {
					if err != nil {
						t.Fatalf("op %d: readTo %s: %v", op, id, err)
					}
					if !bytes.Equal(buf.Bytes(), want) {
						t.Fatalf("op %d: readTo %s: stale or torn content", op, id)
					}
				} else if !errors.Is(err, ErrNotFound) {
					t.Fatalf("op %d: readTo deleted %s: err=%v, want ErrNotFound", op, id, err)
				}
			case 5: // Delete
				err := v.Delete(id)
				if _, ok := model[id]; ok {
					if err != nil {
						t.Fatalf("op %d: delete %s: %v", op, id, err)
					}
					delete(model, id)
				} else if !errors.Is(err, ErrNotFound) {
					t.Fatalf("op %d: delete absent %s: err=%v, want ErrNotFound", op, id, err)
				}
			case 6: // RenewShares — content survives, cached generation must not
				err := v.RenewShares(id)
				if _, ok := model[id]; ok {
					if err != nil {
						t.Fatalf("op %d: renew %s: %v", op, id, err)
					}
				} else if !errors.Is(err, ErrNotFound) {
					t.Fatalf("op %d: renew absent %s: err=%v, want ErrNotFound", op, id, err)
				}
			default: // AdvanceEpoch, occasionally a scrub
				c.AdvanceEpoch()
				if rng.Intn(4) == 0 {
					if _, err := v.Scrub(id); err != nil && !errors.Is(err, ErrNotFound) {
						t.Fatalf("op %d: scrub %s: %v", op, id, err)
					}
				}
			}
		}

		// Drain: every surviving object reads back exactly per the model,
		// twice (second read cache-served).
		for id, want := range model {
			for i := 0; i < 2; i++ {
				got, err := v.Get(id)
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("final get %s (pass %d): err=%v", id, i, err)
				}
			}
		}
	})
}

// cachePayload builds the versioned fixed-size payload the coherence
// hammer writes: the id and a zero-padded version lead, repeated to 512
// bytes, so a reader can both parse the version and verify the whole
// buffer against the expected template.
func cachePayload(id string, ver int) []byte {
	head := fmt.Sprintf("%s#%010d|", id, ver)
	return bytes.Repeat([]byte(head), 512/len(head)+1)[:512]
}

// cachePayloadVersion parses the version out of a payload written by
// cachePayload for id; ok is false on any shape mismatch.
func cachePayloadVersion(id string, p []byte) (int, bool) {
	lead := len(id) + 1
	if len(p) < lead+10 || string(p[:len(id)]) != id || p[len(id)] != '#' {
		return 0, false
	}
	v, err := strconv.Atoi(string(p[lead : lead+10]))
	if err != nil {
		return 0, false
	}
	return v, true
}

// casMax lifts a to at least v.
func casMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// TestHammerCacheCoherence is the PR-5 hammer extended with the read
// cache and prefetch active (small chunk size makes every payload
// 2-chunk, so the prefetcher runs under -race too). Monotonic-freshness
// oracle: each id has exactly ONE writer cycling Delete → Put(v+1), so
// the cluster's committed version sequence per id is strictly
// increasing; a reader snapshots the highest version known committed
// BEFORE its Get and any successful read must return a version >= that
// floor. A cache entry surviving its Delete/Renew/re-Put would surface
// as a version below the floor or a template mismatch.
func TestHammerCacheCoherence(t *testing.T) {
	forEachBackend(t, 8, hammerCacheCoherence)
}

func hammerCacheCoherence(t *testing.T, c *cluster.Cluster) {
	c.SetFaultPlan(&cluster.FaultPlan{
		Seed:    99,
		Default: cluster.NodeFaults{TransientProb: 0.05},
	})
	v, err := NewVault(c, Erasure{K: 4, N: 8},
		WithGroup(group.Test()),
		WithReadCache(1<<20),
		WithChunkSize(256), // 512-byte payloads span 2 chunks → prefetch path
		WithRegistry(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	baseline := c.StoredBytes()

	const (
		idCount   = 4
		writerOps = 20
		readerOps = 60
		epochOps  = 25
	)
	ids := make([]string, idCount)
	for i := range ids {
		ids[i] = fmt.Sprintf("hobj-%d", i)
	}
	// highest[i] is the largest version known COMMITTED for ids[i] —
	// advanced only after a successful Put or a successful read.
	highest := make([]atomic.Int64, idCount)

	var wg sync.WaitGroup
	fails := make(chan error, (idCount*writerOps+3*readerOps)*2)

	// One writer per id: Delete → Put(v+1) cycles with renewals and
	// scrubs mixed in. Single-writer-per-id is what makes the freshness
	// oracle sound: no old-version Put can be in flight behind a newer
	// one.
	for i := 0; i < idCount; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := mrand.New(mrand.NewSource(int64(i) + 1))
			id := ids[i]
			for ver := 1; ver <= writerOps; ver++ {
				if err := v.Put(id, cachePayload(id, ver)); err == nil {
					casMax(&highest[i], int64(ver))
				}
				switch rng.Intn(3) {
				case 0:
					_ = v.RenewShares(id)
				case 1:
					_, _ = v.Scrub(id)
				}
				// Writer also reads through the cache mid-cycle.
				if rng.Intn(2) == 0 {
					_, _ = v.Get(id)
				}
				if err := v.Delete(id); err != nil && !errors.Is(err, ErrNotFound) {
					fails <- fmt.Errorf("delete %s: %w", id, err)
				}
			}
		}()
	}

	// Readers race Get (and ReadTo) through the cache against the
	// writers' mutations, checking the freshness floor on every success.
	for r := 0; r < 3; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := mrand.New(mrand.NewSource(int64(r) + 100))
			for op := 0; op < readerOps; op++ {
				i := rng.Intn(idCount)
				id := ids[i]
				floor := highest[i].Load()
				var got []byte
				var err error
				if rng.Intn(3) == 0 {
					var buf bytes.Buffer
					_, err = v.ReadTo(context.Background(), id, &buf)
					got = buf.Bytes()
				} else {
					got, err = v.Get(id)
				}
				switch {
				case err == nil:
					ver, ok := cachePayloadVersion(id, got)
					if !ok || !bytes.Equal(got, cachePayload(id, ver)) {
						fails <- fmt.Errorf("read %s: torn or cross-wired payload", id)
						continue
					}
					if int64(ver) < floor {
						fails <- fmt.Errorf("read %s: STALE version %d served after %d was committed", id, ver, floor)
						continue
					}
					casMax(&highest[i], int64(ver))
				case errors.Is(err, ErrNotFound) || errors.Is(err, ErrDegraded):
					// Deleted by the writer, or fault-plan attrition.
				default:
					fails <- fmt.Errorf("read %s: %w", id, err)
				}
			}
		}()
	}

	// The epoch agitator invalidates the whole cache lazily over and
	// over while reads are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := mrand.New(mrand.NewSource(777))
		for op := 0; op < epochOps; op++ {
			c.AdvanceEpoch()
			if rng.Intn(2) == 0 {
				_, _ = v.Get(ids[rng.Intn(idCount)])
			}
		}
	}()

	wg.Wait()
	close(fails)
	for err := range fails {
		t.Error(err)
	}

	// End-state audit, mirroring hammerOverlappingIDs.
	if n := c.StagedCount(); n != 0 {
		t.Errorf("%d orphaned staged shards after hammer", n)
	}
	for _, id := range v.Objects() {
		got, err := v.Get(id)
		if err != nil {
			if errors.Is(err, ErrDegraded) {
				continue
			}
			t.Errorf("surviving %s unreadable: %v", id, err)
			continue
		}
		ver, ok := cachePayloadVersion(id, got)
		if !ok || !bytes.Equal(got, cachePayload(id, ver)) {
			t.Errorf("surviving %s: payload mismatch", id)
		}
	}
	for _, id := range v.Objects() {
		if err := v.Delete(id); err != nil {
			t.Errorf("final delete %s: %v", id, err)
		}
	}
	if got := c.StoredBytes(); got != baseline {
		t.Errorf("StoredBytes = %d after deleting everything, want baseline %d", got, baseline)
	}
	if n := c.StagedCount(); n != 0 {
		t.Errorf("%d staged shards after final deletes", n)
	}
	// Every id was invalidated by its final Delete: the cache must be
	// fully drained, not holding freed bytes.
	if st := v.CacheStats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("cache not drained after deleting everything: %d entries, %d bytes", st.Entries, st.Bytes)
	}
}
