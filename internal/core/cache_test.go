package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"securearchive/internal/cluster"
	"securearchive/internal/group"
	"securearchive/internal/obs"
)

// Unit tests for the read cache's mechanisms in isolation — SLRU
// segmentation, the TinyLFU admission filter, epoch keying, and tenant
// shares — plus vault-level checks that the hit path serves exactly
// what the miss path decoded and that every mutator invalidates.
// The cross-cutting coherence proofs (differential, property, hammer)
// live in cache_coherence_test.go.

func fill(id string, n int) []byte {
	b := make([]byte, n)
	seed := cacheHash(id)
	for i := range b {
		seed = seed*6364136223846793005 + 1442695040888963407
		b[i] = byte(seed >> 56)
	}
	return b
}

func TestCacheEpochKeying(t *testing.T) {
	rc := newReadCache(1<<20, 1.0)
	rc.put("a", 3, fill("a", 100))
	if _, ok := rc.get("a", 3); !ok {
		t.Fatal("same-epoch lookup missed")
	}
	if _, ok := rc.get("a", 4); ok {
		t.Fatal("entry served at a later epoch")
	}
	if _, ok := rc.get("a", 2); ok {
		t.Fatal("entry served at an earlier epoch")
	}
	// Re-insert at the new epoch replaces the stale entry.
	rc.put("a", 4, fill("a4", 100))
	got, ok := rc.get("a", 4)
	if !ok || !bytes.Equal(got, fill("a4", 100)) {
		t.Fatal("replacement at new epoch not served")
	}
	if rc.stats().Entries != 1 {
		t.Fatalf("replacement leaked entries: %+v", rc.stats())
	}
}

func TestCacheInvalidate(t *testing.T) {
	rc := newReadCache(1<<20, 1.0)
	rc.put("a", 1, fill("a", 64))
	rc.put("b", 1, fill("b", 64))
	rc.invalidate("a")
	if _, ok := rc.get("a", 1); ok {
		t.Fatal("invalidated entry served")
	}
	if _, ok := rc.get("b", 1); !ok {
		t.Fatal("invalidate removed the wrong entry")
	}
	rc.invalidate("missing") // no-op must not panic or skew accounting
	s := rc.stats()
	if s.Entries != 1 || s.Bytes != 64 {
		t.Fatalf("accounting after invalidate: %+v", s)
	}
}

func TestCacheByteBudgetAndMaxEntry(t *testing.T) {
	rc := newReadCache(1024, 1.0)
	// maxEntry = 1024/8 = 128: a larger object bypasses the cache.
	rc.put("big", 1, fill("big", 129))
	if _, ok := rc.get("big", 1); ok {
		t.Fatal("oversize entry admitted")
	}
	for i := 0; i < 8; i++ {
		rc.put(fmt.Sprintf("o%d", i), 1, fill(fmt.Sprintf("o%d", i), 128))
	}
	s := rc.stats()
	if s.Bytes > 1024 {
		t.Fatalf("budget exceeded: %d > 1024", s.Bytes)
	}
	if s.Entries != 8 {
		t.Fatalf("expected 8 resident entries, got %d", s.Entries)
	}
}

// TestCacheAdmissionProtectsHotSet is the filter's reason to exist: a
// one-pass cold scan over many once-seen keys must not flush a hot set
// that has been touched repeatedly.
func TestCacheAdmissionProtectsHotSet(t *testing.T) {
	rc := newReadCache(4096, 1.0) // maxEntry 512
	hot := []string{"hot/a", "hot/b", "hot/c", "hot/d"}
	for _, id := range hot {
		rc.put(id, 1, fill(id, 512))
	}
	// Establish frequency: every hot key touched several times (each get
	// also promotes it into the protected segment).
	for pass := 0; pass < 4; pass++ {
		for _, id := range hot {
			if _, ok := rc.get(id, 1); !ok {
				t.Fatalf("hot key %s not resident before scan", id)
			}
		}
	}
	// Cold scan: 64 distinct keys, each seen exactly once. Inserting one
	// requires evicting a victim with a higher frequency estimate, so
	// admissions must be rejected.
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("scan/%d", i)
		rc.get(id, 1) // the miss that precedes a fill
		rc.put(id, 1, fill(id, 512))
	}
	for _, id := range hot {
		if _, ok := rc.get(id, 1); !ok {
			t.Fatalf("cold scan flushed hot key %s", id)
		}
	}
	if s := rc.stats(); s.AdmitRejects == 0 {
		t.Fatalf("scan admitted everything: %+v", s)
	}
}

func TestCacheSLRUDemotion(t *testing.T) {
	// protCap = 80% of 1000 = 800, maxEntry = 125. Fill the cache with 8
	// entries and promote them all: the protected segment must shed back
	// under its cap instead of growing to the full budget.
	rc := newReadCache(1000, 1.0)
	ids := make([]string, 8)
	for i := range ids {
		ids[i] = fmt.Sprintf("e%d", i)
		rc.put(ids[i], 1, fill(ids[i], 125))
	}
	for _, id := range ids {
		rc.get(id, 1) // promote
	}
	rc.mu.Lock()
	prot := rc.protBytes
	rc.mu.Unlock()
	if prot > 800 {
		t.Fatalf("protected segment over cap: %d > 800", prot)
	}
	// Every entry is still resident — demotion moves to probation, it
	// does not evict.
	for _, id := range ids {
		if _, ok := rc.get(id, 1); !ok {
			t.Fatalf("demotion evicted %s", id)
		}
	}
}

// TestCacheTenantShare pins the fairness rule: an owner pushed past its
// share evicts its own coldest entries and never touches another
// tenant's residency.
func TestCacheTenantShare(t *testing.T) {
	rc := newReadCache(4096, 0.25) // 1024 bytes per owner
	for i := 0; i < 3; i++ {
		rc.put(fmt.Sprintf("alice/%d", i), 1, fill("a", 256))
		rc.put(fmt.Sprintf("bob/%d", i), 1, fill("b", 256))
	}
	// Alice blows past her share; every eviction must come from alice/*.
	for i := 3; i < 10; i++ {
		rc.put(fmt.Sprintf("alice/%d", i), 1, fill("a", 256))
	}
	s := rc.stats()
	if s.OwnerBytes["alice"] > 1024 {
		t.Fatalf("alice over her share: %d > 1024", s.OwnerBytes["alice"])
	}
	if s.OwnerBytes["bob"] != 768 {
		t.Fatalf("bob's residency disturbed: %d != 768", s.OwnerBytes["bob"])
	}
	for i := 0; i < 3; i++ {
		if _, ok := rc.get(fmt.Sprintf("bob/%d", i), 1); !ok {
			t.Fatalf("alice's overflow evicted bob/%d", i)
		}
	}
	// An entry larger than the whole share is refused, not force-fitted.
	before := rc.stats().AdmitRejects
	rc.put("carol/huge", 1, fill("c", 2048)) // maxEntry=512 rejects first; use share-size probe
	rc.put("carol/big", 1, fill("c", 300))
	rc.put("carol/big2", 1, fill("c", 300))
	rc.put("carol/big3", 1, fill("c", 300))
	rc.put("carol/big4", 1, fill("c", 300)) // 4th pushes past 1024 → evicts carol's own
	s = rc.stats()
	if s.OwnerBytes["carol"] > 1024 {
		t.Fatalf("carol over her share: %d", s.OwnerBytes["carol"])
	}
	_ = before
}

func TestCacheOwnerParsing(t *testing.T) {
	cases := map[string]string{
		"tenant1/obj":    "tenant1",
		"tenant1/a/b":    "tenant1",
		"no-separator":   "",
		"/leading-slash": "",
	}
	for id, want := range cases {
		if got := cacheOwner(id); got != want {
			t.Errorf("cacheOwner(%q) = %q, want %q", id, got, want)
		}
	}
}

func TestFreqSketch(t *testing.T) {
	var s freqSketch
	s.init(1 << 10)
	h := cacheHash("key")
	if got := s.estimate(h); got != 0 {
		t.Fatalf("fresh estimate = %d", got)
	}
	for i := 1; i <= 20; i++ {
		s.touch(h)
		est := s.estimate(h)
		want := uint8(i)
		if i > 15 {
			want = 15 // saturates
		}
		if est < want {
			t.Fatalf("after %d touches estimate = %d, want >= %d", i, est, want)
		}
	}
	s.age()
	if est := s.estimate(h); est < 7 || est > 15 {
		t.Fatalf("after halving estimate = %d, want ~7", est)
	}
}

// TestCacheGetZeroAllocs gates the hit fast path — hash, map probe,
// sketch touch, SLRU promotion — at zero heap allocations per lookup.
// (Vault.Get then pays exactly one allocation for the caller-owned
// copy; ReadTo pays none.)
func TestCacheGetZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	rc := newReadCache(1<<20, 1.0)
	rc.put("tenant/hot", 7, fill("x", 4096))
	rc.get("tenant/hot", 7) // promote to protected before measuring
	if allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := rc.get("tenant/hot", 7); !ok {
			t.Fatal("lost the entry mid-measurement")
		}
	}); allocs != 0 {
		t.Fatalf("cache hit fast path allocates %.1f times per op, want 0", allocs)
	}
	// The miss path is cold-path adjacent but also stays clean.
	if allocs := testing.AllocsPerRun(1000, func() {
		rc.get("tenant/absent", 7)
	}); allocs != 0 {
		t.Fatalf("cache miss path allocates %.1f times per op, want 0", allocs)
	}
}

// FuzzFreqSketch drives the admission filter's count-min sketch with
// arbitrary key/op streams and checks its structural guarantees: counts
// only over-estimate (estimate >= the per-key lower bound maintained
// alongside, through saturation and halving), and estimates stay in
// [0, 15]. Run briefly in CI (see the verify recipe's fuzz smoke).
func FuzzFreqSketch(f *testing.F) {
	f.Add([]byte("abcd1234efgh5678"))
	f.Add([]byte{0, 0, 0, 0, 255, 255, 255, 255, 1, 2, 3})
	f.Add(bytes.Repeat([]byte{7}, 64))
	f.Fuzz(func(t *testing.T, ops []byte) {
		var s freqSketch
		s.init(256) // small table → frequent aging under fuzzing
		lower := make(map[uint64]uint8)
		for i := 0; i+2 < len(ops); i += 3 {
			// Derive a small key universe so collisions and repeats occur.
			key := fmt.Sprintf("k%d", ops[i]%32)
			h := cacheHash(key)
			switch ops[i+1] % 4 {
			case 0, 1, 2: // touch dominates, as in real traffic
				agedBefore := s.additions
				s.touch(h)
				if s.additions < agedBefore {
					// Aging ran inside touch: every lower bound halves, then
					// this touch's increment may or may not survive — keep
					// the conservative floor.
					for k, c := range lower {
						lower[k] = c / 2
					}
				}
				if c := lower[h]; c < 15 {
					lower[h] = c + 1
				}
			case 3:
				s.age()
				for k, c := range lower {
					lower[k] = c / 2
				}
			}
			est := s.estimate(h)
			if est > 15 {
				t.Fatalf("estimate %d out of range", est)
			}
			if est < lower[h]/2 {
				// /2 slack: an aging pass inside touch may halve after the
				// increment while the model halved before it.
				t.Fatalf("estimate %d below lower bound %d for %s", est, lower[h], key)
			}
		}
	})
}

// --- vault-level cache behavior ---

func newCachedVault(t *testing.T, c *cluster.Cluster, cacheBytes int64, opts ...VaultOption) *Vault {
	t.Helper()
	enc := Erasure{K: 4, N: 8}
	opts = append([]VaultOption{WithGroup(group.Test()), WithReadCache(cacheBytes), WithRegistry(obs.NewRegistry())}, opts...)
	v, err := NewVault(c, enc, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestVaultCacheHitAndMutatorInvalidation(t *testing.T) {
	c := cluster.New(8, nil)
	v := newCachedVault(t, c, 1<<20)
	data := fill("obj", 2048)
	if err := v.Put("t/obj", data); err != nil {
		t.Fatal(err)
	}

	got, err := v.Get("t/obj") // miss → fill
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("first get: %v", err)
	}
	s := v.CacheStats()
	if s.Hits != 0 || s.Entries != 1 {
		t.Fatalf("after fill: %+v", s)
	}

	got2, err := v.Get("t/obj") // hit
	if err != nil || !bytes.Equal(got2, data) {
		t.Fatalf("cached get: %v", err)
	}
	if s := v.CacheStats(); s.Hits != 1 {
		t.Fatalf("expected a hit: %+v", s)
	}
	// The hit returns a caller-owned copy: mutating it must not corrupt
	// the cache.
	got2[0] ^= 0xff
	got3, _ := v.Get("t/obj")
	if !bytes.Equal(got3, data) {
		t.Fatal("caller mutation leaked into the cache")
	}

	// AdvanceEpoch makes the entry unreachable (lazy invalidation)…
	c.AdvanceEpoch()
	hits := v.CacheStats().Hits
	got4, err := v.Get("t/obj")
	if err != nil || !bytes.Equal(got4, data) {
		t.Fatalf("post-epoch get: %v", err)
	}
	if s := v.CacheStats(); s.Hits != hits {
		t.Fatal("stale-epoch entry served after AdvanceEpoch")
	}
	// …and the re-read re-cached at the new epoch.
	if _, err := v.Get("t/obj"); err != nil {
		t.Fatal(err)
	}
	if s := v.CacheStats(); s.Hits != hits+1 {
		t.Fatalf("re-cache at new epoch failed: %+v", s)
	}

	// RenewShares invalidates; the next read still returns the plaintext.
	if err := v.RenewShares("t/obj"); err != nil {
		t.Fatal(err)
	}
	if got, err := v.Get("t/obj"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-renew get: %v", err)
	}

	// Delete invalidates: a re-put under the same id must serve the NEW
	// bytes, never the cached old ones.
	if err := v.Delete("t/obj"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Get("t/obj"); err == nil {
		t.Fatal("deleted object served (stale cache)")
	}
	data2 := fill("obj-v2", 2048)
	if err := v.Put("t/obj", data2); err != nil {
		t.Fatal(err)
	}
	if got, err := v.Get("t/obj"); err != nil || !bytes.Equal(got, data2) {
		t.Fatalf("re-put served stale bytes: %v", err)
	}
}

func TestVaultCacheChunkedReadTo(t *testing.T) {
	c := cluster.New(8, nil)
	v := newCachedVault(t, c, 1<<20, WithChunkSize(512))
	data := fill("chunky", 2500) // 4 chunk stripes
	if err := v.Put("t/chunky", data); err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if _, err := v.ReadTo(context.Background(), "t/chunky", &first); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), data) {
		t.Fatal("streamed read mismatch")
	}
	if s := v.CacheStats(); s.Entries != 1 {
		t.Fatalf("chunked ReadTo did not fill the cache: %+v", s)
	}
	var second bytes.Buffer
	if _, err := v.ReadTo(context.Background(), "t/chunky", &second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(second.Bytes(), data) {
		t.Fatal("cached streamed read mismatch")
	}
	if s := v.CacheStats(); s.Hits != 1 {
		t.Fatalf("second ReadTo missed: %+v", s)
	}
	// Get on the same chunked object is served from the same entry.
	got, err := v.Get("t/chunky")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("cached chunked get: %v", err)
	}
	if s := v.CacheStats(); s.Hits != 2 {
		t.Fatalf("chunked get missed: %+v", s)
	}
}

func TestVaultCacheBatchMembers(t *testing.T) {
	c := cluster.New(8, nil)
	v := newCachedVault(t, c, 1<<20)
	b := v.NewBatcher()
	defer b.Close()
	d1, d2 := fill("m1", 300), fill("m2", 300)
	if err := b.Put("t/m1", d1); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("t/m2", d2); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		id   string
		want []byte
	}{{"t/m1", d1}, {"t/m2", d2}} {
		if got, err := v.Get(tc.id); err != nil || !bytes.Equal(got, tc.want) {
			t.Fatalf("fill get %s: %v", tc.id, err)
		}
		if got, err := v.Get(tc.id); err != nil || !bytes.Equal(got, tc.want) {
			t.Fatalf("cached get %s: %v", tc.id, err)
		}
	}
	if s := v.CacheStats(); s.Hits != 2 {
		t.Fatalf("batch member hits: %+v", s)
	}
	// Deleting one member must not disturb the other's cached bytes.
	if err := v.Delete("t/m1"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Get("t/m1"); err == nil {
		t.Fatal("deleted member served")
	}
	if got, err := v.Get("t/m2"); err != nil || !bytes.Equal(got, d2) {
		t.Fatalf("surviving member after batchmate delete: %v", err)
	}
}

func TestVaultWithoutCacheUnchanged(t *testing.T) {
	c := cluster.New(8, nil)
	enc := Erasure{K: 4, N: 8}
	v, err := NewVault(c, enc, WithGroup(group.Test()), WithRegistry(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	if v.CacheStats() != nil {
		t.Fatal("cache present without WithReadCache")
	}
	data := fill("x", 512)
	if err := v.Put("x", data); err != nil {
		t.Fatal(err)
	}
	if got, err := v.Get("x"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("uncached get: %v", err)
	}
}

// TestPrefetchCancel pins the prefetch window's cancellation contract: a
// context cancelled mid-read aborts cleanly (context error surfaced, no
// goroutine leak — the -race run would catch one touching freed state)
// and wasted look-aheads are tallied.
func TestPrefetchCancel(t *testing.T) {
	c := cluster.New(8, nil)
	reg := obs.NewRegistry()
	enc := Erasure{K: 4, N: 8}
	v, err := NewVault(c, enc, WithGroup(group.Test()), WithRegistry(reg), WithChunkSize(256), WithPrefetchWindow(3))
	if err != nil {
		t.Fatal(err)
	}
	data := fill("scan", 4000) // ~15 chunk stripes
	if err := v.Put("scan", data); err != nil {
		t.Fatal(err)
	}
	// A writer that cancels the read after the first chunk lands.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &cancelAfterWriter{cancel: cancel, after: 1}
	_, err = v.ReadTo(ctx, "scan", w)
	if err == nil {
		t.Fatal("cancelled read succeeded")
	}
	// The full read still works afterwards — nothing was left torn.
	got, err := v.Get("scan")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after cancelled prefetch: %v", err)
	}
}

// cancelAfterWriter cancels its context after `after` writes.
type cancelAfterWriter struct {
	cancel func()
	after  int
	n      int
}

func (w *cancelAfterWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n >= w.after {
		w.cancel()
	}
	return len(p), nil
}
