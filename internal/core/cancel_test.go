package core

import (
	"bytes"
	"context"
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"securearchive/internal/cluster"
	"securearchive/internal/group"
)

// Cancellation regression suite: every vault operation that crosses the
// cluster must return promptly when its caller disconnects, surface an
// error satisfying errors.Is(err, context.Canceled), and leave no
// committed or staged shards behind — the bugs this PR fixed were
// retry backoffs and fault-injected latencies sleeping through
// cancellation, and chunk pipelines that never looked at ctx between
// stages.

// slowVault builds a vault over a cluster whose every node op carries
// injected latency, so operations are reliably in flight when the test
// cancels them.
func slowVault(t *testing.T, chunkSize int, latency time.Duration) (*Vault, *cluster.Cluster) {
	t.Helper()
	c := cluster.New(8, nil)
	t.Cleanup(func() { c.Close() })
	c.SetFaultPlan(&cluster.FaultPlan{Seed: 1, Default: cluster.NodeFaults{Latency: latency}})
	v, err := NewVault(c, Erasure{K: 4, N: 8}, WithGroup(group.Test()), WithChunkSize(chunkSize))
	if err != nil {
		t.Fatal(err)
	}
	return v, c
}

// await bounds how long a canceled operation may take to return.
func await(t *testing.T, what string, done <-chan error) error {
	t.Helper()
	select {
	case err := <-done:
		return err
	case <-time.After(10 * time.Second):
		t.Fatalf("%s still running 10s after cancel", what)
		return nil
	}
}

func randBytes(t *testing.T, n int) []byte {
	t.Helper()
	buf := make([]byte, n)
	if _, err := rand.Read(buf); err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestPutChunkedCancelMidWrite cancels a multi-chunk put while its
// chunks are staging against slow nodes: the pipeline must abort
// between chunks, the stage must roll back (StoredBytes stays zero),
// and the id must not be registered.
func TestPutChunkedCancelMidWrite(t *testing.T) {
	v, c := slowVault(t, 1024, 20*time.Millisecond)
	data := randBytes(t, 8*1024) // 8 chunks x 8 shards, each shard write 20ms
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- v.PutContext(ctx, "victim", data) }()
	time.Sleep(50 * time.Millisecond) // a few shards in, most of the object to go
	cancel()
	err := await(t, "chunked put", done)
	if err == nil {
		t.Fatal("canceled put succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want errors.Is context.Canceled", err)
	}
	if got := c.StoredBytes(); got != 0 {
		t.Fatalf("StoredBytes = %d after aborted put; want 0 (orphaned staged shards)", got)
	}
	if _, err := v.Get("victim"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after aborted put = %v; want ErrNotFound", err)
	}
	// The id must be reusable: the reservation rolled back with the stage.
	c.SetFaultPlan(nil)
	if err := v.Put("victim", data); err != nil {
		t.Fatalf("re-put after aborted put: %v", err)
	}
}

// TestPutBatchedCancel cancels batched small-object puts: the member
// must come back with a context error and the failed batch must leave
// nothing committed.
func TestPutBatchedCancel(t *testing.T) {
	v, c := slowVault(t, 0, 20*time.Millisecond)
	b := v.NewBatcher()
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.PutContext(ctx, "member", randBytes(t, 512)) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	err := await(t, "batched put", done)
	if err == nil {
		t.Fatal("canceled batched put succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want errors.Is context.Canceled", err)
	}
	if got := c.StoredBytes(); got != 0 {
		t.Fatalf("StoredBytes = %d after aborted batch; want 0", got)
	}
}

// TestGetCancelMidDegraded cancels a read that is grinding through
// transient faults and slow probes: the caller must get the context
// error — not a DegradedError blaming the stripe for the caller's own
// departure — and must get it promptly despite the retry backoffs.
func TestGetCancelMidDegraded(t *testing.T) {
	v, c := slowVault(t, 1024, 0)
	data := randBytes(t, 4*1024)
	if err := v.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	// Heavy transients + per-probe latency: the read will retry/backoff.
	c.SetFaultPlan(&cluster.FaultPlan{Seed: 3, Default: cluster.NodeFaults{
		TransientProb: 0.9, Latency: 10 * time.Millisecond,
	}})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := v.GetContext(ctx, "obj")
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	err := await(t, "degraded get", done)
	if err == nil {
		t.Fatal("canceled get succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want errors.Is context.Canceled", err)
	}
	var de *DegradedError
	if errors.As(err, &de) {
		t.Fatalf("canceled get returned DegradedError %v; cancellation is not degradation", de)
	}
	// The object is intact: a clean read succeeds once faults clear.
	c.SetFaultPlan(nil)
	got, err := v.Get("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-cancel clean read: err=%v equal=%v", err, bytes.Equal(got, data))
	}
}

// TestRenewCancelRollsBack cancels a shares renewal mid-rewrite: the
// renewal must fail with the context error and the object must remain
// fully readable under its original encoding.
func TestRenewCancelRollsBack(t *testing.T) {
	v, c := slowVault(t, 1024, 0)
	data := randBytes(t, 4*1024)
	if err := v.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	baseline := c.StoredBytes()
	c.SetFaultPlan(&cluster.FaultPlan{Seed: 1, Default: cluster.NodeFaults{Latency: 15 * time.Millisecond}})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- v.RenewSharesContext(ctx, "obj") }()
	time.Sleep(120 * time.Millisecond) // read-back done, rewrite staging
	cancel()
	err := await(t, "renewal", done)
	if err == nil {
		t.Fatal("canceled renewal succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want errors.Is context.Canceled", err)
	}
	c.SetFaultPlan(nil)
	if got := c.StoredBytes(); got != baseline {
		t.Fatalf("StoredBytes = %d after aborted renewal; want baseline %d", got, baseline)
	}
	got, err := v.Get("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after aborted renewal: err=%v equal=%v", err, bytes.Equal(got, data))
	}
}

// TestScrubCancel cancels a scrub whose audit fetch is crawling over
// slow nodes; the cluster must be left exactly as it was.
func TestScrubCancel(t *testing.T) {
	v, c := slowVault(t, 1024, 0)
	data := randBytes(t, 4*1024)
	if err := v.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	baseline := c.StoredBytes()
	c.SetFaultPlan(&cluster.FaultPlan{Seed: 1, Default: cluster.NodeFaults{Latency: 15 * time.Millisecond}})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := v.ScrubContext(ctx, "obj")
		done <- err
	}()
	time.Sleep(40 * time.Millisecond)
	cancel()
	err := await(t, "scrub", done)
	if err == nil {
		t.Fatal("canceled scrub succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want errors.Is context.Canceled", err)
	}
	c.SetFaultPlan(nil)
	if got := c.StoredBytes(); got != baseline {
		t.Fatalf("StoredBytes = %d after canceled scrub; want %d", got, baseline)
	}
}

// TestPutReaderCancelMidStream cancels a streaming put partway through
// the reader: prompt return, context error, no orphans, and the
// vault-wide buffered-bytes gauge drains back to zero.
func TestPutReaderCancelMidStream(t *testing.T) {
	v, c := slowVault(t, 1024, 20*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := v.PutReader(ctx, "victim", bytes.NewReader(randBytes(t, 16*1024)))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	err := await(t, "streaming put", done)
	if err == nil {
		t.Fatal("canceled streaming put succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want errors.Is context.Canceled", err)
	}
	if got := c.StoredBytes(); got != 0 {
		t.Fatalf("StoredBytes = %d after aborted streaming put; want 0", got)
	}
	if got := v.streamBuffered.Load(); got != 0 {
		t.Fatalf("streamBuffered = %d after aborted streaming put; want 0 (gauge leak)", got)
	}
}
