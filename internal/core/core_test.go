package core

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"

	"securearchive/internal/sec"
)

func cfgSmall() Figure1Config {
	// Small objects keep the unit tests fast; bench_test.go measures the
	// full 1 MiB geometry.
	return Figure1Config{N: 8, K: 4, T: 4, PackCount: 3, ObjectLen: 8 << 10}
}

func TestAllEncodingsRoundTrip(t *testing.T) {
	data := make([]byte, 10000)
	rand.Read(data)
	for _, enc := range Figure1Encodings(cfgSmall()) {
		e, err := enc.Encode(data, rand.Reader)
		if err != nil {
			t.Fatalf("%s encode: %v", enc.Name(), err)
		}
		got, err := enc.Decode(e)
		if err != nil {
			t.Fatalf("%s decode: %v", enc.Name(), err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: round trip mismatch", enc.Name())
		}
	}
}

func TestEncodingsToleratesErasures(t *testing.T) {
	data := make([]byte, 5000)
	rand.Read(data)
	for _, enc := range Figure1Encodings(cfgSmall()) {
		n, min := enc.Shards()
		e, err := enc.Encode(data, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		// Drop shards from the END down to the decode minimum. (Packed
		// and Shamir decoders scan in order; end-drops exercise the
		// maximum tolerated loss for every encoding.)
		for i := min; i < n; i++ {
			e.Shards[i] = nil
		}
		got, err := enc.Decode(e)
		if err != nil {
			t.Fatalf("%s with %d erasures: %v", enc.Name(), n-min, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: mismatch after erasures", enc.Name())
		}
	}
}

func TestFigure1ShapeHolds(t *testing.T) {
	pts, err := Figure1(cfgSmall(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 9 {
		t.Fatalf("%d points, want 9", len(pts))
	}
	if bad := Figure1Shape(pts); len(bad) != 0 {
		t.Fatalf("Figure 1 shape violations: %v", bad)
	}
}

func TestFigure1NumericAnchors(t *testing.T) {
	pts, err := Figure1(cfgSmall(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) Figure1Point {
		for _, p := range pts {
			if p.Encoding == name {
				return p
			}
		}
		t.Fatalf("missing %s", name)
		return Figure1Point{}
	}
	// Replication and secret sharing: ≈ n = 8.
	if p := get("Replication"); p.Overhead < 7.9 || p.Overhead > 8.1 {
		t.Errorf("replication overhead %.2f, want 8", p.Overhead)
	}
	if p := get("Secret Sharing"); p.Overhead < 7.9 || p.Overhead > 8.1 {
		t.Errorf("secret sharing overhead %.2f, want 8", p.Overhead)
	}
	// Erasure coding: ≈ n/k = 2.
	if p := get("Erasure Coding"); p.Overhead < 1.95 || p.Overhead > 2.1 {
		t.Errorf("erasure overhead %.2f, want 2", p.Overhead)
	}
	// Packed sharing with k=3: ≈ 8/3 ≈ 2.67.
	if p := get("Packed Secret Sharing"); p.Overhead < 2.5 || p.Overhead > 2.9 {
		t.Errorf("packed overhead %.2f, want ≈2.67", p.Overhead)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows, err := Table1(Table1Config{Nodes: 8, ObjectLen: 16 << 10}, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	want := Table1Expected()
	for _, r := range rows {
		w, ok := want[r.System]
		if !ok {
			t.Errorf("unexpected system %q", r.System)
			continue
		}
		if r.TransitClass != w.Transit {
			t.Errorf("%s transit %s, paper says %s", r.System, r.TransitClass, w.Transit)
		}
		if r.RestClass != w.Rest {
			t.Errorf("%s rest %s, paper says %s", r.System, r.RestClass, w.Rest)
		}
		if r.CostBand != w.Cost {
			t.Errorf("%s cost %s (measured %.2fx), paper says %s", r.System, r.CostBand, r.MeasuredCost, w.Cost)
		}
	}
}

func TestRecommendShortHorizon(t *testing.T) {
	rec, err := Recommend(Requirements{HorizonYears: 10, MaxOverhead: 2.5, Nodes: 8, Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Encoding.Name() != "Cascade Encryption" {
		t.Fatalf("short horizon chose %s", rec.Encoding.Name())
	}
	if rec.NeedsProactiveRenewal {
		t.Fatal("computational encoding should not demand share renewal")
	}
	if len(rec.Caveats) == 0 {
		t.Fatal("no HNDL caveat on a computational recommendation")
	}
}

func TestRecommendLongHorizonRichBudget(t *testing.T) {
	rec, err := Recommend(Requirements{HorizonYears: 100, MaxOverhead: 10, Nodes: 8, Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Encoding.Name() != "Secret Sharing" {
		t.Fatalf("long horizon chose %s", rec.Encoding.Name())
	}
	if !rec.NeedsProactiveRenewal {
		t.Fatal("ITS encoding must demand proactive renewal")
	}
}

func TestRecommendLongHorizonTightBudget(t *testing.T) {
	rec, err := Recommend(Requirements{HorizonYears: 100, MaxOverhead: 3, Nodes: 8, Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Encoding.Name() != "Packed Secret Sharing" {
		t.Fatalf("tight ITS budget chose %s", rec.Encoding.Name())
	}
	p := rec.Encoding.(PackedSharing)
	if float64(p.N)/float64(p.K) > 3 {
		t.Fatalf("packed choice k=%d exceeds budget", p.K)
	}
}

func TestRecommendLeakageThreat(t *testing.T) {
	rec, err := Recommend(Requirements{HorizonYears: 100, MaxOverhead: 100, LeakageThreat: true, Nodes: 8, Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Encoding.LeakageResilient() {
		t.Fatalf("leakage threat chose non-LR encoding %s", rec.Encoding.Name())
	}
}

func TestRecommendEntropicFallback(t *testing.T) {
	rec, err := Recommend(Requirements{HorizonYears: 100, MaxOverhead: 2.7, HighEntropyData: true, Nodes: 8, Threshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	// n=8 t=6: max pack k = 1, packed unavailable; entropic must fire.
	if rec.Encoding.Name() != "Entropically Secure Encryption" {
		t.Fatalf("entropic fallback chose %s", rec.Encoding.Name())
	}
}

func TestRecommendUnsatisfiable(t *testing.T) {
	// Long horizon, 1.1x budget, low-entropy data: the paper's trade-off
	// bites and no encoding exists.
	_, err := Recommend(Requirements{HorizonYears: 100, MaxOverhead: 1.1, Nodes: 8, Threshold: 4})
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("expected ErrUnsatisfiable, got %v", err)
	}
	if _, err := Recommend(Requirements{HorizonYears: 1, MaxOverhead: 1, Nodes: 8, Threshold: 7}); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("sub-erasure budget: %v", err)
	}
	if _, err := Recommend(Requirements{HorizonYears: 1, MaxOverhead: 5, Nodes: 1, Threshold: 1}); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("bad geometry: %v", err)
	}
}

func TestLRSSWireRoundTrip(t *testing.T) {
	enc := LRSS{T: 3, N: 5}
	data := []byte("wire format survives the trip")
	e, err := enc.Encode(data, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a serialised share: decode of THAT share must fail cleanly,
	// and decoding from others still works.
	e.Shards[0] = e.Shards[0][:10]
	if _, err := decodeLRSSShare(e.Shards[0]); err == nil {
		t.Fatal("truncated LRSS share decoded")
	}
	e.Shards[0] = nil
	got, err := enc.Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch")
	}
}

func TestClassStrings(t *testing.T) {
	if sec.IT.String() != "ITS" || sec.ITSometimes.String() != "ITS (sometimes)" {
		t.Fatal("class strings diverge from Table 1 vocabulary")
	}
	if sec.CostLowHigh.String() != "Low-High" {
		t.Fatal("cost band strings diverge from Table 1 vocabulary")
	}
}
