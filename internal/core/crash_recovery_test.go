package core

// The crash-recovery matrix: every injected crash point × every
// shard-mutating vault operation, against the disk backend. Each cell
// kills the store at its precise instant (simulating kill -9 with the
// page cache lost), reopens the directory, and audits the durability
// contract:
//
//   - zero orphaned stages after replay,
//   - no mixed-epoch stripes and no partial stripes (an interrupted
//     multi-shard commit lands entirely or not at all),
//   - after re-driving the one legitimately partial operation (delete,
//     which is per-key), StoredBytes returns exactly to baseline.

import (
	"bytes"
	"testing"

	"securearchive/internal/cluster"
	"securearchive/internal/group"
	"securearchive/internal/store"
	"securearchive/internal/store/diskstore"
)

func TestCrashRecoveryMatrix(t *testing.T) {
	const nodes = 4
	keepData := bytes.Repeat([]byte("K"), 100)
	smallData := bytes.Repeat([]byte("V"), 100) // monolithic (< chunk size)
	bigData := bytes.Repeat([]byte("W"), 900)   // chunked at chunkSize 256
	points := []struct {
		name string
		cp   diskstore.CrashPoint
	}{
		{"mid-segment-append", diskstore.CrashMidSegmentAppend},
		{"before-wal-sync", diskstore.CrashBeforeWALSync},
		{"after-wal-sync", diskstore.CrashAfterWALSync},
	}
	ops := []struct {
		name   string
		victim []byte // nil: the op creates the victim itself
		isDel  bool
		run    func(v *Vault) error
	}{
		{"put", nil, false, func(v *Vault) error { return v.Put("victim", smallData) }},
		{"put-chunked", nil, false, func(v *Vault) error { return v.Put("victim", bigData) }},
		{"renew", smallData, false, func(v *Vault) error { return v.RenewShares("victim") }},
		{"delete", bigData, true, func(v *Vault) error { return v.Delete("victim") }},
	}

	for _, op := range ops {
		for _, pt := range points {
			t.Run(op.name+"/"+pt.name, func(t *testing.T) {
				dir := t.TempDir()
				cfg := store.Config{Backend: store.BackendDisk, Dir: dir}
				c, err := cluster.Open(nodes, nil, cfg)
				if err != nil {
					t.Fatal(err)
				}
				v, err := NewVault(c, Erasure{K: 2, N: nodes},
					WithGroup(group.Test()), WithChunkSize(256))
				if err != nil {
					t.Fatal(err)
				}
				if err := v.Put("keep", keepData); err != nil {
					t.Fatal(err)
				}
				if op.victim != nil {
					if err := v.Put("victim", op.victim); err != nil {
						t.Fatal(err)
					}
				}
				keepBytes := c.ObjectBytes("keep")
				preVictim := c.ObjectBytes("victim")

				ds := c.Store().(*diskstore.Store)
				ds.SetCrashPoint(pt.cp)
				opErr := op.run(v)
				ds.SetCrashPoint(diskstore.CrashNone)
				crashed := false
				if _, _, err := ds.Node(0).Get(store.ShardKey{}); err != nil {
					crashed = true // the armed point fired; the store is dead
				}
				if crashed && !op.isDel && opErr == nil {
					// Put/renew surface the commit failure; delete is
					// best-effort and may legitimately swallow it.
					t.Errorf("%s returned nil despite crash", op.name)
				}
				c.Close()

				// Reopen and audit.
				c2, err := cluster.Open(nodes, nil, cfg)
				if err != nil {
					t.Fatalf("reopen after %s/%s: %v", op.name, pt.name, err)
				}
				defer c2.Close()
				if n := c2.StagedCount(); n != 0 {
					t.Errorf("%d orphaned stages survived recovery", n)
				}
				// Stripe audit across every node's snapshot: single epoch
				// per object, and — except for the per-key delete — every
				// present (object, chunk) stripe held by all nodes.
				type stripe struct {
					obj   string
					chunk int
				}
				counts := map[stripe]int{}
				epochs := map[string]map[int]bool{}
				for node := 0; node < nodes; node++ {
					snap, err := c2.Snapshot(node)
					if err != nil {
						t.Fatal(err)
					}
					for _, sh := range snap {
						counts[stripe{sh.Key.Object, sh.Key.Chunk}]++
						if epochs[sh.Key.Object] == nil {
							epochs[sh.Key.Object] = map[int]bool{}
						}
						epochs[sh.Key.Object][sh.Epoch] = true
					}
				}
				for obj, es := range epochs {
					if len(es) != 1 {
						t.Errorf("object %s: mixed-epoch stripe %v", obj, es)
					}
				}
				if !op.isDel {
					for sk, n := range counts {
						if n != nodes {
							t.Errorf("partial stripe %s chunk %d: on %d/%d nodes", sk.obj, sk.chunk, n, nodes)
						}
					}
					// The victim is all-or-nothing: the full pre-op bytes
					// (rolled back, or the renewed same-size rewrite) or the
					// full committed write — never a fraction.
					vb := c2.ObjectBytes("victim")
					if vb != 0 && preVictim != 0 && vb != preVictim {
						t.Errorf("victim bytes = %d, want 0 or %d", vb, preVictim)
					}
				}
				if kb := c2.ObjectBytes("keep"); kb != keepBytes {
					t.Errorf("bystander object damaged: %d bytes, want %d", kb, keepBytes)
				}

				// Re-drive the delete (the one operation that is per-key,
				// so a crash legitimately leaves it half done), then the
				// cluster must be back to exactly the keep-only baseline.
				for ch := 0; ch < 8; ch++ {
					for i := 0; i < nodes; i++ {
						if err := c2.Delete(i, cluster.ShardKey{Object: "victim", Index: i, Chunk: ch}); err != nil {
							t.Fatalf("re-driven delete: %v", err)
						}
					}
				}
				if vb := c2.ObjectBytes("victim"); vb != 0 {
					t.Errorf("victim bytes after re-driven delete = %d", vb)
				}
				if got := c2.StoredBytes(); got != keepBytes {
					t.Errorf("StoredBytes = %d, want baseline %d", got, keepBytes)
				}
				if n := c2.StagedCount(); n != 0 {
					t.Errorf("%d staged shards at end", n)
				}
				// The recovery report is reachable for diagnostics.
				rep := c2.Store().(*diskstore.Store).Recovery()
				t.Logf("%s/%s: crashed=%v recovery=%+v", op.name, pt.name, crashed, rep)
			})
		}
	}
}
