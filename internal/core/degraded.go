package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"securearchive/internal/cluster"
	"securearchive/internal/obs"
	"securearchive/internal/obs/trace"
)

// ErrDegraded marks a read that gathered fewer shards than the encoding
// needs to decode: n−k+1 or more providers failed or served corrupt
// bytes. Match with errors.Is; errors.As against *DegradedError exposes
// the got/want counts and per-node causes.
var ErrDegraded = errors.New("core: degraded read below decode threshold")

// DegradedError is the typed failure for an under-populated stripe —
// what the user sees instead of an opaque scheme-level decode error.
type DegradedError struct {
	Object string
	// Got and Want are validated shards fetched vs the encoding minimum.
	Got, Want int
	// Failures attribute the misses per node (down, corrupt, missing…).
	Failures []cluster.NodeFailure
}

// Error renders e.g. "core: get obj1: insufficient shards: got 2,
// want 3 (node 4: corrupt, node 5: down)".
func (e *DegradedError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: get %s: insufficient shards: got %d, want %d", e.Object, e.Got, e.Want)
	if s := (&cluster.StripeResult{Failures: e.Failures}).FailureSummary(); s != "" {
		fmt.Fprintf(&b, " (%s)", s)
	}
	return b.String()
}

// Unwrap makes errors.Is(err, ErrDegraded) hold.
func (e *DegradedError) Unwrap() error { return ErrDegraded }

// vaultMetrics pre-resolves the vault's instruments so the Put/Get hot
// paths pay only atomic updates. Op latencies go through reg.Span
// (vault.put.ok / vault.put.err and friends); encode/decode throughput
// is recorded per operation in MB/s.
type vaultMetrics struct {
	reg *obs.Registry

	putBytes, getBytes *obs.Histogram
	encodeMBs          *obs.Histogram
	decodeMBs          *obs.Histogram
	// Encoding-labeled op latency: the vault.put.ns / vault.get.ns
	// families keyed by {encoding}, pre-resolved to this vault's series
	// so comparing replication vs erasure deployments is one query. The
	// flat vault.put.ok/.err histograms (fed by the tracer bridge) stay.
	putNsByEnc *obs.Histogram
	getNsByEnc *obs.Histogram
	// lockWaitNs records time spent blocked acquiring an object's lock —
	// near-zero when traffic spreads across objects (the striped design's
	// point), visible when workers pile onto one id.
	lockWaitNs       *obs.Histogram
	readDiscarded    *obs.Counter
	readDegraded     *obs.Counter
	readInsufficient *obs.Counter
	scrubRepairs     *obs.Counter

	// Pipelined chunked writes (pipeline.go): objects written through the
	// chunked path, chunks pushed through encode→stage, and the combined
	// encode+stage rate the pipeline achieved.
	pipelinePuts   *obs.Counter
	pipelineChunks *obs.Counter
	pipelineMBs    *obs.Histogram

	// Streaming ingest (stream.go): reader-fed puts, and the in-flight /
	// high-water plaintext bytes buffered between the reader and the
	// staged cluster writes — the gauge that proves a multi-GiB upload
	// stays O(chunk), not O(object), in RAM.
	streamPuts     *obs.Counter
	streamBuffered *obs.Gauge
	streamPeak     *obs.Gauge

	// Batched small-object writes (batch.go): member puts admitted,
	// flushes performed, members per flush, and how long a member waited
	// from enqueue to commit.
	batchPuts    *obs.Counter
	batchFlushes *obs.Counter
	batchMembers *obs.Histogram
	batchWaitNs  *obs.Histogram

	// Read cache & prefetch (cache.go, prefetch.go): the vault.cache.*
	// families are labeled by encoding so hit ratios compare across
	// deployments; the bytes gauge tracks residency against the budget
	// and the hit histogram is the served-from-memory latency the
	// saturation sweep reports p99 over.
	cacheHit       *obs.Counter
	cacheMiss      *obs.Counter
	cacheEvict     *obs.Counter
	cacheReject    *obs.Counter
	cacheBytes     *obs.Gauge
	cacheHitNs     *obs.Histogram
	prefetchIssued *obs.Counter
	prefetchWasted *obs.Counter
}

func newVaultMetrics(reg *obs.Registry, encName string) *vaultMetrics {
	slug := strings.ReplaceAll(strings.ToLower(encName), " ", "_")
	return &vaultMetrics{
		reg:              reg,
		putBytes:         reg.Histogram("vault.put.bytes", obs.SizeBuckets()),
		getBytes:         reg.Histogram("vault.get.bytes", obs.SizeBuckets()),
		encodeMBs:        reg.Histogram("encode."+slug+".mbps", obs.RateBuckets()),
		decodeMBs:        reg.Histogram("decode."+slug+".mbps", obs.RateBuckets()),
		putNsByEnc:       reg.LabeledHistogram("vault.put.ns", obs.LatencyBuckets(), "encoding").With(slug),
		getNsByEnc:       reg.LabeledHistogram("vault.get.ns", obs.LatencyBuckets(), "encoding").With(slug),
		lockWaitNs:       reg.Histogram("vault.lock.wait_ns", obs.LatencyBuckets()),
		readDiscarded:    reg.Counter("vault.read.discarded"),
		readDegraded:     reg.Counter("vault.read.degraded"),
		readInsufficient: reg.Counter("vault.read.insufficient"),
		scrubRepairs:     reg.Counter("vault.scrub.repairs"),
		pipelinePuts:     reg.Counter("vault.pipeline.puts"),
		pipelineChunks:   reg.Counter("vault.pipeline.chunks"),
		pipelineMBs:      reg.Histogram("vault.pipeline.mbps", obs.RateBuckets()),
		streamPuts:       reg.Counter("vault.stream.puts"),
		streamBuffered:   reg.Gauge("vault.stream.buffered_bytes"),
		streamPeak:       reg.Gauge("vault.stream.peak_buffered_bytes"),
		batchPuts:        reg.Counter("vault.batch.puts"),
		batchFlushes:     reg.Counter("vault.batch.flushes"),
		batchMembers:     reg.Histogram("vault.batch.members", []float64{1, 2, 4, 8, 16, 32, 64, 128}),
		batchWaitNs:      reg.Histogram("vault.batch.wait_ns", obs.LatencyBuckets()),
		cacheHit:         reg.LabeledCounter("vault.cache.hit", "encoding").With(slug),
		cacheMiss:        reg.LabeledCounter("vault.cache.miss", "encoding").With(slug),
		cacheEvict:       reg.LabeledCounter("vault.cache.evict", "encoding").With(slug),
		cacheReject:      reg.LabeledCounter("vault.cache.admit_reject", "encoding").With(slug),
		cacheBytes:       reg.Gauge("vault.cache.bytes"),
		cacheHitNs:       reg.LabeledHistogram("vault.cache.hit.ns", obs.LatencyBuckets(), "encoding").With(slug),
		prefetchIssued:   reg.LabeledCounter("vault.cache.prefetch.issued", "encoding").With(slug),
		prefetchWasted:   reg.LabeledCounter("vault.cache.prefetch.wasted", "encoding").With(slug),
	}
}

// observeRate records plainLen bytes processed in d as MB/s.
func observeRate(h *obs.Histogram, plainLen int, d time.Duration) {
	if d <= 0 || plainLen <= 0 {
		return
	}
	h.Observe(float64(plainLen) / d.Seconds() / 1e6)
}

// WithRegistry points the vault's metrics at reg instead of
// obs.Default() — used by isolated measurement runs and tests. The
// cluster's own metrics are separate; pair with Cluster.UseRegistry to
// capture both in one place.
func WithRegistry(reg *obs.Registry) VaultOption {
	return func(v *Vault) { v.obsReg = reg }
}

// WithTracer points the vault's hierarchical tracing at tr instead of
// the tracer NewVault would otherwise pick (trace.Default() with the
// default registry, a private tracer with an isolated one). Pass a
// tracer whose registry matches WithRegistry so the span-duration
// histograms land next to the rest of the vault's metrics.
func WithTracer(tr *trace.Tracer) VaultOption {
	return func(v *Vault) { v.tracer = tr }
}
