package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"securearchive/internal/cluster"
	"securearchive/internal/group"
	"securearchive/internal/obs"
)

// Acceptance: with exactly n−k+1 nodes offline the stripe is one shard
// short of decodable, and Get must say so — a typed DegradedError naming
// got/want and the per-node causes, not a scheme-level decode error.
func TestVaultGetDegradedBelowThreshold(t *testing.T) {
	for _, tc := range []struct {
		name string
		enc  Encoding
	}{
		{"erasure", Erasure{K: 4, N: 8}},
		{"shamir", SecretSharing{T: 4, N: 8}},
		{"packed", PackedSharing{T: 2, K: 2, N: 8}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			v, c := testVault(t, tc.enc)
			data := []byte("below threshold the read must fail loudly")
			if err := v.Put("r", data); err != nil {
				t.Fatal(err)
			}
			n, min := tc.enc.Shards()
			for i := 0; i < n-min+1; i++ {
				c.SetOnline(i, false)
			}
			_, err := v.Get("r")
			if !errors.Is(err, ErrDegraded) {
				t.Fatalf("get with %d nodes down: %v, want ErrDegraded", n-min+1, err)
			}
			var de *DegradedError
			if !errors.As(err, &de) {
				t.Fatalf("error %T does not unwrap to *DegradedError", err)
			}
			if de.Got != min-1 || de.Want != min {
				t.Fatalf("got/want = %d/%d, want %d/%d", de.Got, de.Want, min-1, min)
			}
			msg := err.Error()
			if !strings.Contains(msg, "insufficient shards: got") || !strings.Contains(msg, "node 0: down") {
				t.Fatalf("error text lacks counts or attribution: %q", msg)
			}
			// One node back above the threshold: the read recovers.
			c.SetOnline(0, true)
			got, err := v.Get("r")
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("get at exact threshold: %v", err)
			}
		})
	}
}

// A read that routes around bit rot must queue the object for scrubbing
// and bump vault.read.discarded — the repair loop learns from reads.
func TestVaultRotDiscardQueuesScrub(t *testing.T) {
	reg := obs.NewRegistry()
	c := cluster.New(8, nil)
	c.UseRegistry(reg)
	v, err := NewVault(c, Erasure{K: 4, N: 8}, WithGroup(group.Test()), WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("rot routed around must still get repaired")
	if err := v.Put("r", data); err != nil {
		t.Fatal(err)
	}
	// Rot node 2's shard deterministically: one read with p=1.
	c.SetFaultPlan(&cluster.FaultPlan{Seed: 5, Nodes: map[int]cluster.NodeFaults{
		2: {CorruptProb: 1.0},
	}})
	if _, err := c.Get(2, cluster.ShardKey{Object: "r", Index: 2}); err != nil {
		t.Fatal(err)
	}
	c.SetFaultPlan(nil)

	got, err := v.Get("r")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get with rotted shard: %v", err)
	}
	if d := v.DirtyObjects(); len(d) != 1 || d[0] != "r" {
		t.Fatalf("dirty queue = %v, want [r]", d)
	}
	if n := reg.Counter("vault.read.discarded").Load(); n < 1 {
		t.Fatalf("vault.read.discarded = %d, want >= 1", n)
	}
	if n := reg.Counter("cluster.fetch.discarded").Load(); n < 1 {
		t.Fatalf("cluster.fetch.discarded = %d, want >= 1", n)
	}
	if n := reg.Counter("cluster.fetch.discarded.node02").Load(); n < 1 {
		t.Fatalf("per-node discard attribution missing: %d", n)
	}

	// ScrubAll repairs the rot and drains the dirty queue.
	reports, err := v.ScrubAll()
	if err != nil {
		t.Fatal(err)
	}
	var repaired bool
	for _, rep := range reports {
		if rep.Object == "r" && rep.Repaired && len(rep.Corrupt) == 1 && rep.Corrupt[0] == 2 {
			repaired = true
		}
	}
	if !repaired {
		t.Fatalf("scrub did not repair the discarded shard: %+v", reports)
	}
	if d := v.DirtyObjects(); len(d) != 0 {
		t.Fatalf("dirty queue not drained: %v", d)
	}
	if n := reg.Counter("vault.scrub.repairs").Load(); n < 1 {
		t.Fatalf("vault.scrub.repairs = %d, want >= 1", n)
	}
}

// Metrics acceptance: an instrumented put/get round trip under transient
// faults shows up in the snapshot — op counters, size histograms, and
// retry counters (which land in the default registry).
func TestVaultMetricsSnapshot(t *testing.T) {
	reg := obs.NewRegistry()
	c := cluster.New(8, nil)
	c.UseRegistry(reg)
	v, err := NewVault(c, SecretSharing{T: 4, N: 8}, WithGroup(group.Test()), WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	retryBase := obs.Default().Counter("cluster.retry.attempts").Load()
	backoffBase := obs.Default().Counter("cluster.retry.backoff_ns").Load()

	if err := v.Put("m", []byte("measured object")); err != nil {
		t.Fatal(err)
	}
	c.SetFaultPlan(&cluster.FaultPlan{Seed: 11, Default: cluster.NodeFaults{TransientProb: 0.4}})
	for i := 0; i < 8; i++ {
		if _, err := v.Get("m"); err != nil {
			t.Fatalf("get %d under transients: %v", i, err)
		}
	}
	c.SetFaultPlan(nil)

	snap := reg.Snapshot()
	if snap.Counters["cluster.staged.ok"] == 0 {
		t.Fatal("cluster.staged.ok not counted")
	}
	if snap.Counters["cluster.stage.commit"] == 0 {
		t.Fatal("cluster.stage.commit not counted")
	}
	if snap.Counters["cluster.fetch.probes"] == 0 {
		t.Fatal("cluster.fetch.probes not counted")
	}
	h, ok := snap.Histograms["vault.get.bytes"]
	if !ok || h.Count != 8 || h.Sum != 8*float64(len("measured object")) {
		t.Fatalf("vault.get.bytes histogram wrong: %+v", h)
	}
	if _, ok := snap.Histograms["vault.put.ok"]; !ok {
		t.Fatal("vault.put span did not record")
	}
	// 8 reads at p=0.4 transients with seeded determinism must retry.
	if d := obs.Default().Counter("cluster.retry.attempts").Load() - retryBase; d < 1 {
		t.Fatalf("cluster.retry.attempts delta = %d, want >= 1", d)
	}
	if d := obs.Default().Counter("cluster.retry.backoff_ns").Load() - backoffBase; d < 1 {
		t.Fatalf("cluster.retry.backoff_ns delta = %d, want >= 1", d)
	}
}
