// Package core is the crypto-agile secure-archival framework this
// reproduction builds as the paper's called-for (but unbuilt) artifact:
// a single Encoding abstraction covering every data encoding in Figure 1,
// a measured regeneration of Figure 1 and Table 1, a policy engine that
// walks the security/cost trade-off the paper says archives are stuck
// with, and a Vault facade that composes an encoding with dispersal,
// integrity chains, and renewal.
//
// The Encoding interface deliberately spans the whole spectrum —
// replication (no confidentiality) through leakage-resilient secret
// sharing (strongest) — so that cost and security can be measured on the
// same axis, which is exactly what the paper's Figure 1 sketches
// qualitatively.
package core

import (
	"errors"
	"fmt"
	"io"

	"securearchive/internal/aont"
	"securearchive/internal/cascade"
	"securearchive/internal/entropic"
	"securearchive/internal/lrss"
	"securearchive/internal/packed"
	"securearchive/internal/rs"
	"securearchive/internal/sec"
	"securearchive/internal/shamir"
)

// Errors returned by this package.
var (
	ErrBadEncoding  = errors.New("core: invalid encoding parameters")
	ErrDecodeFailed = errors.New("core: decode failed")
	ErrEmptyData    = errors.New("core: empty data")
)

// Encoded is the dispersal-ready result of encoding one object.
type Encoded struct {
	// Scheme names the encoding that produced this.
	Scheme string
	// PlainLen is the original data length.
	PlainLen int
	// Shards are the node-bound pieces; Decode tolerates nils up to the
	// encoding's redundancy.
	Shards [][]byte
	// ClientSecret is key material the data owner keeps (never stored on
	// archive nodes). For encodings whose secret must itself be archived
	// at full size (OTP-style), the encoding accounts for it in
	// StoredBytes instead.
	ClientSecret []byte
	// PublicMeta is non-secret metadata stored alongside the shards
	// (nonces, seeds); counted into storage cost.
	PublicMeta []byte
}

// StoredBytes is the at-rest footprint: shards plus public metadata.
func (e *Encoded) StoredBytes() int {
	total := len(e.PublicMeta)
	for _, s := range e.Shards {
		total += len(s)
	}
	return total
}

// Overhead is stored bytes per plaintext byte.
func (e *Encoded) Overhead() float64 {
	if e.PlainLen == 0 {
		return 0
	}
	return float64(e.StoredBytes()) / float64(e.PlainLen)
}

// Encoding is one point of Figure 1: a data encoding with a security
// class, a leakage-resilience flag, and measurable storage cost.
type Encoding interface {
	// Name returns the Figure 1 label.
	Name() string
	// Class returns the confidentiality class of the encoding at rest.
	Class() sec.Class
	// LeakageResilient reports resistance to bounded local share leakage.
	LeakageResilient() bool
	// Shards returns (total, minimum-to-decode).
	Shards() (n, min int)
	// Encode produces node-ready shards.
	Encode(data []byte, rnd io.Reader) (*Encoded, error)
	// Decode reconstructs from shards (nil = missing).
	Decode(enc *Encoded) ([]byte, error)
}

// Parallelizable is implemented by encodings whose hot paths can fan out
// across goroutines. WithParallelism returns a copy of the encoding whose
// Encode/Decode use at most n workers; n <= 0 selects GOMAXPROCS and 1
// forces the serial path. Replication is pure copying and not covered.
type Parallelizable interface {
	WithParallelism(n int) Encoding
}

// --- replication ---

// Replication stores n plaintext copies: Figure 1's top-left — maximal
// cost, zero confidentiality, maximal simplicity.
type Replication struct{ N int }

// Name implements Encoding.
func (r Replication) Name() string { return "Replication" }

// Class implements Encoding.
func (r Replication) Class() sec.Class { return sec.None }

// LeakageResilient implements Encoding.
func (r Replication) LeakageResilient() bool { return false }

// Shards implements Encoding.
func (r Replication) Shards() (int, int) { return r.N, 1 }

// Encode implements Encoding.
func (r Replication) Encode(data []byte, _ io.Reader) (*Encoded, error) {
	if len(data) == 0 {
		return nil, ErrEmptyData
	}
	if r.N < 1 {
		return nil, fmt.Errorf("%w: replication n=%d", ErrBadEncoding, r.N)
	}
	shards := make([][]byte, r.N)
	for i := range shards {
		shards[i] = append([]byte(nil), data...)
	}
	return &Encoded{Scheme: r.Name(), PlainLen: len(data), Shards: shards}, nil
}

// Decode implements Encoding.
func (r Replication) Decode(enc *Encoded) ([]byte, error) {
	for _, s := range enc.Shards {
		if s != nil {
			return append([]byte(nil), s...), nil
		}
	}
	return nil, fmt.Errorf("%w: no replica available", ErrDecodeFailed)
}

// --- erasure coding ---

// Erasure is k-of-n Reed-Solomon: Figure 1's bottom-left — low cost, no
// confidentiality (systematic shards are plaintext fragments).
type Erasure struct {
	K, N int
	// Par bounds encode/decode goroutines; see Parallelizable.
	Par int
}

// WithParallelism implements Parallelizable.
func (e Erasure) WithParallelism(n int) Encoding { e.Par = n; return e }

// Name implements Encoding.
func (e Erasure) Name() string { return "Erasure Coding" }

// Class implements Encoding.
func (e Erasure) Class() sec.Class { return sec.None }

// LeakageResilient implements Encoding.
func (e Erasure) LeakageResilient() bool { return false }

// Shards implements Encoding.
func (e Erasure) Shards() (int, int) { return e.N, e.K }

// Encode implements Encoding.
func (e Erasure) Encode(data []byte, _ io.Reader) (*Encoded, error) {
	if len(data) == 0 {
		return nil, ErrEmptyData
	}
	code, err := rs.Cached(e.K, e.N-e.K, e.Par)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	shards, err := code.Encode(data)
	if err != nil {
		return nil, err
	}
	return &Encoded{Scheme: e.Name(), PlainLen: len(data), Shards: shards}, nil
}

// Decode implements Encoding.
func (e Erasure) Decode(enc *Encoded) ([]byte, error) {
	code, err := rs.Cached(e.K, e.N-e.K, e.Par)
	if err != nil {
		return nil, err
	}
	shards := append([][]byte(nil), enc.Shards...)
	if err := code.Reconstruct(shards); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecodeFailed, err)
	}
	return code.Join(shards, enc.PlainLen)
}

// --- traditional encryption (+EC for equal availability) ---

// TraditionalEncryption is AES-256-CTR over erasure-coded placement:
// Figure 1's "Traditional Encryption" — low cost, computational security.
type TraditionalEncryption struct {
	K, N int
	// Par bounds encode/decode goroutines; see Parallelizable.
	Par int
}

// WithParallelism implements Parallelizable.
func (t TraditionalEncryption) WithParallelism(n int) Encoding { t.Par = n; return t }

// Name implements Encoding.
func (t TraditionalEncryption) Name() string { return "Traditional Encryption" }

// Class implements Encoding.
func (t TraditionalEncryption) Class() sec.Class { return sec.Computational }

// LeakageResilient implements Encoding.
func (t TraditionalEncryption) LeakageResilient() bool { return false }

// Shards implements Encoding.
func (t TraditionalEncryption) Shards() (int, int) { return t.N, t.K }

// Encode implements Encoding.
func (t TraditionalEncryption) Encode(data []byte, rnd io.Reader) (*Encoded, error) {
	if len(data) == 0 {
		return nil, ErrEmptyData
	}
	keys, err := cascade.GenerateKeys([]cascade.Scheme{cascade.AES256CTR}, rnd)
	if err != nil {
		return nil, err
	}
	env, err := cascade.Encrypt(data, keys, rnd)
	if err != nil {
		return nil, err
	}
	code, err := rs.Cached(t.K, t.N-t.K, t.Par)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	shards, err := code.Encode(env.Body)
	if err != nil {
		return nil, err
	}
	return &Encoded{
		Scheme:       t.Name(),
		PlainLen:     len(data),
		Shards:       shards,
		ClientSecret: keys[0].Key,
		PublicMeta:   env.Layers[0].Nonce,
	}, nil
}

// Decode implements Encoding.
func (t TraditionalEncryption) Decode(enc *Encoded) ([]byte, error) {
	code, err := rs.Cached(t.K, t.N-t.K, t.Par)
	if err != nil {
		return nil, err
	}
	shards := append([][]byte(nil), enc.Shards...)
	if err := code.Reconstruct(shards); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecodeFailed, err)
	}
	// Ciphertext length == plaintext length for the stream cipher.
	body, err := code.Join(shards, enc.PlainLen)
	if err != nil {
		return nil, err
	}
	env := &cascade.Envelope{
		Layers: []cascade.Layer{{Scheme: cascade.AES256CTR, Nonce: enc.PublicMeta}},
		Body:   body,
	}
	return cascade.Decrypt(env, []cascade.LayerKey{{Scheme: cascade.AES256CTR, Key: enc.ClientSecret}})
}

// --- cascade encryption ---

// CascadeEncryption layers all registered cipher families over EC
// placement: ArchiveSafeLT's encoding as a Figure 1 point. Same cost band
// as traditional encryption, hedged against single-family breaks.
type CascadeEncryption struct {
	K, N int
	// Par bounds encode/decode goroutines; see Parallelizable.
	Par int
}

// WithParallelism implements Parallelizable.
func (c CascadeEncryption) WithParallelism(n int) Encoding { c.Par = n; return c }

// Name implements Encoding.
func (c CascadeEncryption) Name() string { return "Cascade Encryption" }

// Class implements Encoding.
func (c CascadeEncryption) Class() sec.Class { return sec.Computational }

// LeakageResilient implements Encoding.
func (c CascadeEncryption) LeakageResilient() bool { return false }

// Shards implements Encoding.
func (c CascadeEncryption) Shards() (int, int) { return c.N, c.K }

// Encode implements Encoding.
func (c CascadeEncryption) Encode(data []byte, rnd io.Reader) (*Encoded, error) {
	if len(data) == 0 {
		return nil, ErrEmptyData
	}
	keys, err := cascade.GenerateKeys(cascade.Schemes(), rnd)
	if err != nil {
		return nil, err
	}
	env, err := cascade.Encrypt(data, keys, rnd)
	if err != nil {
		return nil, err
	}
	code, err := rs.Cached(c.K, c.N-c.K, c.Par)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	shards, err := code.Encode(env.Body)
	if err != nil {
		return nil, err
	}
	// Serialise layer nonces and keys compactly.
	var meta, secret []byte
	for _, l := range env.Layers {
		meta = append(meta, byte(len(l.Nonce)))
		meta = append(meta, l.Nonce...)
	}
	for _, k := range keys {
		secret = append(secret, byte(len(k.Key)))
		secret = append(secret, k.Key...)
	}
	return &Encoded{Scheme: c.Name(), PlainLen: len(data), Shards: shards, ClientSecret: secret, PublicMeta: meta}, nil
}

// Decode implements Encoding.
func (c CascadeEncryption) Decode(enc *Encoded) ([]byte, error) {
	code, err := rs.Cached(c.K, c.N-c.K, c.Par)
	if err != nil {
		return nil, err
	}
	shards := append([][]byte(nil), enc.Shards...)
	if err := code.Reconstruct(shards); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecodeFailed, err)
	}
	body, err := code.Join(shards, enc.PlainLen)
	if err != nil {
		return nil, err
	}
	schemes := cascade.Schemes()
	layers := make([]cascade.Layer, 0, len(schemes))
	meta := enc.PublicMeta
	for _, s := range schemes {
		if len(meta) < 1 {
			return nil, ErrDecodeFailed
		}
		n := int(meta[0])
		if len(meta) < 1+n {
			return nil, ErrDecodeFailed
		}
		layers = append(layers, cascade.Layer{Scheme: s, Nonce: meta[1 : 1+n]})
		meta = meta[1+n:]
	}
	keys := make([]cascade.LayerKey, 0, len(schemes))
	secret := enc.ClientSecret
	for _, s := range schemes {
		if len(secret) < 1 {
			return nil, ErrDecodeFailed
		}
		n := int(secret[0])
		if len(secret) < 1+n {
			return nil, ErrDecodeFailed
		}
		keys = append(keys, cascade.LayerKey{Scheme: s, Key: secret[1 : 1+n]})
		secret = secret[1+n:]
	}
	env := &cascade.Envelope{Layers: layers, Body: body}
	return cascade.Decrypt(env, keys)
}

// --- entropically secure encryption ---

// EntropicEncryption is the Figure 1 "Entropically Secure Encryption"
// point: information-theoretic for high-min-entropy data, with a key
// shorter than the message. The key must be archived too; it is counted
// as stored bytes (spread across the same nodes in a real deployment).
type EntropicEncryption struct {
	K, N int
	// AssumedEntropyBits is the min-entropy the policy asserts for the
	// data; the key length follows the Dodis–Smith bound from it.
	AssumedEntropyBits int
	// Par bounds encode/decode goroutines; see Parallelizable.
	Par int
}

// WithParallelism implements Parallelizable.
func (e EntropicEncryption) WithParallelism(n int) Encoding { e.Par = n; return e }

// Name implements Encoding.
func (e EntropicEncryption) Name() string { return "Entropically Secure Encryption" }

// Class implements Encoding.
func (e EntropicEncryption) Class() sec.Class { return sec.Entropic }

// LeakageResilient implements Encoding.
func (e EntropicEncryption) LeakageResilient() bool { return false }

// Shards implements Encoding.
func (e EntropicEncryption) Shards() (int, int) { return e.N, e.K }

// Encode implements Encoding.
func (e EntropicEncryption) Encode(data []byte, rnd io.Reader) (*Encoded, error) {
	if len(data) == 0 {
		return nil, ErrEmptyData
	}
	keyLen := entropic.KeyLenFor(len(data), e.AssumedEntropyBits, 128)
	key := make([]byte, keyLen)
	if _, err := io.ReadFull(rnd, key); err != nil {
		return nil, err
	}
	ct, err := entropic.Encrypt(data, key, rnd)
	if err != nil {
		return nil, err
	}
	code, err := rs.Cached(e.K, e.N-e.K, e.Par)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	shards, err := code.Encode(ct.Body)
	if err != nil {
		return nil, err
	}
	// The key is itself long-lived secret material that the archive must
	// hold somewhere ITS-safe; count it as public-meta-sized stored bytes
	// (the accounting choice Figure 1 implies: cost between encryption
	// and OTP).
	meta := append(append([]byte(nil), ct.Seed...), key...)
	return &Encoded{Scheme: e.Name(), PlainLen: len(data), Shards: shards, PublicMeta: meta, ClientSecret: key}, nil
}

// Decode implements Encoding.
func (e EntropicEncryption) Decode(enc *Encoded) ([]byte, error) {
	code, err := rs.Cached(e.K, e.N-e.K, e.Par)
	if err != nil {
		return nil, err
	}
	shards := append([][]byte(nil), enc.Shards...)
	if err := code.Reconstruct(shards); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecodeFailed, err)
	}
	body, err := code.Join(shards, enc.PlainLen)
	if err != nil {
		return nil, err
	}
	key := enc.ClientSecret
	seed := enc.PublicMeta[:len(key)]
	return entropic.Decrypt(&entropic.Ciphertext{Seed: seed, Body: body}, key)
}

// --- AONT-RS ---

// AONTRS is the Resch–Plank encoding as a Figure 1 point.
type AONTRS struct {
	K, N int
	// Par bounds encode/decode goroutines; see Parallelizable.
	Par int
}

// WithParallelism implements Parallelizable.
func (a AONTRS) WithParallelism(n int) Encoding { a.Par = n; return a }

// Name implements Encoding.
func (a AONTRS) Name() string { return "AONT-RS" }

// Class implements Encoding.
func (a AONTRS) Class() sec.Class { return sec.Computational }

// LeakageResilient implements Encoding.
func (a AONTRS) LeakageResilient() bool { return false }

// Shards implements Encoding.
func (a AONTRS) Shards() (int, int) { return a.N, a.K }

// Encode implements Encoding.
func (a AONTRS) Encode(data []byte, rnd io.Reader) (*Encoded, error) {
	if len(data) == 0 {
		return nil, ErrEmptyData
	}
	sch, err := aont.NewScheme(a.K, a.N, rs.WithParallelism(a.Par))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	shards, pkgLen, err := sch.Encode(data)
	if err != nil {
		return nil, err
	}
	meta := []byte{byte(pkgLen >> 24), byte(pkgLen >> 16), byte(pkgLen >> 8), byte(pkgLen)}
	return &Encoded{Scheme: a.Name(), PlainLen: len(data), Shards: shards, PublicMeta: meta}, nil
}

// Decode implements Encoding.
func (a AONTRS) Decode(enc *Encoded) ([]byte, error) {
	sch, err := aont.NewScheme(a.K, a.N, rs.WithParallelism(a.Par))
	if err != nil {
		return nil, err
	}
	if len(enc.PublicMeta) != 4 {
		return nil, ErrDecodeFailed
	}
	pkgLen := int(enc.PublicMeta[0])<<24 | int(enc.PublicMeta[1])<<16 | int(enc.PublicMeta[2])<<8 | int(enc.PublicMeta[3])
	shards := append([][]byte(nil), enc.Shards...)
	out, err := sch.Decode(shards, pkgLen, enc.PlainLen)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecodeFailed, err)
	}
	return out, nil
}

// --- secret sharing ---

// SecretSharing is (t, n) Shamir: Figure 1's top-right ITS point.
type SecretSharing struct {
	T, N int
	// Par bounds encode/decode goroutines; see Parallelizable.
	Par int
}

// WithParallelism implements Parallelizable.
func (s SecretSharing) WithParallelism(n int) Encoding { s.Par = n; return s }

// Name implements Encoding.
func (s SecretSharing) Name() string { return "Secret Sharing" }

// Class implements Encoding.
func (s SecretSharing) Class() sec.Class { return sec.IT }

// LeakageResilient implements Encoding.
func (s SecretSharing) LeakageResilient() bool { return false }

// Shards implements Encoding.
func (s SecretSharing) Shards() (int, int) { return s.N, s.T }

// Encode implements Encoding.
func (s SecretSharing) Encode(data []byte, rnd io.Reader) (*Encoded, error) {
	if len(data) == 0 {
		return nil, ErrEmptyData
	}
	shares, err := shamir.Split(data, s.N, s.T, rnd, shamir.WithParallelism(s.Par))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	shards := make([][]byte, s.N)
	for i, sh := range shares {
		shards[i] = sh.Payload
	}
	return &Encoded{Scheme: s.Name(), PlainLen: len(data), Shards: shards}, nil
}

// Decode implements Encoding.
func (s SecretSharing) Decode(enc *Encoded) ([]byte, error) {
	shares := make([]shamir.Share, 0, s.T)
	for i, d := range enc.Shards {
		if d == nil {
			continue
		}
		shares = append(shares, shamir.Share{X: byte(i + 1), Threshold: byte(s.T), Payload: d})
		if len(shares) == s.T {
			break
		}
	}
	out, err := shamir.Combine(shares, shamir.WithParallelism(s.Par))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecodeFailed, err)
	}
	return out, nil
}

// --- packed secret sharing ---

// PackedSharing is Franklin–Yung packed sharing: ITS at ~n/k cost, the
// paper's candidate for the "smiley face" corner.
type PackedSharing struct {
	T, K, N int
	// Par bounds encode/decode goroutines; see Parallelizable.
	Par int
}

// WithParallelism implements Parallelizable.
func (p PackedSharing) WithParallelism(n int) Encoding { p.Par = n; return p }

// Name implements Encoding.
func (p PackedSharing) Name() string { return "Packed Secret Sharing" }

// Class implements Encoding.
func (p PackedSharing) Class() sec.Class { return sec.IT }

// LeakageResilient implements Encoding.
func (p PackedSharing) LeakageResilient() bool { return false }

// Shards implements Encoding.
func (p PackedSharing) Shards() (int, int) { return p.N, p.T + p.K }

// Encode implements Encoding.
func (p PackedSharing) Encode(data []byte, rnd io.Reader) (*Encoded, error) {
	if len(data) == 0 {
		return nil, ErrEmptyData
	}
	shares, err := packed.Split(data, packed.Params{N: p.N, T: p.T, K: p.K}, rnd, packed.WithParallelism(p.Par))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	shards := make([][]byte, p.N)
	for i, sh := range shares {
		shards[i] = sh.Payload
	}
	return &Encoded{Scheme: p.Name(), PlainLen: len(data), Shards: shards}, nil
}

// Decode implements Encoding.
func (p PackedSharing) Decode(enc *Encoded) ([]byte, error) {
	params := packed.Params{N: p.N, T: p.T, K: p.K}
	shares := make([]packed.Share, 0, params.RecoverThreshold())
	for i, d := range enc.Shards {
		if d == nil {
			continue
		}
		shares = append(shares, packed.Share{
			X:         byte(p.K + p.T + i),
			Threshold: byte(p.T),
			PackCount: byte(p.K),
			SecretLen: enc.PlainLen,
			Payload:   d,
		})
		if len(shares) == params.RecoverThreshold() {
			break
		}
	}
	out, err := packed.Combine(shares, packed.WithParallelism(p.Par))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecodeFailed, err)
	}
	return out, nil
}

// --- leakage-resilient secret sharing ---

// LRSS is the extractor-wrapped sharing: Figure 1's top-right-most point —
// ITS plus local-leakage resilience, at the highest storage cost.
type LRSS struct {
	T, N int
	// Par bounds encode/decode goroutines; see Parallelizable.
	Par int
}

// WithParallelism implements Parallelizable.
func (l LRSS) WithParallelism(n int) Encoding { l.Par = n; return l }

// Name implements Encoding.
func (l LRSS) Name() string { return "Leakage-Resilient Secret Sharing" }

// Class implements Encoding.
func (l LRSS) Class() sec.Class { return sec.IT }

// LeakageResilient implements Encoding.
func (l LRSS) LeakageResilient() bool { return true }

// Shards implements Encoding.
func (l LRSS) Shards() (int, int) { return l.N, l.T }

// lrssParams are the scheme parameters used by this encoding.
func (l LRSS) lrssParams() lrss.Params {
	return lrss.Params{N: l.N, T: l.T, SourceLen: lrss.DefaultSourceLen, Par: l.Par}
}

// Encode implements Encoding. Each shard serialises the party's full LRSS
// share (source, masked share, seed shares).
func (l LRSS) Encode(data []byte, rnd io.Reader) (*Encoded, error) {
	if len(data) == 0 {
		return nil, ErrEmptyData
	}
	shares, err := lrss.Split(data, l.lrssParams(), rnd)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	shards := make([][]byte, l.N)
	for i, sh := range shares {
		shards[i] = encodeLRSSShare(sh)
	}
	return &Encoded{Scheme: l.Name(), PlainLen: len(data), Shards: shards}, nil
}

// Decode implements Encoding.
func (l LRSS) Decode(enc *Encoded) ([]byte, error) {
	shares := make([]lrss.Share, 0, l.T)
	for _, d := range enc.Shards {
		if d == nil {
			continue
		}
		sh, err := decodeLRSSShare(d)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrDecodeFailed, err)
		}
		shares = append(shares, sh)
		if len(shares) == l.T {
			break
		}
	}
	out, err := lrss.Combine(shares, lrss.WithParallelism(l.Par))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecodeFailed, err)
	}
	return out, nil
}
