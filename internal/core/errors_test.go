package core

import (
	"crypto/rand"
	"errors"
	"testing"
)

func TestEncodeBadParams(t *testing.T) {
	data := []byte("x")
	bad := []Encoding{
		Replication{N: 0},
		Erasure{K: 0, N: 4},
		TraditionalEncryption{K: 5, N: 4},
		CascadeEncryption{K: 0, N: 0},
		AONTRS{K: 0, N: 4},
		SecretSharing{T: 5, N: 4},
		PackedSharing{T: 4, K: 4, N: 4},
		LRSS{T: 1, N: 4},
	}
	for _, enc := range bad {
		if _, err := enc.Encode(data, rand.Reader); err == nil {
			t.Errorf("%T with bad params encoded successfully", enc)
		}
	}
}

func TestEncodeEmptyData(t *testing.T) {
	for _, enc := range []Encoding{
		Replication{N: 2},
		EntropicEncryption{K: 2, N: 4},
	} {
		if _, err := enc.Encode(nil, rand.Reader); !errors.Is(err, ErrEmptyData) {
			t.Errorf("%T empty data: %v", enc, err)
		}
	}
}

func TestDecodeBelowThresholdFails(t *testing.T) {
	data := make([]byte, 2000)
	rand.Read(data)
	for _, enc := range Figure1Encodings(cfgSmall()) {
		e, err := enc.Encode(data, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		_, min := enc.Shards()
		// Keep strictly fewer than the minimum.
		for i := min - 1; i < len(e.Shards); i++ {
			e.Shards[i] = nil
		}
		if _, err := enc.Decode(e); err == nil {
			t.Errorf("%s decoded below its threshold", enc.Name())
		}
	}
}

func TestDecodeCorruptMetadata(t *testing.T) {
	data := []byte("metadata must be validated")
	cas := CascadeEncryption{K: 2, N: 4}
	e, err := cas.Encode(data, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	e.PublicMeta = e.PublicMeta[:1]
	if _, err := cas.Decode(e); !errors.Is(err, ErrDecodeFailed) {
		t.Fatalf("truncated cascade meta: %v", err)
	}

	an := AONTRS{K: 2, N: 4}
	e2, err := an.Encode(data, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	e2.PublicMeta = []byte{1}
	if _, err := an.Decode(e2); !errors.Is(err, ErrDecodeFailed) {
		t.Fatalf("truncated aont meta: %v", err)
	}
}

func TestReplicationDecodeNoReplicas(t *testing.T) {
	r := Replication{N: 3}
	e, _ := r.Encode([]byte("gone"), rand.Reader)
	for i := range e.Shards {
		e.Shards[i] = nil
	}
	if _, err := r.Decode(e); !errors.Is(err, ErrDecodeFailed) {
		t.Fatalf("no replicas: %v", err)
	}
}

func TestEncodedAccounting(t *testing.T) {
	e := &Encoded{PlainLen: 100, Shards: [][]byte{make([]byte, 60), make([]byte, 60)}, PublicMeta: make([]byte, 30)}
	if e.StoredBytes() != 150 {
		t.Fatalf("stored = %d", e.StoredBytes())
	}
	if e.Overhead() != 1.5 {
		t.Fatalf("overhead = %v", e.Overhead())
	}
	empty := &Encoded{}
	if empty.Overhead() != 0 {
		t.Fatal("zero-length overhead")
	}
}
