package core_test

import (
	"fmt"
	"log"

	"securearchive/internal/cluster"
	"securearchive/internal/core"
	"securearchive/internal/group"
)

// Example walks the framework's happy path: ask the policy engine for an
// encoding matching a century-long confidentiality horizon, archive into
// a vault, lose nodes, recover.
func Example() {
	rec, err := core.Recommend(core.Requirements{
		HorizonYears: 100,
		MaxOverhead:  10,
		Nodes:        8,
		Threshold:    4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("encoding:", rec.Encoding.Name())
	fmt.Println("needs renewal:", rec.NeedsProactiveRenewal)

	c := cluster.New(8, nil)
	vault, err := core.NewVault(c, rec.Encoding, core.WithGroup(group.Test()))
	if err != nil {
		log.Fatal(err)
	}
	if err := vault.Put("deed", []byte("the land grant of 2026")); err != nil {
		log.Fatal(err)
	}
	c.SetOnline(1, false)
	c.SetOnline(6, false)
	got, err := vault.Get("deed")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered with 2 nodes down: %s\n", got)
	// Output:
	// encoding: Secret Sharing
	// needs renewal: true
	// recovered with 2 nodes down: the land grant of 2026
}

// ExampleRecommend_unsatisfiable shows the paper's trade-off in error
// form: a century horizon with a near-erasure budget and compressible
// data has no encoding.
func ExampleRecommend_unsatisfiable() {
	_, err := core.Recommend(core.Requirements{
		HorizonYears: 100,
		MaxOverhead:  1.1,
		Nodes:        8,
		Threshold:    4,
	})
	fmt.Println("satisfiable:", err == nil)
	// Output:
	// satisfiable: false
}

// ExamplePlanRenewal sizes a renewal schedule against the mobile
// adversary.
func ExamplePlanRenewal() {
	plan, err := core.PlanRenewal(100000, 40000, 3, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("refresh interval (epochs):", plan.RefreshIntervalEpochs)
	fmt.Println("adversary gather time (epochs):", plan.GatherEpochs)
	fmt.Println("safe:", plan.Safe)
	// Output:
	// refresh interval (epochs): 3
	// adversary gather time (epochs): 3
	// safe: false
}
