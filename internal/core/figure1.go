package core

import (
	"fmt"
	"io"
	"sort"

	"securearchive/internal/sec"
)

// Figure1Point is one measured point of the paper's Figure 1: an encoding
// placed on the (security level, storage cost) plane.
type Figure1Point struct {
	Encoding         string
	SecurityLevel    int // sec.Class ordinal: 0 none .. 4 ITS
	SecurityClass    sec.Class
	LeakageResilient bool
	Overhead         float64 // measured bytes stored per plaintext byte
}

// Figure1Config fixes the dispersal geometry so every encoding is
// measured at the same redundancy: n nodes, any n−k losses tolerated for
// threshold-k encodings.
type Figure1Config struct {
	N         int // nodes / shares
	K         int // decode threshold for rate-style encodings
	T         int // privacy threshold for sharing-style encodings
	PackCount int // k for packed sharing
	ObjectLen int // measured object size in bytes
}

// DefaultFigure1Config measures 1 MiB objects over 8 nodes with a
// 4-threshold — the geometry used in EXPERIMENTS.md.
func DefaultFigure1Config() Figure1Config {
	return Figure1Config{N: 8, K: 4, T: 4, PackCount: 3, ObjectLen: 1 << 20}
}

// Figure1Encodings instantiates the full Figure 1 roster under cfg.
func Figure1Encodings(cfg Figure1Config) []Encoding {
	return []Encoding{
		Replication{N: cfg.N},
		Erasure{K: cfg.K, N: cfg.N},
		TraditionalEncryption{K: cfg.K, N: cfg.N},
		CascadeEncryption{K: cfg.K, N: cfg.N},
		AONTRS{K: cfg.K, N: cfg.N},
		EntropicEncryption{K: cfg.K, N: cfg.N, AssumedEntropyBits: cfg.ObjectLen * 6}, // 6 bits/byte min-entropy
		SecretSharing{T: cfg.T, N: cfg.N},
		PackedSharing{T: cfg.T, K: cfg.PackCount, N: cfg.N},
		LRSS{T: cfg.T, N: cfg.N},
	}
}

// Figure1 measures every encoding: each one encodes a cfg.ObjectLen-byte
// object drawn from rnd, and its real stored footprint becomes the cost
// axis. Points are sorted by security level then overhead, mirroring the
// chart's left-to-right reading.
func Figure1(cfg Figure1Config, rnd io.Reader) ([]Figure1Point, error) {
	data := make([]byte, cfg.ObjectLen)
	if _, err := io.ReadFull(rnd, data); err != nil {
		return nil, err
	}
	var pts []Figure1Point
	for _, enc := range Figure1Encodings(cfg) {
		e, err := enc.Encode(data, rnd)
		if err != nil {
			return nil, fmt.Errorf("core: figure1 %s: %w", enc.Name(), err)
		}
		// Round-trip check: a point that cannot decode is not a data
		// encoding, whatever its cost.
		if got, err := enc.Decode(e); err != nil || len(got) != len(data) {
			return nil, fmt.Errorf("core: figure1 %s failed round trip: %v", enc.Name(), err)
		}
		pts = append(pts, Figure1Point{
			Encoding:         enc.Name(),
			SecurityLevel:    enc.Class().SecurityLevel(),
			SecurityClass:    enc.Class(),
			LeakageResilient: enc.LeakageResilient(),
			Overhead:         e.Overhead(),
		})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].SecurityLevel != pts[j].SecurityLevel {
			return pts[i].SecurityLevel < pts[j].SecurityLevel
		}
		return pts[i].Overhead < pts[j].Overhead
	})
	return pts, nil
}

// Figure1Shape checks the qualitative orderings the paper's chart
// asserts, returning a list of violated claims (empty = the measured
// chart has the paper's shape). The claims:
//
//  1. Erasure coding costs less than replication.
//  2. Traditional encryption ≈ erasure coding cost (within 10%).
//  3. AONT-RS ≈ erasure coding cost (within 10%).
//  4. Secret sharing ≈ replication cost (within 10%) — perfect secrecy's
//     unavoidable price.
//  5. Packed sharing cuts secret sharing's cost by ≈ its pack factor.
//  6. LRSS costs strictly more than secret sharing.
//  7. Security ordering: ITS encodings (sharing family) > entropic >
//     computational (encryption family) > none (replication/EC).
func Figure1Shape(pts []Figure1Point) []string {
	get := func(name string) *Figure1Point {
		for i := range pts {
			if pts[i].Encoding == name {
				return &pts[i]
			}
		}
		return nil
	}
	var bad []string
	rep, ec := get("Replication"), get("Erasure Coding")
	enc, aont := get("Traditional Encryption"), get("AONT-RS")
	ss, pss, lr := get("Secret Sharing"), get("Packed Secret Sharing"), get("Leakage-Resilient Secret Sharing")
	ent := get("Entropically Secure Encryption")
	if rep == nil || ec == nil || enc == nil || aont == nil || ss == nil || pss == nil || lr == nil || ent == nil {
		return []string{"missing encodings"}
	}
	within := func(a, b, tol float64) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		return d <= tol*b
	}
	if ec.Overhead >= rep.Overhead {
		bad = append(bad, "erasure coding not cheaper than replication")
	}
	if !within(enc.Overhead, ec.Overhead, 0.10) {
		bad = append(bad, "traditional encryption cost far from erasure coding")
	}
	if !within(aont.Overhead, ec.Overhead, 0.10) {
		bad = append(bad, "AONT-RS cost far from erasure coding")
	}
	if !within(ss.Overhead, rep.Overhead, 0.10) {
		bad = append(bad, "secret sharing cost far from replication")
	}
	if pss.Overhead >= ss.Overhead {
		bad = append(bad, "packed sharing did not beat secret sharing cost")
	}
	if lr.Overhead <= ss.Overhead {
		bad = append(bad, "LRSS not costlier than secret sharing")
	}
	if ss.SecurityLevel <= ent.SecurityLevel || ent.SecurityLevel <= enc.SecurityLevel || enc.SecurityLevel <= rep.SecurityLevel {
		bad = append(bad, "security ordering violated")
	}
	if !lr.LeakageResilient || ss.LeakageResilient {
		bad = append(bad, "leakage-resilience flags wrong")
	}
	return bad
}
