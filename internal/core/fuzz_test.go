package core

// Native fuzz targets for the two attacker-facing byte surfaces: the
// LRSS wire share parser (bytes come straight off storage nodes) and
// shard combination (mutated shards fed to the RS / Shamir / packed
// decoders). Seed corpora live in testdata/fuzz/<Target>/; the verify
// recipe runs each target briefly (-fuzztime 10s) on top of the seeds,
// which `go test` always replays.

import (
	"bytes"
	"crypto/rand"
	"testing"

	"securearchive/internal/lrss"
)

// fuzzShare builds a small but fully populated LRSS share for seeding.
func fuzzShare() lrss.Share {
	data := []byte("fuzz seed secret material.")
	shares, err := lrss.Split(data, lrss.Params{N: 4, T: 2, SourceLen: 16}, rand.Reader)
	if err != nil {
		panic(err)
	}
	return shares[1]
}

// FuzzWireDecode hammers decodeLRSSShare: arbitrary bytes must either
// parse or fail with an error — never panic, never allocate unboundedly
// (the count field is attacker-controlled) — and anything that parses
// must survive an encode/decode round trip unchanged.
func FuzzWireDecode(f *testing.F) {
	valid := encodeLRSSShare(fuzzShare())
	f.Add([]byte(nil))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	// A count field claiming 2^31 seed shares with an empty body.
	f.Add([]byte{0, 0, 0, 1, 2, 0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 0, 0, 0x80, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decodeLRSSShare(data)
		if err != nil {
			return
		}
		buf := encodeLRSSShare(s)
		s2, err := decodeLRSSShare(buf)
		if err != nil {
			t.Fatalf("re-decode of re-encoded share failed: %v", err)
		}
		if s2.Index != s.Index || s2.T != s.T || s2.SecretLen != s.SecretLen ||
			!bytes.Equal(s2.Source, s.Source) || !bytes.Equal(s2.Masked, s.Masked) ||
			len(s2.SeedShares) != len(s.SeedShares) {
			t.Fatalf("share round trip not stable")
		}
		for i := range s.SeedShares {
			if s2.SeedShares[i].X != s.SeedShares[i].X ||
				s2.SeedShares[i].Threshold != s.SeedShares[i].Threshold ||
				!bytes.Equal(s2.SeedShares[i].Payload, s.SeedShares[i].Payload) {
				t.Fatalf("seed share %d round trip not stable", i)
			}
		}
	})
}

// FuzzBatchBlob hammers the batched-write blob framing: arbitrary bytes
// must parse or fail cleanly (bounded allocation — the count field is
// attacker-controlled), anything that parses must re-encode to the exact
// same bytes (the format is canonical), and the encoder's reported
// payload offsets must index the blob correctly.
func FuzzBatchBlob(f *testing.F) {
	seed, offs := encodeBatchBlob(
		[]string{"a", "obj-two", ""},
		[][]byte{[]byte("payload one"), []byte("p2"), nil})
	_ = offs
	f.Add([]byte(nil))
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	// A count field claiming 2^31 members over an empty body.
	f.Add([]byte{0x80, 0, 0, 0})
	f.Fuzz(func(t *testing.T, blob []byte) {
		ids, datas, err := decodeBatchBlob(blob)
		if err != nil {
			return
		}
		re, offsets := encodeBatchBlob(ids, datas)
		if !bytes.Equal(re, blob) {
			t.Fatalf("canonical re-encode differs: %d bytes vs %d", len(re), len(blob))
		}
		for i, off := range offsets {
			if !bytes.Equal(re[off:off+len(datas[i])], datas[i]) {
				t.Fatalf("offset %d of member %d does not locate its payload", off, i)
			}
		}
	})
}

// FuzzShardCombine feeds a mutated shard into the RS, Shamir and packed
// combiners. The invariants mirror the vault's read path: the digest
// check must flag every mutation (that is the oracle that stops
// silently-wrong plaintext), decoding the surviving shards must
// reconstruct the original exactly, and decoding with the rotted shard
// still present must never panic — garbage or an error are both
// acceptable there, because the digest layer has already disqualified
// that shard.
func FuzzShardCombine(f *testing.F) {
	f.Add([]byte("fuzz shard combine seed"), uint8(0), uint8(1), uint16(0))
	f.Add([]byte("another seed, longer, to cross shard boundaries....."), uint8(3), uint8(0xFF), uint16(31))
	f.Add([]byte{1}, uint8(7), uint8(0x80), uint16(9999))
	f.Fuzz(func(t *testing.T, payload []byte, which, xor uint8, pos uint16) {
		if len(payload) == 0 || len(payload) > 4<<10 {
			return
		}
		encs := []Encoding{
			Erasure{K: 2, N: 4},
			SecretSharing{T: 2, N: 4},
			PackedSharing{T: 2, K: 2, N: 5},
		}
		for _, enc := range encs {
			e, err := enc.Encode(payload, rand.Reader)
			if err != nil {
				t.Fatalf("%s encode: %v", enc.Name(), err)
			}
			digests := ShardDigests(e.Shards)
			n, min := enc.Shards()
			m := int(which) % n
			if len(e.Shards[m]) == 0 {
				continue
			}
			mutated := append([][]byte(nil), e.Shards...)
			mutated[m] = append([]byte(nil), e.Shards[m]...)
			mutated[m][int(pos)%len(mutated[m])] ^= xor | 1 // never a no-op flip

			// Combining with the rotted shard present must not panic;
			// whatever it returns is untrusted until the digests speak.
			_, _ = enc.Decode(&Encoded{
				Scheme: e.Scheme, PlainLen: e.PlainLen, Shards: mutated,
				ClientSecret: e.ClientSecret, PublicMeta: e.PublicMeta,
			})

			// The digest oracle must catch exactly the mutated shard...
			_, missing, corrupt := CheckShards(mutated, digests)
			if len(missing) != 0 || len(corrupt) != 1 || corrupt[0] != m {
				t.Fatalf("%s: digests missed the mutation: missing=%v corrupt=%v want [%d]",
					enc.Name(), missing, corrupt, m)
			}
			// ...and the surviving shards must reconstruct exactly.
			mutated[m] = nil
			if n-1 < min {
				continue
			}
			got, err := enc.Decode(&Encoded{
				Scheme: e.Scheme, PlainLen: e.PlainLen, Shards: mutated,
				ClientSecret: e.ClientSecret, PublicMeta: e.PublicMeta,
			})
			if err != nil {
				t.Fatalf("%s: decode after discarding rotted shard: %v", enc.Name(), err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("%s: reconstruction mismatch after discard", enc.Name())
			}
		}
	})
}
