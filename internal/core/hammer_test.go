package core

// The concurrency hammer: goroutines race Put / Get / Scrub /
// RenewShares / Delete on a small OVERLAPPING id set with a fault plan
// and epoch advances active, then the test audits the wreckage for the
// striped vault's structural invariants:
//
//   - no orphaned staged shards (every disperse committed or aborted),
//   - no mixed-epoch stripes (CommitStage stamps whole stripes),
//   - StoredBytes returns exactly to baseline once every object is
//     deleted — failures and aborts leaked nothing.
//
// Run under -race (the verify recipe does) this is the main stress
// check of the per-object locking design.

import (
	"bytes"
	"errors"
	"fmt"
	mrand "math/rand"
	"sync"
	"testing"

	"securearchive/internal/cluster"
	"securearchive/internal/group"
	"securearchive/internal/store"
)

// forEachBackend runs the test body against both storage backends: the
// hammers and their invariant audits must hold identically whether the
// shards live in maps or in fsync-backed segments behind a WAL.
func forEachBackend(t *testing.T, nodes int, body func(t *testing.T, c *cluster.Cluster)) {
	t.Run("mem", func(t *testing.T) {
		body(t, cluster.New(nodes, nil))
	})
	t.Run("disk", func(t *testing.T) {
		c, err := cluster.Open(nodes, nil, store.Config{Backend: store.BackendDisk, Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		body(t, c)
	})
}

func TestHammerOverlappingIDs(t *testing.T) {
	forEachBackend(t, 8, hammerOverlappingIDs)
}

func hammerOverlappingIDs(t *testing.T, c *cluster.Cluster) {
	c.SetFaultPlan(&cluster.FaultPlan{
		Seed:    99,
		Default: cluster.NodeFaults{TransientProb: 0.05},
	})
	enc := SecretSharing{T: 4, N: 8}
	v, err := NewVault(c, enc, WithGroup(group.Test()))
	if err != nil {
		t.Fatal(err)
	}
	baseline := c.StoredBytes()

	const (
		idCount   = 6
		workers   = 8
		opsPerGor = 25
	)
	// One fixed payload per id, all the same length: Shamir's stored size
	// is a deterministic function of plaintext length, so the
	// StoredBytes-returns-to-baseline audit is exact.
	payloads := make(map[string][]byte, idCount)
	for i := 0; i < idCount; i++ {
		id := fmt.Sprintf("obj-%d", i)
		p := bytes.Repeat([]byte(fmt.Sprintf("%s payload ", id)), 64)[:512]
		payloads[id] = p
	}
	ids := make([]string, 0, idCount)
	for id := range payloads {
		ids = append(ids, id)
	}

	var wg sync.WaitGroup
	fails := make(chan error, workers*opsPerGor)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := mrand.New(mrand.NewSource(int64(w) + 1))
			for op := 0; op < opsPerGor; op++ {
				id := ids[rng.Intn(len(ids))]
				switch rng.Intn(6) {
				case 0:
					// Puts race each other and deletes: success, ErrExists
					// and transient-exhausted dispersal errors are all
					// legitimate outcomes.
					_ = v.Put(id, payloads[id])
				case 1:
					got, err := v.Get(id)
					switch {
					case err == nil:
						if !bytes.Equal(got, payloads[id]) {
							fails <- fmt.Errorf("get %s: torn or cross-wired payload", id)
						}
					case errors.Is(err, ErrNotFound) || errors.Is(err, ErrDegraded):
						// Deleted by a peer, or fault-plan attrition.
					default:
						fails <- fmt.Errorf("get %s: %w", id, err)
					}
				case 2:
					if _, err := v.Scrub(id); err != nil &&
						!errors.Is(err, ErrNotFound) && !errors.Is(err, ErrDegraded) {
						// Transient exhaustion during the audit fetch or the
						// staged rewrite is fair game; anything else is not.
						var de *DegradedError
						if !errors.As(err, &de) && !errors.Is(err, cluster.ErrTransient) {
							t.Logf("scrub %s: %v", id, err)
						}
					}
				case 3:
					_ = v.RenewShares(id)
				case 4:
					_ = v.Delete(id)
				default:
					c.AdvanceEpoch()
				}
			}
		}()
	}
	wg.Wait()
	close(fails)
	for err := range fails {
		t.Error(err)
	}

	// Invariant 1: nothing left parked in staging areas.
	if n := c.StagedCount(); n != 0 {
		t.Errorf("%d orphaned staged shards after hammer", n)
	}

	// Invariant 2: every surviving object is readable, exact, and its
	// stripe is single-epoch across all nodes.
	survivors := v.Objects()
	epochs := make(map[string]map[int]bool)
	for node := 0; node < 8; node++ {
		shards, err := c.Snapshot(node)
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range shards {
			if epochs[sh.Key.Object] == nil {
				epochs[sh.Key.Object] = make(map[int]bool)
			}
			epochs[sh.Key.Object][sh.Epoch] = true
		}
	}
	for obj, es := range epochs {
		if len(es) != 1 {
			t.Errorf("object %s: mixed-epoch stripe %v", obj, es)
		}
	}
	for _, id := range survivors {
		got, err := v.Get(id)
		if err != nil {
			if errors.Is(err, ErrDegraded) {
				continue // fault-plan attrition, not a locking bug
			}
			t.Errorf("surviving %s unreadable: %v", id, err)
			continue
		}
		if !bytes.Equal(got, payloads[id]) {
			t.Errorf("surviving %s: payload mismatch", id)
		}
	}

	// Invariant 3: delete everything and the cluster is back to baseline
	// — no leaked shards from failed or aborted writes.
	for _, id := range survivors {
		if err := v.Delete(id); err != nil {
			t.Errorf("final delete %s: %v", id, err)
		}
	}
	if got := c.StoredBytes(); got != baseline {
		t.Errorf("StoredBytes = %d after deleting everything, want baseline %d", got, baseline)
	}
	if n := c.StagedCount(); n != 0 {
		t.Errorf("%d staged shards after final deletes", n)
	}
	if got := len(v.Objects()); got != 0 {
		t.Errorf("%d objects still registered after deleting everything", got)
	}
}

// TestHammerDistinctIDsWithDeletes drives disjoint per-worker ids
// through the full op set — no cross-worker contention, so every op's
// outcome is deterministic modulo fault-plan noise — and audits the same
// invariants. This variant catches stripe-registry races between
// *different* ids that hash into the same stripe.
func TestHammerDistinctIDsWithDeletes(t *testing.T) {
	forEachBackend(t, 8, hammerDistinctIDsWithDeletes)
}

func hammerDistinctIDsWithDeletes(t *testing.T, c *cluster.Cluster) {
	enc := Erasure{K: 4, N: 8}
	v, err := NewVault(c, enc, WithGroup(group.Test()))
	if err != nil {
		t.Fatal(err)
	}
	baseline := c.StoredBytes()
	const workers, perWorker = 8, 8
	var wg sync.WaitGroup
	fails := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				data := bytes.Repeat([]byte{byte(w), byte(i)}, 300)
				if err := v.Put(id, data); err != nil {
					fails <- fmt.Errorf("put %s: %w", id, err)
					continue
				}
				if got, err := v.Get(id); err != nil || !bytes.Equal(got, data) {
					fails <- fmt.Errorf("get %s: %v", id, err)
				}
				if _, err := v.Scrub(id); err != nil {
					fails <- fmt.Errorf("scrub %s: %w", id, err)
				}
				if err := v.RenewShares(id); err != nil {
					fails <- fmt.Errorf("renew %s: %w", id, err)
				}
				if i%2 == 0 {
					if err := v.Delete(id); err != nil {
						fails <- fmt.Errorf("delete %s: %w", id, err)
					}
				}
			}
		}()
	}
	wg.Wait()
	close(fails)
	for err := range fails {
		t.Error(err)
	}
	if n := c.StagedCount(); n != 0 {
		t.Errorf("%d orphaned staged shards", n)
	}
	want := workers * perWorker / 2
	if got := len(v.Objects()); got != want {
		t.Errorf("objects = %d, want %d", got, want)
	}
	for _, id := range v.Objects() {
		if err := v.Delete(id); err != nil {
			t.Errorf("final delete %s: %v", id, err)
		}
	}
	if got := c.StoredBytes(); got != baseline {
		t.Errorf("StoredBytes = %d, want baseline %d", got, baseline)
	}
}
