package core

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"time"

	"securearchive/internal/cluster"
	"securearchive/internal/obs/trace"
	"securearchive/internal/parallel"
	"securearchive/internal/sig"
	"securearchive/internal/tstamp"
)

// Pipelined chunked writes: objects larger than the vault's chunk size
// are split into fixed-size chunks, each encoded as its own stripe, with
// encoding and staging overlapped as a bounded two-stage pipeline
// (RapidRAID's shape: hide encode latency behind dispersal instead of
// encode-all-then-disperse-all). Atomicity is unchanged from the
// monolithic path — every chunk's shards stage under ONE token and the
// whole object commits as a single key swap, so a failure at any chunk
// aborts the stage and leaves no committed shards behind.

// pipelineDepth bounds in-flight encoded chunks between the encode and
// stage stages: depth 2 is enough to keep both stages busy while capping
// buffered memory at two chunks' worth of shards.
const pipelineDepth = 2

// chunkMeta is one chunk's client-side encoding state: the Encoded
// metadata (shards stripped — those live on nodes) plus per-shard
// digests for degraded reads and scrubbing.
type chunkMeta struct {
	enc     *Encoded
	digests [][sha256.Size]byte
}

// encodedChunk is the pipeline's unit of flow from encode to stage.
type encodedChunk struct {
	idx int
	enc *Encoded
}

// chunkTailFloor is the smallest tail chunk the splitter will emit: a
// remainder below it folds into the previous chunk instead (the last
// chunk then runs up to chunkSize+chunkTailFloor−1 bytes). Some
// encodings reject tiny payloads outright — entropic encryption's OTP
// key floor is 16 bytes — and a near-empty stripe wastes a full round
// of staging anyway.
const chunkTailFloor = 64

// numChunks returns how many chunks cover dataLen bytes: dataLen/chunkSize
// full chunks, plus one more only when the remainder clears the tail
// floor. The last chunk absorbs any sub-floor remainder.
func numChunks(dataLen, chunkSize int) int {
	chunks := dataLen / chunkSize
	if chunks == 0 || dataLen%chunkSize >= chunkTailFloor {
		chunks++
	}
	return chunks
}

// putChunked is the pipelined write body; the caller has already checked
// for an existing id. Registry reservation and rollback mirror put.
func (v *Vault) putChunked(ctx context.Context, id string, data []byte) error {
	st := v.stripe(id)
	chain, err := tstamp.New(data, v.IntegrityMode, sig.Ed25519, v.Cluster.Epoch(), v.Group, v.rnd)
	if err != nil {
		return err
	}
	v.obsm.putBytes.Observe(float64(len(data)))

	obj := &vaultObject{}
	obj.mu.Lock()
	st.mu.Lock()
	if _, ok := st.objects[id]; ok {
		st.mu.Unlock()
		obj.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrExists, id)
	}
	st.objects[id] = obj
	st.mu.Unlock()

	metas, err := v.disperseChunked(ctx, id, data)
	if err != nil {
		st.mu.Lock()
		delete(st.objects, id)
		st.mu.Unlock()
		obj.mu.Unlock()
		return err
	}
	// The object-level Encoded carries only whole-object facts (scheme,
	// plaintext length, used by StorageCost and listings); per-chunk
	// secrets and digests live in chunks.
	obj.enc = &Encoded{Scheme: metas[0].enc.Scheme, PlainLen: len(data)}
	obj.chunks = metas
	obj.width = len(metas[0].digests)
	obj.chain = chain
	obj.live.Store(true)
	v.cacheInvalidate(id) // defensive, as in put
	obj.mu.Unlock()
	v.obsm.pipelinePuts.Inc()
	return nil
}

// disperseChunked encodes data chunk by chunk and stages each chunk's
// shards as soon as it is encoded, overlapping the two stages through a
// bounded pipeline; one stage token covers every chunk and commits once.
// Callers hold the object's write lock. On error the stage is aborted
// and the cluster keeps whatever encoding it had (none for a fresh Put,
// the old one for renew/scrub rewrites).
func (v *Vault) disperseChunked(ctx context.Context, id string, data []byte) ([]chunkMeta, error) {
	cs := v.chunkSize
	chunks := numChunks(len(data), cs)
	stage := v.newStageToken(id)
	pctx, psp := trace.Child(ctx, "vault.pipeline",
		trace.Str("object", id), trace.Int("chunks", chunks), trace.Int("bytes", len(data)))
	start := time.Now()
	metas := make([]chunkMeta, chunks)
	err := parallel.Pipeline(pipelineDepth,
		func(emit func(encodedChunk) bool) error {
			for i := 0; i < chunks; i++ {
				// Cancellation checkpoint between chunk encodes: a
				// disconnected client must not keep burning CPU on the
				// remaining chunks of an object nobody will commit.
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("core: encode %s chunk %d: %w", id, i, err)
				}
				lo := i * cs
				hi := min(lo+cs, len(data))
				if i == chunks-1 {
					hi = len(data) // the last chunk absorbs a sub-floor tail
				}
				enc, err := v.Encoding.Encode(data[lo:hi], v.rnd)
				if err != nil {
					return fmt.Errorf("core: encode %s chunk %d: %w", id, i, err)
				}
				if !emit(encodedChunk{idx: i, enc: enc}) {
					return nil // consumer failed; its error wins
				}
			}
			return nil
		},
		func(c encodedChunk) error {
			// Mirror checkpoint on the staging side: RetryTransientCtx
			// inside stageShards aborts an in-flight backoff, this stops
			// the next chunk's staging from starting at all.
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("core: stage %s chunk %d: %w", id, c.idx, err)
			}
			if err := v.stageShards(pctx, stage, id, c.idx, c.enc.Shards); err != nil {
				return err
			}
			metas[c.idx] = chunkMeta{
				enc: &Encoded{
					Scheme:       c.enc.Scheme,
					PlainLen:     c.enc.PlainLen,
					ClientSecret: c.enc.ClientSecret,
					PublicMeta:   c.enc.PublicMeta,
				},
				digests: ShardDigests(c.enc.Shards),
			}
			v.obsm.pipelineChunks.Inc()
			return nil
		},
		nil,
	)
	if err != nil {
		v.Cluster.AbortStage(stage)
		psp.Event("stage.aborted")
		psp.End(err)
		return nil, err
	}
	n, err := v.Cluster.CommitStage(stage)
	if err != nil {
		v.Cluster.AbortStage(stage)
		psp.Event("stage.aborted")
		psp.End(err)
		return nil, fmt.Errorf("core: commit %s: %w", id, err)
	}
	observeRate(v.obsm.pipelineMBs, len(data), time.Since(start))
	psp.Event("stage.committed", trace.Int("shards", n))
	psp.End(nil)
	return metas, nil
}

// readChunked is the degraded read body for pipeline-written objects;
// callers hold obj.mu and have checked liveness. It is readChunkedTo
// (stream.go) into a buffer: each chunk is an independent k-of-n stripe
// read validated against its own digests, and the integrity chain
// verifies the whole exactly as it was written.
func (v *Vault) readChunked(ctx context.Context, id string, obj *vaultObject) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(obj.enc.PlainLen)
	if _, err := v.readChunkedTo(ctx, id, obj, &buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// scrubChunked audits and repairs a pipeline-written object chunk by
// chunk. The report aggregates per-node health across chunks (a node is
// Corrupt if any of its chunk shards rotted, Missing if any is absent,
// Healthy otherwise); repairs re-encode only the damaged chunks and
// stage them under one token so the repair commits atomically.
func (v *Vault) scrubChunked(ctx context.Context, id string, obj *vaultObject) (*ScrubReport, error) {
	n, _ := v.Encoding.Shards()
	rep := &ScrubReport{Object: id}
	nodeMissing := make([]bool, n)
	nodeCorrupt := make([]bool, n)
	chunkData := make([][]byte, len(obj.chunks))
	var damaged []int
	whole := make([]byte, 0, obj.enc.PlainLen)
	for ci := range obj.chunks {
		cm := &obj.chunks[ci]
		res := v.Cluster.FetchChunkStripeCtx(ctx, id, ci, n, n, v.retry, nil)
		if res.Canceled != nil {
			return rep, fmt.Errorf("core: scrub %s chunk %d: %w", id, ci, res.Canceled)
		}
		shards := res.Shards
		healthy, missing, corrupt := CheckShards(shards, cm.digests)
		for _, i := range missing {
			nodeMissing[i] = true
		}
		for _, i := range corrupt {
			nodeCorrupt[i] = true
			shards[i] = nil
		}
		if len(missing)+len(corrupt) > 0 {
			damaged = append(damaged, ci)
		}
		data, err := v.Encoding.Decode(&Encoded{
			Scheme:       cm.enc.Scheme,
			PlainLen:     cm.enc.PlainLen,
			Shards:       shards,
			ClientSecret: cm.enc.ClientSecret,
			PublicMeta:   cm.enc.PublicMeta,
		})
		if err != nil {
			return rep, fmt.Errorf("core: scrub %s chunk %d: decode from %d healthy shards: %w", id, ci, len(healthy), err)
		}
		chunkData[ci] = data
		whole = append(whole, data...)
	}
	for i := 0; i < n; i++ {
		switch {
		case nodeCorrupt[i]:
			rep.Corrupt = append(rep.Corrupt, i)
		case nodeMissing[i]:
			rep.Missing = append(rep.Missing, i)
		default:
			rep.Healthy = append(rep.Healthy, i)
		}
	}
	if rep.Clean() {
		v.clearDirty(id)
		return rep, nil
	}
	// Confirm the recovered whole against the integrity chain before
	// trusting it as a repair source, then rewrite only the damaged
	// chunks — one stage token, one commit.
	_, vsp := trace.Child(ctx, "vault.verify")
	err := obj.chain.VerifyData(whole)
	vsp.End(err)
	if err != nil {
		return rep, fmt.Errorf("core: scrub %s: integrity chain rejects recovered data: %w", id, err)
	}
	stage := v.newStageToken(id)
	newMetas := make(map[int]chunkMeta, len(damaged))
	for _, ci := range damaged {
		enc, err := v.Encoding.Encode(chunkData[ci], v.rnd)
		if err != nil {
			v.Cluster.AbortStage(stage)
			return rep, fmt.Errorf("core: scrub %s: re-encode chunk %d: %w", id, ci, err)
		}
		if err := v.stageShards(ctx, stage, id, ci, enc.Shards); err != nil {
			v.Cluster.AbortStage(stage)
			return rep, fmt.Errorf("core: scrub %s: rewrite rolled back: %w", id, err)
		}
		newMetas[ci] = chunkMeta{
			enc: &Encoded{
				Scheme:       enc.Scheme,
				PlainLen:     enc.PlainLen,
				ClientSecret: enc.ClientSecret,
				PublicMeta:   enc.PublicMeta,
			},
			digests: ShardDigests(enc.Shards),
		}
	}
	if _, err := v.Cluster.CommitStage(stage); err != nil {
		v.Cluster.AbortStage(stage)
		return rep, fmt.Errorf("core: scrub %s: rewrite rolled back: %w", id, err)
	}
	v.cacheInvalidate(id) // stripe rewritten; see the scrubObject note
	for ci, cm := range newMetas {
		obj.chunks[ci] = cm
		// A partial rewrite can narrow only its own chunks; widen the
		// recorded width if the repair encoding grew, and clear the strays
		// its chunks no longer occupy.
		w := len(cm.digests)
		if w > obj.width {
			obj.width = w
		} else if w < obj.width {
			for i := w; i < obj.width; i++ {
				v.Cluster.Delete(i, cluster.ShardKey{Object: id, Index: i, Chunk: ci})
			}
		}
	}
	rep.Repaired = true
	v.obsm.scrubRepairs.Inc()
	trace.FromContext(ctx).Event("scrub.repaired",
		trace.Int("missing", len(rep.Missing)), trace.Int("corrupt", len(rep.Corrupt)),
		trace.Int("chunks", len(damaged)))
	v.clearDirty(id)
	return rep, nil
}
