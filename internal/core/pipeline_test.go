package core

import (
	"bytes"
	"crypto/rand"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"securearchive/internal/cluster"
	"securearchive/internal/group"
)

// chunkedTestVault builds a vault with a deliberately tiny chunk size so
// unit-sized objects exercise the multi-chunk pipeline cheaply.
func chunkedTestVault(t *testing.T, enc Encoding, chunkSize int) (*Vault, *cluster.Cluster) {
	t.Helper()
	c := cluster.New(8, nil)
	v, err := NewVault(c, enc, WithGroup(group.Test()), WithChunkSize(chunkSize))
	if err != nil {
		t.Fatal(err)
	}
	return v, c
}

// TestChunkedMatchesMonolithic is the pipeline's differential property:
// for every encoding, a vault writing through the chunked pipeline and a
// vault writing monolithically must both round-trip the exact same bytes
// at the chunk-boundary sizes (chunk−1, chunk, chunk+1, multi-chunk).
func TestChunkedMatchesMonolithic(t *testing.T) {
	const chunk = 2048
	sizes := []int{chunk - 1, chunk, chunk + 1, 3*chunk + 17}
	for _, enc := range Figure1Encodings(cfgSmall()) {
		enc := enc
		t.Run(enc.Name(), func(t *testing.T) {
			t.Parallel()
			chunked, cc := chunkedTestVault(t, enc, chunk)
			mono, _ := chunkedTestVault(t, enc, 0) // chunking disabled
			for _, size := range sizes {
				data := make([]byte, size)
				rand.Read(data)
				id := fmt.Sprintf("obj-%d", size)
				if err := chunked.Put(id, data); err != nil {
					t.Fatalf("chunked put %d bytes: %v", size, err)
				}
				if err := mono.Put(id, data); err != nil {
					t.Fatalf("monolithic put %d bytes: %v", size, err)
				}
				got, err := chunked.Get(id)
				if err != nil {
					t.Fatalf("chunked get %d bytes: %v", size, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("chunked round trip mismatch at %d bytes", size)
				}
				mgot, err := mono.Get(id)
				if err != nil {
					t.Fatalf("monolithic get %d bytes: %v", size, err)
				}
				if !bytes.Equal(mgot, data) {
					t.Fatalf("monolithic round trip mismatch at %d bytes", size)
				}
				// Sizes that split into several chunks must actually have
				// taken the chunked path: chunk 1's stripe exists on the
				// cluster. (chunk+1 folds its 1-byte tail into chunk 0 and
				// stays a single stripe by design.)
				if size > chunk && numChunks(size, chunk) > 1 {
					if _, err := cc.Get(0, cluster.ShardKey{Object: id, Index: 0, Chunk: 1}); err != nil {
						t.Fatalf("size %d left no chunk-1 shard: %v", size, err)
					}
				}
			}
			if StagedCount := cc.StagedCount(); StagedCount != 0 {
				t.Fatalf("%d shards left in staging", StagedCount)
			}
		})
	}
}

// TestChunkedPutAbortsAtomically kills a node mid-write: the multi-chunk
// put must fail as a unit — no committed shards, no staged leftovers, no
// registry entry — exactly the monolithic path's guarantee.
func TestChunkedPutAbortsAtomically(t *testing.T) {
	v, c := chunkedTestVault(t, Erasure{K: 4, N: 8}, 2048)
	c.SetOnline(7, false)
	data := make([]byte, 3*2048+5)
	rand.Read(data)
	if err := v.Put("doomed", data); err == nil {
		t.Fatal("put succeeded with a required node down")
	}
	if got := c.StoredBytes(); got != 0 {
		t.Fatalf("aborted put left %d committed bytes", got)
	}
	if got := c.StagedCount(); got != 0 {
		t.Fatalf("aborted put left %d staged shards", got)
	}
	if _, err := v.Get("doomed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("aborted put left a registry entry: %v", err)
	}
	// The id is reusable once the node returns.
	c.SetOnline(7, true)
	if err := v.Put("doomed", data); err != nil {
		t.Fatalf("re-put after abort: %v", err)
	}
	got, err := v.Get("doomed")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip after recovery: %v", err)
	}
}

// TestChunkedDegradedRead drops nodes down to the decode minimum: every
// chunk's k-of-n read must route around the losses.
func TestChunkedDegradedRead(t *testing.T) {
	v, c := chunkedTestVault(t, Erasure{K: 4, N: 8}, 2048)
	data := make([]byte, 5*2048+333)
	rand.Read(data)
	if err := v.Put("r", data); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 4, 6, 7} { // 4 of 8 down, k=4 remain
		c.SetOnline(n, false)
	}
	got, err := v.Get("r")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch under failures")
	}
	// One more loss starves some chunk below k: typed degraded error.
	c.SetOnline(0, false)
	if _, err := v.Get("r"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("starved read: got %v, want ErrDegraded", err)
	}
}

// TestChunkedScrubRepairs rots shards in two different chunks, scrubs,
// and expects a repaired stripe plus an intact round trip.
func TestChunkedScrubRepairs(t *testing.T) {
	v, c := chunkedTestVault(t, Erasure{K: 4, N: 8}, 2048)
	data := make([]byte, 4*2048)
	rand.Read(data)
	if err := v.Put("r", data); err != nil {
		t.Fatal(err)
	}
	// Rot chunk 0 on node 2 and chunk 3 on node 5.
	c.Put(2, cluster.ShardKey{Object: "r", Index: 2, Chunk: 0}, []byte("rotrotrot"))
	c.Put(5, cluster.ShardKey{Object: "r", Index: 5, Chunk: 3}, []byte("bitflip"))
	rep, err := v.Scrub("r")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Repaired {
		t.Fatal("damage not repaired")
	}
	if len(rep.Corrupt) != 2 {
		t.Fatalf("corrupt nodes %v, want [2 5]", rep.Corrupt)
	}
	rep2, err := v.Scrub("r")
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Clean() {
		t.Fatalf("second scrub still dirty: missing=%v corrupt=%v", rep2.Missing, rep2.Corrupt)
	}
	got, err := v.Get("r")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip after repair: %v", err)
	}
}

// TestChunkedRenewShares rewrites every chunk's stripe with fresh
// randomness and must preserve the data.
func TestChunkedRenewShares(t *testing.T) {
	v, c := chunkedTestVault(t, SecretSharing{T: 4, N: 8}, 2048)
	data := make([]byte, 2*2048+100)
	rand.Read(data)
	if err := v.Put("r", data); err != nil {
		t.Fatal(err)
	}
	before, _ := c.Get(0, cluster.ShardKey{Object: "r", Index: 0, Chunk: 1})
	if err := v.RenewShares("r"); err != nil {
		t.Fatal(err)
	}
	after, _ := c.Get(0, cluster.ShardKey{Object: "r", Index: 0, Chunk: 1})
	if bytes.Equal(before.Data, after.Data) {
		t.Fatal("chunk shard unchanged after renewal")
	}
	got, err := v.Get("r")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("data lost in renewal: %v", err)
	}
}

// TestPipelinedEncodeGate is the acceptance gate for the chunked write
// pipeline: a 16 MiB put through the encode→stage pipeline must run
// ≥ 1.5× the monolithic write path's throughput. The win is overlap —
// chunk i+1 encodes while chunk i stages — so real parallelism is a
// precondition: the gate is specified for ≥ 4 cores and skips below
// that (on one core the pipeline degenerates to the monolithic order
// plus channel overhead, which the differential tests above cover).
func TestPipelinedEncodeGate(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d: pipelined-encode gate needs >= 4 cores", runtime.GOMAXPROCS(0))
	}
	if testing.Short() {
		t.Skip("16 MiB throughput measurement skipped in -short")
	}
	const payload = 16 << 20
	data := make([]byte, payload)
	rand.Read(data)
	throughput := func(chunk int) float64 {
		v, _ := chunkedTestVault(t, Erasure{K: 4, N: 8}, chunk)
		// Warm up pools and page in the payload.
		if err := v.Put("warm", data); err != nil {
			t.Fatal(err)
		}
		if err := v.Delete("warm"); err != nil {
			t.Fatal(err)
		}
		const reps = 6
		start := time.Now()
		for i := 0; i < reps; i++ {
			id := fmt.Sprintf("g-%d", i)
			if err := v.Put(id, data); err != nil {
				t.Fatal(err)
			}
			if err := v.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
		return float64(payload) * reps / time.Since(start).Seconds()
	}
	mono := throughput(0)
	pipe := throughput(DefaultChunkSize)
	if x := pipe / mono; x < 1.5 {
		t.Errorf("pipelined 16 MiB put only %.2fx of monolithic, want >= 1.5x (pipeline regression?)", x)
	}
}

// TestChunkedDelete removes every chunk's shards, not just chunk 0.
func TestChunkedDelete(t *testing.T) {
	v, c := chunkedTestVault(t, Erasure{K: 4, N: 8}, 2048)
	data := make([]byte, 3*2048)
	rand.Read(data)
	if err := v.Put("r", data); err != nil {
		t.Fatal(err)
	}
	if c.StoredBytes() == 0 {
		t.Fatal("nothing stored")
	}
	if err := v.Delete("r"); err != nil {
		t.Fatal(err)
	}
	if got := c.StoredBytes(); got != 0 {
		t.Fatalf("delete left %d bytes on nodes", got)
	}
	if _, err := v.Get("r"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted object still readable: %v", err)
	}
}
