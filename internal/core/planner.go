package core

import (
	"errors"
	"fmt"
	"math"
)

// RenewalPlan answers the operational question §3.2 leaves open: an
// archive can only renew so many objects per epoch, so shares go stale —
// and stale shares are exactly what the mobile adversary collects. The
// plan computes the worst-case share age under a renewal budget and
// checks it against the adversary's accumulation rate.
//
// Safety condition: an adversary corrupting AdversaryBudget nodes per
// epoch needs ceil(Threshold / AdversaryBudget) epochs to gather a
// threshold of shares FROM THE SAME POLYNOMIAL — but only if the object
// is not renewed in between. With round-robin renewal of Objects objects
// at PerEpochRenewals per epoch, every object's shares are refreshed
// every ceil(Objects / PerEpochRenewals) epochs. The plan is safe when
// the refresh interval is strictly smaller than the gathering time.
type RenewalPlan struct {
	Objects          int
	PerEpochRenewals int
	Threshold        int
	AdversaryBudget  int

	// RefreshIntervalEpochs is the worst-case epochs between renewals of
	// one object.
	RefreshIntervalEpochs int
	// GatherEpochs is the adversary's minimum epochs to collect a
	// threshold against a non-renewing object.
	GatherEpochs int
	// Safe reports whether renewal outpaces accumulation.
	Safe bool
}

// ErrBadPlan reports invalid planner inputs.
var ErrBadPlan = errors.New("core: invalid renewal plan parameters")

// PlanRenewal computes the safety margin of a renewal schedule.
func PlanRenewal(objects, perEpochRenewals, threshold, adversaryBudget int) (*RenewalPlan, error) {
	if objects < 1 || perEpochRenewals < 1 || threshold < 1 || adversaryBudget < 0 {
		return nil, fmt.Errorf("%w: objects=%d renewals=%d t=%d b=%d",
			ErrBadPlan, objects, perEpochRenewals, threshold, adversaryBudget)
	}
	p := &RenewalPlan{
		Objects:          objects,
		PerEpochRenewals: perEpochRenewals,
		Threshold:        threshold,
		AdversaryBudget:  adversaryBudget,
	}
	p.RefreshIntervalEpochs = int(math.Ceil(float64(objects) / float64(perEpochRenewals)))
	if adversaryBudget == 0 {
		p.GatherEpochs = math.MaxInt
		p.Safe = true
		return p, nil
	}
	p.GatherEpochs = int(math.Ceil(float64(threshold) / float64(adversaryBudget)))
	// Strictly smaller: if the adversary can finish gathering in the same
	// window the refresh lands, ordering within the epoch decides, and an
	// archive does not bet a century of confidentiality on intra-epoch
	// ordering.
	p.Safe = p.RefreshIntervalEpochs < p.GatherEpochs
	return p, nil
}

// MinRenewalsPerEpoch returns the smallest per-epoch renewal budget that
// makes the schedule safe, or an error when no budget suffices (the
// adversary gathers a threshold within one epoch — renewal cannot help,
// see TestRenewalRaceLost).
func MinRenewalsPerEpoch(objects, threshold, adversaryBudget int) (int, error) {
	if adversaryBudget <= 0 {
		return 1, nil
	}
	gather := int(math.Ceil(float64(threshold) / float64(adversaryBudget)))
	if gather <= 1 {
		return 0, fmt.Errorf("%w: adversary gathers a threshold in one epoch; no renewal rate helps", ErrBadPlan)
	}
	// Need ceil(objects / r) < gather  ⇔  r > objects / (gather − 1)...
	// smallest integer r with ceil(objects/r) ≤ gather−1 ⇔
	// r ≥ ceil(objects / (gather−1)).
	return int(math.Ceil(float64(objects) / float64(gather-1))), nil
}
