package core

import (
	"crypto/rand"
	"errors"
	"testing"

	"securearchive/internal/adversary"
	"securearchive/internal/cluster"
	"securearchive/internal/systems"
)

func TestPlanRenewalSafety(t *testing.T) {
	// 100 objects, budget 50/epoch → refresh every 2 epochs. Adversary
	// with budget 1 vs threshold 3 needs 3 epochs: safe.
	p, err := PlanRenewal(100, 50, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.RefreshIntervalEpochs != 2 || p.GatherEpochs != 3 || !p.Safe {
		t.Fatalf("plan: %+v", p)
	}
	// Budget 25/epoch → refresh every 4 epochs > 3: unsafe.
	p, _ = PlanRenewal(100, 25, 3, 1)
	if p.Safe {
		t.Fatalf("stale plan declared safe: %+v", p)
	}
	// Equal interval and gather time: unsafe (strict inequality).
	p, _ = PlanRenewal(90, 30, 3, 1)
	if p.RefreshIntervalEpochs != 3 || p.Safe {
		t.Fatalf("boundary plan: %+v", p)
	}
	// No adversary: always safe.
	p, _ = PlanRenewal(1000000, 1, 3, 0)
	if !p.Safe {
		t.Fatal("no-adversary plan unsafe")
	}
}

func TestPlanRenewalValidation(t *testing.T) {
	if _, err := PlanRenewal(0, 1, 1, 1); !errors.Is(err, ErrBadPlan) {
		t.Fatalf("zero objects: %v", err)
	}
	if _, err := PlanRenewal(1, 0, 1, 1); !errors.Is(err, ErrBadPlan) {
		t.Fatalf("zero renewals: %v", err)
	}
}

func TestMinRenewalsPerEpoch(t *testing.T) {
	// threshold 3, budget 1 → gather 3 epochs → need refresh ≤ 2 epochs →
	// for 100 objects: ceil(100/2) = 50 per epoch.
	r, err := MinRenewalsPerEpoch(100, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r != 50 {
		t.Fatalf("min renewals = %d, want 50", r)
	}
	// The returned budget must actually be safe, and one less must not.
	p, _ := PlanRenewal(100, r, 3, 1)
	if !p.Safe {
		t.Fatal("minimum budget not safe")
	}
	p, _ = PlanRenewal(100, r-1, 3, 1)
	if p.Safe {
		t.Fatal("sub-minimum budget safe: bound not tight")
	}
	// Budget ≥ threshold: no rate helps.
	if _, err := MinRenewalsPerEpoch(100, 3, 3); !errors.Is(err, ErrBadPlan) {
		t.Fatalf("hopeless case: %v", err)
	}
	// No adversary.
	r, err = MinRenewalsPerEpoch(100, 3, 0)
	if err != nil || r != 1 {
		t.Fatalf("no adversary: r=%d err=%v", r, err)
	}
}

// TestPlannerPredictionsMatchSimulation: run the actual mobile adversary
// against a simulated archive under both a safe and an unsafe plan, and
// confirm the planner's verdicts.
func TestPlannerPredictionsMatchSimulation(t *testing.T) {
	const objects, threshold, advBudget, epochs = 4, 3, 1, 24
	for _, perEpoch := range []int{4, 1} { // 4 → refresh every epoch (safe); 1 → every 4 epochs (unsafe)
		plan, err := PlanRenewal(objects, perEpoch, threshold, advBudget)
		if err != nil {
			t.Fatal(err)
		}
		c := cluster.New(8, nil)
		arch, err := systems.NewVSRArchive(c, 6, threshold)
		if err != nil {
			t.Fatal(err)
		}
		refs := make([]*systems.Ref, objects)
		data := []byte("planned object")
		for i := range refs {
			ref, err := arch.Store(string(rune('a'+i)), data, rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			refs[i] = ref
		}
		adv := adversary.NewMobile(advBudget, 31)
		next := 0
		for e := 0; e < epochs; e++ {
			adv.CorruptRandom(c)
			c.AdvanceEpoch()
			for k := 0; k < perEpoch; k++ {
				if err := arch.Renew(refs[next%objects], rand.Reader); err != nil {
					t.Fatal(err)
				}
				next++
			}
		}
		breached := false
		for _, ref := range refs {
			if res := arch.Breach(adv, ref, adversary.Breaks{}, 1000); res.Violated {
				breached = true
			}
		}
		if plan.Safe && breached {
			t.Fatalf("planner said safe (perEpoch=%d) but simulation breached", perEpoch)
		}
		if !plan.Safe && !breached {
			// Unsafe means "not guaranteed", not "certainly breached";
			// with this adversary (budget 1, random targeting) and a
			// 4-epoch window, a breach is likely but not certain. Accept
			// either outcome but log it.
			t.Logf("unsafe plan (perEpoch=%d) survived this run — unsafe is a non-guarantee, not a certainty", perEpoch)
		}
	}
}
