package core

import (
	"errors"
	"fmt"
)

// Policy is the framework's answer to the paper's closing question: given
// an archive's threat model and budget, which point of the trade-off
// space should it occupy? The rules encode §3–§4's analysis:
//
//   - Confidentiality horizons beyond the cryptographic-confidence window
//     demand information-theoretic encodings; within it, cascade
//     encryption hedges cheaply and AONT-RS removes key management.
//   - ITS at replication cost is the default (Shamir); packed sharing
//     buys back a factor ≈k when the availability budget tolerates a
//     higher reconstruction threshold; LRSS pays more for side-channel
//     resilience.
//   - ITS encodings must be paired with proactive renewal against the
//     mobile adversary; the policy returns the renewal obligation.
type Requirements struct {
	// HorizonYears is how long confidentiality must hold.
	HorizonYears int
	// MaxOverhead is the storage budget, in stored bytes per byte.
	MaxOverhead float64
	// LeakageThreat enables bounded-local-leakage resistance.
	LeakageThreat bool
	// HighEntropyData asserts the data is incompressible (enables the
	// entropic option).
	HighEntropyData bool
	// Nodes and Threshold fix the dispersal geometry.
	Nodes     int
	Threshold int
}

// CryptoConfidenceYears is the window within which the policy treats
// computational security as acceptable. The paper's §3.1 argues no such
// window is provable; 30 years reflects the DES/MD5 empirical lifetimes
// it cites.
const CryptoConfidenceYears = 30

// Recommendation is the policy output.
type Recommendation struct {
	Encoding Encoding
	// NeedsProactiveRenewal is set for ITS encodings: without share
	// refresh, the mobile adversary wins eventually (E5).
	NeedsProactiveRenewal bool
	// Rationale explains the choice in the paper's terms.
	Rationale string
	// Caveats list the residual risks of the choice.
	Caveats []string
}

// ErrUnsatisfiable reports that no encoding meets the requirements — the
// paper's trade-off biting.
var ErrUnsatisfiable = errors.New("core: requirements unsatisfiable under the security/cost trade-off")

// Recommend picks an encoding for the requirements, or explains why none
// exists.
func Recommend(req Requirements) (*Recommendation, error) {
	if req.Nodes < 2 || req.Threshold < 1 || req.Threshold >= req.Nodes {
		return nil, fmt.Errorf("%w: need 1 <= threshold < nodes", ErrUnsatisfiable)
	}
	n, t := req.Nodes, req.Threshold
	ecRate := float64(n) / float64(t)

	longTerm := req.HorizonYears > CryptoConfidenceYears

	if !longTerm {
		// Computational security acceptable: cascade if the budget allows
		// erasure-coded dispersal, else single-cipher.
		if req.MaxOverhead < ecRate {
			return nil, fmt.Errorf("%w: even erasure-coded ciphertext needs %.2fx, budget is %.2fx",
				ErrUnsatisfiable, ecRate, req.MaxOverhead)
		}
		rec := &Recommendation{
			Encoding:  CascadeEncryption{K: t, N: n},
			Rationale: "horizon within the crypto-confidence window: cascade encryption hedges single-family breaks at erasure-coding cost",
			Caveats: []string{
				"Harvest-Now-Decrypt-Later: ciphertext stolen today falls when every cascade family falls",
				"re-encryption/wrapping campaigns pay the full archive read-out time (§3.2)",
			},
		}
		return rec, nil
	}

	// Long horizon: information-theoretic at rest required.
	if req.LeakageThreat {
		lrssCost := estimateLRSSOverhead(n)
		if req.MaxOverhead < lrssCost {
			return nil, fmt.Errorf("%w: leakage-resilient ITS needs ≈%.0fx, budget is %.2fx",
				ErrUnsatisfiable, lrssCost, req.MaxOverhead)
		}
		return &Recommendation{
			Encoding:              LRSS{T: t, N: n},
			NeedsProactiveRenewal: true,
			Rationale:             "long horizon + side-channel threat: extractor-wrapped sharing resists bounded local leakage",
			Caveats: []string{
				"storage cost grows with committee size (Θ(n²·L) total)",
				"renewal protocol for LRSS shares is an open problem (§4); fall back to re-sharing",
			},
		}, nil
	}
	if req.MaxOverhead >= float64(n) {
		return &Recommendation{
			Encoding:              SecretSharing{T: t, N: n},
			NeedsProactiveRenewal: true,
			Rationale:             "long horizon: perfect secrecy at its provably unavoidable replication-grade cost",
			Caveats: []string{
				"proactive renewal required against the mobile adversary (E5)",
				"renewal traffic is Θ(n²) per object (E6)",
			},
		}, nil
	}
	// Budget below n×: packed sharing trades availability for cost.
	k := pickPackCount(n, t, req.MaxOverhead)
	if k >= 2 {
		return &Recommendation{
			Encoding:              PackedSharing{T: t, K: k, N: n},
			NeedsProactiveRenewal: true,
			Rationale: fmt.Sprintf("long horizon under a %.1fx budget: packed sharing amortises %d secrets per polynomial (≈%.1fx)",
				req.MaxOverhead, k, float64(n)/float64(k)),
			Caveats: []string{
				fmt.Sprintf("reconstruction needs t+k = %d shares: erasure tolerance drops to %d", t+k, n-t-k),
				"proactive renewal for packed sharings must refresh whole blocks",
			},
		}, nil
	}
	if req.HighEntropyData && req.MaxOverhead >= ecRate*1.3 {
		return &Recommendation{
			Encoding:              EntropicEncryption{K: t, N: n, AssumedEntropyBits: 0},
			NeedsProactiveRenewal: false,
			Rationale:             "long horizon, tight budget, incompressible data: entropic security at near-erasure cost",
			Caveats: []string{
				"the guarantee is conditional on data min-entropy: compressible data voids it",
				"the short key is still long-lived secret material needing ITS protection",
			},
		}, nil
	}
	return nil, fmt.Errorf("%w: information-theoretic confidentiality needs ≥%.1fx (packed) or high-entropy data; budget is %.2fx",
		ErrUnsatisfiable, float64(n)/float64(maxPackCount(n, t)), req.MaxOverhead)
}

// pickPackCount returns the largest pack factor k with t+k <= n-1 (one
// spare share of availability) whose cost n/k fits the budget; 0 if none.
func pickPackCount(n, t int, budget float64) int {
	for k := maxPackCount(n, t); k >= 2; k-- {
		if float64(n)/float64(k) <= budget {
			return k
		}
	}
	return 0
}

func maxPackCount(n, t int) int {
	k := n - t - 1
	if k < 1 {
		return 1
	}
	return k
}

// estimateLRSSOverhead approximates the LRSS encoding's measured cost for
// large objects: each of n parties stores ≈(n+1)·L bytes.
func estimateLRSSOverhead(n int) float64 {
	return float64(n * (n + 1))
}
