package core

import (
	"crypto/rand"
	"errors"
	"testing"

	"securearchive/internal/sec"
)

// TestRecommendationsHonourBudget is the policy↔measurement consistency
// property: for a grid of requirement combinations, whenever Recommend
// returns an encoding, that encoding's MEASURED overhead on a real object
// must not exceed the stated budget (small objects get a constant-term
// allowance). The policy is not allowed to promise what the encodings
// cannot deliver.
func TestRecommendationsHonourBudget(t *testing.T) {
	data := make([]byte, 32<<10)
	rand.Read(data)
	for _, horizon := range []int{5, 50, 200} {
		for _, budget := range []float64{1.2, 2.2, 3.0, 8.0, 100.0} {
			for _, leak := range []bool{false, true} {
				req := Requirements{
					HorizonYears:    horizon,
					MaxOverhead:     budget,
					LeakageThreat:   leak,
					HighEntropyData: true,
					Nodes:           8,
					Threshold:       4,
				}
				rec, err := Recommend(req)
				if errors.Is(err, ErrUnsatisfiable) {
					continue
				}
				if err != nil {
					t.Fatalf("%+v: %v", req, err)
				}
				e, err := rec.Encoding.Encode(data, rand.Reader)
				if err != nil {
					t.Fatalf("%+v: encode: %v", req, err)
				}
				if oh := e.Overhead(); oh > budget*1.05 {
					t.Errorf("req %+v: recommended %s measures %.2fx over budget %.2fx",
						req, rec.Encoding.Name(), oh, budget)
				}
				// Long horizons must never get merely computational
				// encodings.
				if horizon > CryptoConfidenceYears {
					cls := rec.Encoding.Class()
					if cls != sec.IT && cls != sec.Entropic {
						t.Errorf("req %+v: long horizon got %s (%s)", req, rec.Encoding.Name(), cls)
					}
				}
				// Leakage threats must get leakage-resilient encodings
				// (when satisfiable at all under a long horizon).
				if leak && horizon > CryptoConfidenceYears && !rec.Encoding.LeakageResilient() {
					t.Errorf("req %+v: leakage threat got %s", req, rec.Encoding.Name())
				}
				// ITS recommendations must carry the renewal obligation.
				if rec.Encoding.Class() == sec.IT && !rec.NeedsProactiveRenewal {
					t.Errorf("req %+v: ITS encoding without renewal obligation", req)
				}
			}
		}
	}
}

// TestRecommendationRoundTrips: whatever the policy recommends must
// actually work end to end on a vault.
func TestRecommendationRoundTrips(t *testing.T) {
	reqs := []Requirements{
		{HorizonYears: 10, MaxOverhead: 2.5, Nodes: 8, Threshold: 4},
		{HorizonYears: 100, MaxOverhead: 10, Nodes: 8, Threshold: 4},
		{HorizonYears: 100, MaxOverhead: 3, Nodes: 8, Threshold: 4},
		{HorizonYears: 100, MaxOverhead: 200, LeakageThreat: true, Nodes: 8, Threshold: 4},
	}
	data := []byte("policy choices must be runnable, not rhetorical")
	for _, req := range reqs {
		rec, err := Recommend(req)
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		e, err := rec.Encoding.Encode(data, rand.Reader)
		if err != nil {
			t.Fatalf("%s: %v", rec.Encoding.Name(), err)
		}
		got, err := rec.Encoding.Decode(e)
		if err != nil {
			t.Fatalf("%s: %v", rec.Encoding.Name(), err)
		}
		if string(got) != string(data) {
			t.Fatalf("%s: round trip mismatch", rec.Encoding.Name())
		}
	}
}
