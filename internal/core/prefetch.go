package core

import (
	"context"
	"crypto/sha256"
	"sync"

	"securearchive/internal/cluster"
)

// Sequential-stripe prefetch for scan-style chunked reads: while the
// consumer decodes, digests, and writes chunk i, the stripe fetches for
// chunks i+1 … i+window are already in flight. The fetch — per-node
// probes with retry backoff — is the read pipeline's I/O half; without
// prefetch it serialises strictly with the CPU half (decode + SHA-256),
// exactly the stall the write side already removed with its
// encode→stage pipeline (pipeline.go).
//
// Lifetime discipline matters more than speed here:
//
//   - Every fetch goroutine runs while the consumer still holds the
//     object's read lock (readChunkedTo defers stop() before the lock is
//     released), so prefetchers can read obj.chunks without their own
//     locking and never outlive the object state they were built over.
//   - Each result channel is buffered, so a fetch goroutine can always
//     deliver and exit — an abandoned prefetch never leaks a goroutine.
//   - stop() cancels the prefetch context and waits for every in-flight
//     fetch; a ctx cancellation from the caller propagates into
//     FetchChunkStripeCtx the same way it does on the sequential path.
//
// Results are handed to the consumer in chunk order, which then applies
// the exact same discard/cancel/degraded handling the sequential loop
// had — prefetching changes when fetches start, never how their results
// are interpreted.

// DefaultPrefetchWindow is how many chunk stripes a chunked read keeps
// in flight beyond the one being consumed. 2 overlaps fetch and decode
// without tripling the read's transient memory (each in-flight chunk
// holds one stripe's shards).
const DefaultPrefetchWindow = 2

// WithPrefetchWindow sets how many chunk-stripe fetches a chunked read
// keeps in flight ahead of decode (DefaultPrefetchWindow otherwise).
// n <= 0 disables prefetch: chunks fetch strictly one at a time.
func WithPrefetchWindow(n int) VaultOption {
	return func(v *Vault) { v.prefetchWindow = n }
}

// prefetcher drives one chunked read's look-ahead. It is used by a
// single consumer goroutine; the mutable cursors (nextLaunch, consumed)
// are consumer-private, and the fetch goroutines communicate only
// through their per-chunk buffered channels.
type prefetcher struct {
	v      *Vault
	ctx    context.Context
	cancel context.CancelFunc
	id     string
	obj    *vaultObject
	n, min int

	window     int
	results    []chan *cluster.StripeResult
	nextLaunch int
	consumed   int
	issued     int64 // fetches launched ahead of the consumer's cursor
	wg         sync.WaitGroup
}

// newPrefetcher builds the look-ahead driver for one read of obj's
// chunks. The caller must hold obj.mu (read side) until stop returns.
func (v *Vault) newPrefetcher(ctx context.Context, id string, obj *vaultObject) *prefetcher {
	n, min := v.Encoding.Shards()
	pctx, cancel := context.WithCancel(ctx)
	return &prefetcher{
		v:       v,
		ctx:     pctx,
		cancel:  cancel,
		id:      id,
		obj:     obj,
		n:       n,
		min:     min,
		window:  v.prefetchWindow,
		results: make([]chan *cluster.StripeResult, len(obj.chunks)),
	}
}

// launch starts the fetch for chunk ci if it is not already in flight.
func (pf *prefetcher) launch(ci int) {
	if ci >= len(pf.results) || pf.results[ci] != nil {
		return
	}
	ch := make(chan *cluster.StripeResult, 1)
	pf.results[ci] = ch
	if ci > pf.consumed {
		pf.issued++
	}
	cm := &pf.obj.chunks[ci]
	pf.wg.Add(1)
	go func() {
		defer pf.wg.Done()
		ch <- pf.v.Cluster.FetchChunkStripeCtx(pf.ctx, pf.id, ci, pf.n, pf.min, pf.v.retry, func(i int, data []byte) bool {
			return i < len(cm.digests) && sha256.Sum256(data) == cm.digests[i]
		})
	}()
}

// next returns chunk ci's stripe result, launching it and the window
// ahead of it first, and blocking until the fetch delivers.
func (pf *prefetcher) next(ci int) *cluster.StripeResult {
	pf.consumed = ci
	hi := ci + pf.window
	if hi > len(pf.results)-1 {
		hi = len(pf.results) - 1
	}
	for i := ci; i <= hi; i++ {
		pf.launch(i)
	}
	return <-pf.results[ci]
}

// stop cancels outstanding fetches and waits for every goroutine to
// exit, then reports how many issued look-aheads were consumed vs
// wasted (fetched or aborted for a consumer that never arrived —
// early-error or cancelled reads). Safe to call more than once is not
// needed; readChunkedTo defers exactly one call.
func (pf *prefetcher) stop() (issued, wasted int64) {
	pf.cancel()
	pf.wg.Wait()
	issued = pf.issued
	for i := pf.consumed + 1; i < len(pf.results); i++ {
		if pf.results[i] != nil {
			wasted++
		}
	}
	return issued, wasted
}
