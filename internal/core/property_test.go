package core

// Property-style coverage for the encoding layer: every registered
// encoding must round-trip exactly at boundary sizes and from *random*
// k-of-n shard subsets (the fixed end-drop pattern in core_test.go only
// exercises one erasure shape), and the vault must serve concurrent
// workers — distinct ids and colliding ids — without torn reads. The
// concurrent tests are meaningful chiefly under -race, which the verify
// recipe runs.

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	mrand "math/rand"
	"sync"
	"testing"
)

// propSeed derives the run's subset-sampling seed from crypto/rand and
// logs it so a failure reproduces: plug the logged value into
// mrand.NewSource in place of the fresh draw.
func propSeed(t *testing.T) int64 {
	t.Helper()
	var b [8]byte
	rand.Read(b[:])
	seed := int64(binary.LittleEndian.Uint64(b[:]) &^ (1 << 63))
	t.Logf("property seed: %d", seed)
	return seed
}

func TestPropertyEmptyDataRejected(t *testing.T) {
	for _, enc := range Figure1Encodings(cfgSmall()) {
		if _, err := enc.Encode(nil, rand.Reader); !errors.Is(err, ErrEmptyData) {
			t.Errorf("%s: empty encode: got %v, want ErrEmptyData", enc.Name(), err)
		}
		if _, err := enc.Encode([]byte{}, rand.Reader); !errors.Is(err, ErrEmptyData) {
			t.Errorf("%s: zero-length encode: got %v, want ErrEmptyData", enc.Name(), err)
		}
	}
}

// TestPropertyRoundTripSizesAndSubsets is the main property: for every
// encoding, boundary sizes (1 byte, odd, 64 KiB±1, and multi-MiB for the
// fast encodings) encode and then decode exactly from random min-sized
// shard subsets — not just the prefix the decoders happen to scan first.
func TestPropertyRoundTripSizesAndSubsets(t *testing.T) {
	rng := mrand.New(mrand.NewSource(propSeed(t)))
	sizes := []int{1, 37, 64<<10 - 1, 64 << 10, 64<<10 + 1}
	big := 2<<20 + 13
	for _, enc := range Figure1Encodings(cfgSmall()) {
		szs := sizes
		switch enc.(type) {
		case SecretSharing, PackedSharing, LRSS:
			// The Shamir-math encodings pay a per-byte polynomial cost that
			// makes multi-MiB objects too slow for the race-mode unit
			// suite; the stream/RS encodings take the big size.
		default:
			szs = append(append([]int(nil), sizes...), big)
		}
		n, min := enc.Shards()
		for _, size := range szs {
			data := make([]byte, size)
			rng.Read(data)
			e, err := enc.Encode(data, rand.Reader)
			if _, ok := enc.(EntropicEncryption); ok && size < 16 {
				// Entropic encryption's OTP key floor (entropic.ErrKeyTooShort)
				// makes sub-16-byte objects unencodable by design: it must
				// reject them cleanly, not process them.
				if err == nil {
					t.Fatalf("%s: encoded %d bytes below the security floor", enc.Name(), size)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s encode %d bytes: %v", enc.Name(), size, err)
			}
			trials := 3
			if size >= 64<<10-1 {
				trials = 2
			}
			if size >= big {
				trials = 1
			}
			for trial := 0; trial < trials; trial++ {
				perm := rng.Perm(n)
				shards := append([][]byte(nil), e.Shards...)
				for _, i := range perm[min:] {
					shards[i] = nil
				}
				got, err := enc.Decode(&Encoded{
					Scheme:       e.Scheme,
					PlainLen:     e.PlainLen,
					Shards:       shards,
					ClientSecret: e.ClientSecret,
					PublicMeta:   e.PublicMeta,
				})
				if err != nil {
					t.Fatalf("%s size %d subset %v: %v", enc.Name(), size, perm[:min], err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("%s size %d subset %v: plaintext mismatch", enc.Name(), size, perm[:min])
				}
			}
		}
	}
}

// TestPropertyVaultConcurrentDistinctIDs drives every encoding's vault
// path with workers on disjoint ids: all ops must succeed and every read
// must return that id's exact payload. Run under -race this doubles as
// the striped registry's data-race check.
func TestPropertyVaultConcurrentDistinctIDs(t *testing.T) {
	for _, enc := range Figure1Encodings(cfgSmall()) {
		enc := enc
		t.Run(enc.Name(), func(t *testing.T) {
			t.Parallel()
			v, _ := testVault(t, enc)
			const workers, perWorker = 4, 3
			var wg sync.WaitGroup
			errs := make(chan error, workers*perWorker*2)
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						id := fmt.Sprintf("w%d-obj%d", w, i)
						data := []byte(fmt.Sprintf("payload %s %d", id, i))
						if err := v.Put(id, data); err != nil {
							errs <- fmt.Errorf("put %s: %w", id, err)
							return
						}
						got, err := v.Get(id)
						if err != nil {
							errs <- fmt.Errorf("get %s: %w", id, err)
							return
						}
						if !bytes.Equal(got, data) {
							errs <- fmt.Errorf("get %s: payload mismatch", id)
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			if got := len(v.Objects()); got != workers*perWorker {
				t.Errorf("objects = %d, want %d", got, workers*perWorker)
			}
		})
	}
}

// TestPropertyVaultConcurrentSameID aims every worker at ONE id: exactly
// one Put must win (the rest see ErrExists), and every Get — racing the
// winning Put — must return either ErrNotFound (commit not yet visible)
// or the winner's exact bytes, never a torn intermediate.
func TestPropertyVaultConcurrentSameID(t *testing.T) {
	v, _ := testVault(t, SecretSharing{T: 4, N: 8})
	data := []byte("the one true payload for the contended id")
	const workers = 8
	var wins, exists, torn int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := v.Put("contended", data)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				wins++
			case errors.Is(err, ErrExists):
				exists++
			default:
				torn++
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := v.Get("contended")
			if err == nil && !bytes.Equal(got, data) {
				mu.Lock()
				torn++
				mu.Unlock()
			} else if err != nil && !errors.Is(err, ErrNotFound) {
				mu.Lock()
				torn++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if wins != 1 || exists != workers-1 || torn != 0 {
		t.Fatalf("wins=%d exists=%d anomalies=%d, want 1/%d/0", wins, exists, torn, workers-1)
	}
	got, err := v.Get("contended")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("final get: %v", err)
	}
}
