//go:build !race

package core

// raceEnabled reports whether the race detector is active; alloc gates
// skip under it (instrumentation allocates on its own).
const raceEnabled = false
