package core

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"

	"securearchive/internal/obs/trace"
)

// Scrubbing: detect missing and rotted shards and rewrite the stripe
// through the same stage-then-commit path renewal uses. This promotes
// what archivectl's scrub command did against its file store into the
// library, where every Vault caller (and the fault-injection harness)
// can run it against the cluster.

// ShardDigests computes per-shard SHA-256 digests (zero digest for nil
// shards) — the client-side health reference the vault keeps per object.
func ShardDigests(shards [][]byte) [][sha256.Size]byte {
	out := make([][sha256.Size]byte, len(shards))
	for i, sh := range shards {
		if sh != nil {
			out[i] = sha256.Sum256(sh)
		}
	}
	return out
}

// CheckShards classifies a fetched stripe against expected digests:
// healthy (present and matching), missing (nil), corrupt (present but
// mismatching). Indices beyond the digest list count as healthy when
// present.
func CheckShards(shards [][]byte, digests [][sha256.Size]byte) (healthy, missing, corrupt []int) {
	for i, sh := range shards {
		switch {
		case sh == nil:
			missing = append(missing, i)
		case i < len(digests) && sha256.Sum256(sh) != digests[i]:
			corrupt = append(corrupt, i)
		default:
			healthy = append(healthy, i)
		}
	}
	return healthy, missing, corrupt
}

// ScrubReport describes one object's stripe health after a scrub pass.
type ScrubReport struct {
	Object string
	// Healthy, Missing and Corrupt partition the stripe's node indices
	// as found before any repair.
	Healthy []int
	Missing []int
	Corrupt []int
	// Repaired is true when the stripe was rewritten back to full
	// health through the atomic write path.
	Repaired bool
}

// Clean reports whether the stripe needed no repair.
func (r *ScrubReport) Clean() bool { return len(r.Missing) == 0 && len(r.Corrupt) == 0 }

// Scrub audits one object's stripe: it fetches every shard (retrying
// transient faults), classifies each against the object's digests, and —
// when damage is found — decodes from the healthy shards, verifies the
// plaintext against the integrity chain, re-encodes with fresh
// randomness and rewrites the whole stripe through the same
// stage-then-commit path Put and RenewShares use. The report describes
// the stripe as found; an error means the damage exceeded the encoding's
// redundancy (or a node needed for the rewrite is down), in which case
// the cluster is left exactly as it was.
func (v *Vault) Scrub(id string) (*ScrubReport, error) {
	return v.ScrubContext(context.Background(), id)
}

// ScrubContext is Scrub rooted in (or joined to) a trace: the audit
// fetch, the repair decode/verify, and the staged rewrite nest under one
// "vault.scrub" span, with a "scrub.repaired" event when the stripe was
// rewritten. The scrub holds only the object's write lock, so scrubs and
// traffic on other objects proceed concurrently.
func (v *Vault) ScrubContext(ctx context.Context, id string) (*ScrubReport, error) {
	ctx, sp := v.tracer.Start(ctx, "vault.scrub", trace.Str("object", id))
	rep, err := v.scrub(ctx, id)
	sp.End(err)
	return rep, err
}

func (v *Vault) scrub(ctx context.Context, id string) (*ScrubReport, error) {
	obj := v.lookup(id)
	if obj == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	v.lockWait(trace.FromContext(ctx), obj.mu.Lock)
	defer obj.mu.Unlock()
	if !obj.live.Load() {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return v.scrubObject(ctx, id, obj)
}

// ScrubAll scrubs every object (in id order), returning one report per
// object and the joined errors of the failures.
func (v *Vault) ScrubAll() ([]*ScrubReport, error) {
	return v.ScrubAllContext(context.Background())
}

// ScrubAllContext is ScrubAll with each object's scrub rooted in (or
// joined to) its own "vault.scrub" trace. The sweep holds the vault's
// sweep lock (serialising concurrent sweeps against each other) and
// takes each object's lock in turn — never more than one at a time, so
// per-object traffic interleaves with the sweep. Objects deleted after
// the sweep snapshot are skipped silently.
func (v *Vault) ScrubAllContext(ctx context.Context) ([]*ScrubReport, error) {
	v.sweepMu.Lock()
	defer v.sweepMu.Unlock()
	ids := v.Objects()
	sort.Strings(ids)
	var reports []*ScrubReport
	var errs []error
	for _, id := range ids {
		sctx, sp := v.tracer.Start(ctx, "vault.scrub", trace.Str("object", id))
		rep, err := v.scrub(sctx, id)
		sp.End(err)
		if errors.Is(err, ErrNotFound) {
			continue // deleted since the snapshot
		}
		if rep != nil {
			reports = append(reports, rep)
		}
		if err != nil {
			errs = append(errs, err)
		}
	}
	return reports, errors.Join(errs...)
}

// scrubObject is the scrub body; callers hold obj.mu in write mode and
// have checked liveness.
func (v *Vault) scrubObject(ctx context.Context, id string, obj *vaultObject) (*ScrubReport, error) {
	if obj.batch != nil {
		return v.scrubBatchMember(ctx, id, obj)
	}
	if len(obj.chunks) > 0 {
		return v.scrubChunked(ctx, id, obj)
	}
	n, _ := v.Encoding.Shards()
	res := v.Cluster.FetchStripeCtx(ctx, id, n, n, v.retry, nil)
	if res.Canceled != nil {
		return nil, fmt.Errorf("core: scrub %s: %w", id, res.Canceled)
	}
	shards := res.Shards
	healthy, missing, corrupt := CheckShards(shards, obj.digests)
	rep := &ScrubReport{Object: id, Healthy: healthy, Missing: missing, Corrupt: corrupt}
	if rep.Clean() {
		// A clean stripe clears any read-time dirty mark: whatever a
		// degraded read discarded has since healed or been rewritten.
		v.clearDirty(id)
		return rep, nil
	}
	// Decode from the healthy shards only, then confirm end to end
	// against the integrity chain before trusting the repair source.
	for _, i := range corrupt {
		shards[i] = nil
	}
	_, dsp := trace.Child(ctx, "vault.decode", trace.Int("shards", len(healthy)))
	data, err := v.Encoding.Decode(&Encoded{
		Scheme:       obj.enc.Scheme,
		PlainLen:     obj.enc.PlainLen,
		Shards:       shards,
		ClientSecret: obj.enc.ClientSecret,
		PublicMeta:   obj.enc.PublicMeta,
	})
	dsp.End(err)
	if err != nil {
		return rep, fmt.Errorf("core: scrub %s: decode from %d healthy shards: %w", id, len(healthy), err)
	}
	_, vsp := trace.Child(ctx, "vault.verify")
	err = obj.chain.VerifyData(data)
	vsp.End(err)
	if err != nil {
		return rep, fmt.Errorf("core: scrub %s: integrity chain rejects recovered data: %w", id, err)
	}
	_, esp := trace.Child(ctx, "vault.encode", trace.Int("bytes", len(data)))
	enc, err := v.Encoding.Encode(data, v.rnd)
	esp.End(err)
	if err != nil {
		return rep, fmt.Errorf("core: scrub %s: re-encode: %w", id, err)
	}
	if err := v.disperse(ctx, id, enc); err != nil {
		return rep, fmt.Errorf("core: scrub %s: rewrite rolled back: %w", id, err)
	}
	// The repair rewrote the stripe; the cached plaintext is still
	// byte-identical, but dropping it keeps the mutator rule — every
	// stripe rewrite invalidates — unconditional and easy to audit.
	v.cacheInvalidate(id)
	obj.enc.ClientSecret = enc.ClientSecret
	obj.enc.PublicMeta = enc.PublicMeta
	obj.enc.PlainLen = enc.PlainLen
	obj.digests = ShardDigests(enc.Shards)
	oldWidth := obj.width
	obj.width = len(enc.Shards)
	v.cleanupStrayShards(id, oldWidth, 1, obj.width, 1)
	rep.Repaired = true
	v.obsm.scrubRepairs.Inc()
	sp := trace.FromContext(ctx)
	sp.Event("scrub.repaired",
		trace.Int("missing", len(rep.Missing)), trace.Int("corrupt", len(rep.Corrupt)))
	v.clearDirty(id)
	return rep, nil
}
