package core

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"securearchive/internal/cluster"
	"securearchive/internal/obs/trace"
	"securearchive/internal/parallel"
	"securearchive/internal/sig"
	"securearchive/internal/tstamp"
)

// Streaming ingest and retrieval: PutReader feeds an io.Reader through
// the same chunked encode→stage pipeline putChunked uses, reading one
// chunk at a time, so an object of any size passes through the vault
// holding O(chunkSize) plaintext in memory — never the whole object.
// The integrity chain binds the object's SHA-256 digest, computed
// incrementally as chunks stream past (tstamp.NewFromDigest), and the
// whole multi-chunk write still commits under ONE stage token: a
// failure at any chunk aborts the stage and leaves nothing behind.
//
// ReadTo is the mirror: chunks decode and flow to an io.Writer as they
// arrive, with the digest accumulated incrementally and checked against
// the chain after the last chunk. Note the streaming trade-off: bytes
// reach the writer before the final verify runs, so a non-nil error —
// even after a partial write — invalidates everything written.

// streamBufAdd adjusts the in-flight plaintext byte count (read from
// the client but not yet staged on the cluster) and maintains the
// lifetime high-water mark. Both mirror into the vault.stream.* gauges;
// the peak is the memory-boundedness evidence the streaming tests (and
// the API layer's multi-GiB claim) rest on.
func (v *Vault) streamBufAdd(n int64) {
	cur := v.streamBuffered.Add(n)
	v.obsm.streamBuffered.Set(cur)
	for {
		peak := v.streamPeak.Load()
		if cur <= peak {
			return
		}
		if v.streamPeak.CompareAndSwap(peak, cur) {
			v.obsm.streamPeak.Set(cur)
			return
		}
	}
}

// StreamPeakBuffered reports the high-water mark of plaintext bytes the
// streaming writer has held in memory at once over the vault's
// lifetime. For a healthy pipeline this stays at a few chunks'
// worth (the read-ahead chunk plus pipelineDepth in-flight encodes)
// regardless of object size.
func (v *Vault) StreamPeakBuffered() int64 { return v.streamPeak.Load() }

// PutReader archives the reader's content under id without ever
// materialising it: chunks are read, encoded, and staged as a bounded
// pipeline, and the integrity chain is opened from the incrementally
// computed digest. Returns the number of plaintext bytes consumed.
// With chunking disabled (WithChunkSize <= 0) there is no streaming
// frame to work in, so the reader is drained and the monolithic path
// used.
func (v *Vault) PutReader(ctx context.Context, id string, r io.Reader) (int64, error) {
	ctx, sp := v.tracer.Start(ctx, "vault.put",
		trace.Str("object", id), trace.Str("encoding", v.Encoding.Name()), trace.Str("mode", "stream"))
	n, err := v.putReader(ctx, id, r)
	if err == nil {
		sp.SetAttrs(trace.Int64("bytes", n))
	}
	sp.End(err)
	return n, err
}

func (v *Vault) putReader(ctx context.Context, id string, r io.Reader) (int64, error) {
	if v.chunkSize <= 0 {
		data, err := io.ReadAll(r)
		if err != nil {
			return 0, fmt.Errorf("core: put %s: read: %w", id, err)
		}
		return int64(len(data)), v.put(ctx, id, data)
	}
	st := v.stripe(id)
	st.mu.RLock()
	_, exists := st.objects[id]
	st.mu.RUnlock()
	if exists {
		return 0, fmt.Errorf("%w: %s", ErrExists, id)
	}

	// Reserve the id exactly as put/putChunked do: a non-live entry with
	// its writer lock held, rolled back if the dispersal fails.
	obj := &vaultObject{}
	obj.mu.Lock()
	st.mu.Lock()
	if _, ok := st.objects[id]; ok {
		st.mu.Unlock()
		obj.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrExists, id)
	}
	st.objects[id] = obj
	st.mu.Unlock()

	metas, chain, total, err := v.disperseStream(ctx, id, r)
	if err != nil {
		st.mu.Lock()
		delete(st.objects, id)
		st.mu.Unlock()
		obj.mu.Unlock()
		return 0, err
	}
	obj.enc = &Encoded{Scheme: metas[0].enc.Scheme, PlainLen: int(total)}
	obj.chunks = metas
	obj.width = len(metas[0].digests)
	obj.chain = chain
	obj.live.Store(true)
	v.cacheInvalidate(id) // defensive, as in put
	obj.mu.Unlock()
	v.obsm.putBytes.Observe(float64(total))
	v.obsm.pipelinePuts.Inc()
	v.obsm.streamPuts.Inc()
	return total, nil
}

// disperseStream runs the reader-fed encode→stage pipeline. The
// producer reads chunkSize-byte chunks with one chunk of lookahead so
// the tail can fold per numChunks semantics (a sub-floor remainder
// joins the previous chunk rather than becoming a runt stripe), hashes
// the plaintext incrementally, and encodes; the consumer stages each
// chunk under the shared token. The chain is opened from the digest
// BEFORE the commit so a chain failure still aborts cleanly. Callers
// hold the object's write lock.
func (v *Vault) disperseStream(ctx context.Context, id string, r io.Reader) ([]chunkMeta, *tstamp.Chain, int64, error) {
	cs := v.chunkSize
	stage := v.newStageToken(id)
	pctx, psp := trace.Child(ctx, "vault.pipeline",
		trace.Str("object", id), trace.Str("mode", "stream"))
	// The staging side gets its own cluster.stage span — the same shape
	// the monolithic disperse has — so a cross-boundary trace shows the
	// cluster work as one child regardless of which write path ran. It
	// covers first-stage through commit/abort (staging interleaves with
	// encoding, so that is its true extent).
	sctx, ssp := trace.Child(pctx, "cluster.stage", trace.Str("object", id))
	start := time.Now()
	h := sha256.New()
	var total int64
	var metas []chunkMeta

	// inFlight tracks this put's share of the vault-wide buffered-bytes
	// gauge: bytes add as they are read, subtract as their chunk stages
	// (or is dropped by a failing pipeline). The deferred release zeroes
	// whatever an error path left accounted, so the gauge never leaks.
	var inFlight atomic.Int64
	track := func(n int64) {
		inFlight.Add(n)
		v.streamBufAdd(n)
	}
	defer func() { v.streamBufAdd(-inFlight.Swap(0)) }()

	err := parallel.Pipeline(pipelineDepth,
		func(emit func(encodedChunk) bool) error {
			var pending []byte // lookahead: last full chunk, unemitted
			idx := 0
			emitChunk := func(data []byte) (bool, error) {
				// Cancellation checkpoint between chunk encodes: a
				// disconnected client must not keep burning CPU on chunks
				// nobody will commit.
				if err := ctx.Err(); err != nil {
					return false, fmt.Errorf("core: encode %s chunk %d: %w", id, idx, err)
				}
				enc, err := v.Encoding.Encode(data, v.rnd)
				if err != nil {
					return false, fmt.Errorf("core: encode %s chunk %d: %w", id, idx, err)
				}
				ok := emit(encodedChunk{idx: idx, enc: enc})
				idx++
				return ok, nil
			}
			for {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("core: read %s chunk %d: %w", id, idx, err)
				}
				buf := make([]byte, cs)
				n, rerr := io.ReadFull(r, buf)
				if n > 0 {
					h.Write(buf[:n])
					total += int64(n)
					track(int64(n))
				}
				if rerr == nil {
					// A full chunk landed, so the previous one cannot be the
					// tail — emit it and hold this one back instead.
					if pending != nil {
						if ok, err := emitChunk(pending); err != nil || !ok {
							return err // !ok: consumer failed, its error wins
						}
					}
					pending = buf
					continue
				}
				if rerr != io.EOF && rerr != io.ErrUnexpectedEOF {
					return fmt.Errorf("core: read %s chunk %d: %w", id, idx, rerr)
				}
				tail := buf[:n]
				switch {
				case n == 0:
					// Clean EOF on a chunk boundary. An empty reader still
					// encodes the empty slice so the encoding's own empty-data
					// rejection surfaces, matching Put(nil).
					if pending == nil {
						pending = tail
					}
				case pending != nil && n < chunkTailFloor:
					pending = append(pending, tail...) // fold sub-floor tail
				default:
					if pending != nil {
						if ok, err := emitChunk(pending); err != nil || !ok {
							return err
						}
					}
					pending = tail
				}
				_, err := emitChunk(pending)
				return err
			}
		},
		func(c encodedChunk) error {
			// Mirror checkpoint on the staging side: RetryTransientCtx
			// inside stageShards aborts an in-flight backoff, this stops
			// the next chunk's staging from starting at all.
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("core: stage %s chunk %d: %w", id, c.idx, err)
			}
			if err := v.stageShards(sctx, stage, id, c.idx, c.enc.Shards); err != nil {
				return err
			}
			metas = append(metas, chunkMeta{
				enc: &Encoded{
					Scheme:       c.enc.Scheme,
					PlainLen:     c.enc.PlainLen,
					ClientSecret: c.enc.ClientSecret,
					PublicMeta:   c.enc.PublicMeta,
				},
				digests: ShardDigests(c.enc.Shards),
			})
			track(-int64(c.enc.PlainLen))
			v.obsm.pipelineChunks.Inc()
			return nil
		},
		func(c encodedChunk) { track(-int64(c.enc.PlainLen)) },
	)
	if err != nil {
		v.Cluster.AbortStage(stage)
		ssp.Event("stage.aborted")
		ssp.End(err)
		psp.End(err)
		return nil, nil, 0, err
	}
	var digest [sha256.Size]byte
	h.Sum(digest[:0])
	chain, err := tstamp.NewFromDigest(digest, v.IntegrityMode, sig.Ed25519, v.Cluster.Epoch(), v.Group, v.rnd)
	if err != nil {
		v.Cluster.AbortStage(stage)
		ssp.Event("stage.aborted")
		ssp.End(err)
		psp.End(err)
		return nil, nil, 0, err
	}
	n, err := v.Cluster.CommitStage(stage)
	if err != nil {
		v.Cluster.AbortStage(stage)
		ssp.Event("stage.aborted")
		ssp.End(err)
		psp.End(err)
		return nil, nil, 0, fmt.Errorf("core: commit %s: %w", id, err)
	}
	observeRate(v.obsm.pipelineMBs, int(total), time.Since(start))
	ssp.Event("stage.committed", trace.Int("shards", n))
	ssp.End(nil)
	psp.SetAttrs(trace.Int("chunks", len(metas)), trace.Int64("bytes", total))
	psp.End(nil)
	return metas, chain, total, nil
}

// ReadTo retrieves an object into w, streaming chunk by chunk for
// pipeline-written objects so retrieval is as memory-bounded as ingest.
// Monolithic and batch-member objects are at most one chunk's worth by
// construction, so materialising them first costs O(chunk) anyway.
// Returns the number of plaintext bytes written. The final integrity
// verification runs after the last chunk: an error return invalidates
// any bytes already written to w.
func (v *Vault) ReadTo(ctx context.Context, id string, w io.Writer) (int64, error) {
	ctx, sp := v.tracer.Start(ctx, "vault.get",
		trace.Str("object", id), trace.Str("encoding", v.Encoding.Name()), trace.Str("mode", "stream"))
	n, err := v.readTo(ctx, id, w)
	if err == nil {
		sp.SetAttrs(trace.Int64("bytes", n))
	}
	sp.End(err)
	return n, err
}

func (v *Vault) readTo(ctx context.Context, id string, w io.Writer) (int64, error) {
	obj := v.lookup(id)
	if obj == nil {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	v.lockWait(trace.FromContext(ctx), obj.mu.RLock)
	defer obj.mu.RUnlock()
	if !obj.live.Load() {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	// Cache probe for every shape (monolithic, batch member, chunked): a
	// hit streams the immutable cached copy straight to w with no fetch,
	// no decode, and no extra allocation. Epoch capture mirrors get().
	epoch := v.Cluster.Epoch()
	if v.cache != nil {
		if cached, ok := v.cacheGet(ctx, id, epoch); ok {
			n, err := w.Write(cached)
			if err != nil {
				return int64(n), fmt.Errorf("core: get %s: write: %w", id, err)
			}
			return int64(n), nil
		}
	}
	if obj.batch == nil && len(obj.chunks) > 0 {
		// Small chunked objects are worth caching, but the streaming read
		// materialises nothing by design — tee into a buffer only when the
		// whole object fits a cache entry anyway, and insert only after
		// the chain verified the complete read.
		if v.cache != nil && int64(obj.enc.PlainLen) <= v.cache.maxEntry {
			var buf bytes.Buffer
			buf.Grow(obj.enc.PlainLen)
			n, err := v.readChunkedTo(ctx, id, obj, io.MultiWriter(w, &buf))
			if err == nil {
				v.cache.put(id, epoch, buf.Bytes())
			}
			return n, err
		}
		return v.readChunkedTo(ctx, id, obj, w)
	}
	data, err := v.readObject(ctx, id, obj)
	if err != nil {
		return 0, err
	}
	if v.cache != nil {
		v.cache.put(id, epoch, data)
	}
	n, err := w.Write(data)
	if err != nil {
		return int64(n), fmt.Errorf("core: get %s: write: %w", id, err)
	}
	return int64(n), nil
}

// readChunkedTo is the degraded read body for pipeline-written objects,
// streaming each decoded chunk to w as it clears its stripe; callers
// hold obj.mu and have checked liveness. Each chunk is an independent
// k-of-n stripe read validated against its own digests; the integrity
// chain verifies the digest of the whole, accumulated incrementally, so
// the reassembled object never needs to exist in memory. readChunked
// (pipeline.go) is this with a buffer for callers that want bytes.
func (v *Vault) readChunkedTo(ctx context.Context, id string, obj *vaultObject, w io.Writer) (int64, error) {
	sp := trace.FromContext(ctx)
	n, min := v.Encoding.Shards()
	h := sha256.New()
	var total int64
	dctx, dsp := trace.Child(ctx, "vault.decode", trace.Int("chunks", len(obj.chunks)))
	decStart := time.Now()
	// Prefetch overlaps the next window of stripe fetches with this
	// chunk's decode/digest/write; the deferred stop runs before the
	// caller releases obj.mu, so look-ahead goroutines never outlive the
	// object state they read (see prefetch.go).
	var pf *prefetcher
	if v.prefetchWindow > 0 && len(obj.chunks) > 1 {
		pf = v.newPrefetcher(dctx, id, obj)
		defer func() {
			issued, wasted := pf.stop()
			v.obsm.prefetchIssued.Add(issued)
			v.obsm.prefetchWasted.Add(wasted)
		}()
	}
	for ci := range obj.chunks {
		cm := &obj.chunks[ci]
		var res *cluster.StripeResult
		if pf != nil {
			res = pf.next(ci)
		} else {
			res = v.Cluster.FetchChunkStripeCtx(dctx, id, ci, n, min, v.retry, func(i int, data []byte) bool {
				return i < len(cm.digests) && sha256.Sum256(data) == cm.digests[i]
			})
		}
		if len(res.Discarded) > 0 {
			v.obsm.readDiscarded.Add(int64(len(res.Discarded)))
			v.markDirty(id)
			sp.Event("read.dirty", trace.Int("chunk", ci), trace.Int("discarded", len(res.Discarded)))
		}
		if res.Canceled != nil {
			dsp.End(res.Canceled)
			return total, fmt.Errorf("core: get %s chunk %d: %w", id, ci, res.Canceled)
		}
		if res.Fetched < min {
			v.obsm.readInsufficient.Inc()
			sp.Event("read.insufficient",
				trace.Int("chunk", ci), trace.Int("got", res.Fetched), trace.Int("want", min))
			dsp.End(ErrDegraded)
			return total, &DegradedError{Object: id, Got: res.Fetched, Want: min, Failures: res.Failures}
		}
		if res.Degraded() {
			v.obsm.readDegraded.Inc()
		}
		chunkData, err := v.Encoding.Decode(&Encoded{
			Scheme:       cm.enc.Scheme,
			PlainLen:     cm.enc.PlainLen,
			Shards:       res.Shards,
			ClientSecret: cm.enc.ClientSecret,
			PublicMeta:   cm.enc.PublicMeta,
		})
		if err != nil {
			dsp.End(err)
			return total, fmt.Errorf("core: decode %s chunk %d: %w", id, ci, err)
		}
		h.Write(chunkData)
		wn, err := w.Write(chunkData)
		total += int64(wn)
		if err != nil {
			dsp.End(err)
			return total, fmt.Errorf("core: get %s chunk %d: write: %w", id, ci, err)
		}
	}
	dsp.End(nil)
	observeRate(v.obsm.decodeMBs, int(total), time.Since(decStart))
	v.obsm.getBytes.Observe(float64(total))
	var digest [sha256.Size]byte
	h.Sum(digest[:0])
	_, vsp := trace.Child(ctx, "vault.verify")
	err := obj.chain.VerifyDigest(digest)
	vsp.End(err)
	if err != nil {
		return total, fmt.Errorf("core: integrity chain rejects data for %s: %w", id, err)
	}
	return total, nil
}

// ObjectInfo is the client-visible metadata for one archived object —
// what the network API serves on HEAD/stat without touching the
// cluster.
type ObjectInfo struct {
	ID string
	// PlainLen is the object's plaintext length in bytes.
	PlainLen int64
	// Scheme names the encoding that produced the stored shards.
	Scheme string
	// Chunks is the number of chunk stripes (1 for monolithic and
	// batch-member objects).
	Chunks int
	// Width is the stripe width actually occupied on the cluster.
	Width int
	// ChainLen is the integrity chain's link count (grows with renewals).
	ChainLen int
}

// Stat reports an object's metadata from the vault's client-side state.
func (v *Vault) Stat(id string) (*ObjectInfo, error) {
	obj := v.lookup(id)
	if obj == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	obj.mu.RLock()
	defer obj.mu.RUnlock()
	if !obj.live.Load() {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if obj.batch != nil {
		// Members share one chain; lock against a batchmate's renewal.
		obj.batch.mu.RLock()
		defer obj.batch.mu.RUnlock()
	}
	info := &ObjectInfo{
		ID:       id,
		PlainLen: int64(obj.enc.PlainLen),
		Scheme:   obj.enc.Scheme,
		Chunks:   1,
		Width:    obj.width,
		ChainLen: obj.chain.Len(),
	}
	if len(obj.chunks) > 0 {
		info.Chunks = len(obj.chunks)
	}
	return info, nil
}
