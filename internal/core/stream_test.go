package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
)

// iotaReader feeds a deterministic byte pattern of the given length in
// deliberately awkward read sizes (never aligned with the chunk size),
// so the streaming producer's refill loop is exercised for real.
type iotaReader struct {
	n    int
	off  int
	step int
}

func (r *iotaReader) Read(p []byte) (int, error) {
	if r.off >= r.n {
		return 0, io.EOF
	}
	max := r.step
	if max <= 0 || max > len(p) {
		max = len(p)
	}
	if rem := r.n - r.off; max > rem {
		max = rem
	}
	for i := 0; i < max; i++ {
		p[i] = byte((r.off + i) * 131)
	}
	r.off += max
	return max, nil
}

func iotaBytes(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 131)
	}
	return b
}

// TestPutReaderRoundTrip is the streaming differential property: for
// sizes straddling every chunk-boundary case (single chunk, exact
// multiple, sub-floor tail that folds into the previous chunk, proper
// tail chunk, many chunks), PutReader must store exactly what a slice
// put would, readable through both ReadTo and the slice Get path.
func TestPutReaderRoundTrip(t *testing.T) {
	const chunk = 2048
	sizes := []int{
		1,
		chunk - 1,
		chunk,
		chunk + 1,                  // tail 1 < chunkTailFloor: folds into chunk 1
		chunk + chunkTailFloor - 1, // largest folding tail
		chunk + chunkTailFloor,     // smallest standalone tail chunk
		3*chunk + 17,
		8 * chunk,
	}
	v, _ := chunkedTestVault(t, Erasure{K: 4, N: 8}, chunk)
	for _, size := range sizes {
		id := fmt.Sprintf("obj-%d", size)
		want := iotaBytes(size)
		n, err := v.PutReader(context.Background(), id, &iotaReader{n: size, step: 733})
		if err != nil {
			t.Fatalf("PutReader(%d): %v", size, err)
		}
		if n != int64(size) {
			t.Fatalf("PutReader(%d) reported %d bytes", size, n)
		}
		// Slice read path must see the streamed object.
		got, err := v.Get(id)
		if err != nil {
			t.Fatalf("Get(%d): %v", size, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Get(%d): payload mismatch", size)
		}
		// Streaming read path.
		var buf bytes.Buffer
		rn, err := v.ReadTo(context.Background(), id, &buf)
		if err != nil {
			t.Fatalf("ReadTo(%d): %v", size, err)
		}
		if rn != int64(size) || !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("ReadTo(%d): n=%d equal=%v", size, rn, bytes.Equal(buf.Bytes(), want))
		}
		info, err := v.Stat(id)
		if err != nil {
			t.Fatalf("Stat(%d): %v", size, err)
		}
		if info.PlainLen != int64(size) {
			t.Fatalf("Stat(%d).PlainLen = %d", size, info.PlainLen)
		}
		// Evidence chain must verify for streamed objects too.
		if err := v.Chain(id).VerifyData(want); err != nil {
			t.Fatalf("chain verify (%d): %v", size, err)
		}
	}
}

// TestReadToSlicePutObjects: ReadTo must serve objects written through
// the slice paths (monolithic and chunked) — the read side is one
// implementation, not a parallel streaming-only store.
func TestReadToSlicePutObjects(t *testing.T) {
	const chunk = 2048
	for _, tc := range []struct {
		name string
		cs   int
		size int
	}{
		{"mono", 0, 4096},
		{"chunked", chunk, 3*chunk + 17},
	} {
		t.Run(tc.name, func(t *testing.T) {
			v, _ := chunkedTestVault(t, Erasure{K: 4, N: 8}, tc.cs)
			want := iotaBytes(tc.size)
			if err := v.Put("obj", want); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			n, err := v.ReadTo(context.Background(), "obj", &buf)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(tc.size) || !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("ReadTo: n=%d equal=%v", n, bytes.Equal(buf.Bytes(), want))
			}
		})
	}
}

// TestPutReaderEmpty: an empty stream must fail the same way an empty
// slice put does, and must not register the id or leak staged shards.
func TestPutReaderEmpty(t *testing.T) {
	v, c := chunkedTestVault(t, Erasure{K: 4, N: 8}, 2048)
	_, err := v.PutReader(context.Background(), "empty", bytes.NewReader(nil))
	if err == nil {
		t.Fatal("PutReader of empty stream succeeded")
	}
	if !errors.Is(err, ErrEmptyData) {
		t.Fatalf("err = %v; want ErrEmptyData", err)
	}
	if got := c.StoredBytes(); got != 0 {
		t.Fatalf("StoredBytes = %d after failed empty put; want 0", got)
	}
	// The id must be free for reuse after the failure.
	if _, err := v.PutReader(context.Background(), "empty", bytes.NewReader([]byte("x"))); err != nil {
		t.Fatalf("re-put after empty failure: %v", err)
	}
}

// TestPutReaderDuplicate: streaming puts respect write-once semantics.
func TestPutReaderDuplicate(t *testing.T) {
	v, _ := chunkedTestVault(t, Erasure{K: 4, N: 8}, 2048)
	if _, err := v.PutReader(context.Background(), "obj", bytes.NewReader(iotaBytes(100))); err != nil {
		t.Fatal(err)
	}
	_, err := v.PutReader(context.Background(), "obj", bytes.NewReader(iotaBytes(100)))
	if !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate PutReader err = %v; want ErrExists", err)
	}
}

// TestPutReaderMemoryBounded is the acceptance check for streaming
// ingest: pushing an object 16x the chunk size through PutReader must
// keep the vault's peak buffered plaintext O(chunk) — bounded by the
// pipeline depth plus lookahead, not by the object size.
func TestPutReaderMemoryBounded(t *testing.T) {
	const chunk = 4096
	v, _ := chunkedTestVault(t, Erasure{K: 4, N: 8}, chunk)
	size := 16 * chunk
	n, err := v.PutReader(context.Background(), "big", &iotaReader{n: size, step: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(size) {
		t.Fatalf("PutReader reported %d bytes; want %d", n, size)
	}
	peak := v.StreamPeakBuffered()
	if peak == 0 {
		t.Fatal("StreamPeakBuffered = 0; gauge not wired")
	}
	// Producer lookahead holds ≤2 chunks, the pipeline ≤pipelineDepth
	// encoded chunks, plus one in the consumer: 6 chunks is generous.
	if limit := int64(6 * chunk); peak > limit {
		t.Fatalf("StreamPeakBuffered = %d for a %d-byte object; want ≤ %d (O(chunk), not O(object))",
			peak, size, limit)
	}
	// And the full object must still round-trip.
	got, err := v.Get("big")
	if err != nil || !bytes.Equal(got, iotaBytes(size)) {
		t.Fatalf("round-trip after memory-bound put: err=%v", err)
	}
}
