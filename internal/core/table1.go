package core

import (
	"crypto/rand"
	"fmt"
	"io"

	"securearchive/internal/cluster"
	"securearchive/internal/group"
	"securearchive/internal/sec"
	"securearchive/internal/systems"
)

// Table1Row is one measured row of the paper's Table 1.
type Table1Row struct {
	sec.Profile
	// RenewalSupported reports whether the system can refresh at-rest
	// material without user intervention.
	RenewalSupported bool
}

// Table1Config sizes the measurement.
type Table1Config struct {
	Nodes     int
	ObjectLen int
}

// DefaultTable1Config measures 64 KiB objects on an 8-node cluster.
func DefaultTable1Config() Table1Config {
	return Table1Config{Nodes: 8, ObjectLen: 64 << 10}
}

// Table1 instantiates every system, archives one object through each,
// measures real at-rest cost from cluster accounting, and returns the
// rows in the paper's order. The classifications come from each system's
// own Classify; the cost band comes from the measurement — this is
// Table 1 regenerated rather than asserted (experiment E2).
func Table1(cfg Table1Config, rnd io.Reader) ([]Table1Row, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	c := cluster.New(cfg.Nodes, nil)
	grp := group.Test()

	data := make([]byte, cfg.ObjectLen)
	if _, err := io.ReadFull(rnd, data); err != nil {
		return nil, err
	}
	keyData := make([]byte, grp.ScalarCapacity())
	if _, err := io.ReadFull(rnd, keyData); err != nil {
		return nil, err
	}

	type entry struct {
		sys   systems.Archive
		data  []byte
		renew bool
	}
	build := func() ([]entry, error) {
		asl, err := systems.NewArchiveSafeLT(c, nil, 4, 2)
		if err != nil {
			return nil, err
		}
		ars, err := systems.NewAONTRS(c, 4, 6)
		if err != nil {
			return nil, err
		}
		has, err := systems.NewHasDPSS(c, 6, 3, grp)
		if err != nil {
			return nil, err
		}
		lin, err := systems.NewLINCOS(c, 6, 3, grp, 7)
		if err != nil {
			return nil, err
		}
		pas, err := systems.NewPASIS(c, systems.PASISSecretShare, 6, 3)
		if err != nil {
			return nil, err
		}
		pot, err := systems.NewPOTSHARDS(c, 6, 3)
		if err != nil {
			return nil, err
		}
		vsr, err := systems.NewVSRArchive(c, 6, 3)
		if err != nil {
			return nil, err
		}
		cloud, err := systems.NewCloudAES(c, 4, 2)
		if err != nil {
			return nil, err
		}
		return []entry{
			{asl, data, true},
			{ars, data, true},
			{has, keyData, true},
			{lin, data, true},
			{pas, data, false},
			{pot, data, false},
			{vsr, data, true},
			{cloud, data, true},
		}, nil
	}
	entries, err := build()
	if err != nil {
		return nil, err
	}

	rows := make([]Table1Row, 0, len(entries))
	for i, e := range entries {
		obj := fmt.Sprintf("table1-%d", i)
		ref, err := e.sys.Store(obj, e.data, rnd)
		if err != nil {
			return nil, fmt.Errorf("core: table1 %s: %w", e.sys.Name(), err)
		}
		p := e.sys.Classify()
		p.MeasuredCost = systems.StorageCost(c, ref)
		p.CostBand = sec.BandFromOverhead(p.MeasuredCost)
		if e.sys.Name() == "PASIS" {
			// PASIS's band is Low-High by configurability, not by one
			// mode's measurement; record the configured mode's cost but
			// the configurable band, as the paper does.
			p.CostBand = sec.CostLowHigh
			p.RestClass = sec.ITSometimes
		}
		rows = append(rows, Table1Row{Profile: p, RenewalSupported: e.renew})
	}
	return rows, nil
}

// Table1Expected is the paper's published Table 1, used by tests and
// EXPERIMENTS.md to diff measured against printed.
func Table1Expected() map[string]struct {
	Transit, Rest sec.Class
	Cost          sec.CostBand
} {
	return map[string]struct {
		Transit, Rest sec.Class
		Cost          sec.CostBand
	}{
		"ArchiveSafeLT":            {sec.Computational, sec.Computational, sec.CostLow},
		"AONT-RS":                  {sec.Computational, sec.Computational, sec.CostLow},
		"HasDPSS":                  {sec.Computational, sec.IT, sec.CostHigh},
		"LINCOS":                   {sec.IT, sec.IT, sec.CostHigh},
		"PASIS":                    {sec.Computational, sec.ITSometimes, sec.CostLowHigh},
		"POTSHARDS":                {sec.Computational, sec.IT, sec.CostHigh},
		"VSR Archive":              {sec.Computational, sec.IT, sec.CostHigh},
		"AWS, Azure, Google Cloud": {sec.Computational, sec.Computational, sec.CostLow},
	}
}
