package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"securearchive/internal/cluster"
	"securearchive/internal/group"
	"securearchive/internal/obs"
	"securearchive/internal/obs/trace"
)

// tracedVault builds an 8-node vault over an isolated registry with
// tracing enabled and an in-memory exporter capturing every trace.
func tracedVault(t *testing.T, enc Encoding) (*Vault, *cluster.Cluster, *trace.Tracer, *trace.Mem) {
	t.Helper()
	reg := obs.NewRegistry()
	c := cluster.New(8, nil)
	c.UseRegistry(reg)
	tr := trace.New(reg)
	tr.SetEnabled(true)
	mem := &trace.Mem{}
	tr.AddExporter(mem)
	v, err := NewVault(c, enc, WithGroup(group.Test()), WithRegistry(reg), WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	return v, c, tr, mem
}

// lastTrace returns the most recent completed trace rooted at name.
func lastTrace(t *testing.T, mem *trace.Mem, name string) *trace.Trace {
	t.Helper()
	traces := mem.Traces()
	for i := len(traces) - 1; i >= 0; i-- {
		if traces[i].Root == name {
			return traces[i]
		}
	}
	t.Fatalf("no completed trace rooted at %q (have %d traces)", name, len(traces))
	return nil
}

// Acceptance: a degraded Get under a fault plan produces one completed
// trace with vault → cluster.fetch → cluster.probe nesting (≥3 levels),
// a typed node.down event for every offline node it probed, and decode
// and verify stages attributed as children of the root.
func TestDegradedGetTrace(t *testing.T) {
	enc := Erasure{K: 4, N: 8}
	v, c, _, mem := tracedVault(t, enc)
	data := []byte("trace the degraded read end to end")
	if err := v.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	n, min := enc.Shards()
	down := n - min // 4 offline still leaves exactly the decode minimum
	for i := 0; i < down; i++ {
		c.SetOnline(i, false)
	}
	got, err := v.GetContext(context.Background(), "obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("degraded get: %v", err)
	}

	tc := lastTrace(t, mem, "vault.get")
	if tc.Depth() < 3 {
		t.Fatalf("trace depth = %d, want >= 3:\n%s", tc.Depth(), trace.Timeline(tc))
	}
	rs := tc.RootSpan()
	if rs == nil || rs.Err != "" {
		t.Fatalf("root span = %+v", rs)
	}
	if a, ok := rs.Attr("object"); !ok || a.Str != "obj" {
		t.Fatalf("root object attr = %+v", a)
	}

	// Exactly one node.down event per offline node, each attributed.
	if gotEv := tc.EventCount("node.down"); gotEv != down {
		t.Fatalf("node.down events = %d, want %d:\n%s", gotEv, down, trace.Timeline(tc))
	}
	seen := map[int64]bool{}
	for _, s := range tc.Spans {
		if s.Name != "cluster.probe" {
			continue
		}
		for _, e := range s.Events {
			if e.Name != "node.down" {
				continue
			}
			for _, a := range e.Attrs {
				if a.Key == "node" {
					if seen[a.Num] {
						t.Fatalf("node %d reported down twice", a.Num)
					}
					if a.Num < 0 || a.Num >= int64(down) {
						t.Fatalf("node.down on node %d, offline set is [0,%d)", a.Num, down)
					}
					seen[a.Num] = true
				}
			}
		}
	}
	if len(seen) != down {
		t.Fatalf("distinct down nodes = %d, want %d", len(seen), down)
	}

	// The fetch span sits under the root with the probe spans under it,
	// and the decode/verify stages are siblings of the fetch.
	fetch := tc.Children(rs.SpanID)
	names := map[string]bool{}
	for _, s := range fetch {
		names[s.Name] = true
	}
	for _, want := range []string{"cluster.fetch", "vault.decode", "vault.verify"} {
		if !names[want] {
			t.Fatalf("root children %v lack %q:\n%s", names, want, trace.Timeline(tc))
		}
	}
	for _, s := range fetch {
		if s.Name == "cluster.fetch" {
			if probes := tc.Children(s.SpanID); len(probes) < min {
				t.Fatalf("probe spans = %d, want >= %d", len(probes), min)
			}
			if a, ok := s.Attr("fetched"); !ok || a.Num != int64(min) {
				t.Fatalf("fetch fetched attr = %+v", a)
			}
		}
	}
}

// An insufficient read (below the decode threshold) must complete its
// trace too: root span carrying the DegradedError, a read.insufficient
// event, and a stripe.short event on the fetch span.
func TestInsufficientGetTrace(t *testing.T) {
	enc := Erasure{K: 4, N: 8}
	v, c, _, mem := tracedVault(t, enc)
	if err := v.Put("obj", []byte("short stripe")); err != nil {
		t.Fatal(err)
	}
	n, min := enc.Shards()
	for i := 0; i < n-min+1; i++ {
		c.SetOnline(i, false)
	}
	if _, err := v.GetContext(context.Background(), "obj"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("get = %v, want ErrDegraded", err)
	}
	tc := lastTrace(t, mem, "vault.get")
	rs := tc.RootSpan()
	if rs == nil || rs.Err == "" {
		t.Fatalf("root span should carry the degraded error: %+v", rs)
	}
	if tc.EventCount("read.insufficient") != 1 || tc.EventCount("stripe.short") != 1 {
		t.Fatalf("insufficient read lacks its events:\n%s", trace.Timeline(tc))
	}
}

// A read that discards a rotted shard must attribute it: shard.discarded
// on the probe, read.dirty on the root, and the probe span erroring with
// the validation failure.
func TestRotDiscardTrace(t *testing.T) {
	enc := Erasure{K: 4, N: 8}
	v, c, _, mem := tracedVault(t, enc)
	if err := v.Put("obj", []byte("rot is routed around but recorded")); err != nil {
		t.Fatal(err)
	}
	c.SetFaultPlan(&cluster.FaultPlan{Seed: 5, Nodes: map[int]cluster.NodeFaults{
		2: {CorruptProb: 1.0},
	}})
	if _, err := c.Get(2, cluster.ShardKey{Object: "obj", Index: 2}); err != nil {
		t.Fatal(err)
	}
	c.SetFaultPlan(nil)
	if _, err := v.GetContext(context.Background(), "obj"); err != nil {
		t.Fatal(err)
	}
	tc := lastTrace(t, mem, "vault.get")
	if tc.EventCount("shard.discarded") != 1 || tc.EventCount("read.dirty") != 1 {
		t.Fatalf("discard events missing:\n%s", trace.Timeline(tc))
	}
}

// Scrub traces nest the audit fetch and the repair pipeline, and a
// repair is marked with its scrub.repaired event. JSONL round-trips the
// whole journal.
func TestScrubTraceAndJournalRoundTrip(t *testing.T) {
	enc := Erasure{K: 4, N: 8}
	v, c, tr, mem := tracedVault(t, enc)
	if err := v.Put("obj", []byte("scrub repairs and the journal remembers")); err != nil {
		t.Fatal(err)
	}
	// Attach the journal after the Put: it captures only the scrub.
	var journal bytes.Buffer
	jl := trace.NewJSONL(&journal)
	tr.AddExporter(jl)
	if err := c.Delete(3, cluster.ShardKey{Object: "obj", Index: 3}); err != nil {
		t.Fatal(err)
	}
	rep, err := v.ScrubContext(context.Background(), "obj")
	if err != nil || !rep.Repaired {
		t.Fatalf("scrub: rep=%+v err=%v", rep, err)
	}
	tc := lastTrace(t, mem, "vault.scrub")
	if tc.Depth() < 3 {
		t.Fatalf("scrub trace depth = %d, want >= 3:\n%s", tc.Depth(), trace.Timeline(tc))
	}
	if tc.EventCount("scrub.repaired") != 1 || tc.EventCount("stage.committed") != 1 {
		t.Fatalf("scrub events missing:\n%s", trace.Timeline(tc))
	}

	back, err := trace.ReadJSONL(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// The journal was attached after the Put, so it holds only the scrub
	// trace — and it must match what the in-memory exporter saw.
	if len(back) != 1 || back[0].ID != tc.ID || len(back[0].Spans) != len(tc.Spans) {
		t.Fatalf("journal round trip diverged: %d traces", len(back))
	}
}

// Puts trace their staging pipeline: encode and cluster.stage under the
// root, with the commit recorded.
func TestPutTrace(t *testing.T) {
	enc := Erasure{K: 4, N: 8}
	v, _, _, mem := tracedVault(t, enc)
	if err := v.PutContext(context.Background(), "obj", []byte("writes trace too")); err != nil {
		t.Fatal(err)
	}
	tc := lastTrace(t, mem, "vault.put")
	rs := tc.RootSpan()
	names := map[string]bool{}
	for _, s := range tc.Children(rs.SpanID) {
		names[s.Name] = true
	}
	if !names["vault.encode"] || !names["cluster.stage"] {
		t.Fatalf("put children = %v:\n%s", names, trace.Timeline(tc))
	}
	if tc.EventCount("stage.committed") != 1 {
		t.Fatalf("stage.committed events:\n%s", trace.Timeline(tc))
	}
}
