package core

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"

	"securearchive/internal/cluster"
	"securearchive/internal/group"
	"securearchive/internal/sig"
	"securearchive/internal/tstamp"
)

// Vault is the framework's user-facing archive: an Encoding composed with
// cluster dispersal, per-object integrity chains, and renewal. It is what
// the examples and the archivectl CLI drive.
//
// A Vault is safe for concurrent use. Put encodes outside the lock so
// that several objects can be encoded at once (each encode may itself fan
// out across goroutines; see WithParallelism); Gets run concurrently
// under a read lock.
type Vault struct {
	Cluster  *cluster.Cluster
	Encoding Encoding
	// IntegrityMode selects hash chains (cheap) or commitment chains
	// (LINCOS-style, confidentiality-preserving).
	IntegrityMode tstamp.RefMode
	Group         *group.Group
	rnd           io.Reader

	// mu guards objects and the read-modify-write sequences on the
	// per-object state. The CPU-heavy encode/decode work runs outside
	// (Put) or under the read side (Get) of the lock.
	mu      sync.RWMutex
	objects map[string]*vaultObject
}

type vaultObject struct {
	enc   *Encoded
	chain *tstamp.Chain
}

// Errors returned by Vault.
var (
	ErrNotFound = errors.New("core: object not found")
	ErrExists   = errors.New("core: object already exists")
)

// VaultOption configures NewVault.
type VaultOption func(*Vault)

// WithIntegrityMode selects the timestamp-chain reference mode.
func WithIntegrityMode(m tstamp.RefMode) VaultOption {
	return func(v *Vault) { v.IntegrityMode = m }
}

// WithGroup sets the commitment group (Test for fast runs).
func WithGroup(g *group.Group) VaultOption {
	return func(v *Vault) { v.Group = g }
}

// WithRand injects the randomness source (tests).
func WithRand(r io.Reader) VaultOption {
	return func(v *Vault) { v.rnd = r }
}

// WithParallelism bounds the goroutines each encode/decode may use, when
// the vault's encoding supports it (implements Parallelizable). n <= 0
// selects GOMAXPROCS; 1 forces serial encodes. Encodings that do not
// implement Parallelizable are left unchanged.
func WithParallelism(n int) VaultOption {
	return func(v *Vault) {
		if p, ok := v.Encoding.(Parallelizable); ok {
			v.Encoding = p.WithParallelism(n)
		}
	}
}

// NewVault builds a vault over the cluster with the encoding. The cluster
// must have at least as many nodes as the encoding has shards.
func NewVault(c *cluster.Cluster, enc Encoding, opts ...VaultOption) (*Vault, error) {
	n, _ := enc.Shards()
	if n > c.Size() {
		return nil, fmt.Errorf("core: encoding needs %d nodes, cluster has %d", n, c.Size())
	}
	v := &Vault{
		Cluster:       c,
		Encoding:      enc,
		IntegrityMode: tstamp.RefCommitment,
		Group:         group.Default(),
		rnd:           rand.Reader,
		objects:       make(map[string]*vaultObject),
	}
	for _, o := range opts {
		o(v)
	}
	return v, nil
}

// Put archives data under id: encode, disperse one shard per node, and
// open an integrity chain.
func (v *Vault) Put(id string, data []byte) error {
	// Cheap early check; racing Puts of the same id are caught again under
	// the write lock below.
	v.mu.RLock()
	_, exists := v.objects[id]
	v.mu.RUnlock()
	if exists {
		return fmt.Errorf("%w: %s", ErrExists, id)
	}
	// The CPU-heavy work — encoding and chain construction — runs outside
	// the lock so that concurrent Puts of different objects overlap.
	enc, err := v.Encoding.Encode(data, v.rnd)
	if err != nil {
		return err
	}
	chain, err := tstamp.New(data, v.IntegrityMode, sig.Ed25519, v.Cluster.Epoch(), v.Group, v.rnd)
	if err != nil {
		return err
	}

	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.objects[id]; ok {
		return fmt.Errorf("%w: %s", ErrExists, id)
	}
	for i, sh := range enc.Shards {
		if sh == nil {
			continue
		}
		if err := v.Cluster.Put(i, cluster.ShardKey{Object: id, Index: i}, sh); err != nil {
			return err
		}
	}
	// The vault keeps client-side secrets and the chain; shards live on
	// nodes only.
	v.objects[id] = &vaultObject{
		enc: &Encoded{
			Scheme:       enc.Scheme,
			PlainLen:     enc.PlainLen,
			ClientSecret: enc.ClientSecret,
			PublicMeta:   enc.PublicMeta,
		},
		chain: chain,
	}
	return nil
}

// Get retrieves and integrity-checks an object.
func (v *Vault) Get(id string) ([]byte, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.getLocked(id)
}

// getLocked is Get's body; callers hold v.mu (read or write).
func (v *Vault) getLocked(id string) ([]byte, error) {
	obj, ok := v.objects[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	n, _ := v.Encoding.Shards()
	shards := make([][]byte, n)
	for i := 0; i < n; i++ {
		sh, err := v.Cluster.Get(i, cluster.ShardKey{Object: id, Index: i})
		if err != nil {
			continue
		}
		shards[i] = sh.Data
	}
	enc := &Encoded{
		Scheme:       obj.enc.Scheme,
		PlainLen:     obj.enc.PlainLen,
		Shards:       shards,
		ClientSecret: obj.enc.ClientSecret,
		PublicMeta:   obj.enc.PublicMeta,
	}
	data, err := v.Encoding.Decode(enc)
	if err != nil {
		return nil, err
	}
	if err := obj.chain.VerifyData(data); err != nil {
		return nil, fmt.Errorf("core: integrity chain rejects data for %s: %w", id, err)
	}
	return data, nil
}

// RenewIntegrity appends a fresh signature (rotating schemes) to the
// object's timestamp chain.
func (v *Vault) RenewIntegrity(id string, scheme sig.Scheme) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	obj, ok := v.objects[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return obj.chain.Renew(scheme, v.Cluster.Epoch(), v.rnd)
}

// RenewShares re-encodes the object with fresh randomness and rewrites
// every shard — the generic renewal that works for any encoding (at full
// re-encode cost; sharing-specific systems do better, see pss). The whole
// read-reencode-rewrite sequence holds the write lock: a concurrent Get
// must never observe a half-rewritten shard set.
func (v *Vault) RenewShares(id string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	data, err := v.getLocked(id)
	if err != nil {
		return err
	}
	obj := v.objects[id]
	enc, err := v.Encoding.Encode(data, v.rnd)
	if err != nil {
		return err
	}
	for i, sh := range enc.Shards {
		if sh == nil {
			continue
		}
		if err := v.Cluster.Put(i, cluster.ShardKey{Object: id, Index: i}, sh); err != nil {
			return err
		}
	}
	obj.enc.ClientSecret = enc.ClientSecret
	obj.enc.PublicMeta = enc.PublicMeta
	obj.enc.PlainLen = enc.PlainLen
	return nil
}

// ExportEvidence serialises an object's timestamp chain for off-archive
// escrow: integrity evidence is itself archival data and must survive
// this process. In commitment mode the export contains no digest of the
// data — it is safe to publish.
func (v *Vault) ExportEvidence(id string) ([]byte, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	obj, ok := v.objects[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return obj.chain.Marshal()
}

// Chain exposes an object's timestamp chain.
func (v *Vault) Chain(id string) *tstamp.Chain {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if obj, ok := v.objects[id]; ok {
		return obj.chain
	}
	return nil
}

// StorageCost measures the object's at-rest overhead from the cluster.
func (v *Vault) StorageCost(id string) float64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	obj, ok := v.objects[id]
	if !ok || obj.enc.PlainLen == 0 {
		return 0
	}
	return float64(v.Cluster.ObjectBytes(id)) / float64(obj.enc.PlainLen)
}

// Objects lists stored object ids (unordered).
func (v *Vault) Objects() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.objects))
	for id := range v.objects {
		out = append(out, id)
	}
	return out
}
