package core

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"securearchive/internal/cluster"
	"securearchive/internal/group"
	"securearchive/internal/obs"
	"securearchive/internal/obs/trace"
	"securearchive/internal/sig"
	"securearchive/internal/tstamp"
)

// stripeCount is the number of registry lock stripes. Power of two so the
// FNV hash reduces with a mask; 64 stripes keep the collision probability
// low for realistic worker counts while the array stays cache-resident.
const stripeCount = 64

// DefaultChunkSize is the pipelined writer's chunk size: objects larger
// than this are split into fixed-size chunks that flow through
// encode→stage as a bounded pipeline (see pipeline.go). 1 MiB keeps each
// chunk's stripe well above the coding kernels' parallel grain while
// bounding the pipeline's in-flight memory to a few chunks.
const DefaultChunkSize = 1 << 20

// Vault is the framework's user-facing archive: an Encoding composed with
// cluster dispersal, per-object integrity chains, and renewal. It is what
// the examples and the archivectl CLI drive.
//
// A Vault is safe for concurrent use, and operations on distinct objects
// proceed fully in parallel: the object registry is sharded across
// stripeCount lock stripes (fnv(id) % stripeCount), each object carries
// its own RWMutex, and dispersal — encode, stage, commit — runs outside
// every stripe lock. See DESIGN.md "Concurrency model" for the lock
// ordering invariants.
type Vault struct {
	Cluster  *cluster.Cluster
	Encoding Encoding
	// IntegrityMode selects hash chains (cheap) or commitment chains
	// (LINCOS-style, confidentiality-preserving).
	IntegrityMode tstamp.RefMode
	Group         *group.Group
	rnd           io.Reader

	// retry bounds per-node retries on transient cluster faults.
	retry cluster.RetryPolicy

	// chunkSize bounds how much of an object a single encode works on;
	// larger objects take the pipelined chunked write path. <= 0 disables
	// chunking (every object encodes monolithically).
	chunkSize int

	// stripes shard the object registry (and the dirty queue) by
	// fnv(id) % stripeCount. A stripe's mutex guards only its maps —
	// lookup, insert, remove — never the I/O or CPU work of an operation,
	// which runs under the object's own lock (or no lock at all for
	// encode). Lock order: a goroutine may acquire a stripe mutex while
	// holding an object mutex (dirty marking, registry removal), but must
	// never block on a contended object mutex while holding any stripe
	// mutex — Put's reservation locks only a freshly created object that
	// no other goroutine can reach yet.
	stripes [stripeCount]vaultStripe

	// sweepMu serialises cross-object sweeps (ScrubAll today; an
	// epoch-wide renewal campaign would take it too) against each other,
	// so two concurrent sweeps don't double-repair the same stripes.
	// Per-object operations never touch it.
	sweepMu sync.Mutex

	// stageSeq uniquifies stage tokens across concurrent dispersals;
	// batchSeq does the same for batch blob ids (see batch.go).
	stageSeq atomic.Int64
	batchSeq atomic.Int64

	// streamBuffered/streamPeak meter the streaming writer's in-flight
	// plaintext bytes (read from the client but not yet staged on the
	// cluster) and the high-water mark across the vault's lifetime —
	// the evidence that streaming ingest is O(chunk), not O(object).
	// Mirrored into the vault.stream.* gauges; see stream.go.
	streamBuffered atomic.Int64
	streamPeak     atomic.Int64

	// cache is the decoded-object read cache (cache.go); nil — the
	// default — disables caching entirely and leaves the read path
	// exactly as it was. cacheBytes/cacheShare hold the WithReadCache /
	// WithCacheTenantShare settings until NewVault builds the cache,
	// so option order doesn't matter.
	cache      *readCache
	cacheBytes int64
	cacheShare float64

	// prefetchWindow is how many chunk-stripe fetches a chunked read
	// keeps in flight ahead of decode (prefetch.go); <= 0 disables.
	prefetchWindow int

	// obsReg/obsm are the metrics registry and pre-resolved instruments;
	// see degraded.go. tracer roots one hierarchical trace per vault op
	// (Put/Get/Renew/Scrub/Delete) and bridges span durations into
	// obsReg's histograms; disabled (the default), it degrades to exactly
	// the flat Span timing.
	obsReg *obs.Registry
	obsm   *vaultMetrics
	tracer *trace.Tracer
}

// vaultStripe is one shard of the object registry.
type vaultStripe struct {
	mu      sync.RWMutex
	objects map[string]*vaultObject
	// dirty queues objects whose reads discarded rotted shards for
	// ScrubAll; sharded with the registry so marking dirty contends only
	// within the stripe.
	dirty map[string]struct{}
}

// vaultObject is one archived object's client-side state.
type vaultObject struct {
	// mu serialises mutators (the initial Put's dispersal, RenewShares,
	// Scrub, Delete) and guards the fields below. Readers hold the read
	// side across the whole fetch/decode/verify so they never observe a
	// half-rewritten shard set or a chain/digest mismatch.
	mu sync.RWMutex
	// live is false while the initial Put is still dispersing and again
	// after Delete: a goroutine that found the registry entry must treat
	// a non-live object as absent. Atomic so listings can skim it without
	// the object lock.
	live atomic.Bool

	enc   *Encoded
	chain *tstamp.Chain
	// width is the stripe width actually written — how many shard indexes
	// this object's live stripes occupy on the cluster, recorded at Put
	// and updated on renewal/scrub rewrites. Delete must remove exactly
	// these keys: the vault's Encoding is a mutable field, so recomputing
	// the width from the *current* encoding at delete time would strand
	// shards whenever the configuration changed between write and delete.
	width int
	// digests are per-shard SHA-256 digests of the current encoding,
	// kept client-side: degraded reads use them to discard rotted shards
	// and probe further nodes, and Scrub uses them to localise damage.
	digests [][sha256.Size]byte
	// chunks holds per-chunk encoding state for objects written through
	// the pipelined chunked path (len > chunkSize); nil for monolithic
	// objects. See pipeline.go.
	chunks []chunkMeta
	// batch points at the shared stripe state when this object is a
	// member of a batched small-object write; nil otherwise. See batch.go.
	batch *batchState
	// batchIndex is this member's position in batch.members.
	batchIndex int
}

// stripeIndex hashes an object id onto its lock stripe (FNV-1a).
func stripeIndex(id string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return h & (stripeCount - 1)
}

func (v *Vault) stripe(id string) *vaultStripe { return &v.stripes[stripeIndex(id)] }

// lookup fetches the registry entry for id, or nil. The returned object
// may be non-live (a Put still dispersing, or deleted); callers must
// check live under (or after acquiring) the object lock.
func (v *Vault) lookup(id string) *vaultObject {
	st := v.stripe(id)
	st.mu.RLock()
	obj := st.objects[id]
	st.mu.RUnlock()
	return obj
}

// Errors returned by Vault.
var (
	ErrNotFound = errors.New("core: object not found")
	ErrExists   = errors.New("core: object already exists")
)

// VaultOption configures NewVault.
type VaultOption func(*Vault)

// WithIntegrityMode selects the timestamp-chain reference mode.
func WithIntegrityMode(m tstamp.RefMode) VaultOption {
	return func(v *Vault) { v.IntegrityMode = m }
}

// WithGroup sets the commitment group (Test for fast runs).
func WithGroup(g *group.Group) VaultOption {
	return func(v *Vault) { v.Group = g }
}

// WithRand injects the randomness source (tests).
func WithRand(r io.Reader) VaultOption {
	return func(v *Vault) { v.rnd = r }
}

// WithReadCache enables the decoded-object read cache with a byte
// budget: repeated Gets of hot objects are served from memory instead
// of re-fetching and re-decoding a stripe. See cache.go for the
// coherence rules and the admission policy. n <= 0 leaves the cache
// disabled (the default).
func WithReadCache(n int64) VaultOption {
	return func(v *Vault) { v.cacheBytes = n }
}

// WithCacheTenantShare caps the fraction of the read cache any one
// owner — the id prefix before the first '/', the API layer's tenant —
// may occupy (DefaultCacheTenantShare, i.e. no split, otherwise). An
// owner over its share evicts its own coldest entries, never another
// tenant's hot set.
func WithCacheTenantShare(frac float64) VaultOption {
	return func(v *Vault) { v.cacheShare = frac }
}

// WithRetryPolicy bounds the vault's per-node retries on transient
// cluster faults (cluster.DefaultRetry otherwise).
func WithRetryPolicy(p cluster.RetryPolicy) VaultOption {
	return func(v *Vault) { v.retry = p }
}

// WithChunkSize sets the pipelined writer's chunk size
// (DefaultChunkSize otherwise): objects larger than n bytes are split
// into n-byte chunks whose encode and staging overlap as a bounded
// pipeline, instead of encode-all-then-disperse-all. n <= 0 disables
// chunking. Tests use small n to exercise multi-chunk objects cheaply.
func WithChunkSize(n int) VaultOption {
	return func(v *Vault) { v.chunkSize = n }
}

// WithParallelism bounds the goroutines each encode/decode may use, when
// the vault's encoding supports it (implements Parallelizable). n <= 0
// selects GOMAXPROCS; 1 forces serial encodes. Encodings that do not
// implement Parallelizable are left unchanged.
func WithParallelism(n int) VaultOption {
	return func(v *Vault) {
		if p, ok := v.Encoding.(Parallelizable); ok {
			v.Encoding = p.WithParallelism(n)
		}
	}
}

// NewVault builds a vault over the cluster with the encoding. The cluster
// must have at least as many nodes as the encoding has shards.
func NewVault(c *cluster.Cluster, enc Encoding, opts ...VaultOption) (*Vault, error) {
	n, _ := enc.Shards()
	if n > c.Size() {
		return nil, fmt.Errorf("core: encoding needs %d nodes, cluster has %d", n, c.Size())
	}
	v := &Vault{
		Cluster:        c,
		Encoding:       enc,
		IntegrityMode:  tstamp.RefCommitment,
		Group:          group.Default(),
		rnd:            rand.Reader,
		retry:          cluster.DefaultRetry,
		chunkSize:      DefaultChunkSize,
		cacheShare:     DefaultCacheTenantShare,
		prefetchWindow: DefaultPrefetchWindow,
		obsReg:         obs.Default(),
	}
	for i := range v.stripes {
		v.stripes[i].objects = make(map[string]*vaultObject)
		v.stripes[i].dirty = make(map[string]struct{})
	}
	for _, o := range opts {
		o(v)
	}
	v.obsm = newVaultMetrics(v.obsReg, v.Encoding.Name())
	if v.cacheBytes > 0 {
		v.cache = newReadCache(v.cacheBytes, v.cacheShare)
		v.cache.evictC = v.obsm.cacheEvict
		v.cache.rejectC = v.obsm.cacheReject
		v.cache.bytesG = v.obsm.cacheBytes
	}
	if v.tracer == nil {
		if v.obsReg == obs.Default() {
			v.tracer = trace.Default()
		} else {
			// An isolated registry gets an isolated tracer so its bridge
			// histograms land in the same place as the rest of its metrics.
			v.tracer = trace.New(v.obsReg)
		}
	}
	return v, nil
}

// lockWait acquires lock() and records the time spent blocked on it in
// the vault.lock.wait_ns histogram — the contention attribution for the
// striped design: near-zero when traffic spreads across objects, visible
// when workers pile onto one id.
func (v *Vault) lockWait(sp trace.Span, lock func()) {
	start := time.Now()
	lock()
	w := time.Since(start)
	v.obsm.lockWaitNs.Observe(float64(w.Nanoseconds()))
	if w >= time.Millisecond {
		sp.SetAttrs(trace.Int64("lock_wait_ns", w.Nanoseconds()))
	}
}

// Put archives data under id: encode, disperse one shard per node, and
// open an integrity chain.
func (v *Vault) Put(id string, data []byte) error {
	return v.PutContext(context.Background(), id, data)
}

// PutContext is Put rooted in (or joined to) a trace: the whole write
// becomes a "vault.put" span with encode, staging, and retry backoff
// attributed below it. With tracing disabled it records exactly the flat
// vault.put.ok/.err histograms Put always has.
func (v *Vault) PutContext(ctx context.Context, id string, data []byte) error {
	ctx, sp := v.tracer.Start(ctx, "vault.put",
		trace.Str("object", id), trace.Str("encoding", v.Encoding.Name()), trace.Int("bytes", len(data)))
	start := time.Now()
	err := v.put(ctx, id, data)
	v.obsm.putNsByEnc.Observe(float64(time.Since(start).Nanoseconds()))
	sp.End(err)
	return err
}

func (v *Vault) put(ctx context.Context, id string, data []byte) error {
	st := v.stripe(id)
	// Cheap early check; racing Puts of the same id are caught again at
	// reservation time below.
	st.mu.RLock()
	_, exists := st.objects[id]
	st.mu.RUnlock()
	if exists {
		return fmt.Errorf("%w: %s", ErrExists, id)
	}
	if v.chunkSize > 0 && len(data) > v.chunkSize {
		return v.putChunked(ctx, id, data)
	}
	// The CPU-heavy work — encoding and chain construction — runs outside
	// every lock so that concurrent Puts overlap even within a stripe.
	_, esp := trace.Child(ctx, "vault.encode", trace.Int("bytes", len(data)))
	encStart := time.Now()
	enc, err := v.Encoding.Encode(data, v.rnd)
	esp.End(err)
	if err != nil {
		return err
	}
	observeRate(v.obsm.encodeMBs, len(data), time.Since(encStart))
	v.obsm.putBytes.Observe(float64(len(data)))
	chain, err := tstamp.New(data, v.IntegrityMode, sig.Ed25519, v.Cluster.Epoch(), v.Group, v.rnd)
	if err != nil {
		return err
	}

	// Reserve the id: insert a non-live entry with its writer lock held,
	// so duplicate Puts fail fast while concurrent Gets that find the
	// entry block until the dispersal commits (then read it) or aborts
	// (then see ErrNotFound). The stripe mutex covers only the map
	// insert; locking the fresh object cannot block.
	obj := &vaultObject{}
	obj.mu.Lock()
	st.mu.Lock()
	if _, ok := st.objects[id]; ok {
		st.mu.Unlock()
		obj.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrExists, id)
	}
	st.objects[id] = obj
	st.mu.Unlock()

	// Stage-then-commit outside the stripe lock: a multi-shard write that
	// fails partway aborts its stage and leaves no committed shards
	// behind — no orphans inflating StoredBytes, no registered entry.
	if err := v.disperse(ctx, id, enc); err != nil {
		st.mu.Lock()
		delete(st.objects, id)
		st.mu.Unlock()
		obj.mu.Unlock()
		return err
	}
	// The vault keeps client-side secrets and the chain; shards live on
	// nodes only.
	obj.enc = &Encoded{
		Scheme:       enc.Scheme,
		PlainLen:     enc.PlainLen,
		ClientSecret: enc.ClientSecret,
		PublicMeta:   enc.PublicMeta,
	}
	obj.chain = chain
	obj.digests = ShardDigests(enc.Shards)
	obj.width = len(enc.Shards)
	obj.live.Store(true)
	// Defensive invalidation while the write lock is still held: a fresh
	// id cannot have an entry unless it was deleted and re-put, in which
	// case Delete already dropped it — but the hook costs one map probe
	// and keeps "every mutator invalidates" unconditional.
	v.cacheInvalidate(id)
	obj.mu.Unlock()
	return nil
}

// cacheInvalidate drops id's read-cache entry (no-op without a cache).
// Every mutator calls it while holding the object's write lock; see the
// coherence rules in cache.go.
func (v *Vault) cacheInvalidate(id string) {
	if v.cache != nil {
		v.cache.invalidate(id)
	}
}

// disperse writes one encoding's shards to the cluster atomically: every
// shard is staged under a fresh stage token (retrying transient faults
// per the vault's policy), then the whole set commits as a single key
// swap. Any staging error aborts the stage, so the cluster never holds a
// mix of old and new shards for the object. Callers hold the object's
// write lock (never a stripe lock): concurrent dispersals of distinct
// objects overlap fully, and the atomic stageSeq keeps their tokens
// distinct.
func (v *Vault) disperse(ctx context.Context, id string, enc *Encoded) error {
	stage := v.newStageToken(id)
	ctx, ssp := trace.Child(ctx, "cluster.stage", trace.Str("object", id))
	if err := v.stageShards(ctx, stage, id, 0, enc.Shards); err != nil {
		v.Cluster.AbortStage(stage)
		ssp.Event("stage.aborted")
		ssp.End(err)
		return err
	}
	n, err := v.Cluster.CommitStage(stage)
	if err != nil {
		// The commit did not land (I/O failure, crash). Best-effort abort
		// releases whatever the backend still holds parked; on a crashed
		// disk store recovery discards the orphaned stage at the next Open.
		v.Cluster.AbortStage(stage)
		ssp.Event("stage.aborted")
		ssp.End(err)
		return fmt.Errorf("core: commit %s: %w", id, err)
	}
	ssp.Event("stage.committed", trace.Int("shards", n))
	ssp.End(nil)
	return nil
}

// cleanupStrayShards removes shards a rewrite left behind when it
// narrowed the stripe (the encoding was reconfigured between writes) or
// shortened the chunk list. Old keys beyond the new shape are deleted;
// absent keys are no-ops, so over-approximating is safe.
func (v *Vault) cleanupStrayShards(id string, oldWidth, oldChunks, newWidth, newChunks int) {
	for ci := 0; ci < oldChunks; ci++ {
		lo := 0
		if ci < newChunks {
			lo = newWidth
		}
		for i := lo; i < oldWidth; i++ {
			v.Cluster.Delete(i, cluster.ShardKey{Object: id, Index: i, Chunk: ci})
		}
	}
}

// newStageToken mints a stage token unique across concurrent dispersals.
func (v *Vault) newStageToken(id string) string {
	return fmt.Sprintf("vault:%s#%d", id, v.stageSeq.Add(1))
}

// stageShards stages one chunk's shards under an open stage token,
// retrying transient faults per the vault's policy. The caller owns the
// token's lifecycle: commit after every chunk is staged, abort on any
// error — that single commit is what keeps multi-chunk and multi-member
// writes atomic.
func (v *Vault) stageShards(ctx context.Context, stage, id string, chunk int, shards [][]byte) error {
	for i, sh := range shards {
		if sh == nil {
			continue
		}
		i, sh := i, sh
		err := cluster.RetryTransientCtx(ctx, v.retry, func() error {
			return v.Cluster.PutStagedCtx(ctx, i, stage, cluster.ShardKey{Object: id, Index: i, Chunk: chunk}, sh)
		})
		if err != nil {
			return fmt.Errorf("core: disperse %s chunk %d shard %d: %w", id, chunk, i, err)
		}
	}
	return nil
}

// Get retrieves and integrity-checks an object.
func (v *Vault) Get(id string) ([]byte, error) {
	return v.GetContext(context.Background(), id)
}

// GetContext is Get rooted in (or joined to) a trace: the read becomes a
// "vault.get" span over the stripe fetch (per-node probes with typed
// failure events), decode, and verify stages — the breakdown a degraded
// read needs to explain where its latency went. With tracing disabled it
// records exactly the flat vault.get.ok/.err histograms Get always has.
func (v *Vault) GetContext(ctx context.Context, id string) ([]byte, error) {
	ctx, sp := v.tracer.Start(ctx, "vault.get",
		trace.Str("object", id), trace.Str("encoding", v.Encoding.Name()))
	start := time.Now()
	data, err := v.get(ctx, id)
	v.obsm.getNsByEnc.Observe(float64(time.Since(start).Nanoseconds()))
	if err == nil {
		sp.SetAttrs(trace.Int("bytes", len(data)))
	}
	sp.End(err)
	return data, err
}

func (v *Vault) get(ctx context.Context, id string) ([]byte, error) {
	obj := v.lookup(id)
	if obj == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	v.lockWait(trace.FromContext(ctx), obj.mu.RLock)
	defer obj.mu.RUnlock()
	if !obj.live.Load() {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	// The epoch is captured before the cache probe AND before the stripe
	// fetch: an entry inserted below is reachable only while the cluster
	// is still in the epoch the read began in, so an AdvanceEpoch racing
	// this read can only make the insert unreachable — never stale.
	epoch := v.Cluster.Epoch()
	if v.cache != nil {
		if cached, ok := v.cacheGet(ctx, id, epoch); ok {
			// Callers own Get's result; hand out a copy so writes to it
			// cannot corrupt the immutable cached entry.
			return append([]byte(nil), cached...), nil
		}
	}
	data, err := v.readObject(ctx, id, obj)
	if err == nil && v.cache != nil {
		// Insert under the still-held read lock: any later mutation of
		// this object must take the write lock first, and its
		// invalidate(id) then runs strictly after this insert.
		v.cache.put(id, epoch, data)
	}
	return data, err
}

// cacheGet probes the read cache, recording hit/miss metrics and the
// hit-latency histogram. The returned slice is the cache's immutable
// copy.
func (v *Vault) cacheGet(ctx context.Context, id string, epoch int) ([]byte, bool) {
	start := time.Now()
	cached, ok := v.cache.get(id, epoch)
	if !ok {
		v.obsm.cacheMiss.Inc()
		return nil, false
	}
	v.obsm.cacheHit.Inc()
	v.obsm.cacheHitNs.Observe(float64(time.Since(start).Nanoseconds()))
	v.obsm.getBytes.Observe(float64(len(cached)))
	trace.FromContext(ctx).Event("cache.hit", trace.Int("bytes", len(cached)))
	return cached, true
}

// readObject is the degraded k-of-n read body; callers hold obj.mu (read
// or write) and have checked liveness. The stripe fetch fans out the
// decoder's minimum plus speculative probes, retries transient faults
// with bounded backoff, discards shards whose digest no longer matches
// (bit rot, tampering) and pulls from further nodes instead, stopping as
// soon as the minimum is in hand.
//
// A read that had to discard rotted shards still succeeds, but queues
// the object for ScrubAll (see DirtyObjects) — routing around bit rot
// must trigger a repair, not hide the damage. A read that cannot reach
// the encoding's minimum returns *DegradedError (errors.Is ErrDegraded)
// carrying got/want and the per-node causes, never a raw decode error.
func (v *Vault) readObject(ctx context.Context, id string, obj *vaultObject) ([]byte, error) {
	if obj.batch != nil {
		return v.readBatchMember(ctx, id, obj)
	}
	if len(obj.chunks) > 0 {
		return v.readChunked(ctx, id, obj)
	}
	sp := trace.FromContext(ctx)
	n, min := v.Encoding.Shards()
	res := v.Cluster.FetchStripeCtx(ctx, id, n, min, v.retry, func(i int, data []byte) bool {
		return i < len(obj.digests) && sha256.Sum256(data) == obj.digests[i]
	})
	if len(res.Discarded) > 0 {
		v.obsm.readDiscarded.Add(int64(len(res.Discarded)))
		v.markDirty(id)
		sp.Event("read.dirty", trace.Int("discarded", len(res.Discarded)))
	}
	if res.Canceled != nil {
		// The caller went away mid-read: this is cancellation, not a
		// degraded stripe — surface the context error so errors.Is
		// (err, context.Canceled) holds for the abandoning client.
		return nil, fmt.Errorf("core: get %s: %w", id, res.Canceled)
	}
	if res.Fetched < min {
		v.obsm.readInsufficient.Inc()
		sp.Event("read.insufficient", trace.Int("got", res.Fetched), trace.Int("want", min))
		return nil, &DegradedError{Object: id, Got: res.Fetched, Want: min, Failures: res.Failures}
	}
	if res.Degraded() {
		v.obsm.readDegraded.Inc()
	}
	enc := &Encoded{
		Scheme:       obj.enc.Scheme,
		PlainLen:     obj.enc.PlainLen,
		Shards:       res.Shards,
		ClientSecret: obj.enc.ClientSecret,
		PublicMeta:   obj.enc.PublicMeta,
	}
	_, dsp := trace.Child(ctx, "vault.decode", trace.Int("shards", res.Fetched))
	decStart := time.Now()
	data, err := v.Encoding.Decode(enc)
	dsp.End(err)
	if err != nil {
		return nil, err
	}
	observeRate(v.obsm.decodeMBs, len(data), time.Since(decStart))
	v.obsm.getBytes.Observe(float64(len(data)))
	_, vsp := trace.Child(ctx, "vault.verify")
	err = obj.chain.VerifyData(data)
	vsp.End(err)
	if err != nil {
		return nil, fmt.Errorf("core: integrity chain rejects data for %s: %w", id, err)
	}
	return data, nil
}

// markDirty queues an object for the next ScrubAll after a read had to
// discard rotted shards. Safe while holding the object's lock: stripe
// mutexes are leaf locks (see the lock-order note on Vault.stripes).
func (v *Vault) markDirty(id string) {
	st := v.stripe(id)
	st.mu.Lock()
	st.dirty[id] = struct{}{}
	st.mu.Unlock()
}

// clearDirty removes an object from the scrub queue once its stripe is
// known healthy again.
func (v *Vault) clearDirty(id string) {
	st := v.stripe(id)
	st.mu.Lock()
	delete(st.dirty, id)
	st.mu.Unlock()
}

// DirtyObjects lists objects queued for scrubbing because a read
// discarded at least one of their shards since the last scrub.
func (v *Vault) DirtyObjects() []string {
	var out []string
	for i := range v.stripes {
		st := &v.stripes[i]
		st.mu.RLock()
		for id := range st.dirty {
			out = append(out, id)
		}
		st.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// RenewIntegrity appends a fresh signature (rotating schemes) to the
// object's timestamp chain.
func (v *Vault) RenewIntegrity(id string, scheme sig.Scheme) error {
	obj := v.lookup(id)
	if obj == nil {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	obj.mu.Lock()
	defer obj.mu.Unlock()
	if !obj.live.Load() {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if obj.batch != nil {
		// Batch members share one chain; serialise against batchmates.
		obj.batch.mu.Lock()
		defer obj.batch.mu.Unlock()
	}
	return obj.chain.Renew(scheme, v.Cluster.Epoch(), v.rnd)
}

// RenewShares re-encodes the object with fresh randomness and rewrites
// every shard — the generic renewal that works for any encoding (at full
// re-encode cost; sharing-specific systems do better, see pss). The whole
// read-reencode-rewrite sequence holds the object's write lock: a
// concurrent Get of the same object must never observe a half-rewritten
// shard set, while operations on other objects proceed untouched. The
// rewrite itself is stage-then-commit: a node failing mid-renewal aborts
// the stage and the cluster keeps the old encoding intact, so the object
// never ends up with mixed-epoch shards under a stale ClientSecret.
func (v *Vault) RenewShares(id string) error {
	return v.RenewSharesContext(context.Background(), id)
}

// RenewSharesContext is RenewShares rooted in (or joined to) a trace:
// the read-back, re-encode, and staged rewrite all nest under one
// "vault.renew" span.
func (v *Vault) RenewSharesContext(ctx context.Context, id string) error {
	ctx, sp := v.tracer.Start(ctx, "vault.renew",
		trace.Str("object", id), trace.Str("encoding", v.Encoding.Name()))
	err := v.renewShares(ctx, id)
	sp.End(err)
	return err
}

func (v *Vault) renewShares(ctx context.Context, id string) error {
	obj := v.lookup(id)
	if obj == nil {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	v.lockWait(trace.FromContext(ctx), obj.mu.Lock)
	defer obj.mu.Unlock()
	if !obj.live.Load() {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	// The rewrite changes the shard set (and, across an epoch boundary,
	// the epoch a fresh read would record); drop the cached plaintext
	// before dispersal so no entry from the pre-renewal stripe survives
	// the write lock.
	v.cacheInvalidate(id)
	if obj.batch != nil {
		return v.renewBatchMember(ctx, id, obj)
	}
	data, err := v.readObject(ctx, id, obj)
	if err != nil {
		return err
	}
	if len(obj.chunks) > 0 {
		// Chunked objects renew through the same pipelined encode→stage
		// path Put used; the single commit keeps the rewrite atomic.
		metas, err := v.disperseChunked(ctx, id, data)
		if err != nil {
			return fmt.Errorf("core: renewal of %s rolled back: %w", id, err)
		}
		oldWidth, oldChunks := obj.width, len(obj.chunks)
		obj.chunks = metas
		obj.width = len(metas[0].digests)
		v.cleanupStrayShards(id, oldWidth, oldChunks, obj.width, len(metas))
		return nil
	}
	_, esp := trace.Child(ctx, "vault.encode", trace.Int("bytes", len(data)))
	enc, err := v.Encoding.Encode(data, v.rnd)
	esp.End(err)
	if err != nil {
		return err
	}
	if err := v.disperse(ctx, id, enc); err != nil {
		return fmt.Errorf("core: renewal of %s rolled back: %w", id, err)
	}
	obj.enc.ClientSecret = enc.ClientSecret
	obj.enc.PublicMeta = enc.PublicMeta
	obj.enc.PlainLen = enc.PlainLen
	obj.digests = ShardDigests(enc.Shards)
	oldWidth := obj.width
	obj.width = len(enc.Shards)
	v.cleanupStrayShards(id, oldWidth, 1, obj.width, 1)
	return nil
}

// Delete removes an object: liveness drops first (so concurrent Gets
// and Scrubs see ErrNotFound), then every node drops its shard, and the
// registry entry goes last — while shards are still being removed the
// id stays reserved, so a racing re-Put of the same id cannot commit a
// fresh stripe that this delete would then eat. Shard removal is a
// metadata operation that always succeeds, mirroring how CommitStage
// treats already-moved bytes.
func (v *Vault) Delete(id string) error {
	return v.DeleteContext(context.Background(), id)
}

// DeleteContext is Delete rooted in (or joined to) a trace as one
// "vault.delete" span.
func (v *Vault) DeleteContext(ctx context.Context, id string) error {
	ctx, sp := v.tracer.Start(ctx, "vault.delete",
		trace.Str("object", id), trace.Str("encoding", v.Encoding.Name()))
	err := v.deleteObject(ctx, id)
	sp.End(err)
	return err
}

func (v *Vault) deleteObject(ctx context.Context, id string) error {
	obj := v.lookup(id)
	if obj == nil {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	v.lockWait(trace.FromContext(ctx), obj.mu.Lock)
	defer obj.mu.Unlock()
	if !obj.live.Load() {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	obj.live.Store(false)
	v.cacheInvalidate(id)
	if obj.batch != nil {
		v.releaseBatchMember(id, obj)
	} else {
		// Delete the stripe actually written (obj.width), not whatever the
		// vault's current encoding would produce — the two diverge when
		// Encoding is reconfigured after the Put, and the wider stale value
		// would be strand-free only by luck.
		n := obj.width
		if n == 0 {
			n, _ = v.Encoding.Shards() // pre-width entry (defensive)
		}
		chunks := len(obj.chunks)
		if chunks == 0 {
			chunks = 1
		}
		for c := 0; c < chunks; c++ {
			for i := 0; i < n; i++ {
				v.Cluster.Delete(i, cluster.ShardKey{Object: id, Index: i, Chunk: c})
			}
		}
	}
	st := v.stripe(id)
	st.mu.Lock()
	delete(st.objects, id)
	delete(st.dirty, id)
	st.mu.Unlock()
	return nil
}

// ExportEvidence serialises an object's timestamp chain for off-archive
// escrow: integrity evidence is itself archival data and must survive
// this process. In commitment mode the export contains no digest of the
// data — it is safe to publish.
func (v *Vault) ExportEvidence(id string) ([]byte, error) {
	obj := v.lookup(id)
	if obj == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	obj.mu.RLock()
	defer obj.mu.RUnlock()
	if !obj.live.Load() {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if obj.batch != nil {
		obj.batch.mu.RLock()
		defer obj.batch.mu.RUnlock()
	}
	return obj.chain.Marshal()
}

// Chain exposes an object's timestamp chain.
func (v *Vault) Chain(id string) *tstamp.Chain {
	obj := v.lookup(id)
	if obj == nil {
		return nil
	}
	obj.mu.RLock()
	defer obj.mu.RUnlock()
	if !obj.live.Load() {
		return nil
	}
	return obj.chain
}

// StorageCost measures the object's at-rest overhead from the cluster.
func (v *Vault) StorageCost(id string) float64 {
	obj := v.lookup(id)
	if obj == nil {
		return 0
	}
	obj.mu.RLock()
	defer obj.mu.RUnlock()
	if !obj.live.Load() || obj.enc.PlainLen == 0 {
		return 0
	}
	if obj.batch != nil {
		// Members share one stripe; report the blob's overhead ratio, the
		// same for every batchmate.
		bs := obj.batch
		bs.mu.RLock()
		defer bs.mu.RUnlock()
		if bs.blobLen == 0 {
			return 0
		}
		return float64(v.Cluster.ObjectBytes(bs.id)) / float64(bs.blobLen)
	}
	return float64(v.Cluster.ObjectBytes(id)) / float64(obj.enc.PlainLen)
}

// Objects lists stored object ids (unordered). Entries still dispersing
// their initial Put (or mid-Delete) are skipped.
func (v *Vault) Objects() []string {
	var out []string
	for i := range v.stripes {
		st := &v.stripes[i]
		st.mu.RLock()
		for id, obj := range st.objects {
			if obj.live.Load() {
				out = append(out, id)
			}
		}
		st.mu.RUnlock()
	}
	return out
}
