package core

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"securearchive/internal/cluster"
	"securearchive/internal/group"
	"securearchive/internal/obs"
	"securearchive/internal/obs/trace"
	"securearchive/internal/sig"
	"securearchive/internal/tstamp"
)

// Vault is the framework's user-facing archive: an Encoding composed with
// cluster dispersal, per-object integrity chains, and renewal. It is what
// the examples and the archivectl CLI drive.
//
// A Vault is safe for concurrent use. Put encodes outside the lock so
// that several objects can be encoded at once (each encode may itself fan
// out across goroutines; see WithParallelism); Gets run concurrently
// under a read lock.
type Vault struct {
	Cluster  *cluster.Cluster
	Encoding Encoding
	// IntegrityMode selects hash chains (cheap) or commitment chains
	// (LINCOS-style, confidentiality-preserving).
	IntegrityMode tstamp.RefMode
	Group         *group.Group
	rnd           io.Reader

	// retry bounds per-node retries on transient cluster faults.
	retry cluster.RetryPolicy

	// mu guards objects and the read-modify-write sequences on the
	// per-object state. The CPU-heavy encode/decode work runs outside
	// (Put) or under the read side (Get) of the lock.
	mu      sync.RWMutex
	objects map[string]*vaultObject
	// stageSeq uniquifies stage tokens; guarded by mu (writers hold the
	// write lock when dispersing).
	stageSeq int

	// obsReg/obsm are the metrics registry and pre-resolved instruments;
	// see degraded.go. tracer roots one hierarchical trace per vault op
	// (Put/Get/Renew/Scrub) and bridges span durations into obsReg's
	// histograms; disabled (the default), it degrades to exactly the flat
	// Span timing. dirty (own lock: Gets only hold mu's read side) queues
	// objects whose reads discarded rotted shards for ScrubAll.
	obsReg  *obs.Registry
	obsm    *vaultMetrics
	tracer  *trace.Tracer
	dirtyMu sync.Mutex
	dirty   map[string]struct{}
}

type vaultObject struct {
	enc   *Encoded
	chain *tstamp.Chain
	// digests are per-shard SHA-256 digests of the current encoding,
	// kept client-side: degraded reads use them to discard rotted shards
	// and probe further nodes, and Scrub uses them to localise damage.
	digests [][sha256.Size]byte
}

// Errors returned by Vault.
var (
	ErrNotFound = errors.New("core: object not found")
	ErrExists   = errors.New("core: object already exists")
)

// VaultOption configures NewVault.
type VaultOption func(*Vault)

// WithIntegrityMode selects the timestamp-chain reference mode.
func WithIntegrityMode(m tstamp.RefMode) VaultOption {
	return func(v *Vault) { v.IntegrityMode = m }
}

// WithGroup sets the commitment group (Test for fast runs).
func WithGroup(g *group.Group) VaultOption {
	return func(v *Vault) { v.Group = g }
}

// WithRand injects the randomness source (tests).
func WithRand(r io.Reader) VaultOption {
	return func(v *Vault) { v.rnd = r }
}

// WithRetryPolicy bounds the vault's per-node retries on transient
// cluster faults (cluster.DefaultRetry otherwise).
func WithRetryPolicy(p cluster.RetryPolicy) VaultOption {
	return func(v *Vault) { v.retry = p }
}

// WithParallelism bounds the goroutines each encode/decode may use, when
// the vault's encoding supports it (implements Parallelizable). n <= 0
// selects GOMAXPROCS; 1 forces serial encodes. Encodings that do not
// implement Parallelizable are left unchanged.
func WithParallelism(n int) VaultOption {
	return func(v *Vault) {
		if p, ok := v.Encoding.(Parallelizable); ok {
			v.Encoding = p.WithParallelism(n)
		}
	}
}

// NewVault builds a vault over the cluster with the encoding. The cluster
// must have at least as many nodes as the encoding has shards.
func NewVault(c *cluster.Cluster, enc Encoding, opts ...VaultOption) (*Vault, error) {
	n, _ := enc.Shards()
	if n > c.Size() {
		return nil, fmt.Errorf("core: encoding needs %d nodes, cluster has %d", n, c.Size())
	}
	v := &Vault{
		Cluster:       c,
		Encoding:      enc,
		IntegrityMode: tstamp.RefCommitment,
		Group:         group.Default(),
		rnd:           rand.Reader,
		retry:         cluster.DefaultRetry,
		objects:       make(map[string]*vaultObject),
		obsReg:        obs.Default(),
		dirty:         make(map[string]struct{}),
	}
	for _, o := range opts {
		o(v)
	}
	v.obsm = newVaultMetrics(v.obsReg, v.Encoding.Name())
	if v.tracer == nil {
		if v.obsReg == obs.Default() {
			v.tracer = trace.Default()
		} else {
			// An isolated registry gets an isolated tracer so its bridge
			// histograms land in the same place as the rest of its metrics.
			v.tracer = trace.New(v.obsReg)
		}
	}
	return v, nil
}

// Put archives data under id: encode, disperse one shard per node, and
// open an integrity chain.
func (v *Vault) Put(id string, data []byte) error {
	return v.PutContext(context.Background(), id, data)
}

// PutContext is Put rooted in (or joined to) a trace: the whole write
// becomes a "vault.put" span with encode, staging, and retry backoff
// attributed below it. With tracing disabled it records exactly the flat
// vault.put.ok/.err histograms Put always has.
func (v *Vault) PutContext(ctx context.Context, id string, data []byte) error {
	ctx, sp := v.tracer.Start(ctx, "vault.put",
		trace.Str("object", id), trace.Str("encoding", v.Encoding.Name()), trace.Int("bytes", len(data)))
	err := v.put(ctx, id, data)
	sp.End(err)
	return err
}

func (v *Vault) put(ctx context.Context, id string, data []byte) error {
	// Cheap early check; racing Puts of the same id are caught again under
	// the write lock below.
	v.mu.RLock()
	_, exists := v.objects[id]
	v.mu.RUnlock()
	if exists {
		return fmt.Errorf("%w: %s", ErrExists, id)
	}
	// The CPU-heavy work — encoding and chain construction — runs outside
	// the lock so that concurrent Puts of different objects overlap.
	_, esp := trace.Child(ctx, "vault.encode", trace.Int("bytes", len(data)))
	encStart := time.Now()
	enc, err := v.Encoding.Encode(data, v.rnd)
	esp.End(err)
	if err != nil {
		return err
	}
	observeRate(v.obsm.encodeMBs, len(data), time.Since(encStart))
	v.obsm.putBytes.Observe(float64(len(data)))
	chain, err := tstamp.New(data, v.IntegrityMode, sig.Ed25519, v.Cluster.Epoch(), v.Group, v.rnd)
	if err != nil {
		return err
	}

	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.objects[id]; ok {
		return fmt.Errorf("%w: %s", ErrExists, id)
	}
	// Stage-then-commit: a multi-shard write that fails partway aborts
	// its stage and leaves no committed shards behind — no orphans
	// inflating StoredBytes, no unregistered objects.
	if err := v.disperseLocked(ctx, id, enc); err != nil {
		return err
	}
	// The vault keeps client-side secrets and the chain; shards live on
	// nodes only.
	v.objects[id] = &vaultObject{
		enc: &Encoded{
			Scheme:       enc.Scheme,
			PlainLen:     enc.PlainLen,
			ClientSecret: enc.ClientSecret,
			PublicMeta:   enc.PublicMeta,
		},
		chain:   chain,
		digests: ShardDigests(enc.Shards),
	}
	return nil
}

// disperseLocked writes one encoding's shards to the cluster atomically:
// every shard is staged under a fresh stage token (retrying transient
// faults per the vault's policy), then the whole set commits as a single
// key swap. Any staging error aborts the stage, so the cluster never
// holds a mix of old and new shards for the object. Callers hold the
// write lock.
func (v *Vault) disperseLocked(ctx context.Context, id string, enc *Encoded) error {
	v.stageSeq++
	stage := fmt.Sprintf("vault:%s#%d", id, v.stageSeq)
	ctx, ssp := trace.Child(ctx, "cluster.stage", trace.Str("object", id))
	for i, sh := range enc.Shards {
		if sh == nil {
			continue
		}
		i, sh := i, sh
		err := cluster.RetryTransientCtx(ctx, v.retry, func() error {
			return v.Cluster.PutStaged(i, stage, cluster.ShardKey{Object: id, Index: i}, sh)
		})
		if err != nil {
			v.Cluster.AbortStage(stage)
			ssp.Event("stage.aborted", trace.Int("shard", i))
			ssp.End(err)
			return fmt.Errorf("core: disperse %s shard %d: %w", id, i, err)
		}
	}
	n := v.Cluster.CommitStage(stage)
	ssp.Event("stage.committed", trace.Int("shards", n))
	ssp.End(nil)
	return nil
}

// Get retrieves and integrity-checks an object.
func (v *Vault) Get(id string) ([]byte, error) {
	return v.GetContext(context.Background(), id)
}

// GetContext is Get rooted in (or joined to) a trace: the read becomes a
// "vault.get" span over the stripe fetch (per-node probes with typed
// failure events), decode, and verify stages — the breakdown a degraded
// read needs to explain where its latency went. With tracing disabled it
// records exactly the flat vault.get.ok/.err histograms Get always has.
func (v *Vault) GetContext(ctx context.Context, id string) ([]byte, error) {
	ctx, sp := v.tracer.Start(ctx, "vault.get",
		trace.Str("object", id), trace.Str("encoding", v.Encoding.Name()))
	v.mu.RLock()
	data, err := v.getLocked(ctx, id)
	v.mu.RUnlock()
	if err == nil {
		sp.SetAttrs(trace.Int("bytes", len(data)))
	}
	sp.End(err)
	return data, err
}

// getLocked is Get's body; callers hold v.mu (read or write). It is a
// degraded k-of-n read: the stripe fetch fans out the decoder's minimum
// plus speculative probes, retries transient faults with bounded
// backoff, discards shards whose digest no longer matches (bit rot,
// tampering) and pulls from further nodes instead, stopping as soon as
// the minimum is in hand.
//
// A read that had to discard rotted shards still succeeds, but queues
// the object for ScrubAll (see DirtyObjects) — routing around bit rot
// must trigger a repair, not hide the damage. A read that cannot reach
// the encoding's minimum returns *DegradedError (errors.Is ErrDegraded)
// carrying got/want and the per-node causes, never a raw decode error.
func (v *Vault) getLocked(ctx context.Context, id string) ([]byte, error) {
	sp := trace.FromContext(ctx)
	obj, ok := v.objects[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	n, min := v.Encoding.Shards()
	res := v.Cluster.FetchStripeCtx(ctx, id, n, min, v.retry, func(i int, data []byte) bool {
		return i < len(obj.digests) && sha256.Sum256(data) == obj.digests[i]
	})
	if len(res.Discarded) > 0 {
		v.obsm.readDiscarded.Add(int64(len(res.Discarded)))
		v.markDirty(id)
		sp.Event("read.dirty", trace.Int("discarded", len(res.Discarded)))
	}
	if res.Fetched < min {
		v.obsm.readInsufficient.Inc()
		sp.Event("read.insufficient", trace.Int("got", res.Fetched), trace.Int("want", min))
		return nil, &DegradedError{Object: id, Got: res.Fetched, Want: min, Failures: res.Failures}
	}
	if res.Degraded() {
		v.obsm.readDegraded.Inc()
	}
	enc := &Encoded{
		Scheme:       obj.enc.Scheme,
		PlainLen:     obj.enc.PlainLen,
		Shards:       res.Shards,
		ClientSecret: obj.enc.ClientSecret,
		PublicMeta:   obj.enc.PublicMeta,
	}
	_, dsp := trace.Child(ctx, "vault.decode", trace.Int("shards", res.Fetched))
	decStart := time.Now()
	data, err := v.Encoding.Decode(enc)
	dsp.End(err)
	if err != nil {
		return nil, err
	}
	observeRate(v.obsm.decodeMBs, len(data), time.Since(decStart))
	v.obsm.getBytes.Observe(float64(len(data)))
	_, vsp := trace.Child(ctx, "vault.verify")
	err = obj.chain.VerifyData(data)
	vsp.End(err)
	if err != nil {
		return nil, fmt.Errorf("core: integrity chain rejects data for %s: %w", id, err)
	}
	return data, nil
}

// markDirty queues an object for the next ScrubAll after a read had to
// discard rotted shards.
func (v *Vault) markDirty(id string) {
	v.dirtyMu.Lock()
	v.dirty[id] = struct{}{}
	v.dirtyMu.Unlock()
}

// DirtyObjects lists objects queued for scrubbing because a read
// discarded at least one of their shards since the last scrub.
func (v *Vault) DirtyObjects() []string {
	v.dirtyMu.Lock()
	defer v.dirtyMu.Unlock()
	out := make([]string, 0, len(v.dirty))
	for id := range v.dirty {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// RenewIntegrity appends a fresh signature (rotating schemes) to the
// object's timestamp chain.
func (v *Vault) RenewIntegrity(id string, scheme sig.Scheme) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	obj, ok := v.objects[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return obj.chain.Renew(scheme, v.Cluster.Epoch(), v.rnd)
}

// RenewShares re-encodes the object with fresh randomness and rewrites
// every shard — the generic renewal that works for any encoding (at full
// re-encode cost; sharing-specific systems do better, see pss). The whole
// read-reencode-rewrite sequence holds the write lock: a concurrent Get
// must never observe a half-rewritten shard set. The rewrite itself is
// stage-then-commit: a node failing mid-renewal aborts the stage and the
// cluster keeps the old encoding intact, so the object never ends up
// with mixed-epoch shards under a stale ClientSecret.
func (v *Vault) RenewShares(id string) error {
	return v.RenewSharesContext(context.Background(), id)
}

// RenewSharesContext is RenewShares rooted in (or joined to) a trace:
// the read-back, re-encode, and staged rewrite all nest under one
// "vault.renew" span.
func (v *Vault) RenewSharesContext(ctx context.Context, id string) error {
	ctx, sp := v.tracer.Start(ctx, "vault.renew",
		trace.Str("object", id), trace.Str("encoding", v.Encoding.Name()))
	err := v.renewShares(ctx, id)
	sp.End(err)
	return err
}

func (v *Vault) renewShares(ctx context.Context, id string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	data, err := v.getLocked(ctx, id)
	if err != nil {
		return err
	}
	obj := v.objects[id]
	_, esp := trace.Child(ctx, "vault.encode", trace.Int("bytes", len(data)))
	enc, err := v.Encoding.Encode(data, v.rnd)
	esp.End(err)
	if err != nil {
		return err
	}
	if err := v.disperseLocked(ctx, id, enc); err != nil {
		return fmt.Errorf("core: renewal of %s rolled back: %w", id, err)
	}
	obj.enc.ClientSecret = enc.ClientSecret
	obj.enc.PublicMeta = enc.PublicMeta
	obj.enc.PlainLen = enc.PlainLen
	obj.digests = ShardDigests(enc.Shards)
	return nil
}

// ExportEvidence serialises an object's timestamp chain for off-archive
// escrow: integrity evidence is itself archival data and must survive
// this process. In commitment mode the export contains no digest of the
// data — it is safe to publish.
func (v *Vault) ExportEvidence(id string) ([]byte, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	obj, ok := v.objects[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return obj.chain.Marshal()
}

// Chain exposes an object's timestamp chain.
func (v *Vault) Chain(id string) *tstamp.Chain {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if obj, ok := v.objects[id]; ok {
		return obj.chain
	}
	return nil
}

// StorageCost measures the object's at-rest overhead from the cluster.
func (v *Vault) StorageCost(id string) float64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	obj, ok := v.objects[id]
	if !ok || obj.enc.PlainLen == 0 {
		return 0
	}
	return float64(v.Cluster.ObjectBytes(id)) / float64(obj.enc.PlainLen)
}

// Objects lists stored object ids (unordered).
func (v *Vault) Objects() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.objects))
	for id := range v.objects {
		out = append(out, id)
	}
	return out
}
