package core

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"sync"
	"testing"

	"securearchive/internal/cluster"
	"securearchive/internal/group"
	"securearchive/internal/sig"
)

// TestVaultConcurrentPutGet hammers one vault from many goroutines:
// each stores its own object, reads it back, and renews it, while other
// goroutines concurrently read a pre-stored object. Run under -race this
// exercises the vault lock discipline and the parallel encode paths.
func TestVaultConcurrentPutGet(t *testing.T) {
	c := cluster.New(8, nil)
	v, err := NewVault(c, SecretSharing{T: 4, N: 8},
		WithGroup(group.Test()), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	shared := make([]byte, 4096)
	rand.Read(shared)
	if err := v.Put("shared", shared); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*4)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := fmt.Sprintf("obj-%d", w)
			data := make([]byte, 2048+w*17)
			rand.Read(data)
			if err := v.Put(id, data); err != nil {
				errs <- fmt.Errorf("%s: put: %w", id, err)
				return
			}
			// Duplicate Put must fail without corrupting state.
			if err := v.Put(id, data); err == nil {
				errs <- fmt.Errorf("%s: duplicate put accepted", id)
				return
			}
			got, err := v.Get(id)
			if err != nil {
				errs <- fmt.Errorf("%s: get: %w", id, err)
				return
			}
			if !bytes.Equal(got, data) {
				errs <- fmt.Errorf("%s: roundtrip mismatch", id)
				return
			}
			if err := v.RenewShares(id); err != nil {
				errs <- fmt.Errorf("%s: renew shares: %w", id, err)
				return
			}
			if err := v.RenewIntegrity(id, sig.Ed25519); err != nil {
				errs <- fmt.Errorf("%s: renew integrity: %w", id, err)
				return
			}
			// Concurrent reads of the shared object while others write.
			for r := 0; r < 3; r++ {
				got, err := v.Get("shared")
				if err != nil {
					errs <- fmt.Errorf("shared get: %w", err)
					return
				}
				if !bytes.Equal(got, shared) {
					errs <- fmt.Errorf("shared object corrupted")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := len(v.Objects()); got != workers+1 {
		t.Fatalf("object count = %d, want %d", got, workers+1)
	}
	for w := 0; w < workers; w++ {
		id := fmt.Sprintf("obj-%d", w)
		if _, err := v.Get(id); err != nil {
			t.Fatalf("%s unreadable after concurrent phase: %v", id, err)
		}
	}
}
