package core

import (
	"bytes"
	"errors"
	"testing"

	"securearchive/internal/cluster"
)

// Regression: a node dying mid-renewal must not leave the cluster holding
// shards from two encodings under a stale ClientSecret. The staged write
// aborts, the old stripe stays whole, and Get returns the original bytes.
func TestVaultRenewSharesPartialFailureRollsBack(t *testing.T) {
	for _, tc := range []struct {
		name string
		enc  Encoding
	}{
		{"shamir", SecretSharing{T: 4, N: 8}},
		{"erasure", Erasure{K: 4, N: 8}},
		{"aes", TraditionalEncryption{K: 4, N: 8}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			v, c := testVault(t, tc.enc)
			data := []byte("must survive a failed renewal intact")
			if err := v.Put("r", data); err != nil {
				t.Fatal(err)
			}
			baseline := c.ObjectBytes("r")
			c.AdvanceEpoch() // a renewal now would stamp epoch 1
			c.SetOnline(5, false)
			if err := v.RenewShares("r"); err == nil {
				t.Fatal("renewal with a dead node succeeded")
			}
			// No orphaned or staged bytes, no mixed epochs.
			if got := c.ObjectBytes("r"); got != baseline {
				t.Fatalf("object bytes %d after failed renewal, want %d", got, baseline)
			}
			if c.StagedCount() != 0 {
				t.Fatal("failed renewal leaked a stage")
			}
			c.SetOnline(5, true)
			for i := 0; i < 8; i++ {
				sh, err := c.Get(i, cluster.ShardKey{Object: "r", Index: i})
				if err != nil {
					t.Fatalf("shard %d lost: %v", i, err)
				}
				if sh.Epoch != 0 {
					t.Fatalf("shard %d at epoch %d: stripe mixes encodings", i, sh.Epoch)
				}
			}
			got, err := v.Get("r")
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("data lost after failed renewal: %v", err)
			}
			// And the vault is still renewable once the node returns.
			if err := v.RenewShares("r"); err != nil {
				t.Fatalf("renewal after recovery: %v", err)
			}
			got, err = v.Get("r")
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("data lost after recovered renewal: %v", err)
			}
		})
	}
}

// Regression: a failed multi-shard Put must not leave committed shards on
// the healthy nodes — StoredBytes returns to baseline and the object does
// not exist.
func TestVaultPutFailureLeavesNoOrphans(t *testing.T) {
	v, c := testVault(t, SecretSharing{T: 4, N: 8})
	if err := v.Put("keep", []byte("pre-existing object")); err != nil {
		t.Fatal(err)
	}
	baseline := c.StoredBytes()
	c.SetOnline(6, false)
	err := v.Put("doomed", []byte("this write must leave no trace"))
	if !errors.Is(err, cluster.ErrNodeDown) {
		t.Fatalf("put with dead node: %v", err)
	}
	if got := c.StoredBytes(); got != baseline {
		t.Fatalf("stored bytes %d after failed put, want baseline %d", got, baseline)
	}
	if c.ObjectBytes("doomed") != 0 {
		t.Fatal("orphaned shards for unregistered object")
	}
	if c.StagedCount() != 0 {
		t.Fatal("failed put leaked a stage")
	}
	if _, err := v.Get("doomed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("phantom object: %v", err)
	}
	// The id is reusable once the cluster heals.
	c.SetOnline(6, true)
	if err := v.Put("doomed", []byte("second attempt lands")); err != nil {
		t.Fatal(err)
	}
}

// Acceptance: with a FaultPlan taking n−k nodes offline, Get still
// succeeds for RS, Shamir and packed encodings; once the nodes return,
// Scrub restores the stripe to full health.
func TestVaultDegradedReadAndScrubUnderFaultPlan(t *testing.T) {
	for _, tc := range []struct {
		name string
		enc  Encoding
	}{
		{"erasure", Erasure{K: 4, N: 8}},
		{"shamir", SecretSharing{T: 4, N: 8}},
		{"packed", PackedSharing{T: 2, K: 2, N: 8}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			v, c := testVault(t, tc.enc)
			data := []byte("degraded reads keep the archive readable")
			if err := v.Put("r", data); err != nil {
				t.Fatal(err)
			}
			n, min := tc.enc.Shards()
			// Take n−k nodes offline for epochs [0, 10) and make the
			// survivors flaky on top.
			plan := &cluster.FaultPlan{
				Seed:    42,
				Default: cluster.NodeFaults{TransientProb: 0.2},
				Nodes:   map[int]cluster.NodeFaults{},
			}
			for i := 0; i < n-min; i++ {
				plan.Nodes[i] = cluster.NodeFaults{Offline: []cluster.Window{{From: 0, To: 10}}}
				// The outage destroys the node's copy: it returns empty.
				c.Delete(i, cluster.ShardKey{Object: "r", Index: i})
			}
			c.SetFaultPlan(plan)
			got, err := v.Get("r")
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("degraded get with %d/%d nodes: %v", min, n, err)
			}
			// Scrub cannot rewrite while nodes are down; it must fail
			// without touching the stripe.
			if rep, err := v.Scrub("r"); err == nil {
				t.Fatalf("scrub repaired with nodes offline: %+v", rep)
			}
			if got, err := v.Get("r"); err != nil || !bytes.Equal(got, data) {
				t.Fatalf("failed scrub damaged the stripe: %v", err)
			}
			// Nodes return: scrub restores full health.
			c.SetFaultPlan(nil)
			rep, err := v.Scrub("r")
			if err != nil {
				t.Fatalf("scrub after recovery: %v", err)
			}
			if !rep.Repaired || len(rep.Missing) != n-min {
				t.Fatalf("scrub report %+v, want %d missing repaired", rep, n-min)
			}
			rep, err = v.Scrub("r")
			if err != nil || !rep.Clean() {
				t.Fatalf("stripe not at full health after repair: %+v %v", rep, err)
			}
		})
	}
}

// Bit rot injected by the fault plan: the degraded read routes around the
// rotted shard via its digest, and Scrub localises and repairs it.
func TestVaultScrubRepairsBitRot(t *testing.T) {
	v, c := testVault(t, Erasure{K: 4, N: 8})
	data := []byte("one flipped bit should never cost an archive an object")
	if err := v.Put("r", data); err != nil {
		t.Fatal(err)
	}
	// Rot node 2's shard deterministically: one read with p=1.
	c.SetFaultPlan(&cluster.FaultPlan{Seed: 5, Nodes: map[int]cluster.NodeFaults{
		2: {CorruptProb: 1.0},
	}})
	if _, err := c.Get(2, cluster.ShardKey{Object: "r", Index: 2}); err != nil {
		t.Fatal(err)
	}
	c.SetFaultPlan(nil)
	got, err := v.Get("r")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get with rotted shard: %v", err)
	}
	rep, err := v.Scrub("r")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corrupt) != 1 || rep.Corrupt[0] != 2 || !rep.Repaired {
		t.Fatalf("scrub misdiagnosed rot: %+v", rep)
	}
	rep, _ = v.Scrub("r")
	if !rep.Clean() {
		t.Fatalf("rot survived repair: %+v", rep)
	}
}

// ScrubAll sweeps every object and reports per-object health.
func TestVaultScrubAll(t *testing.T) {
	v, c := testVault(t, SecretSharing{T: 4, N: 8})
	for _, id := range []string{"a", "b", "c"} {
		if err := v.Put(id, []byte("object "+id)); err != nil {
			t.Fatal(err)
		}
	}
	c.Delete(3, cluster.ShardKey{Object: "b", Index: 3})
	reports, err := v.ScrubAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("%d reports, want 3", len(reports))
	}
	for _, rep := range reports {
		if rep.Object == "b" {
			if !rep.Repaired || len(rep.Missing) != 1 {
				t.Fatalf("b not repaired: %+v", rep)
			}
		} else if !rep.Clean() {
			t.Fatalf("%s dirtied: %+v", rep.Object, rep)
		}
	}
	for _, id := range []string{"a", "b", "c"} {
		got, err := v.Get(id)
		if err != nil || !bytes.Equal(got, []byte("object "+id)) {
			t.Fatalf("%s after sweep: %v", id, err)
		}
	}
}
