package core

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"testing"

	"securearchive/internal/cluster"
	"securearchive/internal/group"
	"securearchive/internal/sig"
	"securearchive/internal/tstamp"
)

func testVault(t *testing.T, enc Encoding) (*Vault, *cluster.Cluster) {
	t.Helper()
	c := cluster.New(8, nil)
	v, err := NewVault(c, enc, WithGroup(group.Test()))
	if err != nil {
		t.Fatal(err)
	}
	return v, c
}

func TestVaultPutGet(t *testing.T) {
	v, _ := testVault(t, SecretSharing{T: 4, N: 8})
	data := []byte("a record in the vault")
	if err := v.Put("rec1", data); err != nil {
		t.Fatal(err)
	}
	got, err := v.Get("rec1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch")
	}
	if len(v.Objects()) != 1 {
		t.Fatal("object listing wrong")
	}
}

func TestVaultDuplicateAndMissing(t *testing.T) {
	v, _ := testVault(t, SecretSharing{T: 4, N: 8})
	if err := v.Put("x", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := v.Put("x", []byte("2")); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate put: %v", err)
	}
	if _, err := v.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing get: %v", err)
	}
}

func TestVaultSurvivesNodeFailures(t *testing.T) {
	v, c := testVault(t, SecretSharing{T: 4, N: 8})
	data := []byte("resilient record")
	if err := v.Put("r", data); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 3, 5, 7} { // 4 of 8 down, t=4 remain
		c.SetOnline(n, false)
	}
	got, err := v.Get("r")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch under failures")
	}
}

func TestVaultIntegrityChainRejectsTamperedCluster(t *testing.T) {
	// Replication has no inherent integrity: the chain must catch node
	// tampering when every replica is modified identically.
	v, c := testVault(t, Replication{N: 8})
	data := []byte("tamper-evident")
	if err := v.Put("r", data); err != nil {
		t.Fatal(err)
	}
	evil := []byte("tampered!!!!!!")
	for i := 0; i < 8; i++ {
		c.Put(i, cluster.ShardKey{Object: "r", Index: i}, evil)
	}
	if _, err := v.Get("r"); err == nil {
		t.Fatal("tampered replicas accepted")
	}
}

func TestVaultRenewIntegrityRotation(t *testing.T) {
	v, _ := testVault(t, SecretSharing{T: 4, N: 8})
	if err := v.Put("r", []byte("rotate me")); err != nil {
		t.Fatal(err)
	}
	if err := v.RenewIntegrity("r", sig.ECDSAP256); err != nil {
		t.Fatal(err)
	}
	if err := v.RenewIntegrity("r", sig.RSAPSS2048); err != nil {
		t.Fatal(err)
	}
	chain := v.Chain("r")
	if chain.Len() != 3 {
		t.Fatalf("chain length %d, want 3", chain.Len())
	}
	if err := chain.Verify(100, sig.BreakSchedule{sig.Ed25519: 50}); err != nil {
		t.Fatalf("rotated chain invalid under ed25519 break: %v", err)
	}
}

func TestVaultRenewShares(t *testing.T) {
	v, c := testVault(t, SecretSharing{T: 4, N: 8})
	data := []byte("refresh my shards")
	if err := v.Put("r", data); err != nil {
		t.Fatal(err)
	}
	before, _ := c.Get(0, cluster.ShardKey{Object: "r", Index: 0})
	if err := v.RenewShares("r"); err != nil {
		t.Fatal(err)
	}
	after, _ := c.Get(0, cluster.ShardKey{Object: "r", Index: 0})
	if bytes.Equal(before.Data, after.Data) {
		t.Fatal("shard unchanged after renewal")
	}
	got, err := v.Get("r")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("data lost in renewal: %v", err)
	}
}

func TestVaultHashIntegrityMode(t *testing.T) {
	c := cluster.New(8, nil)
	v, err := NewVault(c, TraditionalEncryption{K: 4, N: 8},
		WithIntegrityMode(tstamp.RefHash), WithGroup(group.Test()))
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hash-chained record")
	if err := v.Put("r", data); err != nil {
		t.Fatal(err)
	}
	got, err := v.Get("r")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("hash-mode round trip: %v", err)
	}
}

func TestVaultTooSmallCluster(t *testing.T) {
	c := cluster.New(4, nil)
	if _, err := NewVault(c, SecretSharing{T: 4, N: 8}); err == nil {
		t.Fatal("oversubscribed cluster accepted")
	}
}

func TestVaultExportEvidence(t *testing.T) {
	v, _ := testVault(t, SecretSharing{T: 4, N: 8})
	data := []byte("evidence must outlive the process")
	if err := v.Put("r", data); err != nil {
		t.Fatal(err)
	}
	if err := v.RenewIntegrity("r", sig.ECDSAP256); err != nil {
		t.Fatal(err)
	}
	blob, err := v.ExportEvidence("r")
	if err != nil {
		t.Fatal(err)
	}
	chain, err := tstamp.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Len() != 2 {
		t.Fatalf("exported chain has %d links", chain.Len())
	}
	if err := chain.Verify(100, nil); err != nil {
		t.Fatal(err)
	}
	// Commitment mode: the export must not contain the data's digest.
	d := sha256.Sum256(data)
	if bytes.Contains(blob, d[:]) {
		t.Fatal("exported evidence leaks the data digest")
	}
	if _, err := v.ExportEvidence("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing object: %v", err)
	}
}

func TestVaultStorageCost(t *testing.T) {
	v, _ := testVault(t, SecretSharing{T: 4, N: 8})
	data := make([]byte, 4096)
	rand.Read(data)
	if err := v.Put("r", data); err != nil {
		t.Fatal(err)
	}
	if oh := v.StorageCost("r"); oh < 7.9 || oh > 8.1 {
		t.Fatalf("secret sharing vault cost %.2f, want 8", oh)
	}
	if v.StorageCost("nope") != 0 {
		t.Fatal("phantom cost")
	}
}
