package core

import (
	"encoding/binary"
	"errors"

	"securearchive/internal/lrss"
	"securearchive/internal/shamir"
)

// errTruncated reports a malformed serialised share.
var errTruncated = errors.New("core: truncated share encoding")

// encodeLRSSShare serialises one LRSS share for node storage:
//
//	u32 index ‖ u8 t ‖ u32 secretLen ‖
//	u32 len(source) ‖ source ‖ u32 len(masked) ‖ masked ‖
//	u32 count ‖ count × ( u8 x ‖ u8 t ‖ u32 len ‖ payload )
func encodeLRSSShare(s lrss.Share) []byte {
	var buf []byte
	buf = binary.BigEndian.AppendUint32(buf, uint32(s.Index))
	buf = append(buf, s.T)
	buf = binary.BigEndian.AppendUint32(buf, uint32(s.SecretLen))
	buf = appendBytes(buf, s.Source)
	buf = appendBytes(buf, s.Masked)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.SeedShares)))
	for _, ss := range s.SeedShares {
		buf = append(buf, ss.X, ss.Threshold)
		buf = appendBytes(buf, ss.Payload)
	}
	return buf
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

func readBytes(buf []byte) ([]byte, []byte, error) {
	if len(buf) < 4 {
		return nil, nil, errTruncated
	}
	n := int(binary.BigEndian.Uint32(buf))
	buf = buf[4:]
	if len(buf) < n {
		return nil, nil, errTruncated
	}
	return buf[:n], buf[n:], nil
}

// encodeBatchBlob packs the members of one batched small-object write
// into a single self-describing blob:
//
//	u32 count ‖ count × ( u32 idLen ‖ id ‖ u32 dataLen ‖ data )
//
// offsets[i] is the byte offset of member i's payload within the blob,
// so member reads can slice the decoded blob directly.
func encodeBatchBlob(ids []string, datas [][]byte) (blob []byte, offsets []int) {
	size := 4
	for i := range ids {
		size += 8 + len(ids[i]) + len(datas[i])
	}
	blob = binary.BigEndian.AppendUint32(make([]byte, 0, size), uint32(len(ids)))
	offsets = make([]int, len(ids))
	for i := range ids {
		blob = appendBytes(blob, []byte(ids[i]))
		blob = binary.BigEndian.AppendUint32(blob, uint32(len(datas[i])))
		offsets[i] = len(blob)
		blob = append(blob, datas[i]...)
	}
	return blob, offsets
}

// decodeBatchBlob reverses encodeBatchBlob, returning member ids and
// payloads (aliasing blob). Strict: a count the buffer cannot hold, any
// truncated field, or trailing bytes all error — never a panic or an
// attacker-sized allocation.
func decodeBatchBlob(blob []byte) ([]string, [][]byte, error) {
	if len(blob) < 4 {
		return nil, nil, errTruncated
	}
	count := int(binary.BigEndian.Uint32(blob))
	buf := blob[4:]
	// Each member occupies at least 8 bytes (two u32 length prefixes).
	if count < 0 || count > len(buf)/8 {
		return nil, nil, errTruncated
	}
	ids := make([]string, count)
	datas := make([][]byte, count)
	for i := 0; i < count; i++ {
		id, rest, err := readBytes(buf)
		if err != nil {
			return nil, nil, err
		}
		data, rest, err := readBytes(rest)
		if err != nil {
			return nil, nil, err
		}
		ids[i] = string(id)
		datas[i] = data
		buf = rest
	}
	if len(buf) != 0 {
		return nil, nil, errTruncated
	}
	return ids, datas, nil
}

// decodeLRSSShare reverses encodeLRSSShare.
func decodeLRSSShare(buf []byte) (lrss.Share, error) {
	var s lrss.Share
	if len(buf) < 9 {
		return s, errTruncated
	}
	s.Index = int(binary.BigEndian.Uint32(buf))
	s.T = buf[4]
	s.SecretLen = int(binary.BigEndian.Uint32(buf[5:]))
	buf = buf[9:]
	var err error
	if s.Source, buf, err = readBytes(buf); err != nil {
		return s, err
	}
	if s.Masked, buf, err = readBytes(buf); err != nil {
		return s, err
	}
	if len(buf) < 4 {
		return s, errTruncated
	}
	count := int(binary.BigEndian.Uint32(buf))
	buf = buf[4:]
	// Each seed share occupies at least 6 bytes (x, t, u32 len); a count
	// the remaining buffer cannot hold is malformed, not a huge alloc.
	if count < 0 || count > len(buf)/6 {
		return s, errTruncated
	}
	s.SeedShares = make([]shamir.Share, count)
	for i := 0; i < count; i++ {
		if len(buf) < 2 {
			return s, errTruncated
		}
		x, t := buf[0], buf[1]
		buf = buf[2:]
		var payload []byte
		if payload, buf, err = readBytes(buf); err != nil {
			return s, err
		}
		s.SeedShares[i] = shamir.Share{X: x, Threshold: t, Payload: payload}
	}
	return s, nil
}
