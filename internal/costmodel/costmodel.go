// Package costmodel reproduces the paper's §3.2 re-encryption arithmetic:
// how long it takes to read, re-encrypt, and write back an entire archive,
// and why that duration makes emergency re-encryption impractical at
// archive scale (experiment E3).
//
// The paper's method: a conservative floor on re-encryption time is
// archive size divided by aggregate read throughput. Writing roughly
// doubles it (write bandwidth and verify passes), and reserving capacity
// for foreground traffic doubles it again. The four systems it works
// through:
//
//	Oak Ridge HPSS   80 PB   @ 400 TB/day  → 6.75 months read-only
//	ECMWF MARS       37.9 PB @ 120 TB/day  → 10.35 months
//	CERN EOS         230 PB  @ 909 TB/day  → 8.3 months
//	Pergamum (hypo)  10 PB   @ 5 GB/s      → 0.76 months
//
// Those same constants are embedded here as the PaperArchives table, and
// the model extends the sweep to the exabyte/zettabyte archives the
// introduction envisions. It also prices proactive-share-renewal traffic
// (the pss package's Θ(n²·L)) in the same time units, so the two escape
// hatches the paper discusses can be compared side by side.
package costmodel

import (
	"errors"
	"fmt"
	"math"

	"securearchive/internal/media"
	"securearchive/internal/pss"
)

// Time constants. The paper converts days to months; back-solving its
// stated figures (10.35, 8.3, 0.76 months) shows it used the Gregorian
// average month of 30.44 days. (Its HPSS row, 6.75 months, implies a
// slightly different convention — 200 days/6.75 ≈ 29.6 — an internal
// inconsistency we reproduce to within 3%; see EXPERIMENTS.md.)
const (
	SecondsPerDay = 86400.0
	DaysPerMonth  = 30.44
)

// ErrBadParams reports non-positive sizes or rates.
var ErrBadParams = errors.New("costmodel: parameters must be positive")

// Archive describes one archive's size and aggregate throughput.
type Archive struct {
	Name string
	// TotalBytes is the archive's stored size in bytes.
	TotalBytes float64
	// ReadBytesPerDay is aggregate read throughput in bytes per day.
	ReadBytesPerDay float64
}

// PaperArchives are the four systems §3.2 walks through, with the paper's
// own conservative numbers.
func PaperArchives() []Archive {
	const TB = 1e12
	const PB = 1e15
	return []Archive{
		{Name: "Oak Ridge HPSS", TotalBytes: 80 * PB, ReadBytesPerDay: 400 * TB},
		{Name: "ECMWF MARS", TotalBytes: 37.9 * PB, ReadBytesPerDay: 120 * TB},
		{Name: "CERN EOS", TotalBytes: 230 * PB, ReadBytesPerDay: 909 * TB},
		{Name: "Pergamum (10PB tape)", TotalBytes: 10 * PB, ReadBytesPerDay: 5e9 * SecondsPerDay},
	}
}

// Scenario selects which §3.2 multipliers apply.
type Scenario struct {
	// WriteBack doubles the duration: data must be re-written and
	// verified, and archival writes are no faster than reads.
	WriteBack bool
	// ForegroundReserve doubles the duration again: the archive keeps
	// serving ingest and reads during the campaign.
	ForegroundReserve bool
}

// Multiplier returns the combined factor over the read-only floor.
func (s Scenario) Multiplier() float64 {
	m := 1.0
	if s.WriteBack {
		m *= 2
	}
	if s.ForegroundReserve {
		m *= 2
	}
	return m
}

// ReencryptMonths returns the re-encryption campaign duration in months
// for the archive under the scenario.
func ReencryptMonths(a Archive, s Scenario) (float64, error) {
	if a.TotalBytes <= 0 || a.ReadBytesPerDay <= 0 {
		return 0, fmt.Errorf("%w: %+v", ErrBadParams, a)
	}
	days := a.TotalBytes / a.ReadBytesPerDay * s.Multiplier()
	return days / DaysPerMonth, nil
}

// ExposureWindow is the paper's bottom line: during a re-encryption
// campaign triggered by a cipher break, not-yet-re-encrypted data remains
// exposed for up to the full campaign duration. Expressed in months.
func ExposureWindow(a Archive, s Scenario) (float64, error) {
	return ReencryptMonths(a, s)
}

// Sweep evaluates the campaign duration across archive sizes (bytes) at a
// fixed throughput, for extrapolating the §3.2 argument to EB/ZB scales.
func Sweep(sizes []float64, readBytesPerDay float64, s Scenario) ([]float64, error) {
	if readBytesPerDay <= 0 {
		return nil, ErrBadParams
	}
	out := make([]float64, len(sizes))
	for i, sz := range sizes {
		m, err := ReencryptMonths(Archive{Name: "sweep", TotalBytes: sz, ReadBytesPerDay: readBytesPerDay}, s)
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

// RenewalCampaign prices one proactive-share-renewal round for an archive
// of totalBytes split into objects of objBytes, shared across n holders,
// against a network of aggregate interNodeBytesPerDay. It returns the
// months one full renewal sweep takes — the secret-sharing analogue of
// re-encryption, and the reason §3.2 says renewal "may become impractical
// for the same reasons".
func RenewalCampaign(totalBytes, objBytes float64, n int, interNodeBytesPerDay float64) (float64, error) {
	if totalBytes <= 0 || objBytes <= 0 || n < 2 || interNodeBytesPerDay <= 0 {
		return 0, ErrBadParams
	}
	objects := math.Ceil(totalBytes / objBytes)
	perObject := float64(pss.RenewalTraffic(n, int(objBytes)))
	days := objects * perObject / interNodeBytesPerDay
	return days / DaysPerMonth, nil
}

// MigrationMonths prices a media-generation migration (§4's motivation
// for long-lived media): writing totalBytes onto `units` parallel
// writers of the target medium, in months. Migration is write-bound —
// archival media write slower than they read — and, like re-encryption,
// must be planned in years at scale. Glass and DNA buy their millennia
// of durability with write rates that make INITIAL ingestion the
// bottleneck instead of periodic migration.
func MigrationMonths(totalBytes float64, target media.Medium, units int) (float64, error) {
	if totalBytes <= 0 || units < 1 || target.WriteBandwidth <= 0 {
		return 0, fmt.Errorf("%w: bytes=%v units=%d", ErrBadParams, totalBytes, units)
	}
	perDay := target.WriteBandwidth * SecondsPerDay * float64(units)
	return totalBytes / perDay / DaysPerMonth, nil
}

// Row is one line of the E3 report.
type Row struct {
	Archive       string
	ReadOnlyMo    float64 // paper's headline figure
	WithWriteMo   float64 // ×2
	WithReserveMo float64 // ×4
}

// Report computes the full §3.2 table.
func Report() ([]Row, error) {
	var rows []Row
	for _, a := range PaperArchives() {
		ro, err := ReencryptMonths(a, Scenario{})
		if err != nil {
			return nil, err
		}
		w, err := ReencryptMonths(a, Scenario{WriteBack: true})
		if err != nil {
			return nil, err
		}
		wr, err := ReencryptMonths(a, Scenario{WriteBack: true, ForegroundReserve: true})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{Archive: a.Name, ReadOnlyMo: ro, WithWriteMo: w, WithReserveMo: wr})
	}
	return rows, nil
}
