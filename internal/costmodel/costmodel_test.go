package costmodel

import (
	"errors"
	"math"
	"testing"

	"securearchive/internal/media"
)

func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol
}

// TestPaperFiguresReproduce is the heart of experiment E3: the four
// read-out durations the paper states, to the paper's own precision.
func TestPaperFiguresReproduce(t *testing.T) {
	want := map[string]float64{
		"Oak Ridge HPSS":       6.75,  // "could be read in 6.75 months"
		"ECMWF MARS":           10.35, // "yields 10.35 months"
		"CERN EOS":             8.3,   // "8.3 months for 230PB and 909TB/day"
		"Pergamum (10PB tape)": 0.76,  // "yielding 0.76 months"
	}
	rows, err := Report()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for _, r := range rows {
		w, ok := want[r.Archive]
		if !ok {
			t.Fatalf("unexpected archive %q", r.Archive)
		}
		// Within 3% of the paper's stated figure: three rows reproduce to
		// two decimals under the Gregorian month; the HPSS row's published
		// value implies a slightly different month convention (see the
		// DaysPerMonth comment in costmodel.go).
		if math.Abs(r.ReadOnlyMo-w)/w > 0.03 {
			t.Errorf("%s: read-only %.2f months, paper says %.2f (>3%% off)", r.Archive, r.ReadOnlyMo, w)
		}
		if !approx(r.WithWriteMo, 2*r.ReadOnlyMo, 1e-9) {
			t.Errorf("%s: write-back multiplier broken", r.Archive)
		}
		if !approx(r.WithReserveMo, 4*r.ReadOnlyMo, 1e-9) {
			t.Errorf("%s: reserve multiplier broken", r.Archive)
		}
	}
}

func TestScenarioMultiplier(t *testing.T) {
	if (Scenario{}).Multiplier() != 1 {
		t.Fatal("base multiplier")
	}
	if (Scenario{WriteBack: true}).Multiplier() != 2 {
		t.Fatal("write multiplier")
	}
	if (Scenario{ForegroundReserve: true}).Multiplier() != 2 {
		t.Fatal("reserve multiplier")
	}
	if (Scenario{WriteBack: true, ForegroundReserve: true}).Multiplier() != 4 {
		t.Fatal("combined multiplier")
	}
}

func TestReencryptMonthsValidation(t *testing.T) {
	if _, err := ReencryptMonths(Archive{TotalBytes: 0, ReadBytesPerDay: 1}, Scenario{}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("zero size: %v", err)
	}
	if _, err := ReencryptMonths(Archive{TotalBytes: 1, ReadBytesPerDay: 0}, Scenario{}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("zero rate: %v", err)
	}
}

// TestZettabyteExtrapolation: at CERN-EOS-class throughput, a 1 ZB archive
// takes many *decades* to re-encrypt — the paper's "many years" claim with
// room to spare.
func TestZettabyteExtrapolation(t *testing.T) {
	months, err := Sweep([]float64{1e18, 1e19, 1e20, 1e21}, 909e12, Scenario{WriteBack: true, ForegroundReserve: true})
	if err != nil {
		t.Fatal(err)
	}
	// 1 EB at 909 TB/day ×4 = ~4400 days ≈ 146 months ≈ 12 years.
	if months[0] < 100 || months[0] > 200 {
		t.Fatalf("1 EB campaign %.0f months, want ≈146", months[0])
	}
	// Each decade of size is a decade of duration (linear model).
	for i := 1; i < len(months); i++ {
		if !approx(months[i]/months[i-1], 10, 0.01) {
			t.Fatal("sweep not linear in size")
		}
	}
	// 1 ZB: over a century.
	if months[3] < 12*100 {
		t.Fatalf("1 ZB campaign %.0f months, want > a century", months[3])
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := Sweep([]float64{1}, 0, Scenario{}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("zero rate: %v", err)
	}
}

func TestExposureWindowEqualsCampaign(t *testing.T) {
	a := PaperArchives()[0]
	s := Scenario{WriteBack: true}
	e, _ := ExposureWindow(a, s)
	r, _ := ReencryptMonths(a, s)
	if e != r {
		t.Fatal("exposure window must equal campaign duration")
	}
}

// TestRenewalCampaignScalesQuadraticallyInN reproduces the §3.2 warning
// that share renewal hits the re-encryption wall: traffic per object is
// Θ(n²·L), so doubling the committee quadruples campaign time.
func TestRenewalCampaignScalesQuadraticallyInN(t *testing.T) {
	const totalBytes = 1e15 // 1 PB archive
	const objBytes = 1e6    // 1 MB objects
	const netPerDay = 100e12
	m8, err := RenewalCampaign(totalBytes, objBytes, 8, netPerDay)
	if err != nil {
		t.Fatal(err)
	}
	m16, err := RenewalCampaign(totalBytes, objBytes, 16, netPerDay)
	if err != nil {
		t.Fatal(err)
	}
	ratio := m16 / m8
	if ratio < 3.5 || ratio > 4.6 {
		t.Fatalf("n 8→16 renewal ratio %.2f, want ≈4", ratio)
	}
}

func TestRenewalCampaignValidation(t *testing.T) {
	if _, err := RenewalCampaign(0, 1, 4, 1); !errors.Is(err, ErrBadParams) {
		t.Fatalf("zero total: %v", err)
	}
	if _, err := RenewalCampaign(1, 1, 1, 1); !errors.Is(err, ErrBadParams) {
		t.Fatalf("n=1: %v", err)
	}
}

func TestMigrationMonths(t *testing.T) {
	tape, err := media.Get("tape")
	if err != nil {
		t.Fatal(err)
	}
	glass, _ := media.Get("glass")
	// 1 PB onto 10 tape writers at 300 MB/s: 1e15/(3e8*86400*10) ≈ 3.86
	// days ≈ 0.127 months.
	mo, err := MigrationMonths(1e15, tape, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(mo, 1e15/(300e6*86400*10)/DaysPerMonth, 1e-9) {
		t.Fatalf("tape migration = %v months", mo)
	}
	// Glass writes at 5 MB/s: the same petabyte takes ~60x longer than
	// tape per writer — durability is bought with write throughput.
	gm, err := MigrationMonths(1e15, glass, 10)
	if err != nil {
		t.Fatal(err)
	}
	if gm < mo*50 {
		t.Fatalf("glass (%v mo) should be ≫ tape (%v mo)", gm, mo)
	}
	if _, err := MigrationMonths(0, tape, 1); !errors.Is(err, ErrBadParams) {
		t.Fatalf("zero bytes: %v", err)
	}
	if _, err := MigrationMonths(1, tape, 0); !errors.Is(err, ErrBadParams) {
		t.Fatalf("zero units: %v", err)
	}
}

// TestRenewalVsReencryptComparable: for a PB-scale archive with a
// committee of 8 and a fat inter-node network, renewal is in the same
// order of magnitude as re-encryption — neither escapes the I/O wall.
func TestRenewalVsReencryptComparable(t *testing.T) {
	reenc, _ := ReencryptMonths(Archive{TotalBytes: 1e16, ReadBytesPerDay: 400e12}, Scenario{WriteBack: true})
	renew, _ := RenewalCampaign(1e16, 1e6, 8, 400e12)
	if renew < reenc/10 {
		t.Fatalf("renewal (%.1f mo) implausibly cheaper than re-encryption (%.1f mo)", renew, reenc)
	}
}
