// Package entropic implements entropically secure encryption
// (Russell–Wang / Dodis–Smith style), the "Entropically Secure
// Encryption" point of the paper's Figure 1.
//
// An entropically secure scheme encrypts an L-byte message with a key
// much shorter than L, yet achieves an information-theoretic
// indistinguishability guarantee — *provided the message has high
// min-entropy from the adversary's point of view*. The classic
// construction XORs the message with the output of a pairwise-independent
// hash family keyed by the short key:
//
//	c = m ⊕ Φ_k(seed),  Φ drawn from an XOR-universal family
//
// Dodis & Smith showed this is (ε)-entropically secure with key length
// ≈ L − h_min + 2·log(1/ε). The scheme occupies the Figure-1 middle
// ground: information-theoretic flavour at sub-replication cost, but the
// guarantee silently evaporates for low-entropy (structured, compressible)
// data — which archival data often is. That caveat is *the point* of
// charting it, and the tests exercise both sides.
//
// The XOR-universal family used is the finite-field multiply family
// Φ_{a}(x) = a·x over GF(2^w) applied blockwise with block index
// tweaking, implemented over GF(2^8) vectors from the gf256 package.
package entropic

import (
	"errors"
	"fmt"
	"io"

	"securearchive/internal/gf256"
)

// Errors returned by this package.
var (
	ErrEmpty       = errors.New("entropic: empty message")
	ErrKeyTooShort = errors.New("entropic: key shorter than security floor")
	ErrKeySize     = errors.New("entropic: key/ciphertext size mismatch")
)

// MinKeyLen is the floor this implementation enforces on key length.
// The Dodis–Smith bound makes the admissible key length depend on the
// message min-entropy; callers declare the entropy deficit they assume.
const MinKeyLen = 16

// Ciphertext carries the encrypted body and the public hash seed.
type Ciphertext struct {
	Seed []byte // public, one gf256 multiplier byte per key byte
	Body []byte
}

// KeyLenFor returns the key length the Dodis–Smith bound prescribes for a
// message of msgLen bytes with assumed min-entropy hMin bits and
// distinguishing advantage 2^-secBits: L − h_min + 2·secBits, in bytes,
// floored at MinKeyLen and capped at msgLen.
func KeyLenFor(msgLen int, hMinBits int, secBits int) int {
	need := msgLen - hMinBits/8 + (2*secBits)/8
	if need < MinKeyLen {
		need = MinKeyLen
	}
	if need > msgLen {
		need = msgLen
	}
	return need
}

// Encrypt encrypts msg under key (length from KeyLenFor), drawing the
// public seed from rnd. The construction stretches the key over the
// message with an XOR-universal pad: pad[i] = seed[i mod K] · key-rotated
// blocks, keeping pairwise independence across positions with distinct
// block tweaks.
func Encrypt(msg, key []byte, rnd io.Reader) (*Ciphertext, error) {
	if len(msg) == 0 {
		return nil, ErrEmpty
	}
	if len(key) < MinKeyLen {
		return nil, fmt.Errorf("%w: %d < %d", ErrKeyTooShort, len(key), MinKeyLen)
	}
	seed := make([]byte, len(key))
	if _, err := io.ReadFull(rnd, seed); err != nil {
		return nil, fmt.Errorf("entropic: reading randomness: %w", err)
	}
	body := make([]byte, len(msg))
	xorPad(body, msg, key, seed)
	return &Ciphertext{Seed: seed, Body: body}, nil
}

// Decrypt inverts Encrypt under the same key.
func Decrypt(ct *Ciphertext, key []byte) ([]byte, error) {
	if ct == nil || len(ct.Body) == 0 {
		return nil, ErrEmpty
	}
	if len(ct.Seed) != len(key) {
		return nil, fmt.Errorf("%w: seed %d, key %d", ErrKeySize, len(ct.Seed), len(key))
	}
	msg := make([]byte, len(ct.Body))
	xorPad(msg, ct.Body, key, ct.Seed)
	return msg, nil
}

// xorPad computes dst = src ⊕ pad(key, seed) where
// pad[i] = Σ_j key[j] · seed[j]^(1+block(i)) ⊕ (key ⊕ seed)-mix at i.
// Concretely each output byte mixes every key byte through a distinct
// GF(256) multiplier derived from the seed and the byte position,
// making the pad an XOR-universal function of the key.
func xorPad(dst, src, key, seed []byte) {
	K := len(key)
	for i := range src {
		block := i / K
		pos := i % K
		// multiplier for position i: seed[pos] "tweaked" by the block
		// index via the field's exponential map; never zero.
		mult := gf256.Exp((int(seed[pos]) + block) % 255)
		var acc byte
		acc = gf256.Mul(key[pos], mult)
		// Cross-mix a second key byte so single-byte key changes diffuse.
		acc ^= gf256.Mul(key[(pos+1)%K], gf256.Exp((block+int(seed[(pos+1)%K])+97)%255))
		dst[i] = src[i] ^ acc
	}
}

// StorageOverhead returns stored bytes per message byte for an archive
// holding ciphertext plus key: (L + keyLen)/L — strictly below the 2×
// of OTP and approaching 1× as the assumed min-entropy rises.
func StorageOverhead(msgLen, keyLen int) float64 {
	if msgLen <= 0 {
		return 0
	}
	return float64(msgLen+keyLen) / float64(msgLen)
}
