package entropic

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
)

func TestEncryptDecryptRoundTrip(t *testing.T) {
	msg := make([]byte, 1000)
	rand.Read(msg)
	key := make([]byte, KeyLenFor(len(msg), 7000, 128))
	rand.Read(key)
	ct, err := Encrypt(msg, key, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct.Body, msg) {
		t.Fatal("ciphertext equals plaintext")
	}
	got, err := Decrypt(ct, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip failed")
	}
}

func TestKeyLenFor(t *testing.T) {
	// Full-entropy message: key collapses to the floor.
	if got := KeyLenFor(1000, 8000, 0); got != MinKeyLen {
		t.Fatalf("full entropy key len = %d, want %d", got, MinKeyLen)
	}
	// Zero-entropy message: key as long as the message (degenerates to OTP).
	if got := KeyLenFor(1000, 0, 0); got != 1000 {
		t.Fatalf("zero entropy key len = %d, want 1000", got)
	}
	// Middle: L − h/8 + 2s/8.
	if got := KeyLenFor(1000, 6400, 128); got != 1000-800+32 {
		t.Fatalf("key len = %d, want 232", got)
	}
	// Never exceeds message length.
	if got := KeyLenFor(100, 0, 4000); got != 100 {
		t.Fatalf("capped key len = %d, want 100", got)
	}
}

func TestShortKeyRejected(t *testing.T) {
	if _, err := Encrypt([]byte("msg"), make([]byte, MinKeyLen-1), rand.Reader); !errors.Is(err, ErrKeyTooShort) {
		t.Fatalf("short key: %v", err)
	}
}

func TestEmptyMessage(t *testing.T) {
	if _, err := Encrypt(nil, make([]byte, 32), rand.Reader); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty message: %v", err)
	}
	if _, err := Decrypt(nil, make([]byte, 32)); !errors.Is(err, ErrEmpty) {
		t.Fatalf("nil ciphertext: %v", err)
	}
}

func TestSeedKeyLengthMismatch(t *testing.T) {
	msg := make([]byte, 64)
	key := make([]byte, 32)
	rand.Read(key)
	ct, _ := Encrypt(msg, key, rand.Reader)
	if _, err := Decrypt(ct, make([]byte, 16)); !errors.Is(err, ErrKeySize) {
		t.Fatalf("mismatched key: %v", err)
	}
}

func TestWrongKeyGarbles(t *testing.T) {
	msg := []byte("high entropy? hopefully.")
	k1 := make([]byte, 32)
	k2 := make([]byte, 32)
	rand.Read(k1)
	rand.Read(k2)
	ct, _ := Encrypt(msg, k1, rand.Reader)
	got, err := Decrypt(ct, k2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("wrong key decrypted correctly")
	}
}

// TestKeyShorterThanMessage is the headline property: the key is shorter
// than the message, unlike OTP — that is the whole storage argument.
func TestKeyShorterThanMessage(t *testing.T) {
	msgLen := 1 << 20
	keyLen := KeyLenFor(msgLen, (msgLen*8)*7/8, 128) // 7/8 entropy rate
	if keyLen >= msgLen {
		t.Fatalf("key (%d) not shorter than message (%d)", keyLen, msgLen)
	}
	if oh := StorageOverhead(msgLen, keyLen); oh >= 2.0 || oh <= 1.0 {
		t.Fatalf("overhead %.3f outside (1, 2)", oh)
	}
}

// TestPadPositionDiversity: the stretched pad must not repeat with the key
// period, or ciphertext-only XOR attacks across positions become trivial.
// We encrypt a zero message (pad becomes visible) and check that the first
// key-length block differs from the following blocks.
func TestPadPositionDiversity(t *testing.T) {
	key := make([]byte, 32)
	rand.Read(key)
	msg := make([]byte, 32*4)
	ct, _ := Encrypt(msg, key, rand.Reader)
	b0 := ct.Body[:32]
	for blk := 1; blk < 4; blk++ {
		if bytes.Equal(b0, ct.Body[32*blk:32*(blk+1)]) {
			t.Fatalf("pad repeats at block %d: not position-tweaked", blk)
		}
	}
}

// TestLowEntropyCaveat documents the scheme's failure mode on low-entropy
// data: two *known* candidate messages can be distinguished by an
// adversary who sees the ciphertext and knows the seed, when the key is
// shorter than the information gap. We demonstrate the much weaker but
// executable fact that pad reuse across two messages with the SAME key
// and seed leaks their XOR.
func TestLowEntropyCaveat(t *testing.T) {
	key := make([]byte, 32)
	rand.Read(key)
	m1 := bytes.Repeat([]byte{0x00}, 64)
	m2 := bytes.Repeat([]byte{0xFF}, 64)
	ct1, _ := Encrypt(m1, key, rand.Reader)
	// Reuse ct1's seed deliberately (misuse).
	ct2 := &Ciphertext{Seed: ct1.Seed, Body: make([]byte, 64)}
	xorPad(ct2.Body, m2, key, ct1.Seed)
	for i := range ct1.Body {
		if ct1.Body[i]^ct2.Body[i] != m1[i]^m2[i] {
			t.Fatal("expected pad-reuse leak identity to hold")
		}
	}
}

func TestStorageOverheadZero(t *testing.T) {
	if StorageOverhead(0, 10) != 0 {
		t.Fatal("zero message overhead should be 0")
	}
}

func BenchmarkEncrypt64KiB(b *testing.B) {
	msg := make([]byte, 64<<10)
	key := make([]byte, 4096)
	rand.Read(key)
	b.SetBytes(int64(len(msg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encrypt(msg, key, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}
