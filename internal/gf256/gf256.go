// Package gf256 implements arithmetic over the finite field GF(2^8).
//
// The field is constructed as GF(2)[x]/(x^8 + x^4 + x^3 + x + 1), the
// polynomial 0x11B used by AES and most Reed-Solomon deployments. All
// secret-sharing and erasure-coding packages in this repository build on
// this field: Shamir shares are byte-parallel polynomial evaluations, and
// Reed-Solomon codewords are matrix products over it.
//
// Multiplication and inversion are table-driven (log/exp tables built at
// package initialisation), which makes them constant-time with respect to
// the *values* involved apart from the zero check; this is the standard
// trade-off taken by storage-system implementations where throughput
// dominates and the field elements are data, not keys.
package gf256

import "fmt"

// Poly is the irreducible polynomial x^8 + x^4 + x^3 + x + 1 defining the
// field, expressed with the x^8 coefficient included (0x11B).
const Poly = 0x11B

// Generator is the primitive element used to build the log/exp tables.
// 0x03 (x+1) is a generator of the multiplicative group of this field.
const Generator = 0x03

// Order is the number of elements in the field.
const Order = 256

var (
	expTable [512]byte // expTable[i] = Generator^i; doubled to avoid mod 255 in Mul
	logTable [256]byte // logTable[x] = log_Generator(x); logTable[0] is unused
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[byte(x)] = byte(i)
		// Multiply x by the generator (x+1): x*3 = x*2 ^ x.
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
		x ^= int(expTable[i])
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
}

// Add returns a + b in GF(2^8). Addition is XOR; it is its own inverse, so
// Add also computes subtraction.
func Add(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a / b in GF(2^8). It panics if b is zero: division by zero is
// a programming error, not a data error, everywhere this package is used.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: zero has no inverse")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns the generator raised to the power e (mod 255). Exp(0) == 1.
func Exp(e int) byte {
	e %= 255
	if e < 0 {
		e += 255
	}
	return expTable[e]
}

// Log returns the discrete logarithm of a to the base Generator.
// It panics if a is zero.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// Pow returns a raised to the power e. Pow(0, 0) == 1 by convention, and
// Pow(0, e) == 0 for e > 0. Negative exponents invert: Pow(a, -1) == Inv(a).
func Pow(a byte, e int) byte {
	if a == 0 {
		if e == 0 {
			return 1
		}
		if e < 0 {
			panic("gf256: negative power of zero")
		}
		return 0
	}
	le := (int(logTable[a]) * (e % 255)) % 255
	if le < 0 {
		le += 255
	}
	return expTable[le]
}

// MulSlice computes dst[i] ^= c * src[i] for all i. It is the inner loop of
// matrix-vector products in the Reed-Solomon and Shamir packages.
// It panics if len(dst) != len(src).
func MulSlice(c byte, src, dst []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf256: MulSlice length mismatch %d != %d", len(dst), len(src)))
	}
	if c == 0 {
		return
	}
	if c == 1 {
		for i := range src {
			dst[i] ^= src[i]
		}
		return
	}
	lc := int(logTable[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[lc+int(logTable[s])]
		}
	}
}

// MulSliceAssign computes dst[i] = c * src[i] for all i, overwriting dst.
// It panics if len(dst) != len(src).
func MulSliceAssign(c byte, src, dst []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf256: MulSliceAssign length mismatch %d != %d", len(dst), len(src)))
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	lc := int(logTable[c])
	for i, s := range src {
		if s == 0 {
			dst[i] = 0
		} else {
			dst[i] = expTable[lc+int(logTable[s])]
		}
	}
}

// EvalPoly evaluates the polynomial with the given coefficients at x using
// Horner's rule. coeffs[0] is the constant term.
func EvalPoly(coeffs []byte, x byte) byte {
	if len(coeffs) == 0 {
		return 0
	}
	acc := coeffs[len(coeffs)-1]
	for i := len(coeffs) - 2; i >= 0; i-- {
		acc = Mul(acc, x) ^ coeffs[i]
	}
	return acc
}

// Interpolate returns the value at x of the unique polynomial of degree
// < len(xs) passing through the points (xs[i], ys[i]), computed by Lagrange
// interpolation. The xs must be distinct; it panics otherwise. This is the
// core of Shamir reconstruction (x = 0 recovers the secret).
func Interpolate(xs, ys []byte, x byte) byte {
	if len(xs) != len(ys) {
		panic("gf256: Interpolate point count mismatch")
	}
	var acc byte
	for i := range xs {
		num, den := byte(1), byte(1)
		for j := range xs {
			if i == j {
				continue
			}
			if xs[i] == xs[j] {
				panic("gf256: Interpolate duplicate x coordinate")
			}
			num = Mul(num, x^xs[j])
			den = Mul(den, xs[i]^xs[j])
		}
		acc ^= Mul(ys[i], Div(num, den))
	}
	return acc
}

// LagrangeCoeffs returns the Lagrange basis coefficients l_i(at) for the
// evaluation points xs, so that f(at) = Σ l_i · f(xs[i]) for any polynomial
// f of degree < len(xs). Shamir reconstruction of many byte positions reuses
// these coefficients across the whole share payload.
func LagrangeCoeffs(xs []byte, at byte) []byte {
	out := make([]byte, len(xs))
	for i := range xs {
		num, den := byte(1), byte(1)
		for j := range xs {
			if i == j {
				continue
			}
			if xs[i] == xs[j] {
				panic("gf256: LagrangeCoeffs duplicate x coordinate")
			}
			num = Mul(num, at^xs[j])
			den = Mul(den, xs[i]^xs[j])
		}
		out[i] = Div(num, den)
	}
	return out
}
