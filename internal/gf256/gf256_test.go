package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXOR(t *testing.T) {
	if Add(0x53, 0xCA) != 0x53^0xCA {
		t.Fatalf("Add(0x53, 0xCA) = %#x, want %#x", Add(0x53, 0xCA), 0x53^0xCA)
	}
}

func TestMulKnownVectors(t *testing.T) {
	// Vectors from FIPS-197 (AES uses the same field).
	cases := []struct{ a, b, want byte }{
		{0x57, 0x83, 0xC1},
		{0x57, 0x13, 0xFE},
		{0x02, 0x87, 0x15},
		{0x00, 0xFF, 0x00},
		{0x01, 0xAB, 0xAB},
		{0xFF, 0x01, 0xFF},
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%#x, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestMulCommutative(t *testing.T) {
	if err := quick.Check(func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAssociative(t *testing.T) {
	if err := quick.Check(func(a, b, c byte) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributive(t *testing.T) {
	if err := quick.Check(func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestInvExhaustive(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if Mul(byte(a), inv) != 1 {
			t.Fatalf("Inv(%#x) = %#x but product is %#x", a, inv, Mul(byte(a), inv))
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestDivZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div(x, 0) did not panic")
		}
	}()
	Div(1, 0)
}

func TestDivMulRoundTrip(t *testing.T) {
	if err := quick.Check(func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Mul(Div(a, b), b) == a
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Exp(Log(byte(a))) != byte(a) {
			t.Fatalf("Exp(Log(%#x)) != %#x", a, a)
		}
	}
}

func TestGeneratorHasFullOrder(t *testing.T) {
	seen := make(map[byte]bool)
	x := byte(1)
	for i := 0; i < 255; i++ {
		if seen[x] {
			t.Fatalf("generator cycle shorter than 255: repeat at step %d", i)
		}
		seen[x] = true
		x = Mul(x, Generator)
	}
	if x != 1 {
		t.Fatalf("generator^255 = %#x, want 1", x)
	}
}

func TestPow(t *testing.T) {
	cases := []struct {
		a    byte
		e    int
		want byte
	}{
		{0x02, 0, 1},
		{0x02, 1, 0x02},
		{0x02, 8, 0x1B}, // x^8 = poly remainder
		{0x00, 0, 1},
		{0x00, 5, 0},
		{0x03, 255, 1},
	}
	for _, c := range cases {
		if got := Pow(c.a, c.e); got != c.want {
			t.Errorf("Pow(%#x, %d) = %#x, want %#x", c.a, c.e, got, c.want)
		}
	}
	// Negative exponent inverts.
	for a := 1; a < 256; a++ {
		if Pow(byte(a), -1) != Inv(byte(a)) {
			t.Fatalf("Pow(%#x, -1) != Inv", a)
		}
	}
}

func TestPowMatchesRepeatedMul(t *testing.T) {
	for a := 0; a < 256; a += 7 {
		acc := byte(1)
		for e := 0; e < 20; e++ {
			if got := Pow(byte(a), e); got != acc {
				t.Fatalf("Pow(%#x, %d) = %#x, want %#x", a, e, got, acc)
			}
			acc = Mul(acc, byte(a))
		}
	}
}

func TestMulSlice(t *testing.T) {
	src := []byte{1, 2, 3, 0, 255}
	dst := []byte{10, 20, 30, 40, 50}
	want := make([]byte, len(src))
	for i := range src {
		want[i] = dst[i] ^ Mul(0x5A, src[i])
	}
	MulSlice(0x5A, src, dst)
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("MulSlice mismatch at %d: got %#x want %#x", i, dst[i], want[i])
		}
	}
}

func TestMulSliceSpecialCoefficients(t *testing.T) {
	src := []byte{7, 8, 9}
	dst := []byte{1, 2, 3}
	MulSlice(0, src, dst)
	if dst[0] != 1 || dst[1] != 2 || dst[2] != 3 {
		t.Fatal("MulSlice with c=0 modified dst")
	}
	MulSlice(1, src, dst)
	if dst[0] != 1^7 || dst[1] != 2^8 || dst[2] != 3^9 {
		t.Fatal("MulSlice with c=1 is not plain XOR")
	}
}

func TestMulSliceAssign(t *testing.T) {
	src := []byte{0x12, 0x00, 0xFF}
	dst := make([]byte, 3)
	MulSliceAssign(0x37, src, dst)
	for i := range src {
		if dst[i] != Mul(0x37, src[i]) {
			t.Fatalf("MulSliceAssign mismatch at %d", i)
		}
	}
	MulSliceAssign(0, src, dst)
	for i := range dst {
		if dst[i] != 0 {
			t.Fatal("MulSliceAssign with c=0 did not zero dst")
		}
	}
	MulSliceAssign(1, src, dst)
	for i := range dst {
		if dst[i] != src[i] {
			t.Fatal("MulSliceAssign with c=1 did not copy")
		}
	}
}

func TestMulSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulSlice length mismatch did not panic")
		}
	}()
	MulSlice(1, []byte{1}, []byte{1, 2})
}

func TestEvalPoly(t *testing.T) {
	// f(x) = 5 + 3x + 7x^2
	coeffs := []byte{5, 3, 7}
	for _, x := range []byte{0, 1, 2, 100, 255} {
		want := Add(Add(5, Mul(3, x)), Mul(7, Mul(x, x)))
		if got := EvalPoly(coeffs, x); got != want {
			t.Errorf("EvalPoly at %#x = %#x, want %#x", x, got, want)
		}
	}
	if EvalPoly(nil, 9) != 0 {
		t.Error("EvalPoly(nil) != 0")
	}
	if EvalPoly(coeffs, 0) != 5 {
		t.Error("EvalPoly at 0 is not the constant term")
	}
}

func TestInterpolateRecoversPolynomial(t *testing.T) {
	coeffs := []byte{0xAB, 0x13, 0x99, 0x42} // degree 3
	xs := []byte{1, 2, 3, 4}
	ys := make([]byte, len(xs))
	for i, x := range xs {
		ys[i] = EvalPoly(coeffs, x)
	}
	// Interpolating at 0 recovers the constant term (the Shamir secret).
	if got := Interpolate(xs, ys, 0); got != 0xAB {
		t.Fatalf("Interpolate at 0 = %#x, want 0xAB", got)
	}
	// And at any other point it agrees with the polynomial.
	for _, at := range []byte{5, 77, 200} {
		if got, want := Interpolate(xs, ys, at), EvalPoly(coeffs, at); got != want {
			t.Fatalf("Interpolate at %#x = %#x, want %#x", at, got, want)
		}
	}
}

func TestInterpolateDuplicateXPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate x did not panic")
		}
	}()
	Interpolate([]byte{1, 1}, []byte{2, 3}, 0)
}

func TestLagrangeCoeffsMatchInterpolate(t *testing.T) {
	coeffs := []byte{0x5C, 0xD2, 0x08}
	xs := []byte{3, 9, 27}
	ys := make([]byte, len(xs))
	for i, x := range xs {
		ys[i] = EvalPoly(coeffs, x)
	}
	lc := LagrangeCoeffs(xs, 0)
	var acc byte
	for i := range lc {
		acc ^= Mul(lc[i], ys[i])
	}
	if acc != coeffs[0] {
		t.Fatalf("LagrangeCoeffs reconstruction = %#x, want %#x", acc, coeffs[0])
	}
	// Basis property: Σ l_i(at) · x_i^k == at^k for k < len(xs).
	at := byte(17)
	lc = LagrangeCoeffs(xs, at)
	for k := 0; k < len(xs); k++ {
		var sum byte
		for i := range xs {
			sum ^= Mul(lc[i], Pow(xs[i], k))
		}
		if sum != Pow(at, k) {
			t.Fatalf("basis property failed for k=%d", k)
		}
	}
}

func BenchmarkMul(b *testing.B) {
	var acc byte
	for i := 0; i < b.N; i++ {
		acc ^= Mul(byte(i), byte(i>>8)|1)
	}
	_ = acc
}

func BenchmarkMulSlice4K(b *testing.B) {
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i * 31)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulSlice(0xA7, src, dst)
	}
}
