package gf256

// This file holds the table-driven bulk kernels that the coding layers
// (rs, shamir, packed, lrss, aont via rs) run their hot loops on. The
// scalar MulSlice/MulSliceAssign in gf256.go are retained unchanged as a
// reference oracle; the kernels here are differentially tested against
// them and exist purely for throughput:
//
//   - A full 64 KiB product table (256 rows of 256 bytes) is built once,
//     lazily, so every coefficient's multiplication table is a pointer
//     into shared memory — MulTable(c) never allocates.
//   - The multiply kernels are branch-free per byte: one table load per
//     byte, no zero checks, with results assembled into 8-byte words so
//     the destination is read and written one uint64 at a time.
//   - The XOR path (coefficient 1, Horner accumulation, share refresh)
//     processes 8-byte words directly.
//
// All kernels tolerate src == dst exactly aliased (the Horner in-place
// pattern); partially overlapping slices are not supported, matching the
// scalar functions.

import (
	"encoding/binary"
	"fmt"
	"sync"
)

var (
	fullTableOnce sync.Once
	fullTable     *[256][256]byte
)

// buildFullTable constructs the 64 KiB table of all pairwise products.
// Row 0 is all zeros; row 1 is the identity permutation.
func buildFullTable() {
	var t [256][256]byte
	for c := 1; c < 256; c++ {
		lc := int(logTable[c])
		row := &t[c]
		for s := 1; s < 256; s++ {
			row[s] = expTable[lc+int(logTable[s])]
		}
	}
	fullTable = &t
}

// MulTable returns the 256-byte multiplication table for coefficient c:
// MulTable(c)[x] == Mul(c, x) for all x. The returned pointer aliases a
// lazily built, cached 64 KiB full table shared by all callers; callers
// that apply the same coefficient repeatedly (generator-matrix rows,
// Lagrange coefficients) hold on to the pointer and feed it to
// MulSliceWith / MulSliceAssignWith.
func MulTable(c byte) *[256]byte {
	fullTableOnce.Do(buildFullTable)
	return &fullTable[c]
}

// AddSlice computes dst[i] ^= src[i] for all i — GF(2^8) vector addition
// — processing 8-byte words. It panics if len(dst) != len(src).
func AddSlice(src, dst []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf256: AddSlice length mismatch %d != %d", len(dst), len(src)))
	}
	addSlice(src, dst)
}

func addSlice(src, dst []byte) {
	i := 0
	for ; i+16 <= len(src); i += 16 {
		s := src[i : i+16 : i+16]
		d := dst[i : i+16 : i+16]
		binary.LittleEndian.PutUint64(d[0:8], binary.LittleEndian.Uint64(d[0:8])^binary.LittleEndian.Uint64(s[0:8]))
		binary.LittleEndian.PutUint64(d[8:16], binary.LittleEndian.Uint64(d[8:16])^binary.LittleEndian.Uint64(s[8:16]))
	}
	for ; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}

// MulSliceWith computes dst[i] ^= tab[src[i]] using a table obtained from
// MulTable. It is the raw accumulate kernel for callers that cache
// per-coefficient tables; MulSliceTable wraps it with the 0/1 fast paths.
// It panics if len(dst) != len(src).
func MulSliceWith(tab *[256]byte, src, dst []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf256: MulSliceWith length mismatch %d != %d", len(dst), len(src)))
	}
	i := 0
	for ; i+16 <= len(src); i += 16 {
		s := src[i : i+16 : i+16]
		v0 := uint64(tab[s[0]]) | uint64(tab[s[1]])<<8 | uint64(tab[s[2]])<<16 | uint64(tab[s[3]])<<24 |
			uint64(tab[s[4]])<<32 | uint64(tab[s[5]])<<40 | uint64(tab[s[6]])<<48 | uint64(tab[s[7]])<<56
		v1 := uint64(tab[s[8]]) | uint64(tab[s[9]])<<8 | uint64(tab[s[10]])<<16 | uint64(tab[s[11]])<<24 |
			uint64(tab[s[12]])<<32 | uint64(tab[s[13]])<<40 | uint64(tab[s[14]])<<48 | uint64(tab[s[15]])<<56
		d := dst[i : i+16 : i+16]
		binary.LittleEndian.PutUint64(d[0:8], binary.LittleEndian.Uint64(d[0:8])^v0)
		binary.LittleEndian.PutUint64(d[8:16], binary.LittleEndian.Uint64(d[8:16])^v1)
	}
	for ; i < len(src); i++ {
		dst[i] ^= tab[src[i]]
	}
}

// MulSliceAssignWith computes dst[i] = tab[src[i]], the overwrite variant
// of MulSliceWith. It panics if len(dst) != len(src).
func MulSliceAssignWith(tab *[256]byte, src, dst []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf256: MulSliceAssignWith length mismatch %d != %d", len(dst), len(src)))
	}
	i := 0
	for ; i+16 <= len(src); i += 16 {
		s := src[i : i+16 : i+16]
		v0 := uint64(tab[s[0]]) | uint64(tab[s[1]])<<8 | uint64(tab[s[2]])<<16 | uint64(tab[s[3]])<<24 |
			uint64(tab[s[4]])<<32 | uint64(tab[s[5]])<<40 | uint64(tab[s[6]])<<48 | uint64(tab[s[7]])<<56
		v1 := uint64(tab[s[8]]) | uint64(tab[s[9]])<<8 | uint64(tab[s[10]])<<16 | uint64(tab[s[11]])<<24 |
			uint64(tab[s[12]])<<32 | uint64(tab[s[13]])<<40 | uint64(tab[s[14]])<<48 | uint64(tab[s[15]])<<56
		d := dst[i : i+16 : i+16]
		binary.LittleEndian.PutUint64(d[0:8], v0)
		binary.LittleEndian.PutUint64(d[8:16], v1)
	}
	for ; i < len(src); i++ {
		dst[i] = tab[src[i]]
	}
}

// MulSliceTable computes dst[i] ^= c * src[i], the table-driven
// replacement for MulSlice. Coefficients 0 and 1 take the no-op and
// word-XOR fast paths. It panics if len(dst) != len(src).
func MulSliceTable(c byte, src, dst []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf256: MulSliceTable length mismatch %d != %d", len(dst), len(src)))
	}
	switch c {
	case 0:
		return
	case 1:
		addSlice(src, dst)
	default:
		MulSliceWith(MulTable(c), src, dst)
	}
}

// MulSliceAssignTable computes dst[i] = c * src[i], the table-driven
// replacement for MulSliceAssign. It panics if len(dst) != len(src).
func MulSliceAssignTable(c byte, src, dst []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf256: MulSliceAssignTable length mismatch %d != %d", len(dst), len(src)))
	}
	switch c {
	case 0:
		clear(dst)
	case 1:
		copy(dst, src)
	default:
		MulSliceAssignWith(MulTable(c), src, dst)
	}
}
