package gf256

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkGF256Kernels compares the seed scalar kernels against the
// table-driven replacements across payload sizes. MB/s via b.SetBytes is
// the figure the §3.2 re-derivation in cmd/papereval consumes.
func BenchmarkGF256Kernels(b *testing.B) {
	sizes := []int{1 << 10, 64 << 10, 1 << 20}
	for _, n := range sizes {
		src := make([]byte, n)
		dst := make([]byte, n)
		rand.New(rand.NewSource(int64(n))).Read(src)
		label := fmt.Sprintf("%dKiB", n>>10)
		b.Run("scalar/"+label, func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				MulSlice(0x8e, src, dst)
			}
		})
		b.Run("table/"+label, func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				MulSliceTable(0x8e, src, dst)
			}
		})
		b.Run("assign-scalar/"+label, func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				MulSliceAssign(0x8e, src, dst)
			}
		})
		b.Run("assign-table/"+label, func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				MulSliceAssignTable(0x8e, src, dst)
			}
		})
		b.Run("xor-scalar/"+label, func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				MulSlice(1, src, dst)
			}
		})
		b.Run("xor-word/"+label, func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				AddSlice(src, dst)
			}
		})
	}
}
