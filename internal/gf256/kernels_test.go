package gf256

import (
	"bytes"
	crand "crypto/rand"
	"encoding/binary"
	"math/rand"
	"testing"
)

// TestMulTableMatchesMul checks every entry of the cached full table
// against the scalar oracle.
func TestMulTableMatchesMul(t *testing.T) {
	for c := 0; c < 256; c++ {
		tab := MulTable(byte(c))
		for x := 0; x < 256; x++ {
			if got, want := tab[x], Mul(byte(c), byte(x)); got != want {
				t.Fatalf("MulTable(%d)[%d] = %d, want %d", c, x, got, want)
			}
		}
	}
}

// TestMulSliceTableDifferential fuzzes the table kernels against the
// scalar MulSlice/MulSliceAssign oracle on random coefficients and
// lengths 0–4096, including unaligned word tails and odd base offsets.
// The fixed seed keeps the suite deterministic; the FreshSeed variant
// below walks new inputs every run.
func TestMulSliceTableDifferential(t *testing.T) {
	runMulSliceDifferential(t, rand.New(rand.NewSource(1)))
}

// TestMulSliceTableDifferentialFreshSeed runs the same differential
// oracle on a seed drawn fresh each run, so CI keeps extending the
// input coverage forever. The seed is logged: on failure, reproduce by
// substituting it into rand.NewSource.
func TestMulSliceTableDifferentialFreshSeed(t *testing.T) {
	var b [8]byte
	crand.Read(b[:])
	seed := int64(binary.LittleEndian.Uint64(b[:]) &^ (1 << 63))
	t.Logf("differential seed: %d", seed)
	runMulSliceDifferential(t, rand.New(rand.NewSource(seed)))
}

func runMulSliceDifferential(t *testing.T, rng *rand.Rand) {
	t.Helper()
	lengths := []int{0, 1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 100, 255, 256, 1000, 4095, 4096}
	for trial := 0; trial < 50; trial++ {
		lengths = append(lengths, rng.Intn(4097))
	}
	for _, n := range lengths {
		// Offset the slices so word loops see unaligned bases too.
		off := rng.Intn(8)
		buf := make([]byte, n+off)
		src := buf[off:]
		rng.Read(src)
		coeffs := []byte{0, 1, 2, byte(rng.Intn(256)), byte(rng.Intn(256)), 255}
		for _, c := range coeffs {
			base := make([]byte, n)
			rng.Read(base)

			want := append([]byte(nil), base...)
			MulSlice(c, src, want)
			got := append([]byte(nil), base...)
			MulSliceTable(c, src, got)
			if !bytes.Equal(got, want) {
				t.Fatalf("MulSliceTable(c=%d, n=%d) diverges from MulSlice", c, n)
			}

			want = append([]byte(nil), base...)
			MulSliceAssign(c, src, want)
			got = append([]byte(nil), base...)
			MulSliceAssignTable(c, src, got)
			if !bytes.Equal(got, want) {
				t.Fatalf("MulSliceAssignTable(c=%d, n=%d) diverges from MulSliceAssign", c, n)
			}

			if c != 0 {
				want = append([]byte(nil), base...)
				MulSlice(c, src, want)
				got = append([]byte(nil), base...)
				MulSliceWith(MulTable(c), src, got)
				if !bytes.Equal(got, want) {
					t.Fatalf("MulSliceWith(c=%d, n=%d) diverges from MulSlice", c, n)
				}
			}
		}
	}
}

// TestMulSliceAssignTableAliased exercises the in-place Horner pattern:
// src and dst are the same slice.
func TestMulSliceAssignTableAliased(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 8, 17, 256, 4095} {
		for _, c := range []byte{0, 1, 3, 0x8e, 255} {
			buf := make([]byte, n)
			rng.Read(buf)
			want := append([]byte(nil), buf...)
			MulSliceAssign(c, want, want)
			MulSliceAssignTable(c, buf, buf)
			if !bytes.Equal(buf, want) {
				t.Fatalf("aliased MulSliceAssignTable(c=%d, n=%d) diverges", c, n)
			}
		}
	}
}

// TestAddSlice checks the word-wise XOR kernel against a byte loop.
func TestAddSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 7, 8, 9, 16, 17, 100, 4095, 4096} {
		src := make([]byte, n)
		dst := make([]byte, n)
		rng.Read(src)
		rng.Read(dst)
		want := make([]byte, n)
		for i := range want {
			want[i] = dst[i] ^ src[i]
		}
		AddSlice(src, dst)
		if !bytes.Equal(dst, want) {
			t.Fatalf("AddSlice(n=%d) diverges from byte loop", n)
		}
	}
	// Self-XOR zeroes.
	buf := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	AddSlice(buf, buf)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("AddSlice(x, x)[%d] = %d, want 0", i, b)
		}
	}
}

// TestKernelLengthMismatchPanics preserves the scalar functions' panic
// contract.
func TestKernelLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"AddSlice":            func() { AddSlice(make([]byte, 3), make([]byte, 4)) },
		"MulSliceTable":       func() { MulSliceTable(2, make([]byte, 3), make([]byte, 4)) },
		"MulSliceAssignTable": func() { MulSliceAssignTable(2, make([]byte, 3), make([]byte, 4)) },
		"MulSliceWith":        func() { MulSliceWith(MulTable(2), make([]byte, 3), make([]byte, 4)) },
		"MulSliceAssignWith":  func() { MulSliceAssignWith(MulTable(2), make([]byte, 3), make([]byte, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}
