// Package group provides a prime-order subgroup of Z_p^* (a Schnorr group)
// for the discrete-log-based commitments used by the vss and tstamp
// packages.
//
// A Group exposes the safe prime p = 2q+1, the subgroup order q, and two
// generators g and h of the order-q subgroup of quadratic residues whose
// relative discrete logarithm is unknown (h is derived by hashing into the
// group). Pedersen commitments computed over such a group are perfectly
// (information-theoretically) hiding and computationally binding — the
// property LINCOS exploits to keep timestamped data confidential against
// unbounded adversaries.
//
// Two instances are provided: Default (the 2048-bit MODP group from RFC
// 3526, whose modulus is a safe prime) for production-sized benchmarks,
// and Test (a deterministically generated 256-bit group) for fast unit
// tests. All arithmetic is math/big; this repository is stdlib-only by
// design.
package group

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
)

// ErrNotInGroup is returned when an element fails subgroup membership.
var ErrNotInGroup = errors.New("group: element not in prime-order subgroup")

// Group is a prime-order-q subgroup of Z_p^*, p = 2q+1.
type Group struct {
	P *big.Int // safe prime modulus
	Q *big.Int // subgroup order, (P-1)/2
	G *big.Int // generator of the order-q subgroup
	H *big.Int // second generator with unknown log_G(H)
}

var (
	one = big.NewInt(1)
	two = big.NewInt(2)
)

// rfc3526Prime2048 is the 2048-bit MODP group modulus (RFC 3526 §3),
// a safe prime: p = 2^2048 - 2^1984 - 1 + 2^64 * ( [2^1918 pi] + 124476 ).
const rfc3526Prime2048 = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
	"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
	"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
	"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
	"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D" +
	"C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F" +
	"83655D23DCA3AD961C62F356208552BB9ED529077096966D" +
	"670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B" +
	"E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9" +
	"DE2BCBF6955817183995497CEA956AE515D2261898FA0510" +
	"15728E5A8AACAA68FFFFFFFFFFFFFFFF"

var (
	defaultOnce  sync.Once
	defaultGroup *Group
	testOnce     sync.Once
	testGroup    *Group
)

// Default returns the production group: the RFC 3526 2048-bit safe-prime
// modulus with g = 4 (a quadratic residue, hence of order q) and h derived
// by hashing into the group. The same instance is returned on every call.
func Default() *Group {
	defaultOnce.Do(func() {
		p, ok := new(big.Int).SetString(rfc3526Prime2048, 16)
		if !ok {
			panic("group: bad built-in prime constant")
		}
		defaultGroup = fromSafePrime(p)
	})
	return defaultGroup
}

// Test returns a small (256-bit) group generated deterministically, for
// unit tests where 2048-bit exponentiations would dominate runtime. Its
// parameters are far too small for real security. The same instance is
// returned on every call.
func Test() *Group {
	testOnce.Do(func() {
		// Deterministic search: find the first safe prime p = 2q+1 with q
		// prime, scanning odd candidates from a fixed 256-bit start.
		q := new(big.Int).Lsh(one, 254)
		q.Add(q, big.NewInt(297)) // fixed offset; makes q odd
		for {
			if q.ProbablyPrime(32) {
				p := new(big.Int).Lsh(q, 1)
				p.Add(p, one)
				if p.ProbablyPrime(32) {
					testGroup = fromSafePrime(p)
					return
				}
			}
			q.Add(q, two)
		}
	})
	return testGroup
}

// fromSafePrime builds a Group from a safe prime p, with g = 4 and h
// hashed into the quadratic-residue subgroup.
func fromSafePrime(p *big.Int) *Group {
	q := new(big.Int).Sub(p, one)
	q.Rsh(q, 1)
	g := big.NewInt(4) // 2^2: a QR, so order divides q; q prime and g != 1 → order q
	// Derive h with an unknown discrete log: hash a domain tag to bytes,
	// reduce mod p, square to land in QR(p). Nothing-up-my-sleeve.
	seed := sha256.Sum256([]byte("securearchive/group h-generator v1"))
	hBase := new(big.Int).SetBytes(seed[:])
	for {
		h := new(big.Int).Exp(hBase, two, p)
		if h.Cmp(one) != 0 && h.Cmp(g) != 0 {
			return &Group{P: p, Q: q, G: g, H: h}
		}
		hBase.Add(hBase, one)
	}
}

// RandScalar returns a uniformly random element of Z_q read from rnd.
func (gr *Group) RandScalar(rnd io.Reader) (*big.Int, error) {
	// Rejection sampling over ceil(len(q) bits) keeps the output uniform.
	byteLen := (gr.Q.BitLen() + 7) / 8
	excess := byteLen*8 - gr.Q.BitLen()
	buf := make([]byte, byteLen)
	for {
		if _, err := io.ReadFull(rnd, buf); err != nil {
			return nil, fmt.Errorf("group: reading randomness: %w", err)
		}
		buf[0] &= 0xFF >> excess
		k := new(big.Int).SetBytes(buf)
		if k.Cmp(gr.Q) < 0 {
			return k, nil
		}
	}
}

// Exp returns base^e mod p.
func (gr *Group) Exp(base, e *big.Int) *big.Int {
	return new(big.Int).Exp(base, e, gr.P)
}

// ExpG returns g^e mod p.
func (gr *Group) ExpG(e *big.Int) *big.Int { return gr.Exp(gr.G, e) }

// ExpH returns h^e mod p.
func (gr *Group) ExpH(e *big.Int) *big.Int { return gr.Exp(gr.H, e) }

// Mul returns a*b mod p.
func (gr *Group) Mul(a, b *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Mul(a, b), gr.P)
}

// Contains reports whether x is a member of the order-q subgroup:
// 0 < x < p and x^q ≡ 1 (mod p).
func (gr *Group) Contains(x *big.Int) bool {
	if x == nil || x.Sign() <= 0 || x.Cmp(gr.P) >= 0 {
		return false
	}
	return new(big.Int).Exp(x, gr.Q, gr.P).Cmp(one) == 0
}

// ReduceScalar maps arbitrary bytes to a scalar in Z_q. Used to embed
// secrets and message digests into the exponent field. The reduction is
// not uniform for inputs near q but is injective for inputs shorter than
// q's byte length, which is how the vss package embeds bounded secrets.
func (gr *Group) ReduceScalar(b []byte) *big.Int {
	return new(big.Int).Mod(new(big.Int).SetBytes(b), gr.Q)
}

// ScalarCapacity returns the number of bytes that can be embedded into a
// scalar losslessly (one less than q's byte length).
func (gr *Group) ScalarCapacity() int {
	return (gr.Q.BitLen()+7)/8 - 1
}
