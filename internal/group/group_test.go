package group

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"
)

func TestTestGroupParameters(t *testing.T) {
	g := Test()
	// p = 2q + 1
	p2 := new(big.Int).Lsh(g.Q, 1)
	p2.Add(p2, big.NewInt(1))
	if p2.Cmp(g.P) != 0 {
		t.Fatal("p != 2q+1")
	}
	if !g.P.ProbablyPrime(32) || !g.Q.ProbablyPrime(32) {
		t.Fatal("p or q not prime")
	}
	if g.P.BitLen() != 256 {
		t.Fatalf("test group has %d-bit p, want 256", g.P.BitLen())
	}
}

func TestDefaultGroupParameters(t *testing.T) {
	if testing.Short() {
		t.Skip("2048-bit primality checks are slow")
	}
	g := Default()
	if g.P.BitLen() != 2048 {
		t.Fatalf("default p is %d bits, want 2048", g.P.BitLen())
	}
	p2 := new(big.Int).Lsh(g.Q, 1)
	p2.Add(p2, big.NewInt(1))
	if p2.Cmp(g.P) != 0 {
		t.Fatal("p != 2q+1")
	}
	if !g.P.ProbablyPrime(16) || !g.Q.ProbablyPrime(16) {
		t.Fatal("RFC 3526 modulus failed primality check")
	}
}

func TestGeneratorsHaveOrderQ(t *testing.T) {
	g := Test()
	if !g.Contains(g.G) {
		t.Fatal("G not in subgroup")
	}
	if !g.Contains(g.H) {
		t.Fatal("H not in subgroup")
	}
	if g.G.Cmp(g.H) == 0 {
		t.Fatal("G == H")
	}
	one := big.NewInt(1)
	if g.G.Cmp(one) == 0 || g.H.Cmp(one) == 0 {
		t.Fatal("degenerate generator")
	}
}

func TestContainsRejects(t *testing.T) {
	g := Test()
	if g.Contains(big.NewInt(0)) {
		t.Error("0 accepted")
	}
	if g.Contains(new(big.Int).Neg(big.NewInt(3))) {
		t.Error("negative accepted")
	}
	if g.Contains(g.P) {
		t.Error("p accepted")
	}
	// A non-residue: -1 mod p = p-1 has order 2, not q.
	pm1 := new(big.Int).Sub(g.P, big.NewInt(1))
	if g.Contains(pm1) {
		t.Error("p-1 (order 2) accepted")
	}
	if g.Contains(nil) {
		t.Error("nil accepted")
	}
}

func TestRandScalarRange(t *testing.T) {
	g := Test()
	for i := 0; i < 100; i++ {
		k, err := g.RandScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if k.Sign() < 0 || k.Cmp(g.Q) >= 0 {
			t.Fatalf("scalar out of range: %v", k)
		}
	}
}

func TestExpHomomorphism(t *testing.T) {
	g := Test()
	a, _ := g.RandScalar(rand.Reader)
	b, _ := g.RandScalar(rand.Reader)
	// g^a * g^b == g^(a+b mod q)
	lhs := g.Mul(g.ExpG(a), g.ExpG(b))
	sum := new(big.Int).Add(a, b)
	sum.Mod(sum, g.Q)
	rhs := g.ExpG(sum)
	if lhs.Cmp(rhs) != 0 {
		t.Fatal("exponent homomorphism broken")
	}
}

func TestExpIdentity(t *testing.T) {
	g := Test()
	if g.ExpG(big.NewInt(0)).Cmp(big.NewInt(1)) != 0 {
		t.Fatal("g^0 != 1")
	}
	if g.ExpG(g.Q).Cmp(big.NewInt(1)) != 0 {
		t.Fatal("g^q != 1: generator order is not q")
	}
	if g.ExpH(g.Q).Cmp(big.NewInt(1)) != 0 {
		t.Fatal("h^q != 1")
	}
}

func TestReduceScalarEmbedsLosslessly(t *testing.T) {
	g := Test()
	cap := g.ScalarCapacity()
	if cap < 16 {
		t.Fatalf("test group capacity %d too small", cap)
	}
	msg := make([]byte, cap)
	for i := range msg {
		msg[i] = byte(i*7 + 1)
	}
	s := g.ReduceScalar(msg)
	// Recover: the embedded value must round-trip through Bytes().
	got := s.Bytes()
	// Strip leading zeros from msg for comparison.
	want := new(big.Int).SetBytes(msg).Bytes()
	if !bytes.Equal(got, want) {
		t.Fatal("scalar embedding is lossy within capacity")
	}
}

func TestDeterministicInstances(t *testing.T) {
	if Test() != Test() {
		t.Fatal("Test() returned different instances")
	}
	if Default() != Default() {
		t.Fatal("Default() returned different instances")
	}
	if Test().P.Cmp(Default().P) == 0 {
		t.Fatal("test and default groups identical")
	}
}

func BenchmarkExpTestGroup(b *testing.B) {
	g := Test()
	k, _ := g.RandScalar(rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ExpG(k)
	}
}

func BenchmarkExpDefaultGroup(b *testing.B) {
	g := Default()
	k, _ := g.RandScalar(rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ExpG(k)
	}
}
