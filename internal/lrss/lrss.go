// Package lrss implements leakage-resilient secret sharing (LRSS) and the
// local-leakage attack on Shamir's scheme that motivates it (§4 of the
// paper, citing Benhamouda, Degwekar, Ishai & Rabin).
//
// # The attack
//
// Shamir sharing over a characteristic-2 field is GF(2)-linear: with
// threshold t = 2, share_i = s ⊕ c·x_i, and every output *bit* of a share
// is a GF(2)-linear function of the bits of s and c. An adversary who
// leaks just ONE bit from each share — never holding any complete share,
// thus never violating the threshold — collects linear equations over the
// 16 unknown bits (8 of s, 8 of c). With ~16+ shares the system solves,
// and the full secret byte falls out. LeakAttackShamir implements this
// end-to-end with Gaussian elimination over GF(2).
//
// # The defence
//
// An LRSS scheme wraps each Shamir share in an extractor-based encoding
// (Srinivasan–Vasudevan style): party i stores a random source w_i and
// the masked share sh_i ⊕ Ext(w_i; s_i), while the extractor seed s_i is
// itself Shamir-shared across the *other* parties. A bounded-output local
// leakage function applied to party i's state sees w_i only through ℓ
// bits, so by the leftover hash lemma Ext(w_i; s_i) stays ε-close to
// uniform and the mask survives. The price — visible in Figure 1 — is
// storage: each party additionally carries n seed shares, pushing
// per-party cost from L to Θ(n·L).
package lrss

import (
	"errors"
	"fmt"
	"io"

	"securearchive/internal/gf256"
	"securearchive/internal/shamir"
)

// Errors returned by this package.
var (
	ErrInvalidParams = errors.New("lrss: invalid parameters")
	ErrTooFewShares  = errors.New("lrss: not enough shares")
	ErrUnsolvable    = errors.New("lrss: leakage system is underdetermined")
	ErrShapeMismatch = errors.New("lrss: share shape mismatch")
)

// ---------------------------------------------------------------------
// Local-leakage attack on Shamir over GF(2^8), threshold 2.
// ---------------------------------------------------------------------

// mulBitMatrix returns the 8x8 GF(2) matrix M such that for all v,
// bits(x·v) = M · bits(v), i.e. row r, column c is bit r of x·2^c.
func mulBitMatrix(x byte) [8]byte {
	var m [8]byte // m[r] is row r as a bitmask over columns
	for c := 0; c < 8; c++ {
		prod := gf256.Mul(x, 1<<c)
		for r := 0; r < 8; r++ {
			if prod&(1<<r) != 0 {
				m[r] |= 1 << c
			}
		}
	}
	return m
}

// LeakBit is one observed leakage: bit number Bit (0 = LSB) of the share
// held at evaluation point X.
type LeakBit struct {
	X   byte
	Bit int
	Val byte // 0 or 1
}

// LeakFromShare extracts the given bit of the share's payload byte at
// position pos — the adversary's ℓ=1 local leakage function.
func LeakFromShare(s shamir.Share, pos, bit int) LeakBit {
	return LeakBit{X: s.X, Bit: bit, Val: (s.Payload[pos] >> bit) & 1}
}

// LeakAttackShamir recovers one secret byte of a threshold-2 Shamir
// sharing from single-bit leakages. Each leak of bit b from the share at
// point x yields the GF(2) equation
//
//	s_b ⊕ Σ_j M(x)[b][j]·c_j = leaked bit
//
// over unknowns s_0..s_7, c_0..c_7. Sixteen independent equations solve
// the system; the function returns the recovered secret byte. It returns
// ErrUnsolvable when the provided leaks do not determine the secret
// (fewer than 16 independent equations — e.g. all leaks from the same bit
// position pin down only that one secret bit).
func LeakAttackShamir(leaks []LeakBit) (byte, error) {
	const nvars = 16 // s bits 0..7, c bits 8..15
	rows := make([]uint32, 0, len(leaks))
	// Row layout: bits 0..15 coefficients, bit 16 RHS.
	for _, lk := range leaks {
		if lk.Bit < 0 || lk.Bit > 7 || lk.X == 0 {
			return 0, fmt.Errorf("%w: bad leak (x=%d bit=%d)", ErrInvalidParams, lk.X, lk.Bit)
		}
		m := mulBitMatrix(lk.X)
		var row uint32
		row |= 1 << lk.Bit               // coefficient of s_{bit}
		row |= uint32(m[lk.Bit]) << 8    // coefficients of c_j
		row |= uint32(lk.Val&1) << nvars // RHS
		rows = append(rows, row)
	}
	// Gaussian elimination over GF(2).
	rank := 0
	for col := 0; col < nvars && rank < len(rows); col++ {
		pivot := -1
		for r := rank; r < len(rows); r++ {
			if rows[r]&(1<<col) != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			continue
		}
		rows[rank], rows[pivot] = rows[pivot], rows[rank]
		for r := 0; r < len(rows); r++ {
			if r != rank && rows[r]&(1<<col) != 0 {
				rows[r] ^= rows[rank]
			}
		}
		rank++
	}
	// Check consistency and full determination of s bits.
	var secret byte
	determined := 0
	for r := 0; r < rank; r++ {
		row := rows[r]
		coef := row & 0xFFFF
		// A fully reduced pivot row with a single s-coefficient and no
		// c-coefficients determines one secret bit.
		if coef != 0 && coef < 256 && coef&(coef-1) == 0 {
			bit := trailingZeros16(uint16(coef))
			if row>>nvars&1 == 1 {
				secret |= 1 << bit
			}
			determined++
		}
	}
	if determined < 8 {
		return 0, fmt.Errorf("%w: determined %d/8 secret bits from %d leaks", ErrUnsolvable, determined, len(leaks))
	}
	return secret, nil
}

// LeakAttackShamirPayload extends the attack to multi-byte secrets: the
// byte positions of a byte-parallel Shamir sharing are independent
// sharings, so an adversary whose per-share leakage budget is one bit
// *per payload byte* (ℓ = payloadLen bits of local leakage per share —
// still far below the 8·payloadLen bits a full share holds) recovers the
// entire payload. leakBitAt(x, pos) must return bit (pos mod 8)... any
// position-dependent bit choice works as long as positions cycle through
// all eight bit indices across shares; this function uses the same
// rotation as the single-byte attack.
func LeakAttackShamirPayload(shares []shamir.Share, payloadLen int) ([]byte, error) {
	if len(shares) == 0 {
		return nil, fmt.Errorf("%w: no shares", ErrInvalidParams)
	}
	out := make([]byte, payloadLen)
	for pos := 0; pos < payloadLen; pos++ {
		leaks := make([]LeakBit, len(shares))
		for i, s := range shares {
			if pos >= len(s.Payload) {
				return nil, fmt.Errorf("%w: payload too short", ErrInvalidParams)
			}
			leaks[i] = LeakFromShare(s, pos, i%8)
		}
		b, err := LeakAttackShamir(leaks)
		if err != nil {
			return nil, fmt.Errorf("byte %d: %w", pos, err)
		}
		out[pos] = b
	}
	return out, nil
}

func trailingZeros16(x uint16) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// ---------------------------------------------------------------------
// LRSS construction.
// ---------------------------------------------------------------------

// Params configures the LRSS scheme.
type Params struct {
	N         int // parties
	T         int // reconstruction threshold (also seed-sharing threshold)
	SourceLen int // length of each party's extractor source w_i, bytes
	// Par bounds the goroutines used by the inner Shamir split/combine
	// calls; <= 0 selects GOMAXPROCS, 1 forces serial.
	Par int
}

// Option configures Combine, which has no Params argument.
type Option func(*config)

type config struct {
	par int
}

// WithParallelism bounds the number of goroutines Combine may use in its
// inner Shamir reconstructions. n <= 0 (the default) selects GOMAXPROCS.
func WithParallelism(n int) Option {
	return func(c *config) { c.par = n }
}

// DefaultSourceLen is the source size granting resilience against tens of
// leaked bits per party with comfortable margin (leftover hash lemma:
// extractable entropy ≈ 8·SourceLen − leakage − 2·log(1/ε)).
const DefaultSourceLen = 64

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.T < 2 || p.T > p.N || p.N > shamir.MaxShares {
		return fmt.Errorf("%w: n=%d t=%d", ErrInvalidParams, p.N, p.T)
	}
	if p.SourceLen < 16 {
		return fmt.Errorf("%w: source length %d < 16", ErrInvalidParams, p.SourceLen)
	}
	return nil
}

// Share is one party's LRSS share.
type Share struct {
	Index  int    // party index, 0-based
	Source []byte // w_i: local extractor source
	Masked []byte // sh_i ⊕ Ext(w_i; s_i)
	// SeedShares[j] is this party's Shamir share of party j's seed.
	SeedShares []shamir.Share
	// Meta
	SecretLen int
	T         byte
}

// Split shares the secret under LRSS.
func Split(secret []byte, p Params, rnd io.Reader) ([]Share, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(secret) == 0 {
		return nil, fmt.Errorf("%w: empty secret", ErrInvalidParams)
	}
	inner, err := shamir.Split(secret, p.N, p.T, rnd, shamir.WithParallelism(p.Par))
	if err != nil {
		return nil, err
	}
	L := len(secret)
	seedLen := L + p.SourceLen - 1 // Toeplitz seed size
	shares := make([]Share, p.N)
	seedShares := make([][]shamir.Share, p.N) // seedShares[i][j]: share j of seed i
	for i := 0; i < p.N; i++ {
		w := make([]byte, p.SourceLen)
		if _, err := io.ReadFull(rnd, w); err != nil {
			return nil, fmt.Errorf("lrss: reading randomness: %w", err)
		}
		seed := make([]byte, seedLen)
		if _, err := io.ReadFull(rnd, seed); err != nil {
			return nil, fmt.Errorf("lrss: reading randomness: %w", err)
		}
		masked := extract(w, seed, L)
		gf256.AddSlice(inner[i].Payload, masked)
		ss, err := shamir.Split(seed, p.N, p.T, rnd, shamir.WithParallelism(p.Par))
		if err != nil {
			return nil, err
		}
		seedShares[i] = ss
		shares[i] = Share{Index: i, Source: w, Masked: masked, SecretLen: L, T: byte(p.T)}
	}
	// Distribute seed shares: party j holds share j of every seed.
	for j := 0; j < p.N; j++ {
		shares[j].SeedShares = make([]shamir.Share, p.N)
		for i := 0; i < p.N; i++ {
			shares[j].SeedShares[i] = seedShares[i][j]
		}
	}
	return shares, nil
}

// Combine reconstructs the secret from at least t LRSS shares.
func Combine(shares []Share, opts ...Option) ([]byte, error) {
	if len(shares) == 0 {
		return nil, ErrTooFewShares
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	spar := shamir.WithParallelism(cfg.par)
	t := int(shares[0].T)
	L := shares[0].SecretLen
	if len(shares) < t {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewShares, len(shares), t)
	}
	for _, s := range shares {
		if int(s.T) != t || s.SecretLen != L || len(s.Masked) != L {
			return nil, ErrShapeMismatch
		}
	}
	use := shares[:t]
	inner := make([]shamir.Share, t)
	for k, s := range use {
		// Reconstruct party s.Index's seed from the t participants' seed
		// shares.
		seedParts := make([]shamir.Share, t)
		for k2, s2 := range use {
			if s.Index >= len(s2.SeedShares) {
				return nil, ErrShapeMismatch
			}
			seedParts[k2] = s2.SeedShares[s.Index]
		}
		seed, err := shamir.Combine(seedParts, spar)
		if err != nil {
			return nil, fmt.Errorf("lrss: seed reconstruction for party %d: %w", s.Index, err)
		}
		payload := extract(s.Source, seed, L)
		gf256.AddSlice(s.Masked, payload)
		inner[k] = shamir.Share{X: byte(s.Index + 1), Threshold: byte(t), Payload: payload}
	}
	return shamir.Combine(inner, spar)
}

// extract is a GF(256) Toeplitz universal hash: out[j] = Σ_k seed[j+k]·w[k].
// By the leftover hash lemma it is a strong extractor: for any source w
// with min-entropy ≥ 8·outLen + 2·log(1/ε), the output is ε-close to
// uniform given the seed.
// Each output byte is a dot product along a seed diagonal; flipping the
// loop order makes the inner loop a slice-times-constant over a
// contiguous seed window, which runs on the table kernels instead of one
// gf256.Mul per byte.
func extract(w, seed []byte, outLen int) []byte {
	out := make([]byte, outLen)
	for k := 0; k < len(w); k++ {
		gf256.MulSliceTable(w[k], seed[k:k+outLen], out)
	}
	return out
}

// StorageOverhead returns total stored bytes per secret byte: each party
// stores L (masked) + SourceLen + n seed shares of (L + SourceLen − 1)
// bytes, summed over n parties.
func StorageOverhead(p Params, secretLen int) float64 {
	if secretLen <= 0 {
		return 0
	}
	seedLen := secretLen + p.SourceLen - 1
	perParty := secretLen + p.SourceLen + p.N*seedLen
	return float64(p.N*perParty) / float64(secretLen)
}
