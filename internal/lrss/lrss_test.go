package lrss

import (
	"bytes"
	"crypto/rand"
	"errors"
	mrand "math/rand"
	"testing"

	"securearchive/internal/gf256"
	"securearchive/internal/shamir"
)

// TestMulBitMatrix: the bit matrix must agree with field multiplication.
func TestMulBitMatrix(t *testing.T) {
	for _, x := range []byte{1, 2, 3, 0x53, 0xFF} {
		m := mulBitMatrix(x)
		for v := 0; v < 256; v++ {
			want := gf256.Mul(x, byte(v))
			var got byte
			for r := 0; r < 8; r++ {
				// bit r of result = parity of m[r] & v
				if parity(m[r]&byte(v)) == 1 {
					got |= 1 << r
				}
			}
			if got != want {
				t.Fatalf("matrix for %#x wrong at v=%#x: got %#x want %#x", x, v, got, want)
			}
		}
	}
}

func parity(b byte) byte {
	b ^= b >> 4
	b ^= b >> 2
	b ^= b >> 1
	return b & 1
}

// TestLeakAttackRecoversSecret is experiment E8's core: leak ONE bit from
// each of 24 shares of a (2, 24) Shamir sharing and recover the full
// secret byte, without ever holding a complete share.
func TestLeakAttackRecoversSecret(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		secret := []byte{byte(trial * 13)}
		shares, err := shamir.Split(secret, 24, 2, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		leaks := make([]LeakBit, len(shares))
		for i, s := range shares {
			leaks[i] = LeakFromShare(s, 0, i%8) // rotate bit positions
		}
		got, err := LeakAttackShamir(leaks)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != secret[0] {
			t.Fatalf("trial %d: recovered %#x, want %#x", trial, got, secret[0])
		}
	}
}

// TestLeakAttackSameBitUnderdetermined: leaking only the LSB of every
// share determines s_0 and c but not the other secret bits.
func TestLeakAttackSameBitUnderdetermined(t *testing.T) {
	secret := []byte{0xA7}
	shares, _ := shamir.Split(secret, 24, 2, rand.Reader)
	leaks := make([]LeakBit, len(shares))
	for i, s := range shares {
		leaks[i] = LeakFromShare(s, 0, 0)
	}
	if _, err := LeakAttackShamir(leaks); !errors.Is(err, ErrUnsolvable) {
		t.Fatalf("LSB-only leakage should be underdetermined: %v", err)
	}
}

func TestLeakAttackTooFewShares(t *testing.T) {
	secret := []byte{0x42}
	shares, _ := shamir.Split(secret, 8, 2, rand.Reader)
	leaks := make([]LeakBit, len(shares))
	for i, s := range shares {
		leaks[i] = LeakFromShare(s, 0, i%8)
	}
	if _, err := LeakAttackShamir(leaks); !errors.Is(err, ErrUnsolvable) {
		t.Fatalf("8 leaks should underdetermine 16 unknowns: %v", err)
	}
}

// TestLeakAttackRecoversWholePayload: one leaked bit per byte position
// per share recovers a multi-byte secret in full.
func TestLeakAttackRecoversWholePayload(t *testing.T) {
	secret := []byte("entire payloads fall to local leakage")
	shares, err := shamir.Split(secret, 24, 2, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LeakAttackShamirPayload(shares, len(secret))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("payload attack recovered %q, want %q", got, secret)
	}
}

func TestLeakAttackPayloadValidation(t *testing.T) {
	if _, err := LeakAttackShamirPayload(nil, 4); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("no shares: %v", err)
	}
	shares, _ := shamir.Split([]byte("ab"), 24, 2, rand.Reader)
	if _, err := LeakAttackShamirPayload(shares, 5); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("short payload: %v", err)
	}
}

func TestLeakAttackValidation(t *testing.T) {
	if _, err := LeakAttackShamir([]LeakBit{{X: 0, Bit: 0}}); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("x=0: %v", err)
	}
	if _, err := LeakAttackShamir([]LeakBit{{X: 1, Bit: 9}}); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("bit=9: %v", err)
	}
}

func TestLRSSRoundTrip(t *testing.T) {
	p := Params{N: 6, T: 3, SourceLen: 32}
	secret := []byte("leakage resilient payload")
	shares, err := Split(secret, p, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Combine(shares[:3])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("LRSS round trip failed")
	}
	// Any t-subset works.
	rng := mrand.New(mrand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		idx := rng.Perm(p.N)[:p.T]
		sub := make([]Share, p.T)
		for i, j := range idx {
			sub[i] = shares[j]
		}
		got, err := Combine(sub)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, secret) {
			t.Fatalf("subset %v failed", idx)
		}
	}
}

func TestLRSSTooFewShares(t *testing.T) {
	p := Params{N: 5, T: 3, SourceLen: 32}
	shares, _ := Split([]byte("x"), p, rand.Reader)
	if _, err := Combine(shares[:2]); !errors.Is(err, ErrTooFewShares) {
		t.Fatalf("too few: %v", err)
	}
}

func TestLRSSValidation(t *testing.T) {
	if _, err := Split([]byte("x"), Params{N: 4, T: 1, SourceLen: 32}, rand.Reader); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("t=1: %v", err)
	}
	if _, err := Split([]byte("x"), Params{N: 4, T: 5, SourceLen: 32}, rand.Reader); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("t>n: %v", err)
	}
	if _, err := Split([]byte("x"), Params{N: 4, T: 2, SourceLen: 8}, rand.Reader); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("tiny source: %v", err)
	}
	if _, err := Split(nil, Params{N: 4, T: 2, SourceLen: 32}, rand.Reader); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("empty secret: %v", err)
	}
}

// TestLRSSDefeatsBitLeakage replays the Shamir attack's leakage pattern
// against LRSS shares: single bits leaked from each party's *masked*
// component must not allow the linear attack (the masked values are not
// Shamir shares of the secret — they are one-time-padded by extractor
// output). We measure the attack's success over trials: it should succeed
// at chance level, never systematically.
func TestLRSSDefeatsBitLeakage(t *testing.T) {
	p := Params{N: 24, T: 2, SourceLen: 32}
	const trials = 30
	hits := 0
	for trial := 0; trial < trials; trial++ {
		secret := []byte{byte(trial*7 + 3)}
		shares, err := Split(secret, p, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		leaks := make([]LeakBit, p.N)
		for i, s := range shares {
			leaks[i] = LeakBit{X: byte(i + 1), Bit: i % 8, Val: (s.Masked[0] >> (i % 8)) & 1}
		}
		got, err := LeakAttackShamir(leaks)
		if err == nil && got == secret[0] {
			hits++
		}
	}
	// Chance level is 1/256 per solvable trial; 30 trials should
	// essentially never hit. Allow 2 flukes.
	if hits > 2 {
		t.Fatalf("leak attack succeeded %d/%d times against LRSS", hits, trials)
	}
}

// TestExtractUniformity: the Toeplitz extractor output must be unbiased
// over random seeds (chi-squared smoke test on one output byte).
func TestExtractUniformity(t *testing.T) {
	const trials = 25600
	counts := make([]int, 256)
	w := make([]byte, 32)
	rand.Read(w) // fixed source with full entropy
	for i := 0; i < trials; i++ {
		seed := make([]byte, 32)
		rand.Read(seed)
		out := extract(w, seed, 1)
		counts[out[0]]++
	}
	expected := float64(trials) / 256
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 400 {
		t.Fatalf("extractor output non-uniform: chi2 = %.1f", chi2)
	}
}

func TestStorageOverheadGrowsWithN(t *testing.T) {
	p8 := Params{N: 8, T: 4, SourceLen: DefaultSourceLen}
	p16 := Params{N: 16, T: 8, SourceLen: DefaultSourceLen}
	oh8 := StorageOverhead(p8, 4096)
	oh16 := StorageOverhead(p16, 4096)
	if oh8 <= 8 {
		t.Fatalf("LRSS overhead %.1f not above plain SS (8x)", oh8)
	}
	if oh16 <= oh8 {
		t.Fatal("overhead must grow with n")
	}
}

func BenchmarkLRSSSplit6of3_4KiB(b *testing.B) {
	p := Params{N: 6, T: 3, SourceLen: DefaultSourceLen}
	secret := make([]byte, 4096)
	rand.Read(secret)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Split(secret, p, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeakAttack24Shares(b *testing.B) {
	secret := []byte{0x5C}
	shares, _ := shamir.Split(secret, 24, 2, rand.Reader)
	leaks := make([]LeakBit, len(shares))
	for i, s := range shares {
		leaks[i] = LeakFromShare(s, 0, i%8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LeakAttackShamir(leaks); err != nil {
			b.Fatal(err)
		}
	}
}
