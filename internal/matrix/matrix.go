// Package matrix implements dense matrices over GF(2^8).
//
// It provides exactly the linear algebra the erasure-coding and
// secret-sharing layers need: construction of Vandermonde and Cauchy
// matrices, Gauss-Jordan inversion, multiplication, and the derivation of
// systematic generator matrices. Matrices are small (dimensions are node
// counts, typically < 64), so clarity is preferred over blocking or SIMD;
// the per-byte throughput-critical loops live in package gf256.
package matrix

import (
	"errors"
	"fmt"

	"securearchive/internal/gf256"
)

// ErrSingular is returned when a matrix that must be invertible is not.
var ErrSingular = errors.New("matrix: singular matrix")

// Matrix is a dense row-major matrix over GF(2^8).
type Matrix struct {
	rows, cols int
	data       []byte // len == rows*cols
}

// New returns a zero matrix of the given dimensions. It panics if either
// dimension is not positive.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

// FromRows builds a matrix from row slices, copying the data. All rows must
// have equal, non-zero length.
func FromRows(rows [][]byte) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("matrix: FromRows with empty input")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("matrix: FromRows with ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Vandermonde returns the rows-by-cols matrix with entry (i, j) equal to
// xs[i]^j. The xs must be distinct for the matrix to have full rank.
func Vandermonde(xs []byte, cols int) *Matrix {
	m := New(len(xs), cols)
	for i, x := range xs {
		v := byte(1)
		for j := 0; j < cols; j++ {
			m.Set(i, j, v)
			v = gf256.Mul(v, x)
		}
	}
	return m
}

// Cauchy returns the len(xs)-by-len(ys) Cauchy matrix with entry
// (i, j) = 1 / (xs[i] + ys[j]). All xs and ys must be pairwise distinct
// across both slices; it panics if xs[i] == ys[j] for any pair. Every
// square submatrix of a Cauchy matrix is invertible, which makes it the
// preferred parity matrix for systematic Reed-Solomon codes.
func Cauchy(xs, ys []byte) *Matrix {
	m := New(len(xs), len(ys))
	for i, x := range xs {
		for j, y := range ys {
			if x == y {
				panic("matrix: Cauchy with xs[i] == ys[j]")
			}
			m.Set(i, j, gf256.Inv(x^y))
		}
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the entry at (r, c).
func (m *Matrix) At(r, c int) byte { return m.data[r*m.cols+c] }

// Set assigns the entry at (r, c).
func (m *Matrix) Set(r, c int, v byte) { m.data[r*m.cols+c] = v }

// Row returns the r-th row as a slice aliasing the matrix storage.
func (m *Matrix) Row(r int) []byte { return m.data[r*m.cols : (r+1)*m.cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Equal reports whether two matrices have identical shape and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.data {
		if m.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// String renders the matrix in hex, one row per line.
func (m *Matrix) String() string {
	s := ""
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			if c > 0 {
				s += " "
			}
			s += fmt.Sprintf("%02x", m.At(r, c))
		}
		s += "\n"
	}
	return s
}

// Mul returns the matrix product m * o. It panics on dimension mismatch.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.cols != o.rows {
		panic(fmt.Sprintf("matrix: Mul dimension mismatch %dx%d * %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	out := New(m.rows, o.cols)
	for r := 0; r < m.rows; r++ {
		mrow := m.Row(r)
		orow := out.Row(r)
		for k := 0; k < m.cols; k++ {
			gf256.MulSliceTable(mrow[k], o.Row(k), orow)
		}
	}
	return out
}

// MulVec multiplies the matrix by a column vector given as a slice and
// returns the resulting vector. It panics if len(v) != Cols().
func (m *Matrix) MulVec(v []byte) []byte {
	if len(v) != m.cols {
		panic("matrix: MulVec dimension mismatch")
	}
	out := make([]byte, m.rows)
	for r := 0; r < m.rows; r++ {
		row := m.Row(r)
		var acc byte
		for c, rv := range row {
			acc ^= gf256.Mul(rv, v[c])
		}
		out[r] = acc
	}
	return out
}

// MulBlocks multiplies the matrix by a block vector: blocks[c] is a byte
// slice (all the same length), and the result's r-th block is
// Σ_c m[r][c] · blocks[c]. This is how a generator matrix is applied to
// data shards. It panics if len(blocks) != Cols() or block lengths differ.
func (m *Matrix) MulBlocks(blocks [][]byte) [][]byte {
	if len(blocks) != m.cols {
		panic("matrix: MulBlocks dimension mismatch")
	}
	blen := len(blocks[0])
	for _, b := range blocks {
		if len(b) != blen {
			panic("matrix: MulBlocks ragged blocks")
		}
	}
	out := make([][]byte, m.rows)
	for r := 0; r < m.rows; r++ {
		out[r] = make([]byte, blen)
		row := m.Row(r)
		for c, coeff := range row {
			gf256.MulSliceTable(coeff, blocks[c], out[r])
		}
	}
	return out
}

// SubMatrix returns the matrix consisting of the given rows (in order).
func (m *Matrix) SubMatrix(rows []int) *Matrix {
	out := New(len(rows), m.cols)
	for i, r := range rows {
		if r < 0 || r >= m.rows {
			panic(fmt.Sprintf("matrix: SubMatrix row %d out of range", r))
		}
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// Invert returns the inverse of a square matrix using Gauss-Jordan
// elimination, or ErrSingular if the matrix has no inverse.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: cannot invert %dx%d non-square matrix", m.rows, m.cols)
	}
	n := m.rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if a.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Scale pivot row to make the pivot 1.
		if p := a.At(col, col); p != 1 {
			pi := gf256.Inv(p)
			scaleRow(a, col, pi)
			scaleRow(inv, col, pi)
		}
		// Eliminate the column from all other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			ft := gf256.MulTable(f)
			gf256.MulSliceWith(ft, a.Row(col), a.Row(r))
			gf256.MulSliceWith(ft, inv.Row(col), inv.Row(r))
		}
	}
	return inv, nil
}

func swapRows(m *Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func scaleRow(m *Matrix, r int, c byte) {
	row := m.Row(r)
	gf256.MulSliceAssignTable(c, row, row)
}

// Systematic converts a full-rank rows-by-cols generator matrix
// (rows >= cols) into systematic form: the first cols rows become the
// identity, so the first cols codewords equal the data shards. It does so
// by right-multiplying with the inverse of the top square block; the code
// (row space) is preserved. Returns ErrSingular if the top block is not
// invertible.
func (m *Matrix) Systematic() (*Matrix, error) {
	if m.rows < m.cols {
		return nil, fmt.Errorf("matrix: Systematic needs rows >= cols, have %dx%d", m.rows, m.cols)
	}
	topRows := make([]int, m.cols)
	for i := range topRows {
		topRows[i] = i
	}
	top := m.SubMatrix(topRows)
	topInv, err := top.Invert()
	if err != nil {
		return nil, err
	}
	return m.Mul(topInv), nil
}
