package matrix

import (
	"errors"
	"math/rand"
	"testing"

	"securearchive/internal/gf256"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, byte(rng.Intn(256)))
		}
	}
	return m
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMatrix(rng, 5, 5)
	if !Identity(5).Mul(m).Equal(m) {
		t.Fatal("I * M != M")
	}
	if !m.Mul(Identity(5)).Equal(m) {
		t.Fatal("M * I != M")
	}
}

func TestMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 3, 4)
	b := randMatrix(rng, 4, 5)
	c := randMatrix(rng, 5, 2)
	if !a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c))) {
		t.Fatal("(AB)C != A(BC)")
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 1; n <= 8; n++ {
		for trial := 0; trial < 20; trial++ {
			m := randMatrix(rng, n, n)
			inv, err := m.Invert()
			if errors.Is(err, ErrSingular) {
				continue // random singular matrices are fine to skip
			}
			if err != nil {
				t.Fatal(err)
			}
			if !m.Mul(inv).Equal(Identity(n)) {
				t.Fatalf("M * M^-1 != I for n=%d", n)
			}
			if !inv.Mul(m).Equal(Identity(n)) {
				t.Fatalf("M^-1 * M != I for n=%d", n)
			}
		}
	}
}

func TestInvertSingular(t *testing.T) {
	m := FromRows([][]byte{
		{1, 2},
		{2, 4}, // 2 * row 0 in GF(256): 2*1=2, 2*2=4
	})
	if _, err := m.Invert(); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
	zero := New(3, 3)
	if _, err := zero.Invert(); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular for zero matrix, got %v", err)
	}
}

func TestInvertNonSquare(t *testing.T) {
	if _, err := New(2, 3).Invert(); err == nil {
		t.Fatal("inverting non-square matrix did not fail")
	}
}

func TestVandermondeFullRank(t *testing.T) {
	xs := []byte{1, 2, 3, 4, 5}
	v := Vandermonde(xs, 5)
	if _, err := v.Invert(); err != nil {
		t.Fatalf("square Vandermonde with distinct xs must be invertible: %v", err)
	}
	// Entry check: (i, j) = xs[i]^j.
	for i, x := range xs {
		for j := 0; j < 5; j++ {
			if v.At(i, j) != gf256.Pow(x, j) {
				t.Fatalf("Vandermonde entry (%d,%d) wrong", i, j)
			}
		}
	}
}

func TestCauchyEverySquareSubmatrixInvertible(t *testing.T) {
	xs := []byte{1, 2, 3, 4}
	ys := []byte{5, 6, 7, 8}
	m := Cauchy(xs, ys)
	// All 2x2 submatrices (choose 2 rows, 2 cols) must be invertible.
	for r0 := 0; r0 < 4; r0++ {
		for r1 := r0 + 1; r1 < 4; r1++ {
			for c0 := 0; c0 < 4; c0++ {
				for c1 := c0 + 1; c1 < 4; c1++ {
					sub := FromRows([][]byte{
						{m.At(r0, c0), m.At(r0, c1)},
						{m.At(r1, c0), m.At(r1, c1)},
					})
					if _, err := sub.Invert(); err != nil {
						t.Fatalf("Cauchy 2x2 submatrix (%d,%d)x(%d,%d) singular", r0, r1, c0, c1)
					}
				}
			}
		}
	}
}

func TestCauchyOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for xs ∩ ys ≠ ∅")
		}
	}()
	Cauchy([]byte{1, 2}, []byte{2, 3})
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randMatrix(rng, 4, 6)
	v := make([]byte, 6)
	rng.Read(v)
	got := m.MulVec(v)
	// Compare against Mul with a 6x1 matrix.
	col := New(6, 1)
	for i, b := range v {
		col.Set(i, 0, b)
	}
	want := m.Mul(col)
	for i := range got {
		if got[i] != want.At(i, 0) {
			t.Fatalf("MulVec mismatch at %d", i)
		}
	}
}

func TestMulBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randMatrix(rng, 3, 2)
	blocks := [][]byte{make([]byte, 16), make([]byte, 16)}
	rng.Read(blocks[0])
	rng.Read(blocks[1])
	out := m.MulBlocks(blocks)
	if len(out) != 3 {
		t.Fatalf("MulBlocks returned %d blocks, want 3", len(out))
	}
	// Check byte-by-byte against MulVec over columns.
	for pos := 0; pos < 16; pos++ {
		v := []byte{blocks[0][pos], blocks[1][pos]}
		want := m.MulVec(v)
		for r := 0; r < 3; r++ {
			if out[r][pos] != want[r] {
				t.Fatalf("MulBlocks mismatch at block %d pos %d", r, pos)
			}
		}
	}
}

func TestSystematic(t *testing.T) {
	xs := []byte{1, 2, 3, 4, 5, 6}
	g := Vandermonde(xs, 4)
	sys, err := g.Systematic()
	if err != nil {
		t.Fatal(err)
	}
	// Top 4x4 block must be the identity.
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			want := byte(0)
			if r == c {
				want = 1
			}
			if sys.At(r, c) != want {
				t.Fatalf("systematic top block not identity at (%d,%d)", r, c)
			}
		}
	}
	// Any 4 rows of the systematic matrix must still be invertible
	// (MDS property preserved by right-multiplication).
	rowSets := [][]int{{0, 1, 2, 3}, {2, 3, 4, 5}, {0, 2, 4, 5}, {1, 3, 4, 5}}
	for _, rs := range rowSets {
		if _, err := sys.SubMatrix(rs).Invert(); err != nil {
			t.Fatalf("systematic rows %v singular: %v", rs, err)
		}
	}
}

func TestSubMatrix(t *testing.T) {
	m := FromRows([][]byte{{1, 2}, {3, 4}, {5, 6}})
	s := m.SubMatrix([]int{2, 0})
	if s.At(0, 0) != 5 || s.At(0, 1) != 6 || s.At(1, 0) != 1 || s.At(1, 1) != 2 {
		t.Fatal("SubMatrix selected wrong rows")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for ragged rows")
		}
	}()
	FromRows([][]byte{{1, 2}, {3}})
}

func TestStringFormat(t *testing.T) {
	m := FromRows([][]byte{{0x0A, 0xFF}})
	if m.String() != "0a ff\n" {
		t.Fatalf("String() = %q", m.String())
	}
}

func BenchmarkInvert16(b *testing.B) {
	xs := make([]byte, 16)
	for i := range xs {
		xs[i] = byte(i + 1)
	}
	m := Vandermonde(xs, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Invert(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulBlocks(b *testing.B) {
	xs := make([]byte, 12)
	for i := range xs {
		xs[i] = byte(i + 1)
	}
	m := Vandermonde(xs, 8)
	blocks := make([][]byte, 8)
	for i := range blocks {
		blocks[i] = make([]byte, 4096)
	}
	b.SetBytes(8 * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulBlocks(blocks)
	}
}
