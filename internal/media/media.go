// Package media models archival storage media: the parameters that drive
// the paper's re-encryption arithmetic (§3.2) and its future-directions
// argument for denser, cheaper media (§4).
//
// Each medium carries throughput, density, cost, and longevity figures
// drawn from the sources the paper cites: LTO tape (Byron '22; the
// "common archival storage medium"), archival HDD (Pergamum), glass
// (Project Silica: 429 TB per cubic inch, millennia of durability, near-
// zero maintenance), DNA (Bornholt et al.: 1 EB/mm³ theoretical, centuries
// of durability, crippling synthesis throughput), and photosensitive film
// (Piql / Arctic World Archive). The figures are order-of-magnitude
// engineering numbers, not vendor benchmarks; the cost model only needs
// their ratios.
package media

import (
	"errors"
	"fmt"
	"sort"
)

// Unit constants in bytes.
const (
	KB = 1e3
	MB = 1e6
	GB = 1e9
	TB = 1e12
	PB = 1e15
	EB = 1e18
	ZB = 1e21
)

// ErrUnknownMedium is returned for unregistered medium names.
var ErrUnknownMedium = errors.New("media: unknown medium")

// Medium describes one archival storage technology.
type Medium struct {
	Name string
	// ReadBandwidth is aggregate sequential read bytes/sec per drive/unit.
	ReadBandwidth float64
	// WriteBandwidth is aggregate sequential write bytes/sec per unit.
	// Archival media write slower than they read (verify passes, finalize).
	WriteBandwidth float64
	// DensityBytesPerMM3 is volumetric density in bytes per cubic mm.
	DensityBytesPerMM3 float64
	// CostPerTB is the media cost in USD per TB stored.
	CostPerTB float64
	// LifetimeYears is the rated unattended retention period.
	LifetimeYears float64
	// Online reports whether the medium is network-attached while idle
	// (HDD/SSD) or offline at rest (tape, glass, film, DNA). The paper
	// prefers offline media for the reduced attack surface.
	Online bool
}

// Catalog of archival media. Values are representative 2024-era figures.
var catalog = map[string]Medium{
	"tape": {
		Name:               "tape",
		ReadBandwidth:      400 * MB, // LTO-9 native
		WriteBandwidth:     300 * MB,
		DensityBytesPerMM3: 6.5e9, // ≈18 TB cartridge / ~2800 mm³ media volume
		CostPerTB:          6,
		LifetimeYears:      30,
		Online:             false,
	},
	"hdd": {
		Name:               "hdd",
		ReadBandwidth:      250 * MB,
		WriteBandwidth:     230 * MB,
		DensityBytesPerMM3: 5.0e8,
		CostPerTB:          15,
		LifetimeYears:      5,
		Online:             true,
	},
	"glass": {
		Name:               "glass",
		ReadBandwidth:      30 * MB, // Silica read head, research-grade
		WriteBandwidth:     5 * MB,  // femtosecond laser writing
		DensityBytesPerMM3: 2.6e10,  // 429 TB per cubic inch ≈ 26 GB/mm³
		CostPerTB:          3,
		LifetimeYears:      10000,
		Online:             false,
	},
	"dna": {
		Name:               "dna",
		ReadBandwidth:      1 * KB, // sequencing throughput per run, effective
		WriteBandwidth:     100,    // synthesis: the paper's cited bottleneck
		DensityBytesPerMM3: 1e18,   // 1 EB per mm³ theoretical
		CostPerTB:          1e6,    // synthesis cost dominates
		LifetimeYears:      500,
		Online:             false,
	},
	"film": {
		Name:               "film",
		ReadBandwidth:      10 * MB,
		WriteBandwidth:     1 * MB,
		DensityBytesPerMM3: 1.0e6,
		CostPerTB:          100,
		LifetimeYears:      500,
		Online:             false,
	},
}

// Get returns the catalog entry for name.
func Get(name string) (Medium, error) {
	m, ok := catalog[name]
	if !ok {
		return Medium{}, fmt.Errorf("%w: %q", ErrUnknownMedium, name)
	}
	return m, nil
}

// Names lists catalog media in deterministic order.
func Names() []string {
	out := make([]string, 0, len(catalog))
	for n := range catalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// VolumeForBytes returns the media volume in cubic mm needed to store the
// given byte count.
func (m Medium) VolumeForBytes(bytes float64) float64 {
	return bytes / m.DensityBytesPerMM3
}

// CostForBytes returns the media cost in USD for the given byte count.
func (m Medium) CostForBytes(bytes float64) float64 {
	return bytes / TB * m.CostPerTB
}

// DrivesForReadDeadline returns how many parallel drives/units are needed
// to read `bytes` within `days` days.
func (m Medium) DrivesForReadDeadline(bytes float64, days float64) int {
	if days <= 0 {
		return 0
	}
	perDrive := m.ReadBandwidth * 86400 * days
	n := int(bytes / perDrive)
	if float64(n)*perDrive < bytes {
		n++
	}
	return n
}
