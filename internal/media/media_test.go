package media

import (
	"errors"
	"testing"
)

func TestCatalogComplete(t *testing.T) {
	want := []string{"dna", "film", "glass", "hdd", "tape"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("catalog has %d media, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	for _, n := range want {
		m, err := Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name != n {
			t.Fatalf("medium %s has Name %s", n, m.Name)
		}
		if m.ReadBandwidth <= 0 || m.WriteBandwidth <= 0 || m.DensityBytesPerMM3 <= 0 ||
			m.CostPerTB <= 0 || m.LifetimeYears <= 0 {
			t.Fatalf("medium %s has non-positive parameters: %+v", n, m)
		}
	}
}

func TestUnknownMedium(t *testing.T) {
	if _, err := Get("punchcard"); !errors.Is(err, ErrUnknownMedium) {
		t.Fatalf("unknown medium: %v", err)
	}
}

// TestPaperOrderings pins the qualitative claims of §4: DNA is the
// densest by orders of magnitude; glass is ~8 orders sparser than DNA but
// far denser than tape; archival media write slower than they read;
// offline media are tape/glass/dna/film, online is hdd.
func TestPaperOrderings(t *testing.T) {
	dna, _ := Get("dna")
	glass, _ := Get("glass")
	tape, _ := Get("tape")
	hdd, _ := Get("hdd")

	if dna.DensityBytesPerMM3 <= glass.DensityBytesPerMM3 {
		t.Fatal("DNA must be denser than glass")
	}
	// Paper: DNA density ≈ 8 orders of magnitude greater than tape.
	ratio := dna.DensityBytesPerMM3 / tape.DensityBytesPerMM3
	if ratio < 1e7 || ratio > 1e10 {
		t.Fatalf("DNA/tape density ratio %.2g, want ≈1e8", ratio)
	}
	if glass.LifetimeYears <= tape.LifetimeYears {
		t.Fatal("glass must outlive tape")
	}
	for _, n := range Names() {
		m, _ := Get(n)
		if m.WriteBandwidth > m.ReadBandwidth {
			t.Fatalf("%s writes faster than it reads", n)
		}
	}
	if hdd.Online != true {
		t.Fatal("hdd must be online")
	}
	for _, n := range []string{"tape", "glass", "dna", "film"} {
		m, _ := Get(n)
		if m.Online {
			t.Fatalf("%s must be offline at rest", n)
		}
	}
}

func TestVolumeForBytes(t *testing.T) {
	dna, _ := Get("dna")
	// 1 EB in 1 mm³ (theoretical density).
	if v := dna.VolumeForBytes(EB); v < 0.99 || v > 1.01 {
		t.Fatalf("1 EB of DNA occupies %.3f mm³, want ≈1", v)
	}
}

func TestCostForBytes(t *testing.T) {
	tape, _ := Get("tape")
	if c := tape.CostForBytes(PB); c != 6000 {
		t.Fatalf("1 PB tape costs %.0f, want 6000", c)
	}
}

func TestDrivesForReadDeadline(t *testing.T) {
	tape, _ := Get("tape")
	// One LTO-9 drive reads 400 MB/s → ~34.56 TB/day. To read 1 PB in one
	// day needs ceil(1e15 / 3.456e13) = 29 drives.
	n := tape.DrivesForReadDeadline(PB, 1)
	if n != 29 {
		t.Fatalf("drives = %d, want 29", n)
	}
	if tape.DrivesForReadDeadline(PB, 0) != 0 {
		t.Fatal("zero deadline should yield 0")
	}
}
