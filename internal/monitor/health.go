package monitor

import (
	"sync"
	"time"

	"securearchive/internal/obs"
)

// Windowed health. The original /healthz judged the degraded-read rate
// from lifetime counters — bad/reads over the registry's whole history —
// so one bad hour tripped the check forever: the ratio could only decay
// asymptotically, never recover. HealthWindows fixes that by
// delta-sampling the same counters into sliding obs.Windows, so
// /healthz answers "how are reads going NOW", and a server that rode
// out an incident goes green again once the window slides past it.

// Defaults for EnableWindowedHealth zero values: a 5-minute window in
// 10-second buckets, matching the SLO tables.
const (
	DefaultHealthBuckets  = 30
	DefaultHealthInterval = 10 * time.Second
)

// healthWindows is the sliding state behind windowed /healthz: total
// reads and degraded-or-failed reads over the last span, fed by
// delta-sampling the registry's lifetime counters.
type healthWindows struct {
	mu    sync.Mutex
	reads *obs.Window
	bad   *obs.Window
	// Baselines for delta sampling: the lifetime totals as of the last
	// sample. The first sample only primes them — history before
	// windowing was enabled must not pollute the window.
	lastReads int64
	lastBad   int64
	primed    bool
}

// EnableWindowedHealth switches /healthz's degraded-read check from
// lifetime counters to a sliding window of buckets×interval (defaults
// apply to zero values). The baseline is primed immediately — traffic
// before this call never enters the window — and every health check
// takes a fresh delta sample, so /healthz is current without waiting
// for the next sampler tick; StartHealthSampler just keeps the window
// fed between checks.
func (s *Server) EnableWindowedHealth(buckets int, interval time.Duration) {
	if buckets <= 0 {
		buckets = DefaultHealthBuckets
	}
	if interval <= 0 {
		interval = DefaultHealthInterval
	}
	s.hw = &healthWindows{
		reads: obs.NewWindow(buckets, interval, nil),
		bad:   obs.NewWindow(buckets, interval, nil),
	}
	s.SampleHealth()
}

// SampleHealthAt takes one delta sample of the read counters into the
// health windows at an explicit clock (tests drive this directly).
// No-op until EnableWindowedHealth.
func (s *Server) SampleHealthAt(now time.Time) {
	hw := s.hw
	if hw == nil || s.Registry == nil {
		return
	}
	snap := s.Registry.Snapshot()
	reads := int64(snap.Histograms["vault.get.ok"].Count + snap.Histograms["vault.get.err"].Count)
	bad := snap.Counters["vault.read.degraded"] + snap.Counters["vault.read.insufficient"]

	hw.mu.Lock()
	defer hw.mu.Unlock()
	if hw.primed {
		// A registry Reset between samples makes the totals go
		// backwards; re-prime rather than recording a negative delta.
		if d := reads - hw.lastReads; d > 0 {
			hw.reads.AddAt(now, d)
		}
		if d := bad - hw.lastBad; d > 0 {
			hw.bad.AddAt(now, d)
		}
	}
	hw.lastReads, hw.lastBad = reads, bad
	hw.primed = true
}

// SampleHealth takes one delta sample now.
func (s *Server) SampleHealth() { s.SampleHealthAt(time.Now()) }

// StartHealthSampler samples the health windows every `every` (the
// window bucket interval when <= 0) until stop closes. It returns
// immediately; the caller owns the stop channel's lifetime.
func (s *Server) StartHealthSampler(stop <-chan struct{}, every time.Duration) {
	if s.hw == nil {
		return
	}
	if every <= 0 {
		every = DefaultHealthInterval
	}
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.SampleHealth()
			}
		}
	}()
}

// windowedDegraded reports the degraded-read rate over the health
// window ending at now, after folding in any reads since the last
// sample. ok=false when windowing is not enabled.
func (s *Server) windowedDegraded(now time.Time) (rate float64, reads int64, ok bool) {
	hw := s.hw
	if hw == nil {
		return 0, 0, false
	}
	s.SampleHealthAt(now)
	hw.mu.Lock()
	defer hw.mu.Unlock()
	reads = hw.reads.CountAt(now)
	bad := hw.bad.CountAt(now)
	if reads > 0 {
		rate = float64(bad) / float64(reads)
	}
	return rate, reads, true
}
