// Package monitor serves the observability layer over HTTP: Prometheus
// metrics scraped from an obs.Registry, JSON snapshots, recent trace
// timelines from a trace.Tracer, a thresholded health check, and the
// standard pprof handlers. It is what `archivectl serve` runs — a live
// window into a vault under fault injection — but it binds to any
// vault/cluster/registry/tracer combination, so tests and examples can
// embed it too.
//
// The paper's archival argument is operational as much as cryptographic:
// §3.2's bandwidth wall and the repair-scheduling literature (PASIS,
// POTSHARDS) both assume someone is WATCHING the archive — degraded-read
// rates, scrub backlogs, probe latencies. This package is that watch
// post for the simulated archive.
package monitor

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"securearchive/internal/cluster"
	"securearchive/internal/core"
	"securearchive/internal/obs"
	"securearchive/internal/obs/trace"
)

// Thresholds bound what /healthz tolerates before reporting unhealthy.
type Thresholds struct {
	// MaxScrubBacklog is the largest dirty-object queue considered
	// healthy (DefaultMaxScrubBacklog when 0).
	MaxScrubBacklog int
	// MaxDegradedRate is the largest fraction of degraded or failed
	// reads among all reads considered healthy (DefaultMaxDegradedRate
	// when 0).
	MaxDegradedRate float64
}

// Defaults for Thresholds zero values.
const (
	DefaultMaxScrubBacklog = 32
	DefaultMaxDegradedRate = 0.25
)

func (t Thresholds) normalize() Thresholds {
	if t.MaxScrubBacklog <= 0 {
		t.MaxScrubBacklog = DefaultMaxScrubBacklog
	}
	if t.MaxDegradedRate <= 0 {
		t.MaxDegradedRate = DefaultMaxDegradedRate
	}
	return t
}

// Server binds the monitoring endpoints to one vault's observability
// state. Vault and Cluster may be nil (the corresponding health checks
// fail); Registry and Tracer may be nil (those endpoints 404-degrade to
// empty output).
type Server struct {
	Vault      *core.Vault
	Cluster    *cluster.Cluster
	Registry   *obs.Registry
	Tracer     *trace.Tracer
	Thresholds Thresholds
	// SLO, when set, serves error-budget burn per subject at /slo
	// (the api.Server's table via SLOTable(), or any obs.SLOTable).
	SLO *obs.SLOTable

	// hw, when non-nil (EnableWindowedHealth), replaces the lifetime
	// degraded-read-rate check with a sliding window; see health.go.
	hw *healthWindows
}

// HealthCheck is one /healthz probe result.
type HealthCheck struct {
	Name  string  `json:"name"`
	OK    bool    `json:"ok"`
	Value float64 `json:"value"`
	Limit float64 `json:"limit,omitempty"`
	Note  string  `json:"note,omitempty"`
}

// Health is the /healthz response body.
type Health struct {
	Healthy bool          `json:"healthy"`
	Checks  []HealthCheck `json:"checks"`
}

// Handler returns the monitor's mux:
//
//	/metrics       Prometheus text exposition of the registry
//	/snapshot      the registry snapshot as JSON
//	/traces        recent traces (?n=, &format=text for timelines,
//	               &which=tail for the retained interesting tail)
//	/slo           sliding-window SLO compliance and error-budget burn
//	/healthz       thresholded health checks; 503 when any fail
//	/debug/pprof/  the standard runtime profiles
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/traces", s.handleTraces)
	mux.HandleFunc("/slo", s.handleSLO)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.Registry == nil {
		http.Error(w, "no registry configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.Registry.Snapshot().WritePrometheus(w)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.Registry == nil {
		http.Error(w, "no registry configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.Registry.Snapshot().JSON())
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.Tracer == nil {
		http.Error(w, "no tracer configured", http.StatusNotFound)
		return
	}
	n := 10
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, "n must be a non-negative integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	traces := s.Tracer.Recent(n)
	if r.URL.Query().Get("which") == "tail" {
		traces = s.Tracer.Tail(n)
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.Tracer.Enabled() {
			fmt.Fprintln(w, "tracing disabled (flat histograms only); start with tracing on to collect spans")
		}
		for _, t := range traces {
			w.Write([]byte(trace.Timeline(t)))
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Enabled   bool           `json:"tracing_enabled"`
		Completed uint64         `json:"completed"`
		Traces    []*trace.Trace `json:"traces"`
	}{s.Tracer.Enabled(), s.Tracer.Completed(), traces})
}

func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if s.SLO == nil {
		http.Error(w, "no SLO table configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.SLO.Report())
}

// CheckHealth runs the health probes and returns the aggregate. Exported
// so callers can poll health without going through HTTP.
func (s *Server) CheckHealth() Health { return s.CheckHealthAt(time.Now()) }

// CheckHealthAt is CheckHealth at an explicit clock, so tests can walk a
// windowed server through trip and recovery deterministically.
func (s *Server) CheckHealthAt(now time.Time) Health {
	th := s.Thresholds.normalize()
	var h Health
	h.Healthy = true
	add := func(c HealthCheck) {
		if !c.OK {
			h.Healthy = false
		}
		h.Checks = append(h.Checks, c)
	}

	reach := HealthCheck{Name: "vault.reachable", OK: s.Vault != nil && s.Cluster != nil}
	if reach.OK {
		reach.Value = float64(s.Cluster.Size())
		reach.Note = fmt.Sprintf("%d nodes, %d objects", s.Cluster.Size(), len(s.Vault.Objects()))
	} else {
		reach.Note = "no vault/cluster bound"
	}
	add(reach)

	backlog := HealthCheck{Name: "scrub.backlog", Limit: float64(th.MaxScrubBacklog)}
	if s.Vault != nil {
		n := len(s.Vault.DirtyObjects())
		backlog.Value = float64(n)
		backlog.OK = n <= th.MaxScrubBacklog
		if !backlog.OK {
			backlog.Note = "dirty objects awaiting scrub exceed threshold"
		}
	}
	add(backlog)

	degraded := HealthCheck{Name: "degraded.read.rate", Limit: th.MaxDegradedRate, OK: true}
	if rate, reads, windowed := s.windowedDegraded(now); windowed {
		// Sliding-window mode: judge only the last window's reads, so a
		// server that rode out an incident recovers once it slides past.
		if reads > 0 {
			degraded.Value = rate
			degraded.OK = rate <= th.MaxDegradedRate
		}
		degraded.Note = fmt.Sprintf("windowed: %d reads in last %s", reads, s.hw.reads.Span())
	} else if s.Registry != nil {
		snap := s.Registry.Snapshot()
		reads := float64(snap.Histograms["vault.get.ok"].Count + snap.Histograms["vault.get.err"].Count)
		bad := float64(snap.Counters["vault.read.degraded"] + snap.Counters["vault.read.insufficient"])
		if reads > 0 {
			degraded.Value = bad / reads
			degraded.OK = degraded.Value <= th.MaxDegradedRate
		}
	}
	if !degraded.OK {
		degraded.Note = "reads routing around failures faster than scrubbing heals them"
	}
	add(degraded)
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.CheckHealth()
	w.Header().Set("Content-Type", "application/json")
	if !h.Healthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(h)
}
