package monitor

import (
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"securearchive/internal/cluster"
	"securearchive/internal/core"
	"securearchive/internal/group"
	"securearchive/internal/obs"
	"securearchive/internal/obs/trace"
)

func testServer(t *testing.T) (*Server, *core.Vault, *cluster.Cluster) {
	t.Helper()
	reg := obs.NewRegistry()
	c := cluster.New(8, nil)
	c.UseRegistry(reg)
	tr := trace.New(reg)
	tr.SetEnabled(true)
	v, err := core.NewVault(c, core.Erasure{K: 4, N: 8},
		core.WithGroup(group.Test()), core.WithRegistry(reg), core.WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	return &Server{Vault: v, Cluster: c, Registry: reg, Tracer: tr}, v, c
}

func get(t *testing.T, h *Server, path string) (int, string) {
	t.Helper()
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	s, v, _ := testServer(t)
	if err := v.Put("obj", []byte("metrics smoke")); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Get("obj"); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, s, "/metrics")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		"# TYPE vault_get_ok summary",
		"vault_get_ok_count 1",
		`vault_get_ok{quantile="0.95"}`,
		"# TYPE cluster_fetch_probes counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	s, v, _ := testServer(t)
	if err := v.Put("obj", []byte("snapshot smoke")); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, s, "/snapshot")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot not JSON: %v", err)
	}
	if snap.Histograms["vault.put.ok"].Count != 1 {
		t.Fatalf("snapshot lacks the put: %+v", snap.Histograms["vault.put.ok"])
	}
}

func TestTracesEndpoint(t *testing.T) {
	s, v, _ := testServer(t)
	if err := v.Put("obj", []byte("trace smoke")); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Get("obj"); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, s, "/traces?n=2")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var out struct {
		Enabled bool           `json:"tracing_enabled"`
		Traces  []*trace.Trace `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("/traces not JSON: %v", err)
	}
	if !out.Enabled || len(out.Traces) != 2 {
		t.Fatalf("traces = %d enabled=%v", len(out.Traces), out.Enabled)
	}
	if out.Traces[1].Root != "vault.get" || out.Traces[1].Depth() < 3 {
		t.Fatalf("last trace = %s depth %d", out.Traces[1].Root, out.Traces[1].Depth())
	}

	code, text := get(t, s, "/traces?n=1&format=text")
	if code != 200 || !strings.Contains(text, "vault.get") || !strings.Contains(text, "cluster.probe") {
		t.Fatalf("text timeline = %d:\n%s", code, text)
	}

	if code, _ := get(t, s, "/traces?n=bogus"); code != 400 {
		t.Fatalf("bad n accepted: %d", code)
	}
}

func TestHealthzHealthy(t *testing.T) {
	s, v, _ := testServer(t)
	if err := v.Put("obj", []byte("healthy")); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Get("obj"); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, s, "/healthz")
	if code != 200 {
		t.Fatalf("healthy vault reports %d:\n%s", code, body)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil || !h.Healthy || len(h.Checks) != 3 {
		t.Fatalf("health = %+v err=%v", h, err)
	}
}

// Acceptance: when the degraded-read rate crosses the threshold,
// /healthz turns non-200 and names the failing check.
func TestHealthzDegradedRateTrips(t *testing.T) {
	s, v, c := testServer(t)
	s.Thresholds.MaxDegradedRate = 0.25
	if err := v.Put("obj", []byte("degraded reads trip the health check")); err != nil {
		t.Fatal(err)
	}
	// Take half the stripe offline: every read is degraded (rate 1.0).
	for i := 0; i < 4; i++ {
		c.SetOnline(i, false)
	}
	for i := 0; i < 4; i++ {
		if _, err := v.Get("obj"); err != nil {
			t.Fatal(err)
		}
	}
	code, body := get(t, s, "/healthz")
	if code != 503 {
		t.Fatalf("degraded vault reports %d:\n%s", code, body)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil || h.Healthy {
		t.Fatalf("health = %+v err=%v", h, err)
	}
	found := false
	for _, ch := range h.Checks {
		if ch.Name == "degraded.read.rate" {
			found = true
			if ch.OK || ch.Value <= 0.25 {
				t.Fatalf("check = %+v", ch)
			}
		}
	}
	if !found {
		t.Fatal("degraded.read.rate check missing")
	}
}

func TestHealthzScrubBacklogTrips(t *testing.T) {
	s, v, c := testServer(t)
	s.Thresholds.MaxScrubBacklog = 1
	// Every read below rots a shard, so the degraded rate hits 1.0;
	// loosen that check to isolate the backlog one.
	s.Thresholds.MaxDegradedRate = 1.0
	for _, id := range []string{"a", "b", "c"} {
		if err := v.Put(id, []byte("backlog grows: "+id)); err != nil {
			t.Fatal(err)
		}
	}
	// Rot one shard of each object so every read discards and queues it.
	c.SetFaultPlan(&cluster.FaultPlan{Seed: 7, Nodes: map[int]cluster.NodeFaults{
		2: {CorruptProb: 1.0},
	}})
	for _, id := range []string{"a", "b", "c"} {
		if _, err := c.Get(2, cluster.ShardKey{Object: id, Index: 2}); err != nil {
			t.Fatal(err)
		}
	}
	c.SetFaultPlan(nil)
	for _, id := range []string{"a", "b", "c"} {
		if _, err := v.Get(id); err != nil && !errors.Is(err, core.ErrDegraded) {
			t.Fatal(err)
		}
	}
	if n := len(v.DirtyObjects()); n != 3 {
		t.Fatalf("dirty = %d, want 3", n)
	}
	if code, body := get(t, s, "/healthz"); code != 503 {
		t.Fatalf("backlogged vault reports %d:\n%s", code, body)
	}
	// Scrubbing clears the backlog and health recovers.
	if _, err := v.ScrubAll(); err != nil {
		t.Fatal(err)
	}
	if code, body := get(t, s, "/healthz"); code != 200 {
		t.Fatalf("scrubbed vault reports %d:\n%s", code, body)
	}
}

func TestHealthzUnbound(t *testing.T) {
	s := &Server{}
	h := s.CheckHealth()
	if h.Healthy {
		t.Fatal("unbound server reports healthy")
	}
}

func TestPprofWired(t *testing.T) {
	s, _, _ := testServer(t)
	code, body := get(t, s, "/debug/pprof/cmdline")
	if code != 200 || body == "" {
		t.Fatalf("pprof cmdline = %d", code)
	}
}

// Regression: the lifetime degraded-read check could trip and never
// recover — once the historical ratio crossed the threshold, no amount
// of healthy traffic could pull it back under in finite time. Windowed
// health trips during the incident and goes green again once the window
// slides past it.
func TestHealthzWindowedTripAndRecover(t *testing.T) {
	s, v, c := testServer(t)
	s.Thresholds.MaxDegradedRate = 0.25
	s.EnableWindowedHealth(3, 10*time.Second)
	if err := v.Put("obj", []byte("trip and recover")); err != nil {
		t.Fatal(err)
	}

	t0 := time.Unix(1_700_000_000, 0)
	s.SampleHealthAt(t0) // prime the baseline past the put

	// Incident: half the stripe offline, every read degraded.
	for i := 0; i < 4; i++ {
		c.SetOnline(i, false)
	}
	for i := 0; i < 4; i++ {
		if _, err := v.Get("obj"); err != nil {
			t.Fatal(err)
		}
	}
	s.SampleHealthAt(t0.Add(10 * time.Second))
	if h := s.CheckHealthAt(t0.Add(10 * time.Second)); h.Healthy {
		t.Fatalf("incident window reports healthy: %+v", h.Checks)
	}

	// Recovery: nodes back, reads clean again. The lifetime ratio is
	// still 4 degraded / 8 reads = 0.5 > 0.25 — the old check would stay
	// tripped forever — but the window only sees the clean reads.
	for i := 0; i < 4; i++ {
		c.SetOnline(i, true)
	}
	later := t0.Add(50 * time.Second) // incident bucket expired (3×10s window)
	for i := 0; i < 4; i++ {
		if _, err := v.Get("obj"); err != nil {
			t.Fatal(err)
		}
	}
	s.SampleHealthAt(later)
	h := s.CheckHealthAt(later)
	if !h.Healthy {
		t.Fatalf("recovered vault still unhealthy: %+v", h.Checks)
	}
	for _, ch := range h.Checks {
		if ch.Name == "degraded.read.rate" && ch.Value != 0 {
			t.Fatalf("windowed rate = %v, want 0 after recovery", ch.Value)
		}
	}

	// Sanity: the lifetime ratio really would have stayed tripped.
	snap := s.Registry.Snapshot()
	reads := float64(snap.Histograms["vault.get.ok"].Count + snap.Histograms["vault.get.err"].Count)
	bad := float64(snap.Counters["vault.read.degraded"] + snap.Counters["vault.read.insufficient"])
	if bad/reads <= 0.25 {
		t.Fatalf("test premise broken: lifetime rate %v under threshold", bad/reads)
	}
}

func TestSLOEndpoint(t *testing.T) {
	s, _, _ := testServer(t)
	if code, _ := get(t, s, "/slo"); code != 404 {
		t.Fatalf("unconfigured /slo = %d, want 404", code)
	}
	tbl := obs.NewSLOTable(obs.DefaultSLOSpecs()...)
	tbl.SLO("acme", "availability").Record(true)
	tbl.SLO("acme", "availability").Record(false)
	s.SLO = tbl
	code, body := get(t, s, "/slo")
	if code != 200 {
		t.Fatalf("/slo = %d:\n%s", code, body)
	}
	var rep obs.SLOReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/slo not JSON: %v", err)
	}
	if rep.Schema != obs.SLOReportSchema || len(rep.Subjects) != 1 {
		t.Fatalf("report = %+v", rep)
	}
}
