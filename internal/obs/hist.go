package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram: observations land in the first
// bucket whose upper bound is >= the value, with one implicit overflow
// bucket past the last bound. Quantiles are estimated by linear
// interpolation within the winning bucket — exact enough for p50/p95/p99
// reporting when the bounds follow a 1-2-5 or power-of-two ladder.
//
// Observe is lock-free (one atomic add per bucket/count/sum) and safe
// for concurrent use.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomic.Int64 // observations rounded to integers (ns, bytes, MB/s)
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(math.Round(v)))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values (rounded per observation).
func (h *Histogram) Sum() float64 { return float64(h.sum.Load()) }

// Mean returns the mean observed value, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the q-quantile (q in [0,1]) by interpolating within
// the bucket holding the target rank. Values in the overflow bucket
// report the last bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	lo := 0.0
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if i == len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		hi := h.bounds[i]
		if c > 0 && cum+c >= rank {
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
		lo = hi
	}
	return h.bounds[len(h.bounds)-1]
}

// boundsEqual reports whether two bucket ladders are the same. The
// shared ladders (LatencyBuckets etc.) return the same backing array on
// every call, so the identity check makes the common repeated-resolution
// path free.
func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 || &a[0] == &b[0] {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// ladder125 builds a 1-2-5 ladder from lo through hi inclusive.
func ladder125(lo, hi float64) []float64 {
	var out []float64
	for base := lo; base <= hi; base *= 10 {
		for _, m := range []float64{1, 2, 5} {
			v := base * m
			if v > hi {
				break
			}
			out = append(out, v)
		}
	}
	return out
}

var (
	latencyBuckets = ladder125(1e3, 1e10) // 1µs … 10s, in nanoseconds
	sizeBuckets    = func() []float64 {
		var out []float64
		for v := 64.0; v <= 4*1024*1024*1024; v *= 4 {
			out = append(out, v) // 64 B … 4 GiB
		}
		return out
	}()
	rateBuckets = func() []float64 {
		var out []float64
		for v := 0.25; v <= 65536; v *= 2 {
			out = append(out, v) // 0.25 … 65536 MB/s
		}
		return out
	}()
)

// LatencyBuckets returns the standard latency bounds: a 1-2-5 ladder
// from 1µs to 10s, in nanoseconds.
func LatencyBuckets() []float64 { return latencyBuckets }

// SizeBuckets returns the standard size bounds: powers of four from
// 64 B to 4 GiB, in bytes.
func SizeBuckets() []float64 { return sizeBuckets }

// RateBuckets returns the standard throughput bounds: powers of two
// from 0.25 to 65536 MB/s.
func RateBuckets() []float64 { return rateBuckets }
