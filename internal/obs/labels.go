package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Dimensional metrics: the paper's archival failures are attributable —
// a node rotting, a tenant hammering the service, an encoding paying for
// its verification — so the registry's flat "one name, one number" model
// (PR 3) is extended here with labeled families. A LabeledCounter/
// LabeledGauge/LabeledHistogram is declared once with a FIXED label
// schema ({tenant}, {node}, {encoding}); each distinct label value gets
// its own series, resolved through an atomic-pointer copy-on-write map so
// the hot path is one lock-free map hit and zero allocations after a
// series' first touch (enforced by TestLabeledCounterZeroAllocs).
//
// Cardinality is bounded: a family holds at most maxSeries distinct
// series (DefaultMaxSeries unless raised with SetMaxSeries). Once full,
// unseen label values land in a shared overflow series rendered under
// OverflowValue, and every such landing bumps the registry's
// obs.labels.overflow counter — unbounded label spaces (an attacker
// minting tenants) degrade into one aggregate series instead of eating
// the heap, and the overflow counter says it happened.

// OverflowValue is the label value the shared overflow series renders
// under once a family's cardinality bound is hit.
const OverflowValue = "_overflow"

// DefaultMaxSeries is the per-family cardinality bound unless raised
// with SetMaxSeries.
const DefaultMaxSeries = 64

// labeledSeries pairs one series with the label values that key it.
type labeledSeries[S any] struct {
	labels []string
	s      S
}

// family is the label→series table behind the three Labeled types. The
// live map is behind an atomic pointer: readers load and index it with
// no lock; inserts copy-on-write under mu.
type family[S any] struct {
	name string
	keys []string
	mk   func() S

	// overflowed is the registry-wide obs.labels.overflow counter;
	// overflowHit records whether THIS family ever overflowed (so the
	// overflow series only appears in snapshots once it means something).
	overflowed  *Counter
	overflowHit atomic.Bool
	overflow    S

	mu        sync.Mutex
	maxSeries int
	series    atomic.Pointer[map[string]*labeledSeries[S]]
}

func newFamily[S any](name string, keys []string, overflowed *Counter, mk func() S) *family[S] {
	f := &family[S]{
		name:       name,
		keys:       append([]string(nil), keys...),
		mk:         mk,
		overflowed: overflowed,
		overflow:   mk(),
		maxSeries:  DefaultMaxSeries,
	}
	empty := make(map[string]*labeledSeries[S])
	f.series.Store(&empty)
	return f
}

// get1 resolves the single-label fast path: a lock-free map hit, no
// allocation once the series exists.
func (f *family[S]) get1(value string) S {
	m := f.series.Load()
	if e, ok := (*m)[value]; ok {
		return e.s
	}
	return f.miss(value, []string{value})
}

// getN resolves an arbitrary-arity label set. The composite key is built
// in a stack buffer so steady-state lookups stay allocation-free too.
func (f *family[S]) getN(values []string) S {
	if len(values) != len(f.keys) {
		panic("obs: " + f.name + ": label value count does not match the family's schema")
	}
	if len(values) == 1 {
		return f.get1(values[0])
	}
	var arr [128]byte
	buf := arr[:0]
	for i, v := range values {
		if i > 0 {
			buf = append(buf, 0x1f) // unit separator; not a legal rune in our label values
		}
		buf = append(buf, v...)
	}
	m := f.series.Load()
	if e, ok := (*m)[string(buf)]; ok { // compiler elides the conversion alloc for map access
		return e.s
	}
	return f.miss(string(buf), values)
}

// miss is the cold path: insert a new series (copy-on-write) or, past
// the cardinality bound, route to the overflow series.
func (f *family[S]) miss(key string, values []string) S {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := *f.series.Load()
	if e, ok := m[key]; ok {
		return e.s
	}
	if len(m) >= f.maxSeries {
		f.overflowHit.Store(true)
		if f.overflowed != nil {
			f.overflowed.Inc()
		}
		return f.overflow
	}
	next := make(map[string]*labeledSeries[S], len(m)+1)
	for k, v := range m {
		next[k] = v
	}
	e := &labeledSeries[S]{labels: append([]string(nil), values...), s: f.mk()}
	next[key] = e
	f.series.Store(&next)
	return e.s
}

// setMaxSeries raises (or lowers, affecting only future inserts) the
// family's cardinality bound. Call before traffic flows.
func (f *family[S]) setMaxSeries(n int) {
	if n < 1 {
		return
	}
	f.mu.Lock()
	f.maxSeries = n
	f.mu.Unlock()
}

// each visits every live series sorted by label values, then — if the
// family ever overflowed — the overflow series under OverflowValue.
func (f *family[S]) each(fn func(labels []string, s S)) {
	m := *f.series.Load()
	entries := make([]*labeledSeries[S], 0, len(m))
	for _, e := range m {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].labels, entries[j].labels
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	for _, e := range entries {
		fn(e.labels, e.s)
	}
	if f.overflowHit.Load() {
		over := make([]string, len(f.keys))
		for i := range over {
			over[i] = OverflowValue
		}
		fn(over, f.overflow)
	}
}

// LabeledCounter is a counter family keyed by a fixed label schema.
type LabeledCounter struct {
	f *family[*Counter]
}

// Name returns the family name.
func (lc *LabeledCounter) Name() string { return lc.f.name }

// Keys returns the label schema declared at creation.
func (lc *LabeledCounter) Keys() []string { return append([]string(nil), lc.f.keys...) }

// With returns the series for one label value (single-label families).
// Steady state is lock-free and allocation-free.
func (lc *LabeledCounter) With(value string) *Counter { return lc.f.get1(value) }

// WithValues returns the series for a full label-value tuple; the count
// must match the schema.
func (lc *LabeledCounter) WithValues(values ...string) *Counter { return lc.f.getN(values) }

// SetMaxSeries raises the family's cardinality bound (DefaultMaxSeries
// otherwise). Call before traffic flows.
func (lc *LabeledCounter) SetMaxSeries(n int) { lc.f.setMaxSeries(n) }

// Each visits every series (sorted by label values; overflow last).
func (lc *LabeledCounter) Each(fn func(labels []string, c *Counter)) { lc.f.each(fn) }

// LabeledGauge is a gauge family keyed by a fixed label schema.
type LabeledGauge struct {
	f *family[*Gauge]
}

// Name returns the family name.
func (lg *LabeledGauge) Name() string { return lg.f.name }

// Keys returns the label schema declared at creation.
func (lg *LabeledGauge) Keys() []string { return append([]string(nil), lg.f.keys...) }

// With returns the series for one label value (single-label families).
func (lg *LabeledGauge) With(value string) *Gauge { return lg.f.get1(value) }

// WithValues returns the series for a full label-value tuple.
func (lg *LabeledGauge) WithValues(values ...string) *Gauge { return lg.f.getN(values) }

// SetMaxSeries raises the family's cardinality bound.
func (lg *LabeledGauge) SetMaxSeries(n int) { lg.f.setMaxSeries(n) }

// Each visits every series (sorted by label values; overflow last).
func (lg *LabeledGauge) Each(fn func(labels []string, g *Gauge)) { lg.f.each(fn) }

// LabeledHistogram is a histogram family keyed by a fixed label schema;
// every series shares the bounds declared at creation.
type LabeledHistogram struct {
	f      *family[*Histogram]
	bounds []float64
}

// Name returns the family name.
func (lh *LabeledHistogram) Name() string { return lh.f.name }

// Keys returns the label schema declared at creation.
func (lh *LabeledHistogram) Keys() []string { return append([]string(nil), lh.f.keys...) }

// With returns the series for one label value (single-label families).
func (lh *LabeledHistogram) With(value string) *Histogram { return lh.f.get1(value) }

// WithValues returns the series for a full label-value tuple.
func (lh *LabeledHistogram) WithValues(values ...string) *Histogram { return lh.f.getN(values) }

// SetMaxSeries raises the family's cardinality bound.
func (lh *LabeledHistogram) SetMaxSeries(n int) { lh.f.setMaxSeries(n) }

// Each visits every series (sorted by label values; overflow last).
func (lh *LabeledHistogram) Each(fn func(labels []string, h *Histogram)) { lh.f.each(fn) }

// keysEqual reports whether two label schemas match exactly.
func keysEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// LabeledCounter returns the named counter family, creating it with the
// given label schema on first use. Like Histogram bounds, a family's
// schema is fixed at creation: a later caller passing DIFFERENT keys
// still gets the existing family, and the mismatch bumps
// obs.labels.schema_conflict.
func (r *Registry) LabeledCounter(name string, keys ...string) *LabeledCounter {
	r.mu.RLock()
	lc, ok := r.labeledCounters[name]
	r.mu.RUnlock()
	if ok {
		r.noteKeysConflict(lc.f.keys, keys)
		return lc
	}
	overflowed := r.Counter("obs.labels.overflow")
	r.mu.Lock()
	if lc, ok = r.labeledCounters[name]; !ok {
		lc = &LabeledCounter{f: newFamily(name, keys, overflowed, func() *Counter { return &Counter{} })}
		r.labeledCounters[name] = lc
		r.mu.Unlock()
		return lc
	}
	r.mu.Unlock()
	r.noteKeysConflict(lc.f.keys, keys)
	return lc
}

// LabeledGauge returns the named gauge family, creating it with the
// given label schema on first use (schema fixed at creation; see
// LabeledCounter).
func (r *Registry) LabeledGauge(name string, keys ...string) *LabeledGauge {
	r.mu.RLock()
	lg, ok := r.labeledGauges[name]
	r.mu.RUnlock()
	if ok {
		r.noteKeysConflict(lg.f.keys, keys)
		return lg
	}
	overflowed := r.Counter("obs.labels.overflow")
	r.mu.Lock()
	if lg, ok = r.labeledGauges[name]; !ok {
		lg = &LabeledGauge{f: newFamily(name, keys, overflowed, func() *Gauge { return &Gauge{} })}
		r.labeledGauges[name] = lg
		r.mu.Unlock()
		return lg
	}
	r.mu.Unlock()
	r.noteKeysConflict(lg.f.keys, keys)
	return lg
}

// LabeledHistogram returns the named histogram family, creating it with
// the given bucket bounds and label schema on first use. Every series
// shares the family's bounds; later callers passing different bounds or
// keys get the existing family plus a conflict count (see Histogram and
// LabeledCounter for the two contracts).
func (r *Registry) LabeledHistogram(name string, bounds []float64, keys ...string) *LabeledHistogram {
	r.mu.RLock()
	lh, ok := r.labeledHists[name]
	r.mu.RUnlock()
	if ok {
		r.noteKeysConflict(lh.f.keys, keys)
		r.noteLabeledBoundsConflict(lh, bounds)
		return lh
	}
	overflowed := r.Counter("obs.labels.overflow")
	r.mu.Lock()
	if lh, ok = r.labeledHists[name]; !ok {
		b := append([]float64(nil), bounds...)
		lh = &LabeledHistogram{bounds: b}
		lh.f = newFamily(name, keys, overflowed, func() *Histogram { return newHistogram(b) })
		r.labeledHists[name] = lh
		r.mu.Unlock()
		return lh
	}
	r.mu.Unlock()
	r.noteKeysConflict(lh.f.keys, keys)
	r.noteLabeledBoundsConflict(lh, bounds)
	return lh
}

func (r *Registry) noteKeysConflict(have, got []string) {
	if len(got) == 0 || keysEqual(have, got) {
		return
	}
	r.Counter("obs.labels.schema_conflict").Inc()
}

func (r *Registry) noteLabeledBoundsConflict(lh *LabeledHistogram, bounds []float64) {
	if len(bounds) == 0 || boundsEqual(lh.bounds, bounds) {
		return
	}
	r.Counter("obs.hist.bounds_conflict").Inc()
}
