package obs

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
)

func TestLabeledCounterBasics(t *testing.T) {
	r := NewRegistry()
	lc := r.LabeledCounter("api.requests", "tenant")
	lc.With("acme").Add(3)
	lc.With("acme").Inc()
	lc.With("umbrella").Inc()

	if got := lc.With("acme").Load(); got != 4 {
		t.Fatalf("acme = %d, want 4", got)
	}
	if got := lc.With("umbrella").Load(); got != 1 {
		t.Fatalf("umbrella = %d, want 1", got)
	}
	// Same name resolves the same family; series identity is stable.
	if r.LabeledCounter("api.requests", "tenant").With("acme") != lc.With("acme") {
		t.Fatal("re-resolved family returned a different series")
	}
	if got := r.Counter("obs.labels.overflow").Load(); got != 0 {
		t.Fatalf("overflow counter = %d, want 0", got)
	}
}

func TestLabeledMultiKey(t *testing.T) {
	r := NewRegistry()
	lc := r.LabeledCounter("cluster.xfer", "node", "dir")
	lc.WithValues("03", "tx").Add(7)
	lc.WithValues("03", "rx").Add(2)
	if got := lc.WithValues("03", "tx").Load(); got != 7 {
		t.Fatalf("tx = %d, want 7", got)
	}
	if got := lc.WithValues("03", "rx").Load(); got != 2 {
		t.Fatalf("rx = %d, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	lc.WithValues("03")
}

func TestLabeledSchemaConflict(t *testing.T) {
	r := NewRegistry()
	r.LabeledCounter("api.requests", "tenant")
	r.LabeledCounter("api.requests", "node") // wrong keys: counted, not fatal
	if got := r.Counter("obs.labels.schema_conflict").Load(); got != 1 {
		t.Fatalf("schema_conflict = %d, want 1", got)
	}
}

func TestLabeledOverflow(t *testing.T) {
	r := NewRegistry()
	lc := r.LabeledCounter("api.requests", "tenant")
	lc.SetMaxSeries(4)
	for i := 0; i < 4; i++ {
		lc.With(fmt.Sprintf("t%d", i)).Inc()
	}
	// Past the bound: both land on the shared overflow series and each
	// landing bumps the registry counter.
	lc.With("t-extra-1").Add(5)
	lc.With("t-extra-2").Add(5)
	if got := r.Counter("obs.labels.overflow").Load(); got != 2 {
		t.Fatalf("obs.labels.overflow = %d, want 2", got)
	}

	var labels [][]string
	var values []int64
	lc.Each(func(l []string, c *Counter) {
		labels = append(labels, append([]string(nil), l...))
		values = append(values, c.Load())
	})
	if len(labels) != 5 {
		t.Fatalf("series count = %d, want 5 (4 live + overflow)", len(labels))
	}
	last := labels[len(labels)-1]
	if last[0] != OverflowValue {
		t.Fatalf("last series = %v, want overflow", last)
	}
	if values[len(values)-1] != 10 {
		t.Fatalf("overflow series = %d, want 10", values[len(values)-1])
	}
	// Existing series still resolve normally after overflow.
	if lc.With("t0").Load() != 1 {
		t.Fatal("live series disturbed by overflow")
	}
}

func TestLabeledHistogramAndGauge(t *testing.T) {
	r := NewRegistry()
	lh := r.LabeledHistogram("vault.put.ns", LatencyBuckets(), "encoding")
	for i := 0; i < 100; i++ {
		lh.With("erasure").Observe(1e6)
	}
	if got := lh.With("erasure").Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if p50 := lh.With("erasure").Quantile(0.5); p50 <= 0 || p50 > 2e6 {
		t.Fatalf("p50 = %g, want ~1e6", p50)
	}

	lg := r.LabeledGauge("api.inflight", "tenant")
	lg.With("acme").Add(2)
	lg.With("acme").Add(-1)
	if got := lg.With("acme").Load(); got != 1 {
		t.Fatalf("gauge = %d, want 1", got)
	}
}

func TestLabeledReset(t *testing.T) {
	r := NewRegistry()
	lc := r.LabeledCounter("api.requests", "tenant")
	series := lc.With("acme")
	series.Add(9)
	lh := r.LabeledHistogram("vault.put.ns", LatencyBuckets(), "encoding")
	lh.With("erasure").Observe(5e6)

	r.Reset()
	if got := series.Load(); got != 0 {
		t.Fatalf("counter after reset = %d, want 0", got)
	}
	if got := lh.With("erasure").Count(); got != 0 {
		t.Fatalf("hist count after reset = %d, want 0", got)
	}
	// The pre-reset pointer still observes into the zeroed series.
	series.Inc()
	if got := lc.With("acme").Load(); got != 1 {
		t.Fatal("pre-reset series pointer detached from family")
	}
}

func TestLabeledConcurrent(t *testing.T) {
	r := NewRegistry()
	lc := r.LabeledCounter("api.requests", "tenant")
	var wg sync.WaitGroup
	const goroutines, perG = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lc.With("t" + strconv.Itoa(i%8)).Inc()
			}
		}(g)
	}
	wg.Wait()
	var total int64
	lc.Each(func(_ []string, c *Counter) { total += c.Load() })
	if total != goroutines*perG {
		t.Fatalf("total = %d, want %d", total, goroutines*perG)
	}
}

// TestLabeledCounterZeroAllocs is the hot-path gate the issue demands:
// after a series' first touch, With+Inc must not allocate. The verify
// skill runs this by name.
func TestLabeledCounterZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race for the alloc gate")
	}
	r := NewRegistry()
	lc := r.LabeledCounter("api.requests", "tenant")
	lc.With("acme").Inc() // first touch: pays the copy-on-write insert
	if n := testing.AllocsPerRun(1000, func() {
		lc.With("acme").Inc()
	}); n != 0 {
		t.Fatalf("labeled counter hot path allocates %v/op, want 0", n)
	}

	lh := r.LabeledHistogram("vault.put.ns", LatencyBuckets(), "encoding")
	lh.With("erasure").Observe(1)
	if n := testing.AllocsPerRun(1000, func() {
		lh.With("erasure").Observe(1e6)
	}); n != 0 {
		t.Fatalf("labeled histogram hot path allocates %v/op, want 0", n)
	}
}
