// Package obs is the framework's observability layer: a dependency-free
// metrics registry (atomic counters, gauges, and fixed-bucket histograms
// with p50/p95/p99 estimation) plus a lightweight span hook for timing
// operations. The survivable-storage systems the paper surveys (PASIS,
// POTSHARDS) treat read-path telemetry as the basis for repair
// scheduling; here the same counters back the degraded-read bug fixes,
// the attacksim availability tables, and papereval's measured §3.2
// re-derivation (BENCH_obs.json).
//
// Naming convention: metric names are dotted lowercase paths of the form
// "layer.op.outcome" — e.g. cluster.get.ok, cluster.fetch.discarded,
// vault.put.err. Per-node attribution appends a node suffix
// (cluster.fetch.discarded.node03). Latency histograms observe
// nanoseconds and carry a ".ns" or span ".ok"/".err" suffix; size
// histograms observe bytes; throughput histograms observe MB/s.
//
// Everything is safe for concurrent use. Counters and histograms are
// plain atomics with no locks on the observation path; the registry's
// map is only locked on first resolution of a name, so hot paths that
// pre-resolve their metrics (the cluster and vault do) pay a few atomic
// adds per operation. Spans allocate nothing when the registry is
// disabled.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic value that can move in both directions.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry (or use Default).
type Registry struct {
	enabled atomic.Bool

	mu              sync.RWMutex
	counters        map[string]*Counter
	gauges          map[string]*Gauge
	hists           map[string]*Histogram
	labeledCounters map[string]*LabeledCounter
	labeledGauges   map[string]*LabeledGauge
	labeledHists    map[string]*LabeledHistogram
}

// NewRegistry creates an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{
		counters:        make(map[string]*Counter),
		gauges:          make(map[string]*Gauge),
		hists:           make(map[string]*Histogram),
		labeledCounters: make(map[string]*LabeledCounter),
		labeledGauges:   make(map[string]*LabeledGauge),
		labeledHists:    make(map[string]*LabeledHistogram),
	}
	r.enabled.Store(true)
	return r
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. The cluster and vault
// resolve their metrics from it unless explicitly pointed elsewhere.
func Default() *Registry { return defaultRegistry }

// SetEnabled flips span timing on or off. Counters and histograms keep
// recording regardless (they are cheap atomics); disabling only turns
// Span into a no-op so fully untimed runs cost nothing.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether span timing is on.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use; bounds must be sorted ascending.
//
// Contract: a histogram's bounds are fixed at creation. A later caller
// passing DIFFERENT bounds still gets the existing histogram — its
// observations land in the original buckets — but the mismatch is no
// longer silent: each such call increments the obs.hist.bounds_conflict
// counter, so a nonzero value there means two call sites disagree about
// a metric's bucketing and one of them is being misled. Passing nil (or
// empty) bounds never conflicts — it is the "look up, don't care about
// bucketing" form.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		r.noteBoundsConflict(h, bounds)
		return h
	}
	r.mu.Lock()
	if h, ok = r.hists[name]; !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
		r.mu.Unlock()
		return h
	}
	r.mu.Unlock()
	// Raced with another creator: check against what actually won.
	r.noteBoundsConflict(h, bounds)
	return h
}

// noteBoundsConflict records a Histogram call whose bounds disagree with
// the histogram that already exists. Called without r.mu held (Counter
// takes the lock itself).
func (r *Registry) noteBoundsConflict(h *Histogram, bounds []float64) {
	if len(bounds) == 0 || boundsEqual(h.bounds, bounds) {
		return
	}
	r.Counter("obs.hist.bounds_conflict").Inc()
}

// nopSpanEnd is the shared no-op returned while the registry is
// disabled, so hot paths pay neither a closure allocation nor a clock
// read.
var nopSpanEnd = func(error) {}

// Span starts a timed span. The returned func records the elapsed time
// into the "<name>.ok" or "<name>.err" latency histogram depending on
// the error it is handed:
//
//	end := reg.Span("vault.put")
//	err := doPut()
//	end(err)
//
// When the registry is disabled, Span returns a shared no-op and
// allocates nothing.
func (r *Registry) Span(name string) func(err error) {
	if !r.enabled.Load() {
		return nopSpanEnd
	}
	start := time.Now()
	return func(err error) {
		d := float64(time.Since(start).Nanoseconds())
		suffix := ".ok"
		if err != nil {
			suffix = ".err"
		}
		r.Histogram(name+suffix, LatencyBuckets()).Observe(d)
	}
}

// Reset zeroes every metric in place. Pointers handed out earlier stay
// valid (they observe into the zeroed state), so instrumented components
// need no re-wiring between measurement windows.
//
// Reset holds the registry lock exclusively, so it cannot interleave
// with Snapshot: a snapshot sees every histogram either entirely before
// or entirely after a concurrent Reset, never a half-zeroed bucket set.
// (Observations racing either call are individually atomic and may land
// on either side of the boundary; that skew is inherent to lock-free
// recording and bounded by the in-flight operations.)
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
	for _, lc := range r.labeledCounters {
		lc.f.each(func(_ []string, c *Counter) { c.v.Store(0) })
	}
	for _, lg := range r.labeledGauges {
		lg.f.each(func(_ []string, g *Gauge) { g.v.Store(0) })
	}
	for _, lh := range r.labeledHists {
		lh.f.each(func(_ []string, h *Histogram) { h.reset() })
	}
}
