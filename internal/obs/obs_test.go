package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cluster.put.ok")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("cluster.put.ok") != c {
		t.Fatal("second resolution returned a different counter")
	}
	g := r.Gauge("cluster.staged")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("vault.get.ns", LatencyBuckets())
	// 100 observations spread uniformly across 1..100 µs.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 1e3)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 20e3 || p50 > 100e3 {
		t.Fatalf("p50 = %v, want within the observed range", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 {
		t.Fatalf("p99 %v < p50 %v", p99, p50)
	}
	if mean := h.Mean(); mean < 40e3 || mean > 60e3 {
		t.Fatalf("mean = %v, want ≈ 50.5µs", mean)
	}
	// Overflow: a huge value lands in the overflow bucket, quantile
	// saturates at the last bound.
	h2 := r.Histogram("x.overflow", []float64{1, 2})
	h2.Observe(100)
	if q := h2.Quantile(0.99); q != 2 {
		t.Fatalf("overflow quantile = %v, want last bound", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("empty", LatencyBuckets())
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestSpan(t *testing.T) {
	r := NewRegistry()
	end := r.Span("op")
	end(nil)
	endErr := r.Span("op")
	endErr(errors.New("boom"))
	snap := r.Snapshot()
	if snap.Histograms["op.ok"].Count != 1 {
		t.Fatalf("op.ok count = %d, want 1", snap.Histograms["op.ok"].Count)
	}
	if snap.Histograms["op.err"].Count != 1 {
		t.Fatalf("op.err count = %d, want 1", snap.Histograms["op.err"].Count)
	}

	// Disabled: Span is the shared no-op and records nothing.
	r.SetEnabled(false)
	r.Span("op")(nil)
	if got := r.Snapshot().Histograms["op.ok"].Count; got != 1 {
		t.Fatalf("disabled span recorded: count = %d", got)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b.ok").Add(3)
	r.Histogram("lat.ns", LatencyBuckets()).Observe(5e3)
	blob := r.Snapshot().JSON()
	var round Snapshot
	if err := json.Unmarshal(blob, &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if round.Counters["a.b.ok"] != 3 {
		t.Fatalf("counter lost in JSON: %+v", round.Counters)
	}
	if round.Schema == "" || !strings.HasPrefix(round.Schema, "securearchive/obs/") {
		t.Fatalf("schema = %q", round.Schema)
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("h", []float64{1, 10})
	c.Add(9)
	h.Observe(5)
	r.Reset()
	if c.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("reset left state behind")
	}
	// Old pointers still record after reset.
	c.Inc()
	if r.Counter("n").Load() != 1 {
		t.Fatal("pre-reset pointer detached from registry")
	}
}

// TestHistogramBoundsConflict pins the Histogram contract: the first
// caller's bounds win, later disagreeing callers get the existing
// histogram plus a tick on obs.hist.bounds_conflict, and nil/empty
// bounds are always a conflict-free lookup.
func TestHistogramBoundsConflict(t *testing.T) {
	r := NewRegistry()
	conflict := r.Counter("obs.hist.bounds_conflict")

	h := r.Histogram("lat", LatencyBuckets())
	if r.Histogram("lat", LatencyBuckets()) != h || conflict.Load() != 0 {
		t.Fatalf("same bounds flagged as conflict (count=%d)", conflict.Load())
	}
	if r.Histogram("lat", nil) != h || conflict.Load() != 0 {
		t.Fatalf("nil-bounds lookup flagged as conflict (count=%d)", conflict.Load())
	}
	// An equal-by-value copy must not conflict either.
	cp := append([]float64(nil), LatencyBuckets()...)
	if r.Histogram("lat", cp) != h || conflict.Load() != 0 {
		t.Fatalf("value-equal bounds flagged as conflict (count=%d)", conflict.Load())
	}
	// Genuinely different bounds: same histogram back, conflict counted.
	if r.Histogram("lat", SizeBuckets()) != h {
		t.Fatal("conflicting bounds returned a different histogram")
	}
	if conflict.Load() != 1 {
		t.Fatalf("bounds_conflict = %d, want 1", conflict.Load())
	}
	r.Histogram("lat", []float64{1, 2, 3})
	if conflict.Load() != 2 {
		t.Fatalf("bounds_conflict = %d, want 2", conflict.Load())
	}
}

// TestConcurrent exercises the lock-free observation paths under -race.
func TestConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Histogram("h", LatencyBuckets()).Observe(float64(i))
				end := r.Span("s")
				end(nil)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Load(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("concurrent histogram = %d, want 8000", got)
	}
}

// TestSnapshotResetRace hammers Snapshot against Reset and live
// observations. Before Reset took the write lock, both sides held
// RLock and could interleave, letting a snapshot read half-zeroed
// histograms; under -race this test is the regression guard.
func TestSnapshotResetRace(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := r.Histogram("h", LatencyBuckets())
			for {
				select {
				case <-stop:
					return
				default:
					r.Counter("c").Inc()
					r.Gauge("g").Add(1)
					h.Observe(5e3)
				}
			}
		}()
	}
	var walkers sync.WaitGroup
	walkers.Add(2)
	go func() {
		defer walkers.Done()
		for i := 0; i < 200; i++ {
			s := r.Snapshot()
			if hs, ok := s.Histograms["h"]; ok && hs.Count < 0 {
				t.Error("snapshot observed negative count")
				return
			}
		}
	}()
	go func() {
		defer walkers.Done()
		for i := 0; i < 200; i++ {
			r.Reset()
		}
	}()
	walkers.Wait()
	close(stop)
	wg.Wait()
}
