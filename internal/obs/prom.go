package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), which is what the monitor's /metrics endpoint
// serves. Counters and gauges map directly; histograms are exported as
// summaries — pre-computed p50/p95/p99 quantiles plus _sum and _count —
// because the registry estimates quantiles at snapshot time rather than
// shipping raw buckets. Dotted metric names become underscore-separated
// (vault.get.ok → vault_get_ok); output is sorted by name so scrapes
// diff cleanly.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		_, err := fmt.Fprintf(w,
			"# TYPE %s summary\n%s{quantile=\"0.5\"} %g\n%s{quantile=\"0.95\"} %g\n%s{quantile=\"0.99\"} %g\n%s_sum %g\n%s_count %d\n",
			pn, pn, h.P50, pn, h.P95, pn, h.P99, pn, h.Sum, pn, h.Count)
		if err != nil {
			return err
		}
	}
	return nil
}

// promName maps a dotted registry name onto the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*: dots and dashes become underscores, any
// other illegal rune becomes '_', and a leading digit gets a '_' prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
