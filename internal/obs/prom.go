package obs

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), which is what the monitor's /metrics endpoint
// serves. Counters and gauges map directly; histograms are exported as
// summaries — pre-computed p50/p95/p99 quantiles plus _sum and _count —
// because the registry estimates quantiles at snapshot time rather than
// shipping raw buckets. Dotted metric names become underscore-separated
// (vault.get.ok → vault_get_ok); output is sorted by name so scrapes
// diff cleanly.
//
// Labeled families render with a label set per series
// (api_requests_total{tenant="acme"} 42); label VALUES pass through a
// backslash escaper (\\, \", \n) per the exposition grammar, since tenant
// names are caller-controlled. Labeled counters gain the conventional
// _total suffix — flat counters keep their bare names so pre-existing
// dashboards don't move.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	for _, name := range sortedKeys(s.LabeledCounters) {
		fs := s.LabeledCounters[name]
		pn := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", pn); err != nil {
			return err
		}
		for _, se := range fs.Series {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", pn, promLabels(fs.Keys, se.Labels, ""), se.Value); err != nil {
				return err
			}
		}
	}

	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}

	for _, name := range sortedKeys(s.LabeledGauges) {
		fs := s.LabeledGauges[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", pn); err != nil {
			return err
		}
		for _, se := range fs.Series {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", pn, promLabels(fs.Keys, se.Labels, ""), se.Value); err != nil {
				return err
			}
		}
	}

	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		_, err := fmt.Fprintf(w,
			"# TYPE %s summary\n%s{quantile=\"0.5\"} %g\n%s{quantile=\"0.95\"} %g\n%s{quantile=\"0.99\"} %g\n%s_sum %g\n%s_count %d\n",
			pn, pn, h.P50, pn, h.P95, pn, h.P99, pn, h.Sum, pn, h.Count)
		if err != nil {
			return err
		}
	}

	for _, name := range sortedKeys(s.LabeledHistograms) {
		fs := s.LabeledHistograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", pn); err != nil {
			return err
		}
		for _, se := range fs.Series {
			_, err := fmt.Fprintf(w,
				"%s%s %g\n%s%s %g\n%s%s %g\n%s_sum%s %g\n%s_count%s %d\n",
				pn, promLabels(fs.Keys, se.Labels, `quantile="0.5"`), se.P50,
				pn, promLabels(fs.Keys, se.Labels, `quantile="0.95"`), se.P95,
				pn, promLabels(fs.Keys, se.Labels, `quantile="0.99"`), se.P99,
				pn, promLabels(fs.Keys, se.Labels, ""), se.Sum,
				pn, promLabels(fs.Keys, se.Labels, ""), se.Count)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// promLabels renders a {k="v",...} label set. extra, when non-empty, is
// a pre-rendered pair (the summary quantile) appended after the family's
// own labels.
func promLabels(keys, values []string, extra string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(k))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	if extra != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the exposition-format escaping rules for
// quoted label values: backslash, double-quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 4)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// promName maps a dotted registry name onto the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*: dots and dashes become underscores, any
// other illegal rune becomes '_', and a leading digit gets a '_' prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
