package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("vault.get.degraded").Add(3)
	r.Gauge("cluster.nodes.up").Set(12)
	h := r.Histogram("vault.get.ok", LatencyBuckets())
	for i := 0; i < 100; i++ {
		h.Observe(1e6) // 1ms
	}

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE vault_get_degraded counter",
		"vault_get_degraded 3",
		"# TYPE cluster_nodes_up gauge",
		"cluster_nodes_up 12",
		"# TYPE vault_get_ok summary",
		`vault_get_ok{quantile="0.5"}`,
		`vault_get_ok{quantile="0.99"}`,
		"vault_get_ok_sum 1e+08",
		"vault_get_ok_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must fit NAME{labels} VALUE with a legal name.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if strings.ContainsAny(name, ".-") {
			t.Fatalf("unsanitized metric name in %q", line)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"vault.get.ok":                    "vault_get_ok",
		"cluster.fetch.discarded.node03":  "cluster_fetch_discarded_node03",
		"9lives":                          "_9lives",
		"weird-name with spaces":          "weird_name_with_spaces",
		"already_fine:subsystem":          "already_fine:subsystem",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
