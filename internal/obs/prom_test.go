package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("vault.get.degraded").Add(3)
	r.Gauge("cluster.nodes.up").Set(12)
	h := r.Histogram("vault.get.ok", LatencyBuckets())
	for i := 0; i < 100; i++ {
		h.Observe(1e6) // 1ms
	}

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE vault_get_degraded counter",
		"vault_get_degraded 3",
		"# TYPE cluster_nodes_up gauge",
		"cluster_nodes_up 12",
		"# TYPE vault_get_ok summary",
		`vault_get_ok{quantile="0.5"}`,
		`vault_get_ok{quantile="0.99"}`,
		"vault_get_ok_sum 1e+08",
		"vault_get_ok_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	checkPromGrammar(t, out)
}

// checkPromGrammar verifies every non-comment line fits
// NAME{labels} VALUE with a legal name and balanced quoting in the
// label block. Label values may contain spaces and escapes, so the line
// is split at the label block's closing brace rather than on fields.
func checkPromGrammar(t *testing.T, out string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, rest := line, ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			end := -1
			inQuote := false
			for j := i + 1; j < len(line); j++ {
				switch {
				case inQuote && line[j] == '\\':
					j++ // skip escaped char
				case line[j] == '"':
					inQuote = !inQuote
				case !inQuote && line[j] == '}':
					end = j
				}
				if end >= 0 {
					break
				}
			}
			if end < 0 {
				t.Fatalf("unterminated label block in %q", line)
			}
			labels := line[i+1 : end]
			for _, pair := range splitLabelPairs(labels) {
				k, v, ok := strings.Cut(pair, "=")
				if !ok || !strings.HasPrefix(v, `"`) || !strings.HasSuffix(v, `"`) {
					t.Fatalf("malformed label pair %q in %q", pair, line)
				}
				if strings.ContainsAny(k, ".-") || k == "" {
					t.Fatalf("illegal label name %q in %q", k, line)
				}
				if strings.ContainsAny(strings.TrimSuffix(v[1:], `"`), "\n") {
					t.Fatalf("unescaped newline in label value in %q", line)
				}
			}
			rest = line[end+1:]
		} else if sp := strings.IndexByte(line, ' '); sp >= 0 {
			name, rest = line[:sp], line[sp:]
		}
		if fields := strings.Fields(rest); len(fields) != 1 {
			t.Fatalf("malformed exposition line %q", line)
		}
		if strings.ContainsAny(name, ".-") || name == "" {
			t.Fatalf("unsanitized metric name in %q", line)
		}
	}
}

// splitLabelPairs splits k="v" pairs on commas outside quotes.
func splitLabelPairs(s string) []string {
	var pairs []string
	start, inQuote := 0, false
	for i := 0; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == ',':
			pairs = append(pairs, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		pairs = append(pairs, s[start:])
	}
	return pairs
}

func TestWritePrometheusLabeled(t *testing.T) {
	r := NewRegistry()
	lc := r.LabeledCounter("api.requests", "tenant")
	lc.With("acme").Add(42)
	lc.With("umbrella").Add(7)
	lg := r.LabeledGauge("api.inflight", "tenant")
	lg.With("acme").Set(3)
	lh := r.LabeledHistogram("vault.put.ns", LatencyBuckets(), "encoding")
	for i := 0; i < 10; i++ {
		lh.With("erasure").Observe(2e6)
	}

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE api_requests_total counter",
		`api_requests_total{tenant="acme"} 42`,
		`api_requests_total{tenant="umbrella"} 7`,
		`api_inflight{tenant="acme"} 3`,
		"# TYPE vault_put_ns summary",
		`vault_put_ns{encoding="erasure",quantile="0.5"}`,
		`vault_put_ns{encoding="erasure",quantile="0.99"}`,
		`vault_put_ns_sum{encoding="erasure"} 2e+07`,
		`vault_put_ns_count{encoding="erasure"} 10`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	checkPromGrammar(t, out)
}

func TestWritePrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	lc := r.LabeledCounter("api.requests", "tenant")
	lc.With(`quo"te`).Inc()
	lc.With(`back\slash`).Inc()
	lc.With("new\nline").Inc()
	lc.With("with space").Inc()

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`api_requests_total{tenant="quo\"te"} 1`,
		`api_requests_total{tenant="back\\slash"} 1`,
		`api_requests_total{tenant="new\nline"} 1`,
		`api_requests_total{tenant="with space"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	checkPromGrammar(t, out)
}

func TestWritePrometheusOverflowSeries(t *testing.T) {
	r := NewRegistry()
	lc := r.LabeledCounter("api.requests", "tenant")
	lc.SetMaxSeries(2)
	lc.With("a").Inc()
	lc.With("b").Inc()
	lc.With("c").Add(4) // overflows
	lc.With("d").Add(4) // same overflow series

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `api_requests_total{tenant="_overflow"} 8`) {
		t.Fatalf("overflow series missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, "obs_labels_overflow 2") {
		t.Fatalf("obs.labels.overflow counter missing:\n%s", out)
	}
	checkPromGrammar(t, out)
}

func TestSnapshotLabeledStable(t *testing.T) {
	r := NewRegistry()
	lc := r.LabeledCounter("cluster.probe", "node")
	lc.With("00").Add(5)
	lc.With("01").Add(3)
	lh := r.LabeledHistogram("vault.put.ns", LatencyBuckets(), "encoding")
	lh.With("erasure").Observe(1e6)

	s := r.Snapshot()
	if s.Schema != SchemaVersion {
		t.Fatalf("schema = %q, want %q", s.Schema, SchemaVersion)
	}
	fam, ok := s.LabeledCounters["cluster.probe"]
	if !ok {
		t.Fatal("cluster.probe family missing from snapshot")
	}
	if len(fam.Keys) != 1 || fam.Keys[0] != "node" {
		t.Fatalf("keys = %v", fam.Keys)
	}
	if len(fam.Series) != 2 || fam.Series[0].Labels[0] != "00" || fam.Series[0].Value != 5 {
		t.Fatalf("series = %+v", fam.Series)
	}
	if v, ok := s.Series("cluster.probe", "01"); !ok || v != 3 {
		t.Fatalf("Series lookup = %d,%v", v, ok)
	}
	hfam := s.LabeledHistograms["vault.put.ns"]
	if len(hfam.Series) != 1 || hfam.Series[0].Count != 1 {
		t.Fatalf("hist series = %+v", hfam.Series)
	}
	// Two identical registries produce byte-identical JSON.
	if string(s.JSON()) != string(r.Snapshot().JSON()) {
		t.Fatal("snapshot JSON not stable across calls")
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"vault.get.ok":                   "vault_get_ok",
		"cluster.fetch.discarded.node03": "cluster_fetch_discarded_node03",
		"9lives":                         "_9lives",
		"weird-name with spaces":         "weird_name_with_spaces",
		"already_fine:subsystem":         "already_fine:subsystem",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
