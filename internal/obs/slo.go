package obs

import (
	"sort"
	"sync"
	"time"
)

// Declarative SLOs over sliding windows. An SLOSpec names an objective
// ("availability ≥ 99.9%", "p99 get latency ≤ 100ms"); an SLO instance
// tracks good/bad events (and optionally latencies) for one subject —
// here, one tenant — over a Window, and reports compliance plus
// error-budget burn. Burn is the standard SRE ratio
//
//	burn = (1 − compliance) / (1 − objective)
//
// so burn 1.0 means "failing at exactly the rate the objective allows",
// burn 10 means the budget is being consumed 10× too fast, and burn 0
// means a clean window. The /slo monitor endpoint serializes an
// SLOTable's Report; papereval and the paper's long-horizon audit
// argument (PROPYLA-style re-protection) consume the same numbers.

// SLOSpec declares one objective. Either a pure availability SLO
// (LatencyTargetNs == 0: Record(good) feeds it) or a latency SLO
// (LatencyTargetNs > 0: Observe(ns) feeds it, good = within target).
type SLOSpec struct {
	// Name identifies the SLO ("availability", "get.latency").
	Name string
	// Objective is the target good-fraction in (0,1), e.g. 0.999.
	Objective float64
	// LatencyTargetNs, when nonzero, makes this a latency SLO: an
	// observation is good iff it completes within the target.
	LatencyTargetNs float64
	// Buckets and Interval size the sliding window; zero values take
	// DefaultSLOBuckets/DefaultSLOInterval.
	Buckets  int
	Interval time.Duration
}

// Default window geometry: 30 × 10s = a five-minute sliding window,
// short enough that a fault trips within seconds and a recovery clears
// within minutes, long enough to smooth single-request noise.
const DefaultSLOBuckets = 30

// DefaultSLOInterval is the default bucket width (see DefaultSLOBuckets).
const DefaultSLOInterval = 10 * time.Second

// SLO tracks one spec for one subject.
type SLO struct {
	spec SLOSpec
	good *Window
	bad  *Window
	lat  *Window // latency quantiles; nil for availability SLOs
}

func newSLO(spec SLOSpec) *SLO {
	if spec.Buckets <= 0 {
		spec.Buckets = DefaultSLOBuckets
	}
	if spec.Interval <= 0 {
		spec.Interval = DefaultSLOInterval
	}
	s := &SLO{
		spec: spec,
		good: NewWindow(spec.Buckets, spec.Interval, nil),
		bad:  NewWindow(spec.Buckets, spec.Interval, nil),
	}
	if spec.LatencyTargetNs > 0 {
		s.lat = NewWindow(spec.Buckets, spec.Interval, LatencyBuckets())
	}
	return s
}

// Spec returns the declaration this SLO tracks.
func (s *SLO) Spec() SLOSpec { return s.spec }

// RecordAt counts one event at time now.
func (s *SLO) RecordAt(now time.Time, good bool) {
	if good {
		s.good.AddAt(now, 1)
	} else {
		s.bad.AddAt(now, 1)
	}
}

// Record counts one event now.
func (s *SLO) Record(good bool) { s.RecordAt(time.Now(), good) }

// ObserveAt records one latency sample at time now; the sample is good
// iff it is within the spec's latency target.
func (s *SLO) ObserveAt(now time.Time, ns float64) {
	if s.lat != nil {
		s.lat.ObserveAt(now, ns)
	}
	s.RecordAt(now, s.spec.LatencyTargetNs <= 0 || ns <= s.spec.LatencyTargetNs)
}

// Observe records one latency sample now.
func (s *SLO) Observe(ns float64) { s.ObserveAt(time.Now(), ns) }

// SLOStatus is one SLO's evaluated state over its current window.
type SLOStatus struct {
	Name       string  `json:"name"`
	Objective  float64 `json:"objective"`
	Good       int64   `json:"good"`
	Bad        int64   `json:"bad"`
	Compliance float64 `json:"compliance"`
	BudgetBurn float64 `json:"budget_burn"`
	// P99Ns is reported for latency SLOs (0 otherwise).
	P99Ns    float64 `json:"p99_ns,omitempty"`
	TargetNs float64 `json:"target_ns,omitempty"`
	// WindowSec is the sliding window's span in seconds.
	WindowSec float64 `json:"window_sec"`
	Met       bool    `json:"met"`
}

// StatusAt evaluates the SLO over the window ending at now. An idle
// window (no events) is compliant: absence of traffic consumes no
// budget.
func (s *SLO) StatusAt(now time.Time) SLOStatus {
	good := s.good.CountAt(now)
	bad := s.bad.CountAt(now)
	st := SLOStatus{
		Name:       s.spec.Name,
		Objective:  s.spec.Objective,
		Good:       good,
		Bad:        bad,
		Compliance: 1,
		TargetNs:   s.spec.LatencyTargetNs,
		WindowSec:  s.good.Span().Seconds(),
	}
	if total := good + bad; total > 0 {
		st.Compliance = float64(good) / float64(total)
	}
	if s.spec.Objective < 1 {
		st.BudgetBurn = (1 - st.Compliance) / (1 - s.spec.Objective)
	} else if st.Compliance < 1 {
		st.BudgetBurn = 1e9 // objective of exactly 1 leaves no budget at all
	}
	if s.lat != nil {
		st.P99Ns = s.lat.QuantileAt(now, 0.99)
	}
	st.Met = st.Compliance >= s.spec.Objective
	return st
}

// Status evaluates the SLO over its current window.
func (s *SLO) Status() SLOStatus { return s.StatusAt(time.Now()) }

// SLOTable holds per-subject (per-tenant) instances of a fixed spec
// list. Subjects are bounded like labeled-metric families: past
// maxSubjects, unseen subjects share one OverflowValue row.
type SLOTable struct {
	specs []SLOSpec

	mu          sync.Mutex
	maxSubjects int
	subjects    map[string]map[string]*SLO // subject → spec name → SLO
}

// NewSLOTable declares a table tracking the given specs per subject.
func NewSLOTable(specs ...SLOSpec) *SLOTable {
	return &SLOTable{
		specs:       append([]SLOSpec(nil), specs...),
		maxSubjects: DefaultMaxSeries,
		subjects:    make(map[string]map[string]*SLO),
	}
}

// DefaultSLOSpecs returns the service-level objectives the archive
// service tracks per tenant out of the box.
func DefaultSLOSpecs() []SLOSpec {
	return []SLOSpec{
		{Name: "availability", Objective: 0.999},
		{Name: "get.latency", Objective: 0.99, LatencyTargetNs: 100e6}, // p99 get ≤ 100ms
		{Name: "degraded.reads", Objective: 0.99},
	}
}

// SetMaxSubjects bounds the number of distinct subjects tracked.
func (t *SLOTable) SetMaxSubjects(n int) {
	if n < 1 {
		return
	}
	t.mu.Lock()
	t.maxSubjects = n
	t.mu.Unlock()
}

// Specs returns the table's spec list.
func (t *SLOTable) Specs() []SLOSpec { return append([]SLOSpec(nil), t.specs...) }

// SLO returns the instance for (subject, spec name), creating the
// subject's row on first use; nil if the spec name is not declared.
// Past the subject bound, unseen subjects share the OverflowValue row.
func (t *SLOTable) SLO(subject, name string) *SLO {
	t.mu.Lock()
	defer t.mu.Unlock()
	row, ok := t.subjects[subject]
	if !ok {
		if len(t.subjects) >= t.maxSubjects {
			subject = OverflowValue
			row = t.subjects[subject]
		}
		if row == nil {
			row = make(map[string]*SLO, len(t.specs))
			for _, spec := range t.specs {
				row[spec.Name] = newSLO(spec)
			}
			t.subjects[subject] = row
		}
	}
	return row[name]
}

// Row returns every SLO for one subject (creating the row), keyed by
// spec name. Useful for callers that feed several SLOs per event.
func (t *SLOTable) Row(subject string) map[string]*SLO {
	if len(t.specs) == 0 {
		return nil
	}
	t.SLO(subject, t.specs[0].Name) // ensure the row exists
	t.mu.Lock()
	defer t.mu.Unlock()
	row, ok := t.subjects[subject]
	if !ok {
		row = t.subjects[OverflowValue]
	}
	return row
}

// SLOReport is an SLOTable's full evaluated state, ready for JSON at
// the /slo endpoint.
type SLOReport struct {
	Schema   string             `json:"schema"`
	Subjects []SLOSubjectReport `json:"subjects"`
}

// SLOSubjectReport is one subject's evaluated SLO list.
type SLOSubjectReport struct {
	Subject string      `json:"subject"`
	SLOs    []SLOStatus `json:"slos"`
}

// SLOReportSchema identifies the /slo payload format.
const SLOReportSchema = "securearchive/slo/v1"

// ReportAt evaluates every subject's SLOs over windows ending at now,
// sorted by subject then spec order.
func (t *SLOTable) ReportAt(now time.Time) *SLOReport {
	t.mu.Lock()
	subjects := make([]string, 0, len(t.subjects))
	rows := make([]map[string]*SLO, 0, len(t.subjects))
	for name := range t.subjects {
		subjects = append(subjects, name)
	}
	sort.Strings(subjects)
	for _, name := range subjects {
		rows = append(rows, t.subjects[name])
	}
	t.mu.Unlock()

	rep := &SLOReport{Schema: SLOReportSchema}
	for i, name := range subjects {
		sr := SLOSubjectReport{Subject: name}
		for _, spec := range t.specs {
			if s := rows[i][spec.Name]; s != nil {
				sr.SLOs = append(sr.SLOs, s.StatusAt(now))
			}
		}
		rep.Subjects = append(rep.Subjects, sr)
	}
	return rep
}

// Report evaluates every subject's SLOs over their current windows.
func (t *SLOTable) Report() *SLOReport { return t.ReportAt(time.Now()) }
