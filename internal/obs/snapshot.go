package obs

import (
	"encoding/json"
	"sort"
)

// HistogramSnapshot is one histogram's exported state.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// CounterSeriesSnapshot is one labeled counter or gauge series: the label
// values (positionally matching the family's Keys) and the value.
type CounterSeriesSnapshot struct {
	Labels []string `json:"labels"`
	Value  int64    `json:"value"`
}

// HistogramSeriesSnapshot is one labeled histogram series.
type HistogramSeriesSnapshot struct {
	Labels []string `json:"labels"`
	HistogramSnapshot
}

// LabeledCounterSnapshot is one counter (or gauge) family: its label
// schema and every live series, sorted by label values with the overflow
// series (if ever hit) last.
type LabeledCounterSnapshot struct {
	Keys   []string                `json:"keys"`
	Series []CounterSeriesSnapshot `json:"series"`
}

// LabeledHistogramSnapshot is one histogram family.
type LabeledHistogramSnapshot struct {
	Keys   []string                  `json:"keys"`
	Series []HistogramSeriesSnapshot `json:"series"`
}

// Snapshot is a point-in-time export of a registry, ready for JSON
// (expvar-style dumps, archivectl stats, BENCH_obs.json). Map keys
// marshal sorted and labeled series are pre-sorted by label values, so
// output is stable across runs. Schema securearchive/obs/v2 adds the
// labeled_* sections; everything v1 consumers read is unchanged.
type Snapshot struct {
	Schema            string                              `json:"schema"`
	Counters          map[string]int64                    `json:"counters,omitempty"`
	Gauges            map[string]int64                    `json:"gauges,omitempty"`
	Histograms        map[string]HistogramSnapshot        `json:"histograms,omitempty"`
	LabeledCounters   map[string]LabeledCounterSnapshot   `json:"labeled_counters,omitempty"`
	LabeledGauges     map[string]LabeledCounterSnapshot   `json:"labeled_gauges,omitempty"`
	LabeledHistograms map[string]LabeledHistogramSnapshot `json:"labeled_histograms,omitempty"`
}

// SchemaVersion is the snapshot schema identifier emitted by Snapshot.
const SchemaVersion = "securearchive/obs/v2"

// Snapshot exports every metric currently in the registry. Metrics that
// have never been touched (zero counters, empty histograms) are still
// included — absence of traffic is itself a signal.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &Snapshot{
		Schema:     SchemaVersion,
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = snapHistogram(h)
	}
	if len(r.labeledCounters) > 0 {
		s.LabeledCounters = make(map[string]LabeledCounterSnapshot, len(r.labeledCounters))
		for name, lc := range r.labeledCounters {
			fs := LabeledCounterSnapshot{Keys: append([]string(nil), lc.f.keys...)}
			lc.f.each(func(labels []string, c *Counter) {
				fs.Series = append(fs.Series, CounterSeriesSnapshot{
					Labels: append([]string(nil), labels...),
					Value:  c.Load(),
				})
			})
			s.LabeledCounters[name] = fs
		}
	}
	if len(r.labeledGauges) > 0 {
		s.LabeledGauges = make(map[string]LabeledCounterSnapshot, len(r.labeledGauges))
		for name, lg := range r.labeledGauges {
			fs := LabeledCounterSnapshot{Keys: append([]string(nil), lg.f.keys...)}
			lg.f.each(func(labels []string, g *Gauge) {
				fs.Series = append(fs.Series, CounterSeriesSnapshot{
					Labels: append([]string(nil), labels...),
					Value:  g.Load(),
				})
			})
			s.LabeledGauges[name] = fs
		}
	}
	if len(r.labeledHists) > 0 {
		s.LabeledHistograms = make(map[string]LabeledHistogramSnapshot, len(r.labeledHists))
		for name, lh := range r.labeledHists {
			fs := LabeledHistogramSnapshot{Keys: append([]string(nil), lh.f.keys...)}
			lh.f.each(func(labels []string, h *Histogram) {
				fs.Series = append(fs.Series, HistogramSeriesSnapshot{
					Labels:            append([]string(nil), labels...),
					HistogramSnapshot: snapHistogram(h),
				})
			})
			s.LabeledHistograms[name] = fs
		}
	}
	return s
}

func snapHistogram(h *Histogram) HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Series looks up one labeled-counter series by family name and label
// values; ok is false when the family or series is absent. Consumers
// like papereval use it to read breakdowns out of an exported snapshot.
func (s *Snapshot) Series(family string, labels ...string) (int64, bool) {
	fs, ok := s.LabeledCounters[family]
	if !ok {
		return 0, false
	}
	for _, se := range fs.Series {
		if labelsEqual(se.Labels, labels) {
			return se.Value, true
		}
	}
	return 0, false
}

func labelsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedKeys returns a map's keys in sorted order (shared by the
// Prometheus writer).
func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// JSON renders the snapshot as indented JSON with a trailing newline.
func (s *Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Snapshot contains only maps of numbers and strings; marshal
		// cannot fail.
		panic("obs: snapshot marshal: " + err.Error())
	}
	return append(b, '\n')
}
