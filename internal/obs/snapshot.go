package obs

import "encoding/json"

// HistogramSnapshot is one histogram's exported state.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time export of a registry, ready for JSON
// (expvar-style dumps, archivectl stats, BENCH_obs.json). Map keys
// marshal sorted, so output is stable across runs.
type Snapshot struct {
	Schema     string                       `json:"schema"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot exports every metric currently in the registry. Metrics that
// have never been touched (zero counters, empty histograms) are still
// included — absence of traffic is itself a signal.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &Snapshot{
		Schema:     "securearchive/obs/v1",
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistogramSnapshot{
			Count: h.Count(),
			Sum:   h.Sum(),
			Mean:  h.Mean(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		}
	}
	return s
}

// JSON renders the snapshot as indented JSON with a trailing newline.
func (s *Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Snapshot contains only maps of numbers; marshal cannot fail.
		panic("obs: snapshot marshal: " + err.Error())
	}
	return append(b, '\n')
}
