package trace

import (
	"context"
	"testing"

	"securearchive/internal/obs"
)

// hotPath is the span shape of one degraded vault Get: a root with
// attrs, a fetch child, a probe grandchild with an event — what every
// Get pays when tracing is off.
func hotPath(tr *Tracer, ctx context.Context) {
	gctx, sp := tr.Start(ctx, "vault.get",
		Str("object", "obj-0042"), Str("encoding", "shamir"), Int("bytes", 65536))
	fctx, fsp := Child(gctx, "cluster.fetch", Int("n", 8), Int("want", 4))
	_, psp := Child(fctx, "cluster.probe", Int("node", 3), Int("shard", 3))
	psp.Event("node.down", Int("node", 3))
	psp.End(nil)
	fsp.SetAttrs(Int("fetched", 4))
	fsp.End(nil)
	sp.End(nil)
}

// TestDisabledSpanZeroAllocs is the enforcement behind the "disabled
// tracing costs nothing" contract: with tracing off and the registry's
// span timing off, the whole span shape of a Get allocates nothing.
func TestDisabledSpanZeroAllocs(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(false)
	tr := New(reg) // tracing disabled by default
	ctx := context.Background()
	if allocs := testing.AllocsPerRun(1000, func() { hotPath(tr, ctx) }); allocs != 0 {
		t.Fatalf("disabled trace path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestFlatModeZeroAllocsWarm: tracing off but flat histogram timing on
// (the default production configuration). After the first op resolves
// the histogram pair, steady state allocates nothing either.
func TestFlatModeZeroAllocsWarm(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(reg)
	ctx := context.Background()
	hotPath(tr, ctx) // warm the histogram cache
	if allocs := testing.AllocsPerRun(1000, func() { hotPath(tr, ctx) }); allocs != 0 {
		t.Fatalf("flat-mode trace path allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkSpanDisabled is the -benchmem witness for the same contract:
//
//	go test -bench BenchmarkSpanDisabled -benchmem ./internal/obs/trace/
//
// must report 0 B/op, 0 allocs/op.
func BenchmarkSpanDisabled(b *testing.B) {
	reg := obs.NewRegistry()
	reg.SetEnabled(false)
	tr := New(reg)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hotPath(tr, ctx)
	}
}

// BenchmarkSpanFlat measures the default production configuration:
// tracing off, flat histograms on (two clock reads + atomic adds per
// span; 0 allocs/op once warm).
func BenchmarkSpanFlat(b *testing.B) {
	reg := obs.NewRegistry()
	tr := New(reg)
	ctx := context.Background()
	hotPath(tr, ctx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hotPath(tr, ctx)
	}
}

// BenchmarkSpanEnabled prices full tracing for the same span shape.
func BenchmarkSpanEnabled(b *testing.B) {
	reg := obs.NewRegistry()
	tr := New(reg, WithRingSize(8))
	tr.SetEnabled(true)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hotPath(tr, ctx)
	}
}
