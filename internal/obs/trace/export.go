package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Exporter receives each completed trace, synchronously, on the
// goroutine that ended the root span. Implementations must be safe for
// concurrent calls and must treat the trace as read-only (the ring and
// other exporters share it).
type Exporter interface {
	Export(t *Trace)
}

// JSONL streams completed traces to a writer as one JSON object per
// line — the structured event journal. The format round-trips through
// ReadJSONL, so a journal written during a fault campaign can be
// reloaded and inspected offline.
type JSONL struct {
	mu sync.Mutex
	w  io.Writer
	// Err holds the first write error; once set, later traces are
	// dropped (an archival journal must never block the data path).
	err error
}

// NewJSONL creates a JSONL exporter over w (typically an append-mode
// file). The caller owns w's lifecycle; close it only after the tracer
// can no longer complete traces.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{w: w} }

// Export writes one trace as a single JSON line.
func (j *JSONL) Export(t *Trace) {
	blob, err := json.Marshal(t)
	if err != nil {
		// Trace contains only plain data; marshal cannot fail.
		panic("trace: jsonl marshal: " + err.Error())
	}
	blob = append(blob, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if _, err := j.w.Write(blob); err != nil {
		j.err = err
	}
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ReadJSONL parses a journal written by JSONL back into traces.
func ReadJSONL(r io.Reader) ([]*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var out []*Trace
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var t Trace
		if err := json.Unmarshal(b, &t); err != nil {
			return out, fmt.Errorf("trace: journal line %d: %w", line, err)
		}
		out = append(out, &t)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("trace: journal read: %w", err)
	}
	return out, nil
}

// Mem collects completed traces in memory — the exporter tests use.
type Mem struct {
	mu     sync.Mutex
	traces []*Trace
}

// Export appends the trace.
func (m *Mem) Export(t *Trace) {
	m.mu.Lock()
	m.traces = append(m.traces, t)
	m.mu.Unlock()
}

// Traces returns the collected traces in completion order.
func (m *Mem) Traces() []*Trace {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Trace(nil), m.traces...)
}

// Reset drops everything collected so far.
func (m *Mem) Reset() {
	m.mu.Lock()
	m.traces = nil
	m.mu.Unlock()
}
