package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"securearchive/internal/obs"
)

func TestJSONLRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(reg)
	tr.SetEnabled(true)
	var buf bytes.Buffer
	jl := NewJSONL(&buf)
	tr.AddExporter(jl)

	for i := 0; i < 3; i++ {
		ctx, root := tr.Start(context.Background(), "vault.get",
			Str("object", "o"), Int("bytes", 4096), Bool("degraded", i == 2))
		_, c := Child(ctx, "cluster.probe", Int("node", i))
		c.Event("shard.discarded", Int("node", i))
		c.End(errors.New("cluster: shard failed validation"))
		root.End(nil)
	}

	if err := jl.Err(); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Fatalf("journal lines = %d, want 3", lines)
	}
	back, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("round-tripped traces = %d, want 3", len(back))
	}
	orig := tr.Recent(0)
	for i, got := range back {
		want := orig[i]
		if got.ID != want.ID || got.Root != want.Root || len(got.Spans) != len(want.Spans) {
			t.Fatalf("trace %d diverged: got %v/%s/%d spans, want %v/%s/%d",
				i, got.ID, got.Root, len(got.Spans), want.ID, want.Root, len(want.Spans))
		}
		// Byte-identical re-marshal proves nothing was lost or reshaped.
		a, _ := json.Marshal(got)
		b, _ := json.Marshal(want)
		if !bytes.Equal(a, b) {
			t.Fatalf("trace %d re-marshal differs:\n%s\n%s", i, a, b)
		}
	}
	// Typed payloads survive.
	probe := back[1].Children(1)
	if len(probe) != 1 {
		t.Fatalf("children = %+v", probe)
	}
	if a, ok := probe[0].Attr("node"); !ok || a.Num != 1 || a.Kind != KindInt {
		t.Fatalf("node attr = %+v", a)
	}
	if probe[0].Events[0].Name != "shard.discarded" {
		t.Fatalf("event = %+v", probe[0].Events[0])
	}
	if probe[0].Err == "" {
		t.Fatal("span error lost in round trip")
	}
}

func TestJSONLWriteErrorSticks(t *testing.T) {
	j := NewJSONL(failWriter{})
	j.Export(&Trace{Root: "x", Spans: []*SpanRecord{}})
	if j.Err() == nil {
		t.Fatal("write error not captured")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestReadJSONLBadLine(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json\n")); err == nil {
		t.Fatal("malformed journal line accepted")
	}
}

func TestTraceIDHex(t *testing.T) {
	id := ID(0xDEADBEEF)
	if id.String() != "00000000deadbeef" {
		t.Fatalf("id = %s", id)
	}
	blob, _ := json.Marshal(id)
	var back ID
	if err := json.Unmarshal(blob, &back); err != nil || back != id {
		t.Fatalf("id round trip: %v %v", back, err)
	}
	if err := back.UnmarshalText([]byte("zz")); err == nil {
		t.Fatal("bad hex accepted")
	}
}
