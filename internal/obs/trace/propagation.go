package trace

import (
	"fmt"
	"strconv"
)

// W3C Trace Context propagation. The archive's traces are 64-bit
// (splitmix64 IDs); the wire format is the standard 128-bit traceparent
//
//	00-<32 hex trace-id>-<16 hex parent-span>-<2 hex flags>
//
// so the outbound form zero-pads the high 64 bits and the inbound form
// takes the low 64 bits (falling back to the high half when the low
// half is all-zero, so foreign 128-bit IDs still join rather than being
// dropped). This is what lets a client retry loop, a server handler,
// and the vault's stripe fan-out land in ONE tree across the HTTP
// boundary: the client injects, the server parses and roots its half of
// the trace on the same ID, and the completed halves merge in the ring.

// TraceparentHeader is the W3C propagation header name (HTTP header
// names are case-insensitive; the spec spells it lowercase).
const TraceparentHeader = "traceparent"

// FormatTraceparent renders a version-00 traceparent carrying the given
// trace and parent-span IDs, sampled flag set.
func FormatTraceparent(id ID, span uint64) string {
	return fmt.Sprintf("00-0000000000000000%016x-%016x-01", uint64(id), span)
}

// ParseTraceparent parses a version-00 traceparent. It returns the
// 64-bit trace ID, the parent span ID, and whether the header was
// well-formed and usable (version known, IDs non-zero).
func ParseTraceparent(h string) (ID, uint64, bool) {
	// 2 (version) + 1 + 32 (trace id) + 1 + 16 (span id) + 1 + 2 (flags)
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return 0, 0, false
	}
	if h[0] != '0' || h[1] != '0' { // only version 00 is defined
		return 0, 0, false
	}
	hi, err := strconv.ParseUint(h[3:19], 16, 64)
	if err != nil {
		return 0, 0, false
	}
	lo, err := strconv.ParseUint(h[19:35], 16, 64)
	if err != nil {
		return 0, 0, false
	}
	span, err := strconv.ParseUint(h[36:52], 16, 64)
	if err != nil {
		return 0, 0, false
	}
	if _, err := strconv.ParseUint(h[53:55], 16, 8); err != nil {
		return 0, 0, false
	}
	tid := lo
	if tid == 0 {
		tid = hi // foreign 128-bit ID with an all-zero low half
	}
	if tid == 0 || span == 0 {
		return 0, 0, false // all-zero IDs are invalid per spec
	}
	return ID(tid), span, true
}
