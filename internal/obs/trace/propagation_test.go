package trace

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"securearchive/internal/obs"
)

func TestTraceparentRoundTrip(t *testing.T) {
	h := FormatTraceparent(ID(0x4fa1b2c3d4e5f607), 0x0000000000000003)
	if h != "00-00000000000000004fa1b2c3d4e5f607-0000000000000003-01" {
		t.Fatalf("format = %q", h)
	}
	id, span, ok := ParseTraceparent(h)
	if !ok || id != ID(0x4fa1b2c3d4e5f607) || span != 3 {
		t.Fatalf("parse = %v %v %v", id, span, ok)
	}
}

func TestTraceparentParseRejects(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"01-00000000000000004fa1b2c3d4e5f607-0000000000000003-01", // unknown version
		"00-00000000000000000000000000000000-0000000000000003-01", // zero trace id
		"00-00000000000000004fa1b2c3d4e5f607-0000000000000000-01", // zero span id
		"00-zz000000000000004fa1b2c3d4e5f607-0000000000000003-01", // non-hex
		"00-00000000000000004fa1b2c3d4e5f607-0000000000000003-zz", // non-hex flags
		"00_00000000000000004fa1b2c3d4e5f607-0000000000000003-01", // bad separator
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Fatalf("ParseTraceparent(%q) accepted", h)
		}
	}
}

func TestTraceparentHigh64Fallback(t *testing.T) {
	// A foreign 128-bit ID whose low half is zero still joins via the
	// high half rather than being dropped.
	id, span, ok := ParseTraceparent("00-deadbeefcafef00d0000000000000000-0000000000000007-01")
	if !ok || id != ID(0xdeadbeefcafef00d) || span != 7 {
		t.Fatalf("parse = %v %v %v", id, span, ok)
	}
}

func TestStartRemoteJoinsTrace(t *testing.T) {
	tr := New(obs.NewRegistry())
	tr.SetEnabled(true)

	remoteID := ID(0xabcdef0123456789)
	ctx, root := tr.StartRemote(context.Background(), "api.put", remoteID, 5)
	if root.TraceID() != remoteID {
		t.Fatalf("trace id = %v, want %v", root.TraceID(), remoteID)
	}
	if root.SpanID() == 0 || root.SpanID() < 1<<63 {
		t.Fatalf("remote root span id = %d, want randomized high-bit base", root.SpanID())
	}
	_, child := Child(ctx, "vault.put")
	child.End(nil)
	root.End(nil)

	traces := tr.Recent(0)
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	got := traces[0]
	if got.ID != remoteID {
		t.Fatalf("completed trace id = %v", got.ID)
	}
	rs := got.RootSpan()
	if rs == nil || rs.Name != "api.put" || !rs.Remote || rs.Parent != 5 {
		t.Fatalf("root span = %+v", rs)
	}
	// The server-only half still renders: the remote-parented root must
	// appear in the timeline even though span 5 is absent.
	text := Timeline(got)
	if !strings.Contains(text, "api.put") || !strings.Contains(text, "vault.put") {
		t.Fatalf("timeline missing spans:\n%s", text)
	}
}

func TestStartRemoteFallsBackWithoutIDs(t *testing.T) {
	tr := New(obs.NewRegistry())
	tr.SetEnabled(true)
	_, s := tr.StartRemote(context.Background(), "api.get", 0, 0)
	if !s.Recording() {
		t.Fatal("expected a locally rooted span")
	}
	if s.SpanID() != 1 {
		t.Fatalf("span id = %d, want 1 (local root)", s.SpanID())
	}
	s.End(nil)
}

func TestStartRemotePrefersInProcessParent(t *testing.T) {
	tr := New(obs.NewRegistry())
	tr.SetEnabled(true)
	ctx, parent := tr.Start(context.Background(), "client.put")
	_, s := tr.StartRemote(ctx, "api.put", ID(0x1234), 9)
	if s.TraceID() != parent.TraceID() {
		t.Fatal("remote IDs overrode an in-process parent")
	}
	s.End(nil)
	parent.End(nil)
}

func TestCrossBoundaryMerge(t *testing.T) {
	tr := New(obs.NewRegistry())
	tr.SetEnabled(true)

	// Client half: roots the trace and "sends" a traceparent.
	cctx, cspan := tr.Start(context.Background(), "client.put")
	hdr := FormatTraceparent(cspan.TraceID(), cspan.SpanID())

	// Server half: parses the header, roots its half on the same ID.
	id, pspan, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatal("header did not parse")
	}
	sctx, sspan := tr.StartRemote(context.Background(), "api.put", id, pspan)
	_, vspan := Child(sctx, "vault.put")
	vspan.End(nil)
	sspan.End(nil) // server half completes first (response written)

	_ = cctx
	cspan.End(nil) // then the client half

	traces := tr.Recent(0)
	if len(traces) != 1 {
		t.Fatalf("ring holds %d traces, want 1 merged", len(traces))
	}
	m := traces[0]
	if m.ID != cspan.TraceID() {
		t.Fatalf("merged id = %v", m.ID)
	}
	if len(m.Spans) != 3 {
		t.Fatalf("merged spans = %d, want 3", len(m.Spans))
	}
	if m.Root != "client.put" {
		t.Fatalf("merged root = %q, want client.put", m.Root)
	}
	// The server root is parented under the client span: one tree.
	api := findSpan(m, "api.put")
	if api == nil || api.Parent != cspan.SpanID() {
		t.Fatalf("api span = %+v, want parent %d", api, cspan.SpanID())
	}
	vault := findSpan(m, "vault.put")
	if vault == nil || vault.Parent != api.SpanID {
		t.Fatalf("vault span not under api span: %+v", vault)
	}
	if d := m.Depth(); d != 3 {
		t.Fatalf("merged depth = %d, want 3", d)
	}
	text := Timeline(m)
	for _, want := range []string{"client.put", "api.put", "vault.put"} {
		if !strings.Contains(text, want) {
			t.Fatalf("timeline missing %q:\n%s", want, text)
		}
	}
}

func findSpan(t *Trace, name string) *SpanRecord {
	for _, s := range t.Spans {
		if s.Name == name {
			return s
		}
	}
	return nil
}

func TestTailRetention(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(reg, WithRingSize(2), WithTailRetention(2, time.Hour))
	tr.SetEnabled(true)

	mk := func(name string, err error) {
		_, s := tr.Start(context.Background(), name)
		s.End(err)
	}

	mk("bad.1", errors.New("boom")) // will be evicted from ring → tail
	mk("ok.1", nil)
	mk("ok.2", nil) // evicts bad.1 (interesting → tail)
	mk("ok.3", nil) // evicts ok.1 (boring → counted)

	tail := tr.Tail(0)
	if len(tail) != 1 || tail[0].Root != "bad.1" {
		t.Fatalf("tail = %+v, want [bad.1]", tail)
	}
	if got := reg.Counter("obs.trace.evicted").Load(); got != 1 {
		t.Fatalf("obs.trace.evicted = %d, want 1 (only the boring trace)", got)
	}

	// Fill the tail past its cap: displaced interesting traces count too.
	mk("bad.2", errors.New("boom"))
	mk("bad.3", errors.New("boom"))
	mk("ok.4", nil)
	mk("ok.5", nil) // by now bad.2 and bad.3 have been pushed to tail
	if got := len(tr.Tail(0)); got != 2 {
		t.Fatalf("tail len = %d, want 2 (bounded)", got)
	}
}
