package trace

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"
)

// ID identifies one trace: 64 bits, rendered as 16 lowercase hex digits
// everywhere (logs, JSONL journals, the /traces endpoint). Zero is never
// a valid trace ID — it is the "not traced" sentinel.
type ID uint64

// String renders the ID as 16 hex digits.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalText renders the ID as hex, so JSON carries "3fa9c1..." rather
// than a decimal that overflows other tools' integer parsers.
func (id ID) MarshalText() ([]byte, error) { return []byte(id.String()), nil }

// UnmarshalText parses the hex form.
func (id *ID) UnmarshalText(b []byte) error {
	v, err := strconv.ParseUint(string(b), 16, 64)
	if err != nil {
		return fmt.Errorf("trace: bad id %q: %w", b, err)
	}
	*id = ID(v)
	return nil
}

// Kind discriminates an Attr's payload.
type Kind uint8

// Attr kinds. String values live in Str; ints and bools in Num.
const (
	KindString Kind = iota
	KindInt
	KindBool
)

// Attr is one typed span or event attribute. The payload is stored
// unboxed (no interface values), so building attrs on a hot path does
// not allocate per attribute.
type Attr struct {
	Key  string `json:"k"`
	Kind Kind   `json:"t"`
	Str  string `json:"s,omitempty"`
	Num  int64  `json:"n,omitempty"`
}

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Kind: KindString, Str: v} }

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Kind: KindInt, Num: int64(v)} }

// Int64 builds an integer attribute from an int64 (byte counts, delays).
func Int64(key string, v int64) Attr { return Attr{Key: key, Kind: KindInt, Num: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, Kind: KindBool}
	if v {
		a.Num = 1
	}
	return a
}

// ValueString renders the attribute's payload for display.
func (a Attr) ValueString() string {
	switch a.Kind {
	case KindString:
		return a.Str
	case KindBool:
		if a.Num != 0 {
			return "true"
		}
		return "false"
	default:
		return strconv.FormatInt(a.Num, 10)
	}
}

// Event is a point-in-time occurrence inside a span — a shard discarded,
// a stage committed, a backoff slept. Offset is relative to the span's
// start, so events order within their span without a second clock read
// at render time.
type Event struct {
	Name     string `json:"name"`
	OffsetNs int64  `json:"offset_ns"`
	Attrs    []Attr `json:"attrs,omitempty"`
}

// SpanRecord is one completed span as exported: identity, hierarchy,
// timing, typed attributes and events. Span IDs are sequential within
// their trace starting at 1 (the root), so Parent == 0 marks the root
// and parent/child edges read directly off the records.
type SpanRecord struct {
	TraceID ID        `json:"trace_id"`
	SpanID  uint64    `json:"span_id"`
	Parent  uint64    `json:"parent_id,omitempty"`
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
	DurNs   int64     `json:"dur_ns"`
	Err     string    `json:"err,omitempty"`
	// Remote marks a span whose parent lives in another process (the
	// server half of a propagated traceparent): Parent is the remote
	// caller's span ID and may be absent from a server-only trace.
	Remote bool    `json:"remote,omitempty"`
	Attrs  []Attr  `json:"attrs,omitempty"`
	Events []Event `json:"events,omitempty"`
}

// Attr returns the value of the named attribute and whether it exists.
func (r *SpanRecord) Attr(key string) (Attr, bool) {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// Trace is one completed trace: the root span's identity and timing plus
// every finished span, ordered by start time.
type Trace struct {
	ID    ID        `json:"trace_id"`
	Root  string    `json:"root"`
	Start time.Time `json:"start"`
	DurNs int64     `json:"dur_ns"`
	// Dropped counts spans and events discarded by the per-trace bounds
	// (maxSpansPerTrace, maxEventsPerSpan) — nonzero means the record is
	// a prefix of what happened, not all of it.
	Dropped int64         `json:"dropped,omitempty"`
	Spans   []*SpanRecord `json:"spans"`
}

// RootSpan returns the trace's root span: the span with Parent == 0,
// or — for a server-only trace whose root points at a remote parent —
// the earliest span whose parent is not in the trace. Nil only for an
// empty trace.
func (t *Trace) RootSpan() *SpanRecord {
	byID := make(map[uint64]bool, len(t.Spans))
	for _, s := range t.Spans {
		byID[s.SpanID] = true
	}
	var fallback *SpanRecord
	for _, s := range t.Spans {
		if s.Parent == 0 {
			return s
		}
		if fallback == nil && !byID[s.Parent] {
			fallback = s
		}
	}
	return fallback
}

// Interesting reports whether the trace is worth tail-retaining: any
// span erred, spans or events were dropped, or the whole trace ran at
// least slowNs.
func (t *Trace) Interesting(slowNs int64) bool {
	if t.Dropped > 0 || (slowNs > 0 && t.DurNs >= slowNs) {
		return true
	}
	for _, s := range t.Spans {
		if s.Err != "" {
			return true
		}
	}
	return false
}

// Span returns the span with the given ID, or nil.
func (t *Trace) Span(id uint64) *SpanRecord {
	for _, s := range t.Spans {
		if s.SpanID == id {
			return s
		}
	}
	return nil
}

// Children returns the spans whose parent is the given span ID, in
// start order.
func (t *Trace) Children(parent uint64) []*SpanRecord {
	var out []*SpanRecord
	for _, s := range t.Spans {
		if s.Parent == parent && s.SpanID != s.Parent {
			out = append(out, s)
		}
	}
	return out
}

// EventCount counts events with the given name across every span.
func (t *Trace) EventCount(name string) int {
	n := 0
	for _, s := range t.Spans {
		for _, e := range s.Events {
			if e.Name == name {
				n++
			}
		}
	}
	return n
}

// Depth returns the maximum nesting depth: 1 for a root-only trace,
// 3 for vault → fetch → probe.
func (t *Trace) Depth() int {
	byID := make(map[uint64]*SpanRecord, len(t.Spans))
	for _, s := range t.Spans {
		byID[s.SpanID] = s
	}
	max := 0
	for _, s := range t.Spans {
		d := 0
		for cur := s; cur != nil && d <= len(t.Spans); cur = byID[cur.Parent] {
			d++
		}
		if d > max {
			max = d
		}
	}
	return max
}

// MarshalJSON guards against accidental schema drift: a Trace always
// marshals with its spans present (never null).
func (t *Trace) MarshalJSON() ([]byte, error) {
	type alias Trace
	a := (*alias)(t)
	if a.Spans == nil {
		a.Spans = []*SpanRecord{}
	}
	return json.Marshal(a)
}
