package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Timeline renders a completed trace as an indented per-span timeline —
// what the monitor's /traces endpoint serves and the fault-injection
// example prints for its slowest request:
//
//	trace 7c0f4e9b12aa3301 vault.get 2.31ms (9 spans)
//	  vault.get [object=census encoding=shamir] 2.31ms
//	    cluster.fetch [object=census n=8 want=4] 2.10ms
//	      cluster.probe [node=0 shard=0] 0.51ms ERR cluster: node offline: ...
//	        · node.down [node=0] +0.51ms
//	      cluster.probe [node=4 shard=4] 1.40ms
//	        · backoff.slept [attempt=1 delay_ns=200000] +0.20ms
//	    vault.decode [shards=4] 0.15ms
//	    vault.verify 0.02ms
//
// Spans nest by parent ID; siblings order by start time. Events render
// as "·" lines with their offset from the span's start.
func Timeline(t *Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s %s %s (%d spans", t.ID, t.Root, fmtNs(t.DurNs), len(t.Spans))
	if t.Dropped > 0 {
		fmt.Fprintf(&b, ", %d dropped", t.Dropped)
	}
	b.WriteString(")\n")
	// Spans whose parent is absent from the trace (the remote caller's
	// span in a server-only half of a propagated trace) render as
	// top-level rather than silently disappearing.
	byID := make(map[uint64]bool, len(t.Spans))
	for _, s := range t.Spans {
		byID[s.SpanID] = true
	}
	children := make(map[uint64][]*SpanRecord, len(t.Spans))
	for _, s := range t.Spans {
		parent := s.Parent
		if !byID[parent] {
			parent = 0
		}
		children[parent] = append(children[parent], s)
	}
	for _, kids := range children {
		sort.SliceStable(kids, func(i, j int) bool { return kids[i].Start.Before(kids[j].Start) })
	}
	var walk func(parent uint64, depth int)
	seen := make(map[uint64]bool, len(t.Spans))
	walk = func(parent uint64, depth int) {
		for _, s := range children[parent] {
			if seen[s.SpanID] {
				continue
			}
			seen[s.SpanID] = true
			indent := strings.Repeat("  ", depth)
			fmt.Fprintf(&b, "%s%s%s %s", indent, s.Name, fmtAttrs(s.Attrs), fmtNs(s.DurNs))
			if s.Err != "" {
				fmt.Fprintf(&b, " ERR %s", s.Err)
			}
			b.WriteByte('\n')
			for _, e := range s.Events {
				fmt.Fprintf(&b, "%s  · %s%s +%s\n", indent, e.Name, fmtAttrs(e.Attrs), fmtNs(e.OffsetNs))
			}
			walk(s.SpanID, depth+1)
		}
	}
	walk(0, 1)
	return b.String()
}

func fmtAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = a.Key + "=" + a.ValueString()
	}
	return " [" + strings.Join(parts, " ") + "]"
}

// fmtNs renders nanoseconds in the unit that keeps 2–4 significant
// digits readable.
func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
