// Package trace is the hierarchical half of the observability layer: a
// request-scoped span tree propagated through context.Context across the
// whole I/O path — Vault.Put/Get/Renew/Scrub at the root, cluster
// fetches and staged writes below, per-node probe attempts at the leaves
// — with typed attributes (object, encoding, node, shard, bytes,
// attempt) and structured events (shard.discarded, node.down,
// backoff.slept, stage.committed). Where the flat metrics registry in
// internal/obs answers "how is the archive doing in aggregate", a trace
// answers "where did THIS degraded Get spend its time".
//
// Completed traces land in a bounded in-memory ring (for the monitor's
// /traces endpoint and post-hoc inspection) and stream to any registered
// Exporter (a JSONL journal file, an in-memory collector for tests).
// Memory is bounded per trace too: spans and events beyond fixed caps
// are counted in Trace.Dropped rather than accumulated.
//
// The flat obs.Registry.Span histograms keep filling unchanged: every
// span that ends observes its duration into the "<name>.ok" or
// "<name>.err" latency histogram of the tracer's registry, and when
// tracing is disabled Tracer.Start degrades to exactly the old flat
// timing (histogram only, no span tree, context untouched). When both
// tracing and the registry's span timing are off, starting and ending a
// span allocates nothing and never reads the clock — the disabled hot
// path is free (see BenchmarkSpanDisabled).
//
// Concurrency: a Span value must be Ended exactly once and its
// SetAttrs/Event methods called from one goroutine at a time, but
// sibling spans of one trace may live on concurrent goroutines (the
// stripe read's probe fan-out does exactly this) — span completion is
// the only synchronised step, one short mutex acquisition per span.
package trace

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"securearchive/internal/obs"
)

// Bounds on per-trace memory. A vault op traces one span per probe
// attempt and a handful of pipeline stages, so real traces sit far below
// these; runaway instrumentation gets truncated and counted instead of
// eating the heap.
const (
	maxSpansPerTrace = 512
	maxEventsPerSpan = 64
)

// DefaultRingSize is how many completed traces a tracer retains for
// Recent unless configured otherwise.
const DefaultRingSize = 64

// Tail-retention defaults: how many "interesting" traces (any span
// erred, or the trace ran slower than the threshold) survive eviction
// from the main ring, and what counts as slow.
const (
	DefaultTailSize          = 16
	DefaultSlowTraceDuration = 100 * time.Millisecond
)

// Tracer creates spans and collects completed traces. Disabled (the
// default), it costs nothing beyond the flat histogram timing of its
// registry; see SetEnabled.
type Tracer struct {
	reg     *obs.Registry
	enabled atomic.Bool
	idState atomic.Uint64

	// hists caches the <name>.ok/<name>.err histogram pairs so span End
	// does not concatenate strings or take the registry's map lock on
	// the hot path.
	hmu   sync.RWMutex
	hists map[string]*histPair

	// rmu guards the completed-trace ring, the tail ring, and the
	// exporter list. It is taken once per completed trace, not per span.
	rmu       sync.Mutex
	ring      []*Trace
	ringCap   int
	pos       int
	completed uint64
	exporters []Exporter

	// tail is the second-chance ring: traces evicted from the main ring
	// that are interesting (erred or slow) land here instead of
	// vanishing, so a burst of healthy traffic cannot flush the one
	// degraded read an operator needs to see. Boring evictions (and
	// interesting ones falling off the tail itself) bump evicted.
	tail    []*Trace
	tailCap int
	tailPos int
	slowNs  int64
	evicted *obs.Counter
}

type histPair struct{ ok, err *obs.Histogram }

// Option configures New.
type Option func(*Tracer)

// WithRingSize bounds the completed-trace ring (DefaultRingSize
// otherwise; n < 1 keeps the default).
func WithRingSize(n int) Option {
	return func(t *Tracer) {
		if n >= 1 {
			t.ringCap = n
		}
	}
}

// WithTailRetention sizes the tail ring and sets the slow-trace
// threshold (defaults DefaultTailSize / DefaultSlowTraceDuration; n < 1
// or slow <= 0 keep the respective default).
func WithTailRetention(n int, slow time.Duration) Option {
	return func(t *Tracer) {
		if n >= 1 {
			t.tailCap = n
		}
		if slow > 0 {
			t.slowNs = slow.Nanoseconds()
		}
	}
}

// New creates a tracer bridging span durations into reg's latency
// histograms. Tracing itself starts disabled: until SetEnabled(true),
// Start records flat histograms only, exactly like obs.Registry.Span.
func New(reg *obs.Registry, opts ...Option) *Tracer {
	t := &Tracer{
		reg:     reg,
		hists:   make(map[string]*histPair),
		ringCap: DefaultRingSize,
		tailCap: DefaultTailSize,
		slowNs:  DefaultSlowTraceDuration.Nanoseconds(),
	}
	if reg != nil {
		t.evicted = reg.Counter("obs.trace.evicted")
	}
	t.idState.Store(uint64(time.Now().UnixNano()))
	for _, o := range opts {
		o(t)
	}
	return t
}

var defaultTracer = New(obs.Default())

// Default returns the process-wide tracer, bridged into obs.Default().
// The vault uses it unless pointed elsewhere (core.WithTracer).
func Default() *Tracer { return defaultTracer }

// SetEnabled flips span-tree recording. Disabled, Start degrades to the
// flat histogram timing (or to a free no-op when the registry's span
// timing is also off).
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether span trees are being recorded.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// AddExporter registers an exporter; every subsequently completed trace
// is handed to it synchronously on the goroutine that ended the root
// span.
func (t *Tracer) AddExporter(e Exporter) {
	t.rmu.Lock()
	t.exporters = append(t.exporters, e)
	t.rmu.Unlock()
}

// Completed returns the number of traces completed so far.
func (t *Tracer) Completed() uint64 {
	t.rmu.Lock()
	defer t.rmu.Unlock()
	return t.completed
}

// Recent returns up to n completed traces, oldest first (all retained
// traces when n <= 0). The returned slice is fresh; the traces are
// shared and must be treated as read-only.
func (t *Tracer) Recent(n int) []*Trace {
	t.rmu.Lock()
	defer t.rmu.Unlock()
	total := len(t.ring)
	if n <= 0 || n > total {
		n = total
	}
	out := make([]*Trace, 0, total)
	for i := 0; i < total; i++ {
		idx := i
		if total == t.ringCap {
			idx = (t.pos + i) % t.ringCap
		}
		out = append(out, t.ring[idx])
	}
	return out[total-n:]
}

// newTraceID draws a non-zero pseudo-random ID (splitmix64 over an
// atomic counter seeded from the tracer's creation time).
func (t *Tracer) newTraceID() ID {
	for {
		v := mix64(t.idState.Add(0x9E3779B97F4A7C15))
		if v != 0 {
			return ID(v)
		}
	}
}

// mix64 is the splitmix64 finalizer (same mixer the cluster's fault
// plan uses; duplicated because neither package can import the other).
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// active is one in-flight trace. Spans append themselves on End; the
// root span's End seals the trace and hands it to the tracer.
type active struct {
	t    *Tracer
	id   ID
	next atomic.Uint64 // span ID allocator; 1 is the root
	// root is the span ID whose End seals the trace. Locally rooted
	// traces use 1; remotely rooted halves (StartRemote) use a random
	// base so their span IDs cannot collide with the remote caller's
	// when the two halves merge in the ring.
	root  uint64
	drops atomic.Int64

	mu    sync.Mutex
	spans []*SpanRecord
}

// Span is a live span handle. The zero value is a valid no-op (every
// method returns immediately), which is how the disabled paths stay
// free. Copies share the same underlying record; End exactly once per
// logical span, from any one copy.
type Span struct {
	tr    *Tracer
	act   *active // nil in flat mode and for no-op spans
	rec   *SpanRecord
	name  string
	start time.Time
}

// Recording reports whether the span is capturing a trace record (false
// for no-op and flat-mode spans).
func (s Span) Recording() bool { return s.rec != nil }

// TraceID returns the owning trace's ID, or 0 when not recording.
func (s Span) TraceID() ID {
	if s.act == nil {
		return 0
	}
	return s.act.id
}

// SpanID returns this span's ID within its trace, or 0 when not
// recording. Propagation uses it as the outbound traceparent's
// parent-span field.
func (s Span) SpanID() uint64 {
	if s.rec == nil {
		return 0
	}
	return s.rec.SpanID
}

type ctxKey struct{}

// ContextWithSpan returns a context carrying the span; Child and
// FromContext find it there. Flat-mode and no-op spans are not worth
// carrying — the context is returned unchanged.
func ContextWithSpan(ctx context.Context, s Span) context.Context {
	if !s.Recording() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by the context, or a no-op span.
func FromContext(ctx context.Context) Span {
	s, _ := ctx.Value(ctxKey{}).(Span)
	return s
}

// Start begins a span. If the context already carries a recording span,
// the new span joins that trace as its child regardless of which tracer
// created it; otherwise, with tracing enabled, it roots a new trace.
// With tracing disabled it degrades to the flat histogram timing of
// obs.Registry.Span (no tree, context unchanged), and with the
// registry's span timing also off it is a free no-op. The attrs slice
// is copied, never retained, so call sites may build it on the stack.
func (t *Tracer) Start(ctx context.Context, name string, attrs ...Attr) (context.Context, Span) {
	if t == nil {
		return ctx, Span{}
	}
	if parent := FromContext(ctx); parent.Recording() {
		return parent.child(ctx, name, attrs)
	}
	if !t.enabled.Load() {
		if t.reg != nil && t.reg.Enabled() {
			return ctx, Span{tr: t, name: name, start: time.Now()} // flat mode
		}
		return ctx, Span{}
	}
	a := &active{t: t, id: t.newTraceID(), root: 1}
	a.next.Store(1)
	now := time.Now()
	rec := &SpanRecord{TraceID: a.id, SpanID: 1, Name: name, Start: now}
	if len(attrs) > 0 {
		rec.Attrs = append(rec.Attrs, attrs...)
	}
	s := Span{tr: t, act: a, rec: rec, name: name, start: now}
	return ContextWithSpan(ctx, s), s
}

// StartRemote begins a span that continues a trace started elsewhere —
// the server half of a propagated traceparent. The span roots a local
// active trace carrying the REMOTE trace ID, with its Parent pointing
// at the remote caller's span; when both halves complete, the ring
// merges them into one tree (see complete). Span IDs for the local half
// are allocated from a random 64-bit base (top bit set) so they cannot
// collide with the remote side's sequential IDs.
//
// If the context already carries a recording span the remote IDs are
// ignored (the in-process parent wins — it IS the same trace when the
// caller propagated its own context); with id or parentSpan zero, or
// tracing disabled, it degrades exactly like Start.
func (t *Tracer) StartRemote(ctx context.Context, name string, id ID, parentSpan uint64, attrs ...Attr) (context.Context, Span) {
	if t == nil {
		return ctx, Span{}
	}
	if parent := FromContext(ctx); parent.Recording() {
		return parent.child(ctx, name, attrs)
	}
	if id == 0 || parentSpan == 0 || !t.enabled.Load() {
		return t.Start(ctx, name, attrs...)
	}
	base := mix64(t.idState.Add(0x9E3779B97F4A7C15)) | 1<<63
	a := &active{t: t, id: id, root: base}
	a.next.Store(base)
	now := time.Now()
	rec := &SpanRecord{TraceID: id, SpanID: base, Parent: parentSpan, Name: name, Start: now, Remote: true}
	if len(attrs) > 0 {
		rec.Attrs = append(rec.Attrs, attrs...)
	}
	s := Span{tr: t, act: a, rec: rec, name: name, start: now}
	return ContextWithSpan(ctx, s), s
}

// Child begins a child of the span carried by the context, or a no-op
// span when the context carries none (the cluster layer uses this: it
// traces only when a vault-level span is ambient). The attrs slice is
// copied, never retained.
func Child(ctx context.Context, name string, attrs ...Attr) (context.Context, Span) {
	parent := FromContext(ctx)
	if !parent.Recording() {
		return ctx, Span{}
	}
	return parent.child(ctx, name, attrs)
}

func (s Span) child(ctx context.Context, name string, attrs []Attr) (context.Context, Span) {
	now := time.Now()
	rec := &SpanRecord{
		TraceID: s.act.id,
		SpanID:  s.act.next.Add(1),
		Parent:  s.rec.SpanID,
		Name:    name,
		Start:   now,
	}
	if len(attrs) > 0 {
		rec.Attrs = append(rec.Attrs, attrs...)
	}
	c := Span{tr: s.tr, act: s.act, rec: rec, name: name, start: now}
	return ContextWithSpan(ctx, c), c
}

// SetAttrs appends attributes to the span (results discovered after
// Start: bytes fetched, shards committed). No-op when not recording.
func (s Span) SetAttrs(attrs ...Attr) {
	if s.rec == nil {
		return
	}
	s.rec.Attrs = append(s.rec.Attrs, attrs...)
}

// Event records a structured event at the current offset into the span.
// Events beyond the per-span cap are counted as dropped, not stored.
// The attrs slice is copied, never retained.
func (s Span) Event(name string, attrs ...Attr) {
	if s.rec == nil {
		return
	}
	if len(s.rec.Events) >= maxEventsPerSpan {
		s.act.drops.Add(1)
		return
	}
	ev := Event{Name: name, OffsetNs: time.Since(s.start).Nanoseconds()}
	if len(attrs) > 0 {
		ev.Attrs = append([]Attr(nil), attrs...)
	}
	s.rec.Events = append(s.rec.Events, ev)
}

// End completes the span: the duration lands in the registry's
// "<name>.ok"/"<name>.err" histogram (the PR-3 flat metrics, unchanged),
// the record joins its trace, and — when this is the root — the trace
// seals, enters the ring, and goes to the exporters. Children should
// end before their root; a straggler that ends after its root is
// silently dropped from the sealed trace.
func (s Span) End(err error) {
	if s.tr == nil {
		return
	}
	d := time.Since(s.start)
	s.tr.observeSpan(s.name, d, err)
	if s.rec == nil {
		return
	}
	s.rec.DurNs = d.Nanoseconds()
	if err != nil {
		s.rec.Err = err.Error()
	}
	s.act.finish(s.rec)
}

func (a *active) finish(rec *SpanRecord) {
	root := rec.SpanID == a.root
	a.mu.Lock()
	if root || len(a.spans) < maxSpansPerTrace {
		a.spans = append(a.spans, rec)
	} else {
		a.drops.Add(1)
	}
	spans := a.spans
	if root {
		// Seal: later appends (stragglers) must not mutate the slice the
		// sealed trace holds.
		a.spans = nil
	}
	a.mu.Unlock()
	if !root {
		return
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start.Equal(spans[j].Start) {
			return spans[i].SpanID < spans[j].SpanID
		}
		return spans[i].Start.Before(spans[j].Start)
	})
	a.t.complete(&Trace{
		ID:      a.id,
		Root:    rec.Name,
		Start:   rec.Start,
		DurNs:   rec.DurNs,
		Dropped: a.drops.Load(),
		Spans:   spans,
	})
}

func (t *Tracer) complete(tr *Trace) {
	t.rmu.Lock()
	// Cross-boundary join: if the ring already holds this trace's other
	// half (the server half of a propagated traceparent completes when
	// the response is written; the client half when its root span ends),
	// merge in place instead of occupying a second slot.
	merged := false
	for i, prev := range t.ring {
		if prev != nil && prev.ID == tr.ID {
			tr = mergeTraces(prev, tr)
			t.ring[i] = tr
			merged = true
			break
		}
	}
	if !merged {
		if len(t.ring) < t.ringCap {
			t.ring = append(t.ring, tr)
		} else {
			t.retainOrEvict(t.ring[t.pos])
			t.ring[t.pos] = tr
			t.pos = (t.pos + 1) % t.ringCap
		}
	}
	t.completed++
	exps := t.exporters
	t.rmu.Unlock()
	for _, e := range exps {
		e.Export(tr)
	}
}

// retainOrEvict gives a trace falling off the main ring its second
// chance: interesting traces (erred or slow) move to the tail ring,
// boring ones — and interesting ones displaced off the tail — count as
// evicted. Called with rmu held.
func (t *Tracer) retainOrEvict(old *Trace) {
	if old == nil {
		return
	}
	if t.tailCap > 0 && old.Interesting(t.slowNs) {
		if len(t.tail) < t.tailCap {
			t.tail = append(t.tail, old)
			return
		}
		displaced := t.tail[t.tailPos]
		t.tail[t.tailPos] = old
		t.tailPos = (t.tailPos + 1) % t.tailCap
		old = displaced
	}
	if t.evicted != nil {
		t.evicted.Inc()
	}
}

// Tail returns up to n tail-retained traces (all when n <= 0), oldest
// first. Shared, read-only, like Recent.
func (t *Tracer) Tail(n int) []*Trace {
	t.rmu.Lock()
	defer t.rmu.Unlock()
	total := len(t.tail)
	if n <= 0 || n > total {
		n = total
	}
	out := make([]*Trace, 0, total)
	for i := 0; i < total; i++ {
		idx := i
		if total == t.tailCap {
			idx = (t.tailPos + i) % t.tailCap
		}
		out = append(out, t.tail[idx])
	}
	return out[total-n:]
}

// mergeTraces combines two completed halves of one trace (same ID) into
// a single tree: spans interleave by start time, the root is the half
// whose root span has no parent (the originating side), and timing
// covers both halves.
func mergeTraces(a, b *Trace) *Trace {
	spans := make([]*SpanRecord, 0, len(a.Spans)+len(b.Spans))
	spans = append(spans, a.Spans...)
	spans = append(spans, b.Spans...)
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start.Equal(spans[j].Start) {
			return spans[i].SpanID < spans[j].SpanID
		}
		return spans[i].Start.Before(spans[j].Start)
	})
	m := &Trace{
		ID:      a.ID,
		Root:    a.Root,
		Start:   a.Start,
		DurNs:   a.DurNs,
		Dropped: a.Dropped + b.Dropped,
		Spans:   spans,
	}
	if b.Start.Before(m.Start) {
		m.Start = b.Start
	}
	endA := a.Start.Add(time.Duration(a.DurNs))
	endB := b.Start.Add(time.Duration(b.DurNs))
	if endB.After(endA) {
		endA = endB
	}
	m.DurNs = endA.Sub(m.Start).Nanoseconds()
	if rs := m.RootSpan(); rs != nil {
		m.Root = rs.Name
	}
	return m
}

// observeSpan bridges a span duration into the flat registry: the same
// "<name>.ok"/"<name>.err" histograms obs.Registry.Span fills, resolved
// once per name and cached.
func (t *Tracer) observeSpan(name string, d time.Duration, err error) {
	if t.reg == nil || !t.reg.Enabled() {
		return
	}
	t.hmu.RLock()
	p, ok := t.hists[name]
	t.hmu.RUnlock()
	if !ok {
		p = &histPair{
			ok:  t.reg.Histogram(name+".ok", obs.LatencyBuckets()),
			err: t.reg.Histogram(name+".err", obs.LatencyBuckets()),
		}
		t.hmu.Lock()
		if prev, ok2 := t.hists[name]; ok2 {
			p = prev
		} else {
			t.hists[name] = p
		}
		t.hmu.Unlock()
	}
	ns := float64(d.Nanoseconds())
	if err != nil {
		p.err.Observe(ns)
	} else {
		p.ok.Observe(ns)
	}
}
