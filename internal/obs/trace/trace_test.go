package trace

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"securearchive/internal/obs"
)

func newEnabled(t *testing.T) (*Tracer, *Mem) {
	t.Helper()
	tr := New(obs.NewRegistry())
	tr.SetEnabled(true)
	mem := &Mem{}
	tr.AddExporter(mem)
	return tr, mem
}

func TestSpanTree(t *testing.T) {
	tr, mem := newEnabled(t)
	ctx, root := tr.Start(context.Background(), "vault.get",
		Str("object", "o1"), Str("encoding", "shamir"))
	fctx, fetch := Child(ctx, "cluster.fetch", Int("n", 8))
	_, probe := Child(fctx, "cluster.probe", Int("node", 3))
	probe.Event("node.down", Int("node", 3))
	probe.End(errors.New("down"))
	fetch.SetAttrs(Int("fetched", 4))
	fetch.End(nil)
	root.End(nil)

	traces := mem.Traces()
	if len(traces) != 1 {
		t.Fatalf("completed traces = %d, want 1", len(traces))
	}
	tc := traces[0]
	if tc.Root != "vault.get" || len(tc.Spans) != 3 {
		t.Fatalf("trace root=%q spans=%d", tc.Root, len(tc.Spans))
	}
	rs := tc.RootSpan()
	if rs == nil || rs.SpanID != 1 || rs.Parent != 0 {
		t.Fatalf("root span = %+v", rs)
	}
	if a, ok := rs.Attr("object"); !ok || a.Str != "o1" {
		t.Fatalf("root object attr = %+v ok=%v", a, ok)
	}
	fs := tc.Children(rs.SpanID)
	if len(fs) != 1 || fs[0].Name != "cluster.fetch" {
		t.Fatalf("root children = %+v", fs)
	}
	ps := tc.Children(fs[0].SpanID)
	if len(ps) != 1 || ps[0].Name != "cluster.probe" || ps[0].Err == "" {
		t.Fatalf("fetch children = %+v", ps)
	}
	if got, ok := fs[0].Attr("fetched"); !ok || got.Num != 4 {
		t.Fatalf("SetAttrs lost: %+v ok=%v", got, ok)
	}
	if tc.EventCount("node.down") != 1 {
		t.Fatalf("node.down events = %d, want 1", tc.EventCount("node.down"))
	}
	if tc.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", tc.Depth())
	}
	if tc.ID == 0 || ps[0].TraceID != tc.ID {
		t.Fatalf("trace id not propagated: trace=%v span=%v", tc.ID, ps[0].TraceID)
	}
}

func TestHistogramBridge(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(reg)
	tr.SetEnabled(true)
	ctx, root := tr.Start(context.Background(), "vault.put")
	_, c := Child(ctx, "cluster.stage.put")
	c.End(nil)
	root.End(errors.New("boom"))
	snap := reg.Snapshot()
	if snap.Histograms["vault.put.err"].Count != 1 {
		t.Fatalf("vault.put.err count = %d, want 1", snap.Histograms["vault.put.err"].Count)
	}
	if snap.Histograms["cluster.stage.put.ok"].Count != 1 {
		t.Fatalf("bridge missed child span: %+v", snap.Histograms)
	}
}

func TestFlatModeWhenDisabled(t *testing.T) {
	reg := obs.NewRegistry() // span timing enabled by default
	tr := New(reg)           // tracing disabled by default
	mem := &Mem{}
	tr.AddExporter(mem)
	ctx, sp := tr.Start(context.Background(), "vault.get")
	if sp.Recording() {
		t.Fatal("disabled tracer returned a recording span")
	}
	if _, c := Child(ctx, "cluster.fetch"); c.Recording() {
		t.Fatal("flat-mode span leaked into the context")
	}
	sp.End(nil)
	// The flat histograms keep filling (the PR-3 contract)…
	if got := reg.Snapshot().Histograms["vault.get.ok"].Count; got != 1 {
		t.Fatalf("flat histogram count = %d, want 1", got)
	}
	// …but no trace is recorded.
	if n := len(mem.Traces()); n != 0 {
		t.Fatalf("disabled tracer completed %d traces", n)
	}

	// With the registry's span timing also off, End records nothing.
	reg.SetEnabled(false)
	_, sp2 := tr.Start(context.Background(), "vault.get")
	sp2.End(nil)
	if got := reg.Snapshot().Histograms["vault.get.ok"].Count; got != 1 {
		t.Fatalf("fully disabled span still recorded: count = %d", got)
	}
}

func TestChildJoinsAmbientTraceEvenWhenTracerDisabled(t *testing.T) {
	tr, mem := newEnabled(t)
	ctx, root := tr.Start(context.Background(), "vault.scrub")
	tr.SetEnabled(false) // flip mid-trace: already-rooted spans keep recording
	_, c := Child(ctx, "cluster.fetch")
	if !c.Recording() {
		t.Fatal("child of a recording span must record")
	}
	c.End(nil)
	root.End(nil)
	if len(mem.Traces()) != 1 || len(mem.Traces()[0].Spans) != 2 {
		t.Fatalf("traces = %+v", mem.Traces())
	}
}

func TestRingBounds(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(reg, WithRingSize(4))
	tr.SetEnabled(true)
	for i := 0; i < 10; i++ {
		_, sp := tr.Start(context.Background(), fmt.Sprintf("op%d", i))
		sp.End(nil)
	}
	recent := tr.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recent))
	}
	// Oldest-first: op6..op9 survive.
	for i, tc := range recent {
		if want := fmt.Sprintf("op%d", 6+i); tc.Root != want {
			t.Fatalf("recent[%d] = %q, want %q", i, tc.Root, want)
		}
	}
	if got := tr.Recent(2); len(got) != 2 || got[1].Root != "op9" {
		t.Fatalf("Recent(2) = %+v", got)
	}
	if tr.Completed() != 10 {
		t.Fatalf("completed = %d, want 10", tr.Completed())
	}
}

func TestSpanAndEventBounds(t *testing.T) {
	tr, mem := newEnabled(t)
	ctx, root := tr.Start(context.Background(), "op")
	for i := 0; i < maxEventsPerSpan+10; i++ {
		root.Event("e")
	}
	for i := 0; i < maxSpansPerTrace+10; i++ {
		_, c := Child(ctx, "leaf")
		c.End(nil)
	}
	root.End(nil)
	tc := mem.Traces()[0]
	if len(tc.Spans) != maxSpansPerTrace+1 { // capped children + root
		t.Fatalf("spans = %d, want %d", len(tc.Spans), maxSpansPerTrace+1)
	}
	rs := tc.RootSpan()
	if rs == nil || len(rs.Events) != maxEventsPerSpan {
		t.Fatalf("root events = %d, want %d", len(rs.Events), maxEventsPerSpan)
	}
	if tc.Dropped != 10+10 { // 10 events + 10 spans over the caps
		t.Fatalf("dropped = %d, want 20", tc.Dropped)
	}
}

// TestConcurrentSiblings mirrors the stripe read's probe fan-out: many
// goroutines create and end sibling spans of one trace. Run under -race.
func TestConcurrentSiblings(t *testing.T) {
	tr, mem := newEnabled(t)
	ctx, root := tr.Start(context.Background(), "cluster.fetch")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, sp := Child(ctx, "cluster.probe", Int("node", w))
				sp.Event("probe.attempt", Int("i", i))
				sp.End(nil)
			}
		}(w)
	}
	wg.Wait()
	root.End(nil)
	tc := mem.Traces()[0]
	if len(tc.Spans) != 401 {
		t.Fatalf("spans = %d, want 401", len(tc.Spans))
	}
	ids := map[uint64]bool{}
	for _, s := range tc.Spans {
		if ids[s.SpanID] {
			t.Fatalf("duplicate span id %d", s.SpanID)
		}
		ids[s.SpanID] = true
	}
}

func TestTimeline(t *testing.T) {
	tr, mem := newEnabled(t)
	ctx, root := tr.Start(context.Background(), "vault.get", Str("object", "o1"))
	fctx, fetch := Child(ctx, "cluster.fetch", Int("want", 4))
	_, probe := Child(fctx, "cluster.probe", Int("node", 2))
	probe.Event("backoff.slept", Int("attempt", 1))
	probe.End(errors.New("transient"))
	fetch.End(nil)
	root.End(nil)
	out := Timeline(mem.Traces()[0])
	for _, want := range []string{
		"vault.get [object=o1]",
		"    cluster.fetch [want=4]",
		"      cluster.probe [node=2]",
		"ERR transient",
		"· backoff.slept [attempt=1]",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	// Nesting: probe is indented deeper than fetch, fetch deeper than root.
	if strings.Index(out, "  vault.get") > strings.Index(out, "    cluster.fetch") {
		t.Fatalf("timeline order wrong:\n%s", out)
	}
}
