package obs

import (
	"sync"
	"time"
)

// Window is a sliding-window aggregate: a ring of time buckets, each
// covering one interval, whose live (non-expired) subset answers "what
// happened over the last N×interval" — count, event rate, mean, and
// bucketed quantiles. It exists because lifetime counters cannot
// un-trip: the paper's decades-scale failure model needs /healthz and
// the SLO table to judge a server by its recent window, not its whole
// history, so a node that survived one bad hour can recover and a node
// that is rotting NOW shows it immediately.
//
// Buckets are keyed by epoch (wall time ÷ interval) and lazily recycled
// when an observation or read finds them stale; there is no background
// goroutine to leak. Each method has a *At(time.Time) variant taking an
// explicit clock so tests can drive the window deterministically;
// production callers use the clockless forms.
//
// Unlike Counter/Histogram, Window takes a mutex per observation — it
// backs health checks and SLOs (tens of ops per request), not per-shard
// hot paths, and correctness of the epoch rollover matters more than a
// few nanoseconds.
type Window struct {
	interval time.Duration
	bounds   []float64 // quantile bucket bounds; nil for count/rate-only windows

	mu      sync.Mutex
	buckets []wbucket
}

// wbucket is one interval's worth of observations.
type wbucket struct {
	epoch  int64 // unixnano / interval; 0 means never used
	count  int64
	sum    float64
	counts []int64 // len(bounds)+1, allocated only when bounds are set
}

// NewWindow builds a sliding window of buckets×interval. bounds, when
// non-nil, enables Observe/Quantile with fixed histogram buckets (same
// semantics as Histogram); pass nil for a pure event-rate window.
func NewWindow(buckets int, interval time.Duration, bounds []float64) *Window {
	if buckets < 1 {
		buckets = 1
	}
	if interval <= 0 {
		interval = time.Second
	}
	w := &Window{
		interval: interval,
		bounds:   bounds,
		buckets:  make([]wbucket, buckets),
	}
	if len(bounds) > 0 {
		for i := range w.buckets {
			w.buckets[i].counts = make([]int64, len(bounds)+1)
		}
	}
	return w
}

// Span returns the window's total coverage (buckets × interval).
func (w *Window) Span() time.Duration {
	return time.Duration(len(w.buckets)) * w.interval
}

// bucketAt returns the ring slot for the given time, recycling it if it
// holds a stale epoch. Callers hold w.mu.
func (w *Window) bucketAt(now time.Time) *wbucket {
	epoch := now.UnixNano() / int64(w.interval)
	b := &w.buckets[int(epoch%int64(len(w.buckets)))]
	if b.epoch != epoch {
		b.epoch = epoch
		b.count = 0
		b.sum = 0
		for i := range b.counts {
			b.counts[i] = 0
		}
	}
	return b
}

// Add records n events at time now.
func (w *Window) AddAt(now time.Time, n int64) {
	w.mu.Lock()
	b := w.bucketAt(now)
	b.count += n
	w.mu.Unlock()
}

// Add records n events now.
func (w *Window) Add(n int64) { w.AddAt(time.Now(), n) }

// Inc records one event now.
func (w *Window) Inc() { w.AddAt(time.Now(), 1) }

// ObserveAt records one value at time now (requires bounds).
func (w *Window) ObserveAt(now time.Time, v float64) {
	w.mu.Lock()
	b := w.bucketAt(now)
	b.count++
	b.sum += v
	if len(w.bounds) > 0 {
		i := 0
		for i < len(w.bounds) && v > w.bounds[i] {
			i++
		}
		b.counts[i]++
	}
	w.mu.Unlock()
}

// Observe records one value now (requires bounds).
func (w *Window) Observe(v float64) { w.ObserveAt(time.Now(), v) }

// live visits every bucket still inside the window ending at now.
// Callers hold w.mu.
func (w *Window) live(now time.Time, fn func(*wbucket)) {
	epoch := now.UnixNano() / int64(w.interval)
	min := epoch - int64(len(w.buckets)) + 1
	for i := range w.buckets {
		b := &w.buckets[i]
		if b.epoch >= min && b.epoch <= epoch {
			fn(b)
		}
	}
}

// CountAt returns the number of events in the window ending at now.
func (w *Window) CountAt(now time.Time) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var n int64
	w.live(now, func(b *wbucket) { n += b.count })
	return n
}

// Count returns the number of events currently in the window.
func (w *Window) Count() int64 { return w.CountAt(time.Now()) }

// RateAt returns events per second over the window ending at now.
func (w *Window) RateAt(now time.Time) float64 {
	return float64(w.CountAt(now)) / w.Span().Seconds()
}

// Rate returns events per second over the current window.
func (w *Window) Rate() float64 { return w.RateAt(time.Now()) }

// SumAt returns the sum of observed values in the window ending at now.
func (w *Window) SumAt(now time.Time) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var s float64
	w.live(now, func(b *wbucket) { s += b.sum })
	return s
}

// Sum returns the sum of observed values currently in the window.
func (w *Window) Sum() float64 { return w.SumAt(time.Now()) }

// MeanAt returns the mean observed value in the window ending at now,
// or 0 with no observations.
func (w *Window) MeanAt(now time.Time) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var n int64
	var s float64
	w.live(now, func(b *wbucket) { n += b.count; s += b.sum })
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// Mean returns the mean observed value in the current window.
func (w *Window) Mean() float64 { return w.MeanAt(time.Now()) }

// QuantileAt estimates the q-quantile of values observed in the window
// ending at now, interpolating within the winning bucket exactly as
// Histogram.Quantile does. Returns 0 with no bounds or no observations.
func (w *Window) QuantileAt(now time.Time, q float64) float64 {
	if len(w.bounds) == 0 {
		return 0
	}
	merged := make([]int64, len(w.bounds)+1)
	var total int64
	w.mu.Lock()
	w.live(now, func(b *wbucket) {
		for i, c := range b.counts {
			merged[i] += c
		}
		total += b.count
	})
	w.mu.Unlock()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	lo := 0.0
	for i, ci := range merged {
		if i == len(w.bounds) {
			return w.bounds[len(w.bounds)-1]
		}
		c := float64(ci)
		hi := w.bounds[i]
		if c > 0 && cum+c >= rank {
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
		lo = hi
	}
	return w.bounds[len(w.bounds)-1]
}

// Quantile estimates the q-quantile over the current window.
func (w *Window) Quantile(q float64) float64 { return w.QuantileAt(time.Now(), q) }

// Reset clears every bucket.
func (w *Window) Reset() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.buckets {
		b := &w.buckets[i]
		b.epoch = 0
		b.count = 0
		b.sum = 0
		for j := range b.counts {
			b.counts[j] = 0
		}
	}
}
