package obs

import (
	"testing"
	"time"
)

// t0 is an arbitrary fixed clock origin aligned to a bucket boundary so
// the window tests are deterministic.
var t0 = time.Unix(1_700_000_000, 0)

func TestWindowRate(t *testing.T) {
	w := NewWindow(5, time.Second, nil) // 5s window
	for i := 0; i < 5; i++ {
		w.AddAt(t0.Add(time.Duration(i)*time.Second), 10)
	}
	now := t0.Add(4 * time.Second)
	if got := w.CountAt(now); got != 50 {
		t.Fatalf("count = %d, want 50", got)
	}
	if got := w.RateAt(now); got != 10 {
		t.Fatalf("rate = %g, want 10/s", got)
	}
}

func TestWindowSlides(t *testing.T) {
	w := NewWindow(3, time.Second, nil)
	w.AddAt(t0, 100)
	if got := w.CountAt(t0); got != 100 {
		t.Fatalf("count at t0 = %d, want 100", got)
	}
	// Two buckets later the burst is still inside the 3s window...
	if got := w.CountAt(t0.Add(2 * time.Second)); got != 100 {
		t.Fatalf("count at t0+2s = %d, want 100", got)
	}
	// ...and one more bucket later it has slid out.
	if got := w.CountAt(t0.Add(3 * time.Second)); got != 0 {
		t.Fatalf("count at t0+3s = %d, want 0 (burst expired)", got)
	}
}

func TestWindowBucketRecycled(t *testing.T) {
	w := NewWindow(3, time.Second, nil)
	w.AddAt(t0, 7)
	// Same ring slot, three seconds later: the stale epoch must be
	// discarded, not added to.
	w.AddAt(t0.Add(3*time.Second), 5)
	if got := w.CountAt(t0.Add(3 * time.Second)); got != 5 {
		t.Fatalf("count = %d, want 5 (stale bucket leaked)", got)
	}
}

func TestWindowQuantileAndMean(t *testing.T) {
	w := NewWindow(6, time.Second, LatencyBuckets())
	for i := 0; i < 90; i++ {
		w.ObserveAt(t0, 1e6) // 1ms
	}
	for i := 0; i < 10; i++ {
		w.ObserveAt(t0.Add(time.Second), 1e9) // 1s outliers, later bucket
	}
	now := t0.Add(2 * time.Second)
	if got := w.CountAt(now); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	p50 := w.QuantileAt(now, 0.50)
	if p50 <= 0 || p50 > 2e6 {
		t.Fatalf("p50 = %g, want ~1e6", p50)
	}
	p99 := w.QuantileAt(now, 0.99)
	if p99 < 1e8 {
		t.Fatalf("p99 = %g, want >= 1e8 (outliers visible)", p99)
	}
	mean := w.MeanAt(now)
	want := (90*1e6 + 10*1e9) / 100
	if mean < want*0.99 || mean > want*1.01 {
		t.Fatalf("mean = %g, want ~%g", mean, want)
	}
	// After the window slides past the outliers, the quantile recovers —
	// the property lifetime histograms cannot have.
	later := t0.Add(10 * time.Second)
	if got := w.QuantileAt(later, 0.99); got != 0 {
		t.Fatalf("p99 after slide = %g, want 0 (window empty)", got)
	}
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(3, time.Second, nil)
	w.AddAt(t0, 42)
	w.Reset()
	if got := w.CountAt(t0); got != 0 {
		t.Fatalf("count after reset = %d, want 0", got)
	}
}

func TestSLOAvailabilityBurn(t *testing.T) {
	s := newSLO(SLOSpec{Name: "availability", Objective: 0.999, Buckets: 6, Interval: time.Second})
	for i := 0; i < 990; i++ {
		s.RecordAt(t0, true)
	}
	for i := 0; i < 10; i++ {
		s.RecordAt(t0, false)
	}
	st := s.StatusAt(t0)
	if st.Compliance != 0.99 {
		t.Fatalf("compliance = %g, want 0.99", st.Compliance)
	}
	// (1-0.99)/(1-0.999) = 10× burn.
	if st.BudgetBurn < 9.99 || st.BudgetBurn > 10.01 {
		t.Fatalf("burn = %g, want 10", st.BudgetBurn)
	}
	if st.Met {
		t.Fatal("SLO reported met at 10× burn")
	}
	// Fault clears, window slides: budget burn returns to zero.
	later := t0.Add(10 * time.Second)
	st = s.StatusAt(later)
	if st.BudgetBurn != 0 || !st.Met || st.Compliance != 1 {
		t.Fatalf("after recovery: %+v, want clean window", st)
	}
}

func TestSLOLatency(t *testing.T) {
	s := newSLO(SLOSpec{Name: "get.latency", Objective: 0.99, LatencyTargetNs: 100e6, Buckets: 6, Interval: time.Second})
	for i := 0; i < 98; i++ {
		s.ObserveAt(t0, 1e6) // 1ms: good
	}
	for i := 0; i < 2; i++ {
		s.ObserveAt(t0, 500e6) // 500ms: blown target
	}
	st := s.StatusAt(t0)
	if st.Good != 98 || st.Bad != 2 {
		t.Fatalf("good/bad = %d/%d, want 98/2", st.Good, st.Bad)
	}
	if st.P99Ns < 100e6 {
		t.Fatalf("p99 = %g, want >= 100e6", st.P99Ns)
	}
	if st.Met {
		t.Fatal("latency SLO met with 2%% violations against 0.99 objective")
	}
}

func TestSLOTableReport(t *testing.T) {
	tab := NewSLOTable(DefaultSLOSpecs()...)
	tab.SLO("acme", "availability").RecordAt(t0, true)
	tab.SLO("umbrella", "availability").RecordAt(t0, false)
	tab.SLO("umbrella", "get.latency").ObserveAt(t0, 5e6)

	rep := tab.ReportAt(t0)
	if rep.Schema != SLOReportSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Subjects) != 2 {
		t.Fatalf("subjects = %d, want 2", len(rep.Subjects))
	}
	if rep.Subjects[0].Subject != "acme" || rep.Subjects[1].Subject != "umbrella" {
		t.Fatalf("subject order = %q,%q", rep.Subjects[0].Subject, rep.Subjects[1].Subject)
	}
	if len(rep.Subjects[0].SLOs) != 3 {
		t.Fatalf("acme SLO count = %d, want 3", len(rep.Subjects[0].SLOs))
	}
	var umbrellaAvail *SLOStatus
	for i := range rep.Subjects[1].SLOs {
		if rep.Subjects[1].SLOs[i].Name == "availability" {
			umbrellaAvail = &rep.Subjects[1].SLOs[i]
		}
	}
	if umbrellaAvail == nil || umbrellaAvail.Bad != 1 || umbrellaAvail.Met {
		t.Fatalf("umbrella availability = %+v, want 1 bad, not met", umbrellaAvail)
	}
}

func TestSLOTableSubjectOverflow(t *testing.T) {
	tab := NewSLOTable(SLOSpec{Name: "availability", Objective: 0.999})
	tab.SetMaxSubjects(2)
	tab.SLO("a", "availability").RecordAt(t0, true)
	tab.SLO("b", "availability").RecordAt(t0, true)
	tab.SLO("c", "availability").RecordAt(t0, false) // lands on overflow row
	tab.SLO("d", "availability").RecordAt(t0, false) // same row

	rep := tab.ReportAt(t0)
	if len(rep.Subjects) != 3 {
		t.Fatalf("subjects = %d, want 3 (a, b, overflow)", len(rep.Subjects))
	}
	var over *SLOSubjectReport
	for i := range rep.Subjects {
		if rep.Subjects[i].Subject == OverflowValue {
			over = &rep.Subjects[i]
		}
	}
	if over == nil || over.SLOs[0].Bad != 2 {
		t.Fatalf("overflow row = %+v, want 2 bad", over)
	}
}
