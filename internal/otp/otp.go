// Package otp implements the One-Time Pad with a strict key-consumption
// ledger.
//
// The OTP is the simplest information-theoretically secure encryption
// (ε = 0 in the paper's Definition 2.1): c = m ⊕ k with k uniform and as
// long as m. Its security proof collapses instantly under key reuse, so
// this package wraps pad material in a Pad type whose ledger makes every
// byte single-use: Encrypt consumes pad bytes permanently and returns the
// interval used, and a consumed interval can never be handed out again.
//
// In the archival setting the OTP is the degenerate upper-left point of
// Figure 1 — perfect secrecy at 1× *ciphertext* cost plus 1× secret key
// that must itself be stored and protected, which is why secret sharing
// (which integrates the "pad" into the shares) dominates it in practice.
// The bsm and qkd packages both produce OTP key material as their output,
// and feed it to this package.
package otp

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// Errors returned by this package.
var (
	ErrPadExhausted = errors.New("otp: pad exhausted")
	ErrBadInterval  = errors.New("otp: ciphertext interval invalid or already consumed differently")
	ErrEmpty        = errors.New("otp: empty message")
)

// Pad is a pool of one-time key material with single-use accounting.
// It is safe for concurrent use.
type Pad struct {
	mu   sync.Mutex
	key  []byte
	next int // first unconsumed offset
}

// NewPad wraps key material as a pad. The pad takes ownership of the
// slice; callers must not retain it.
func NewPad(key []byte) *Pad {
	return &Pad{key: key}
}

// NewRandomPad samples a pad of n bytes from rnd.
func NewRandomPad(n int, rnd io.Reader) (*Pad, error) {
	k := make([]byte, n)
	if _, err := io.ReadFull(rnd, k); err != nil {
		return nil, fmt.Errorf("otp: reading randomness: %w", err)
	}
	return NewPad(k), nil
}

// Remaining returns the number of unconsumed pad bytes.
func (p *Pad) Remaining() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.key) - p.next
}

// Size returns the total pad size in bytes.
func (p *Pad) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.key)
}

// Ciphertext is an OTP ciphertext together with the pad interval that
// encrypted it; the interval (not the key bytes) is what the receiver
// needs to locate the matching pad region on its own copy.
type Ciphertext struct {
	Offset int
	Body   []byte
}

// Encrypt consumes len(msg) pad bytes and returns the ciphertext.
// It fails with ErrPadExhausted when insufficient pad remains; pads do
// not stretch — that is the point.
func (p *Pad) Encrypt(msg []byte) (*Ciphertext, error) {
	if len(msg) == 0 {
		return nil, ErrEmpty
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.key)-p.next < len(msg) {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrPadExhausted, len(msg), len(p.key)-p.next)
	}
	off := p.next
	body := make([]byte, len(msg))
	for i := range msg {
		body[i] = msg[i] ^ p.key[off+i]
	}
	// Consume: zeroise the used key bytes so even a later memory
	// compromise cannot recover past traffic (forward secrecy of the pad).
	for i := 0; i < len(msg); i++ {
		p.key[off+i] = 0
	}
	p.next = off + len(msg)
	return &Ciphertext{Offset: off, Body: body}, nil
}

// Decrypt recovers the message using the receiver's copy of the pad.
// Unlike Encrypt it does not advance the ledger cursor — the two
// directions of a link hold separate pads in any real deployment — but it
// does zeroise the used interval, enforcing single use on this side too.
// The interval must lie within the pad and still contain live key bytes.
func (p *Pad) Decrypt(ct *Ciphertext) ([]byte, error) {
	if ct == nil || len(ct.Body) == 0 {
		return nil, ErrEmpty
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if ct.Offset < 0 || ct.Offset+len(ct.Body) > len(p.key) {
		return nil, fmt.Errorf("%w: [%d, %d)", ErrBadInterval, ct.Offset, ct.Offset+len(ct.Body))
	}
	msg := make([]byte, len(ct.Body))
	for i := range ct.Body {
		msg[i] = ct.Body[i] ^ p.key[ct.Offset+i]
		p.key[ct.Offset+i] = 0
	}
	return msg, nil
}

// StorageOverhead is the Figure-1 accounting for OTP: ciphertext plus an
// equally long key that must be stored somewhere, per replica.
func StorageOverhead(replicas int) float64 {
	// Each replica stores ciphertext; the key is stored once (or shared).
	// Cost relative to plaintext: replicas (ciphertext copies) + 1 (key).
	return float64(replicas + 1)
}
