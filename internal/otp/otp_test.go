package otp

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
)

func TestEncryptDecryptRoundTrip(t *testing.T) {
	pad, err := NewRandomPad(1024, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	recv := clonePad(t, pad)
	msg := []byte("perfectly secret message")
	ct, err := pad.Encrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct.Body, msg) {
		t.Fatal("ciphertext equals plaintext (pad of zeros?)")
	}
	got, err := recv.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip failed")
	}
}

// clonePad snapshots pad key material before any consumption, simulating
// the receiver's copy distributed out of band.
func clonePad(t *testing.T, p *Pad) *Pad {
	t.Helper()
	k := make([]byte, len(p.key))
	copy(k, p.key)
	return NewPad(k)
}

func TestPadConsumption(t *testing.T) {
	pad, _ := NewRandomPad(100, rand.Reader)
	if pad.Remaining() != 100 || pad.Size() != 100 {
		t.Fatal("fresh pad accounting wrong")
	}
	if _, err := pad.Encrypt(make([]byte, 60)); err != nil {
		t.Fatal(err)
	}
	if pad.Remaining() != 40 {
		t.Fatalf("remaining = %d, want 40", pad.Remaining())
	}
	if _, err := pad.Encrypt(make([]byte, 41)); !errors.Is(err, ErrPadExhausted) {
		t.Fatalf("over-consumption: %v", err)
	}
	if _, err := pad.Encrypt(make([]byte, 40)); err != nil {
		t.Fatalf("exact-fit failed: %v", err)
	}
	if pad.Remaining() != 0 {
		t.Fatal("pad not fully consumed")
	}
}

func TestNoKeyReuse(t *testing.T) {
	pad, _ := NewRandomPad(64, rand.Reader)
	m1 := bytes.Repeat([]byte{0xAA}, 32)
	m2 := bytes.Repeat([]byte{0xAA}, 32)
	c1, _ := pad.Encrypt(m1)
	c2, _ := pad.Encrypt(m2)
	if c1.Offset == c2.Offset {
		t.Fatal("two encryptions used the same pad interval")
	}
	if bytes.Equal(c1.Body, c2.Body) {
		t.Fatal("identical plaintexts produced identical ciphertexts: key reuse")
	}
}

func TestUsedKeyZeroised(t *testing.T) {
	pad, _ := NewRandomPad(32, rand.Reader)
	if _, err := pad.Encrypt(make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	for i, b := range pad.key {
		if b != 0 {
			t.Fatalf("consumed key byte %d not zeroised", i)
		}
	}
}

func TestDecryptSingleUse(t *testing.T) {
	pad, _ := NewRandomPad(64, rand.Reader)
	recv := clonePad(t, pad)
	msg := []byte("decrypt once")
	ct, _ := pad.Encrypt(msg)
	if _, err := recv.Decrypt(ct); err != nil {
		t.Fatal(err)
	}
	// Second decrypt hits zeroised key: output differs from msg.
	got, err := recv.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("pad interval reusable on receiver side")
	}
}

func TestDecryptIntervalValidation(t *testing.T) {
	pad, _ := NewRandomPad(16, rand.Reader)
	bad := &Ciphertext{Offset: 10, Body: make([]byte, 10)}
	if _, err := pad.Decrypt(bad); !errors.Is(err, ErrBadInterval) {
		t.Fatalf("out-of-range interval: %v", err)
	}
	neg := &Ciphertext{Offset: -1, Body: make([]byte, 4)}
	if _, err := pad.Decrypt(neg); !errors.Is(err, ErrBadInterval) {
		t.Fatalf("negative offset: %v", err)
	}
	if _, err := pad.Decrypt(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("nil ciphertext: %v", err)
	}
}

func TestEmptyMessage(t *testing.T) {
	pad, _ := NewRandomPad(16, rand.Reader)
	if _, err := pad.Encrypt(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty message: %v", err)
	}
}

// TestPerfectSecrecyEnumeration: for a 1-byte message, the ciphertext
// distribution is uniform over all 256 values as the key varies — every
// plaintext remains equally consistent with an observed ciphertext.
func TestPerfectSecrecyEnumeration(t *testing.T) {
	seen := make(map[byte]bool)
	for k := 0; k < 256; k++ {
		pad := NewPad([]byte{byte(k)})
		ct, err := pad.Encrypt([]byte{0x5A})
		if err != nil {
			t.Fatal(err)
		}
		seen[ct.Body[0]] = true
	}
	if len(seen) != 256 {
		t.Fatalf("ciphertext support has %d values, want 256", len(seen))
	}
}

func TestStorageOverhead(t *testing.T) {
	if StorageOverhead(1) != 2.0 {
		t.Fatalf("single replica OTP overhead = %v, want 2", StorageOverhead(1))
	}
	if StorageOverhead(3) != 4.0 {
		t.Fatalf("3-replica OTP overhead = %v, want 4", StorageOverhead(3))
	}
}

func BenchmarkEncrypt64KiB(b *testing.B) {
	msg := make([]byte, 64<<10)
	b.SetBytes(int64(len(msg)))
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pad, _ := NewRandomPad(len(msg), rand.Reader)
		b.StartTimer()
		if _, err := pad.Encrypt(msg); err != nil {
			b.Fatal(err)
		}
	}
}
