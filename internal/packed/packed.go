// Package packed implements packed (multi-secret) secret sharing over
// GF(2^8), the encoding the paper's Figure 1 places between plain secret
// sharing and erasure coding on the storage-cost axis.
//
// Packed secret sharing (Franklin & Yung, STOC '92) embeds k secrets into
// a single polynomial of degree t+k-1: the secrets sit at k reserved
// evaluation points, t additional points carry uniformly random values,
// and shares are evaluations at n further points. Any t shares reveal
// nothing about the secret vector (perfect privacy), while any t+k shares
// reconstruct all k secrets. Compared to Shamir, each share is 1/k the
// size of the payload, trading a higher reconstruction threshold (and
// lower erasure tolerance) for a k-fold storage saving — exactly the
// cost/security middle ground Figure 1 depicts.
//
// Point layout in GF(256): secrets occupy points 0..k-1, blinding values
// occupy points k..k+t-1, and shares occupy points k+t..k+t+n-1, so
// k + t + n <= 256.
package packed

import (
	"errors"
	"fmt"
	"io"

	"securearchive/internal/bufpool"
	"securearchive/internal/gf256"
	"securearchive/internal/parallel"
)

// chunkGrain is the minimum byte range a worker takes; smaller payloads
// are processed inline.
const chunkGrain = 64 << 10

// Option configures the Split/Combine hot paths.
type Option func(*config)

type config struct {
	par int
}

// WithParallelism bounds the number of goroutines Split and Combine may
// use. n <= 0 (the default) selects GOMAXPROCS; 1 forces the serial path.
func WithParallelism(n int) Option {
	return func(c *config) { c.par = n }
}

func resolve(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Errors returned by this package.
var (
	ErrInvalidParams  = errors.New("packed: invalid parameters")
	ErrEmptySecret    = errors.New("packed: empty secret")
	ErrTooFewShares   = errors.New("packed: not enough shares to reconstruct")
	ErrDuplicateShare = errors.New("packed: duplicate share index")
	ErrShapeMismatch  = errors.New("packed: share shape mismatch")
)

// Share is one participant's evaluation of the packed polynomial.
type Share struct {
	// X is the evaluation point in GF(256); always >= PackCount+Threshold.
	X byte
	// Threshold is t: the number of shares that reveal nothing.
	Threshold byte
	// PackCount is k: how many slots are packed per polynomial.
	PackCount byte
	// SecretLen is the byte length of the original secret, needed to strip
	// slot padding at reconstruction.
	SecretLen int
	// Payload holds ceil(SecretLen/k) bytes.
	Payload []byte
}

// Params describes a packed sharing configuration.
type Params struct {
	N int // number of shares
	T int // privacy threshold: any T shares reveal nothing
	K int // secrets packed per polynomial
}

// Validate checks the parameter ranges.
func (p Params) Validate() error {
	if p.K < 1 || p.T < 1 || p.N < 1 {
		return fmt.Errorf("%w: n=%d t=%d k=%d", ErrInvalidParams, p.N, p.T, p.K)
	}
	if p.T+p.K > p.N {
		return fmt.Errorf("%w: reconstruction needs t+k=%d shares but n=%d", ErrInvalidParams, p.T+p.K, p.N)
	}
	if p.K+p.T+p.N > 256 {
		return fmt.Errorf("%w: k+t+n=%d exceeds field size", ErrInvalidParams, p.K+p.T+p.N)
	}
	return nil
}

// RecoverThreshold returns t+k, the number of shares needed to reconstruct.
func (p Params) RecoverThreshold() int { return p.T + p.K }

// shareX returns the evaluation point of share i under params p.
func shareX(p Params, i int) byte { return byte(p.K + p.T + i) }

// Split shares the secret under p, reading randomness from rnd. The secret
// is partitioned into k slots of ceil(len/k) bytes (zero-padded); byte
// position j of slot s becomes the value at point s of the j-th polynomial.
func Split(secret []byte, p Params, rnd io.Reader, opts ...Option) ([]Share, error) {
	cfg := resolve(opts)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(secret) == 0 {
		return nil, ErrEmptySecret
	}
	slotLen := (len(secret) + p.K - 1) / p.K
	// slots[s][j]: byte j of slot s (zero-padded), then the blinding
	// values at points k..k+t-1. Both are scratch, dead once evaluation
	// finishes, so they share one pooled buffer — slots first, blind
	// after, with a single ReadFull over the blind region drawing random
	// bytes in the same order as the seed's per-block reads.
	scratch := bufpool.Get((p.K + p.T) * slotLen)
	defer scratch.Release()
	slots := make([][]byte, p.K)
	for s := range slots {
		blk := scratch.B[s*slotLen : (s+1)*slotLen : (s+1)*slotLen]
		lo := s * slotLen
		n := 0
		if lo < len(secret) {
			n = copy(blk, secret[lo:min(lo+slotLen, len(secret))])
		}
		clear(blk[n:]) // pooled memory is dirty; restore the zero padding
		slots[s] = blk
	}
	blindRegion := scratch.B[p.K*slotLen:]
	if _, err := io.ReadFull(rnd, blindRegion); err != nil {
		return nil, fmt.Errorf("packed: reading randomness: %w", err)
	}
	blind := make([][]byte, p.T)
	for b := range blind {
		blind[b] = blindRegion[b*slotLen : (b+1)*slotLen : (b+1)*slotLen]
	}

	// Interpolation points: 0..k-1 (secrets), k..k+t-1 (blinding). The
	// polynomial has degree <= t+k-1 and is evaluated at each share point.
	// Precompute Lagrange coefficient vectors per share point: they depend
	// only on the point layout, not on data, and are reused across the
	// whole payload.
	basePts := make([]byte, p.K+p.T)
	for i := range basePts {
		basePts[i] = byte(i)
	}
	// ins is the full input vector (secret slots then blinding blocks);
	// share i's payload is a fixed linear combination of it with the
	// Lagrange coefficients for its evaluation point.
	ins := make([][]byte, 0, p.K+p.T)
	ins = append(ins, slots...)
	ins = append(ins, blind...)
	lcs := make([][]byte, p.N)
	shares := make([]Share, p.N)
	for i := 0; i < p.N; i++ {
		x := shareX(p, i)
		lcs[i] = gf256.LagrangeCoeffs(basePts, x)
		shares[i] = Share{
			X:         x,
			Threshold: byte(p.T),
			PackCount: byte(p.K),
			SecretLen: len(secret),
			Payload:   make([]byte, slotLen),
		}
	}
	// Job space is (share × byte-chunk), row-major so one worker streams a
	// contiguous range of one payload. All randomness was read above.
	nchunks := min((slotLen+chunkGrain-1)/chunkGrain, parallel.Workers(cfg.par))
	if nchunks < 1 {
		nchunks = 1
	}
	parallel.For(cfg.par, p.N*nchunks, 1, func(jlo, jhi int) {
		for job := jlo; job < jhi; job++ {
			i, ck := job/nchunks, job%nchunks
			lo, hi := parallel.Span(slotLen, nchunks, ck)
			payload := shares[i].Payload[lo:hi]
			for s, in := range ins {
				gf256.MulSliceTable(lcs[i][s], in[lo:hi], payload)
			}
		}
	})
	return shares, nil
}

// Combine reconstructs the secret from at least t+k shares.
func Combine(shares []Share, opts ...Option) ([]byte, error) {
	if len(shares) == 0 {
		return nil, ErrTooFewShares
	}
	cfg := resolve(opts)
	t := int(shares[0].Threshold)
	k := int(shares[0].PackCount)
	secLen := shares[0].SecretLen
	slotLen := len(shares[0].Payload)
	need := t + k
	if len(shares) < need {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewShares, len(shares), need)
	}
	var seen [256]bool
	for _, s := range shares {
		if int(s.Threshold) != t || int(s.PackCount) != k || s.SecretLen != secLen || len(s.Payload) != slotLen {
			return nil, ErrShapeMismatch
		}
		if seen[s.X] {
			return nil, fmt.Errorf("%w: x=%d", ErrDuplicateShare, s.X)
		}
		seen[s.X] = true
	}
	use := shares[:need]
	xs := make([]byte, need)
	for i, s := range use {
		xs[i] = s.X
	}
	out := make([]byte, 0, k*slotLen)
	// Interpolate the polynomial at each secret point 0..k-1. The job
	// space is (slot × byte-chunk): each worker owns a disjoint range of
	// one slot buffer. Slot buffers are pooled scratch, zeroed because
	// MulSliceTable accumulates into them.
	sb := bufpool.Get(k * slotLen)
	defer sb.Release()
	sb.Zero()
	slots := make([][]byte, k)
	lcs := make([][]byte, k)
	for s := 0; s < k; s++ {
		lcs[s] = gf256.LagrangeCoeffs(xs, byte(s))
		slots[s] = sb.B[s*slotLen : (s+1)*slotLen : (s+1)*slotLen]
	}
	nchunks := min((slotLen+chunkGrain-1)/chunkGrain, parallel.Workers(cfg.par))
	if nchunks < 1 {
		nchunks = 1
	}
	parallel.For(cfg.par, k*nchunks, 1, func(jlo, jhi int) {
		for job := jlo; job < jhi; job++ {
			s, ck := job/nchunks, job%nchunks
			lo, hi := parallel.Span(slotLen, nchunks, ck)
			slot := slots[s][lo:hi]
			for i, sh := range use {
				gf256.MulSliceTable(lcs[s][i], sh.Payload[lo:hi], slot)
			}
		}
	})
	for s := 0; s < k; s++ {
		out = append(out, slots[s]...)
	}
	return out[:secLen], nil
}

// StorageOverhead returns the ratio of total stored bytes to secret bytes
// for a secret of the given length under p: n·ceil(L/k) / L. For large L
// this tends to n/k, the Figure 1 position of packed sharing.
func StorageOverhead(p Params, secretLen int) float64 {
	if secretLen <= 0 {
		return 0
	}
	slotLen := (secretLen + p.K - 1) / p.K
	return float64(p.N*slotLen) / float64(secretLen)
}
